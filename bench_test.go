// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment driver and
// logs the regenerated rows/series (visible with -v); set
// POWERDIV_WRITE_RESULTS=1 to also write CSVs under out/.
//
// The experiments are deterministic, so repeated iterations measure the
// harness cost of regenerating each artefact; the numbers themselves are
// identical across iterations.
package powerdiv_test

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/energyacct"
	"powerdiv/internal/experiments"
	"powerdiv/internal/fleet"
	"powerdiv/internal/machine"
	"powerdiv/internal/models"
	"powerdiv/internal/obs"
	"powerdiv/internal/protocol"
	"powerdiv/internal/report"
	"powerdiv/internal/stressng"
	"powerdiv/internal/traffic"
	"powerdiv/internal/units"
	"powerdiv/internal/vm"
	"powerdiv/internal/workload"
)

const benchSeed = 1

func writeResult(b *testing.B, t *report.Table, name string) {
	b.Helper()
	b.Log("\n" + t.String())
	if os.Getenv("POWERDIV_WRITE_RESULTS") == "" {
		return
	}
	if err := t.WriteCSV(filepath.Join("out", name+".csv")); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTable3StressKernels measures the real compute kernels named
// after the Table III stress-ng functions.
func BenchmarkTable3StressKernels(b *testing.B) {
	for _, k := range stressng.Kernels() {
		b.Run(k.Name, func(b *testing.B) {
			var sum uint64
			for i := 0; i < b.N; i++ {
				sum += k.Batch()
			}
			_ = sum
		})
	}
}

// BenchmarkTable4PhoronixApps simulates each Table IV application solo in
// a 6-vCPU VM — the execution behind Table V's rows.
func BenchmarkTable4PhoronixApps(b *testing.B) {
	cfg := experiments.ProdConfig(cpumodel.SmallIntel(), benchSeed)
	for _, app := range workload.PhoronixSet() {
		b.Run(app.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run, err := vm.SimulateColocation(cfg, []vm.VM{{Name: app.Name, VCPUs: 6, App: app}}, app.Duration()+time.Minute)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("%s: %s over %s", app.Name, run.Energy(), run.Duration)
				}
			}
		})
	}
}

// BenchmarkTable5ReferenceValues regenerates Table V (three repetitions
// per application, with variability).
func BenchmarkTable5ReferenceValues(b *testing.B) {
	cfg := experiments.ProdConfig(cpumodel.SmallIntel(), benchSeed)
	var refs []experiments.AppReference
	for i := 0; i < b.N; i++ {
		var err error
		refs, err = experiments.PhoronixReference(cfg, 6, 3, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	writeResult(b, experiments.TableV(refs), "table5")
}

func benchCurve(b *testing.B, spec cpumodel.Spec, prod bool, name string) {
	cfg := experiments.LabConfig(spec, benchSeed)
	if prod {
		cfg = experiments.ProdConfig(spec, benchSeed)
	}
	var res experiments.CurveResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.PowerCurve(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	writeResult(b, res.Table(), name)
	b.Logf("gap %s, band at full load %s", res.ResidualGap(), res.BandWidthAtFull())
}

// BenchmarkFig1CurveNoHT regenerates Fig 1 (HT/turbo off) on both machines.
func BenchmarkFig1CurveNoHT(b *testing.B) {
	b.Run("small-intel", func(b *testing.B) { benchCurve(b, cpumodel.SmallIntel(), false, "fig1-small-intel") })
	b.Run("dahu", func(b *testing.B) { benchCurve(b, cpumodel.Dahu(), false, "fig1-dahu") })
}

// BenchmarkFig2Eq1Undershoot regenerates the Fig 2 illustration: Equation 1
// estimates under-cover the machine power by exactly R.
func BenchmarkFig2Eq1Undershoot(b *testing.B) {
	cfg := experiments.LabConfig(cpumodel.SmallIntel(), benchSeed)
	var res experiments.Eq1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Eq1Undershoot(cfg, "fibonacci", "matrixprod", 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	t := report.NewTable("Fig 2 — Eq 1 under-coverage", "quantity", "watts")
	t.AddRowf("C pair", float64(res.CPair))
	t.AddRowf("naive Ce(P0)", float64(res.Naive0))
	t.AddRowf("naive Ce(P1)", float64(res.Naive1))
	t.AddRowf("uncovered (= R)", float64(res.Uncovered))
	writeResult(b, t, "fig2")
}

// BenchmarkFig3CurveHT regenerates Fig 3 (HT/turbo on) on both machines.
func BenchmarkFig3CurveHT(b *testing.B) {
	b.Run("small-intel", func(b *testing.B) { benchCurve(b, cpumodel.SmallIntel(), true, "fig3-small-intel") })
	b.Run("dahu", func(b *testing.B) { benchCurve(b, cpumodel.Dahu(), true, "fig3-dahu") })
}

func benchScatter(b *testing.B, spec cpumodel.Spec, factory models.Factory, name string) {
	ctx := experiments.LabContext(spec, benchSeed)
	var res experiments.ScatterResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RatioScatter(ctx, factory)
		if err != nil {
			b.Fatal(err)
		}
	}
	writeResult(b, res.Table(), name)
	if os.Getenv("POWERDIV_WRITE_RESULTS") != "" {
		if err := res.PointsTable().WriteCSV(filepath.Join("out", name+"-points.csv")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4ScaphandreSmall regenerates Fig 4: Scaphandre ratio scatter
// on SMALL INTEL (paper: mean 3.15 %, max 11.7 %).
func BenchmarkFig4ScaphandreSmall(b *testing.B) {
	benchScatter(b, cpumodel.SmallIntel(), models.NewScaphandre(), "fig4-scaphandre-small")
}

// BenchmarkFig5PowerAPISmall regenerates Fig 5: PowerAPI on SMALL INTEL
// (paper: mean 3.12 %).
func BenchmarkFig5PowerAPISmall(b *testing.B) {
	benchScatter(b, cpumodel.SmallIntel(), models.NewPowerAPI(models.DefaultPowerAPIConfig()), "fig5-powerapi-small")
}

// BenchmarkFig6ScaphandreDahu regenerates Fig 6: Scaphandre on DAHU
// (paper: mean 2.7 %, max 17.4 % between QUEENS and FLOAT64).
func BenchmarkFig6ScaphandreDahu(b *testing.B) {
	benchScatter(b, cpumodel.Dahu(), models.NewScaphandre(), "fig6-scaphandre-dahu")
}

// BenchmarkFig7PowerAPIDahu regenerates Fig 7: PowerAPI on DAHU
// (paper: mean 16.23 %, max 49.1 %).
func BenchmarkFig7PowerAPIDahu(b *testing.B) {
	benchScatter(b, cpumodel.Dahu(), models.NewPowerAPI(models.DefaultPowerAPIConfig()), "fig7-powerapi-dahu")
}

// BenchmarkFig8PowerAPIInstability regenerates Fig 8: identical
// MATRIXPROD/FLOAT64 runs on DAHU with flip-flopping 90/10 attributions.
func BenchmarkFig8PowerAPIInstability(b *testing.B) {
	cfg := experiments.LabConfig(cpumodel.Dahu(), benchSeed)
	var res experiments.InstabilityResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Instability(cfg, "matrixprod", "float64", 8, 6, benchSeed+6)
		if err != nil {
			b.Fatal(err)
		}
	}
	writeResult(b, res.Table(), "fig8")
	b.Logf("flip-flopped: %v", res.FlipFlopped())
}

// BenchmarkFig9Residual regenerates Fig 9 / §IV-B: the capped-vs-uncapped
// campaign against both residual-aware objectives, per model.
func BenchmarkFig9Residual(b *testing.B) {
	ctx := experiments.LabContext(cpumodel.SmallIntel(), benchSeed)
	for _, f := range experiments.PaperModels() {
		b.Run(f.Name, func(b *testing.B) {
			var res experiments.CappingResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiments.ResidualCapping(ctx, f, workload.StressNames(), []int{1, 2, 3})
				if err != nil {
					b.Fatal(err)
				}
			}
			writeResult(b, res.Table(), "fig9-"+f.Name)
		})
	}
}

// BenchmarkFig10PhoronixTraces regenerates the Fig 10 solo power traces.
func BenchmarkFig10PhoronixTraces(b *testing.B) {
	cfg := experiments.ProdConfig(cpumodel.SmallIntel(), benchSeed)
	var refs []experiments.AppReference
	for i := 0; i < b.N; i++ {
		var err error
		refs, err = experiments.PhoronixReference(cfg, 6, 1, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range refs {
		b.Logf("%s: %d samples, mean %.1f W, min %.1f, max %.1f",
			r.Name, r.Trace.Len(), r.Trace.Mean(), r.Trace.Min(), r.Trace.Max())
		if os.Getenv("POWERDIV_WRITE_RESULTS") != "" {
			t := report.NewTable("Fig 10 — "+r.Name, "t (s)", "watts")
			for _, s := range r.Trace.Samples() {
				t.AddRowf(s.At.Seconds(), s.Value)
			}
			if err := t.WriteCSV(filepath.Join("out", "fig10-"+r.Name+".csv")); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig11ContextDependence regenerates the Fig 11 illustration:
// three staggered identical applications, context-dependent attribution.
func BenchmarkFig11ContextDependence(b *testing.B) {
	cfg := experiments.LabConfig(cpumodel.SmallIntel(), benchSeed)
	var res experiments.ContextResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.ContextIllustration(cfg, models.NewScaphandre(), "int64", 2, 20*time.Second, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	writeResult(b, res.Table(), "fig11")
}

func benchEnergy(b *testing.B, app0, app1, name string) {
	cfg := experiments.ProdConfig(cpumodel.SmallIntel(), benchSeed)
	for _, f := range experiments.PaperModels() {
		b.Run(f.Name, func(b *testing.B) {
			var res experiments.EnergyDivisionResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiments.EnergyDivision(cfg, f, app0, app1, 6, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
			}
			writeResult(b, res.Table(), fmt.Sprintf("%s-%s", name, f.Name))
		})
	}
}

// BenchmarkFig12Build2Dacapo regenerates Fig 12 and the §V-A deltas
// (paper: BUILD2 −6 %, DACAPO −35 %, total −13 %).
func BenchmarkFig12Build2Dacapo(b *testing.B) {
	benchEnergy(b, "build2", "dacapo", "fig12")
}

// BenchmarkFig13CompressCloverleaf regenerates Fig 13.
func BenchmarkFig13CompressCloverleaf(b *testing.B) {
	benchEnergy(b, "compress-7zip", "cloverleaf", "fig13")
}

// BenchmarkLabErrorTable regenerates the §IV-A error summary on both
// machines with all models (the paper's headline numbers) through the
// streaming pipeline — the configuration the CLIs run in. An untimed
// warm-up pass fills the cache tiers first, so the timed iterations measure
// the warm steady state (and B/op stays deterministic at any -benchtime);
// the cold cost is BenchmarkLabErrorTableCold's job. The peak-heap-bytes
// watermark still measures the bounded-memory property.
func BenchmarkLabErrorTable(b *testing.B) {
	benchLabErrorTable(b, experiments.LabEvaluationStreaming, true)
}

// BenchmarkLabErrorTableMaterialized is the same campaign through the
// materialized pipeline: full runs are simulated, retained and replayed
// from the memoization cache (warmed before the timer starts). It pins the
// cost of the run-retaining path that timeline and profile consumers use.
func BenchmarkLabErrorTableMaterialized(b *testing.B) {
	benchLabErrorTable(b, experiments.LabEvaluation, true)
}

// BenchmarkLabErrorTableCold is the streaming campaign with every cache
// tier dropped before each iteration: each pass re-simulates every solo and
// pair run from scratch. This is the raw-speed rung — the number that can
// only improve through the simulator and scoring kernels, never through
// caching — and the one the bench-diff rate gate polices (cold iterations
// do identical work, so their scenarios/sec is comparable across runs even
// at -benchtime 1x). No heap watermark: a cold pass's transient garbage
// peak is GC-pacing noise, not a retention signal.
func BenchmarkLabErrorTableCold(b *testing.B) {
	benchLabErrorTableSegs(b, func(ctx protocol.Context, extra ...models.Factory) (map[string]experiments.ScatterResult, error) {
		protocol.ResetMemoization()
		return experiments.LabEvaluationStreaming(ctx, extra...)
	}, false)
}

// BenchmarkLabErrorTableDiskWarm is the cold campaign with a warm
// persistent summary cache attached: memory tiers are dropped before each
// iteration (a fresh process, in effect), so phase 1 baselines load from
// disk while pair runs still simulate. The untimed warm-up pass primes the
// disk tier; the gap to Cold is what the tier buys a restarted process.
func BenchmarkLabErrorTableDiskWarm(b *testing.B) {
	disk, err := protocol.OpenDiskCache(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	protocol.AttachDiskCache(disk)
	defer protocol.AttachDiskCache(nil)
	benchLabErrorTableSegs(b, func(ctx protocol.Context, extra ...models.Factory) (map[string]experiments.ScatterResult, error) {
		protocol.ResetMemoization()
		return experiments.LabEvaluationStreaming(ctx, extra...)
	}, false)
}

// benchLabErrorTableSegs is benchLabErrorTable with the obs registry
// enabled so the cold variants additionally report segments_per_scenario —
// how many constant segments the engine evaluated per scenario, averaged
// over the campaign's pair and solo runs. A per-tick engine reports the
// tick count (~121 on the default context); the segment engine reports the
// scenario's change-point structure (an order of magnitude lower), which is
// where the cold-path speedup comes from. Counter flushes are per run, so
// enabling the registry does not perturb the timed loop.
func benchLabErrorTableSegs(b *testing.B, evaluate func(protocol.Context, ...models.Factory) (map[string]experiments.ScatterResult, error), watermark bool) {
	wasEnabled := obs.Enabled()
	obs.Enable(true)
	defer obs.Enable(wasEnabled)
	benchLabErrorTable(b, evaluate, watermark)
}

// benchLabErrorTable runs evaluate once untimed (cache warm-up — a no-op
// for the per-iteration-reset variants beyond disk priming) and then b.N
// timed passes. watermark selects the peak-heap-bytes report; the variants
// that reset caches every iteration skip it, since their transient garbage
// peak depends on GC pacing rather than on what the pipeline retains.
func benchLabErrorTable(b *testing.B, evaluate func(protocol.Context, ...models.Factory) (map[string]experiments.ScatterResult, error), watermark bool) {
	for _, spec := range cpumodel.Specs() {
		b.Run(slug(spec.Name), func(b *testing.B) {
			ctx := experiments.LabContext(spec, benchSeed)
			nScenarios := labScenarioCount(b, ctx)
			if _, err := evaluate(ctx, models.NewKepler(), models.NewOracle()); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			var stopWatermark func() float64
			if watermark {
				stopWatermark = startHeapWatermark()
			}
			segCounter := obs.Default().Get("powerdiv_machine_segments_total")
			segStart := segCounter.Snapshot().Value
			b.ResetTimer()
			var results map[string]experiments.ScatterResult
			for i := 0; i < b.N; i++ {
				var err error
				results, err = evaluate(ctx, models.NewKepler(), models.NewOracle())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if watermark {
				b.ReportMetric(stopWatermark(), "peak-heap-bytes")
			}
			if segs := segCounter.Snapshot().Value - segStart; segs > 0 {
				b.ReportMetric(segs/float64(nScenarios*b.N), "segments_per_scenario")
			}
			reportScenariosPerSec(b, nScenarios)
			writeResult(b, experiments.ErrorTable(spec.Name, results), "errors-"+slug(spec.Name))
		})
	}
}

// startHeapWatermark samples the live heap in the background and returns a
// stop function yielding the high-water HeapAlloc in bytes. The sampler is
// coarse (stop-the-world reads every 100 ms — frequent enough to catch a
// campaign that retains hundreds of megabytes of runs, rare enough not to
// perturb the timed loop), so the watermark separates a pipeline retaining
// full runs from one that keeps compact digests, not exact peaks.
func startHeapWatermark() (stop func() float64) {
	runtime.GC()
	done := make(chan struct{})
	var wg sync.WaitGroup
	var peak uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(100 * time.Millisecond)
		defer ticker.Stop()
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
			select {
			case <-done:
				return
			case <-ticker.C:
			}
		}
	}()
	return func() float64 {
		close(done)
		wg.Wait()
		return float64(peak)
	}
}

// BenchmarkCampaignParallel measures the scenario-parallel campaign at a
// ladder of worker counts (EvaluateCampaignParallel hands scenarios to a
// GOMAXPROCS-wide pool). On a single-core runner the ladder still
// exercises the pool dispatch path at width 2; on wider machines it shows
// the scaling headroom.
func BenchmarkCampaignParallel(b *testing.B) {
	ctx := experiments.LabContext(cpumodel.SmallIntel(), benchSeed)
	scenarios, err := protocol.StressPairs(workload.StressNames(), protocol.SizesFor(ctx.Machine))
	if err != nil {
		b.Fatal(err)
	}
	widths := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		widths = append(widths, n)
	}
	for _, w := range widths {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(w)
			defer runtime.GOMAXPROCS(prev)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := protocol.EvaluateCampaignParallel(ctx, scenarios, models.NewScaphandre(), protocol.ObjectiveActive, 0); err != nil {
					b.Fatal(err)
				}
			}
			reportScenariosPerSec(b, len(scenarios))
		})
	}
}

// reportScenariosPerSec emits the scenarios/sec throughput metric, guarded
// against a zero-elapsed timer (possible when every iteration is served
// from the memoization cache on a coarse clock): dividing by it would
// report +Inf and poison benchstat comparisons, so the metric is skipped.
func reportScenariosPerSec(b *testing.B, scenarios int) {
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(scenarios)*float64(b.N)/secs, "scenarios/sec")
	}
}

// labScenarioCount returns the size of the all-pairs stress campaign the
// lab evaluation runs, for the scenarios/sec metric.
func labScenarioCount(b *testing.B, ctx protocol.Context) int {
	b.Helper()
	scenarios, err := protocol.StressPairs(workload.StressNames(), protocol.SizesFor(ctx.Machine))
	if err != nil {
		b.Fatal(err)
	}
	return len(scenarios)
}

// BenchmarkCampaignMemoization isolates the solo/pair run cache's effect on
// the all-pairs lab campaign. The cache is dropped before every iteration,
// so "on" measures only intra-campaign sharing (each pair scenario
// simulated once instead of once per model, solo baselines measured once)
// and "off" the former behaviour of re-simulating per model. The ratio of
// the two ns/op values is the memoization speedup; a campaign test asserts
// the two configurations produce identical error tables.
func BenchmarkCampaignMemoization(b *testing.B) {
	ctx := experiments.LabContext(cpumodel.SmallIntel(), benchSeed)
	nScenarios := labScenarioCount(b, ctx)
	for _, mode := range []struct {
		name string
		on   bool
	}{{"on", true}, {"off", false}} {
		b.Run(mode.name, func(b *testing.B) {
			protocol.EnableMemoization(mode.on)
			defer protocol.EnableMemoization(true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				protocol.ResetMemoization()
				if _, err := experiments.LabEvaluation(ctx, models.NewKepler(), models.NewOracle()); err != nil {
					b.Fatal(err)
				}
			}
			reportScenariosPerSec(b, nScenarios)
		})
	}
}

// BenchmarkTrafficCampaign measures the production-shaped traffic pipeline:
// generated churn schedules scored per tick by all six models on the fused
// streaming path. The peak-heap metric pins the bounded-memory claim — the
// campaign never materializes a full run per scenario.
func BenchmarkTrafficCampaign(b *testing.B) {
	ctx := experiments.LabContext(cpumodel.SmallIntel(), benchSeed)
	cfg := experiments.TrafficConfig(ctx, traffic.Mixed, 24, 15*time.Second)
	b.ReportAllocs()
	stopWatermark := startHeapWatermark()
	b.ResetTimer()
	var res experiments.TrafficResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.TrafficCampaign(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(stopWatermark(), "peak-heap-bytes")
	reportScenariosPerSec(b, cfg.Scenarios)
	writeResult(b, res.Table(), "traffic-campaign")
}

// BenchmarkFleetCampaign measures the fleet-scale campaign: a
// heterogeneous node population, each node running its own traffic shard
// through the fused streaming pipeline and all seven model families
// (six intrusive plus the WattScope-style non-intrusive model), reduced
// to aggregate error distributions in sorted-node order. The GOMAXPROCS
// ladder exercises the shared worker budget (nodes fan out on the same
// pool the per-node pipeline would otherwise oversubscribe); the
// peak-heap metric pins the claim that per-node results are reduced to
// compact digests, never materialized fleet-wide.
func BenchmarkFleetCampaign(b *testing.B) {
	cfg := fleet.Config{
		Nodes:            24,
		Seed:             benchSeed,
		ScenariosPerNode: 1,
		Window:           2 * time.Second,
		RunFor:           3 * time.Second,
		StableWindow:     time.Second,
		Kernels:          []string{"fibonacci", "matrixprod", "queens"},
	}
	widths := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		widths = append(widths, n)
	}
	for _, w := range widths {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(w)
			defer runtime.GOMAXPROCS(prev)
			b.ReportAllocs()
			stopWatermark := startHeapWatermark()
			b.ResetTimer()
			var res fleet.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiments.FleetCampaign(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(stopWatermark(), "peak-heap-bytes")
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(cfg.Nodes)*float64(b.N)/secs, "nodes/sec")
			}
			writeResult(b, experiments.FleetTable(res), fmt.Sprintf("fleet-campaign-w%d", w))
		})
	}
}

// BenchmarkSectionVEnergyDeltas regenerates the §V colocation sweep:
// CLOVERLEAF on DAHU against 0/4/9 neighbour VMs (paper: −56 % at 9).
func BenchmarkSectionVEnergyDeltas(b *testing.B) {
	cfg := experiments.ProdConfig(cpumodel.Dahu(), benchSeed)
	neighbours := []int{0, 4, 9}
	var res map[int]float64
	for i := 0; i < b.N; i++ {
		raw, err := experiments.ColocationSweep(cfg, models.NewScaphandre(), "cloverleaf", 6, neighbours, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		res = map[int]float64{}
		for n, e := range raw {
			res[n] = e.Kilojoules()
		}
	}
	t := report.NewTable("§V — CLOVERLEAF on DAHU", "neighbour VMs", "attributed energy (kJ)")
	for _, n := range neighbours {
		t.AddRowf(n, res[n])
	}
	writeResult(b, t, "sectionV-colocation")
}

// BenchmarkAblationFamilies compares the F1/F2/F3 residual policies
// (coverage and context stability) — DESIGN.md §5.
func BenchmarkAblationFamilies(b *testing.B) {
	var props []experiments.FamilyProperties
	for i := 0; i < b.N; i++ {
		var err error
		props, err = experiments.FamilyAblation(cpumodel.SmallIntel(), "fibonacci", "matrixprod", 3, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	writeResult(b, experiments.AblationTable(props), "ablation-families")
}

// BenchmarkAblationStableWindow measures the effect of the paper's
// stable-window selection under exaggerated sensor noise.
func BenchmarkAblationStableWindow(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		var err error
		with, without, err = experiments.StableWindowAblation(cpumodel.SmallIntel(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("mean AE with 10s stable window: %.4f, without: %.4f", with, without)
}

// BenchmarkAblationLearningWindow sweeps PowerAPI's learning window.
func BenchmarkAblationLearningWindow(b *testing.B) {
	windows := []time.Duration{2 * time.Second, 10 * time.Second, 20 * time.Second}
	var res map[time.Duration][2]float64
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.LearningWindowAblation(cpumodel.SmallIntel(), windows, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, w := range windows {
		b.Logf("learn window %v: mean AE %.4f, scored ticks %.0f", w, res[w][0], res[w][1])
	}
}

// BenchmarkAblationHTEfficiency sweeps the SMT efficiency factor and
// reports the §V total energy drop it induces.
func BenchmarkAblationHTEfficiency(b *testing.B) {
	factors := []float64{0.2, 0.3, 0.45, 0.6}
	var res map[float64]float64
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.HTEfficiencyAblation(cpumodel.SmallIntel(), factors, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, f := range factors {
		b.Logf("SMT efficiency %.2f: total §V energy drop %.1f%%", f, res[f])
	}
}

// BenchmarkAblationSamplePeriod sweeps the sensor sampling period.
func BenchmarkAblationSamplePeriod(b *testing.B) {
	periods := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 500 * time.Millisecond, time.Second}
	var res map[time.Duration]float64
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.SamplePeriodAblation(cpumodel.SmallIntel(), periods, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range periods {
		b.Logf("sample period %v: mean AE %.4f", p, res[p])
	}
}

// BenchmarkRunTicks pins the cost of converting a simulated run into model
// inputs: the dense roster-indexed columns against the map view they
// replace. The dense conversion allocates one sample slab per run instead
// of one map per tick.
func BenchmarkRunTicks(b *testing.B) {
	run := benchPairRun(b)
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if ticks := models.RunTicksDense(run); len(ticks) != len(run.Ticks) {
				b.Fatal("tick count mismatch")
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if ticks := models.RunTicks(run); len(ticks) != len(run.Ticks) {
				b.Fatal("tick count mismatch")
			}
		}
	})
}

// BenchmarkReplayDense pins the per-model replay cost over pre-converted
// dense ticks: the slab-writing ObserveInto path against the map-returning
// Observe path on the same model.
func BenchmarkReplayDense(b *testing.B) {
	run := benchPairRun(b)
	dense := models.RunTicksDense(run)
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			est := models.ReplayDense(models.NewScaphandre().New(benchSeed), dense)
			if len(est.OK) != len(run.Ticks) {
				b.Fatal("estimate count mismatch")
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ests := models.ReplayTicks(models.NewScaphandre().New(benchSeed), dense)
			if len(ests) != len(run.Ticks) {
				b.Fatal("estimate count mismatch")
			}
		}
	})
}

// BenchmarkShareOut pins the division kernel itself: the in-place column
// form against the map form (which allocates the result map and, in the
// wrapper, sorts the keys every call).
func BenchmarkShareOut(b *testing.B) {
	ids := []string{"fibonacci-3", "matrixprod-3", "int64-2", "rand-1"}
	weights := map[string]float64{}
	col := make([]units.Watts, len(ids))
	for i, id := range ids {
		weights[id] = float64(i + 1)
	}
	b.Run("into", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for s := range col {
				col[s] = units.Watts(s + 1)
			}
			if !models.ShareOutInto(40, col) {
				b.Fatal("no positive weight")
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if est := models.ShareOut(40, weights); est == nil {
				b.Fatal("no positive weight")
			}
		}
	})
}

// benchPairRun simulates one lab pair scenario — the shape every campaign
// replay consumes.
func benchPairRun(b *testing.B) *machine.Run {
	b.Helper()
	fib, _ := workload.StressByName("fibonacci")
	mat, _ := workload.StressByName("matrixprod")
	cfg := experiments.LabConfig(cpumodel.SmallIntel(), benchSeed)
	run, err := machine.Simulate(cfg, []machine.Proc{
		{ID: "fibonacci-3", Workload: fib, Threads: 3},
		{ID: "matrixprod-3", Workload: mat, Threads: 3},
	}, 30*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	return run
}

// BenchmarkSimulatorTick measures the raw simulator stepping cost on DAHU
// at full load — the substrate's own performance.
func BenchmarkSimulatorTick(b *testing.B) {
	w, _ := workload.StressByName("float64")
	cfg := experiments.LabConfig(cpumodel.Dahu(), benchSeed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := machine.Simulate(cfg, []machine.Proc{{ID: "p", Workload: w, Threads: 32}}, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func slug(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+32)
		default:
			out = append(out, '-')
		}
	}
	return string(out)
}

// BenchmarkExtensionProfileF2 evaluates the paper's §VI proposal: the
// profile-driven isolated-consumption estimator and the F2 model built on
// it, against Scaphandre on the same campaign.
func BenchmarkExtensionProfileF2(b *testing.B) {
	ctx := experiments.LabContext(cpumodel.SmallIntel(), benchSeed)
	var res experiments.ProfileResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.ProfileF2Evaluation(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	writeResult(b, res.Table(), "extension-profile-f2")
	if os.Getenv("POWERDIV_WRITE_RESULTS") != "" {
		if err := res.LOOTable().WriteCSV(filepath.Join("out", "extension-profile-f2-loo.csv")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionNestedDivision composes a host-level division among
// VMs with per-VM guest divisions — the paper's introduction scenario
// (provider and tenant as two actors).
func BenchmarkExtensionNestedDivision(b *testing.B) {
	cfg := experiments.ProdConfig(cpumodel.SmallIntel(), benchSeed)
	fib, _ := workload.StressByName("fibonacci")
	mat, _ := workload.StressByName("matrixprod")
	jmp, _ := workload.StressByName("jmp")
	rnd, _ := workload.StressByName("rand")
	vms := []vm.MultiVM{
		{Name: "vm0", VCPUs: 6, Guests: []machine.Proc{
			{ID: "fib", Workload: fib, Threads: 2},
			{ID: "mat", Workload: mat, Threads: 2},
		}},
		{Name: "vm1", VCPUs: 6, Guests: []machine.Proc{
			{ID: "jmp", Workload: jmp, Threads: 2},
			{ID: "rand", Workload: rnd, Threads: 2},
		}},
	}
	var last vm.NestedTick
	for i := 0; i < b.N; i++ {
		procs, err := vm.HostMulti(cfg, vms)
		if err != nil {
			b.Fatal(err)
		}
		run, err := machine.Simulate(cfg, procs, 10*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		ticks, err := vm.NestedDivision(run, models.NewScaphandre(), models.NewScaphandre(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		last = ticks[len(ticks)-1]
	}
	t := report.NewTable("Nested division — final tick", "account", "watts")
	for _, name := range []string{"vm0", "vm1"} {
		t.AddRowf(name, float64(last.PerVM[name]))
	}
	for _, id := range []string{"vm0/fib", "vm0/mat", "vm1/jmp", "vm1/rand"} {
		t.AddRowf(id, float64(last.PerGuest[id]))
	}
	writeResult(b, t, "extension-nested")
}

// BenchmarkExtensionMultiApp extends the campaign to 3-way scenarios.
func BenchmarkExtensionMultiApp(b *testing.B) {
	ctx := experiments.LabContext(cpumodel.SmallIntel(), benchSeed)
	var res experiments.MultiAppResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.MultiAppEvaluation(ctx, models.NewScaphandre(), workload.StressNames(), []int{2, 3}, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	writeResult(b, res.Table(), "extension-multiapp")
}

// BenchmarkExtensionEnergyLedger measures the accounting layer over a
// Section V colocation run.
func BenchmarkExtensionEnergyLedger(b *testing.B) {
	cfg := experiments.ProdConfig(cpumodel.SmallIntel(), benchSeed)
	b2, _ := workload.PhoronixByName("build2")
	dc, _ := workload.PhoronixByName("dacapo")
	run, err := vm.SimulateColocation(cfg, []vm.VM{
		{Name: "build2", VCPUs: 6, App: b2},
		{Name: "dacapo", VCPUs: 6, App: dc},
	}, 500*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var ledger *energyacct.Ledger
	for i := 0; i < b.N; i++ {
		ledger = energyacct.FromRun(run, models.NewScaphandre(), benchSeed)
		if err := ledger.Validate(); err != nil {
			b.Fatal(err)
		}
	}
	t := report.NewTable("Energy accounts — build2 ∥ dacapo", "account", "kJ")
	for _, e := range ledger.Entries() {
		t.AddRowf(e.ID, e.Energy.Kilojoules())
	}
	t.AddRowf("(unattributed)", ledger.Unattributed().Kilojoules())
	writeResult(b, t, "extension-ledger")
}

// BenchmarkExtensionBehaviorCorrelation quantifies §V-A's "mirroring"
// observation: the correlation of each attributed curve with its own vs
// the co-runner's solo signature.
func BenchmarkExtensionBehaviorCorrelation(b *testing.B) {
	cfg := experiments.ProdConfig(cpumodel.SmallIntel(), benchSeed)
	var r1, r2 experiments.BehaviorResult
	for i := 0; i < b.N; i++ {
		var err error
		r1, err = experiments.BehaviorCorrelation(cfg, models.NewScaphandre(), "build2", "dacapo", 6, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		r2, err = experiments.BehaviorCorrelation(cfg, models.NewScaphandre(), "compress-7zip", "cloverleaf", 6, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	writeResult(b, r1.Table(), "extension-behavior-build2-dacapo")
	writeResult(b, r2.Table(), "extension-behavior-7zip-cloverleaf")
}

// BenchmarkProductionContext runs the protocol campaign in the paper's
// production context (hyperthreading and turbo enabled) on both machines —
// §III-C defines the objective there too; the paper's campaign numbers are
// laboratory-only, so these rows are additional coverage.
func BenchmarkProductionContext(b *testing.B) {
	for _, spec := range cpumodel.Specs() {
		b.Run(slug(spec.Name), func(b *testing.B) {
			ctx := experiments.ProdContext(spec, benchSeed)
			var res experiments.ScatterResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiments.RatioScatter(ctx, models.NewScaphandre())
				if err != nil {
					b.Fatal(err)
				}
			}
			writeResult(b, res.Table(), "prod-scaphandre-"+slug(spec.Name))
		})
	}
}

// BenchmarkExtensionResidualAware evaluates the residual-aware model on
// the §IV-B campaign — the calibrated fix for challenge C3.
func BenchmarkExtensionResidualAware(b *testing.B) {
	ctx := experiments.LabContext(cpumodel.SmallIntel(), benchSeed)
	ra := models.NewResidualAwareFromSpec(cpumodel.SmallIntel())
	var res experiments.CappingResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.ResidualCapping(ctx, ra, workload.StressNames(), []int{1, 2, 3})
		if err != nil {
			b.Fatal(err)
		}
	}
	writeResult(b, res.Table(), "extension-residual-aware")
}

// BenchmarkExtensionTimeline quantifies the Fig 11 dynamic-context setting:
// a model's error and estimate coverage under application arrivals and
// departures (PowerAPI relearns at every change and loses roughly half its
// coverage on a three-phase timeline).
func BenchmarkExtensionTimeline(b *testing.B) {
	ctx := experiments.LabContext(cpumodel.SmallIntel(), benchSeed)
	mk := func(id string) protocol.TimelineApp {
		app, err := protocol.StressApp("int64", 2)
		if err != nil {
			b.Fatal(err)
		}
		app.ID = id
		return protocol.TimelineApp{App: app}
	}
	p0 := mk("P0")
	p1 := mk("P1")
	p1.Start, p1.Stop = 20*time.Second, 40*time.Second
	p2 := mk("P2")
	p2.Start = 40 * time.Second
	apps := []protocol.TimelineApp{p0, p1, p2}
	specs := []protocol.AppSpec{p0.App, p1.App, p2.App}
	baselines, err := protocol.MeasureBaselinesParallel(ctx, specs)
	if err != nil {
		b.Fatal(err)
	}
	results := map[string]protocol.TimelineResult{}
	for i := 0; i < b.N; i++ {
		for _, f := range experiments.PaperModels() {
			res, err := protocol.EvaluateTimeline(ctx, apps, f, baselines, time.Minute)
			if err != nil {
				b.Fatal(err)
			}
			results[f.Name] = res
		}
	}
	t := report.NewTable("Fig 11 timeline — model error and coverage under churn", "model", "AE", "coverage")
	for _, name := range []string{"scaphandre", "powerapi"} {
		r := results[name]
		t.AddRow(name, report.Percent(r.AE), report.Percent(r.Coverage))
	}
	writeResult(b, t, "extension-timeline")
}

// BenchmarkAblationPowerAPIDeterminism isolates how much of PowerAPI's
// DAHU error the calibration instability accounts for.
func BenchmarkAblationPowerAPIDeterminism(b *testing.B) {
	ctx := experiments.LabContext(cpumodel.Dahu(), benchSeed)
	var with, without float64
	for i := 0; i < b.N; i++ {
		var err error
		with, without, err = experiments.PowerAPIDeterminismAblation(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("PowerAPI mean AE with pathology: %.4f, without: %.4f", with, without)
}

// BenchmarkExtensionSmartWatts contrasts the per-frequency-bin SmartWatts
// calibration with PowerAPI under context churn: SmartWatts pays one
// warm-up per frequency bin instead of one per context.
func BenchmarkExtensionSmartWatts(b *testing.B) {
	ctx := experiments.LabContext(cpumodel.SmallIntel(), benchSeed)
	mk := func(id string) protocol.TimelineApp {
		app, err := protocol.StressApp("int64", 2)
		if err != nil {
			b.Fatal(err)
		}
		app.ID = id
		return protocol.TimelineApp{App: app}
	}
	p0 := mk("P0")
	p1 := mk("P1")
	p1.Start, p1.Stop = 20*time.Second, 40*time.Second
	p2 := mk("P2")
	p2.Start = 40 * time.Second
	apps := []protocol.TimelineApp{p0, p1, p2}
	baselines, err := protocol.MeasureBaselinesParallel(ctx, []protocol.AppSpec{p0.App, p1.App, p2.App})
	if err != nil {
		b.Fatal(err)
	}
	factories := []models.Factory{
		models.NewSmartWatts(models.DefaultSmartWattsConfig()),
		models.NewPowerAPI(models.DefaultPowerAPIConfig()),
	}
	results := map[string]protocol.TimelineResult{}
	for i := 0; i < b.N; i++ {
		for _, f := range factories {
			res, err := protocol.EvaluateTimeline(ctx, apps, f, baselines, time.Minute)
			if err != nil {
				b.Fatal(err)
			}
			results[f.Name] = res
		}
	}
	t := report.NewTable("SmartWatts vs PowerAPI under churn", "model", "AE", "coverage")
	for _, name := range []string{"smartwatts", "powerapi"} {
		r := results[name]
		t.AddRow(name, report.Percent(r.AE), report.Percent(r.Coverage))
	}
	writeResult(b, t, "extension-smartwatts")
}

// End-to-end integration tests exercising the public pipeline the way the
// examples and CLIs do: simulate → sense → divide → score → account.
package powerdiv_test

import (
	"math"
	"testing"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/division"
	"powerdiv/internal/energyacct"
	"powerdiv/internal/experiments"
	"powerdiv/internal/machine"
	"powerdiv/internal/models"
	"powerdiv/internal/protocol"
	"powerdiv/internal/rapl"
	"powerdiv/internal/vm"
	"powerdiv/internal/workload"
)

// TestEndToEndProtocolPipeline runs the full paper protocol on one pair
// through every layer, asserting the headline worst-case number.
func TestEndToEndProtocolPipeline(t *testing.T) {
	ctx := protocol.DefaultContext(machine.Config{
		Spec:        cpumodel.SmallIntel(),
		NoiseStddev: 0.25,
		Seed:        42,
	})
	fib, err := protocol.StressApp("fibonacci", 3)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := protocol.StressApp("matrixprod", 3)
	if err != nil {
		t.Fatal(err)
	}
	scenario := protocol.Scenario{Apps: []protocol.AppSpec{fib, mat}}
	baselines, err := protocol.MeasureBaselines(ctx, scenario.Apps)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := protocol.EvaluatePair(ctx, scenario, models.NewScaphandre(), baselines, protocol.ObjectiveActive, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's SMALL INTEL worst case: ≈11.7 %.
	if ev.AE < 0.10 || ev.AE > 0.13 {
		t.Errorf("worst-pair AE = %.4f, want ≈0.117", ev.AE)
	}
}

// TestEndToEndSensorRoundTrip verifies that dividing power read through
// the RAPL counter emulation equals dividing the simulator's power
// directly: the sensor layer is lossless for constant loads.
func TestEndToEndSensorRoundTrip(t *testing.T) {
	cfg := machine.Config{Spec: cpumodel.SmallIntel()}
	w0, _ := workload.StressByName("fibonacci")
	w1, _ := workload.StressByName("matrixprod")
	run, err := machine.Simulate(cfg, []machine.Proc{
		{ID: "p0", Workload: w0, Threads: 2},
		{ID: "p1", Workload: w1, Threads: 2},
	}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	zone := rapl.NewSimZone(run, 987654321)
	sensed, err := zone.Trace(run.Tick())
	if err != nil {
		t.Fatal(err)
	}
	direct := run.PowerSeries()
	if math.Abs(sensed.Mean()-direct.Mean()) > 0.01 {
		t.Errorf("sensed mean %v != direct mean %v", sensed.Mean(), direct.Mean())
	}
}

// TestEndToEndBillingScenario plays the provider use case: two tenant VMs,
// nested division, and a billing ledger per level.
func TestEndToEndBillingScenario(t *testing.T) {
	cfg := machine.Config{Spec: cpumodel.SmallIntel(), Hyperthreading: true, Turbo: true, Seed: 7}
	fib, _ := workload.StressByName("fibonacci")
	mat, _ := workload.StressByName("matrixprod")
	vms := []vm.MultiVM{
		{Name: "tenant-a", VCPUs: 6, Guests: []machine.Proc{
			{ID: "web", Workload: fib, Threads: 2},
			{ID: "db", Workload: mat, Threads: 2},
		}},
		{Name: "tenant-b", VCPUs: 6, Guests: []machine.Proc{
			{ID: "batch", Workload: mat, Threads: 4},
		}},
	}
	procs, err := vm.HostMulti(cfg, vms)
	if err != nil {
		t.Fatal(err)
	}
	run, err := machine.Simulate(cfg, procs, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ticks, err := vm.NestedDivision(run, models.NewScaphandre(), models.NewScaphandre(), 7)
	if err != nil {
		t.Fatal(err)
	}
	// Bill the tenants from the host-level division.
	bill := energyacct.New()
	for i, nt := range ticks {
		bill.Record(run.Tick(), run.Ticks[i].Power, nt.PerVM)
	}
	if err := bill.Validate(); err != nil {
		t.Fatal(err)
	}
	// tenant-b runs 4 threads of the hottest function; tenant-a runs 2+2
	// of mixed cost. CPU-time division bills them equally by core-seconds.
	a := bill.Energy("tenant-a")
	b := bill.Energy("tenant-b")
	if math.Abs(float64(a-b))/float64(a) > 0.02 {
		t.Errorf("equal-CPU tenants billed unequally: %v vs %v", a, b)
	}
	// Ground truth differs (tenant-b's workload is hotter per core but two
	// of its threads run as discounted SMT siblings): equal bills hide a
	// real asymmetry in either direction.
	var trueA, trueB float64
	rosterIDs := run.Roster.IDs()
	for _, rec := range run.Ticks {
		for slot, pt := range rec.Procs {
			if !pt.Present() {
				continue
			}
			vmName, _, _ := vm.SplitGuestID(rosterIDs[slot])
			if vmName == "tenant-a" {
				trueA += float64(pt.ActivePower)
			} else {
				trueB += float64(pt.ActivePower)
			}
		}
	}
	if diff := math.Abs(trueA-trueB) / trueA; diff < 0.05 {
		t.Errorf("ground-truth asymmetry = %.3f, want >5%% (a=%v b=%v)", diff, trueA, trueB)
	}
}

// TestEndToEndFamilyConsistency cross-checks the division formalism
// against a simulated pair: Eq 2 with the F1 policy reproduces what an
// active-share division of C produces.
func TestEndToEndFamilyConsistency(t *testing.T) {
	ctx := experiments.LabContext(cpumodel.SmallIntel(), 3)
	a0, _ := protocol.StressApp("queens", 2)
	a1, _ := protocol.StressApp("jmp", 2)
	baselines, err := protocol.MeasureBaselines(ctx, []protocol.AppSpec{a0, a1})
	if err != nil {
		t.Fatal(err)
	}
	bs := []division.Baseline{baselines[a0.ID], baselines[a1.ID]}
	shares := division.TruthShares(bs)

	// Eq 2: Ce_i = A_S − A_{S/P_i} + x·R with x = active share (F1).
	aS := bs[0].Active() + bs[1].Active() // lab context: additive
	r := bs[0].Residual                   // same residual for both (uncapped)
	ce0 := division.EstimateWithPolicy(aS, bs[1].Active(), r, shares[a0.ID])
	// Direct F1: share of C = A_S + R.
	want := float64(aS+r) * shares[a0.ID]
	if math.Abs(float64(ce0)-want) > 1e-9 {
		t.Errorf("Eq 2 F1 estimate %v != direct share %v", ce0, want)
	}
}

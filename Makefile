# Verify path for powerdiv. `make verify` is the gate every change must
# pass: build, vet, the full test suite, and the race detector (the live
# meter and the parallel campaign runner are the concurrency-sensitive
# paths it guards).

GO ?= go

.PHONY: build test vet race bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

verify: build vet test race

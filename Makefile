# Verify path for powerdiv. `make verify` is the gate every change must
# pass: build, vet, the full test suite, the race detector (the live meter,
# the parallel campaign runner and the run memoization cache are the
# concurrency-sensitive paths it guards), and a one-iteration benchmark
# smoke run.
#
# `make bench` runs the campaign benchmark set and writes the
# BENCH_campaign.json baseline (see README); `make bench-check` is the
# smoke variant CI can afford.

GO ?= go

.PHONY: build test vet race bench bench-check verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/powerdiv-bench -out BENCH_campaign.json

bench-check:
	$(GO) run ./cmd/powerdiv-bench -bench 'BenchmarkCampaignMemoization|BenchmarkSimulatorTick' -benchtime 1x -out ''

verify: build vet test race bench-check

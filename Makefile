# Verify path for powerdiv. `make verify` is the gate every change must
# pass: build, vet, the full test suite, the race detector (the live meter,
# the parallel campaign runner and the run memoization cache are the
# concurrency-sensitive paths it guards), and a one-iteration benchmark
# smoke run.
#
# `make bench` runs the campaign benchmark set and writes the
# BENCH_campaign.json baseline (see README); `make bench-check` is the
# smoke variant CI can afford; `make bench-diff` reruns the set against the
# committed baseline and fails past BENCH_THRESHOLD percent regression
# (the verify wiring runs it at one iteration with a generous threshold, so
# only order-of-magnitude regressions — a lost fast path, an alloc explosion
# — trip it, not scheduler noise).
#
# `make cover` enforces a statement-coverage floor on the numeric core
# (internal/division), the model implementations (internal/models), the
# metrics subsystem (internal/obs), the traffic generator
# (internal/traffic), the fleet campaign (internal/fleet) and the campaign
# service (internal/serve) — the packages whose behaviour the paper's
# numbers depend on most directly.
#
# `make fuzz-smoke` runs each fuzz target briefly (seed corpus plus a few
# seconds of mutation) so verify catches parser panics without a long
# fuzzing session.

GO ?= go

# Aggregate statement-coverage floor for COVER_PKGS, in percent. Current
# coverage is ~90 %; the floor trails it so refactors have headroom but a
# test-free feature drop still fails.
COVER_FLOOR ?= 85
COVER_PKGS  = ./internal/division ./internal/models ./internal/obs ./internal/traffic ./internal/fleet ./internal/serve

# Regression threshold (percent) for bench-diff. The default is generous
# because one-iteration runs are noisy; nightly runs can tighten it.
BENCH_THRESHOLD ?= 300

# Scenarios/sec regression threshold (percent) for the cold campaign rung.
# Cold iterations drop every cache tier first, so each does identical work
# and the rate is comparable across runs even at one iteration — gated at a
# generous margin so only a lost fast path trips it, not machine noise.
# The committed baseline reflects the segment-compiled cold path (~3x the
# per-tick engine), so losing the engine — e.g. the change-point
# enumeration silently declining — is a ~65% collapse and trips this gate.
BENCH_RATE_THRESHOLD ?= 60

.PHONY: build test vet fmt-check race cover bench bench-check bench-diff pprof fuzz-smoke serve-smoke verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

cover:
	$(GO) test -coverprofile=cover.out $(COVER_PKGS)
	@$(GO) tool cover -func=cover.out | awk -v floor=$(COVER_FLOOR) \
		'/^total:/ { pct = $$3; sub(/%/, "", pct); \
		 if (pct + 0 < floor) { printf "FAIL: coverage %s%% below floor %d%%\n", pct, floor; exit 1 } \
		 printf "coverage %s%% (floor %d%%)\n", pct, floor }'

race:
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/powerdiv-bench -out BENCH_campaign.json

bench-check:
	$(GO) run ./cmd/powerdiv-bench -bench 'BenchmarkCampaignMemoization|BenchmarkSimulatorTick' -benchtime 1x -out ''

bench-diff:
	$(GO) run ./cmd/powerdiv-bench -diff BENCH_campaign.json -threshold $(BENCH_THRESHOLD) -alloc-only \
		-rate-gate '^BenchmarkLabErrorTableCold' -rate-threshold $(BENCH_RATE_THRESHOLD) \
		-require-scaling 1.0 -benchtime 1x -out ''

# pprof captures CPU and heap profiles of the hot campaign rung for
# `go tool pprof cpu.prof` / `go tool pprof mem.prof` (both gitignored).
pprof:
	$(GO) test -run '^$$' -bench 'BenchmarkLabErrorTable$$/small-intel' \
		-benchtime 20x -cpuprofile cpu.prof -memprofile mem.prof .

fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzTraceJSON -fuzztime 5s ./internal/traffic
	$(GO) test -run=^$$ -fuzz=FuzzPowercapLayout -fuzztime 2s ./internal/rapl
	$(GO) test -run=^$$ -fuzz=FuzzParseCurveCSV -fuzztime 2s ./internal/cpumodel
	$(GO) test -run=^$$ -fuzz=FuzzSubmitJSON -fuzztime 3s ./internal/serve
	$(GO) test -run=^$$ -fuzz=FuzzSnapshotJSON -fuzztime 3s ./internal/serve

# serve-smoke boots the campaign daemon in-process, runs a 5-scenario
# streamed job over loopback HTTP, checks the NDJSON stream's shape, and
# drains — the end-to-end gate for cmd/powerdiv-serve.
serve-smoke:
	$(GO) run ./cmd/powerdiv-serve -smoke

verify: build vet fmt-check test race bench-check bench-diff fuzz-smoke serve-smoke

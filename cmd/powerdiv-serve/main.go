// Command powerdiv-serve is the campaign-as-a-service daemon: a
// long-running HTTP JSON API that accepts campaign, trace-replay,
// stress-pair and fleet submissions, shards them across the shared
// simulation worker budget, streams per-scenario results back as NDJSON,
// and snapshots progress so a killed daemon resumes bit-identically.
//
// Endpoints:
//
//	POST   /v1/jobs              submit ("stream":true streams NDJSON rows)
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         job status
//	GET    /v1/jobs/{id}/results NDJSON row stream (follows a running job)
//	DELETE /v1/jobs/{id}         cancel
//	GET    /healthz              liveness
//	GET    /metrics              Prometheus text (with -metrics)
//
// SIGINT/SIGTERM drains gracefully: admission closes (503), in-flight jobs
// finish and snapshot, then the daemon exits. A second signal — or the
// drain timeout — exits immediately; the periodic snapshots make that safe.
//
// Usage:
//
//	powerdiv-serve [-addr :8080] [-snapshot-dir DIR] [-cache-dir DIR]
//	               [-cache-bytes N] [-queue 8] [-runners 2]
//	               [-snapshot-every 4] [-drain-timeout 60s] [-metrics]
//	powerdiv-serve -smoke
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"powerdiv/internal/obs"
	"powerdiv/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	snapshotDir := flag.String("snapshot-dir", "", "job snapshot directory (empty = no durability)")
	cacheDir := flag.String("cache-dir", "", "persistent solo-run summary cache directory (empty = memory only)")
	cacheBytes := flag.Int64("cache-bytes", 0, "on-disk cache cap in bytes (0 = default 256 MB)")
	queueCap := flag.Int("queue", 8, "bounded job queue capacity (admission 429s past it)")
	runners := flag.Int("runners", 2, "concurrent jobs (simulation work shares GOMAXPROCS regardless)")
	snapshotEvery := flag.Int("snapshot-every", 4, "snapshot a running job every n completed rows")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "max wait for in-flight jobs on shutdown")
	metrics := flag.Bool("metrics", false, "enable internal metrics (/metrics, /metrics.json)")
	smoke := flag.Bool("smoke", false, "self-test: start in-process, run a 5-scenario job, exit")
	flag.Parse()

	obs.Enable(*metrics || *smoke)

	s, err := serve.New(serve.Options{
		SnapshotDir:    *snapshotDir,
		CacheDir:       *cacheDir,
		CacheDiskBytes: *cacheBytes,
		QueueCap:       *queueCap,
		Runners:        *runners,
		SnapshotEvery:  *snapshotEvery,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(2)
	}

	if *smoke {
		if err := runSmoke(s); err != nil {
			fmt.Fprintln(os.Stderr, "smoke: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("smoke: OK")
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(2)
	}
	hs := &http.Server{Handler: s.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	fmt.Printf("powerdiv-serve listening on %s (snapshots: %s)\n", ln.Addr(), orNone(*snapshotDir))

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(2)
	case got := <-sig:
		fmt.Printf("%s: draining (timeout %s; signal again to force)\n", got, *drainTimeout)
	}
	forced := make(chan struct{})
	go func() {
		<-sig
		close(forced)
	}()
	drained := make(chan bool, 1)
	go func() { drained <- s.Drain(*drainTimeout) }()
	select {
	case ok := <-drained:
		hs.Close()
		if !ok {
			fmt.Fprintln(os.Stderr, "drain timed out; in-flight jobs resume from snapshots on restart")
			os.Exit(1)
		}
		fmt.Println("drained")
	case <-forced:
		hs.Close()
		fmt.Fprintln(os.Stderr, "forced exit; in-flight jobs resume from snapshots on restart")
		os.Exit(1)
	}
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

// runSmoke exercises the full service path in-process: loopback listener,
// one streamed 5-scenario submission, NDJSON well-formedness checks, then a
// graceful drain. It is the `make serve-smoke` gate.
func runSmoke(s *serve.Server) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	spec := map[string]any{
		"kind": "traffic", "seed": 42, "scenarios": 5,
		"window_ms": 4000, "run_for_ms": 5000, "stable_window_ms": 2000,
		"stream": true,
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 5 * time.Minute}
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("submit: status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		return fmt.Errorf("submit: content type %q, want application/x-ndjson", ct)
	}

	rows, terminal := 0, false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if terminal {
			return fmt.Errorf("stream continued past the terminal line")
		}
		var obj map[string]json.RawMessage
		if err := json.Unmarshal(line, &obj); err != nil {
			return fmt.Errorf("malformed NDJSON line %q: %w", line, err)
		}
		if _, ok := obj["done"]; ok {
			terminal = true
			var state string
			if err := json.Unmarshal(obj["state"], &state); err != nil || state != "done" {
				return fmt.Errorf("terminal state %s, want done", obj["state"])
			}
			continue
		}
		if _, ok := obj["models"]; !ok {
			return fmt.Errorf("row line %q has no model scores", line)
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !terminal {
		return fmt.Errorf("stream ended without a terminal line")
	}
	if rows != 5 {
		return fmt.Errorf("streamed %d rows, want 5", rows)
	}
	if !s.Drain(time.Minute) {
		return fmt.Errorf("drain timed out")
	}
	fmt.Printf("smoke: 5 scenario rows + terminal line, drained\n")
	return nil
}

package main

import (
	"regexp"
	"runtime"
	"testing"
)

func TestParseLine(t *testing.T) {
	res, ok := parseLine("BenchmarkCampaignParallel/workers-2-8 \t 3 \t 41000000 ns/op \t 1200 B/op \t 14 allocs/op \t 5321.5 scenarios/sec")
	if !ok {
		t.Fatal("well-formed line rejected")
	}
	if res.Name != "BenchmarkCampaignParallel/workers-2-8" || res.Iterations != 3 {
		t.Fatalf("name/iters parsed as %q/%d", res.Name, res.Iterations)
	}
	if res.NsPerOp != 41000000 || res.BytesPerOp != 1200 || res.AllocsPerOp != 14 {
		t.Fatalf("cost metrics parsed as %v/%v/%v", res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}
	if res.Metrics["scenarios/sec"] != 5321.5 {
		t.Fatalf("custom metric parsed as %v", res.Metrics)
	}
	if res.GOMAXPROCS != 8 {
		t.Fatalf("GOMAXPROCS suffix parsed as %d, want 8", res.GOMAXPROCS)
	}
	if res.NumCPU != runtime.NumCPU() {
		t.Fatalf("NumCPU recorded as %d, want host %d", res.NumCPU, runtime.NumCPU())
	}
	if _, ok := parseLine("ok  \tpowerdiv\t1.2s"); ok {
		t.Fatal("non-benchmark line accepted")
	}
}

func TestStripProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-8":                        "BenchmarkX",
		"BenchmarkCampaignParallel/workers-2": "BenchmarkCampaignParallel/workers",
		"BenchmarkX":                          "BenchmarkX",
		"BenchmarkX-abc":                      "BenchmarkX-abc",
	} {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func scalingReport(numCPU int, w1, w2 float64) Report {
	rep := Report{NumCPU: numCPU}
	if w1 > 0 {
		rep.Benchmarks = append(rep.Benchmarks, Result{
			Name:    "BenchmarkCampaignParallel/workers-1-4",
			Metrics: map[string]float64{"scenarios/sec": w1},
		})
	}
	if w2 > 0 {
		rep.Benchmarks = append(rep.Benchmarks, Result{
			Name:    "BenchmarkCampaignParallel/workers-2-4",
			Metrics: map[string]float64{"scenarios/sec": w2},
		})
	}
	return rep
}

// labScaling picks the lab-campaign ladder's verdict out of the
// per-ladder results.
func labScaling(t *testing.T, rep Report, min float64) scalingResult {
	t.Helper()
	for _, res := range scalingChecks(rep, min) {
		if res.bench == "BenchmarkCampaignParallel" {
			return res
		}
	}
	t.Fatal("lab ladder missing from scaling results")
	return scalingResult{}
}

// TestScalingCheck pins the multi-core gate: a single-CPU host skips, a
// missing rung skips, a second worker that helps passes, one that doesn't
// fails.
func TestScalingCheck(t *testing.T) {
	if res := labScaling(t, scalingReport(1, 100, 200), 1.0); !res.ok || res.skip == "" {
		t.Fatal("single-CPU host did not skip")
	}
	if res := labScaling(t, scalingReport(4, 100, 0), 1.0); !res.ok || res.skip == "" {
		t.Fatal("missing workers-2 rung did not skip")
	}
	res := labScaling(t, scalingReport(4, 100, 170), 1.3)
	if res.skip != "" || !res.ok || res.speedup != 1.7 {
		t.Fatalf("healthy scaling judged %v/%v/%q", res.speedup, res.ok, res.skip)
	}
	res = labScaling(t, scalingReport(4, 100, 95), 1.0)
	if res.skip != "" || res.ok || res.speedup != 0.95 {
		t.Fatalf("flat scaling judged %v/%v/%q", res.speedup, res.ok, res.skip)
	}
}

// TestScalingCheckFleetLadder pins that the fleet campaign's worker ladder
// is gated alongside the lab one, on its own nodes/sec metric.
func TestScalingCheckFleetLadder(t *testing.T) {
	rep := Report{NumCPU: 4, Benchmarks: []Result{
		{Name: "BenchmarkFleetCampaign/workers-1-4", Metrics: map[string]float64{"nodes/sec": 100}},
		{Name: "BenchmarkFleetCampaign/workers-2-4", Metrics: map[string]float64{"nodes/sec": 80}},
	}}
	var fleet *scalingResult
	for _, res := range scalingChecks(rep, 1.0) {
		if res.bench == "BenchmarkFleetCampaign" {
			r := res
			fleet = &r
		}
	}
	if fleet == nil {
		t.Fatal("fleet ladder missing from scaling results")
	}
	if fleet.skip != "" || fleet.ok || fleet.speedup != 0.8 {
		t.Fatalf("fleet negative scaling judged %v/%v/%q", fleet.speedup, fleet.ok, fleet.skip)
	}
	if fleet.metric != "nodes/sec" {
		t.Fatalf("fleet ladder gated on %q, want nodes/sec", fleet.metric)
	}
}

func rateReport(name string, rate, allocs float64) Report {
	return Report{Benchmarks: []Result{{
		Name:        name,
		NsPerOp:     1000,
		AllocsPerOp: allocs,
		Metrics:     map[string]float64{"scenarios/sec": rate},
	}}}
}

// TestDiffReportsRateGate pins the alloc-only smoke gate's rate escape
// hatch: without a rateGate a throughput collapse passes alloc-only runs;
// with one, matching benchmarks fail past the rate threshold while
// non-matching ones stay exempt — and alloc regressions still gate as
// before.
func TestDiffReportsRateGate(t *testing.T) {
	base := rateReport("BenchmarkLabErrorTableCold/small-intel-4", 1000, 50)
	slow := rateReport("BenchmarkLabErrorTableCold/small-intel-4", 300, 50)

	regressed := func(lines []diffLine) bool {
		for _, l := range lines {
			if l.regressed {
				return true
			}
		}
		return false
	}

	allocOnly := gateConfig{thresholdPct: 300, allocOnly: true}
	if regressed(diffReports(base, slow, allocOnly)) {
		t.Fatal("alloc-only run gated a rate metric without a rateGate")
	}
	gated := allocOnly
	gated.rateGate = regexp.MustCompile("^BenchmarkLabErrorTableCold")
	gated.rateThresholdPct = 60
	if !regressed(diffReports(base, slow, gated)) {
		t.Fatal("rate-gated benchmark's 70% collapse passed")
	}
	mild := rateReport("BenchmarkLabErrorTableCold/small-intel-4", 700, 50)
	if regressed(diffReports(base, mild, gated)) {
		t.Fatal("30% dip failed a 60% rate threshold")
	}
	other := rateReport("BenchmarkCampaignParallel/workers-1-4", 1000, 50)
	otherSlow := rateReport("BenchmarkCampaignParallel/workers-1-4", 300, 50)
	if regressed(diffReports(other, otherSlow, gated)) {
		t.Fatal("non-matching benchmark was rate-gated")
	}
	allocBlowup := rateReport("BenchmarkLabErrorTableCold/small-intel-4", 1000, 50*10)
	if !regressed(diffReports(base, allocBlowup, gated)) {
		t.Fatal("alloc explosion passed the alloc gate")
	}
}

// Command powerdiv-bench runs the campaign benchmarks and writes a
// machine-readable baseline file, so perf regressions show up as a diff
// instead of a feeling. It shells out to `go test -bench` (the benchmarks
// live in the root package's bench_test.go), parses the standard benchmark
// output, and emits JSON with ns/op, B/op, allocs/op and any custom metrics
// (scenarios/sec) per benchmark, plus the memoization on/off speedup when
// both sides of BenchmarkCampaignMemoization are present.
//
// Usage:
//
//	powerdiv-bench [-bench regex] [-benchtime 1x] [-count 1] [-out BENCH_campaign.json]
//	powerdiv-bench -diff BENCH_campaign.json [-threshold 25]
//
// `make bench` runs the campaign set and writes BENCH_campaign.json;
// `make bench-check` is the smoke variant (one iteration, no file);
// `make bench-diff` reruns the set and compares it against the committed
// baseline, failing when any benchmark regresses past the threshold.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// defaultBench selects the campaign-speed benchmarks: the §IV-A error-table
// regeneration (streaming, plus its materialized counterpart via the
// substring match), the worker-width sweep, the memoization on/off
// comparison, the production-shaped traffic campaign, the fleet-scale
// campaign across its worker ladder, the raw simulator stepping cost, and
// the allocation-pinning columnar-pipeline benchmarks.
const defaultBench = "BenchmarkLabErrorTable|BenchmarkCampaignParallel|BenchmarkCampaignMemoization|BenchmarkTrafficCampaign|BenchmarkFleetCampaign|BenchmarkSimulatorTick|BenchmarkRunTicks|BenchmarkReplayDense|BenchmarkShareOut"

// Result is one parsed benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp are present with -benchmem (always passed).
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// NumCPU is the host CPU count the entry was recorded on and
	// GOMAXPROCS the parallelism encoded in the benchmark name's -N
	// suffix — per entry, so baselines recorded on different machines
	// stay interpretable (a scenarios/sec value means nothing without
	// the CPU budget it ran under).
	NumCPU     int `json:"num_cpu,omitempty"`
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	// Metrics holds custom b.ReportMetric units, e.g. "scenarios/sec".
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file layout of BENCH_campaign.json.
type Report struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// GOMAXPROCS is the parallelism the benchmarks actually ran with (it is
	// also the -N suffix on benchmark names); older baselines omit it.
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`
	Command    string `json:"command"`
	// MemoSpeedupX is BenchmarkCampaignMemoization off/on ns ratio — how
	// much the run cache accelerates the all-pairs lab campaign — when both
	// sub-benchmarks ran.
	MemoSpeedupX float64  `json:"memo_speedup_x,omitempty"`
	Benchmarks   []Result `json:"benchmarks"`
}

// parseLine parses one `BenchmarkX-N  iters  v unit  v unit ...` line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters, NumCPU: runtime.NumCPU()}
	if i := strings.LastIndex(res.Name, "-"); i > 0 {
		if n, err := strconv.Atoi(res.Name[i+1:]); err == nil && n > 0 {
			res.GOMAXPROCS = n
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
	}
	return res, true
}

// memoSpeedup derives the off/on ratio from the memoization benchmark pair.
func memoSpeedup(results []Result) float64 {
	var on, off float64
	for _, r := range results {
		name := r.Name
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i] // drop the GOMAXPROCS suffix
		}
		switch name {
		case "BenchmarkCampaignMemoization/on":
			on = r.NsPerOp
		case "BenchmarkCampaignMemoization/off":
			off = r.NsPerOp
		}
	}
	if on <= 0 || off <= 0 {
		return 0
	}
	return off / on
}

// stripProcs drops the -N GOMAXPROCS suffix from a benchmark name.
func stripProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// scalingLadders are the worker-width benchmark ladders the
// -require-scaling gate checks, each with the throughput metric its rungs
// report: the single-machine lab campaign and the fleet campaign (whose
// per-node tasks are batched precisely so a second worker helps rather
// than hurts).
var scalingLadders = []struct{ bench, metric string }{
	{"BenchmarkCampaignParallel", "scenarios/sec"},
	{"BenchmarkFleetCampaign", "nodes/sec"},
}

// scalingResult is one ladder's -require-scaling verdict.
type scalingResult struct {
	bench   string
	metric  string
	speedup float64
	ok      bool
	skip    string
}

// scalingChecks verifies that the campaigns actually get faster with a
// second CPU: for each ladder it compares the throughput of the workers-2
// rung against workers-1 and requires at least minSpeedup. A ladder is
// skipped (skip non-empty) when the host has fewer than two CPUs — a
// second worker cannot run anywhere — or when either rung is absent from
// the report.
func scalingChecks(rep Report, minSpeedup float64) []scalingResult {
	out := make([]scalingResult, 0, len(scalingLadders))
	for _, l := range scalingLadders {
		res := scalingResult{bench: l.bench, metric: l.metric, ok: true}
		if rep.NumCPU < 2 {
			res.skip = fmt.Sprintf("host has %d CPU(s); parallel speedup is unmeasurable", rep.NumCPU)
			out = append(out, res)
			continue
		}
		var w1, w2 float64
		for _, r := range rep.Benchmarks {
			switch stripProcs(r.Name) {
			case l.bench + "/workers-1":
				w1 = r.Metrics[l.metric]
			case l.bench + "/workers-2":
				w2 = r.Metrics[l.metric]
			}
		}
		if w1 <= 0 || w2 <= 0 {
			res.skip = l.bench + " workers-1/workers-2 rungs not present"
			out = append(out, res)
			continue
		}
		res.speedup = w2 / w1
		res.ok = res.speedup >= minSpeedup
		out = append(out, res)
	}
	return out
}

// deltaPct is the relative change from old to new in percent; 0 when the
// old value is zero (nothing to compare against).
func deltaPct(old, cur float64) float64 {
	if old == 0 {
		return 0
	}
	return (cur - old) / old * 100
}

// diffLine is one metric comparison of a benchmark against the baseline.
type diffLine struct {
	bench, metric string
	old, cur      float64
	pct           float64
	// regressed marks a change past the threshold in the bad direction
	// (up for costs, down for throughput metrics).
	regressed bool
}

// gateConfig selects which deltas may fail a diff. allocOnly restricts the
// gate to the metrics that stay deterministic at one iteration; rateGate
// re-enables the /sec gate for benchmarks matching it (with its own, more
// generous threshold), so campaign-throughput regressions are caught even
// in alloc-only smoke runs — a whole-campaign iteration is milliseconds of
// work whose rate is stable, unlike a sub-microsecond kernel's.
type gateConfig struct {
	thresholdPct     float64
	allocOnly        bool
	rateGate         *regexp.Regexp
	rateThresholdPct float64
}

// diffReports compares the current run against a baseline, benchmark by
// benchmark. Cost metrics regress upward: ns/op, B/op, allocs/op, and any
// custom metric that is not a rate (peak-heap-bytes). Throughput metrics —
// custom metrics whose unit contains "/sec", like scenarios/sec — regress
// downward. Benchmarks present on only one side are reported but never fail
// the diff. cfg.allocOnly restricts the failure gate to the metrics that
// stay deterministic at one iteration — B/op and allocs/op, plus custom
// cost metrics like the heap watermark — while still reporting every delta
// (the smoke wiring uses it; timing and rates at -benchtime 1x swing by
// orders of magnitude on sub-microsecond benchmarks).
func diffReports(baseline, current Report, cfg gateConfig) []diffLine {
	thresholdPct, allocOnly := cfg.thresholdPct, cfg.allocOnly
	base := map[string]Result{}
	for _, r := range baseline.Benchmarks {
		base[r.Name] = r
	}
	var out []diffLine
	for _, r := range current.Benchmarks {
		b, ok := base[r.Name]
		if !ok {
			out = append(out, diffLine{bench: r.Name, metric: "(not in baseline)"})
			continue
		}
		costs := []struct {
			metric   string
			old, cur float64
			gated    bool
		}{
			{"ns/op", b.NsPerOp, r.NsPerOp, !allocOnly},
			{"B/op", b.BytesPerOp, r.BytesPerOp, true},
			{"allocs/op", b.AllocsPerOp, r.AllocsPerOp, true},
		}
		for _, c := range costs {
			pct := deltaPct(c.old, c.cur)
			out = append(out, diffLine{
				bench: r.Name, metric: c.metric, old: c.old, cur: c.cur,
				pct: pct, regressed: c.gated && pct > thresholdPct,
			})
		}
		for unit, old := range b.Metrics {
			cur, ok := r.Metrics[unit]
			if !ok {
				continue
			}
			pct := deltaPct(old, cur)
			regressed := false
			if strings.Contains(unit, "/sec") {
				// A rate: lower is worse, and like ns/op it is only
				// meaningful with real iteration counts — except for the
				// benchmarks the rate gate singles out, whose per-iteration
				// rates are stable enough to police.
				gated, th := !allocOnly, thresholdPct
				if cfg.rateGate != nil && cfg.rateGate.MatchString(r.Name) {
					gated, th = true, cfg.rateThresholdPct
				}
				regressed = gated && pct < -th
			} else {
				// A cost (e.g. peak-heap-bytes): higher is worse, and like
				// B/op it stays comparable even in one-iteration smoke runs.
				regressed = pct > thresholdPct
			}
			out = append(out, diffLine{
				bench: r.Name, metric: unit, old: old, cur: cur,
				pct: pct, regressed: regressed,
			})
		}
	}
	return out
}

// printDiff renders the comparison and returns how many lines regressed.
func printDiff(baseline string, lines []diffLine) int {
	fmt.Printf("\ncomparison against %s:\n", baseline)
	regressions := 0
	for _, l := range lines {
		if l.metric == "(not in baseline)" {
			fmt.Printf("  %-60s %s\n", l.bench, l.metric)
			continue
		}
		mark := ""
		if l.regressed {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Printf("  %-60s %-14s %14.4g -> %14.4g  %+7.1f%%%s\n",
			l.bench, l.metric, l.old, l.cur, l.pct, mark)
	}
	return regressions
}

func main() {
	bench := flag.String("bench", defaultBench, "benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "", "go test -benchtime value (e.g. 1x, 2s); empty = go default")
	count := flag.Int("count", 1, "go test -count value")
	out := flag.String("out", "BENCH_campaign.json", `output file; "-" prints JSON to stdout, "" skips the file (smoke mode)`)
	diff := flag.String("diff", "", "baseline JSON to compare against; exits non-zero on regressions past -threshold")
	threshold := flag.Float64("threshold", 25, "regression threshold in percent for -diff")
	allocOnly := flag.Bool("alloc-only", false, "gate -diff on B/op and allocs/op only (timing still reported); for one-iteration smoke runs")
	rateGate := flag.String("rate-gate", "", "regex of benchmarks whose /sec metrics are gated in -diff even with -alloc-only")
	rateThreshold := flag.Float64("rate-threshold", 60, "regression threshold in percent for -rate-gate rates")
	requireScaling := flag.Float64("require-scaling", 0, "minimum workers-2/workers-1 scenarios/sec speedup to assert (0 disables; skipped on <2 CPU hosts)")
	flag.Parse()

	var rateGateRe *regexp.Regexp
	if *rateGate != "" {
		re, err := regexp.Compile(*rateGate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: -rate-gate: %v\n", err)
			os.Exit(1)
		}
		rateGateRe = re
	}

	var baseline Report
	if *diff != "" {
		buf, err := os.ReadFile(*diff)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(buf, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "error: parsing %s: %v\n", *diff, err)
			os.Exit(1)
		}
	}

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", "-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	args = append(args, ".")
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if err := cmd.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	var results []Result
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // stream the raw go test output through
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if err := cmd.Wait(); err != nil {
		fmt.Fprintln(os.Stderr, "benchmarks failed:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "error: no benchmark lines matched", *bench)
		os.Exit(1)
	}

	rep := Report{
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Command:      "go " + strings.Join(args, " "),
		MemoSpeedupX: memoSpeedup(results),
		Benchmarks:   results,
	}
	if rep.MemoSpeedupX > 0 {
		fmt.Printf("\nmemoization speedup on the lab campaign: %.2fx\n", rep.MemoSpeedupX)
	}
	if *requireScaling > 0 {
		failed := 0
		for _, res := range scalingChecks(rep, *requireScaling) {
			switch {
			case res.skip != "":
				fmt.Printf("parallel scaling check skipped (%s): %s\n", res.bench, res.skip)
			case !res.ok:
				fmt.Fprintf(os.Stderr, "error: %s workers-2 ran %.2fx the %s of workers-1 (need >= %.2fx)\n", res.bench, res.speedup, res.metric, *requireScaling)
				failed++
			default:
				fmt.Printf("parallel scaling (%s): workers-2 is %.2fx workers-1 (>= %.2fx required)\n", res.bench, res.speedup, *requireScaling)
			}
		}
		if failed > 0 {
			os.Exit(1)
		}
	}
	if *diff != "" {
		cfg := gateConfig{
			thresholdPct:     *threshold,
			allocOnly:        *allocOnly,
			rateGate:         rateGateRe,
			rateThresholdPct: *rateThreshold,
		}
		if n := printDiff(*diff, diffReports(baseline, rep, cfg)); n > 0 {
			fmt.Fprintf(os.Stderr, "error: %d metric(s) regressed more than %.0f%%\n", n, *threshold)
			os.Exit(1)
		}
		fmt.Printf("no regressions past %.0f%%\n", *threshold)
	}
	switch *out {
	case "":
		return
	case "-":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	default:
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}
}

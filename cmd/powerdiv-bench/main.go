// Command powerdiv-bench runs the campaign benchmarks and writes a
// machine-readable baseline file, so perf regressions show up as a diff
// instead of a feeling. It shells out to `go test -bench` (the benchmarks
// live in the root package's bench_test.go), parses the standard benchmark
// output, and emits JSON with ns/op, B/op, allocs/op and any custom metrics
// (scenarios/sec) per benchmark, plus the memoization on/off speedup when
// both sides of BenchmarkCampaignMemoization are present.
//
// Usage:
//
//	powerdiv-bench [-bench regex] [-benchtime 1x] [-count 1] [-out BENCH_campaign.json]
//
// `make bench` runs the campaign set and writes BENCH_campaign.json;
// `make bench-check` is the smoke variant (one iteration, no file).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// defaultBench selects the campaign-speed benchmarks: the §IV-A error-table
// regeneration, the memoization on/off comparison, and the raw simulator
// stepping cost.
const defaultBench = "BenchmarkLabErrorTable|BenchmarkCampaignMemoization|BenchmarkSimulatorTick"

// Result is one parsed benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp are present with -benchmem (always passed).
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric units, e.g. "scenarios/sec".
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file layout of BENCH_campaign.json.
type Report struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	Command   string `json:"command"`
	// MemoSpeedupX is BenchmarkCampaignMemoization off/on ns ratio — how
	// much the run cache accelerates the all-pairs lab campaign — when both
	// sub-benchmarks ran.
	MemoSpeedupX float64  `json:"memo_speedup_x,omitempty"`
	Benchmarks   []Result `json:"benchmarks"`
}

// parseLine parses one `BenchmarkX-N  iters  v unit  v unit ...` line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
	}
	return res, true
}

// memoSpeedup derives the off/on ratio from the memoization benchmark pair.
func memoSpeedup(results []Result) float64 {
	var on, off float64
	for _, r := range results {
		name := r.Name
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i] // drop the GOMAXPROCS suffix
		}
		switch name {
		case "BenchmarkCampaignMemoization/on":
			on = r.NsPerOp
		case "BenchmarkCampaignMemoization/off":
			off = r.NsPerOp
		}
	}
	if on <= 0 || off <= 0 {
		return 0
	}
	return off / on
}

func main() {
	bench := flag.String("bench", defaultBench, "benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "", "go test -benchtime value (e.g. 1x, 2s); empty = go default")
	count := flag.Int("count", 1, "go test -count value")
	out := flag.String("out", "BENCH_campaign.json", `output file; "-" prints JSON to stdout, "" skips the file (smoke mode)`)
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", "-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	args = append(args, ".")
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if err := cmd.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	var results []Result
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // stream the raw go test output through
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if err := cmd.Wait(); err != nil {
		fmt.Fprintln(os.Stderr, "benchmarks failed:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "error: no benchmark lines matched", *bench)
		os.Exit(1)
	}

	rep := Report{
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		Command:      "go " + strings.Join(args, " "),
		MemoSpeedupX: memoSpeedup(results),
		Benchmarks:   results,
	}
	if rep.MemoSpeedupX > 0 {
		fmt.Printf("\nmemoization speedup on the lab campaign: %.2fx\n", rep.MemoSpeedupX)
	}
	switch *out {
	case "":
		return
	case "-":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	default:
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}
}

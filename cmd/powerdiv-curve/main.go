// Command powerdiv-curve regenerates the paper's machine power curves:
// Fig 1 (hyperthreading and turboboost disabled) and Fig 3 (both enabled),
// for the built-in machine calibrations.
//
// Usage:
//
//	powerdiv-curve [-machine "SMALL INTEL"] [-ht] [-turbo] [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/experiments"
	"powerdiv/internal/machine"
)

func main() {
	machineName := flag.String("machine", "SMALL INTEL", `machine calibration ("SMALL INTEL" or "DAHU")`)
	ht := flag.Bool("ht", false, "enable hyperthreading (Fig 3 context)")
	turbo := flag.Bool("turbo", false, "enable turboboost (Fig 3 context)")
	csv := flag.String("csv", "", "also write the curve to this CSV file")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	spec, ok := cpumodel.SpecByName(*machineName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown machine %q; built-ins:\n", *machineName)
		for _, s := range cpumodel.Specs() {
			fmt.Fprintf(os.Stderr, "  %s\n", s.Name)
		}
		os.Exit(2)
	}
	cfg := machine.Config{
		Spec:           spec,
		Hyperthreading: *ht,
		Turbo:          *turbo,
		NoiseStddev:    experiments.DefaultNoise,
		Seed:           *seed,
	}
	res, err := experiments.PowerCurve(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	table := res.Table()
	fmt.Print(table.String())
	fmt.Printf("\nidle→1-thread gap: %s   band at full load: %s\n",
		res.ResidualGap(), res.BandWidthAtFull())
	if *csv != "" {
		if err := table.WriteCSV(*csv); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *csv)
	}
}

// Command powerdiv-fit calibrates a machine power model from load-curve
// measurements: feed it a CSV of (cores, freq_ghz, power_w) rows — idle at
// cores 0, then mean machine power at 1..N busy cores, optionally at
// several cpufreq caps — and it fits the idle floor, the residual curve
// R(f), the frequency exponent and the probe workload's per-core cost,
// exactly the quantities the paper's §III-B establishes by hand.
//
// With -demo it instead synthesises the sweep from a built-in machine
// calibration and fits that, demonstrating the round trip.
//
// Usage:
//
//	powerdiv-fit curve.csv
//	powerdiv-fit -demo -machine DAHU
package main

import (
	"flag"
	"fmt"
	"os"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/report"
	"powerdiv/internal/units"
)

func main() {
	demo := flag.Bool("demo", false, "fit a synthetic sweep from a built-in calibration")
	machineName := flag.String("machine", "SMALL INTEL", "built-in calibration for -demo")
	smt := flag.Float64("smt", 0.3, "SMT efficiency for the fitted model (not fittable from single-thread sweeps)")
	flag.Parse()

	var samples []cpumodel.CurveSample
	switch {
	case *demo:
		spec, ok := cpumodel.SpecByName(*machineName)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown machine %q\n", *machineName)
			os.Exit(2)
		}
		samples = demoSweep(spec)
		fmt.Printf("synthetic sweep from %s (%d samples)\n\n", spec.Name, len(samples))
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer f.Close()
		samples, err = cpumodel.ParseCurveCSV(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: powerdiv-fit curve.csv  |  powerdiv-fit -demo [-machine DAHU]")
		os.Exit(2)
	}

	res, err := cpumodel.FitPowerModel(samples, *smt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fit error:", err)
		os.Exit(1)
	}
	t := report.NewTable("Fitted power model", "quantity", "value")
	t.AddRow("idle", res.Model.Idle.String())
	t.AddRow("base frequency", res.Model.BaseFreq.String())
	t.AddRowf("frequency exponent", res.Model.FreqExponent)
	t.AddRow("probe cost per core (at base)", res.ProbeCostAtBase.String())
	fmt.Print(t.String())

	rt := report.NewTable("\nResidual curve R(f) — idle included", "frequency", "R", "fit RMS")
	for _, p := range res.Model.Residual.Points() {
		rms := res.Residuals[p.Freq]
		rt.AddRow(p.Freq.String(), (res.Model.Idle + p.R).String(), fmt.Sprintf("%.3f W", rms))
	}
	fmt.Print(rt.String())
}

// demoSweep synthesises a three-frequency sweep from a built-in spec.
func demoSweep(spec cpumodel.Spec) []cpumodel.CurveSample {
	m := spec.Power
	samples := []cpumodel.CurveSample{{Cores: 0, Power: m.Idle}}
	freqs := []units.Hertz{spec.Freq.Min, (spec.Freq.Min + spec.Freq.Base) / 2, spec.Freq.Base}
	const cost = 6.0
	for _, f := range freqs {
		for n := 1; n <= spec.Topology.PhysicalCores(); n++ {
			loads := make([]cpumodel.CoreLoad, n)
			for i := range loads {
				loads[i] = cpumodel.CoreLoad{Util: 1, CostAtBase: cost, Freq: f}
			}
			samples = append(samples, cpumodel.CurveSample{Cores: n, Freq: f, Power: m.Power(loads).Total()})
		}
	}
	return samples
}

// Command powerdiv-live is a Scaphandre-style live power meter for a real
// Linux machine: it reads Intel RAPL through /sys/class/powercap, tracks
// per-process CPU time through /proc, and divides the measured package
// power among the observed processes each interval.
//
// On machines without RAPL it exits with a clear message (run the
// simulator-backed tools instead). Both roots are injectable, so the tool
// can also be pointed at recorded sysfs/proc trees.
//
// The meter survives degraded conditions: transient sysfs/procfs read
// errors are retried, unreadable ticks are folded into the next sample
// (reported as warnings, never lost), and vanished RAPL zones degrade the
// meter to the survivors. Only the loss of every zone is fatal.
//
// Usage:
//
//	powerdiv-live [-interval 1s] [-count 10] [-pids 123,456] [-burn matrixprod]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/livemeter"
	"powerdiv/internal/models"
	"powerdiv/internal/obs"
	"powerdiv/internal/procfs"
	"powerdiv/internal/rapl"
	"powerdiv/internal/stressng"
)

func main() {
	interval := flag.Duration("interval", time.Second, "sampling interval")
	count := flag.Int("count", 10, "number of samples (0 = run forever)")
	pidList := flag.String("pids", "", "comma-separated PIDs to attribute to (default: all)")
	powercapRoot := flag.String("powercap-root", "", "powercap sysfs root (default /sys/class/powercap)")
	procRoot := flag.String("proc-root", "", "procfs root (default /proc)")
	cpufreqRoot := flag.String("cpufreq-root", "", "cpufreq sysfs root (default /sys/devices/system/cpu)")
	modelName := flag.String("model", "scaphandre", `division model: "scaphandre" or "residual-aware"`)
	calib := flag.String("calib", "", "curve CSV for -model residual-aware (see powerdiv-fit)")
	burn := flag.String("burn", "", "also run this stress kernel locally while metering (e.g. matrixprod)")
	metricsAddr := flag.String("metrics-addr", "", `serve internal metrics on this address (e.g. ":9090"): Prometheus text at /metrics, JSON at /metrics.json`)
	flag.Parse()

	if *metricsAddr != "" {
		obs.Enable(true)
		go func() {
			if err := http.ListenAndServe(*metricsAddr, obs.Handler()); err != nil {
				fmt.Fprintln(os.Stderr, "metrics server:", err)
			}
		}()
		fmt.Printf("metrics on http://%s/metrics (+ /metrics.json)\n", *metricsAddr)
	}

	model, err := buildModel(*modelName, *calib)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(2)
	}
	meter, err := livemeter.Open(livemeter.Config{
		PowercapRoot: *powercapRoot,
		ProcRoot:     *procRoot,
		CPUFreqRoot:  *cpufreqRoot,
		Model:        model,
	})
	if errors.Is(err, rapl.ErrNoRAPL) {
		fmt.Fprintln(os.Stderr, "no Intel RAPL zones found on this machine;")
		fmt.Fprintln(os.Stderr, "use powerdiv-eval / powerdiv-curve for the simulator-backed experiments")
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Println("RAPL zones:", strings.Join(meter.Zones(), ", "))

	if *burn != "" {
		kernel, ok := stressng.ByName(*burn)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown stress kernel %q\n", *burn)
			os.Exit(2)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go stressng.Burn(ctx, kernel, time.Duration(*count+1)*(*interval))
		fmt.Printf("burning %s in-process (pid %d)\n", *burn, os.Getpid())
	}

	fs := procfs.New(*procRoot, 0)
	pids, err := resolvePIDs(*pidList, fs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	drops := 0
	for i := 0; *count == 0 || i <= *count; i++ {
		attr, err := meter.Sample(time.Now(), pids)
		switch {
		case err == nil:
			printAttribution(attr, fs)
		case errors.Is(err, livemeter.ErrNotPrimed):
			// First sample only: counters primed, nothing to print yet.
		case errors.Is(err, livemeter.ErrDroppedTick):
			// Degraded tick: the interval carries over, so keep running.
			drops++
			fmt.Fprintf(os.Stderr, "warning: %v (drop %d; interval carries over)\n", err, drops)
		case errors.Is(err, livemeter.ErrZoneVanished):
			fmt.Fprintln(os.Stderr, "fatal:", err)
			printHealth(meter)
			os.Exit(1)
		default:
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if *count == 0 || i < *count {
			time.Sleep(*interval)
		}
	}
	if drops > 0 {
		fmt.Fprintf(os.Stderr, "degraded: %d of %d ticks dropped (all folded into later samples)\n", drops, *count+1)
	}
	printHealth(meter)
}

// printHealth reports zones that are gone or flapping; healthy meters stay
// quiet.
func printHealth(meter *livemeter.Meter) {
	for _, zh := range meter.Health() {
		switch {
		case zh.Vanished:
			fmt.Fprintf(os.Stderr, "zone %s: vanished (metering continued on the survivors)\n", zh.Name)
		case zh.LastErr != nil:
			fmt.Fprintf(os.Stderr, "zone %s: last read failed: %v\n", zh.Name, zh.LastErr)
		}
	}
}

// buildModel constructs the requested division model. The residual-aware
// model needs a machine calibration fitted from a load-curve CSV.
func buildModel(name, calibPath string) (models.Model, error) {
	switch name {
	case "scaphandre", "":
		return models.NewScaphandre().New(0), nil
	case "residual-aware":
		if calibPath == "" {
			return nil, fmt.Errorf("-model residual-aware needs -calib curve.csv (generate one per powerdiv-fit)")
		}
		f, err := os.Open(calibPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		samples, err := cpumodel.ParseCurveCSV(f)
		if err != nil {
			return nil, err
		}
		fit, err := cpumodel.FitPowerModel(samples, 0.3)
		if err != nil {
			return nil, err
		}
		factory := models.NewResidualAware(fit.Model.Idle, fit.Model.Residual, fit.Model.BaseFreq)
		return factory.New(0), nil
	default:
		return nil, fmt.Errorf("unknown model %q", name)
	}
}

func resolvePIDs(list string, fs *procfs.FS) ([]int, error) {
	if list == "" {
		return fs.ListPIDs()
	}
	var pids []int
	for _, tok := range strings.Split(list, ",") {
		pid, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return nil, fmt.Errorf("bad pid %q", tok)
		}
		pids = append(pids, pid)
	}
	return pids, nil
}

func printAttribution(attr livemeter.Attribution, fs *procfs.FS) {
	fmt.Printf("[%8s] machine %s", attr.At.Truncate(time.Millisecond), attr.MachinePower)
	if attr.Degraded {
		fmt.Printf("  [degraded:")
		if attr.CoalescedTicks > 0 {
			fmt.Printf(" %d ticks coalesced over %s", attr.CoalescedTicks, attr.Interval.Truncate(time.Millisecond))
		}
		if attr.ZonesVanished > 0 {
			fmt.Printf(" %d/%d zones vanished", attr.ZonesVanished, attr.ZonesVanished+attr.ZonesLive)
		}
		fmt.Printf("]")
	}
	if len(attr.PerPID) == 0 {
		fmt.Println("  (no process activity)")
		return
	}
	type row struct {
		pid int
		w   float64
	}
	rows := make([]row, 0, len(attr.PerPID))
	for pid, w := range attr.PerPID {
		rows = append(rows, row{pid, float64(w)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].w > rows[j].w })
	fmt.Println()
	for i, r := range rows {
		if i >= 5 || r.w < 0.05 {
			break
		}
		name := fmt.Sprint(r.pid)
		if p, err := fs.ReadProc(r.pid); err == nil {
			name = fmt.Sprintf("%d (%s)", r.pid, p.Command)
		}
		fmt.Printf("    %-28s %6.2f W\n", name, r.w)
	}
}

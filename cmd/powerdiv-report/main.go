// Command powerdiv-report regenerates every table and figure of the
// paper's evaluation in one run and prints them as text tables — the data
// behind EXPERIMENTS.md. With -out it also writes each artefact as CSV.
//
// Usage:
//
//	powerdiv-report [-seed 1] [-out out/] [-quick] [-memo=false]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/experiments"
	"powerdiv/internal/models"
	"powerdiv/internal/obs"
	"powerdiv/internal/protocol"
	"powerdiv/internal/report"
	"powerdiv/internal/workload"
)

var (
	outDir  = flag.String("out", "", "write CSV artefacts into this directory")
	quick   = flag.Bool("quick", false, "reduced scenario sets (fast smoke run)")
	seed    = flag.Int64("seed", 1, "campaign seed")
	memo    = flag.Bool("memo", true, "memoize solo/pair simulation runs across experiments")
	stream  = flag.Bool("streaming", true, "run the §IV-A campaigns on the fused streaming pipeline (bounded memory, bit-identical results)")
	metrics = flag.Bool("metrics", false, "print the internal metrics summary after the run")
)

func main() {
	flag.Parse()
	start := time.Now()
	protocol.EnableMemoization(*memo)
	obs.Enable(*metrics)

	section("Fig 1 & Fig 3 — machine power curves")
	for _, spec := range cpumodel.Specs() {
		for _, prod := range []bool{false, true} {
			cfg := experiments.LabConfig(spec, *seed)
			if prod {
				cfg = experiments.ProdConfig(spec, *seed)
			}
			res, err := experiments.PowerCurve(cfg)
			check(err)
			emit(res.Table(), fmt.Sprintf("curve-%s-%s", slug(spec.Name), ternary(prod, "prod", "lab")))
			fmt.Printf("gap %s, band %s\n\n", res.ResidualGap(), res.BandWidthAtFull())
		}
	}

	section("Fig 2 — Equation 1 under-coverage")
	eq1, err := experiments.Eq1Undershoot(experiments.LabConfig(cpumodel.SmallIntel(), *seed), "fibonacci", "matrixprod", 3)
	check(err)
	t := report.NewTable("Eq 1 naive attribution (fibonacci-3 ∥ matrixprod-3, SMALL INTEL lab)", "quantity", "watts")
	t.AddRowf("C pair", float64(eq1.CPair))
	t.AddRowf("naive Ce(P0)", float64(eq1.Naive0))
	t.AddRowf("naive Ce(P1)", float64(eq1.Naive1))
	t.AddRowf("uncovered (=R)", float64(eq1.Uncovered))
	emit(t, "fig2-eq1")

	section("Fig 4–7 + §IV-A — ratio campaigns")
	labEval := experiments.LabEvaluation
	if *stream {
		labEval = experiments.LabEvaluationStreaming
	}
	for _, spec := range cpumodel.Specs() {
		ctx := experiments.LabContext(spec, *seed)
		results, err := labEval(ctx, models.NewKepler(), models.NewOracle())
		check(err)
		emit(experiments.ErrorTable(spec.Name, results), fmt.Sprintf("errors-%s", slug(spec.Name)))
		if *outDir != "" {
			for name, r := range results {
				check(r.PointsTable().WriteCSV(filepath.Join(*outDir, fmt.Sprintf("points-%s-%s.csv", slug(spec.Name), name))))
			}
		}
		fmt.Println()
	}

	section("Fig 8 — PowerAPI instability on DAHU")
	inst, err := experiments.Instability(experiments.LabConfig(cpumodel.Dahu(), *seed), "matrixprod", "float64", 8, 6, *seed+6)
	check(err)
	emit(inst.Table(), "fig8-instability")
	fmt.Printf("flip-flopped: %v\n\n", inst.FlipFlopped())

	section("Fig 9 + §IV-B — residual consumption as application consumption")
	fns := workload.StressNames()
	if *quick {
		fns = fns[:4]
	}
	fig9Models := append(experiments.PaperModels(), models.NewResidualAwareFromSpec(cpumodel.SmallIntel()))
	for _, f := range fig9Models {
		res, err := experiments.ResidualCapping(experiments.LabContext(cpumodel.SmallIntel(), *seed), f, fns, []int{1, 2, 3})
		check(err)
		emit(res.Table(), fmt.Sprintf("fig9-%s", f.Name))
		fmt.Println()
	}

	section("Table V + Fig 10 — Phoronix references")
	refs, err := experiments.PhoronixReference(experiments.ProdConfig(cpumodel.SmallIntel(), *seed), 6, 3, *seed)
	check(err)
	emit(experiments.TableV(refs), "table5")
	fmt.Println("\nFig 10 — solo power signatures:")
	for _, r := range refs {
		fmt.Println("  " + report.SparkLine(r.Name, r.Trace, 60))
	}
	if *outDir != "" {
		for _, r := range refs {
			ft := report.NewTable("Fig 10 trace "+r.Name, "t (s)", "watts")
			for _, s := range r.Trace.Samples() {
				ft.AddRowf(s.At.Seconds(), s.Value)
			}
			check(ft.WriteCSV(filepath.Join(*outDir, "fig10-"+r.Name+".csv")))
		}
	}
	fmt.Println()

	section("Fig 11 — context-dependent attribution")
	ctxRes, err := experiments.ContextIllustration(experiments.LabConfig(cpumodel.SmallIntel(), *seed), models.NewScaphandre(), "int64", 2, 20*time.Second, *seed)
	check(err)
	emit(ctxRes.Table(), "fig11-context")
	fmt.Println()

	section("Fig 12 & 13 + §V — energy division")
	for _, pair := range [][2]string{{"build2", "dacapo"}, {"compress-7zip", "cloverleaf"}} {
		for _, f := range experiments.PaperModels() {
			res, err := experiments.EnergyDivision(experiments.ProdConfig(cpumodel.SmallIntel(), *seed), f, pair[0], pair[1], 6, *seed)
			check(err)
			emit(res.Table(), fmt.Sprintf("energy-%s-%s-%s", pair[0], pair[1], f.Name))
			if f.Name == "scaphandre" {
				fmt.Println("attributed power curves:")
				fmt.Println("  " + report.SparkLine(pair[0], res.Est0, 60))
				fmt.Println("  " + report.SparkLine(pair[1], res.Est1, 60))
			}
			fmt.Println()
		}
	}
	neighbours := []int{0, 4, 9}
	sweep, err := experiments.ColocationSweep(experiments.ProdConfig(cpumodel.Dahu(), *seed), models.NewScaphandre(), "cloverleaf", 6, neighbours, *seed)
	check(err)
	st := report.NewTable("§V — CLOVERLEAF on DAHU vs neighbour VMs (scaphandre)", "neighbour VMs", "attributed energy (kJ)")
	for _, n := range neighbours {
		st.AddRowf(n, sweep[n].Kilojoules())
	}
	emit(st, "sectionV-colocation")

	section("\nExtensions — §VI future work and beyond")
	prof, err := experiments.ProfileF2Evaluation(experiments.LabContext(cpumodel.SmallIntel(), *seed))
	check(err)
	emit(prof.Table(), "extension-profile-f2")
	fmt.Println()
	multi, err := experiments.MultiAppEvaluation(
		experiments.LabContext(cpumodel.SmallIntel(), *seed),
		models.NewScaphandre(), workload.StressNames(), []int{2, 3}, 2)
	check(err)
	emit(multi.Table(), "extension-multiapp")
	fmt.Println()
	props, err := experiments.FamilyAblation(cpumodel.SmallIntel(), "fibonacci", "matrixprod", 3, *seed)
	check(err)
	emit(experiments.AblationTable(props), "ablation-families")

	if st := protocol.MemoizationStats(); st.Hits+st.Misses > 0 {
		fmt.Printf("\nrun cache: %d hits, %d misses, %d entries\n", st.Hits, st.Misses, st.Entries)
	}
	if *metrics {
		fmt.Print("\n" + obs.Default().Summary())
	}
	fmt.Printf("all experiments regenerated in %s\n", time.Since(start).Truncate(time.Millisecond))
}

func section(title string) {
	fmt.Printf("==== %s ====\n\n", title)
}

func emit(t *report.Table, name string) {
	fmt.Print(t.String())
	if *outDir != "" {
		check(t.WriteCSV(filepath.Join(*outDir, name+".csv")))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func slug(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+32)
		default:
			out = append(out, '-')
		}
	}
	return string(out)
}

func ternary(cond bool, a, b string) string {
	if cond {
		return a
	}
	return b
}

// Command powerdiv-eval runs the paper's evaluation protocol (§III-E) on a
// simulated machine: phase 1 isolated baselines for every stress
// application, phase 2 parallel pair scenarios, phase 3 Equation 5 scoring
// of each power division model — the §IV-A campaign behind Fig 4–7.
//
// With -traffic it instead scores the models over production-shaped timed
// rosters: generated arrival schedules (Poisson, bursty, diurnal) whose
// instances start and exit mid-run, evaluated per tick on the fused
// streaming pipeline. -traffic-record saves the exact schedule as a JSON
// trace; -traffic-replay re-scores a saved trace bit-identically.
//
// With -fleet it runs the protocol datacenter-wide: hundreds of
// heterogeneous simulated nodes (mixed SMALL-INTEL/DAHU-derived specs
// with per-node clock skew and sensor seeds), each evaluating its own
// deterministic traffic shard, with the six intrusive models plus the
// WattScope-style non-intrusive model aggregated into fleet-wide error
// distributions. Reruns with the same seed are bit-identical.
//
// Usage:
//
//	powerdiv-eval [-machine DAHU] [-context lab|prod] [-seed 1] [-points] [-csv-dir out/] [-memo=false] [-memo-stats]
//	powerdiv-eval -traffic [-traffic-kind poisson|bursty|diurnal|mixed] [-traffic-scenarios 50] [-traffic-window 30s] [-traffic-record trace.json]
//	powerdiv-eval -traffic-replay trace.json
//	powerdiv-eval -fleet [-fleet-nodes 200] [-fleet-scenarios 1] [-fleet-window 10s] [-fleet-kind mixed] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/experiments"
	"powerdiv/internal/fleet"
	"powerdiv/internal/models"
	"powerdiv/internal/obs"
	"powerdiv/internal/protocol"
	"powerdiv/internal/traffic"
)

// jsonReport is the machine-readable campaign output.
type jsonReport struct {
	Machine string           `json:"machine"`
	Context string           `json:"context"`
	Models  []jsonModelEntry `json:"models"`
}

type jsonModelEntry struct {
	Model     string      `json:"model"`
	MeanAE    float64     `json:"mean_ae"`
	MaxAE     float64     `json:"max_ae"`
	WorstPair string      `json:"worst_pair"`
	Points    []jsonPoint `json:"points"`
}

type jsonPoint struct {
	Pair  string  `json:"pair"`
	Panel string  `json:"panel"`
	X     float64 `json:"sequential_ratio_pct"`
	Y     float64 `json:"parallel_ratio_pct"`
}

func emitJSON(w io.Writer, machine, context string, results map[string]experiments.ScatterResult) error {
	rep := jsonReport{Machine: machine, Context: context}
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r := results[n]
		entry := jsonModelEntry{Model: n, MeanAE: r.MeanAE, MaxAE: r.MaxAE, WorstPair: r.WorstPair}
		for _, p := range r.SameSize {
			entry.Points = append(entry.Points, jsonPoint{Pair: p.Label, Panel: "same-size", X: p.X, Y: p.Y})
		}
		for _, p := range r.DiffSize {
			entry.Points = append(entry.Points, jsonPoint{Pair: p.Label, Panel: "diff-size", X: p.X, Y: p.Y})
		}
		rep.Models = append(rep.Models, entry)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func main() {
	machineName := flag.String("machine", "SMALL INTEL", `machine calibration ("SMALL INTEL" or "DAHU")`)
	context := flag.String("context", "lab", `performance context: "lab" (HT/TB off) or "prod" (on)`)
	seed := flag.Int64("seed", 1, "campaign seed")
	points := flag.Bool("points", false, "also print the per-pair ratio points (Fig 4–7 series)")
	csvDir := flag.String("csv-dir", "", "write per-model point CSVs into this directory")
	asJSON := flag.Bool("json", false, "emit the results as JSON instead of tables")
	memo := flag.Bool("memo", true, "memoize solo/pair simulation runs")
	streaming := flag.Bool("streaming", true, "run the fused streaming pipeline (bounded memory, bit-identical results)")
	memoStats := flag.Bool("memo-stats", false, "print run cache statistics after the campaign")
	cacheDir := flag.String("cache-dir", "", "persistent solo-run summary cache directory (empty = memory only)")
	cacheBytes := flag.Int64("cache-bytes", 0, "on-disk cache cap in bytes (0 = default 256 MB)")
	metrics := flag.Bool("metrics", false, "print the internal metrics summary after the campaign")
	trafficOn := flag.Bool("traffic", false, "run a production-shaped traffic campaign instead of the pair campaign")
	trafficKind := flag.String("traffic-kind", "mixed", `arrival process: "poisson", "bursty", "diurnal" or "mixed"`)
	trafficScenarios := flag.Int("traffic-scenarios", 50, "number of generated traffic scenarios")
	trafficWindow := flag.Duration("traffic-window", 30*time.Second, "duration of each traffic scenario")
	trafficRecord := flag.String("traffic-record", "", "write the generated schedule to this JSON trace file")
	trafficReplay := flag.String("traffic-replay", "", "replay a recorded JSON trace instead of generating (implies -traffic)")
	fleetOn := flag.Bool("fleet", false, "run a fleet-wide campaign over heterogeneous simulated nodes")
	fleetNodes := flag.Int("fleet-nodes", 200, "fleet size in nodes")
	fleetScenarios := flag.Int("fleet-scenarios", 1, "traffic scenarios per node")
	fleetWindow := flag.Duration("fleet-window", 10*time.Second, "duration of each fleet scenario")
	fleetKind := flag.String("fleet-kind", "mixed", `fleet arrival process: "poisson", "bursty", "diurnal" or "mixed"`)
	flag.Parse()
	protocol.EnableMemoization(*memo)
	obs.Enable(*metrics)
	if *cacheDir != "" {
		disk, err := protocol.OpenDiskCache(*cacheDir, *cacheBytes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(2)
		}
		protocol.AttachDiskCache(disk)
	}

	if *fleetOn {
		// The fleet draws its own heterogeneous spec mix; -machine does
		// not apply. -context prod enables hyperthreading/turbo fleet-wide.
		if *context != "lab" && *context != "prod" {
			fmt.Fprintf(os.Stderr, "unknown context %q (want lab or prod)\n", *context)
			os.Exit(2)
		}
		runFleet(fleetOptions{
			nodes:      *fleetNodes,
			scenarios:  *fleetScenarios,
			window:     *fleetWindow,
			kind:       *fleetKind,
			seed:       *seed,
			production: *context == "prod",
			asJSON:     *asJSON,
			metrics:    *metrics,
		})
		return
	}

	spec, ok := cpumodel.SpecByName(*machineName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown machine %q\n", *machineName)
		os.Exit(2)
	}
	var ctx protocol.Context
	switch *context {
	case "lab":
		ctx = experiments.LabContext(spec, *seed)
	case "prod":
		ctx = experiments.ProdContext(spec, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown context %q (want lab or prod)\n", *context)
		os.Exit(2)
	}

	if *trafficOn || *trafficReplay != "" {
		runTraffic(ctx, *context, trafficOptions{
			kind:      *trafficKind,
			scenarios: *trafficScenarios,
			window:    *trafficWindow,
			record:    *trafficRecord,
			replay:    *trafficReplay,
			asJSON:    *asJSON,
			metrics:   *metrics,
		})
		return
	}

	if !*asJSON {
		fmt.Printf("protocol campaign on %s (%s context), sizes %v\n\n",
			spec.Name, *context, protocol.SizesFor(ctx.Machine))
	}
	evaluate := experiments.LabEvaluation
	if *streaming {
		evaluate = experiments.LabEvaluationStreaming
	}
	results, err := evaluate(ctx, models.NewKepler(), models.NewOracle())
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if *asJSON {
		if err := emitJSON(os.Stdout, spec.Name, *context, results); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		printMetricsSummary(*metrics)
		return
	}
	fmt.Print(experiments.ErrorTable(spec.Name, results).String())

	if *points {
		for _, name := range []string{"scaphandre", "powerapi"} {
			if r, ok := results[name]; ok {
				fmt.Println()
				fmt.Print(r.PointsTable().String())
			}
		}
	}
	if *memoStats {
		st := protocol.MemoizationStats()
		fmt.Printf("\nrun cache: %d hits, %d misses, %d entries\n", st.Hits, st.Misses, st.Entries)
		fmt.Printf("summary tier: %d entries, %d/%d bytes, %d evictions\n",
			st.SummaryEntries, st.SummaryBytes, st.SummaryByteLimit, st.Evictions)
		fmt.Printf("eval-digest tier: %d entries, %d/%d bytes\n",
			st.EvalEntries, st.EvalBytes, st.EvalByteLimit)
		if *cacheDir != "" {
			fmt.Printf("disk cache: %d hits, %d misses, %d writes\n",
				st.DiskHits, st.DiskMisses, st.DiskWrites)
		}
	}
	if *csvDir != "" {
		for name, r := range results {
			path := filepath.Join(*csvDir, fmt.Sprintf("points-%s-%s.csv",
				strings.ReplaceAll(strings.ToLower(spec.Name), " ", "-"), name))
			if err := r.PointsTable().WriteCSV(path); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			fmt.Println("wrote", path)
		}
	}
	printMetricsSummary(*metrics)
}

// printMetricsSummary emits the internal metrics to stderr so it composes
// with -json and -csv-dir without corrupting stdout.
func printMetricsSummary(on bool) {
	if on {
		fmt.Fprint(os.Stderr, obs.Default().Summary())
	}
}

// trafficOptions bundles the -traffic* flag values.
type trafficOptions struct {
	kind      string
	scenarios int
	window    time.Duration
	record    string
	replay    string
	asJSON    bool
	metrics   bool
}

// jsonTrafficReport is the machine-readable traffic campaign output.
type jsonTrafficReport struct {
	Machine   string             `json:"machine"`
	Context   string             `json:"context"`
	Kind      string             `json:"kind"`
	Scenarios int                `json:"scenarios"`
	Instances int                `json:"instances"`
	Baselines int                `json:"baselines"`
	WindowNS  int64              `json:"window_ns"`
	Models    []jsonTrafficModel `json:"models"`
}

type jsonTrafficModel struct {
	Model         string  `json:"model"`
	MeanAE        float64 `json:"mean_ae"`
	MaxAE         float64 `json:"max_ae"`
	MeanCoverage  float64 `json:"mean_coverage"`
	WorstScenario string  `json:"worst_scenario"`
}

func emitTrafficJSON(w io.Writer, context string, res experiments.TrafficResult) error {
	rep := jsonTrafficReport{
		Machine:   res.Machine,
		Context:   context,
		Kind:      res.Kind,
		Scenarios: res.Scenarios,
		Instances: res.Instances,
		Baselines: res.Baselines,
		WindowNS:  int64(res.Window),
	}
	names := make([]string, 0, len(res.Summaries))
	for n := range res.Summaries {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := res.Summaries[n]
		rep.Models = append(rep.Models, jsonTrafficModel{
			Model: n, MeanAE: s.MeanAE, MaxAE: s.MaxAE,
			MeanCoverage: s.MeanCoverage, WorstScenario: s.WorstScenario,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// fleetOptions bundles the -fleet* flag values.
type fleetOptions struct {
	nodes      int
	scenarios  int
	window     time.Duration
	kind       string
	seed       int64
	production bool
	asJSON     bool
	metrics    bool
}

// jsonFleetReport is the machine-readable fleet campaign output.
type jsonFleetReport struct {
	Nodes     int              `json:"nodes"`
	Classes   map[string]int   `json:"classes"`
	Kind      string           `json:"kind"`
	Scenarios int              `json:"scenarios"`
	Instances int              `json:"instances"`
	WindowNS  int64            `json:"window_ns"`
	Models    []jsonFleetModel `json:"models"`
}

type jsonFleetModel struct {
	Model        string  `json:"model"`
	MeanAE       float64 `json:"mean_ae"`
	P50          float64 `json:"p50_ae"`
	P90          float64 `json:"p90_ae"`
	P99          float64 `json:"p99_ae"`
	MaxAE        float64 `json:"max_ae"`
	MeanCoverage float64 `json:"mean_coverage"`
	WorstNode    string  `json:"worst_node"`
}

func emitFleetJSON(w io.Writer, res fleet.Result) error {
	rep := jsonFleetReport{
		Nodes:     res.Nodes,
		Classes:   res.Classes,
		Kind:      res.Kind,
		Scenarios: res.Scenarios,
		Instances: res.Instances,
		WindowNS:  int64(res.Window),
	}
	for _, m := range res.Models {
		rep.Models = append(rep.Models, jsonFleetModel{
			Model: m.Model, MeanAE: m.MeanAE,
			P50: m.P50, P90: m.P90, P99: m.P99, MaxAE: m.MaxAE,
			MeanCoverage: m.MeanCoverage, WorstNode: m.WorstNode,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// runFleet drives a fleet-wide campaign over heterogeneous nodes.
func runFleet(opt fleetOptions) {
	kind, err := traffic.KindByName(opt.kind)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	cfg := fleet.Config{
		Nodes:            opt.nodes,
		Seed:             opt.seed,
		Kind:             kind,
		ScenariosPerNode: opt.scenarios,
		Window:           opt.window,
		Production:       opt.production,
	}
	res, err := experiments.FleetCampaign(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if opt.asJSON {
		if err := emitFleetJSON(os.Stdout, res); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	} else {
		fmt.Print(experiments.FleetTable(res).String())
	}
	printMetricsSummary(opt.metrics)
}

// runTraffic drives a traffic campaign: generate (or replay) the timed
// rosters, score every model on the streaming pipeline, render, and
// optionally record the schedule.
func runTraffic(ctx protocol.Context, context string, opt trafficOptions) {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	var res experiments.TrafficResult
	if opt.replay != "" {
		data, err := os.ReadFile(opt.replay)
		if err != nil {
			fail(err)
		}
		tr, err := traffic.Decode(data)
		if err != nil {
			fail(err)
		}
		if res, err = experiments.TrafficReplay(ctx, tr); err != nil {
			fail(err)
		}
	} else {
		kind, err := traffic.KindByName(opt.kind)
		if err != nil {
			fail(err)
		}
		cfg := experiments.TrafficConfig(ctx, kind, opt.scenarios, opt.window)
		if res, err = experiments.TrafficCampaign(ctx, cfg); err != nil {
			fail(err)
		}
	}
	if opt.record != "" {
		data, err := res.Trace.Encode()
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(opt.record, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintln(os.Stderr, "wrote", opt.record)
	}
	if opt.asJSON {
		if err := emitTrafficJSON(os.Stdout, context, res); err != nil {
			fail(err)
		}
	} else {
		fmt.Print(res.Table().String())
	}
	printMetricsSummary(opt.metrics)
}

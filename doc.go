// Package powerdiv reproduces "A Protocol to Assess the Accuracy of
// Process-Level Power Models" (Cadorel & Saingre, IEEE CLUSTER 2024): a
// formal definition of power division among colocated applications, a
// machine substrate to run it on, implementations of the evaluated models
// (Scaphandre, PowerAPI, Kepler, the F2 ratio-preserving family), and the
// three-phase evaluation protocol with every table and figure of the
// paper's evaluation regenerable from code.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The root-level benchmarks in bench_test.go regenerate each artefact:
//
//	go test -bench=. -benchmem
package powerdiv

package powerdiv_test

import (
	"math"
	"testing"
	"time"

	"powerdiv"
)

// TestFacadeQuickstart exercises the documented public workflow verbatim.
func TestFacadeQuickstart(t *testing.T) {
	ctx := powerdiv.NewLabContext(powerdiv.SmallIntel(), 42)
	fib, err := powerdiv.StressApp("fibonacci", 3)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := powerdiv.StressApp("matrixprod", 3)
	if err != nil {
		t.Fatal(err)
	}
	s := powerdiv.Scenario{Apps: []powerdiv.AppSpec{fib, mat}}
	baselines, err := powerdiv.MeasureBaselines(ctx, s.Apps)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := powerdiv.EvaluatePair(ctx, s, powerdiv.Scaphandre(), baselines, powerdiv.ObjectiveActive, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ev.AE < 0.10 || ev.AE > 0.13 {
		t.Errorf("AE = %.4f, want ≈0.117", ev.AE)
	}
}

func TestFacadeModels(t *testing.T) {
	for _, f := range []powerdiv.ModelFactory{
		powerdiv.Scaphandre(),
		powerdiv.PowerAPI(),
		powerdiv.Kepler(),
		powerdiv.RatioPreservingF2(map[string]powerdiv.Watts{"a": 6}),
	} {
		if f.Name == "" || f.New == nil {
			t.Errorf("factory %+v incomplete", f)
		}
		if m := f.New(1); m.Name() != f.Name {
			t.Errorf("model name %q != factory name %q", m.Name(), f.Name)
		}
	}
}

func TestFacadeCampaign(t *testing.T) {
	ctx := powerdiv.NewLabContext(powerdiv.SmallIntel(), 1)
	scenarios, err := powerdiv.StressPairs([]string{"fibonacci", "matrixprod", "int64"}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	evs, err := powerdiv.EvaluateCampaign(ctx, scenarios, powerdiv.Scaphandre(), powerdiv.ObjectiveActive, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("%d evaluations, want 3", len(evs))
	}
}

func TestFacadeSimulateAndLedger(t *testing.T) {
	ws := powerdiv.StressWorkloads()
	if len(ws) != 12 {
		t.Fatalf("%d stress workloads, want 12", len(ws))
	}
	if len(powerdiv.PhoronixWorkloads()) != 4 {
		t.Fatal("phoronix set size")
	}
	cfg := powerdiv.MachineConfig{Spec: powerdiv.Dahu()}
	run, err := powerdiv.Simulate(cfg, []powerdiv.Proc{
		{ID: "p", Workload: ws[0], Threads: 4},
	}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ledger := powerdiv.NewLedger()
	ledger.Record(run.Duration, powerdiv.Watts(run.PowerSeries().Mean()), map[string]powerdiv.Watts{
		"p": powerdiv.Watts(run.PowerSeries().Mean()),
	})
	if math.Abs(float64(ledger.Energy("p")-run.Energy())) > 1e-6*float64(run.Energy()) {
		t.Errorf("ledger %v != run energy %v", ledger.Energy("p"), run.Energy())
	}
}

func TestFacadeProductionContext(t *testing.T) {
	ctx := powerdiv.NewProductionContext(powerdiv.SmallIntel(), 1)
	if !ctx.Machine.Hyperthreading || !ctx.Machine.Turbo {
		t.Error("production context missing HT/turbo")
	}
}

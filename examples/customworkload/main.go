// Custom workloads and dynamic contexts: define your own application with
// the workload builder, measure its baseline, and evaluate a power
// division model under arrivals and departures (the paper's Fig 11
// production setting) — including the estimate-coverage cost of PowerAPI's
// per-context relearning.
//
// Run with:
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/experiments"
	"powerdiv/internal/protocol"
	"powerdiv/internal/report"
	"powerdiv/internal/workload"
)

func main() {
	// A user-defined application: a periodic ETL job — a parallel extract
	// phase, then a serial transform tail.
	etl, err := workload.NewBuilder("etl-job").
		Description("periodic extract-transform job").
		Cost("SMALL INTEL", 6.2).
		Mix(1.6, 4.0, 180).
		Phase(20*time.Second, 3, 1.0, 1.0).
		Phase(10*time.Second, 1, 0.8, 0.9).
		Repeat(4).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	ctx := experiments.LabContext(cpumodel.SmallIntel(), 1)

	// Phase 1 works for custom workloads exactly as for the built-ins.
	app := protocol.AppSpec{ID: "etl-job", Workload: etl, Threads: 3}
	webApp, err := protocol.StressApp("rand", 2)
	if err != nil {
		log.Fatal(err)
	}
	webApp.ID = "web"
	batch, err := protocol.StressApp("matrixprod", 1)
	if err != nil {
		log.Fatal(err)
	}
	batch.ID = "batch"
	baselines, err := protocol.MeasureBaselinesParallel(ctx, []protocol.AppSpec{app, webApp, batch})
	if err != nil {
		log.Fatal(err)
	}
	bt := report.NewTable("Phase 1 — isolated baselines", "application", "machine power", "active", "cores")
	for _, id := range []string{"etl-job", "web", "batch"} {
		b := baselines[id]
		bt.AddRowf(id, float64(b.Total), float64(b.Active()), b.Cores)
	}
	fmt.Print(bt.String())

	// A dynamic timeline: the web app runs throughout, the ETL job comes
	// and goes, a batch job appears at the end.
	timeline := []protocol.TimelineApp{
		{App: webApp},
		{App: app, Start: 30 * time.Second, Stop: 90 * time.Second},
		{App: batch, Start: 90 * time.Second},
	}
	tt := report.NewTable("\nDynamic context (Fig 11 setting) — error and coverage", "model", "AE (Eq 5)", "coverage")
	for _, f := range experiments.PaperModels() {
		res, err := protocol.EvaluateTimeline(ctx, timeline, f, baselines, 2*time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		tt.AddRow(f.Name, report.Percent(res.AE), report.Percent(res.Coverage))
	}
	fmt.Print(tt.String())
	fmt.Println("\nPowerAPI loses estimate coverage at every context change (its learning")
	fmt.Println("window restarts), while CPU-time division stays blind to instruction")
	fmt.Println("costs at full coverage — the trade-off the protocol makes measurable.")
}

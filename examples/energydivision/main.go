// Energy division (Section V): run BUILD2 and DACAPO alone and colocated
// in 6-vCPU VMs on SMALL INTEL, integrate each model's power estimates
// into energies, and observe the context dependence the paper reports:
// both applications' attributed energies drop when colocated, the bursty
// DACAPO far more than BUILD2 — so energy comparisons across deployment
// contexts are unreliable (challenge C2).
//
// Run with:
//
//	go run ./examples/energydivision
package main

import (
	"fmt"
	"log"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/experiments"
	"powerdiv/internal/models"
	"powerdiv/internal/report"
)

func main() {
	cfg := experiments.ProdConfig(cpumodel.SmallIntel(), 1)

	fmt.Println("Section V on SMALL INTEL (production context, 6-vCPU VMs)…")
	for _, f := range experiments.PaperModels() {
		res, err := experiments.EnergyDivision(cfg, f, "build2", "dacapo", 6, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Print(res.Table().String())
	}

	// The same division looked at over time (Fig 12's curves): sample the
	// Scaphandre attribution at a few instants.
	res, err := experiments.EnergyDivision(cfg, models.NewScaphandre(), "build2", "dacapo", 6, 1)
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable("\nFig 12 — attributed power over time (scaphandre)", "t", "build2", "dacapo", "machine")
	for _, at := range []time.Duration{30 * time.Second, 60 * time.Second, 120 * time.Second, 240 * time.Second} {
		b, _ := res.Est0.ValueAt(at)
		d, _ := res.Est1.ValueAt(at)
		m, _ := res.PairMachine.ValueAt(at)
		t.AddRowf(at.String(), b, d, m)
	}
	fmt.Print(t.String())

	// And the paper's most dramatic context effect: CLOVERLEAF on DAHU
	// with a growing number of identical neighbour VMs.
	sweep, err := experiments.ColocationSweep(experiments.ProdConfig(cpumodel.Dahu(), 1), models.NewScaphandre(), "cloverleaf", 6, []int{0, 4, 9}, 1)
	if err != nil {
		log.Fatal(err)
	}
	st := report.NewTable("\n§V — CLOVERLEAF attributed energy on DAHU", "neighbour VMs", "energy (kJ)")
	for _, n := range []int{0, 4, 9} {
		st.AddRowf(n, sweep[n].Kilojoules())
	}
	fmt.Print(st.String())
	fmt.Println("\nthe application never changed; only its neighbours did. Power division")
	fmt.Println("produces context-dependent energies, unusable for optimizing one program.")
}

// Profile-based F2 division — the paper's §VI future work, implemented:
// train an estimator of isolated per-core power from instruction profiles
// (counter rates), build the ratio-preserving F2 division model on it, and
// compare it against CPU-time division on the full evaluation campaign.
//
// Run with:
//
//	go run ./examples/profilef2
package main

import (
	"fmt"
	"log"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/experiments"
	"powerdiv/internal/isoest"
	"powerdiv/internal/report"
)

func main() {
	ctx := experiments.LabContext(cpumodel.SmallIntel(), 1)

	// Step 1: instrumented solo runs → training profiles.
	fmt.Println("collecting instruction profiles from solo runs…")
	samples, err := experiments.CollectProfileTraining(ctx,
		[]string{"fibonacci", "queens", "int64", "float64", "decimal64", "double",
			"int64float", "int64double", "matrixprod", "rand", "jmp", "ackermann"}, 2)
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable("Training profiles", "workload", "IPC (instr/cycle)", "isolated W/core")
	for _, s := range samples {
		t.AddRowf(s.Workload, s.Rates.Instructions/s.Rates.Cycles, float64(s.ActivePerCore))
	}
	fmt.Print(t.String())

	// Step 2: train the estimator and inspect its honest accuracy.
	est, err := isoest.Train(samples)
	if err != nil {
		log.Fatal(err)
	}
	loo, err := isoest.LeaveOneOut(samples)
	if err != nil {
		log.Fatal(err)
	}
	var looMean float64
	for _, e := range loo {
		looMean += e
	}
	looMean /= float64(len(loo))
	fmt.Printf("\nin-sample prediction error %s, leave-one-out %s\n",
		report.Percent(est.Evaluate(samples)), report.Percent(looMean))
	fmt.Println("(instruction mix explains only part of the power variance — the")
	fmt.Println(" estimator is better than assuming equal costs, not an oracle)")

	// Step 3: full campaign, profile-F2 vs CPU-time division.
	fmt.Println("\nrunning the full campaign with both models…")
	res, err := experiments.ProfileF2Evaluation(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Table().String())
	fmt.Println("\nthe F2 family the paper argues for, made deployable: no per-application")
	fmt.Println("baselines needed at runtime, yet a lower division error than CPU-time share.")
}

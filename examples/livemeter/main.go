// Live meter: divide real RAPL package power among real processes, the
// deployment the paper's models target. On a machine with Intel RAPL this
// reads /sys/class/powercap and /proc directly; elsewhere it builds a
// self-contained fake host (a synthetic powercap + proc tree it advances
// itself) so the example runs everywhere and shows the exact code path.
//
// Run with:
//
//	go run ./examples/livemeter
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"powerdiv/internal/livemeter"
	"powerdiv/internal/rapl"
)

func main() {
	meter, err := livemeter.Open(livemeter.Config{})
	if err == nil {
		fmt.Println("real RAPL found — metering this machine (zones:", meter.Zones(), ")")
		live(meter, nil)
		return
	}
	if !errors.Is(err, rapl.ErrNoRAPL) {
		log.Fatal(err)
	}
	fmt.Println("no RAPL on this machine — running against a synthetic host")
	fake, cleanup, err := newFakeHost()
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()
	meter, err = livemeter.Open(livemeter.Config{
		PowercapRoot: fake.capRoot,
		ProcRoot:     fake.procRoot,
	})
	if err != nil {
		log.Fatal(err)
	}
	live(meter, fake)
}

// live samples the meter five times, advancing the fake host when present.
func live(meter *livemeter.Meter, fake *fakeHost) {
	now := time.Now()
	pids := []int{os.Getpid()}
	if fake != nil {
		pids = []int{101, 102}
	}
	for i := 0; i < 6; i++ {
		attr, err := meter.Sample(now, pids)
		if err != nil && !errors.Is(err, livemeter.ErrNotPrimed) {
			log.Fatal(err)
		}
		if err == nil {
			fmt.Printf("t=%-4s machine %s", attr.At.Truncate(time.Millisecond), attr.MachinePower)
			for pid, w := range attr.PerPID {
				fmt.Printf("  pid %d: %s", pid, w)
			}
			fmt.Println()
		}
		now = now.Add(time.Second)
		if fake != nil {
			// The synthetic host: 42 W machine draw; pid 101 works twice
			// as hard as pid 102.
			fake.advance(42, map[int]uint64{101: 100, 102: 50})
		} else {
			time.Sleep(time.Second)
		}
	}
}

// fakeHost is a minimal synthetic powercap + proc tree.
type fakeHost struct {
	capRoot, procRoot string
	energyUJ          uint64
	jiffies           map[int]uint64
}

func newFakeHost() (*fakeHost, func(), error) {
	dir, err := os.MkdirTemp("", "powerdiv-livemeter")
	if err != nil {
		return nil, nil, err
	}
	h := &fakeHost{
		capRoot:  filepath.Join(dir, "powercap"),
		procRoot: filepath.Join(dir, "proc"),
		jiffies:  map[int]uint64{101: 0, 102: 0},
	}
	zone := filepath.Join(h.capRoot, "intel-rapl:0")
	if err := os.MkdirAll(zone, 0o755); err != nil {
		return nil, nil, err
	}
	writes := map[string]string{
		"name":                "package-0",
		"max_energy_range_uj": "262143328850",
		"energy_uj":           "0",
	}
	for name, content := range writes {
		if err := os.WriteFile(filepath.Join(zone, name), []byte(content+"\n"), 0o644); err != nil {
			return nil, nil, err
		}
	}
	h.advance(0, map[int]uint64{101: 0, 102: 0})
	return h, func() { os.RemoveAll(dir) }, nil
}

// advance moves the synthetic host one second forward: watts of draw and
// per-pid jiffy increments.
func (h *fakeHost) advance(watts float64, jiffyInc map[int]uint64) {
	h.energyUJ += uint64(watts * 1e6)
	zone := filepath.Join(h.capRoot, "intel-rapl:0")
	os.WriteFile(filepath.Join(zone, "energy_uj"), []byte(strconv.FormatUint(h.energyUJ, 10)+"\n"), 0o644)
	for pid, inc := range jiffyInc {
		h.jiffies[pid] += inc
		dir := filepath.Join(h.procRoot, strconv.Itoa(pid))
		os.MkdirAll(dir, 0o755)
		line := strconv.Itoa(pid) + " (worker-" + strconv.Itoa(pid) + ") R 1 1 1 0 -1 0 0 0 0 0 " +
			strconv.FormatUint(h.jiffies[pid], 10) + " 0 0 0 20 0 1 0 0 0 0\n"
		os.WriteFile(filepath.Join(dir, "stat"), []byte(line), 0o644)
	}
}

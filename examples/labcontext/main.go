// Laboratory evaluation: the §IV-A campaign on SMALL INTEL — all stress
// pairs, Scaphandre and PowerAPI, Equation 5 scores and the Fig 4/5 ratio
// points for the worst pairs.
//
// Run with:
//
//	go run ./examples/labcontext
package main

import (
	"fmt"
	"log"
	"sort"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/experiments"
	"powerdiv/internal/report"
)

func main() {
	ctx := experiments.LabContext(cpumodel.SmallIntel(), 1)
	fmt.Println("running the full §IV-A campaign on SMALL INTEL (lab context)…")

	results, err := experiments.LabEvaluation(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(experiments.ErrorTable("SMALL INTEL", results).String())

	// Show the five farthest-off ratio points of the Scaphandre campaign —
	// the pairs Fig 4 shows farthest from the y = x diagonal.
	sc := results["scaphandre"]
	points := append(sc.SameSize, sc.DiffSize...)
	sort.Slice(points, func(i, j int) bool {
		di := abs(points[i].Y - points[i].X)
		dj := abs(points[j].Y - points[j].X)
		return di > dj
	})
	t := report.NewTable("\nFig 4 — points farthest from y = x (scaphandre)", "pair", "sequential ratio", "parallel ratio")
	for i := 0; i < 5 && i < len(points); i++ {
		t.AddRowf(points[i].Label, points[i].X, points[i].Y)
	}
	fmt.Print(t.String())
	fmt.Println("\nthe paper's observation: both models treat same-thread-count applications")
	fmt.Println("as equal consumers, so the estimated ratio collapses to ≈0 while the")
	fmt.Println("objective ratio reflects the instruction-cost spread (max ≈11.7 %).")
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Quickstart: simulate two applications on the paper's SMALL INTEL
// machine, divide the measured power with a Scaphandre-style model, and
// score the division against the protocol's objective value.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/machine"
	"powerdiv/internal/models"
	"powerdiv/internal/protocol"
	"powerdiv/internal/report"
)

func main() {
	// A simulated 6-core Xeon with hyperthreading and turbo disabled —
	// the paper's "laboratory" context.
	ctx := protocol.DefaultContext(machine.Config{
		Spec:        cpumodel.SmallIntel(),
		NoiseStddev: 0.25,
		Seed:        42,
	})

	// Two stress applications, 3 threads each: the least power-hungry
	// function (fibonacci) against the most (matrixprod).
	fib, err := protocol.StressApp("fibonacci", 3)
	if err != nil {
		log.Fatal(err)
	}
	mat, err := protocol.StressApp("matrixprod", 3)
	if err != nil {
		log.Fatal(err)
	}
	scenario := protocol.Scenario{Apps: []protocol.AppSpec{fib, mat}}

	// Protocol phase 1: measure each application alone.
	baselines, err := protocol.MeasureBaselines(ctx, scenario.Apps)
	if err != nil {
		log.Fatal(err)
	}
	for _, id := range []string{fib.ID, mat.ID} {
		b := baselines[id]
		fmt.Printf("%-14s isolated: machine %s, active %s\n", id, b.Total, b.Active())
	}

	// Phases 2–3: run them together, let the model divide the power, and
	// score it with the paper's Equation 5.
	ev, err := protocol.EvaluatePair(ctx, scenario, models.NewScaphandre(), baselines, protocol.ObjectiveActive, 0)
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable("\nScaphandre division vs objective value", "application", "true share", "estimated share")
	for _, id := range ev.Truth.IDs() {
		t.AddRow(id, report.Percent(ev.Truth[id]), report.Percent(ev.EstShare[id]))
	}
	fmt.Print(t.String())
	fmt.Printf("\nabsolute error (Eq 5): %s — the model splits equal CPU time 50/50\n", report.Percent(ev.AE))
	fmt.Println("and misses the instruction-cost difference the objective captures.")
}

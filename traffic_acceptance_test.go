// Acceptance test for the production-shaped traffic pipeline: a large
// generated churn campaign is scored twice on the fused streaming path and
// must yield bit-identical per-model error tables with bounded live heap.
package powerdiv_test

import (
	"math"
	"testing"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/division"
	"powerdiv/internal/experiments"
	"powerdiv/internal/models"
	"powerdiv/internal/protocol"
	"powerdiv/internal/traffic"
	"powerdiv/internal/units"
)

// trafficHeapCeiling bounds the live-heap watermark of the 200-scenario
// streaming campaign. The streaming pipeline holds one scenario's estimate
// matrices and scoring view per worker (single-digit megabytes across the
// pool); the ceiling gives 2x headroom over that envelope plus the test
// binary's own baseline, while a pipeline that materialized or cached the
// 200 churn runs would blow straight through it.
const trafficHeapCeiling = 32 << 20

func TestTrafficAcceptanceCampaign(t *testing.T) {
	ctx := experiments.LabContext(cpumodel.SmallIntel(), 2024)
	cfg := experiments.TrafficConfig(ctx, traffic.Mixed, 201, 10*time.Second)
	cfg.ArrivalsPerMinute = 30
	scenarios, err := traffic.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) < 200 {
		t.Fatalf("generated %d scenarios, want ≥200", len(scenarios))
	}
	// Mixed cycles the three arrival shapes across scenarios.
	for i, kind := range []traffic.Kind{traffic.Poisson, traffic.Bursty, traffic.Diurnal} {
		if got := cfg.ScenarioKind(i); got != kind {
			t.Fatalf("scenario %d kind %v, want %v", i, got, kind)
		}
	}

	// Drop state retained by earlier tests in this binary so the watermark
	// measures the streaming campaign, not the memo cache's leftovers.
	protocol.ResetMemoization()
	stopWatermark := startHeapWatermark()

	factories := func(baselines map[string]division.Baseline) []models.Factory {
		perCore := map[string]units.Watts{}
		for _, s := range scenarios {
			for _, a := range s.Apps {
				if b, ok := baselines[a.BaseID]; ok {
					perCore[a.ID] = b.ActivePerCore()
				}
			}
		}
		return []models.Factory{
			models.NewScaphandre(),
			models.NewPowerAPI(models.DefaultPowerAPIConfig()),
			models.NewKepler(),
			models.NewSmartWatts(models.DefaultSmartWattsConfig()),
			models.NewF2(perCore),
			models.NewOracle(),
		}
	}

	run := func() map[string][]protocol.TrafficEvaluation {
		res, err := protocol.EvaluateTrafficStreaming(ctx, scenarios, factories, cfg.Window)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run()
	second := run()
	peak := stopWatermark()

	if len(first) == 0 {
		t.Fatal("campaign scored no models")
	}
	for model, evs := range first {
		if len(evs) != len(scenarios) {
			t.Fatalf("%s: %d evaluations for %d scenarios", model, len(evs), len(scenarios))
		}
		got := second[model]
		for i := range evs {
			if math.Float64bits(evs[i].AE) != math.Float64bits(got[i].AE) ||
				math.Float64bits(evs[i].Coverage) != math.Float64bits(got[i].Coverage) ||
				evs[i].BusyTicks != got[i].BusyTicks ||
				evs[i].ScoredTicks != got[i].ScoredTicks {
				t.Fatalf("%s scenario %d: runs diverged: %+v vs %+v", model, i, evs[i], got[i])
			}
		}
	}
	t.Logf("peak live heap: %.1f MiB over %d scenarios", peak/(1<<20), len(scenarios))
	if peak > trafficHeapCeiling {
		t.Errorf("peak live heap %.1f MiB exceeds the %d MiB streaming ceiling",
			peak/(1<<20), trafficHeapCeiling>>20)
	}
}

package energyacct

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/machine"
	"powerdiv/internal/models"
	"powerdiv/internal/units"
	"powerdiv/internal/workload"
)

func TestLedgerBasicAccounting(t *testing.T) {
	l := New()
	l.Record(time.Second, 100, map[string]units.Watts{"a": 60, "b": 40})
	l.Record(time.Second, 100, map[string]units.Watts{"a": 30, "b": 70})
	if got := l.Energy("a"); math.Abs(float64(got)-90) > 1e-9 {
		t.Errorf("a = %v, want 90 J", got)
	}
	if got := l.Energy("b"); math.Abs(float64(got)-110) > 1e-9 {
		t.Errorf("b = %v, want 110 J", got)
	}
	if got := l.Total(); math.Abs(float64(got)-200) > 1e-9 {
		t.Errorf("total = %v, want 200 J", got)
	}
	if l.Unattributed() != 0 {
		t.Errorf("unattributed = %v, want 0", l.Unattributed())
	}
	if l.Elapsed() != 2*time.Second {
		t.Errorf("elapsed = %v", l.Elapsed())
	}
	if err := l.Validate(); err != nil {
		t.Error(err)
	}
}

func TestLedgerUnattributedIntervals(t *testing.T) {
	l := New()
	l.Record(time.Second, 50, nil) // learning drop: all unattributed
	l.Record(time.Second, 100, map[string]units.Watts{"a": 80})
	if got := l.Unattributed(); math.Abs(float64(got)-70) > 1e-9 {
		t.Errorf("unattributed = %v, want 70 J (50 drop + 20 remainder)", got)
	}
	if err := l.Validate(); err != nil {
		t.Error(err)
	}
}

func TestLedgerIgnoresBadIntervals(t *testing.T) {
	l := New()
	l.Record(0, 100, map[string]units.Watts{"a": 100})
	l.Record(-time.Second, 100, map[string]units.Watts{"a": 100})
	if l.Total() != 0 || l.Elapsed() != 0 {
		t.Errorf("non-positive intervals recorded: %v/%v", l.Total(), l.Elapsed())
	}
}

func TestLedgerEntriesSorted(t *testing.T) {
	l := New()
	l.Record(time.Second, 100, map[string]units.Watts{"low": 10, "high": 60, "mid": 30})
	entries := l.Entries()
	if len(entries) != 3 || entries[0].ID != "high" || entries[1].ID != "mid" || entries[2].ID != "low" {
		t.Errorf("entries = %v", entries)
	}
	// Ties break by ID.
	l2 := New()
	l2.Record(time.Second, 100, map[string]units.Watts{"b": 50, "a": 50})
	e2 := l2.Entries()
	if e2[0].ID != "a" {
		t.Errorf("tie order = %v", e2)
	}
}

func TestLedgerClose(t *testing.T) {
	l := New()
	l.Record(time.Second, 100, map[string]units.Watts{"a": 100})
	entries, unattributed := l.Close()
	if len(entries) != 1 || math.Abs(float64(entries[0].Energy)-100) > 1e-9 {
		t.Errorf("closed entries = %v", entries)
	}
	if unattributed != 0 {
		t.Errorf("closed unattributed = %v", unattributed)
	}
	// Fresh period.
	if l.Total() != 0 || len(l.Entries()) != 0 || l.Elapsed() != 0 {
		t.Error("ledger not reset after Close")
	}
	l.Record(time.Second, 40, map[string]units.Watts{"b": 40})
	if got := l.Energy("a"); got != 0 {
		t.Errorf("previous period leaked: a = %v", got)
	}
}

// Property: conservation holds for arbitrary attribution patterns.
func TestLedgerConservationProperty(t *testing.T) {
	f := func(powers []uint16, splits []uint8) bool {
		l := New()
		for i, p := range powers {
			power := units.Watts(p % 500)
			var est map[string]units.Watts
			if i < len(splits) {
				frac := float64(splits[i]%101) / 100
				est = map[string]units.Watts{
					"a": units.Watts(float64(power) * frac),
					"b": units.Watts(float64(power) * (1 - frac)),
				}
			}
			l.Record(100*time.Millisecond, power, est)
		}
		return l.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromRunMatchesRunEnergy(t *testing.T) {
	w, _ := workload.StressByName("int64")
	run, err := machine.Simulate(machine.Config{Spec: cpumodel.SmallIntel()}, []machine.Proc{
		{ID: "p0", Workload: w, Threads: 2},
		{ID: "p1", Workload: w, Threads: 2},
	}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	l := FromRun(run, models.NewScaphandre(), 1)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(l.Total()-run.Energy())) > 1e-6 {
		t.Errorf("ledger total %v != run energy %v", l.Total(), run.Energy())
	}
	// Identical workloads and sizes: equal bills.
	if math.Abs(float64(l.Energy("p0")-l.Energy("p1"))) > 1e-6 {
		t.Errorf("equal apps billed unequally: %v vs %v", l.Energy("p0"), l.Energy("p1"))
	}
}

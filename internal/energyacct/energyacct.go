// Package energyacct turns a power division model's per-tick estimates
// into per-application energy accounts — the Life Cycle Assessment use
// case the paper's Section V endorses for power division models ("this
// model would be able to capture an abstract vision of the infrastructure
// by allocating parts of its energy consumption to running applications").
//
// A Ledger accumulates attributed energy per application, tracks the
// unattributed remainder (machine energy during ticks where the model
// produced no estimate — PowerAPI learning windows, idle periods), and can
// close billing periods, as a provider invoicing VM tenants would.
package energyacct

import (
	"fmt"
	"sort"
	"time"

	"powerdiv/internal/machine"
	"powerdiv/internal/models"
	"powerdiv/internal/units"
)

// Entry is one application's accumulated account.
type Entry struct {
	ID     string
	Energy units.Joules
}

// Ledger accumulates attributed energy.
type Ledger struct {
	accounts     map[string]units.Joules
	unattributed units.Joules
	total        units.Joules
	elapsed      time.Duration
}

// New returns an empty ledger.
func New() *Ledger {
	return &Ledger{accounts: map[string]units.Joules{}}
}

// Record ingests one sampling interval: the measured machine power and the
// model's estimates (nil when the model produced none — the interval's
// machine energy then counts as unattributed).
func (l *Ledger) Record(interval time.Duration, machinePower units.Watts, est map[string]units.Watts) {
	if interval <= 0 {
		return
	}
	l.elapsed += interval
	machineE := machinePower.Energy(interval)
	l.total += machineE
	if len(est) == 0 {
		l.unattributed += machineE
		return
	}
	var attributed units.Joules
	ids := make([]string, 0, len(est))
	for id := range est {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		e := est[id].Energy(interval)
		l.accounts[id] += e
		attributed += e
	}
	if rem := machineE - attributed; rem > 0 {
		// F3-style models leave residual energy unattributed.
		l.unattributed += rem
	}
}

// Energy returns an application's account balance.
func (l *Ledger) Energy(id string) units.Joules { return l.accounts[id] }

// Unattributed returns the machine energy no application was billed for.
func (l *Ledger) Unattributed() units.Joules { return l.unattributed }

// Total returns the machine energy observed.
func (l *Ledger) Total() units.Joules { return l.total }

// Elapsed returns the accounted wall time.
func (l *Ledger) Elapsed() time.Duration { return l.elapsed }

// Entries returns the accounts sorted by descending energy (ties by ID).
func (l *Ledger) Entries() []Entry {
	out := make([]Entry, 0, len(l.accounts))
	for id, e := range l.accounts {
		out = append(out, Entry{ID: id, Energy: e})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Energy != out[j].Energy {
			return out[i].Energy > out[j].Energy
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Close returns the period's entries plus the unattributed remainder and
// resets the ledger for the next billing period.
func (l *Ledger) Close() (entries []Entry, unattributed units.Joules) {
	entries = l.Entries()
	unattributed = l.unattributed
	l.accounts = map[string]units.Joules{}
	l.unattributed = 0
	l.total = 0
	l.elapsed = 0
	return entries, unattributed
}

// Validate checks the conservation invariant: attributed + unattributed
// equals the machine total (within floating-point tolerance).
func (l *Ledger) Validate() error {
	var attributed units.Joules
	for _, e := range l.Entries() {
		attributed += e.Energy
	}
	diff := float64(l.total - attributed - l.unattributed)
	if diff < 0 {
		diff = -diff
	}
	if diff > 1e-6*(1+float64(l.total)) {
		return fmt.Errorf("energyacct: %v attributed + %v unattributed != %v total",
			attributed, l.unattributed, l.total)
	}
	return nil
}

// FromRun replays a simulated run through a model and returns the filled
// ledger — the batch path used by the Section V experiments.
func FromRun(run *machine.Run, factory models.Factory, seed int64) *Ledger {
	l := New()
	ests := models.Replay(factory.New(seed), run)
	tick := run.Tick()
	for i, rec := range run.Ticks {
		l.Record(tick, rec.Power, ests[i])
	}
	return l
}

// Package fleet scales the evaluation protocol from one simulated machine
// to a datacenter: hundreds-to-thousands of heterogeneous nodes, each a
// varied machine spec (mixed SMALL-INTEL/DAHU-derived families at
// different core counts, per-node clock skew, sensor-noise grade and
// seed), each running its own deterministic share of traffic churn
// scenarios through the fused streaming pipeline, with per-model error
// distributions aggregated fleet-wide.
//
// Determinism contract: everything derives from (Config.Seed, node ID).
// Node specs, traffic shards and protocol seeds are pure functions of
// that pair, so adding nodes to a fleet never changes the scenarios — or
// results — of existing nodes, and two runs of the same config produce
// bit-identical aggregates. Cross-node reductions accumulate in node
// index order (node IDs are zero-padded, so index order is sorted-ID
// order), never in map order, keeping float sums reproducible — the same
// rule workload.CostOn and division.normalize follow.
//
// Memory contract: node evaluation streams — one fused simulate → observe
// → score pass per scenario — and each node's full evaluation rows are
// reduced to compact per-model error slices as soon as the node finishes,
// so peak live heap is bounded by the in-flight workers' scenario state
// plus the compact aggregates, not by fleet size × run length.
package fleet

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/division"
	"powerdiv/internal/machine"
	"powerdiv/internal/models"
	"powerdiv/internal/protocol"
	"powerdiv/internal/traffic"
	"powerdiv/internal/units"
)

// Node is one simulated machine of the fleet.
type Node struct {
	// ID is the node's zero-padded name ("node-00042"): index order is
	// sorted-ID order, which the aggregation order relies on.
	ID string
	// Class names the spec variant family the node was drawn from.
	Class string
	// Machine is the node's fully varied simulator config.
	Machine machine.Config
	// MaxCPUs is the node's schedulable capacity, the cap its traffic
	// shard respects.
	MaxCPUs int
}

// Config parameterizes a fleet campaign.
type Config struct {
	// Nodes is the fleet size (default 200, max 99999 — the ID padding
	// keeps sorted order equal to index order).
	Nodes int
	// Seed makes the whole fleet — specs, shards, noise — deterministic.
	Seed int64
	// Kind is the arrival shape of every node's traffic shard.
	Kind traffic.Kind
	// ScenariosPerNode is each node's scenario count (default 1).
	ScenariosPerNode int
	// Window is each scenario's duration (default 10s).
	Window time.Duration
	// RunFor and StableWindow configure the per-node protocol context's
	// phase 1 baseline runs (defaults 10s / 4s — shorter than the paper's
	// 30s / 10s because a fleet runs hundreds of phase 1 sweeps).
	RunFor       time.Duration
	StableWindow time.Duration
	// FreqSkewFrac is the maximum fractional per-node clock skew; each
	// node draws a scale factor uniform in [1−f, 1+f] (default 0.03).
	FreqSkewFrac float64
	// NoiseJitterFrac spreads per-node sensor grade: each node scales the
	// base noise by a factor uniform in [1, 1+f] (default 0.5).
	NoiseJitterFrac float64
	// BaseNoise is the base sensor-noise standard deviation (default
	// 0.25 W, the calibrations' stress-ng spread).
	BaseNoise units.Watts
	// Production enables hyperthreading and turbo on every node — the
	// paper's production context, and a datacenter's usual shape.
	Production bool
	// Kernels is the cohort mix of every node's shard (defaults to the
	// traffic package's 12 stress functions).
	Kernels []string
	// Baseload passes through to each node's traffic config: 0 defaults
	// to 2 always-on anchors, traffic.NoBaseload means none.
	Baseload int
}

const (
	defaultNodes        = 200
	maxNodes            = 99999
	defaultWindow       = 10 * time.Second
	defaultRunFor       = 10 * time.Second
	defaultStableWindow = 4 * time.Second
	defaultFreqSkew     = 0.03
	defaultNoiseJitter  = 0.5
	defaultBaseNoise    = units.Watts(0.25)
)

// WithDefaults fills unset fields with the package defaults.
func (c Config) WithDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = defaultNodes
	}
	if c.ScenariosPerNode <= 0 {
		c.ScenariosPerNode = 1
	}
	if c.Window <= 0 {
		c.Window = defaultWindow
	}
	if c.RunFor <= 0 {
		c.RunFor = defaultRunFor
	}
	if c.StableWindow <= 0 {
		c.StableWindow = defaultStableWindow
	}
	if c.FreqSkewFrac <= 0 {
		c.FreqSkewFrac = defaultFreqSkew
	}
	if c.NoiseJitterFrac <= 0 {
		c.NoiseJitterFrac = defaultNoiseJitter
	}
	if c.BaseNoise <= 0 {
		c.BaseNoise = defaultBaseNoise
	}
	return c
}

// Validate checks a defaulted config.
func (c Config) Validate() error {
	if c.Nodes > maxNodes {
		return fmt.Errorf("fleet: %d nodes exceeds the %d-node ID space", c.Nodes, maxNodes)
	}
	if c.StableWindow > c.RunFor {
		return fmt.Errorf("fleet: stable window %v exceeds run duration %v", c.StableWindow, c.RunFor)
	}
	if c.FreqSkewFrac >= 1 {
		return fmt.Errorf("fleet: frequency skew fraction %v must be below 1", c.FreqSkewFrac)
	}
	return nil
}

// nodeClass is one hardware generation the fleet mixes: a calibrated base
// spec at a given per-socket core count.
type nodeClass struct {
	name  string
	base  func() cpumodel.Spec
	cores int
}

// nodeClasses are the capacity-heterogeneous variants fleet nodes draw
// from: SMALL-INTEL-derived workstations at 4/6/8 cores per socket and
// DAHU-derived dual-socket servers at 8/12/16.
var nodeClasses = []nodeClass{
	{"small-intel/4c", cpumodel.SmallIntel, 4},
	{"small-intel/6c", cpumodel.SmallIntel, 6},
	{"small-intel/8c", cpumodel.SmallIntel, 8},
	{"dahu/8c", cpumodel.Dahu, 8},
	{"dahu/12c", cpumodel.Dahu, 12},
	{"dahu/16c", cpumodel.Dahu, 16},
}

// seedFor derives a deterministic sub-seed by FNV-1a over the seed and
// labels (the construction the protocol and traffic packages share).
func seedFor(seed int64, parts ...string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", seed)
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return int64(h.Sum64())
}

// NodeID names node i.
func NodeID(i int) string { return fmt.Sprintf("node-%05d", i) }

// NewNode derives node i of the fleet: a pure function of (cfg.Seed, i),
// independent of every other node, which is what makes the node set
// growable without disturbing existing nodes.
func NewNode(cfg Config, i int) Node {
	id := NodeID(i)
	rng := rand.New(rand.NewSource(seedFor(cfg.Seed, "node", id)))
	cl := nodeClasses[rng.Intn(len(nodeClasses))]
	skew := 1 + (2*rng.Float64()-1)*cfg.FreqSkewFrac
	noiseScale := 1 + rng.Float64()*cfg.NoiseJitterFrac
	base := machine.Config{
		Spec:           cl.base(),
		Hyperthreading: cfg.Production,
		Turbo:          cfg.Production,
		NoiseStddev:    cfg.BaseNoise,
	}
	mc := base.WithVariation(machine.Variation{
		SpecName:       fmt.Sprintf("%s@%s", cl.name, id),
		CoresPerSocket: cl.cores,
		FreqScale:      skew,
		NoiseScale:     noiseScale,
		Seed:           seedFor(cfg.Seed, "noise", id),
	})
	maxCPUs := mc.Spec.Topology.PhysicalCores()
	if mc.Hyperthreading {
		maxCPUs = mc.Spec.Topology.LogicalCPUs()
	}
	return Node{ID: id, Class: cl.name, Machine: mc, MaxCPUs: maxCPUs}
}

// Nodes instantiates the whole fleet in index order.
func Nodes(cfg Config) []Node {
	out := make([]Node, cfg.Nodes)
	for i := range out {
		out[i] = NewNode(cfg, i)
	}
	return out
}

// NodeTrafficConfig is node n's traffic shard: seeded by (fleet seed,
// node ID) alone and capped by the node's own capacity, so the shard is
// stable under fleet growth and contention-free on that node.
func NodeTrafficConfig(cfg Config, n Node) traffic.Config {
	return traffic.Config{
		Kind:      cfg.Kind,
		Seed:      seedFor(cfg.Seed, "traffic", n.ID),
		Scenarios: cfg.ScenariosPerNode,
		Window:    cfg.Window,
		Kernels:   cfg.Kernels,
		MaxCPUs:   n.MaxCPUs,
		Baseload:  cfg.Baseload,
	}.WithDefaults()
}

// NodeScenarios generates node n's scenarios.
func NodeScenarios(cfg Config, n Node) ([]protocol.Scenario, error) {
	return traffic.Generate(NodeTrafficConfig(cfg, n))
}

// nodeContext is node n's protocol evaluation context.
func nodeContext(cfg Config, n Node) protocol.Context {
	return protocol.Context{
		Machine:      n.Machine,
		RunFor:       cfg.RunFor,
		StableWindow: cfg.StableWindow,
		Seed:         seedFor(cfg.Seed, "ctx", n.ID),
	}
}

// nodeFactories builds the seven-model roster a node scores: the six
// intrusive families of the single-machine campaigns plus the
// WattScope-style non-intrusive model, which sees only machine power and
// coarse utilization — the fleet operator's signal.
func nodeFactories(scenarios []protocol.Scenario) func(map[string]division.Baseline) []models.Factory {
	return func(baselines map[string]division.Baseline) []models.Factory {
		perCore := map[string]units.Watts{}
		for _, s := range scenarios {
			for _, a := range s.Apps {
				base := a.BaseID
				if base == "" {
					base = a.ID
				}
				if b, ok := baselines[base]; ok {
					perCore[a.ID] = b.ActivePerCore()
				}
			}
		}
		return []models.Factory{
			models.NewScaphandre(),
			models.NewPowerAPI(models.DefaultPowerAPIConfig()),
			models.NewKepler(),
			models.NewSmartWatts(models.DefaultSmartWattsConfig()),
			models.NewF2(perCore),
			models.NewOracle(),
			models.NewWattScope(),
		}
	}
}

// NodeDigest is the compact per-node reduction kept after a node's full
// evaluation rows are dropped: per-model error samples and coverage, plus
// roster counts. Everything the fleet aggregate needs, nothing sized by
// run length. It is also the fleet job's per-shard result unit in the
// campaign service — JSON-serializable, and a pure function of
// (Config.Seed, node ID), so a digest computed before a daemon restart is
// bit-identical to one computed after.
type NodeDigest struct {
	Node      Node `json:"node"`
	Scenarios int  `json:"scenarios"`
	Instances int  `json:"instances"`
	// AEs and Coverages are per-model, scenario-ordered (model name →
	// one value per scenario).
	AEs       map[string][]float64 `json:"aes"`
	Coverages map[string][]float64 `json:"coverages"`
}

// EvaluateNode runs one node's full protocol — phase 1 baselines over its
// shard's application types, then every scenario through the fused
// streaming pipeline — and reduces the result immediately. cctx is the
// cancellation seam: a cancelled context aborts the node's in-flight
// simulator at the next tick (see protocol.EvaluateTrafficStreamingCtx).
func EvaluateNode(cctx context.Context, cfg Config, n Node) (NodeDigest, error) {
	scenarios, err := NodeScenarios(cfg, n)
	if err != nil {
		return NodeDigest{}, fmt.Errorf("fleet: %s: %w", n.ID, err)
	}
	byModel, err := protocol.EvaluateTrafficStreamingCtx(cctx, nodeContext(cfg, n), scenarios, nodeFactories(scenarios), cfg.Window)
	if err != nil {
		return NodeDigest{}, fmt.Errorf("fleet: %s: %w", n.ID, err)
	}
	out := NodeDigest{
		Node:      n,
		Scenarios: len(scenarios),
		AEs:       make(map[string][]float64, len(byModel)),
		Coverages: make(map[string][]float64, len(byModel)),
	}
	for _, s := range scenarios {
		out.Instances += len(s.Apps)
	}
	for name, evs := range byModel {
		aes := make([]float64, len(evs))
		covs := make([]float64, len(evs))
		for i, ev := range evs {
			aes[i] = ev.AE
			covs[i] = ev.Coverage
		}
		out.AEs[name] = aes
		out.Coverages[name] = covs
	}
	return out, nil
}

// ModelStats is one model's fleet-wide error distribution.
type ModelStats struct {
	Model string
	// MeanAE / MaxAE aggregate the per-scenario Eq 5 absolute errors
	// across every node.
	MeanAE float64
	MaxAE  float64
	// P50 / P90 / P99 are nearest-rank quantiles of the same distribution.
	P50 float64
	P90 float64
	P99 float64
	// MeanCoverage averages per-scenario estimate coverage fleet-wide.
	MeanCoverage float64
	// WorstNode is the node with the highest per-node mean AE.
	WorstNode       string
	WorstNodeMeanAE float64
	// Scenarios is the number of scored scenarios in the distribution.
	Scenarios int
}

// Result is a fleet campaign's aggregate outcome.
type Result struct {
	Nodes     int
	Scenarios int
	Instances int
	Window    time.Duration
	Kind      string
	// Classes counts nodes per spec-variant class.
	Classes map[string]int
	// Models holds one aggregate per model family, sorted by name.
	Models []ModelStats
}

// Campaign evaluates the whole fleet: nodes run concurrently on the
// shared protocol worker budget (node-level and per-node parallelism draw
// from one GOMAXPROCS pool), and the per-node reductions are folded into
// fleet aggregates strictly in node index order — zero-padded IDs make
// that sorted-node order — so float accumulation never depends on
// scheduling or map iteration.
func Campaign(cfg Config) (Result, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	nodes := Nodes(cfg)
	outcomes := make([]NodeDigest, len(nodes))
	// Nodes go to the worker pool in contiguous index batches rather than
	// one task per node: a node is a short task on the default config (one
	// traffic scenario), and with per-node dispatch the handout and budget
	// traffic outweighed the parallelism — two workers measured *slower*
	// than one on small fleets. Each worker owns whole batches and writes
	// outcomes by node index, so Reduce folds in exactly the order the
	// unbatched loop produced and aggregates stay bit-identical.
	batch := nodeBatch(len(nodes))
	tasks := (len(nodes) + batch - 1) / batch
	err := protocol.ForEach(tasks, func(t int) error {
		lo, hi := t*batch, (t+1)*batch
		if hi > len(nodes) {
			hi = len(nodes)
		}
		for i := lo; i < hi; i++ {
			out, err := EvaluateNode(context.Background(), cfg, nodes[i])
			if err != nil {
				return err
			}
			outcomes[i] = out
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	return Reduce(cfg, outcomes), nil
}

// nodeBatch sizes Campaign's per-task node batches: small enough for ~4
// batches per worker (load balancing across heterogeneous node costs),
// large enough to amortize task dispatch on small fleets.
func nodeBatch(n int) int {
	b := n / (4 * runtime.GOMAXPROCS(0))
	if b < 1 {
		b = 1
	}
	return b
}

// Reduce folds per-node digests into the fleet aggregate, visiting nodes
// in index order and models in sorted-name order. Exported so the campaign
// service can fold resumed shard digests with exactly the Campaign
// accumulation order.
func Reduce(cfg Config, outcomes []NodeDigest) Result {
	res := Result{
		Nodes:   len(outcomes),
		Window:  cfg.Window,
		Kind:    cfg.Kind.String(),
		Classes: map[string]int{},
	}
	modelNames := map[string]bool{}
	for i := range outcomes {
		res.Scenarios += outcomes[i].Scenarios
		res.Instances += outcomes[i].Instances
		res.Classes[outcomes[i].Node.Class]++
		for name := range outcomes[i].AEs {
			modelNames[name] = true
		}
	}
	names := make([]string, 0, len(modelNames))
	for name := range modelNames {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := ModelStats{Model: name, WorstNodeMeanAE: math.Inf(-1)}
		var all []float64
		var covSum float64
		for i := range outcomes {
			o := &outcomes[i]
			aes := o.AEs[name]
			if len(aes) == 0 {
				continue
			}
			var nodeSum float64
			for _, ae := range aes {
				nodeSum += ae
				if ae > st.MaxAE {
					st.MaxAE = ae
				}
			}
			for _, c := range o.Coverages[name] {
				covSum += c
			}
			all = append(all, aes...)
			if nodeMean := nodeSum / float64(len(aes)); nodeMean > st.WorstNodeMeanAE {
				st.WorstNodeMeanAE = nodeMean
				st.WorstNode = o.Node.ID
			}
		}
		st.Scenarios = len(all)
		if len(all) == 0 {
			st.WorstNodeMeanAE = 0
			res.Models = append(res.Models, st)
			continue
		}
		var sum float64
		for _, ae := range all {
			sum += ae
		}
		st.MeanAE = sum / float64(len(all))
		st.MeanCoverage = covSum / float64(len(all))
		sorted := append([]float64(nil), all...)
		sort.Float64s(sorted)
		st.P50 = quantile(sorted, 0.50)
		st.P90 = quantile(sorted, 0.90)
		st.P99 = quantile(sorted, 0.99)
		res.Models = append(res.Models, st)
	}
	return res
}

// quantile is the nearest-rank quantile of a sorted sample.
func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

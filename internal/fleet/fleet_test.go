package fleet

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"powerdiv/internal/traffic"
)

// testFleet is a fast fleet config: short runs, a 3-kernel cohort, one
// scenario per node.
func testFleet(nodes int, seed int64) Config {
	return Config{
		Nodes:            nodes,
		Seed:             seed,
		ScenariosPerNode: 1,
		Window:           2 * time.Second,
		RunFor:           3 * time.Second,
		StableWindow:     time.Second,
		Kernels:          []string{"fibonacci", "matrixprod", "queens"},
	}
}

// TestCampaignDeterministic pins the fleet aggregation's bit-level
// reproducibility over a 200-node heterogeneous fleet: two runs of the
// same config must agree on every aggregate float to the last bit, which
// fails if any cross-node reduction runs in scheduling or map order
// instead of sorted-node order.
func TestCampaignDeterministic(t *testing.T) {
	cfg := testFleet(200, 42)
	a, err := Campaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Campaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Nodes != 200 || a.Scenarios != 200 {
		t.Fatalf("fleet shape: %d nodes, %d scenarios", a.Nodes, a.Scenarios)
	}
	if len(a.Models) != 7 {
		t.Fatalf("got %d model families, want 7", len(a.Models))
	}
	if len(a.Models) != len(b.Models) {
		t.Fatalf("model counts differ: %d vs %d", len(a.Models), len(b.Models))
	}
	bits := func(f float64) uint64 { return math.Float64bits(f) }
	for i := range a.Models {
		ma, mb := a.Models[i], b.Models[i]
		if ma.Model != mb.Model || ma.WorstNode != mb.WorstNode || ma.Scenarios != mb.Scenarios {
			t.Fatalf("model %d identity differs: %+v vs %+v", i, ma, mb)
		}
		for _, pair := range [][2]float64{
			{ma.MeanAE, mb.MeanAE}, {ma.MaxAE, mb.MaxAE},
			{ma.P50, mb.P50}, {ma.P90, mb.P90}, {ma.P99, mb.P99},
			{ma.MeanCoverage, mb.MeanCoverage},
			{ma.WorstNodeMeanAE, mb.WorstNodeMeanAE},
		} {
			if bits(pair[0]) != bits(pair[1]) {
				t.Fatalf("model %s: %v and %v differ at the bit level", ma.Model, pair[0], pair[1])
			}
		}
	}
	if !reflect.DeepEqual(a.Classes, b.Classes) {
		t.Fatalf("class mix differs: %v vs %v", a.Classes, b.Classes)
	}
}

// TestShardingStableUnderGrowth is the seeded property: adding nodes to a
// fleet never changes existing nodes' specs or scenario shards — each
// derives from (seed, node ID) alone.
func TestShardingStableUnderGrowth(t *testing.T) {
	for _, seed := range []int64{1, 7, 99} {
		small := testFleet(40, seed).WithDefaults()
		large := testFleet(55, seed).WithDefaults()
		ns, nl := Nodes(small), Nodes(large)
		for i := range ns {
			if !reflect.DeepEqual(ns[i], nl[i]) {
				t.Fatalf("seed %d: node %d changed when the fleet grew:\n%+v\nvs\n%+v", seed, i, ns[i], nl[i])
			}
			ss, err := NodeScenarios(small, ns[i])
			if err != nil {
				t.Fatal(err)
			}
			sl, err := NodeScenarios(large, nl[i])
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ss, sl) {
				t.Fatalf("seed %d: node %s's scenarios changed when the fleet grew", seed, ns[i].ID)
			}
		}
	}
}

// TestFleetHeterogeneity checks a 200-node fleet actually mixes hardware:
// several spec classes, distinct capacities, per-node clock skew and
// independent noise seeds.
func TestFleetHeterogeneity(t *testing.T) {
	cfg := testFleet(200, 3).WithDefaults()
	nodes := Nodes(cfg)
	classes := map[string]int{}
	caps := map[int]int{}
	seeds := map[int64]bool{}
	baseFreqs := map[float64]bool{}
	for _, n := range nodes {
		classes[n.Class]++
		caps[n.MaxCPUs]++
		if seeds[n.Machine.Seed] {
			t.Fatalf("node %s shares a noise seed with another node", n.ID)
		}
		seeds[n.Machine.Seed] = true
		baseFreqs[float64(n.Machine.Spec.Freq.Base)] = true
		if err := n.Machine.Spec.Validate(); err != nil {
			t.Fatalf("node %s spec invalid: %v", n.ID, err)
		}
		if !strings.HasPrefix(n.Machine.Spec.Name, n.Class) {
			t.Fatalf("node %s spec name %q does not carry class %q", n.ID, n.Machine.Spec.Name, n.Class)
		}
	}
	if len(classes) < 4 {
		t.Fatalf("only %d spec classes in 200 nodes: %v", len(classes), classes)
	}
	if len(caps) < 3 {
		t.Fatalf("only %d distinct capacities: %v", len(caps), caps)
	}
	if len(baseFreqs) < 50 {
		t.Fatalf("clock skew not engaging: only %d distinct base frequencies", len(baseFreqs))
	}
}

// TestWattScopeFleetSanity pins the non-intrusive model's place in the
// table: present alongside the six intrusive families, finite, and no
// more accurate than the oracle's ground-truth division.
func TestWattScopeFleetSanity(t *testing.T) {
	res, err := Campaign(testFleet(30, 11))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ModelStats{}
	for _, m := range res.Models {
		byName[m.Model] = m
	}
	for _, want := range []string{"scaphandre", "powerapi", "kepler", "smartwatts", "f2", "oracle", "wattscope"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("model %s missing from fleet table: %v", want, byName)
		}
	}
	ws, oracle := byName["wattscope"], byName["oracle"]
	for _, v := range []float64{ws.MeanAE, ws.MaxAE, ws.P50, ws.P90, ws.P99, ws.MeanCoverage} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("wattscope stat not finite: %+v", ws)
		}
	}
	if ws.MeanAE < oracle.MeanAE {
		t.Fatalf("non-intrusive wattscope (%v) beat the oracle (%v)", ws.MeanAE, oracle.MeanAE)
	}
	if ws.MeanAE <= 0 {
		t.Fatalf("wattscope mean AE %v: a power-floor heuristic cannot be exact", ws.MeanAE)
	}
	if ws.MeanCoverage <= 0 {
		t.Fatal("wattscope produced no estimates")
	}
}

// TestConfigValidate covers the fleet config's guard rails.
func TestConfigValidate(t *testing.T) {
	if _, err := Campaign(Config{Nodes: maxNodes + 1}); err == nil {
		t.Error("accepted a fleet larger than the ID space")
	}
	if _, err := Campaign(Config{Nodes: 1, RunFor: time.Second, StableWindow: 2 * time.Second}); err == nil {
		t.Error("accepted a stable window longer than the run")
	}
	if _, err := Campaign(Config{Nodes: 1, FreqSkewFrac: 1.5}); err == nil {
		t.Error("accepted a frequency skew of 150%")
	}
	cfg := Config{}.WithDefaults()
	if cfg.Nodes != defaultNodes || cfg.ScenariosPerNode != 1 {
		t.Errorf("defaults: %+v", cfg)
	}
}

// TestNoBaseloadPassthrough checks the fleet honours the traffic
// package's explicit zero-baseload sentinel.
func TestNoBaseloadPassthrough(t *testing.T) {
	cfg := testFleet(3, 5)
	cfg.Baseload = traffic.NoBaseload
	cfg = cfg.WithDefaults()
	n := NewNode(cfg, 0)
	tc := NodeTrafficConfig(cfg, n)
	if tc.Baseload != 0 {
		t.Fatalf("baseload %d, want 0", tc.Baseload)
	}
}

package models

// RidgeFit4 solves the ridge-regularised least squares problem
// (XᵀX + λI) w = Xᵀy for w, with feature scaling: each column of X is
// divided by its mean absolute value before fitting, and the returned
// scales let callers apply the weights to raw feature vectors. Rows are
// observations (feature vectors of width dim), y the targets.
func RidgeFit4(rows [][4]float64, y []float64, lambda float64) (weights, scales [4]float64) {
	const dim = 4
	for d := 0; d < dim; d++ {
		scales[d] = 1
	}
	if len(rows) == 0 || len(rows) != len(y) {
		return weights, scales
	}
	// Column scaling keeps the ridge penalty meaningful across features of
	// wildly different magnitudes (cycles ~1e10/s vs cache refs ~1e7/s).
	for d := 0; d < dim; d++ {
		var sum float64
		for _, r := range rows {
			v := r[d]
			if v < 0 {
				v = -v
			}
			sum += v
		}
		mean := sum / float64(len(rows))
		if mean > 0 {
			scales[d] = mean
		}
	}
	// Normal equations in scaled space.
	var a [dim][dim]float64
	var b [dim]float64
	for i, r := range rows {
		var x [dim]float64
		for d := 0; d < dim; d++ {
			x[d] = r[d] / scales[d]
		}
		for p := 0; p < dim; p++ {
			for q := 0; q < dim; q++ {
				a[p][q] += x[p] * x[q]
			}
			b[p] += x[p] * y[i]
		}
	}
	for d := 0; d < dim; d++ {
		a[d][d] += lambda * float64(len(rows))
	}
	w, ok := solve4(a, b)
	if !ok {
		return weights, scales
	}
	return w, scales
}

// solve4 solves the 4×4 linear system a·x = b by Gaussian elimination with
// partial pivoting. ok is false for a (numerically) singular system.
func solve4(a [4][4]float64, b [4]float64) (x [4]float64, ok bool) {
	const n = 4
	// Augment.
	var m [n][n + 1]float64
	for i := 0; i < n; i++ {
		copy(m[i][:n], a[i][:])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if abs(m[r][col]) > abs(m[piv][col]) {
				piv = r
			}
		}
		if abs(m[piv][col]) < 1e-12 {
			return x, false
		}
		m[col], m[piv] = m[piv], m[col]
		// Eliminate.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	for i := 0; i < n; i++ {
		x[i] = m[i][n] / m[i][i]
	}
	return x, true
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

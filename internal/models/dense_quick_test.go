package models

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/machine"
	"powerdiv/internal/perfcnt"
	"powerdiv/internal/units"
)

// randomDenseTicks builds a tick sequence over a random roster, with
// arbitrary absent-process slots and degraded intervals — the shapes the
// dense↔map adapters must agree on.
func randomDenseTicks(rng *rand.Rand) []Tick {
	n := 1 + rng.Intn(5)
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("proc-%c", 'a'+byte(i))
	}
	roster := machine.NewRoster(ids)
	const interval = 50 * time.Millisecond
	ticks := make([]Tick, 4+rng.Intn(12))
	for i := range ticks {
		col := make([]ProcSample, roster.Len())
		for s := range col {
			if rng.Float64() < 0.3 {
				continue // absent this tick: zero sample, Present() false
			}
			col[s] = ProcSample{
				CPUTime: units.CPUTime(time.Duration(1 + rng.Intn(int(interval)))),
				Counters: perfcnt.Counters{
					Cycles:       rng.Float64() * 1e8,
					Instructions: rng.Float64() * 1e8,
					CacheRefs:    rng.Float64() * 1e6,
					Branches:     rng.Float64() * 1e7,
				},
				Threads:    1 + rng.Intn(4),
				TrueActive: units.Watts(rng.Float64() * 10),
			}
		}
		ticks[i] = Tick{
			At:           time.Duration(i) * interval,
			Interval:     interval,
			MachinePower: units.Watts(15 + rng.Float64()*30),
			LogicalCPUs:  8,
			Freq:         3 * units.GHz,
			Degraded:     rng.Float64() < 0.2,
			Roster:       roster,
			Samples:      col,
		}
	}
	return ticks
}

// TestQuickDenseMapRoundTrip is the adapter round-trip property: for
// arbitrary rosters, present/absent patterns and degraded ticks, the map
// view of a dense tick holds exactly the present slots, and scattering it
// back through the roster reproduces the original column.
func TestQuickDenseMapRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, tk := range randomDenseTicks(rng) {
			view := tk.ProcsView()
			// The view holds exactly the present slots, verbatim.
			present := 0
			for slot, p := range tk.Samples {
				if !p.Present() {
					if _, ok := view[tk.Roster.ID(slot)]; ok {
						return false
					}
					continue
				}
				present++
				if view[tk.Roster.ID(slot)] != p {
					return false
				}
			}
			if len(view) != present {
				return false
			}
			// Scattering the map back through the roster reproduces the
			// column: absent slots zero, present slots verbatim.
			back := make([]ProcSample, tk.Roster.Len())
			for id, p := range view {
				slot, ok := tk.Roster.Slot(id)
				if !ok {
					return false
				}
				back[slot] = p
			}
			for slot := range back {
				if back[slot] != tk.Samples[slot] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickObserveIntoMatchesObserve drives two instances of every dense
// model through the same arbitrary tick sequence — one via the map entry
// point, one via the columnar one — and requires bit-identical estimates,
// including agreement on no-estimate ticks. This covers stateful models:
// PowerAPI's calibration and RNG draws must advance identically on both
// paths.
func TestQuickObserveIntoMatchesObserve(t *testing.T) {
	factories := []Factory{
		NewScaphandre(),
		NewKepler(),
		NewPowerAPI(DefaultPowerAPIConfig()),
		NewSmartWatts(DefaultSmartWattsConfig()),
		NewF2(map[string]units.Watts{
			"proc-a": 3, "proc-b": 4, "proc-c": 5, "proc-d": 2, "proc-e": 6,
		}),
		NewResidualAwareFromSpec(cpumodel.SmallIntel()),
		NewOracle(),
		NewWattScope(),
	}
	for _, f := range factories {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			prop := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				ticks := randomDenseTicks(rng)
				mapModel := f.New(seed)
				denseModel, ok := f.New(seed).(DenseModel)
				if !ok {
					t.Fatalf("%s does not implement DenseModel", f.Name)
				}
				out := make([]units.Watts, ticks[0].Roster.Len())
				for _, tk := range ticks {
					mapTick := tk
					mapTick.Roster, mapTick.Samples = nil, nil
					mapTick.Procs = tk.ProcsView()
					est := mapModel.Observe(mapTick)
					got := denseModel.ObserveInto(tk, out)
					if (est == nil) != !got {
						return false
					}
					if est == nil {
						continue
					}
					for slot, w := range out {
						id := tk.Roster.ID(slot)
						ew, inMap := est[id]
						if !inMap && w != 0 {
							return false
						}
						if math.Float64bits(float64(ew)) != math.Float64bits(float64(w)) {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
				t.Error(err)
			}
		})
	}
}

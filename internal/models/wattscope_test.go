package models

import (
	"math"
	"testing"
	"time"

	"powerdiv/internal/units"
)

// wsTick builds a map-view tick with the given machine power and per-proc
// CPU utilizations (fraction of a 50 ms interval).
func wsTick(power float64, degraded bool, utils map[string]float64) Tick {
	const interval = 50 * time.Millisecond
	procs := make(map[string]ProcSample, len(utils))
	for id, u := range utils {
		procs[id] = ProcSample{
			CPUTime: units.CPUTime(time.Duration(u * float64(interval))),
			Threads: 1,
		}
	}
	return Tick{
		Interval:     interval,
		MachinePower: units.Watts(power),
		LogicalCPUs:  8,
		Degraded:     degraded,
		Procs:        procs,
	}
}

func TestWattScopeSumsToMachinePower(t *testing.T) {
	m := NewWattScope().New(0)
	// Prime the floor with a near-idle tick, then divide a loaded one.
	if est := m.Observe(wsTick(10, false, nil)); est != nil {
		t.Fatalf("idle tick produced estimates: %v", est)
	}
	est := m.Observe(wsTick(40, false, map[string]float64{"a": 0.9, "b": 0.3, "c": 0.02}))
	if est == nil {
		t.Fatal("loaded tick produced no estimate")
	}
	var sum float64
	for _, w := range est {
		if w < 0 || math.IsNaN(float64(w)) || math.IsInf(float64(w), 0) {
			t.Fatalf("estimate %v not finite and non-negative", w)
		}
		sum += float64(w)
	}
	if math.Abs(sum-40) > 1e-9 {
		t.Fatalf("estimates sum to %v, want machine power 40", sum)
	}
	// The floor (10 W) splits evenly; the 30 W dynamic part follows coarse
	// utilization, so the busy process gets strictly more than the others.
	if est["a"] <= est["b"] || est["b"] <= est["c"] {
		t.Fatalf("dynamic split does not follow utilization: %v", est)
	}
	// c's 2%% utilization rounds to the zero quantum step: it receives the
	// even floor share only.
	if got := float64(est["c"]); math.Abs(got-10.0/3) > 1e-9 {
		t.Fatalf("zero-quantum process got %v, want floor share %v", got, 10.0/3)
	}
}

func TestWattScopeDegradedTicks(t *testing.T) {
	m := NewWattScope().New(0)
	// A degraded first tick must still divide — finitely — without priming
	// the floor.
	est := m.Observe(wsTick(35, true, map[string]float64{"a": 0.5, "b": 0.5}))
	if est == nil {
		t.Fatal("degraded tick produced no estimate")
	}
	var sum float64
	for id, w := range est {
		if math.IsNaN(float64(w)) || math.IsInf(float64(w), 0) {
			t.Fatalf("degraded estimate %s = %v not finite", id, w)
		}
		sum += float64(w)
	}
	if math.Abs(sum-35) > 1e-9 {
		t.Fatalf("degraded estimates sum to %v, want 35", sum)
	}
	// Degraded readings must not contaminate the floor: a low coalesced
	// reading followed by a normal one should leave the floor at the
	// normal tick's level, i.e. all of a later equal reading is static.
	m2 := NewWattScope().New(0)
	m2.Observe(wsTick(1, true, map[string]float64{"a": 0.5}))
	m2.Observe(wsTick(20, false, map[string]float64{"a": 0.5}))
	est = m2.Observe(wsTick(20, false, map[string]float64{"a": 1.0, "b": 0.0}))
	// Floor is 20 (degraded 1 W skipped), so the whole 20 W is static and
	// splits evenly despite the skewed utilization.
	if math.Abs(float64(est["a"])-10) > 1e-9 || math.Abs(float64(est["b"])-10) > 1e-9 {
		t.Fatalf("degraded reading leaked into the floor: %v", est)
	}
}

func TestWattScopeZeroUtilizationFallsBackToEvenSplit(t *testing.T) {
	m := NewWattScope().New(0)
	m.Observe(wsTick(8, false, nil)) // prime floor at 8 W
	est := m.Observe(wsTick(30, false, map[string]float64{"a": 0.01, "b": 0.0}))
	if est == nil {
		t.Fatal("no estimate")
	}
	if math.Abs(float64(est["a"])-15) > 1e-9 || math.Abs(float64(est["b"])-15) > 1e-9 {
		t.Fatalf("zero-quantum tick should split evenly: %v", est)
	}
}

// Package models implements the process-level power division models the
// paper evaluates, behind a single streaming interface:
//
//   - Scaphandre: CPU-time-share division of the measured machine power;
//   - PowerAPI: per-window linear regression of machine power against
//     performance counters with a learning phase, and the many-core
//     calibration instability the paper observed on DAHU (Fig 8);
//   - Kepler: performance-counter-share division (the paper discards it
//     from its runs because it targets Kubernetes, but notes its model is
//     close to Scaphandre's — it is included here to check that claim);
//   - F2: the paper's proposed ratio-preserving family, which divides
//     power by the ratio of per-application isolated baselines;
//   - Oracle: ground-truth division, available only on the simulator.
//
// All of these are "F1-shaped" in their output contract: each tick they
// split the measured machine power C_{S,t} among the running processes (the
// estimates sum to C_{S,t} whenever they produce estimates at all).
//
// Ticks come in two representations. The map view (Tick.Procs) is what live
// backends with a churning PID set produce. The dense view (Tick.Roster +
// Tick.Samples) is a roster-indexed column shared with the simulator's
// columnar storage; models implementing DenseModel divide it without any
// per-tick map allocation or key sorting, writing estimates into a
// caller-owned slab (ReplayDense). Both views produce bit-identical
// estimates: every floating-point sum runs in sorted-ID order, which is
// exactly roster-slot order.
package models

import (
	"math"
	"sort"
	"strconv"
	"time"

	"powerdiv/internal/machine"
	"powerdiv/internal/perfcnt"
	"powerdiv/internal/units"
)

// ProcSample is what a power model may observe about one process during one
// sampling interval: scheduler-level CPU accounting and performance
// counters. TrueActive is the simulator's ground-truth active power; it is
// zero when the samples come from real sensors and is only consumed by the
// Oracle model.
type ProcSample struct {
	CPUTime  units.CPUTime
	Counters perfcnt.Counters
	// Threads is the number of busy threads observed for the process
	// during the interval (0 when the backend cannot tell).
	Threads int
	// TrueActive is simulator ground truth; real backends leave it 0.
	TrueActive units.Watts
}

// Present reports whether the sample belongs to a process that ran during
// the interval. Dense columns carry a zero sample for absent roster slots;
// a running process always has at least one busy thread.
func (p ProcSample) Present() bool { return p.Threads > 0 }

// Tick is one sampling interval's model input.
type Tick struct {
	At       time.Duration
	Interval time.Duration
	// MachinePower is the sensor reading (RAPL) for the interval: C_{S,t}.
	MachinePower units.Watts
	// LogicalCPUs is the machine's logical CPU count; some models behave
	// differently at scale.
	LogicalCPUs int
	// Freq is the frequency busy cores ran at during the interval
	// (observable on real hardware via cpufreq's scaling_cur_freq; 0 when
	// unknown). Residual-aware models consume it.
	Freq units.Hertz
	// Degraded marks an interval measured with reduced fidelity by a live
	// meter: dropped ticks were coalesced into it (so Interval spans more
	// than one nominal sampling period) or some sensor zones were missing.
	// Division still works — the share weights cover the same span as the
	// power — but self-calibrating models must not feed degraded intervals
	// into their learning windows, where a mis-scaled row corrupts every
	// later estimate. Simulator-driven ticks always leave it false.
	Degraded bool
	// Procs is the map view of the interval's samples; nil on the dense
	// path. Live backends whose PID set churns fill it directly.
	Procs map[string]ProcSample
	// Roster and Samples are the dense view: Samples is a column indexed
	// by roster slot, with absent processes holding a zero sample
	// (Present() == false). nil on the map path. All ticks of one replay
	// share the same roster.
	Roster  *machine.Roster
	Samples []ProcSample
}

// ProcsView returns the tick's samples as a map, materialising one from
// the dense column when the tick carries no map (only present processes
// get an entry). Map-path models use it to accept both representations.
func (t Tick) ProcsView() map[string]ProcSample {
	if t.Procs != nil || t.Samples == nil {
		return t.Procs
	}
	procs := make(map[string]ProcSample, len(t.Samples))
	for slot, p := range t.Samples {
		if p.Present() {
			procs[t.Roster.ID(slot)] = p
		}
	}
	return procs
}

// Model is a streaming power division model. Observe returns the estimated
// power of each process for the tick (the paper's Ce^{P_i}_{S,t}), or nil
// when the model has no estimate (e.g. during PowerAPI's learning phase —
// the paper notes such drops "occur whenever there is a change in context"
// and removes them from consideration, as the protocol driver does here).
type Model interface {
	Name() string
	Observe(t Tick) map[string]units.Watts
}

// DenseModel is the columnar fast path of Model. ObserveInto divides a
// dense tick (Tick.Samples != nil) into out, a caller-owned roster-indexed
// column — typically one slice of a replay-owned slab. On true, out[slot]
// holds every roster slot's estimate (absent processes 0); on false the
// model has no estimate for the tick and out's contents are unspecified
// (the caller re-zeroes the column).
//
// ObserveInto advances the same calibration state as Observe, so a model
// instance must be driven through exactly one of the two entry points for
// its whole lifetime, in tick order.
type DenseModel interface {
	Model
	ObserveInto(t Tick, out []units.Watts) bool
}

// Factory constructs a fresh model instance for one scenario run. seed
// feeds any internal randomness (PowerAPI's calibration instability);
// deterministic models ignore it.
//
// Fingerprint identifies the factory's full configuration, not just its
// family: two factories with equal fingerprints must produce bit-identical
// estimates for the same inputs and seed. Caches key on it; an empty
// fingerprint means "unknown configuration" and disables result caching
// for any evaluation involving the factory.
type Factory struct {
	Name        string
	Fingerprint string
	New         func(seed int64) Model
}

// fpF appends a float64's exact bits to a fingerprint being built.
func fpF(b []byte, f float64) []byte {
	return strconv.AppendUint(append(b, '/'), math.Float64bits(f), 36)
}

// fpI appends an integer to a fingerprint being built.
func fpI(b []byte, v int64) []byte {
	return strconv.AppendInt(append(b, '/'), v, 10)
}

// TickFromRecord adapts a simulator tick record into a map-view model
// input. roster must be the record's run roster (it names the slots of
// rec.Procs).
func TickFromRecord(rec machine.TickRecord, roster *machine.Roster, interval time.Duration, logicalCPUs int) Tick {
	t := Tick{
		At:           rec.At,
		Interval:     interval,
		MachinePower: rec.Power,
		LogicalCPUs:  logicalCPUs,
		Freq:         rec.Freq,
		Procs:        make(map[string]ProcSample, len(rec.Procs)),
	}
	for slot, id := range roster.IDs() {
		pt := rec.Procs[slot]
		if !pt.Present() {
			continue
		}
		t.Procs[id] = ProcSample{
			CPUTime:    pt.CPUTime,
			Counters:   pt.Counters,
			Threads:    pt.Threads,
			TrueActive: pt.ActivePower,
		}
	}
	return t
}

// RunTicks converts every record of a simulator run into map-view model
// inputs, index-aligned with run.Ticks. Prefer RunTicksDense for replay
// pipelines: the map view exists for callers that inspect samples by ID.
func RunTicks(run *machine.Run) []Tick {
	ticks := make([]Tick, len(run.Ticks))
	logical := run.Config.Spec.Topology.LogicalCPUs()
	interval := run.Tick()
	for i, rec := range run.Ticks {
		ticks[i] = TickFromRecord(rec, run.Roster, interval, logical)
	}
	return ticks
}

// RunTicksDense converts a simulator run into dense model inputs sharing
// the run's roster, index-aligned with run.Ticks. All sample columns are
// slices of a single slab, so the conversion costs O(1) allocations
// however long the run; all models treat the columns as read-only, so one
// conversion serves every model scored against the run.
func RunTicksDense(run *machine.Run) []Tick {
	logical := run.Config.Spec.Topology.LogicalCPUs()
	interval := run.Tick()
	n := run.Roster.Len()
	ticks := make([]Tick, len(run.Ticks))
	slab := make([]ProcSample, len(run.Ticks)*n)
	for i, rec := range run.Ticks {
		col := slab[i*n : (i+1)*n : (i+1)*n]
		for s := range col {
			pt := rec.Procs[s]
			col[s] = ProcSample{
				CPUTime:    pt.CPUTime,
				Counters:   pt.Counters,
				Threads:    pt.Threads,
				TrueActive: pt.ActivePower,
			}
		}
		ticks[i] = Tick{
			At:           rec.At,
			Interval:     interval,
			MachinePower: rec.Power,
			LogicalCPUs:  logical,
			Freq:         rec.Freq,
			Roster:       run.Roster,
			Samples:      col,
		}
	}
	return ticks
}

// ReplayTicks feeds pre-converted ticks to the model and returns the
// per-tick estimates, index-aligned. Ticks where the model produced no
// estimate hold a nil map.
func ReplayTicks(m Model, ticks []Tick) []map[string]units.Watts {
	out := make([]map[string]units.Watts, len(ticks))
	for i, t := range ticks {
		out[i] = m.Observe(t)
	}
	return out
}

// Replay feeds every tick of a simulator run to the model and returns the
// per-tick estimates, index-aligned with run.Ticks. Ticks where the model
// produced no estimate hold a nil map.
func Replay(m Model, run *machine.Run) []map[string]units.Watts {
	return ReplayTicks(m, RunTicks(run))
}

// DenseEstimates is a replay's roster-indexed estimate matrix: one
// units.Watts column per tick, all carved from a single slab owned by the
// replay. A column is meaningful only when its OK flag is set; columns of
// estimate-free ticks are zero.
type DenseEstimates struct {
	Roster *machine.Roster
	// Slab holds every tick's column back to back; Row slices it.
	Slab []units.Watts
	// OK[i] reports whether the model produced an estimate at tick i
	// (the dense equivalent of a non-nil Observe map).
	OK []bool
}

// Ticks returns the number of replayed ticks.
func (d *DenseEstimates) Ticks() int { return len(d.OK) }

// Row returns tick i's estimate column, indexed by roster slot. The slice
// aliases the slab; it is only meaningful when OK[i] is true.
func (d *DenseEstimates) Row(i int) []units.Watts {
	n := d.Roster.Len()
	return d.Slab[i*n : (i+1)*n]
}

// ReplayDense feeds dense ticks (RunTicksDense) to the model and collects
// the estimates into one slab-backed matrix. Models implementing
// DenseModel run without any per-tick allocation; others fall back to
// Observe on a materialised map view, with the result scattered into the
// column.
func ReplayDense(m Model, ticks []Tick) *DenseEstimates {
	var roster *machine.Roster
	if len(ticks) > 0 {
		roster = ticks[0].Roster
	}
	n := roster.Len()
	d := &DenseEstimates{
		Roster: roster,
		Slab:   make([]units.Watts, len(ticks)*n),
		OK:     make([]bool, len(ticks)),
	}
	dm, dense := m.(DenseModel)
	for i, t := range ticks {
		out := d.Slab[i*n : (i+1)*n]
		if dense && t.Samples != nil {
			if dm.ObserveInto(t, out) {
				d.OK[i] = true
			} else {
				clear(out)
			}
			continue
		}
		t.Procs = t.ProcsView()
		est := m.Observe(t)
		if est == nil {
			continue
		}
		d.OK[i] = true
		for slot, id := range roster.IDs() {
			out[slot] = est[id]
		}
	}
	return d
}

// ShareOut distributes power among processes proportionally to weights.
// It returns nil when all weights are zero (nothing to attribute).
// Summation runs in sorted key order so results are bit-reproducible
// across runs despite map iteration being randomised.
func ShareOut(power units.Watts, weights map[string]float64) map[string]units.Watts {
	ids := make([]string, 0, len(weights))
	for id := range weights {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ShareOutOrdered(power, ids, weights)
}

// ShareOutOrdered is ShareOut with a caller-supplied sorted key order, so
// streaming models that already hold a sorted ID slice (keyCache) divide
// without re-sorting on every tick. ids must hold exactly weights' keys.
func ShareOutOrdered(power units.Watts, ids []string, weights map[string]float64) map[string]units.Watts {
	var total float64
	for _, id := range ids {
		if w := weights[id]; w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return nil
	}
	out := make(map[string]units.Watts, len(weights))
	for _, id := range ids {
		w := weights[id]
		if w < 0 {
			w = 0
		}
		out[id] = units.Watts(float64(power) * w / total)
	}
	return out
}

// ShareOutInto is ShareOut's dense form. On entry out holds each roster
// slot's weight (absent slots zero, negatives clamped like ShareOut); on
// return it holds each slot's share of power. It returns false — leaving
// out unspecified — when no weight is positive, mirroring ShareOut's nil.
//
// Slot order is sorted-ID order, so the weight total accumulates in
// exactly the order ShareOut uses: the two forms are bit-identical.
func ShareOutInto(power units.Watts, out []units.Watts) bool {
	var total float64
	for _, w := range out {
		if w > 0 {
			total += float64(w)
		}
	}
	if total <= 0 {
		return false
	}
	for i, w := range out {
		if w < 0 {
			w = 0
		}
		out[i] = units.Watts(float64(power) * float64(w) / total)
	}
	return true
}

// keyCache caches the sorted key slice of successive map-view ticks. The
// process set of consecutive ticks rarely changes, and set equality is an
// O(n) membership check, so steady-state map-path division neither
// allocates nor sorts per tick.
type keyCache struct {
	ids []string
}

// sorted returns procs' keys in sorted order, reusing the previous call's
// slice when the key set is unchanged. changed reports whether the set
// differs from the previous call — streaming models use it as their
// context-change signal.
func (c *keyCache) sorted(procs map[string]ProcSample) (ids []string, changed bool) {
	if len(c.ids) == len(procs) {
		same := true
		for _, id := range c.ids {
			if _, ok := procs[id]; !ok {
				same = false
				break
			}
		}
		if same {
			return c.ids, false
		}
	}
	c.ids = c.ids[:0]
	for id := range procs {
		c.ids = append(c.ids, id)
	}
	sort.Strings(c.ids)
	return c.ids, true
}

// Package models implements the process-level power division models the
// paper evaluates, behind a single streaming interface:
//
//   - Scaphandre: CPU-time-share division of the measured machine power;
//   - PowerAPI: per-window linear regression of machine power against
//     performance counters with a learning phase, and the many-core
//     calibration instability the paper observed on DAHU (Fig 8);
//   - Kepler: performance-counter-share division (the paper discards it
//     from its runs because it targets Kubernetes, but notes its model is
//     close to Scaphandre's — it is included here to check that claim);
//   - F2: the paper's proposed ratio-preserving family, which divides
//     power by the ratio of per-application isolated baselines;
//   - Oracle: ground-truth division, available only on the simulator.
//
// All of these are "F1-shaped" in their output contract: each tick they
// split the measured machine power C_{S,t} among the running processes (the
// estimates sum to C_{S,t} whenever they produce estimates at all).
package models

import (
	"sort"
	"time"

	"powerdiv/internal/machine"
	"powerdiv/internal/perfcnt"
	"powerdiv/internal/units"
)

// ProcSample is what a power model may observe about one process during one
// sampling interval: scheduler-level CPU accounting and performance
// counters. TrueActive is the simulator's ground-truth active power; it is
// zero when the samples come from real sensors and is only consumed by the
// Oracle model.
type ProcSample struct {
	CPUTime  units.CPUTime
	Counters perfcnt.Counters
	// Threads is the number of busy threads observed for the process
	// during the interval (0 when the backend cannot tell).
	Threads int
	// TrueActive is simulator ground truth; real backends leave it 0.
	TrueActive units.Watts
}

// Tick is one sampling interval's model input.
type Tick struct {
	At       time.Duration
	Interval time.Duration
	// MachinePower is the sensor reading (RAPL) for the interval: C_{S,t}.
	MachinePower units.Watts
	// LogicalCPUs is the machine's logical CPU count; some models behave
	// differently at scale.
	LogicalCPUs int
	// Freq is the frequency busy cores ran at during the interval
	// (observable on real hardware via cpufreq's scaling_cur_freq; 0 when
	// unknown). Residual-aware models consume it.
	Freq units.Hertz
	// Degraded marks an interval measured with reduced fidelity by a live
	// meter: dropped ticks were coalesced into it (so Interval spans more
	// than one nominal sampling period) or some sensor zones were missing.
	// Division still works — the share weights cover the same span as the
	// power — but self-calibrating models must not feed degraded intervals
	// into their learning windows, where a mis-scaled row corrupts every
	// later estimate. Simulator-driven ticks always leave it false.
	Degraded bool
	Procs    map[string]ProcSample
}

// Model is a streaming power division model. Observe returns the estimated
// power of each process for the tick (the paper's Ce^{P_i}_{S,t}), or nil
// when the model has no estimate (e.g. during PowerAPI's learning phase —
// the paper notes such drops "occur whenever there is a change in context"
// and removes them from consideration, as the protocol driver does here).
type Model interface {
	Name() string
	Observe(t Tick) map[string]units.Watts
}

// Factory constructs a fresh model instance for one scenario run. seed
// feeds any internal randomness (PowerAPI's calibration instability);
// deterministic models ignore it.
type Factory struct {
	Name string
	New  func(seed int64) Model
}

// TickFromRecord adapts a simulator tick record into a model input.
func TickFromRecord(rec machine.TickRecord, interval time.Duration, logicalCPUs int) Tick {
	t := Tick{
		At:           rec.At,
		Interval:     interval,
		MachinePower: rec.Power,
		LogicalCPUs:  logicalCPUs,
		Freq:         rec.Freq,
		Procs:        make(map[string]ProcSample, len(rec.Procs)),
	}
	for id, pt := range rec.Procs {
		t.Procs[id] = ProcSample{
			CPUTime:    pt.CPUTime,
			Counters:   pt.Counters,
			Threads:    pt.Threads,
			TrueActive: pt.ActivePower,
		}
	}
	return t
}

// RunTicks converts every record of a simulator run into model inputs,
// index-aligned with run.Ticks. Converting once and replaying several
// models over the shared slice (ReplayTicks) avoids rebuilding the
// per-tick ProcSample maps per model — all models treat Tick.Procs as
// read-only.
func RunTicks(run *machine.Run) []Tick {
	ticks := make([]Tick, len(run.Ticks))
	logical := run.Config.Spec.Topology.LogicalCPUs()
	interval := run.Tick()
	for i, rec := range run.Ticks {
		ticks[i] = TickFromRecord(rec, interval, logical)
	}
	return ticks
}

// ReplayTicks feeds pre-converted ticks to the model and returns the
// per-tick estimates, index-aligned. Ticks where the model produced no
// estimate hold a nil map.
func ReplayTicks(m Model, ticks []Tick) []map[string]units.Watts {
	out := make([]map[string]units.Watts, len(ticks))
	for i, t := range ticks {
		out[i] = m.Observe(t)
	}
	return out
}

// Replay feeds every tick of a simulator run to the model and returns the
// per-tick estimates, index-aligned with run.Ticks. Ticks where the model
// produced no estimate hold a nil map.
func Replay(m Model, run *machine.Run) []map[string]units.Watts {
	return ReplayTicks(m, RunTicks(run))
}

// ShareOut distributes power among processes proportionally to weights.
// It returns nil when all weights are zero (nothing to attribute).
// Summation runs in sorted key order so results are bit-reproducible
// across runs despite map iteration being randomised.
func ShareOut(power units.Watts, weights map[string]float64) map[string]units.Watts {
	ids := make([]string, 0, len(weights))
	for id := range weights {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var total float64
	for _, id := range ids {
		if w := weights[id]; w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return nil
	}
	out := make(map[string]units.Watts, len(weights))
	for _, id := range ids {
		w := weights[id]
		if w < 0 {
			w = 0
		}
		out[id] = units.Watts(float64(power) * w / total)
	}
	return out
}

package models

import (
	"sort"

	"powerdiv/internal/machine"
	"powerdiv/internal/units"
)

// F2 implements the paper's proposed ratio-preserving model family (F2):
// the estimated consumption of two applications running in parallel keeps
// the same ratio as their isolated executions. It divides each tick's
// measured machine power in proportion to per-application isolated active
// power baselines (the A_{P_i} of the protocol's phase 1), scaled by each
// process's current CPU time so that phase changes inside an application
// still register.
//
// The paper suggests exactly this construction as future work: "a model
// that estimates the consumption of each application individually as
// isolated at the machine level, and uses these estimations to compute a
// ratio to allocate the actual consumption to each application". Here the
// isolated estimates come from protocol phase 1 instead of a per-process
// model, making F2 the reference implementation of the family rather than
// a deployable meter.
type F2 struct {
	// baseline maps process ID to its isolated active power per fully
	// busy core (A_{P_i} / cores used when isolated).
	baseline map[string]units.Watts
	// mean is the mean baseline, the weight of processes measured without
	// one. Computed once at construction: the baselines are fixed for the
	// model's lifetime, and summing in sorted ID order keeps the value
	// bit-reproducible.
	mean float64

	keys keyCache
	// roster/perSlot cache the baseline lookup in roster-slot order for
	// the dense path; rebuilt only when the roster changes.
	roster  *machine.Roster
	perSlot []float64
}

// NewF2 returns an F2-model factory with the given per-process isolated
// active power baselines, expressed per core of CPU usage.
func NewF2(baselinePerCore map[string]units.Watts) Factory {
	b := make(map[string]units.Watts, len(baselinePerCore))
	for id, w := range baselinePerCore {
		b[id] = w
	}
	mean := 1.0
	ids := make([]string, 0, len(b))
	for id := range b {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	if len(b) > 0 {
		var sum units.Watts
		for _, id := range ids {
			sum += b[id]
		}
		mean = float64(sum) / float64(len(b))
	}
	// The baselines are the model's whole configuration: fingerprint them
	// exactly (ID plus power bits, in sorted order).
	fp := []byte("f2/v1")
	for _, id := range ids {
		fp = append(append(fp, '/'), id...)
		fp = fpF(fp, float64(b[id]))
	}
	return Factory{
		Name:        "f2",
		Fingerprint: string(fp),
		New:         func(int64) Model { return &F2{baseline: b, mean: mean} },
	}
}

// per returns a process's baseline weight (the mean when it has none).
func (m *F2) per(id string) float64 {
	if w, ok := m.baseline[id]; ok {
		return float64(w)
	}
	return m.mean
}

// Name returns "f2".
func (m *F2) Name() string { return "f2" }

// Observe divides the tick's power by isolated-baseline × CPU-usage shares.
// Processes without a baseline weigh in with the mean baseline, so the
// model degrades to CPU-time shares rather than ignoring them.
func (m *F2) Observe(t Tick) map[string]units.Watts {
	procs := t.ProcsView()
	if len(procs) == 0 {
		return nil
	}
	ids, _ := m.keys.sorted(procs)
	weights := make(map[string]float64, len(procs))
	for _, id := range ids {
		weights[id] = m.per(id) * procs[id].CPUTime.Seconds()
	}
	return ShareOutOrdered(t.MachinePower, ids, weights)
}

// ObserveInto divides a dense tick by isolated-baseline × CPU-usage shares.
func (m *F2) ObserveInto(t Tick, out []units.Watts) bool {
	if m.roster != t.Roster {
		m.roster = t.Roster
		ids := t.Roster.IDs()
		if cap(m.perSlot) < len(ids) {
			m.perSlot = make([]float64, len(ids))
		}
		m.perSlot = m.perSlot[:len(ids)]
		for i, id := range ids {
			m.perSlot[i] = m.per(id)
		}
	}
	any := false
	for i, p := range t.Samples {
		out[i] = 0
		if !p.Present() {
			continue
		}
		any = true
		out[i] = units.Watts(m.perSlot[i] * p.CPUTime.Seconds())
	}
	if !any {
		return false
	}
	return ShareOutInto(t.MachinePower, out)
}

// Oracle divides power by the simulator's ground-truth per-process active
// power. It is the perfect member of family (F1): active and residual
// consumption split by the true active ratio. Only meaningful on simulated
// input; on real sensor input (TrueActive == 0) it returns nil.
type Oracle struct {
	keys keyCache
}

// NewOracle returns an Oracle-model factory.
func NewOracle() Factory {
	return Factory{Name: "oracle", Fingerprint: "oracle/v1", New: func(int64) Model { return &Oracle{} }}
}

// Name returns "oracle".
func (m *Oracle) Name() string { return "oracle" }

// Observe divides the tick's power by true active power shares.
func (m *Oracle) Observe(t Tick) map[string]units.Watts {
	procs := t.ProcsView()
	ids, _ := m.keys.sorted(procs)
	weights := make(map[string]float64, len(procs))
	for _, id := range ids {
		weights[id] = float64(procs[id].TrueActive)
	}
	return ShareOutOrdered(t.MachinePower, ids, weights)
}

// ObserveInto divides a dense tick by true active power shares.
func (m *Oracle) ObserveInto(t Tick, out []units.Watts) bool {
	for i, p := range t.Samples {
		out[i] = p.TrueActive
	}
	return ShareOutInto(t.MachinePower, out)
}

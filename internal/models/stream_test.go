package models

import (
	"math"
	"testing"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/units"
)

// streamThroughScratch feeds a run's ticks to a StreamReplay through one
// reused Samples column, mimicking the protocol's streaming consumer (which
// copies the simulator's scratch ProcTick column into a scratch ProcSample
// column per tick).
func streamThroughScratch(r *StreamReplay, ticks []Tick, n int) {
	scratch := make([]ProcSample, n)
	for _, t := range ticks {
		copy(scratch, t.Samples)
		t.Samples = scratch
		r.Observe(t)
	}
}

// TestStreamReplayMatchesReplayDense drives every model (plus a map-only
// fallback model) tick by tick through StreamReplay — via a reused scratch
// column and an undersized initial slab, so both the copy-out contract and
// slab growth are exercised — and requires the accumulated matrices to be
// bit-identical to ReplayDense over the same ticks, on both machines.
func TestStreamReplayMatchesReplayDense(t *testing.T) {
	factories := []Factory{
		NewScaphandre(),
		NewKepler(),
		NewPowerAPI(DefaultPowerAPIConfig()),
		NewSmartWatts(DefaultSmartWattsConfig()),
		NewF2(map[string]units.Watts{"p0": 3, "p1": 5}),
		NewResidualAwareFromSpec(cpumodel.SmallIntel()),
		NewOracle(),
		{Name: "maponly", New: func(int64) Model { return mapOnlyModel{} }},
	}
	const seed = int64(7)
	for _, spec := range []cpumodel.Spec{cpumodel.SmallIntel(), cpumodel.Dahu()} {
		run := simulateRun(t, spec, pairProcs(t, "fibonacci", "matrixprod", 3), 12*time.Second)
		ticks := RunTicksDense(run)

		ms := make([]Model, len(factories))
		for i, f := range factories {
			ms[i] = f.New(seed)
		}
		// Undersize the slab (capTicks 4) to force the growth path.
		replay := NewStreamReplay(run.Roster, ms, 4)
		streamThroughScratch(replay, ticks, run.Roster.Len())

		if replay.Ticks() != len(ticks) {
			t.Fatalf("%s: replay saw %d ticks, want %d", spec.Name, replay.Ticks(), len(ticks))
		}
		for m, f := range factories {
			want := ReplayDense(f.New(seed), ticks)
			got := replay.Estimates(m)
			if got.Ticks() != want.Ticks() || len(got.Slab) != len(want.Slab) {
				t.Fatalf("%s/%s: matrix shape %d×%d, want %d×%d",
					spec.Name, f.Name, got.Ticks(), len(got.Slab), want.Ticks(), len(want.Slab))
			}
			for i := range want.OK {
				if got.OK[i] != want.OK[i] {
					t.Fatalf("%s/%s: tick %d OK %v, want %v", spec.Name, f.Name, i, got.OK[i], want.OK[i])
				}
			}
			for i := range want.Slab {
				if math.Float64bits(float64(got.Slab[i])) != math.Float64bits(float64(want.Slab[i])) {
					t.Fatalf("%s/%s: slab[%d] = %v, want %v", spec.Name, f.Name, i, got.Slab[i], want.Slab[i])
				}
			}
		}
	}
}

// TestStreamReplayEmpty pins the degenerate shapes: no models, and a
// replay that never observes a tick.
func TestStreamReplayEmpty(t *testing.T) {
	run := simulateRun(t, cpumodel.SmallIntel(), pairProcs(t, "int64", "rand", 1), time.Second)
	empty := NewStreamReplay(run.Roster, nil, -1)
	if empty.Ticks() != 0 {
		t.Errorf("model-free replay reports %d ticks", empty.Ticks())
	}
	idle := NewStreamReplay(run.Roster, []Model{NewScaphandre().New(1)}, 0)
	if idle.Ticks() != 0 || idle.Estimates(0).Ticks() != 0 {
		t.Error("unfed replay reports ticks")
	}
}

package models

import (
	"math/rand"
	"time"

	"powerdiv/internal/units"
)

// PowerAPIConfig tunes the PowerAPI/SmartWatts-style model.
type PowerAPIConfig struct {
	// LearnWindow is how long the model calibrates before producing
	// estimates after each context change. The paper observed "the first
	// ten seconds of test execution are disregarded by the model,
	// generating no estimations", so the default is 10 s.
	LearnWindow time.Duration
	// Ridge is the regularisation strength of the calibration fit.
	Ridge float64
	// ManyCoreThreshold is the logical CPU count at or above which the
	// calibration instability the paper observed on DAHU (§IV-A, Fig 8)
	// can occur. SMALL INTEL (12 logical CPUs) stays below the default of
	// 32; DAHU (64) is above it.
	ManyCoreThreshold int
	// InstabilityProb is the per-calibration probability of a degenerate
	// fit on a many-core machine. The paper reports PowerAPI's DAHU
	// average error of 16.23 % against ≈3 % on SMALL INTEL, with identical
	// runs flipping a 90/10 attribution (Fig 8); degenerate calibrations
	// reproduce that behaviour.
	InstabilityProb float64
	// Deterministic disables the instability pathology entirely,
	// modelling an idealised implementation.
	Deterministic bool
}

// DefaultPowerAPIConfig returns the configuration matching the paper's
// observations of PowerAPI 2.1.2.
func DefaultPowerAPIConfig() PowerAPIConfig {
	return PowerAPIConfig{
		LearnWindow:       10 * time.Second,
		Ridge:             1e-3,
		ManyCoreThreshold: 32,
		InstabilityProb:   0.40,
	}
}

// PowerAPI models the PowerAPI/SmartWatts approach: a self-calibrating
// software power meter that regresses the machine's RAPL power onto
// aggregate performance-counter rates over a learning window, then divides
// each tick's measured power among processes in proportion to the fitted
// counter weights applied to each process's own counters.
//
// Context changes (the process set changing) restart the learning window,
// which is why the model produces no estimates for the first seconds of
// every scenario — the "estimation drops" the paper works around.
type PowerAPI struct {
	cfg PowerAPIConfig
	// seed defers RNG construction to the first draw: seeding math/rand's
	// 607-word source costs more than a whole scenario's estimates, and
	// below ManyCoreThreshold no draw ever happens. Laziness cannot shift
	// the sequence — the source is a pure function of the seed.
	seed int64
	rng  *rand.Rand

	keys       keyCache
	learnStart time.Duration
	started    bool
	rows       [][4]float64
	targets    []float64

	fitted     bool
	weights    [4]float64
	scales     [4]float64
	degenerate bool
	favored    string

	// Dense-path state: the present set of the previous tick (the context
	// signature), a scratch copy for the current tick, and the favored
	// slot of a degenerate calibration.
	prevPresent []bool
	curPresent  []bool
	favSlot     int
	// segW is the segment path's cached weight column (weights are
	// constant between calibrations within a segment).
	segW []units.Watts
}

// NewPowerAPI returns a PowerAPI-model factory with the given config.
func NewPowerAPI(cfg PowerAPIConfig) Factory {
	if cfg.LearnWindow <= 0 {
		cfg.LearnWindow = 10 * time.Second
	}
	if cfg.Ridge <= 0 {
		cfg.Ridge = 1e-3
	}
	if cfg.ManyCoreThreshold <= 0 {
		cfg.ManyCoreThreshold = 32
	}
	fp := []byte("powerapi/v1")
	fp = fpI(fp, int64(cfg.LearnWindow))
	fp = fpF(fp, cfg.Ridge)
	fp = fpI(fp, int64(cfg.ManyCoreThreshold))
	fp = fpF(fp, cfg.InstabilityProb)
	if cfg.Deterministic {
		fp = append(fp, "/det"...)
	}
	return Factory{
		Name:        "powerapi",
		Fingerprint: string(fp),
		New: func(seed int64) Model {
			return &PowerAPI{cfg: cfg, seed: seed, favSlot: -1}
		},
	}
}

// Name returns "powerapi".
func (m *PowerAPI) Name() string { return "powerapi" }

// rand returns the model's seeded RNG, constructing it on first use.
func (m *PowerAPI) rand() *rand.Rand {
	if m.rng == nil {
		m.rng = rand.New(rand.NewSource(m.seed))
	}
	return m.rng
}

// reset restarts the learning window after a context change (§IV-A).
func (m *PowerAPI) reset(at time.Duration) {
	m.started = true
	m.learnStart = at
	if cap(m.rows) == 0 {
		// A learning window at the default tick rate collects ~100 rows;
		// reserving up front replaces the append-doubling ladder (and its
		// garbage) with one allocation per model.
		m.rows = make([][4]float64, 0, 128)
		m.targets = make([]float64, 0, 128)
	}
	m.rows = m.rows[:0]
	m.targets = m.targets[:0]
	m.fitted = false
	m.degenerate = false
	m.favored = ""
	m.favSlot = -1
}

// Observe ingests one tick. During learning it returns nil.
func (m *PowerAPI) Observe(t Tick) map[string]units.Watts {
	t.Procs = t.ProcsView()
	if len(t.Procs) == 0 {
		return nil
	}
	ids, changed := m.keys.sorted(t.Procs)
	if changed {
		m.reset(t.At)
	}
	if !m.fitted {
		// Degraded intervals (coalesced dropped ticks, missing zones) are
		// excluded from calibration: their rows are mis-scaled relative to
		// clean ones and would corrupt the fit for every later estimate.
		if !t.Degraded {
			var agg [4]float64
			for _, id := range ids {
				v := t.Procs[id].Counters.Rate(t.Interval).Vector()
				for d := range agg {
					agg[d] += v[d]
				}
			}
			m.rows = append(m.rows, agg)
			m.targets = append(m.targets, float64(t.MachinePower))
		}
		if t.At-m.learnStart < m.cfg.LearnWindow || len(m.rows) == 0 {
			return nil
		}
		m.fit(t.LogicalCPUs)
	}
	return m.estimate(t, ids)
}

// ObserveInto is Observe on a dense tick: the present set replaces the ID
// signature as the context-change signal, and estimates go to the
// roster-indexed column.
func (m *PowerAPI) ObserveInto(t Tick, out []units.Watts) bool {
	n := len(t.Samples)
	if cap(m.curPresent) < n {
		m.curPresent = make([]bool, n)
	}
	m.curPresent = m.curPresent[:n]
	running := 0
	for i, p := range t.Samples {
		pr := p.Present()
		m.curPresent[i] = pr
		if pr {
			running++
		}
	}
	if running == 0 {
		return false
	}
	if !boolsEqual(m.prevPresent, m.curPresent) {
		m.prevPresent = append(m.prevPresent[:0], m.curPresent...)
		m.reset(t.At)
	}
	if !m.fitted {
		if !t.Degraded {
			var agg [4]float64
			for i, p := range t.Samples {
				if !m.curPresent[i] {
					continue
				}
				v := p.Counters.Rate(t.Interval).Vector()
				for d := range agg {
					agg[d] += v[d]
				}
			}
			m.rows = append(m.rows, agg)
			m.targets = append(m.targets, float64(t.MachinePower))
		}
		if t.At-m.learnStart < m.cfg.LearnWindow || len(m.rows) == 0 {
			return false
		}
		m.fit(t.LogicalCPUs)
	}
	return m.estimateInto(t, running, out)
}

// fit calibrates the counter weights from the collected window.
func (m *PowerAPI) fit(logicalCPUs int) {
	m.fitted = true
	if !m.cfg.Deterministic &&
		logicalCPUs >= m.cfg.ManyCoreThreshold &&
		m.rand().Float64() < m.cfg.InstabilityProb {
		// Degenerate calibration: with the near-singular feature matrices
		// of many-core machines the fit lands on an arbitrary point of
		// the solution manifold, and the attribution effectively locks
		// onto one process. Fig 8 shows exactly this: two identical
		// MATRIXPROD/FLOAT64 runs attributed ≈90 % to opposite processes.
		// The favored process is drawn (seeded) at first estimation.
		m.degenerate = true
		return
	}
	m.weights, m.scales = RidgeFit4(m.rows, m.targets, m.cfg.Ridge)
}

// estimate divides the tick's power by fitted-weight shares.
func (m *PowerAPI) estimate(t Tick, ids []string) map[string]units.Watts {
	if m.degenerate {
		return m.estimateDegenerate(t, ids)
	}
	// Attribution follows the cycles-family counters: with aggregate
	// features the calibration's predictive power collapses onto active
	// cycles (the other counters are nearly collinear with them at machine
	// level), which is why the paper finds that for PowerAPI, exactly as
	// for Scaphandre, "only CPU time ... seems to have an impact on the
	// results" — same-thread-count applications split near 50/50 whatever
	// their instruction mix.
	raw := make(map[string]float64, len(t.Procs))
	var total float64
	for _, id := range ids {
		v := t.Procs[id].Counters.Rate(t.Interval).Vector()
		s := m.weights[0] * v[0] / m.scales[0]
		if s < 0 {
			s = 0
		}
		raw[id] = s
		total += s
	}
	if total <= 0 {
		// The fit assigns nothing; fall back to CPU-time shares, as the
		// real implementation's static component does.
		weights := make(map[string]float64, len(t.Procs))
		for _, id := range ids {
			weights[id] = t.Procs[id].CPUTime.Seconds()
		}
		return ShareOutOrdered(t.MachinePower, ids, weights)
	}
	return ShareOutOrdered(t.MachinePower, ids, raw)
}

// estimateInto is estimate for the dense path, writing shares by slot.
func (m *PowerAPI) estimateInto(t Tick, running int, out []units.Watts) bool {
	if m.degenerate {
		return m.estimateDegenerateInto(t, running, out)
	}
	var total float64
	for i, p := range t.Samples {
		out[i] = 0
		if !m.curPresent[i] {
			continue
		}
		v := p.Counters.Rate(t.Interval).Vector()
		s := m.weights[0] * v[0] / m.scales[0]
		if s < 0 {
			s = 0
		}
		out[i] = units.Watts(s)
		total += s
	}
	if total <= 0 {
		for i, p := range t.Samples {
			out[i] = 0
			if m.curPresent[i] {
				out[i] = units.Watts(p.CPUTime.Seconds())
			}
		}
	}
	return ShareOutInto(t.MachinePower, out)
}

// estimateDegenerate models the miscalibrated attribution: the favored
// process's share is inflated well beyond its CPU-time share (by 0.4,
// capped at 0.9 — two equal processes split 90/10, exactly the Fig 8
// flip-flop), with the remainder divided among the others by CPU time. The
// model's static component keeps losing processes above zero, which is why
// the paper observes 90/10 rather than 100/0.
func (m *PowerAPI) estimateDegenerate(t Tick, ids []string) map[string]units.Watts {
	var totalCPU float64
	for _, id := range ids {
		totalCPU += t.Procs[id].CPUTime.Seconds()
	}
	if totalCPU <= 0 {
		return nil
	}
	if m.favored == "" || !hasProc(t.Procs, m.favored) {
		m.favored = ids[m.rand().Intn(len(ids))]
	}
	if len(t.Procs) == 1 {
		return map[string]units.Watts{m.favored: t.MachinePower}
	}
	favShare := t.Procs[m.favored].CPUTime.Seconds()/totalCPU + 0.4
	if favShare > 0.9 {
		favShare = 0.9
	}
	restCPU := totalCPU - t.Procs[m.favored].CPUTime.Seconds()
	shares := make(map[string]float64, len(t.Procs))
	shares[m.favored] = favShare
	for _, id := range ids {
		if id == m.favored {
			continue
		}
		if restCPU > 0 {
			shares[id] = (1 - favShare) * t.Procs[id].CPUTime.Seconds() / restCPU
		}
	}
	return ShareOut(t.MachinePower, shares)
}

// estimateDegenerateInto is estimateDegenerate for the dense path. The
// favored process is drawn with the same seeded RNG call over the sorted
// present set, so dense and map replays favor the same process.
func (m *PowerAPI) estimateDegenerateInto(t Tick, running int, out []units.Watts) bool {
	var totalCPU float64
	for i, p := range t.Samples {
		if m.curPresent[i] {
			totalCPU += p.CPUTime.Seconds()
		}
	}
	if totalCPU <= 0 {
		return false
	}
	if m.favSlot < 0 || !m.curPresent[m.favSlot] {
		k := m.rand().Intn(running)
		for i, pr := range m.curPresent {
			if !pr {
				continue
			}
			if k == 0 {
				m.favSlot = i
				break
			}
			k--
		}
	}
	if running == 1 {
		clear(out)
		out[m.favSlot] = t.MachinePower
		return true
	}
	favCPU := t.Samples[m.favSlot].CPUTime.Seconds()
	favShare := favCPU/totalCPU + 0.4
	if favShare > 0.9 {
		favShare = 0.9
	}
	restCPU := totalCPU - favCPU
	for i, p := range t.Samples {
		out[i] = 0
		if !m.curPresent[i] || i == m.favSlot {
			continue
		}
		if restCPU > 0 {
			out[i] = units.Watts((1 - favShare) * p.CPUTime.Seconds() / restCPU)
		}
	}
	out[m.favSlot] = units.Watts(favShare)
	return ShareOutInto(t.MachinePower, out)
}

func hasProc(procs map[string]ProcSample, id string) bool {
	_, ok := procs[id]
	return ok
}

// boolsEqual reports whether two bool slices are element-wise equal.
func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Degenerate reports whether the current calibration is degenerate; it is
// exported for white-box assertions in experiments and tests.
func (m *PowerAPI) Degenerate() bool { return m.degenerate }

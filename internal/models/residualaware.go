package models

import (
	"powerdiv/internal/cpumodel"
	"powerdiv/internal/units"
)

// ResidualAware is the division model the paper's §IV-B analysis calls
// for: instead of treating the machine total as an undifferentiated pool
// (family F1), it decomposes each tick's power using a machine calibration
//
//	C = idle + R(f)·maxDuty + active
//
// and corrects the allocation for residual causation: each process's
// weight is its estimated active power (CPU-time share of the active part)
// plus the residual *excess* it is responsible for — R(f) times how much
// its own duty factor exceeds the smallest duty in the scenario. A 50 %-
// capped process thus stops subsidising an uncapped neighbour's residual,
// matching the §IV-B statement that "the increase in residual consumption
// should be attributed to the applications that caused one of the cores to
// increase CPU frequency". When all duty factors are equal (the ordinary
// uncapped case) the correction vanishes and the model coincides with
// CPU-time division.
//
// It needs a machine calibration (idle power and residual curve — obtain
// one with cpumodel.FitPowerModel on a real machine, or from the built-in
// specs) plus the per-tick core frequency, which real meters can read from
// cpufreq.
type ResidualAware struct {
	idle     units.Watts
	residual cpumodel.ResidualCurve
	baseFreq units.Hertz

	keys keyCache
	// slotDuties is the dense path's per-slot duty scratch, reused across
	// ticks; slotShares/slotResid are the segment path's cached per-slot
	// CPU shares and residual-excess terms.
	slotDuties []float64
	slotShares []float64
	slotResid  []float64
}

// NewResidualAware returns a residual-aware model factory for a machine
// with the given calibration.
func NewResidualAware(idle units.Watts, residual cpumodel.ResidualCurve, baseFreq units.Hertz) Factory {
	fp := []byte("residual-aware/v1")
	fp = fpF(fp, float64(idle))
	fp = fpF(fp, float64(baseFreq))
	for _, pt := range residual.Points() {
		fp = fpF(fp, float64(pt.Freq))
		fp = fpF(fp, float64(pt.R))
	}
	return Factory{
		Name:        "residual-aware",
		Fingerprint: string(fp),
		New: func(int64) Model {
			return &ResidualAware{idle: idle, residual: residual, baseFreq: baseFreq}
		},
	}
}

// NewResidualAwareFromSpec builds the factory from a built-in calibration.
func NewResidualAwareFromSpec(spec cpumodel.Spec) Factory {
	return NewResidualAware(spec.Power.Idle, spec.Power.Residual, spec.Power.BaseFreq)
}

// Name returns "residual-aware".
func (m *ResidualAware) Name() string { return "residual-aware" }

// duty returns a process's per-thread duty factor in [0, 1]: the fraction
// of the interval its busiest threads ran. Without thread counts it falls
// back to min(1, total utilization).
func duty(p ProcSample, interval units.CPUTime) float64 {
	if interval <= 0 {
		return 0
	}
	util := p.CPUTime.Seconds() / interval.Seconds()
	if p.Threads > 0 {
		util /= float64(p.Threads)
	}
	if util > 1 {
		util = 1
	}
	return util
}

// activeResidual decomposes a tick's measured power into the allocatable
// active part and the residual rate R(f) at the tick's frequency.
func (m *ResidualAware) activeResidual(t Tick, maxDuty float64) (active, r units.Watts) {
	freq := t.Freq
	if freq <= 0 {
		freq = m.baseFreq
	}
	r = m.residual.At(freq)
	drawnResidual := units.Watts(float64(r) * maxDuty)
	active = t.MachinePower - m.idle - drawnResidual
	if active < 0 {
		active = 0
	}
	return active, r
}

// Observe decomposes and allocates the tick's power.
func (m *ResidualAware) Observe(t Tick) map[string]units.Watts {
	t.Procs = t.ProcsView()
	ids, _ := m.keys.sorted(t.Procs)
	interval := units.CPUTime(t.Interval)

	var totalCPU float64
	maxDuty := 0.0
	duties := make(map[string]float64, len(t.Procs))
	for _, id := range ids {
		p := t.Procs[id]
		totalCPU += p.CPUTime.Seconds()
		d := duty(p, interval)
		duties[id] = d
		if d > maxDuty {
			maxDuty = d
		}
	}
	if totalCPU <= 0 {
		return nil
	}

	active, r := m.activeResidual(t, maxDuty)

	minDuty := maxDuty
	for _, d := range duties {
		if d < minDuty {
			minDuty = d
		}
	}
	weights := make(map[string]float64, len(t.Procs))
	for _, id := range ids {
		p := t.Procs[id]
		cpuShare := p.CPUTime.Seconds() / totalCPU
		// Estimated active power plus the residual excess this process
		// causes beyond the scenario's least-demanding one.
		weights[id] = float64(active)*cpuShare + float64(r)*(duties[id]-minDuty)
	}
	return ShareOutOrdered(t.MachinePower, ids, weights)
}

// ObserveInto decomposes and allocates a dense tick's power by roster slot.
func (m *ResidualAware) ObserveInto(t Tick, out []units.Watts) bool {
	interval := units.CPUTime(t.Interval)
	if cap(m.slotDuties) < len(t.Samples) {
		m.slotDuties = make([]float64, len(t.Samples))
	}
	duties := m.slotDuties[:len(t.Samples)]

	var totalCPU float64
	maxDuty := 0.0
	for i, p := range t.Samples {
		duties[i] = 0
		if !p.Present() {
			continue
		}
		totalCPU += p.CPUTime.Seconds()
		d := duty(p, interval)
		duties[i] = d
		if d > maxDuty {
			maxDuty = d
		}
	}
	if totalCPU <= 0 {
		return false
	}

	active, r := m.activeResidual(t, maxDuty)

	minDuty := maxDuty
	for i, p := range t.Samples {
		if p.Present() && duties[i] < minDuty {
			minDuty = duties[i]
		}
	}
	for i, p := range t.Samples {
		out[i] = 0
		if !p.Present() {
			continue
		}
		cpuShare := p.CPUTime.Seconds() / totalCPU
		out[i] = units.Watts(float64(active)*cpuShare + float64(r)*(duties[i]-minDuty))
	}
	return ShareOutInto(t.MachinePower, out)
}

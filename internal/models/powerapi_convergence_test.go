package models

import (
	"math"
	"testing"
	"time"

	"powerdiv/internal/perfcnt"
	"powerdiv/internal/units"
)

// TestPowerAPIConvergesOnLinearMachine feeds a deterministic PowerAPI a
// synthetic machine whose power is exactly linear in the aggregate cycle
// rate (P = k·cycles/s, no noise, varying load so the regression is
// identifiable) and asserts the learning window behaves as specified:
//
//   - no estimates until LearnWindow has elapsed;
//   - once fitted, the calibration has converged: the fitted weights
//     reproduce the machine power from the features to within 2 %;
//   - estimates sum to the machine power and split in cycle proportion.
func TestPowerAPIConvergesOnLinearMachine(t *testing.T) {
	const (
		interval    = 100 * time.Millisecond
		kWattsPerHz = 10e-9 // 10 W per GHz of aggregate cycles
	)
	cfg := DefaultPowerAPIConfig()
	cfg.Deterministic = true
	m := NewPowerAPI(cfg).New(1).(*PowerAPI)

	// Load varies tick to tick so the single-feature regression sees more
	// than one operating point.
	cyclesAt := func(i int, id string) float64 {
		base := 1e8 + 5e7*float64(i%7) // per-interval cycles, 1.0–1.3e9/s as rate
		if id == "b" {
			base *= 0.5
		}
		return base
	}
	makeTick := func(i int) Tick {
		procs := map[string]ProcSample{}
		var agg float64
		for _, id := range []string{"a", "b"} {
			c := cyclesAt(i, id)
			agg += c
			procs[id] = ProcSample{
				CPUTime:  units.CPUTime(50 * time.Millisecond),
				Counters: perfcnt.Counters{Cycles: c},
			}
		}
		rate := agg / interval.Seconds()
		return Tick{
			At:           time.Duration(i) * interval,
			Interval:     interval,
			MachinePower: units.Watts(kWattsPerHz * rate),
			LogicalCPUs:  12,
			Procs:        procs,
		}
	}

	var firstEstimate time.Duration = -1
	for i := 1; i <= 150; i++ {
		tk := makeTick(i)
		est := m.Observe(tk)
		within := tk.At-time.Duration(1)*interval < cfg.LearnWindow
		if est == nil {
			if !within {
				t.Fatalf("tick at %v: no estimate after the %v learning window", tk.At, cfg.LearnWindow)
			}
			continue
		}
		if within {
			t.Fatalf("tick at %v: estimate %v during the learning window", tk.At, est)
		}
		if firstEstimate < 0 {
			firstEstimate = tk.At
		}
		var sum float64
		for _, w := range est {
			sum += float64(w)
		}
		if math.Abs(sum-float64(tk.MachinePower)) > 1e-6 {
			t.Fatalf("tick at %v: estimates sum to %v, machine power %v", tk.At, sum, tk.MachinePower)
		}
		wantShareA := cyclesAt(i, "a") / (cyclesAt(i, "a") + cyclesAt(i, "b"))
		gotShareA := float64(est["a"]) / sum
		if math.Abs(gotShareA-wantShareA) > 1e-6 {
			t.Fatalf("tick at %v: share(a) = %v, want cycle share %v", tk.At, gotShareA, wantShareA)
		}
	}
	if firstEstimate < 0 {
		t.Fatal("model never produced an estimate")
	}
	if m.Degenerate() {
		t.Fatal("deterministic config produced a degenerate calibration")
	}

	// Convergence of the calibration itself: the fitted weight applied to a
	// fresh feature vector must reproduce the linear machine's power.
	for _, aggRate := range []float64{1.5e9, 3e9, 6e9} {
		pred := m.weights[0] * aggRate / m.scales[0]
		want := kWattsPerHz * aggRate
		if math.Abs(pred-want) > 0.02*want {
			t.Errorf("fit predicts %.2f W at %.1e cycles/s, want %.2f W (±2%%)", pred, aggRate, want)
		}
	}
}

// TestPowerAPIRelearnsAfterContextChange asserts the learning window
// restarts when the process set changes: estimates stop for LearnWindow
// after the change, then resume.
func TestPowerAPIRelearnsAfterContextChange(t *testing.T) {
	cfg := DefaultPowerAPIConfig()
	cfg.Deterministic = true
	cfg.LearnWindow = 2 * time.Second
	m := NewPowerAPI(cfg).New(1)

	const interval = 100 * time.Millisecond
	mk := func(i int, ids ...string) Tick {
		procs := map[string]ProcSample{}
		for _, id := range ids {
			procs[id] = ProcSample{
				CPUTime:  units.CPUTime(50 * time.Millisecond),
				Counters: perfcnt.Counters{Cycles: 2e8},
			}
		}
		return Tick{
			At: time.Duration(i) * interval, Interval: interval,
			MachinePower: 40, LogicalCPUs: 12, Procs: procs,
		}
	}
	sawBefore := false
	for i := 1; i <= 40; i++ {
		if m.Observe(mk(i, "a", "b")) != nil {
			sawBefore = true
		}
	}
	if !sawBefore {
		t.Fatal("no estimates before the context change")
	}
	gap, resumed := 0, false
	for i := 41; i <= 90; i++ {
		if m.Observe(mk(i, "a", "c")) == nil {
			if resumed {
				t.Fatalf("tick %d: estimates stopped again after resuming", i)
			}
			gap++
		} else {
			resumed = true
		}
	}
	// 2 s window at 100 ms ticks: the model drops estimates for ~20 ticks.
	if !resumed || gap < 15 {
		t.Errorf("context change: %d dropped ticks (resumed=%v), want a ~20-tick relearning gap", gap, resumed)
	}
}

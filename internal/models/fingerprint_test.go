package models

import (
	"testing"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/units"
)

// TestFactoryFingerprints pins the contract the evaluation-digest cache
// rests on: every stock factory carries a non-empty fingerprint, all stock
// fingerprints are distinct, and changing a factory's configuration changes
// its fingerprint (two equal fingerprints must mean bit-identical
// estimates).
func TestFactoryFingerprints(t *testing.T) {
	perCore := map[string]units.Watts{"a": 3.5, "b": 4.25}
	stock := []Factory{
		NewScaphandre(),
		NewKepler(),
		NewOracle(),
		NewWattScope(),
		NewF2(perCore),
		NewPowerAPI(DefaultPowerAPIConfig()),
		NewSmartWatts(DefaultSmartWattsConfig()),
		NewResidualAwareFromSpec(cpumodel.SmallIntel()),
	}
	seen := map[string]string{}
	for _, f := range stock {
		if f.Fingerprint == "" {
			t.Errorf("%s: empty fingerprint disables the digest cache", f.Name)
			continue
		}
		if prev, dup := seen[f.Fingerprint]; dup {
			t.Errorf("%s and %s share fingerprint %q", prev, f.Name, f.Fingerprint)
		}
		seen[f.Fingerprint] = f.Name
	}

	// Configuration must be part of the identity, not just the model name.
	variants := []struct {
		name string
		a, b Factory
	}{
		{"f2-baselines", NewF2(perCore), NewF2(map[string]units.Watts{"a": 3.5, "b": 5.0})},
		{"powerapi-window", NewPowerAPI(DefaultPowerAPIConfig()), func() Factory {
			cfg := DefaultPowerAPIConfig()
			cfg.LearnWindow++
			return NewPowerAPI(cfg)
		}()},
		{"powerapi-deterministic", NewPowerAPI(DefaultPowerAPIConfig()), func() Factory {
			cfg := DefaultPowerAPIConfig()
			cfg.Deterministic = !cfg.Deterministic
			return NewPowerAPI(cfg)
		}()},
		{"smartwatts-ridge", NewSmartWatts(DefaultSmartWattsConfig()), func() Factory {
			cfg := DefaultSmartWattsConfig()
			cfg.Ridge *= 2
			return NewSmartWatts(cfg)
		}()},
		{"residual-aware-spec", NewResidualAwareFromSpec(cpumodel.SmallIntel()), NewResidualAwareFromSpec(cpumodel.Dahu())},
	}
	for _, v := range variants {
		if v.a.Fingerprint == v.b.Fingerprint {
			t.Errorf("%s: distinct configurations share fingerprint %q", v.name, v.a.Fingerprint)
		}
	}

	// And equal configurations must collide, or the cache never warms.
	if NewF2(perCore).Fingerprint != NewF2(map[string]units.Watts{"b": 4.25, "a": 3.5}).Fingerprint {
		t.Error("f2: equal baselines (different map order) produced different fingerprints")
	}
	if NewPowerAPI(DefaultPowerAPIConfig()).Fingerprint != NewPowerAPI(DefaultPowerAPIConfig()).Fingerprint {
		t.Error("powerapi: equal configs produced different fingerprints")
	}
}

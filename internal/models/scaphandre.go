package models

import "powerdiv/internal/units"

// Scaphandre divides the measured machine power among processes by their
// share of CPU time — the algorithm documented by the Scaphandre project:
// each process receives RAPL power × (process jiffies / total busy jiffies).
//
// This is the paper's family (F1): residual and idle consumption are split
// with the same ratio as active consumption, because the division simply
// does not distinguish them.
type Scaphandre struct{}

// NewScaphandre returns a Scaphandre-model factory.
func NewScaphandre() Factory {
	return Factory{Name: "scaphandre", New: func(int64) Model { return Scaphandre{} }}
}

// Name returns "scaphandre".
func (Scaphandre) Name() string { return "scaphandre" }

// Observe divides the tick's machine power by CPU-time share.
func (Scaphandre) Observe(t Tick) map[string]units.Watts {
	weights := make(map[string]float64, len(t.Procs))
	for id, p := range t.Procs {
		weights[id] = p.CPUTime.Seconds()
	}
	return ShareOut(t.MachinePower, weights)
}

// Kepler divides the measured machine power among processes by their share
// of retired instructions, the dominant term of Kepler's eBPF-sampled
// counter model for Kubernetes workloads. The paper notes Kepler "operates
// on a model that is relatively similar to the one utilized by Scaphandre"
// and that its conclusions transfer; the instruction basis differs from the
// CPU-time basis exactly by the workloads' IPC ratios.
type Kepler struct{}

// NewKepler returns a Kepler-model factory.
func NewKepler() Factory {
	return Factory{Name: "kepler", New: func(int64) Model { return Kepler{} }}
}

// Name returns "kepler".
func (Kepler) Name() string { return "kepler" }

// Observe divides the tick's machine power by instruction share.
func (Kepler) Observe(t Tick) map[string]units.Watts {
	weights := make(map[string]float64, len(t.Procs))
	for id, p := range t.Procs {
		weights[id] = p.Counters.Instructions
	}
	return ShareOut(t.MachinePower, weights)
}

package models

import "powerdiv/internal/units"

// Scaphandre divides the measured machine power among processes by their
// share of CPU time — the algorithm documented by the Scaphandre project:
// each process receives RAPL power × (process jiffies / total busy jiffies).
//
// This is the paper's family (F1): residual and idle consumption are split
// with the same ratio as active consumption, because the division simply
// does not distinguish them.
type Scaphandre struct {
	keys keyCache
}

// NewScaphandre returns a Scaphandre-model factory.
func NewScaphandre() Factory {
	return Factory{Name: "scaphandre", Fingerprint: "scaphandre/v1", New: func(int64) Model { return &Scaphandre{} }}
}

// Name returns "scaphandre".
func (m *Scaphandre) Name() string { return "scaphandre" }

// Observe divides the tick's machine power by CPU-time share.
func (m *Scaphandre) Observe(t Tick) map[string]units.Watts {
	procs := t.ProcsView()
	ids, _ := m.keys.sorted(procs)
	weights := make(map[string]float64, len(procs))
	for _, id := range ids {
		weights[id] = procs[id].CPUTime.Seconds()
	}
	return ShareOutOrdered(t.MachinePower, ids, weights)
}

// ObserveInto divides a dense tick by CPU-time share.
func (m *Scaphandre) ObserveInto(t Tick, out []units.Watts) bool {
	for i, p := range t.Samples {
		out[i] = units.Watts(p.CPUTime.Seconds())
	}
	return ShareOutInto(t.MachinePower, out)
}

// Kepler divides the measured machine power among processes by their share
// of retired instructions, the dominant term of Kepler's eBPF-sampled
// counter model for Kubernetes workloads. The paper notes Kepler "operates
// on a model that is relatively similar to the one utilized by Scaphandre"
// and that its conclusions transfer; the instruction basis differs from the
// CPU-time basis exactly by the workloads' IPC ratios.
type Kepler struct {
	keys keyCache
}

// NewKepler returns a Kepler-model factory.
func NewKepler() Factory {
	return Factory{Name: "kepler", Fingerprint: "kepler/v1", New: func(int64) Model { return &Kepler{} }}
}

// Name returns "kepler".
func (m *Kepler) Name() string { return "kepler" }

// Observe divides the tick's machine power by instruction share.
func (m *Kepler) Observe(t Tick) map[string]units.Watts {
	procs := t.ProcsView()
	ids, _ := m.keys.sorted(procs)
	weights := make(map[string]float64, len(procs))
	for _, id := range ids {
		weights[id] = procs[id].Counters.Instructions
	}
	return ShareOutOrdered(t.MachinePower, ids, weights)
}

// ObserveInto divides a dense tick by instruction share.
func (m *Kepler) ObserveInto(t Tick, out []units.Watts) bool {
	for i, p := range t.Samples {
		out[i] = units.Watts(p.Counters.Instructions)
	}
	return ShareOutInto(t.MachinePower, out)
}

package models

import (
	"powerdiv/internal/machine"
	"powerdiv/internal/units"
)

// StreamReplay drives several models tick by tick as a simulation streams,
// accumulating each model's estimates into the same slab-backed
// DenseEstimates that ReplayDense produces — without a machine.Run or a
// dense tick slice ever being materialised. Per-tick state is one estimate
// column per model; the accumulated matrices grow O(roster × ticks), which
// is all phase-3 scoring needs.
//
// Feeding order is the stream's tick order, and each model instance must be
// driven only through this replay (ObserveInto/Observe advance calibration
// state). Estimates are bit-identical to ReplayDense over the same ticks:
// the dense path calls the same ObserveInto, and the map fallback
// materialises the same ProcsView and scatters by the same roster slots.
type StreamReplay struct {
	roster *machine.Roster
	models []Model
	// dense is index-aligned with models; nil where the model has no
	// columnar fast path.
	dense []DenseModel
	ests  []*DenseEstimates
	n     int
}

// NewStreamReplay readies a replay of ms over roster-indexed ticks.
// capTicks pre-sizes each estimate slab (the caller's upper bound on ticks,
// e.g. maxDur/tick+1); slabs grow if the stream runs longer.
func NewStreamReplay(roster *machine.Roster, ms []Model, capTicks int) *StreamReplay {
	if capTicks < 0 {
		capTicks = 0
	}
	r := &StreamReplay{
		roster: roster,
		models: ms,
		dense:  make([]DenseModel, len(ms)),
		ests:   make([]*DenseEstimates, len(ms)),
		n:      roster.Len(),
	}
	for i, m := range ms {
		if dm, ok := m.(DenseModel); ok {
			r.dense[i] = dm
		}
		r.ests[i] = &DenseEstimates{
			Roster: roster,
			Slab:   make([]units.Watts, 0, capTicks*r.n),
			OK:     make([]bool, 0, capTicks),
		}
	}
	return r
}

// Observe feeds one tick to every model, appending a column to each
// model's estimate matrix. The tick's Samples column may be caller-owned
// scratch reused between ticks: dense models copy what they keep
// (ObserveInto's contract) and the map fallback materialises its own view.
func (r *StreamReplay) Observe(t Tick) {
	// The map view is materialised at most once per tick and shared by all
	// map-fallback models, which treat it as read-only.
	var procs map[string]ProcSample
	for m, model := range r.models {
		d := r.ests[m]
		col := extendColumn(d, r.n)
		if dm := r.dense[m]; dm != nil && t.Samples != nil {
			if dm.ObserveInto(t, col) {
				d.OK = append(d.OK, true)
			} else {
				clear(col)
				d.OK = append(d.OK, false)
			}
			continue
		}
		mt := t
		if procs == nil {
			procs = t.ProcsView()
		}
		mt.Procs = procs
		est := model.Observe(mt)
		if est == nil {
			d.OK = append(d.OK, false)
			continue
		}
		d.OK = append(d.OK, true)
		for slot, id := range r.roster.IDs() {
			col[slot] = est[id]
		}
	}
}

// Ticks returns how many ticks have been observed so far.
func (r *StreamReplay) Ticks() int {
	if len(r.ests) == 0 {
		return 0
	}
	return r.ests[0].Ticks()
}

// Estimates returns model m's accumulated matrix. It stays valid (and
// keeps growing) across further Observe calls.
func (r *StreamReplay) Estimates(m int) *DenseEstimates {
	return r.ests[m]
}

// extendColumn appends one zeroed n-wide column to the estimate slab and
// returns it. Within capacity this is a reslice (make's backing array is
// zeroed and columns are only written through this path); growth copies
// like append would.
func extendColumn(d *DenseEstimates, n int) []units.Watts {
	old := len(d.Slab)
	if cap(d.Slab) >= old+n {
		d.Slab = d.Slab[:old+n]
	} else {
		grown := make([]units.Watts, old+n, 2*old+n)
		copy(grown, d.Slab)
		d.Slab = grown
	}
	return d.Slab[old : old+n : old+n]
}

package models

import (
	"sync"

	"powerdiv/internal/machine"
	"powerdiv/internal/units"
)

// StreamReplay drives several models tick by tick as a simulation streams,
// accumulating each model's estimates into the same slab-backed
// DenseEstimates that ReplayDense produces — without a machine.Run or a
// dense tick slice ever being materialised. Per-tick state is one estimate
// column per model; the accumulated matrices grow O(roster × ticks), which
// is all phase-3 scoring needs.
//
// Feeding order is the stream's tick order, and each model instance must be
// driven only through this replay (ObserveInto/Observe advance calibration
// state). Estimates are bit-identical to ReplayDense over the same ticks:
// the dense path calls the same ObserveInto, and the map fallback
// materialises the same ProcsView and scatters by the same roster slots.
type StreamReplay struct {
	roster *machine.Roster
	models []Model
	// dense is index-aligned with models; nil where the model has no
	// columnar fast path.
	dense []DenseModel
	ests  []*DenseEstimates
	n     int
	// arena is the pooled backing store the per-model slabs were carved
	// from; nil once released (or when the replay was built before pooling
	// existed in a test helper).
	arena *replayArena
}

// replayArena is one pooled backing allocation shared by all of a replay's
// estimate slabs and OK vectors. A campaign evaluates hundreds of
// scenarios, each allocating ~len(ms) slabs sized for the whole run;
// recycling the backing store removes the dominant allocation (and GC
// scan) cost of the streaming pipeline. Returned memory is re-zeroed on
// reuse, so carved regions keep the freshly-made-slab invariant
// extendColumn relies on.
type replayArena struct {
	slab []units.Watts
	ok   []bool
	// dense/ests/estStructs recycle the replay's per-model bookkeeping
	// (interface table, estimate pointers and the pointed-to structs), so
	// a released replay costs one allocation to rebuild.
	dense      []DenseModel
	ests       []*DenseEstimates
	estStructs []DenseEstimates
}

// perModel returns the arena's per-model slices resized for n models,
// reallocating only on growth. Contents are overwritten by the caller.
func (a *replayArena) perModel(n int) ([]DenseModel, []*DenseEstimates, []DenseEstimates) {
	if cap(a.dense) < n {
		a.dense = make([]DenseModel, n)
		a.ests = make([]*DenseEstimates, n)
		a.estStructs = make([]DenseEstimates, n)
	}
	return a.dense[:n], a.ests[:n], a.estStructs[:n]
}

var arenaPool = sync.Pool{New: func() any { return new(replayArena) }}

// NewStreamReplay readies a replay of ms over roster-indexed ticks.
// capTicks pre-sizes each estimate slab (the caller's upper bound on ticks,
// e.g. maxDur/tick+1); slabs grow if the stream runs longer.
func NewStreamReplay(roster *machine.Roster, ms []Model, capTicks int) *StreamReplay {
	if capTicks < 0 {
		capTicks = 0
	}
	a := arenaPool.Get().(*replayArena)
	dense, ests, estStructs := a.perModel(len(ms))
	r := &StreamReplay{
		roster: roster,
		models: ms,
		dense:  dense,
		ests:   ests,
		n:      roster.Len(),
	}
	colCap := capTicks * r.n
	total := len(ms) * colCap
	okTotal := len(ms) * capTicks
	if cap(a.slab) < total {
		a.slab = make([]units.Watts, total)
	} else {
		a.slab = a.slab[:total]
		clear(a.slab)
	}
	if cap(a.ok) < okTotal {
		a.ok = make([]bool, okTotal)
	} else {
		a.ok = a.ok[:okTotal]
	}
	r.arena = a
	for i, m := range ms {
		dense[i] = nil
		if dm, ok := m.(DenseModel); ok {
			dense[i] = dm
		}
		estStructs[i] = DenseEstimates{
			Roster: roster,
			Slab:   a.slab[i*colCap : i*colCap : (i+1)*colCap],
			OK:     a.ok[i*capTicks : i*capTicks : (i+1)*capTicks],
		}
		ests[i] = &estStructs[i]
	}
	return r
}

// Release returns the replay's backing store to the pool. The replay and
// every DenseEstimates it handed out become invalid; call it only after
// scoring has consumed the estimates. Slabs that outgrew their arena
// region (a stream longer than capTicks) migrated to their own
// allocations and are unaffected. Releasing is optional — an unreleased
// arena is simply garbage-collected.
func (r *StreamReplay) Release() {
	if r.arena == nil {
		return
	}
	arenaPool.Put(r.arena)
	r.arena = nil
	for i := range r.ests {
		r.ests[i] = nil
	}
}

// Observe feeds one tick to every model, appending a column to each
// model's estimate matrix. The tick's Samples column may be caller-owned
// scratch reused between ticks: dense models copy what they keep
// (ObserveInto's contract) and the map fallback materialises its own view.
func (r *StreamReplay) Observe(t Tick) {
	// The map view is materialised at most once per tick and shared by all
	// map-fallback models, which treat it as read-only.
	var procs map[string]ProcSample
	for m, model := range r.models {
		d := r.ests[m]
		col := extendColumn(d, r.n)
		if dm := r.dense[m]; dm != nil && t.Samples != nil {
			if dm.ObserveInto(t, col) {
				d.OK = append(d.OK, true)
			} else {
				clear(col)
				d.OK = append(d.OK, false)
			}
			continue
		}
		mt := t
		if procs == nil {
			procs = t.ProcsView()
		}
		mt.Procs = procs
		est := model.Observe(mt)
		if est == nil {
			d.OK = append(d.OK, false)
			continue
		}
		d.OK = append(d.OK, true)
		for slot, id := range r.roster.IDs() {
			col[slot] = est[id]
		}
	}
}

// ObserveSegment feeds a run of constant ticks (see SegmentTicks) to
// every model in one call, appending seg.TickCount() columns to each
// model's estimate matrix. Models implementing SegmentModel observe the
// whole segment at once; the rest fall back to per-tick ObserveInto (or
// the map path) over the segment's materialised ticks. Either way the
// appended estimates and OK flags are bit-identical to TickCount()
// successive Observe calls — segments only batch the work, never change
// it.
func (r *StreamReplay) ObserveSegment(seg *SegmentTicks) {
	nt := seg.TickCount()
	if nt == 0 {
		return
	}
	var procs map[string]ProcSample
	for m, model := range r.models {
		d := r.ests[m]
		rows := extendColumn(d, r.n*nt)
		ok := extendFlags(d, nt)
		if sm, isSeg := model.(SegmentModel); isSeg && seg.Samples != nil {
			sm.ObserveSegmentInto(seg, rows, ok)
			continue
		}
		for k := 0; k < nt; k++ {
			t := seg.tickAt(k)
			col := rows[k*r.n : (k+1)*r.n]
			if dm := r.dense[m]; dm != nil && t.Samples != nil {
				if dm.ObserveInto(t, col) {
					ok[k] = true
				} else {
					clear(col)
				}
				continue
			}
			if procs == nil {
				procs = seg.Tick.ProcsView()
			}
			t.Procs = procs
			est := model.Observe(t)
			if est == nil {
				continue
			}
			ok[k] = true
			for slot, id := range r.roster.IDs() {
				col[slot] = est[id]
			}
		}
	}
}

// Ticks returns how many ticks have been observed so far.
func (r *StreamReplay) Ticks() int {
	if len(r.ests) == 0 {
		return 0
	}
	return r.ests[0].Ticks()
}

// Estimates returns model m's accumulated matrix. It stays valid (and
// keeps growing) across further Observe calls.
func (r *StreamReplay) Estimates(m int) *DenseEstimates {
	return r.ests[m]
}

// extendColumn appends one zeroed n-wide column to the estimate slab and
// returns it. Within capacity this is a reslice (make's backing array is
// zeroed and columns are only written through this path); growth copies
// like append would.
func extendColumn(d *DenseEstimates, n int) []units.Watts {
	old := len(d.Slab)
	if cap(d.Slab) >= old+n {
		d.Slab = d.Slab[:old+n]
	} else {
		grown := make([]units.Watts, old+n, 2*old+n)
		copy(grown, d.Slab)
		d.Slab = grown
	}
	return d.Slab[old : old+n : old+n]
}

// extendFlags appends n false flags to the OK vector and returns them,
// growing like extendColumn. The region is re-zeroed explicitly: segment
// observers only set the flags of OK ticks.
func extendFlags(d *DenseEstimates, n int) []bool {
	old := len(d.OK)
	if cap(d.OK) >= old+n {
		d.OK = d.OK[:old+n]
	} else {
		grown := make([]bool, old+n, 2*old+n)
		copy(grown, d.OK)
		d.OK = grown
	}
	fresh := d.OK[old : old+n : old+n]
	clear(fresh)
	return fresh
}

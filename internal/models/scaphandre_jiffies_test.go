package models

import (
	"math"
	"testing"
	"time"

	"powerdiv/internal/units"
)

// jiffyTick builds a tick whose per-process CPU times come from raw jiffy
// counts at USER_HZ=100 (10 ms each), the quantisation the live meter's
// procfs tracker actually delivers.
func jiffyTick(power units.Watts, jiffies map[string]int) Tick {
	procs := make(map[string]ProcSample, len(jiffies))
	for id, j := range jiffies {
		procs[id] = ProcSample{CPUTime: units.CPUTime(time.Duration(j) * 10 * time.Millisecond)}
	}
	return Tick{
		At:           time.Second,
		Interval:     time.Second,
		MachinePower: power,
		LogicalCPUs:  12,
		Procs:        procs,
	}
}

// TestScaphandreJiffyShareDivision pins the Scaphandre division rule on
// hand-built jiffy counts: every process receives power × (own jiffies /
// total jiffies), the estimates conserve the machine power exactly, and a
// process with zero jiffies is present with 0 W rather than dropped.
func TestScaphandreJiffyShareDivision(t *testing.T) {
	m := NewScaphandre().New(0)
	jiffies := map[string]int{"a": 73, "b": 21, "c": 6, "idle-helper": 0}
	const power = 87.5
	est := m.Observe(jiffyTick(power, jiffies))
	if est == nil {
		t.Fatal("no estimate")
	}
	total := 0
	for _, j := range jiffies {
		total += j
	}
	var sum float64
	for id, j := range jiffies {
		want := power * float64(j) / float64(total)
		if got := float64(est[id]); math.Abs(got-want) > 1e-9 {
			t.Errorf("est[%s] = %v W, want %v W (%d/%d jiffies)", id, got, want, j, total)
		}
		sum += float64(est[id])
	}
	if math.Abs(sum-power) > 1e-9 {
		t.Errorf("estimates sum to %v W, want the machine power %v W", sum, power)
	}
	if w, ok := est["idle-helper"]; !ok || w != 0 {
		t.Errorf("zero-jiffy process: est=%v present=%v, want 0 W present", w, ok)
	}
}

// TestScaphandreIgnoresCounters proves the division really is CPU-time
// based: wildly different performance counters must not move the split when
// jiffy counts are equal (the paper: "only CPU time ... seems to have an
// impact on the results").
func TestScaphandreIgnoresCounters(t *testing.T) {
	m := NewScaphandre().New(0)
	tk := jiffyTick(60, map[string]int{"cpu-bound": 50, "mem-bound": 50})
	p := tk.Procs["cpu-bound"]
	p.Counters.Instructions = 1e12
	p.Counters.Cycles = 5e11
	tk.Procs["cpu-bound"] = p
	est := m.Observe(tk)
	if math.Abs(float64(est["cpu-bound"])-30) > 1e-9 || math.Abs(float64(est["mem-bound"])-30) > 1e-9 {
		t.Errorf("est = %v, want an even 30/30 split regardless of counters", est)
	}
}

package models

import (
	"math"

	"powerdiv/internal/units"
)

// SmartWattsConfig tunes the per-frequency-bin calibration.
type SmartWattsConfig struct {
	// BinWidth groups core frequencies into calibration bins (default
	// 100 MHz, the granularity of real DVFS steps).
	BinWidth units.Hertz
	// MinSamples is how many ticks a bin collects before its model is
	// usable (default 20 — 2 s at the default sampling period).
	MinSamples int
	// Ridge is the per-bin regularisation strength.
	Ridge float64
}

// DefaultSmartWattsConfig returns the reference configuration.
func DefaultSmartWattsConfig() SmartWattsConfig {
	return SmartWattsConfig{
		BinWidth:   100 * units.MHz,
		MinSamples: 20,
		Ridge:      1e-3,
	}
}

// SmartWatts models the self-calibrating power meter of the paper's
// reference [4] more faithfully than the PowerAPI wrapper: it maintains
// one calibration per CPU-frequency bin (real SmartWatts fits one power
// model per frequency, since the counter→power relation changes with
// DVFS). A bin's calibration survives context changes — when applications
// arrive or depart but the machine stays in an already-calibrated
// frequency bin, estimation continues immediately, unlike PowerAPI's
// restart-the-learning-window behaviour. Estimation only pauses while the
// current bin is cold.
//
// Attribution within a tick follows the cycles-family counters, as for
// PowerAPI (the paper finds both models divide by CPU time in practice).
type SmartWatts struct {
	cfg  SmartWattsConfig
	bins map[int64]*swBin
	keys keyCache
	// segW is the segment path's cached weight column, rebuilt after each
	// refit.
	segW []units.Watts
}

// swBin is one frequency bin's calibration state.
type swBin struct {
	rows    [][4]float64
	targets []float64
	fitted  bool
	weights [4]float64
	scales  [4]float64
}

// NewSmartWatts returns a SmartWatts factory.
func NewSmartWatts(cfg SmartWattsConfig) Factory {
	if cfg.BinWidth <= 0 {
		cfg.BinWidth = 100 * units.MHz
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 20
	}
	if cfg.Ridge <= 0 {
		cfg.Ridge = 1e-3
	}
	fp := []byte("smartwatts/v1")
	fp = fpF(fp, float64(cfg.BinWidth))
	fp = fpI(fp, int64(cfg.MinSamples))
	fp = fpF(fp, cfg.Ridge)
	return Factory{
		Name:        "smartwatts",
		Fingerprint: string(fp),
		New: func(int64) Model {
			return &SmartWatts{cfg: cfg, bins: map[int64]*swBin{}}
		},
	}
}

// Name returns "smartwatts".
func (m *SmartWatts) Name() string { return "smartwatts" }

// bin returns the calibration bin for a frequency.
func (m *SmartWatts) bin(freq units.Hertz) *swBin {
	key := int64(math.Round(float64(freq) / float64(m.cfg.BinWidth)))
	b, ok := m.bins[key]
	if !ok {
		b = &swBin{}
		m.bins[key] = b
	}
	return b
}

// Observe ingests one tick: it always feeds the current frequency bin's
// calibration, and produces estimates as soon as that bin is warm.
func (m *SmartWatts) Observe(t Tick) map[string]units.Watts {
	t.Procs = t.ProcsView()
	if len(t.Procs) == 0 {
		return nil
	}
	ids, _ := m.keys.sorted(t.Procs)
	b := m.bin(t.Freq)

	var agg [4]float64
	for _, id := range ids {
		v := t.Procs[id].Counters.Rate(t.Interval).Vector()
		for d := range agg {
			agg[d] += v[d]
		}
	}
	if !m.calibrate(b, agg, t) {
		return nil
	}

	raw := make(map[string]float64, len(t.Procs))
	var total float64
	for _, id := range ids {
		v := t.Procs[id].Counters.Rate(t.Interval).Vector()
		s := b.weights[0] * v[0] / b.scales[0]
		if s < 0 {
			s = 0
		}
		raw[id] = s
		total += s
	}
	if total <= 0 {
		weights := make(map[string]float64, len(t.Procs))
		for _, id := range ids {
			weights[id] = t.Procs[id].CPUTime.Seconds()
		}
		return ShareOutOrdered(t.MachinePower, ids, weights)
	}
	return ShareOutOrdered(t.MachinePower, ids, raw)
}

// calibrate feeds one aggregate row into the bin and reports whether the
// bin is warm enough to estimate.
func (m *SmartWatts) calibrate(b *swBin, agg [4]float64, t Tick) bool {
	warm, _ := m.calibrateTick(b, agg, t.Degraded, t.MachinePower)
	return warm
}

// calibrateTick is calibrate with the tick unpacked (the segment path
// calls it once per covered tick) and additionally reports whether this
// tick's row triggered a refit, so cached estimate weights can be
// invalidated exactly when the per-tick path would recompute different
// ones.
func (m *SmartWatts) calibrateTick(b *swBin, agg [4]float64, degraded bool, power units.Watts) (warm, refitted bool) {
	// Degraded intervals are divided but never calibrated on: a coalesced
	// or zone-incomplete row would poison the bin's fit (see Tick.Degraded).
	if !degraded {
		b.rows = append(b.rows, agg)
		b.targets = append(b.targets, float64(power))
	}
	if len(b.rows) < m.cfg.MinSamples {
		return false, false
	}
	// Refit periodically as the bin accumulates evidence.
	if !b.fitted || len(b.rows)%m.cfg.MinSamples == 0 {
		b.weights, b.scales = RidgeFit4(b.rows, b.targets, m.cfg.Ridge)
		b.fitted = true
		refitted = true
	}
	return true, refitted
}

// ObserveInto is Observe on a dense tick, writing shares by roster slot.
func (m *SmartWatts) ObserveInto(t Tick, out []units.Watts) bool {
	running := 0
	for i := range t.Samples {
		if t.Samples[i].Present() {
			running++
		}
	}
	if running == 0 {
		return false
	}
	b := m.bin(t.Freq)

	var agg [4]float64
	for i := range t.Samples {
		if !t.Samples[i].Present() {
			continue
		}
		v := t.Samples[i].Counters.Rate(t.Interval).Vector()
		for d := range agg {
			agg[d] += v[d]
		}
	}
	if !m.calibrate(b, agg, t) {
		return false
	}

	var total float64
	for i, p := range t.Samples {
		out[i] = 0
		if !p.Present() {
			continue
		}
		v := p.Counters.Rate(t.Interval).Vector()
		s := b.weights[0] * v[0] / b.scales[0]
		if s < 0 {
			s = 0
		}
		out[i] = units.Watts(s)
		total += s
	}
	if total <= 0 {
		for i, p := range t.Samples {
			out[i] = 0
			if p.Present() {
				out[i] = units.Watts(p.CPUTime.Seconds())
			}
		}
	}
	return ShareOutInto(t.MachinePower, out)
}

// WarmBins reports how many frequency bins have usable calibrations —
// exported for white-box assertions.
func (m *SmartWatts) WarmBins() int {
	n := 0
	for _, b := range m.bins {
		if b.fitted {
			n++
		}
	}
	return n
}

package models

import (
	"math"
	"testing"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/machine"
	"powerdiv/internal/units"
	"powerdiv/internal/workload"
)

func TestSmartWattsWarmupThenEstimates(t *testing.T) {
	run, ests := simulatePair(t, cpumodel.SmallIntel(), "int64", "rand", 2, NewSmartWatts(DefaultSmartWattsConfig()), 1)
	warm := DefaultSmartWattsConfig().MinSamples
	for i, est := range ests {
		if i < warm-1 && est != nil {
			t.Fatalf("tick %d: estimate before bin warm-up", i)
		}
		if i >= warm && est == nil {
			t.Fatalf("tick %d: no estimate after warm-up", i)
		}
	}
	// Estimates conserve machine power.
	for i, est := range ests {
		if est == nil {
			continue
		}
		var sum units.Watts
		for _, w := range est {
			sum += w
		}
		if math.Abs(float64(sum-run.Ticks[i].Power)) > 1e-6 {
			t.Fatalf("tick %d: sum %v != power %v", i, sum, run.Ticks[i].Power)
		}
	}
}

func TestSmartWattsSurvivesContextChange(t *testing.T) {
	// The defining contrast with PowerAPI: a process arriving mid-run does
	// not restart calibration when the machine stays in a warm frequency
	// bin (lab context: base frequency throughout).
	w0, _ := workload.StressByName("int64")
	w1, _ := workload.StressByName("rand")
	run, err := machine.Simulate(machine.Config{Spec: cpumodel.SmallIntel()}, []machine.Proc{
		{ID: "p0", Workload: w0, Threads: 2},
		{ID: "p1", Workload: w1, Threads: 2, Start: 15 * time.Second},
	}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sw := Replay(NewSmartWatts(DefaultSmartWattsConfig()).New(1), run)
	arrival := int(15 * time.Second / run.Tick())
	if sw[arrival] == nil {
		t.Error("smartwatts dropped estimates at context change (warm bin)")
	}
	pa := Replay(NewPowerAPI(DefaultPowerAPIConfig()).New(1), run)
	if pa[arrival] != nil {
		t.Error("powerapi kept estimating at context change (should relearn)")
	}
}

func TestSmartWattsColdBinOnFrequencyChange(t *testing.T) {
	// In the production context, turbo derating moves the frequency when a
	// process arrives: the new bin must warm up before estimates resume.
	w0, _ := workload.StressByName("int64")
	w1, _ := workload.StressByName("rand")
	cfg := machine.Config{Spec: cpumodel.SmallIntel(), Hyperthreading: true, Turbo: true}
	run, err := machine.Simulate(cfg, []machine.Proc{
		{ID: "p0", Workload: w0, Threads: 1},
		{ID: "p1", Workload: w1, Threads: 4, Start: 15 * time.Second},
	}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Frequencies differ across the arrival (turbo derate ≥ 100 MHz bin).
	before := run.Ticks[0].Freq
	after := run.Ticks[len(run.Ticks)-1].Freq
	if math.Abs(float64(before-after)) < 1e8 {
		t.Fatalf("turbo derating too small for the test: %v vs %v", before, after)
	}
	m := NewSmartWatts(DefaultSmartWattsConfig()).New(1).(*SmartWatts)
	ests := Replay(m, run)
	arrival := int(15 * time.Second / run.Tick())
	if ests[arrival] != nil {
		t.Error("estimate from a cold frequency bin")
	}
	if ests[len(ests)-1] == nil {
		t.Error("new bin never warmed up")
	}
	if m.WarmBins() != 2 {
		t.Errorf("warm bins = %d, want 2", m.WarmBins())
	}
}

func TestSmartWattsTimelineCoverageBeatsPowerAPI(t *testing.T) {
	// Three context changes at constant frequency: SmartWatts pays one
	// warm-up, PowerAPI pays one per context.
	w, _ := workload.StressByName("int64")
	run, err := machine.Simulate(machine.Config{Spec: cpumodel.SmallIntel()}, []machine.Proc{
		{ID: "P0", Workload: w, Threads: 2},
		{ID: "P1", Workload: w, Threads: 2, Start: 20 * time.Second, Stop: 40 * time.Second},
		{ID: "P2", Workload: w, Threads: 2, Start: 40 * time.Second},
	}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	coverage := func(f Factory) float64 {
		ests := Replay(f.New(1), run)
		n := 0
		for _, est := range ests {
			if est != nil {
				n++
			}
		}
		return float64(n) / float64(len(ests))
	}
	sw := coverage(NewSmartWatts(DefaultSmartWattsConfig()))
	pa := coverage(NewPowerAPI(DefaultPowerAPIConfig()))
	if sw <= pa+0.2 {
		t.Errorf("smartwatts coverage %.2f not well above powerapi %.2f", sw, pa)
	}
	if sw < 0.9 {
		t.Errorf("smartwatts coverage = %.2f, want ≥0.9", sw)
	}
}

func TestSmartWattsEmptyTick(t *testing.T) {
	m := NewSmartWatts(DefaultSmartWattsConfig()).New(0)
	if est := m.Observe(tick(30, nil)); est != nil {
		t.Errorf("empty tick estimate = %v", est)
	}
}

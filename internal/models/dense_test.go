package models

import (
	"math"
	"testing"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/machine"
	"powerdiv/internal/units"
	"powerdiv/internal/workload"
)

func simulateRun(t *testing.T, spec cpumodel.Spec, procs []machine.Proc, dur time.Duration) *machine.Run {
	t.Helper()
	run, err := machine.Simulate(machine.Config{Spec: spec}, procs, dur)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func pairProcs(t *testing.T, fn0, fn1 string, threads int) []machine.Proc {
	t.Helper()
	w0, ok := workload.StressByName(fn0)
	if !ok {
		t.Fatalf("unknown workload %s", fn0)
	}
	w1, ok := workload.StressByName(fn1)
	if !ok {
		t.Fatalf("unknown workload %s", fn1)
	}
	return []machine.Proc{
		{ID: "p0", Workload: w0, Threads: threads},
		{ID: "p1", Workload: w1, Threads: threads},
	}
}

// TestRunTicksDenseMatchesRunTicks pins the two run converters against each
// other: same tick metadata, and the dense columns materialise to exactly
// the map view's samples.
func TestRunTicksDenseMatchesRunTicks(t *testing.T) {
	run := simulateRun(t, cpumodel.SmallIntel(), pairProcs(t, "fibonacci", "matrixprod", 2), 5*time.Second)
	mapTicks := RunTicks(run)
	denseTicks := RunTicksDense(run)
	if len(mapTicks) != len(denseTicks) {
		t.Fatalf("%d map ticks, %d dense", len(mapTicks), len(denseTicks))
	}
	for i := range denseTicks {
		mt, dt := mapTicks[i], denseTicks[i]
		if dt.At != mt.At || dt.Interval != mt.Interval || dt.MachinePower != mt.MachinePower ||
			dt.LogicalCPUs != mt.LogicalCPUs || dt.Freq != mt.Freq {
			t.Fatalf("tick %d metadata differs: %+v vs %+v", i, dt, mt)
		}
		if dt.Procs != nil {
			t.Fatalf("tick %d: dense tick carries a map", i)
		}
		if dt.Roster != run.Roster || len(dt.Samples) != run.Roster.Len() {
			t.Fatalf("tick %d: bad roster/column", i)
		}
		view := dt.ProcsView()
		if len(view) != len(mt.Procs) {
			t.Fatalf("tick %d: %d dense procs, %d map", i, len(view), len(mt.Procs))
		}
		for id, p := range mt.Procs {
			if view[id] != p {
				t.Fatalf("tick %d: %s differs: %+v vs %+v", i, id, view[id], p)
			}
		}
	}
}

// denseEquivalenceRun checks ReplayDense against ReplayTicks for one model
// over one run: OK flags match nil-map ticks, and every estimate is
// bit-identical.
func denseEquivalenceRun(t *testing.T, run *machine.Run, f Factory, seed int64) *DenseEstimates {
	t.Helper()
	mapEsts := ReplayTicks(f.New(seed), RunTicks(run))
	dense := ReplayDense(f.New(seed), RunTicksDense(run))
	if dense.Ticks() != len(run.Ticks) || len(mapEsts) != len(run.Ticks) {
		t.Fatalf("%s: replay lengths %d/%d, want %d", f.Name, dense.Ticks(), len(mapEsts), len(run.Ticks))
	}
	ids := run.Roster.IDs()
	for i, est := range mapEsts {
		if (est == nil) == dense.OK[i] {
			t.Fatalf("%s: tick %d coverage differs (map nil=%v, dense ok=%v)", f.Name, i, est == nil, dense.OK[i])
		}
		row := dense.Row(i)
		if est == nil {
			for slot, w := range row {
				if w != 0 {
					t.Fatalf("%s: tick %d slot %d: %v on an estimate-free tick", f.Name, i, slot, w)
				}
			}
			continue
		}
		for slot, id := range ids {
			if math.Float64bits(float64(est[id])) != math.Float64bits(float64(row[slot])) {
				t.Fatalf("%s: tick %d %s: map %v != dense %v", f.Name, i, id, est[id], row[slot])
			}
		}
	}
	return dense
}

// TestReplayDenseMatchesReplayTicks runs every model over simulated pairs
// on both machines and requires the columnar replay to be bit-identical to
// the map replay — including PowerAPI's fitted estimates (SMALL INTEL) and
// its many-core degenerate calibration (DAHU).
func TestReplayDenseMatchesReplayTicks(t *testing.T) {
	factories := []Factory{
		NewScaphandre(),
		NewKepler(),
		NewPowerAPI(DefaultPowerAPIConfig()),
		NewSmartWatts(DefaultSmartWattsConfig()),
		NewF2(map[string]units.Watts{"p0": 3, "p1": 5}),
		NewResidualAwareFromSpec(cpumodel.SmallIntel()),
		NewOracle(),
	}
	for _, spec := range []cpumodel.Spec{cpumodel.SmallIntel(), cpumodel.Dahu()} {
		run := simulateRun(t, spec, pairProcs(t, "fibonacci", "matrixprod", 3), 30*time.Second)
		for _, f := range factories {
			for seed := int64(1); seed <= 3; seed++ {
				denseEquivalenceRun(t, run, f, seed)
			}
		}
	}
}

// TestReplayDenseMapFallback replays a map-only model (no ObserveInto)
// through ReplayDense: the fallback must materialise the map view, scatter
// the estimates by roster slot, and zero the columns of nil-map ticks.
func TestReplayDenseMapFallback(t *testing.T) {
	run := simulateRun(t, cpumodel.SmallIntel(), pairProcs(t, "int64", "rand", 2), 5*time.Second)
	f := Factory{Name: "maponly", New: func(int64) Model { return mapOnlyModel{} }}
	dense := ReplayDense(f.New(1), RunTicksDense(run))
	mapEsts := ReplayTicks(f.New(1), RunTicks(run))
	ids := run.Roster.IDs()
	for i, est := range mapEsts {
		if (est == nil) == dense.OK[i] {
			t.Fatalf("tick %d coverage differs", i)
		}
		if est == nil {
			continue
		}
		for slot, id := range ids {
			if dense.Row(i)[slot] != est[id] {
				t.Fatalf("tick %d %s: %v != %v", i, id, dense.Row(i)[slot], est[id])
			}
		}
	}
}

// mapOnlyModel divides power evenly among present processes via the map
// interface only — it deliberately does not implement DenseModel.
type mapOnlyModel struct{}

func (mapOnlyModel) Name() string { return "maponly" }

func (mapOnlyModel) Observe(t Tick) map[string]units.Watts {
	procs := t.ProcsView()
	if len(procs) == 0 {
		return nil
	}
	out := make(map[string]units.Watts, len(procs))
	for id := range procs {
		out[id] = t.MachinePower / units.Watts(len(procs))
	}
	return out
}

// TestShareOutInto pins the in-place division kernel: weights in, shares
// out, negative weights clamped, and a no-positive-weight column refused
// exactly like ShareOut returning nil.
func TestShareOutInto(t *testing.T) {
	col := []units.Watts{1, 3, 0, -2}
	if !ShareOutInto(40, col) {
		t.Fatal("positive weights refused")
	}
	want := []units.Watts{10, 30, 0, 0}
	for i := range want {
		if col[i] != want[i] {
			t.Errorf("col[%d] = %v, want %v", i, col[i], want[i])
		}
	}
	zero := []units.Watts{0, -1, 0}
	if ShareOutInto(40, zero) {
		t.Error("no-positive-weight column accepted")
	}
	if ShareOutInto(40, nil) {
		t.Error("empty column accepted")
	}
}

// TestDenseEstimatesRowIsView pins slab ownership: Row returns a view into
// the shared slab, not a copy.
func TestDenseEstimatesRowIsView(t *testing.T) {
	run := simulateRun(t, cpumodel.SmallIntel(), pairProcs(t, "int64", "rand", 1), time.Second)
	dense := ReplayDense(NewScaphandre().New(1), RunTicksDense(run))
	if dense.Ticks() == 0 {
		t.Fatal("no ticks")
	}
	row := dense.Row(0)
	row[0] = 1234
	if dense.Slab[0] != 1234 {
		t.Error("Row(0) is not a slab view")
	}
}

package models

import (
	"math"
	"testing"
)

// repeatRows returns n copies of one feature row.
func repeatRows(row [4]float64, n int) [][4]float64 {
	rows := make([][4]float64, n)
	for i := range rows {
		rows[i] = row
	}
	return rows
}

// TestRidgeFitZeroVarianceWithRidge: a window where the load never changes
// gives identical rows — a rank-1 normal matrix. The ridge term must keep
// the system solvable and the fit must still reproduce the (single) observed
// operating point.
func TestRidgeFitZeroVarianceWithRidge(t *testing.T) {
	row := [4]float64{2e9, 1e9, 3e7, 2e8}
	y := make([]float64, 50)
	for i := range y {
		y[i] = 50
	}
	weights, scales := RidgeFit4(repeatRows(row, 50), y, 1e-3)
	var pred float64
	for d := 0; d < 4; d++ {
		if math.IsNaN(weights[d]) || math.IsInf(weights[d], 0) {
			t.Fatalf("weight[%d] = %v", d, weights[d])
		}
		pred += weights[d] * row[d] / scales[d]
	}
	if math.Abs(pred-50) > 0.01*50 {
		t.Errorf("zero-variance fit predicts %.3f W at the training point, want 50 (±1%%)", pred)
	}
}

// TestRidgeFitZeroVarianceWithoutRidge: with λ=0 the same rank-1 system is
// singular; the solver must detect it and return zero weights instead of
// amplifying noise into garbage coefficients.
func TestRidgeFitZeroVarianceWithoutRidge(t *testing.T) {
	row := [4]float64{2e9, 1e9, 3e7, 2e8}
	y := []float64{50, 50, 50}
	weights, _ := RidgeFit4(repeatRows(row, 3), y, 0)
	if weights != ([4]float64{}) {
		t.Errorf("singular unregularised fit returned weights %v, want all zeros", weights)
	}
}

// TestRidgeFitSingleSample: one observation is the extreme zero-variance
// window. The regularised fit must stay finite and reproduce the sample.
func TestRidgeFitSingleSample(t *testing.T) {
	row := [4]float64{1e9, 0, 0, 0}
	weights, scales := RidgeFit4([][4]float64{row}, []float64{35}, 1e-3)
	pred := weights[0] * row[0] / scales[0]
	if math.IsNaN(pred) || math.Abs(pred-35) > 0.01*35 {
		t.Errorf("single-sample fit predicts %v W, want 35 (±1%%)", pred)
	}
	for d := 1; d < 4; d++ {
		if weights[d] != 0 {
			t.Errorf("weight[%d] = %v for an all-zero feature column, want 0", d, weights[d])
		}
	}
}

// TestRidgeFitMismatchedLengths: rows/targets of different lengths are a
// caller bug; the fit must refuse (zero weights, unit scales) rather than
// index out of range.
func TestRidgeFitMismatchedLengths(t *testing.T) {
	weights, scales := RidgeFit4(repeatRows([4]float64{1, 1, 1, 1}, 3), []float64{1, 2}, 1e-3)
	if weights != ([4]float64{}) || scales != ([4]float64{1, 1, 1, 1}) {
		t.Errorf("mismatched input: weights=%v scales=%v, want zeros and unit scales", weights, scales)
	}
}

// TestSolve4ZeroPivotColumn: a system whose best pivot for some column is
// (numerically) zero must report ok=false.
func TestSolve4ZeroPivotColumn(t *testing.T) {
	var a [4][4]float64
	a[0][0], a[1][1], a[3][3] = 1, 1, 1 // column 2 is all zeros
	if _, ok := solve4(a, [4]float64{1, 1, 1, 1}); ok {
		t.Error("solve4 accepted a singular system with an all-zero column")
	}
}

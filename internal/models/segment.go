package models

import (
	"time"

	"powerdiv/internal/units"
)

// SegmentTicks describes a run of consecutive ticks whose inputs are
// identical except for the timestamp and the machine power reading — the
// model-side view of a simulator segment (machine.Segment). The embedded
// Tick carries the shared fields (interval, frequency, degraded flag,
// roster, samples); its At and MachinePower are those of the segment's
// first tick. Powers holds every tick's machine power, and At(i) derives
// every tick's timestamp.
//
// The contract mirrors the simulator's: between change-points the dense
// sample column is constant, so a model whose per-tick work factors into
// "weights from samples" × "scale by power" can evaluate the weights once
// per segment.
type SegmentTicks struct {
	Tick
	// Powers is the per-tick machine power; len(Powers) is the segment's
	// tick count and Powers[0] equals Tick.MachinePower.
	Powers []units.Watts
}

// TickCount returns the number of ticks the segment covers.
func (s *SegmentTicks) TickCount() int { return len(s.Powers) }

// At returns the timestamp of the segment's i-th tick. Timestamps are
// exact multiples of the interval, so the addition reproduces the
// simulator's tick grid bit for bit.
func (s *SegmentTicks) At(i int) time.Duration {
	return s.Tick.At + time.Duration(i)*s.Interval
}

// tickAt materialises the i-th per-tick view of the segment.
func (s *SegmentTicks) tickAt(i int) Tick {
	t := s.Tick
	t.At = s.At(i)
	t.MachinePower = s.Powers[i]
	return t
}

// SegmentModel is the segment-level fast path of DenseModel.
// ObserveSegmentInto observes every tick of seg in order, writing tick
// i's roster-indexed estimate row to out[i*n:(i+1)*n] (n = len(
// seg.Samples)) and its estimate flag to ok[i]. out arrives zeroed and
// rows of not-OK ticks must be left (or restored to) zero, exactly like
// the cleared columns of the per-tick path.
//
// The results — estimates, flags, and any calibration state the model
// carries across ticks — must be bit-identical to calling ObserveInto
// once per tick with only At and MachinePower substituted; the
// equivalence tests pin this for every built-in model. Like ObserveInto,
// a model instance must be driven through exactly one entry-point style
// for its whole lifetime, in tick order.
type SegmentModel interface {
	DenseModel
	ObserveSegmentInto(seg *SegmentTicks, out []units.Watts, ok []bool)
}

// shareOutSegment applies ShareOutInto across a segment: w holds the
// ticks' shared weight column, and each of the nt rows of out receives
// its tick's power divided in proportion — row[i] = power_k·w[i]/total,
// with exactly ShareOutInto's operation order and negative-weight
// clamping, so every row is bit-identical to a per-tick ShareOutInto over
// a copy of w. When no weight is positive every tick is marked not-OK
// and the rows stay zero, mirroring ShareOutInto's false.
//
// w may alias the first row of out: rows are stamped last to first, and
// the first row's element-wise rewrite reads each weight before
// overwriting it.
func shareOutSegment(powers []units.Watts, w []units.Watts, out []units.Watts, ok []bool) bool {
	var total float64
	for _, x := range w {
		if x > 0 {
			total += float64(x)
		}
	}
	n := len(w)
	if total <= 0 {
		for k := range powers {
			ok[k] = false
		}
		// w may be the first output row; rows must stay zero on failure.
		clear(w)
		return false
	}
	for k := len(powers) - 1; k >= 0; k-- {
		p := float64(powers[k])
		row := out[k*n : (k+1)*n]
		for i, x := range w {
			xf := float64(x)
			if xf < 0 {
				xf = 0
			}
			row[i] = units.Watts(p * xf / total)
		}
		ok[k] = true
	}
	return true
}

// ObserveSegmentInto divides every tick by the segment's constant
// CPU-time shares.
func (m *Scaphandre) ObserveSegmentInto(seg *SegmentTicks, out []units.Watts, ok []bool) {
	n := len(seg.Samples)
	w := out[:n]
	for i, p := range seg.Samples {
		w[i] = units.Watts(p.CPUTime.Seconds())
	}
	shareOutSegment(seg.Powers, w, out, ok)
}

// ObserveSegmentInto divides every tick by the segment's constant
// instruction shares.
func (m *Kepler) ObserveSegmentInto(seg *SegmentTicks, out []units.Watts, ok []bool) {
	n := len(seg.Samples)
	w := out[:n]
	for i, p := range seg.Samples {
		w[i] = units.Watts(p.Counters.Instructions)
	}
	shareOutSegment(seg.Powers, w, out, ok)
}

// ObserveSegmentInto divides every tick by the segment's constant
// true-active shares.
func (m *Oracle) ObserveSegmentInto(seg *SegmentTicks, out []units.Watts, ok []bool) {
	n := len(seg.Samples)
	w := out[:n]
	for i, p := range seg.Samples {
		w[i] = p.TrueActive
	}
	shareOutSegment(seg.Powers, w, out, ok)
}

// ObserveSegmentInto divides every tick by the segment's constant
// baseline × CPU-usage shares.
func (m *F2) ObserveSegmentInto(seg *SegmentTicks, out []units.Watts, ok []bool) {
	if m.roster != seg.Roster {
		m.roster = seg.Roster
		ids := seg.Roster.IDs()
		if cap(m.perSlot) < len(ids) {
			m.perSlot = make([]float64, len(ids))
		}
		m.perSlot = m.perSlot[:len(ids)]
		for i, id := range ids {
			m.perSlot[i] = m.per(id)
		}
	}
	n := len(seg.Samples)
	w := out[:n]
	any := false
	for i, p := range seg.Samples {
		w[i] = 0
		if !p.Present() {
			continue
		}
		any = true
		w[i] = units.Watts(m.perSlot[i] * p.CPUTime.Seconds())
	}
	if !any {
		clear(w)
		for k := range ok {
			ok[k] = false
		}
		return
	}
	shareOutSegment(seg.Powers, w, out, ok)
}

// ObserveSegmentInto divides every tick with the segment's constant
// coarse-utilization shares; only the running-minimum floor advances per
// tick, in tick order, exactly as the per-tick path learns it.
func (m *WattScope) ObserveSegmentInto(seg *SegmentTicks, out []units.Watts, ok []bool) {
	n := len(seg.Samples)
	if cap(m.slotUtils) < n {
		m.slotUtils = make([]float64, n)
	}
	utils := m.slotUtils[:n]
	present := 0
	var totalUtil float64
	for i, p := range seg.Samples {
		utils[i] = 0
		if p.Present() {
			present++
			u := m.coarseUtil(p.CPUTime, seg.Tick)
			utils[i] = u
			totalUtil += u
		}
	}
	if present == 0 {
		// The per-tick path learns the floor before the present check, so
		// idle ticks still feed it.
		for k := range seg.Powers {
			m.learnFloorPower(seg.Degraded, float64(seg.Powers[k]))
			ok[k] = false
		}
		return
	}
	for k, pw := range seg.Powers {
		power := float64(pw)
		m.learnFloorPower(seg.Degraded, power)
		static := m.staticPower(power)
		dynamic := power - static
		if totalUtil <= 0 {
			static, dynamic = power, 0
		}
		perProc := static / float64(present)
		row := out[k*n : (k+1)*n]
		for i, p := range seg.Samples {
			if !p.Present() {
				row[i] = 0
				continue
			}
			est := perProc
			if dynamic > 0 {
				est += dynamic * utils[i] / totalUtil
			}
			row[i] = units.Watts(est)
		}
		ok[k] = true
	}
}

// ObserveSegmentInto decomposes every tick with the segment's constant
// duties, CPU shares and residual-excess terms; only the allocatable
// active part varies with the tick's power.
func (m *ResidualAware) ObserveSegmentInto(seg *SegmentTicks, out []units.Watts, ok []bool) {
	n := len(seg.Samples)
	interval := units.CPUTime(seg.Interval)
	if cap(m.slotDuties) < n {
		m.slotDuties = make([]float64, n)
	}
	if cap(m.slotShares) < n {
		m.slotShares = make([]float64, n)
		m.slotResid = make([]float64, n)
	}
	duties := m.slotDuties[:n]
	shares := m.slotShares[:n]
	resid := m.slotResid[:n]

	var totalCPU float64
	maxDuty := 0.0
	for i, p := range seg.Samples {
		duties[i] = 0
		if !p.Present() {
			continue
		}
		totalCPU += p.CPUTime.Seconds()
		d := duty(p, interval)
		duties[i] = d
		if d > maxDuty {
			maxDuty = d
		}
	}
	if totalCPU <= 0 {
		for k := range ok {
			ok[k] = false
		}
		return
	}
	minDuty := maxDuty
	for i, p := range seg.Samples {
		if p.Present() && duties[i] < minDuty {
			minDuty = duties[i]
		}
	}
	freq := seg.Freq
	if freq <= 0 {
		freq = m.baseFreq
	}
	r := m.residual.At(freq)
	for i, p := range seg.Samples {
		shares[i], resid[i] = 0, 0
		if !p.Present() {
			continue
		}
		shares[i] = p.CPUTime.Seconds() / totalCPU
		resid[i] = float64(r) * (duties[i] - minDuty)
	}
	drawnResidual := units.Watts(float64(r) * maxDuty)
	for k, pw := range seg.Powers {
		active := pw - m.idle - drawnResidual
		if active < 0 {
			active = 0
		}
		activeF := float64(active)
		row := out[k*n : (k+1)*n]
		for i, p := range seg.Samples {
			row[i] = 0
			if !p.Present() {
				continue
			}
			row[i] = units.Watts(activeF*shares[i] + resid[i])
		}
		if ShareOutInto(pw, row) {
			ok[k] = true
		} else {
			clear(row)
			ok[k] = false
		}
	}
}

// ObserveSegmentInto runs PowerAPI over a segment. Presence — the
// context-change signal — is constant within a segment, so a reset can
// only fire at the segment head; the learning window then fills with the
// segment's constant aggregate row and per-tick targets, the fit (and a
// degenerate calibration's favored-slot draw) fires at exactly the tick
// where the per-tick path would fire it, and estimation stamps the cached
// post-fit weight column across the remaining ticks.
func (m *PowerAPI) ObserveSegmentInto(seg *SegmentTicks, out []units.Watts, ok []bool) {
	n := len(seg.Samples)
	nt := len(seg.Powers)
	if cap(m.curPresent) < n {
		m.curPresent = make([]bool, n)
	}
	m.curPresent = m.curPresent[:n]
	running := 0
	for i, p := range seg.Samples {
		pr := p.Present()
		m.curPresent[i] = pr
		if pr {
			running++
		}
	}
	if running == 0 {
		// The per-tick path bails before the context check: process-free
		// ticks neither update prevPresent nor restart the window.
		for k := 0; k < nt; k++ {
			ok[k] = false
		}
		return
	}
	if !boolsEqual(m.prevPresent, m.curPresent) {
		m.prevPresent = append(m.prevPresent[:0], m.curPresent...)
		m.reset(seg.Tick.At)
	}
	k := 0
	if !m.fitted {
		var agg [4]float64
		if !seg.Degraded {
			for i, p := range seg.Samples {
				if !m.curPresent[i] {
					continue
				}
				v := p.Counters.Rate(seg.Interval).Vector()
				for d := range agg {
					agg[d] += v[d]
				}
			}
		}
		for ; k < nt; k++ {
			if !seg.Degraded {
				m.rows = append(m.rows, agg)
				m.targets = append(m.targets, float64(seg.Powers[k]))
			}
			if seg.At(k)-m.learnStart < m.cfg.LearnWindow || len(m.rows) == 0 {
				ok[k] = false
				continue
			}
			// The window closed at this tick: fit, then estimate this same
			// tick onward, exactly like the per-tick path.
			m.fit(seg.LogicalCPUs)
			break
		}
		if k == nt {
			return
		}
	}
	if m.degenerate {
		m.estimateDegenerateSegment(seg, k, running, out, ok)
		return
	}
	if cap(m.segW) < n {
		m.segW = make([]units.Watts, n)
	}
	w := m.segW[:n]
	var total float64
	for i, p := range seg.Samples {
		w[i] = 0
		if !m.curPresent[i] {
			continue
		}
		v := p.Counters.Rate(seg.Interval).Vector()
		s := m.weights[0] * v[0] / m.scales[0]
		if s < 0 {
			s = 0
		}
		w[i] = units.Watts(s)
		total += s
	}
	if total <= 0 {
		// The fit assigns nothing; fall back to CPU-time shares, as the
		// per-tick estimate does.
		for i, p := range seg.Samples {
			w[i] = 0
			if m.curPresent[i] {
				w[i] = units.Watts(p.CPUTime.Seconds())
			}
		}
	}
	shareOutSegment(seg.Powers[k:], w, out[k*n:], ok[k:])
}

// estimateDegenerateSegment stamps the degenerate attribution over ticks
// k..end of the segment: the favored slot (drawn here if needed, with the
// same seeded call the per-tick path would make) takes its inflated
// constant share, the rest split by CPU time.
func (m *PowerAPI) estimateDegenerateSegment(seg *SegmentTicks, k, running int, out []units.Watts, ok []bool) {
	n := len(seg.Samples)
	var totalCPU float64
	for i, p := range seg.Samples {
		if m.curPresent[i] {
			totalCPU += p.CPUTime.Seconds()
		}
	}
	if totalCPU <= 0 {
		for ; k < len(ok); k++ {
			ok[k] = false
		}
		return
	}
	if m.favSlot < 0 || !m.curPresent[m.favSlot] {
		kk := m.rand().Intn(running)
		for i, pr := range m.curPresent {
			if !pr {
				continue
			}
			if kk == 0 {
				m.favSlot = i
				break
			}
			kk--
		}
	}
	if running == 1 {
		for ; k < len(seg.Powers); k++ {
			row := out[k*n : (k+1)*n]
			row[m.favSlot] = seg.Powers[k]
			ok[k] = true
		}
		return
	}
	favCPU := seg.Samples[m.favSlot].CPUTime.Seconds()
	favShare := favCPU/totalCPU + 0.4
	if favShare > 0.9 {
		favShare = 0.9
	}
	restCPU := totalCPU - favCPU
	if cap(m.segW) < n {
		m.segW = make([]units.Watts, n)
	}
	w := m.segW[:n]
	for i, p := range seg.Samples {
		w[i] = 0
		if !m.curPresent[i] || i == m.favSlot {
			continue
		}
		if restCPU > 0 {
			w[i] = units.Watts((1 - favShare) * p.CPUTime.Seconds() / restCPU)
		}
	}
	w[m.favSlot] = units.Watts(favShare)
	shareOutSegment(seg.Powers[k:], w, out[k*n:], ok[k:])
}

// ObserveSegmentInto runs SmartWatts over a segment: the bin and the
// aggregate calibration row are constant, every covered tick still feeds
// the bin in order (refits fire at exactly the per-tick cadence), and the
// cached estimate weights are rebuilt whenever a refit lands.
func (m *SmartWatts) ObserveSegmentInto(seg *SegmentTicks, out []units.Watts, ok []bool) {
	n := len(seg.Samples)
	running := 0
	for i := range seg.Samples {
		if seg.Samples[i].Present() {
			running++
		}
	}
	if running == 0 {
		for k := range ok {
			ok[k] = false
		}
		return
	}
	b := m.bin(seg.Freq)
	var agg [4]float64
	for i := range seg.Samples {
		if !seg.Samples[i].Present() {
			continue
		}
		v := seg.Samples[i].Counters.Rate(seg.Interval).Vector()
		for d := range agg {
			agg[d] += v[d]
		}
	}
	if cap(m.segW) < n {
		m.segW = make([]units.Watts, n)
	}
	w := m.segW[:n]
	wValid := false
	for k, pw := range seg.Powers {
		warm, refitted := m.calibrateTick(b, agg, seg.Degraded, pw)
		if !warm {
			ok[k] = false
			continue
		}
		if refitted || !wValid {
			wValid = true
			var total float64
			for i, p := range seg.Samples {
				w[i] = 0
				if !p.Present() {
					continue
				}
				v := p.Counters.Rate(seg.Interval).Vector()
				s := b.weights[0] * v[0] / b.scales[0]
				if s < 0 {
					s = 0
				}
				w[i] = units.Watts(s)
				total += s
			}
			if total <= 0 {
				for i, p := range seg.Samples {
					w[i] = 0
					if p.Present() {
						w[i] = units.Watts(p.CPUTime.Seconds())
					}
				}
			}
		}
		row := out[k*n : (k+1)*n]
		copy(row, w)
		if ShareOutInto(pw, row) {
			ok[k] = true
		} else {
			clear(row)
			ok[k] = false
		}
	}
}

package models

import (
	"math"
	"testing"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/machine"
	"powerdiv/internal/perfcnt"
	"powerdiv/internal/units"
	"powerdiv/internal/workload"
)

func tick(power units.Watts, procs map[string]ProcSample) Tick {
	return Tick{
		At:           time.Second,
		Interval:     100 * time.Millisecond,
		MachinePower: power,
		LogicalCPUs:  12,
		Procs:        procs,
	}
}

func cpuSample(ms int) ProcSample {
	return ProcSample{CPUTime: units.CPUTime(time.Duration(ms) * time.Millisecond)}
}

func TestScaphandreSharesByCPUTime(t *testing.T) {
	m := NewScaphandre().New(0)
	est := m.Observe(tick(60, map[string]ProcSample{
		"a": cpuSample(200),
		"b": cpuSample(100),
	}))
	if est == nil {
		t.Fatal("no estimate")
	}
	if math.Abs(float64(est["a"])-40) > 1e-9 || math.Abs(float64(est["b"])-20) > 1e-9 {
		t.Errorf("est = %v, want a=40 b=20", est)
	}
}

func TestScaphandreIdleTickNil(t *testing.T) {
	m := NewScaphandre().New(0)
	if est := m.Observe(tick(30, map[string]ProcSample{"a": cpuSample(0)})); est != nil {
		t.Errorf("zero-CPU tick estimate = %v, want nil", est)
	}
	if est := m.Observe(tick(30, nil)); est != nil {
		t.Errorf("empty tick estimate = %v, want nil", est)
	}
}

func TestKeplerSharesByInstructions(t *testing.T) {
	m := NewKepler().New(0)
	est := m.Observe(tick(90, map[string]ProcSample{
		"a": {Counters: perfcnt.Counters{Instructions: 2e9}},
		"b": {Counters: perfcnt.Counters{Instructions: 1e9}},
	}))
	if math.Abs(float64(est["a"])-60) > 1e-9 || math.Abs(float64(est["b"])-30) > 1e-9 {
		t.Errorf("est = %v, want a=60 b=30", est)
	}
}

func TestOracleSharesByTrueActive(t *testing.T) {
	m := NewOracle().New(0)
	est := m.Observe(tick(100, map[string]ProcSample{
		"a": {TrueActive: 30},
		"b": {TrueActive: 10},
	}))
	if math.Abs(float64(est["a"])-75) > 1e-9 || math.Abs(float64(est["b"])-25) > 1e-9 {
		t.Errorf("est = %v, want a=75 b=25", est)
	}
	// Real-sensor input (no ground truth) yields nil.
	if est := m.Observe(tick(100, map[string]ProcSample{"a": cpuSample(100)})); est != nil {
		t.Errorf("estimate without ground truth = %v, want nil", est)
	}
}

func TestF2PreservesBaselineRatio(t *testing.T) {
	f := NewF2(map[string]units.Watts{"a": 7.1, "b": 4.4})
	m := f.New(0)
	est := m.Observe(tick(100, map[string]ProcSample{
		"a": cpuSample(100),
		"b": cpuSample(100),
	}))
	wantA := 100 * 7.1 / 11.5
	if math.Abs(float64(est["a"])-wantA) > 1e-9 {
		t.Errorf("a = %v, want %v", est["a"], wantA)
	}
	// Sum is the machine power (it divides everything).
	if math.Abs(float64(est["a"]+est["b"])-100) > 1e-9 {
		t.Errorf("sum = %v, want 100", est["a"]+est["b"])
	}
}

func TestF2UnknownProcGetsMeanBaseline(t *testing.T) {
	f := NewF2(map[string]units.Watts{"a": 6, "b": 4})
	m := f.New(0)
	est := m.Observe(tick(100, map[string]ProcSample{
		"a": cpuSample(100),
		"x": cpuSample(100), // unknown: mean baseline 5
	}))
	wantA := 100 * 6.0 / 11.0
	if math.Abs(float64(est["a"])-wantA) > 1e-9 {
		t.Errorf("a = %v, want %v", est["a"], wantA)
	}
}

func TestShareOutClampsNegativeAndZero(t *testing.T) {
	if out := ShareOut(100, map[string]float64{"a": 0, "b": 0}); out != nil {
		t.Errorf("all-zero weights = %v, want nil", out)
	}
	out := ShareOut(100, map[string]float64{"a": -5, "b": 10})
	if out["a"] != 0 || math.Abs(float64(out["b"])-100) > 1e-9 {
		t.Errorf("negative weight handling = %v", out)
	}
}

func TestEstimatesSumToMachinePower(t *testing.T) {
	// Every F1-family model must return estimates summing to C_{S,t}.
	factories := []Factory{
		NewScaphandre(),
		NewKepler(),
		NewOracle(),
		NewF2(map[string]units.Watts{"a": 6, "b": 4}),
	}
	in := tick(73.5, map[string]ProcSample{
		"a": {CPUTime: units.CPUTime(300 * time.Millisecond), Counters: perfcnt.Counters{Instructions: 1e9, Cycles: 2e9}, TrueActive: 20},
		"b": {CPUTime: units.CPUTime(100 * time.Millisecond), Counters: perfcnt.Counters{Instructions: 3e9, Cycles: 1e9}, TrueActive: 5},
	})
	for _, f := range factories {
		m := f.New(1)
		est := m.Observe(in)
		if est == nil {
			t.Errorf("%s: nil estimate", f.Name)
			continue
		}
		var sum units.Watts
		for _, w := range est {
			sum += w
		}
		if math.Abs(float64(sum-in.MachinePower)) > 1e-9 {
			t.Errorf("%s: estimates sum to %v, want %v", f.Name, sum, in.MachinePower)
		}
	}
}

// simulatePair runs two stress workloads side by side on a lab-context
// machine and replays the given model over the run.
func simulatePair(t *testing.T, spec cpumodel.Spec, fn0, fn1 string, threads int, f Factory, seed int64) (*machine.Run, []map[string]units.Watts) {
	t.Helper()
	w0, ok := workload.StressByName(fn0)
	if !ok {
		t.Fatalf("unknown workload %s", fn0)
	}
	w1, ok := workload.StressByName(fn1)
	if !ok {
		t.Fatalf("unknown workload %s", fn1)
	}
	run, err := machine.Simulate(machine.Config{Spec: spec}, []machine.Proc{
		{ID: "p0", Workload: w0, Threads: threads},
		{ID: "p1", Workload: w1, Threads: threads},
	}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return run, Replay(f.New(seed), run)
}

func TestPowerAPILearningPhase(t *testing.T) {
	run, ests := simulatePair(t, cpumodel.SmallIntel(), "fibonacci", "matrixprod", 3, NewPowerAPI(DefaultPowerAPIConfig()), 1)
	tickDur := run.Tick()
	learnTicks := int(10 * time.Second / tickDur)
	for i, est := range ests {
		if i <= learnTicks-1 && est != nil {
			t.Fatalf("tick %d: estimate during learning phase", i)
		}
		if i > learnTicks && est == nil {
			t.Fatalf("tick %d: no estimate after learning phase", i)
		}
	}
}

func TestPowerAPIEstimatesSumToPower(t *testing.T) {
	run, ests := simulatePair(t, cpumodel.SmallIntel(), "int64", "rand", 2, NewPowerAPI(DefaultPowerAPIConfig()), 1)
	for i, est := range ests {
		if est == nil {
			continue
		}
		var sum units.Watts
		for _, w := range est {
			sum += w
		}
		if math.Abs(float64(sum-run.Ticks[i].Power)) > 1e-6 {
			t.Fatalf("tick %d: sum %v != power %v", i, sum, run.Ticks[i].Power)
		}
	}
}

func TestPowerAPIStableOnSmallMachine(t *testing.T) {
	// Below the many-core threshold the pathology never fires: attribution
	// should be sane (roughly CPU-time-like) for a same-size pair.
	_, ests := simulatePair(t, cpumodel.SmallIntel(), "fibonacci", "matrixprod", 3, NewPowerAPI(DefaultPowerAPIConfig()), 7)
	last := ests[len(ests)-1]
	if last == nil {
		t.Fatal("no final estimate")
	}
	share0 := float64(last["p0"]) / float64(last["p0"]+last["p1"])
	if share0 < 0.25 || share0 > 0.75 {
		t.Errorf("share of p0 = %.2f, want sane attribution on small machine", share0)
	}
}

func TestPowerAPIInstabilityOnDahu(t *testing.T) {
	// With instability probability 1 on a many-core machine the fit is
	// degenerate: strongly lopsided attribution with a small floor share.
	cfg := DefaultPowerAPIConfig()
	cfg.InstabilityProb = 1
	_, ests := simulatePair(t, cpumodel.Dahu(), "float64", "matrixprod", 8, NewPowerAPI(cfg), 3)
	last := ests[len(ests)-1]
	if last == nil {
		t.Fatal("no final estimate")
	}
	share0 := float64(last["p0"]) / float64(last["p0"]+last["p1"])
	lop := math.Max(share0, 1-share0)
	if math.Abs(lop-0.9) > 1e-9 {
		t.Errorf("degenerate attribution = %.2f/%.2f, want 0.9/0.1", share0, 1-share0)
	}
}

func TestPowerAPIFlipFlopAcrossSeeds(t *testing.T) {
	// Fig 8: two identical runs can attribute 90 % to opposite processes.
	cfg := DefaultPowerAPIConfig()
	cfg.InstabilityProb = 1
	winners := map[string]bool{}
	for seed := int64(0); seed < 16; seed++ {
		_, ests := simulatePair(t, cpumodel.Dahu(), "float64", "matrixprod", 8, NewPowerAPI(cfg), seed)
		last := ests[len(ests)-1]
		if last == nil {
			t.Fatal("no final estimate")
		}
		if last["p0"] > last["p1"] {
			winners["p0"] = true
		} else {
			winners["p1"] = true
		}
	}
	if len(winners) != 2 {
		t.Errorf("winners across 16 seeds = %v, want both processes to win at least once", winners)
	}
}

func TestPowerAPIDeterministicDisablesPathology(t *testing.T) {
	cfg := DefaultPowerAPIConfig()
	cfg.InstabilityProb = 1
	cfg.Deterministic = true
	f := NewPowerAPI(cfg)
	m := f.New(5).(*PowerAPI)
	run, _ := simulatePair(t, cpumodel.Dahu(), "float64", "matrixprod", 8, f, 5)
	Replay(m, run)
	if m.Degenerate() {
		t.Error("deterministic config produced a degenerate fit")
	}
}

func TestPowerAPIContextChangeDropsEstimates(t *testing.T) {
	// When a process arrives mid-run the model must drop estimates and
	// relearn — the paper's "estimation drops occur whenever there is a
	// change in context".
	w0, _ := workload.StressByName("int64")
	w1, _ := workload.StressByName("rand")
	run, err := machine.Simulate(machine.Config{Spec: cpumodel.SmallIntel()}, []machine.Proc{
		{ID: "p0", Workload: w0, Threads: 2},
		{ID: "p1", Workload: w1, Threads: 2, Start: 15 * time.Second},
	}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ests := Replay(NewPowerAPI(DefaultPowerAPIConfig()).New(1), run)
	tickDur := run.Tick()
	arrival := int(15 * time.Second / tickDur)
	if ests[arrival-1] == nil {
		t.Error("no estimate just before context change")
	}
	if ests[arrival] != nil {
		t.Error("estimate did not drop at context change")
	}
	if ests[len(ests)-1] == nil {
		t.Error("no estimate after relearning")
	}
}

func TestRidgeFitRecoversWeights(t *testing.T) {
	// y = 3·x0 + 2·x1 with distinguishable features.
	var rows [][4]float64
	var y []float64
	for i := 0; i < 50; i++ {
		x0 := float64(i%7 + 1)
		x1 := float64((i*3)%5 + 1)
		rows = append(rows, [4]float64{x0, x1, 0, 0})
		y = append(y, 3*x0+2*x1)
	}
	w, s := RidgeFit4(rows, y, 1e-9)
	got0 := w[0] / s[0]
	got1 := w[1] / s[1]
	if math.Abs(got0-3) > 0.01 || math.Abs(got1-2) > 0.01 {
		t.Errorf("recovered weights = %.3f, %.3f, want 3, 2", got0, got1)
	}
}

func TestRidgeFitEmptyInput(t *testing.T) {
	w, s := RidgeFit4(nil, nil, 1)
	for d := 0; d < 4; d++ {
		if w[d] != 0 || s[d] != 1 {
			t.Errorf("empty fit weights/scales = %v/%v", w, s)
		}
	}
}

func TestSolve4(t *testing.T) {
	a := [4][4]float64{
		{2, 0, 0, 0},
		{0, 3, 0, 0},
		{1, 0, 4, 0},
		{0, 0, 0, 5},
	}
	b := [4]float64{4, 9, 14, 25}
	x, ok := solve4(a, b)
	if !ok {
		t.Fatal("solve4 failed")
	}
	want := [4]float64{2, 3, 3, 5}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	// Singular system.
	var sing [4][4]float64
	if _, ok := solve4(sing, b); ok {
		t.Error("singular system solved")
	}
}

func TestReplayAlignment(t *testing.T) {
	run, ests := simulatePair(t, cpumodel.SmallIntel(), "int64", "rand", 1, NewScaphandre(), 0)
	if len(ests) != len(run.Ticks) {
		t.Fatalf("Replay returned %d estimates for %d ticks", len(ests), len(run.Ticks))
	}
}

func TestTickFromRecordCarriesObservables(t *testing.T) {
	// Frequency and per-process thread counts must reach the models: the
	// residual-aware model depends on both.
	w, _ := workload.StressByName("int64")
	run, err := machine.Simulate(machine.Config{Spec: cpumodel.SmallIntel()}, []machine.Proc{
		{ID: "p", Workload: w, Threads: 2},
	}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tk := TickFromRecord(run.Ticks[0], run.Roster, run.Tick(), 12)
	if tk.Freq != 3.6*units.GHz {
		t.Errorf("Freq = %v, want 3.6 GHz", tk.Freq)
	}
	if tk.Procs["p"].Threads != 2 {
		t.Errorf("Threads = %d, want 2", tk.Procs["p"].Threads)
	}
	if tk.LogicalCPUs != 12 {
		t.Errorf("LogicalCPUs = %d", tk.LogicalCPUs)
	}
}

package models

import (
	"math"
	"sort"
	"testing"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/machine"
	"powerdiv/internal/units"
)

// TestObserveSegmentMatchesPerTick pins the model-side half of the segment
// engine: for every model (including a map-only fallback that never
// implements SegmentModel), feeding whole segments through
// StreamReplay.ObserveSegment accumulates matrices bit-identical to
// observing the same run tick by tick. The scenario mixes churn, pins,
// quotas and scripted phases so segments genuinely coalesce ticks, and
// alternate segments are marked Degraded to pin the learning-window skips
// (PowerAPI, SmartWatts, WattScope floors) on both paths.
func TestObserveSegmentMatchesPerTick(t *testing.T) {
	defer machine.SetSegmented(machine.SetSegmented(true))
	for _, spec := range []cpumodel.Spec{cpumodel.SmallIntel(), cpumodel.Dahu()} {
		t.Run(spec.Name, func(t *testing.T) {
			cfg := machine.Config{Spec: spec, NoiseStddev: 0.25, Seed: 42}
			mk := func(id, fn string, threads int, start, stop time.Duration) machine.Proc {
				p := pairProcs(t, fn, fn, threads)[0]
				p.ID = id
				p.Start, p.Stop = start, stop
				return p
			}
			quota := mk("c-quota", "matrixprod", 2, 0, 4*time.Second)
			quota.CPUQuota = 0.5
			pinned := mk("d-pin", "rand", 1, 2*time.Second, 0)
			pinned.Pinned = []int{0}
			procs := []machine.Proc{
				mk("a-base", "fibonacci", 2, 0, 0),
				mk("b-late", "int64", 1, 1500*time.Millisecond, 5*time.Second),
				quota,
				pinned,
			}
			const dur = 8 * time.Second

			ids := make([]string, len(procs))
			for i, p := range procs {
				ids[i] = p.ID
			}
			sort.Strings(ids)
			roster := machine.NewRoster(ids)

			factories := []Factory{
				NewScaphandre(),
				NewKepler(),
				NewPowerAPI(DefaultPowerAPIConfig()),
				NewSmartWatts(DefaultSmartWattsConfig()),
				NewF2(map[string]units.Watts{"a-base": 3, "b-late": 5, "c-quota": 2, "d-pin": 4}),
				NewWattScope(),
				NewResidualAwareFromSpec(spec),
				NewOracle(),
				{Name: "maponly", New: func(int64) Model { return mapOnlyModel{} }},
			}
			const seed = int64(7)
			segModels := make([]Model, len(factories))
			tickModels := make([]Model, len(factories))
			for i, f := range factories {
				segModels[i] = f.New(seed)
				tickModels[i] = f.New(seed)
			}
			// Undersized slabs (capTicks 4) force the growth path on both.
			segReplay := NewStreamReplay(roster, segModels, 4)
			tickReplay := NewStreamReplay(roster, tickModels, 4)

			tick := cfg.TickInterval()
			logical := spec.Topology.LogicalCPUs()
			scratch := make([]ProcSample, roster.Len())
			base := Tick{Interval: tick, LogicalCPUs: logical, Roster: roster, Samples: scratch}
			segIdx := 0
			segments := 0
			var ticks int
			_, err := machine.StreamSegments(cfg, procs, dur, func(seg *machine.Segment) error {
				for slot := range scratch {
					pt := seg.Rec.Procs[slot]
					scratch[slot] = ProcSample{
						CPUTime:    pt.CPUTime,
						Counters:   pt.Counters,
						Threads:    pt.Threads,
						TrueActive: pt.ActivePower,
					}
				}
				base.Freq = seg.Rec.Freq
				base.Degraded = segIdx%2 == 1
				segIdx++
				segments++
				ticks += seg.Ticks()

				st := SegmentTicks{Tick: base, Powers: seg.Powers}
				st.Tick.At = seg.Rec.At
				st.Tick.MachinePower = seg.Powers[0]
				segReplay.ObserveSegment(&st)

				for i := range seg.Powers {
					pt := base
					pt.At = seg.At(i)
					pt.MachinePower = seg.Powers[i]
					tickReplay.Observe(pt)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if segments >= ticks {
				t.Fatalf("scenario produced %d segments over %d ticks — nothing coalesced", segments, ticks)
			}
			if segReplay.Ticks() != ticks || tickReplay.Ticks() != ticks {
				t.Fatalf("replays saw %d/%d ticks, want %d", segReplay.Ticks(), tickReplay.Ticks(), ticks)
			}
			for m, f := range factories {
				want := tickReplay.Estimates(m)
				got := segReplay.Estimates(m)
				if got.Ticks() != want.Ticks() || len(got.Slab) != len(want.Slab) {
					t.Fatalf("%s: matrix shape %d×%d, want %d×%d",
						f.Name, got.Ticks(), len(got.Slab), want.Ticks(), len(want.Slab))
				}
				for i := range want.OK {
					if got.OK[i] != want.OK[i] {
						t.Fatalf("%s: tick %d OK %v, want %v", f.Name, i, got.OK[i], want.OK[i])
					}
				}
				for i := range want.Slab {
					if math.Float64bits(float64(got.Slab[i])) != math.Float64bits(float64(want.Slab[i])) {
						t.Fatalf("%s: slab[%d] = %v, want %v", f.Name, i, got.Slab[i], want.Slab[i])
					}
				}
			}
		})
	}
}

package models

import (
	"math"
	"testing"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/units"
)

func raTick(power units.Watts, freq units.Hertz, procs map[string]ProcSample) Tick {
	return Tick{
		At:           time.Second,
		Interval:     100 * time.Millisecond,
		MachinePower: power,
		LogicalCPUs:  12,
		Freq:         freq,
		Procs:        procs,
	}
}

func raSample(cores float64, threads int) ProcSample {
	return ProcSample{
		CPUTime: units.CPUTime(time.Duration(cores * 100 * float64(time.Millisecond))),
		Threads: threads,
	}
}

func TestResidualAwareEqualDutyMatchesCPUShare(t *testing.T) {
	// Uncapped processes (duty 1 everywhere): identical to Scaphandre.
	f := NewResidualAwareFromSpec(cpumodel.SmallIntel())
	m := f.New(0)
	in := raTick(57.3, 3.6*units.GHz, map[string]ProcSample{
		"a": raSample(2, 2),
		"b": raSample(1, 1),
	})
	got := m.Observe(in)
	want := NewScaphandre().New(0).Observe(in)
	for id := range want {
		if math.Abs(float64(got[id]-want[id])) > 1e-9 {
			t.Errorf("%s: %v, want %v (CPU share)", id, got[id], want[id])
		}
	}
}

func TestResidualAwareCappedProcessPaysLess(t *testing.T) {
	// §IV-B setting: a 50 %-capped 2-thread process against an uncapped
	// 2-thread process. Under CPU-time division the capped one gets 1/3;
	// residual-aware removes the residual it did not cause.
	f := NewResidualAwareFromSpec(cpumodel.SmallIntel())
	m := f.New(0)
	spec := cpumodel.SmallIntel()
	// Machine: idle 8 + R(3.6)=28 (uncapped draws it fully) + active
	// (capped 2×6×0.5=6, uncapped 2×6=12) = 54 W.
	in := raTick(54, 3.6*units.GHz, map[string]ProcSample{
		"capped":   raSample(1, 2), // 2 threads at 50 % = 1 core
		"uncapped": raSample(2, 2),
	})
	got := m.Observe(in)
	scaph := NewScaphandre().New(0).Observe(in)
	if float64(got["capped"]) >= float64(scaph["capped"]) {
		t.Errorf("residual-aware capped share %v not below CPU share %v", got["capped"], scaph["capped"])
	}
	// Decomposition check: active = 54 − 8 − 28 = 18; capped weight =
	// 18×(1/3) + 0 = 6, uncapped = 12 + 28×0.5 = 26; capped share = 6/32.
	wantCapped := 54 * 6.0 / 32.0
	if math.Abs(float64(got["capped"])-wantCapped) > 1e-9 {
		t.Errorf("capped = %v, want %.3f", got["capped"], wantCapped)
	}
	_ = spec
}

func TestResidualAwareIdleTick(t *testing.T) {
	f := NewResidualAwareFromSpec(cpumodel.SmallIntel())
	m := f.New(0)
	if got := m.Observe(raTick(8, 0, map[string]ProcSample{"a": {}})); got != nil {
		t.Errorf("idle tick = %v, want nil", got)
	}
}

func TestResidualAwareEstimatesSumToPower(t *testing.T) {
	f := NewResidualAwareFromSpec(cpumodel.Dahu())
	m := f.New(0)
	in := raTick(170, 2.1*units.GHz, map[string]ProcSample{
		"a": raSample(8, 8),
		"b": raSample(4, 8), // capped to 50 %
		"c": raSample(16, 16),
	})
	got := m.Observe(in)
	var sum units.Watts
	for _, w := range got {
		sum += w
	}
	if math.Abs(float64(sum-170)) > 1e-9 {
		t.Errorf("sum = %v, want 170", sum)
	}
}

func TestResidualAwareUnknownFreqUsesBase(t *testing.T) {
	f := NewResidualAwareFromSpec(cpumodel.SmallIntel())
	m := f.New(0)
	in := raTick(54, 0, map[string]ProcSample{
		"capped":   raSample(1, 2),
		"uncapped": raSample(2, 2),
	})
	withBase := m.Observe(in)
	in.Freq = 3.6 * units.GHz
	explicit := f.New(0).Observe(in)
	for id := range explicit {
		if math.Abs(float64(withBase[id]-explicit[id])) > 1e-9 {
			t.Errorf("%s: %v vs %v", id, withBase[id], explicit[id])
		}
	}
}

func TestResidualAwareThreadlessFallback(t *testing.T) {
	// Without thread counts, duty falls back to min(1, utilization): a
	// 2-core process reads as duty 1.
	f := NewResidualAwareFromSpec(cpumodel.SmallIntel())
	m := f.New(0)
	in := raTick(57.3, 3.6*units.GHz, map[string]ProcSample{
		"a": {CPUTime: units.CPUTime(200 * time.Millisecond)},
		"b": {CPUTime: units.CPUTime(200 * time.Millisecond)},
	})
	got := m.Observe(in)
	if got == nil {
		t.Fatal("no estimate")
	}
	if math.Abs(float64(got["a"]-got["b"])) > 1e-9 {
		t.Errorf("equal threadless procs split unevenly: %v", got)
	}
}

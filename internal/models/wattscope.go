package models

import (
	"math"

	"powerdiv/internal/units"
)

// WattScope is a non-intrusive disaggregation model in the style of
// WattScope (arXiv 2309.12612): it estimates per-process power from the
// signals a datacenter operator actually has — the machine-level power
// reading and coarse per-process utilization — with no per-zone RAPL
// access, no performance counters and no calibration runs against isolated
// baselines.
//
// Two ideas carry the method:
//
//   - an online static-power estimate: the running minimum of the machine
//     power observed so far approximates the machine's load-independent
//     floor (idle plus baseline residual), the way WattScope learns a
//     machine's static draw from its power history rather than from a
//     calibration phase;
//   - coarse utilization shares: per-process CPU utilization quantized to
//     Quantum-sized steps (default 5%), modelling the low-resolution
//     utilization telemetry fleets collect, divides the dynamic part
//     (power above the learned floor) while the static part is split
//     evenly among the processes present.
//
// The output stays F1-shaped — per-tick estimates sum to the machine
// power — so it scores directly against the intrusive models in the same
// error tables. Degraded ticks are still divided (the share weights span
// the same interval as the power reading) but are excluded from floor
// learning, where a coalesced multi-period reading would corrupt the
// minimum for every later tick.
type WattScope struct {
	// quantum is the utilization quantization step in [0, 1].
	quantum float64
	// floor is the running minimum machine power; primed marks whether any
	// non-degraded tick has seeded it yet.
	floor  float64
	primed bool
	keys   keyCache
	// slotUtils is the segment path's per-slot coarse-utilization scratch.
	slotUtils []float64
}

// DefaultUtilQuantum is the coarse-utilization step: 5%, the granularity
// of typical fleet utilization telemetry.
const DefaultUtilQuantum = 0.05

// NewWattScope returns a wattscope-model factory. The model is
// deterministic, so the seed is ignored.
func NewWattScope() Factory {
	return Factory{Name: "wattscope", Fingerprint: "wattscope/v1", New: func(int64) Model {
		return &WattScope{quantum: DefaultUtilQuantum}
	}}
}

// Name returns "wattscope".
func (m *WattScope) Name() string { return "wattscope" }

// learnFloor advances the static-power estimate with one tick's machine
// reading. Called exactly once per tick from every entry point.
func (m *WattScope) learnFloor(t Tick) { m.learnFloorPower(t.Degraded, float64(t.MachinePower)) }

func (m *WattScope) learnFloorPower(degraded bool, p float64) {
	if degraded {
		return
	}
	if !m.primed || p < m.floor {
		m.floor = p
		m.primed = true
	}
}

// staticPower returns the portion of the tick's machine power attributed
// to the load-independent floor. Before the first non-degraded tick primes
// the floor the whole reading counts as static (dynamic share zero), which
// keeps degraded-only prefixes finite.
func (m *WattScope) staticPower(power float64) float64 {
	if !m.primed {
		return power
	}
	return math.Min(m.floor, power)
}

// coarseUtil quantizes one process's utilization over the interval:
// CPU-seconds per wall-second (a multi-threaded process can exceed 1),
// rounded to the nearest quantum step.
func (m *WattScope) coarseUtil(cpu units.CPUTime, t Tick) float64 {
	iv := t.Interval.Seconds()
	if iv <= 0 {
		return 0
	}
	u := cpu.Seconds() / iv
	if u < 0 {
		u = 0
	}
	if m.quantum <= 0 {
		return u
	}
	return math.Round(u/m.quantum) * m.quantum
}

// Observe divides the tick's machine power: floor split evenly, the rest
// by coarse-utilization share.
func (m *WattScope) Observe(t Tick) map[string]units.Watts {
	m.learnFloor(t)
	procs := t.ProcsView()
	if len(procs) == 0 {
		return nil
	}
	ids, _ := m.keys.sorted(procs)
	power := float64(t.MachinePower)
	static := m.staticPower(power)
	dynamic := power - static
	var totalUtil float64
	for _, id := range ids {
		totalUtil += m.coarseUtil(procs[id].CPUTime, t)
	}
	if totalUtil <= 0 {
		// Every present process quantized to zero utilization: nothing to
		// apportion the dynamic part by, so the whole reading is split
		// evenly like the floor.
		static, dynamic = power, 0
	}
	perProc := static / float64(len(ids))
	out := make(map[string]units.Watts, len(ids))
	for _, id := range ids {
		est := perProc
		if dynamic > 0 {
			est += dynamic * m.coarseUtil(procs[id].CPUTime, t) / totalUtil
		}
		out[id] = units.Watts(est)
	}
	return out
}

// ObserveInto is the dense path of Observe. Present slots appear in
// roster order — sorted-ID order — so the utilization total accumulates
// exactly as the map path's and the two are bit-identical.
func (m *WattScope) ObserveInto(t Tick, out []units.Watts) bool {
	m.learnFloor(t)
	present := 0
	var totalUtil float64
	for _, p := range t.Samples {
		if p.Present() {
			present++
			totalUtil += m.coarseUtil(p.CPUTime, t)
		}
	}
	if present == 0 {
		return false
	}
	power := float64(t.MachinePower)
	static := m.staticPower(power)
	dynamic := power - static
	if totalUtil <= 0 {
		static, dynamic = power, 0
	}
	perProc := static / float64(present)
	for i, p := range t.Samples {
		if !p.Present() {
			out[i] = 0
			continue
		}
		est := perProc
		if dynamic > 0 {
			est += dynamic * m.coarseUtil(p.CPUTime, t) / totalUtil
		}
		out[i] = units.Watts(est)
	}
	return true
}

package protocol

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"powerdiv/internal/machine"
	"powerdiv/internal/units"
)

// DiskCache is the persistent tier under the in-memory summary cache: solo
// run digests, content-addressed by the same runKey the memory tiers use,
// survive process restarts. A cold process (a fresh benchmark iteration, a
// restarted campaign service, a re-invoked CLI) replays phase 1 from disk
// instead of re-simulating every baseline.
//
// Layout: one file per digest under dir, named by the FNV-64a hash of the
// full runKey. Each file carries a magic+version header, an echo of the
// full key (hash collisions and stale keys read as misses, never as wrong
// data), the binary summary payload, and a trailing FNV-64a checksum of
// everything before it. Files are written to a temp name and renamed into
// place — the same atomicity idiom as the campaign service's snapshots —
// so readers never observe a partial write. Any file that fails validation
// is deleted and treated as a miss: the cache self-heals from truncation,
// corruption, or format changes at the cost of one re-simulation.
type DiskCache struct {
	dir      string
	maxBytes int64

	mu     sync.Mutex
	hits   uint64
	misses uint64
	writes uint64
}

const (
	diskMagic   = "PDSC"
	diskVersion = uint32(1)
)

// DefaultDiskCacheBytes caps the on-disk footprint at 256 MB — thousands of
// solo digests — unless the caller picks a budget.
const DefaultDiskCacheBytes int64 = 256 << 20

// OpenDiskCache opens (creating if needed) a persistent summary cache
// rooted at dir, evicting oldest files when the directory exceeds maxBytes
// (non-positive means DefaultDiskCacheBytes).
func OpenDiskCache(dir string, maxBytes int64) (*DiskCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("protocol: empty disk cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("protocol: disk cache: %w", err)
	}
	if maxBytes <= 0 {
		maxBytes = DefaultDiskCacheBytes
	}
	return &DiskCache{dir: dir, maxBytes: maxBytes}, nil
}

// Dir returns the cache's root directory.
func (d *DiskCache) Dir() string { return d.dir }

// Stats reports hits, misses and writes since the cache was opened.
func (d *DiskCache) Stats() (hits, misses, writes uint64) { return d.counters() }

func (d *DiskCache) counters() (uint64, uint64, uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hits, d.misses, d.writes
}

// path maps a runKey to its cache file.
func (d *DiskCache) path(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return filepath.Join(d.dir, strconv.FormatUint(h.Sum64(), 16)+".pds")
}

// load reads and validates the digest stored for key. Every failure mode —
// missing file, short read, bad magic, version or key mismatch, checksum
// mismatch, malformed payload — is a miss; invalid files are deleted so
// they are not re-parsed on every lookup.
func (d *DiskCache) load(key string) (*RunSummary, bool) {
	p := d.path(key)
	raw, err := os.ReadFile(p)
	if err != nil {
		d.miss()
		return nil, false
	}
	sum, err := decodeSummary(raw, key)
	if err != nil {
		os.Remove(p)
		d.miss()
		return nil, false
	}
	d.mu.Lock()
	d.hits++
	d.mu.Unlock()
	obsDiskHits.Inc()
	return sum, true
}

func (d *DiskCache) miss() {
	d.mu.Lock()
	d.misses++
	d.mu.Unlock()
	obsDiskMisses.Inc()
}

// store writes the digest for key atomically and enforces the byte cap.
// Failures are silent by design: the disk tier is an accelerator, and a
// full or read-only disk must never fail a campaign.
func (d *DiskCache) store(key string, sum *RunSummary) {
	raw := encodeSummary(key, sum)
	tmp, err := os.CreateTemp(d.dir, "pds-*.tmp")
	if err != nil {
		return
	}
	_, werr := tmp.Write(raw)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), d.path(key)); err != nil {
		os.Remove(tmp.Name())
		return
	}
	d.mu.Lock()
	d.writes++
	d.mu.Unlock()
	obsDiskWrites.Inc()
	d.evict()
}

// evict removes oldest-modified cache files until the directory fits the
// byte cap. Serialized on the cache lock so concurrent stores do not race
// the directory walk.
func (d *DiskCache) evict() {
	d.mu.Lock()
	defer d.mu.Unlock()
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	type fileAge struct {
		path string
		size int64
		mod  time.Time
	}
	var files []fileAge
	var total int64
	for _, ent := range entries {
		if ent.IsDir() || filepath.Ext(ent.Name()) != ".pds" {
			continue
		}
		fi, err := ent.Info()
		if err != nil {
			continue
		}
		files = append(files, fileAge{filepath.Join(d.dir, ent.Name()), fi.Size(), fi.ModTime()})
		total += fi.Size()
	}
	if total <= d.maxBytes {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod.Before(files[j].mod) })
	for _, f := range files {
		if total <= d.maxBytes {
			break
		}
		if os.Remove(f.path) == nil {
			total -= f.size
		}
	}
}

// Binary encoding. All integers are little-endian; floats travel as their
// IEEE-754 bit patterns, so a round-trip reproduces every value exactly and
// warm-from-disk campaigns stay bit-identical to cold ones.

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func encodeSummary(key string, s *RunSummary) []byte {
	b := make([]byte, 0, 256+len(key)+8*(len(s.Power)*3+len(s.CPUTime)+len(s.TotalCPU)+len(s.TotalActive)))
	b = append(b, diskMagic...)
	b = appendU32(b, diskVersion)
	b = appendStr(b, key)

	ids := s.Roster.IDs()
	b = appendU32(b, uint32(len(ids)))
	for _, id := range ids {
		b = appendStr(b, id)
	}
	b = appendU64(b, uint64(s.Tick))
	b = appendU64(b, uint64(s.Ticks))
	b = appendU64(b, uint64(s.Duration))
	// ProcEnd in sorted-key order: the encoding is deterministic, so equal
	// summaries produce byte-equal files.
	ends := make([]string, 0, len(s.ProcEnd))
	for id := range s.ProcEnd {
		ends = append(ends, id)
	}
	sort.Strings(ends)
	b = appendU32(b, uint32(len(ends)))
	for _, id := range ends {
		b = appendStr(b, id)
		b = appendU64(b, uint64(s.ProcEnd[id]))
	}
	for _, fs := range [][]float64{s.Power, s.TruePower, s.ResidIdle} {
		b = appendU32(b, uint32(len(fs)))
		for _, f := range fs {
			b = appendU64(b, math.Float64bits(f))
		}
	}
	b = appendU32(b, uint32(len(s.CPUTime)))
	for _, c := range s.CPUTime {
		b = appendU64(b, uint64(c))
	}
	b = appendU32(b, uint32(len(s.TotalCPU)))
	for _, c := range s.TotalCPU {
		b = appendU64(b, uint64(c))
	}
	b = appendU32(b, uint32(len(s.TotalActive)))
	for _, f := range s.TotalActive {
		b = appendU64(b, math.Float64bits(f))
	}

	h := fnv.New64a()
	h.Write(b)
	return appendU64(b, h.Sum64())
}

// decoder is a bounds-checked cursor over an encoded summary.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) str() string {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+n > len(d.b) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("protocol: truncated disk cache entry")
	}
}

// checkedLen validates a slice-length prefix against the bytes actually
// remaining (elemSize bytes per element), so a corrupted length cannot
// drive a huge allocation.
func (d *decoder) checkedLen(elemSize int) int {
	n := int(d.u32())
	if d.err != nil {
		return 0
	}
	if n < 0 || d.off+n*elemSize > len(d.b) {
		d.fail()
		return 0
	}
	return n
}

func decodeSummary(raw []byte, key string) (*RunSummary, error) {
	if len(raw) < len(diskMagic)+4+8 {
		return nil, fmt.Errorf("protocol: disk cache entry too short")
	}
	body, sumBytes := raw[:len(raw)-8], raw[len(raw)-8:]
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != binary.LittleEndian.Uint64(sumBytes) {
		return nil, fmt.Errorf("protocol: disk cache checksum mismatch")
	}
	if string(body[:len(diskMagic)]) != diskMagic {
		return nil, fmt.Errorf("protocol: disk cache bad magic")
	}
	d := &decoder{b: body, off: len(diskMagic)}
	if v := d.u32(); v != diskVersion {
		return nil, fmt.Errorf("protocol: disk cache version %d (want %d)", v, diskVersion)
	}
	if echo := d.str(); d.err != nil || echo != key {
		// Hash collision or stale key: not this run's data.
		return nil, fmt.Errorf("protocol: disk cache key mismatch")
	}

	nIDs := d.checkedLen(4)
	ids := make([]string, nIDs)
	for i := range ids {
		ids[i] = d.str()
	}
	s := &RunSummary{}
	s.Tick = time.Duration(d.u64())
	s.Ticks = int(int64(d.u64()))
	s.Duration = time.Duration(d.u64())
	nEnds := d.checkedLen(12)
	procEnd := make(map[string]time.Duration, nEnds)
	for i := 0; i < nEnds; i++ {
		id := d.str()
		procEnd[id] = time.Duration(d.u64())
	}
	s.ProcEnd = procEnd
	for _, dst := range []*[]float64{&s.Power, &s.TruePower, &s.ResidIdle} {
		n := d.checkedLen(8)
		fs := make([]float64, n)
		for i := range fs {
			fs[i] = math.Float64frombits(d.u64())
		}
		*dst = fs
	}
	n := d.checkedLen(8)
	cpu := make([]units.CPUTime, n)
	for i := range cpu {
		cpu[i] = units.CPUTime(d.u64())
	}
	s.CPUTime = cpu
	n = d.checkedLen(8)
	tot := make([]units.CPUTime, n)
	for i := range tot {
		tot[i] = units.CPUTime(d.u64())
	}
	s.TotalCPU = tot
	n = d.checkedLen(8)
	ta := make([]float64, n)
	for i := range ta {
		ta[i] = math.Float64frombits(d.u64())
	}
	s.TotalActive = ta
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("protocol: disk cache trailing bytes")
	}
	if s.Ticks < 0 || len(s.CPUTime) != s.Ticks*len(ids) ||
		len(s.TotalCPU) != len(ids) || len(s.TotalActive) != len(ids) ||
		len(s.Power) != s.Ticks || len(s.TruePower) != s.Ticks || len(s.ResidIdle) != s.Ticks {
		return nil, fmt.Errorf("protocol: disk cache inconsistent shape")
	}
	s.Roster = machine.NewRoster(ids)
	return s, nil
}

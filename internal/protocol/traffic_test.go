package protocol

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/division"
	"powerdiv/internal/models"
)

// trafficTestWindow is the scenario duration for the hand-built campaigns.
const trafficTestWindow = 10 * time.Second

// trafficScenarios hand-builds three churn-heavy timed rosters. (The
// traffic generator lives downstream of this package — it imports protocol
// — so these tests construct AppSpecs with StartAt/StopAt/BaseID inline.)
func trafficScenarios(t *testing.T) []Scenario {
	t.Helper()
	mk := func(fn string, threads, seq int, start, stop time.Duration) AppSpec {
		a, err := StressApp(fn, threads)
		if err != nil {
			t.Fatal(err)
		}
		a.BaseID = a.ID
		a.ID = fmt.Sprintf("%s.%02d", a.ID, seq)
		a.StartAt, a.StopAt = start, stop
		return a
	}
	return []Scenario{
		// Steady baseload with arrivals and a mid-run exit; two instances
		// share the fibonacci-1 baseline.
		{Apps: []AppSpec{
			mk("fibonacci", 1, 0, 0, 0),
			mk("int64", 1, 0, 0, 0),
			mk("matrixprod", 2, 0, 2*time.Second, 6*time.Second),
			mk("rand", 1, 0, 5*time.Second, 0),
			mk("fibonacci", 1, 1, 7*time.Second, 9*time.Second),
		}},
		// Idle gap mid-run: everything exits by 5 s, late arrivals restart
		// the machine at 8 s. Exercises busy-tick accounting and the
		// simulator's refusal to early-exit before all starts.
		{Apps: []AppSpec{
			mk("fibonacci", 2, 0, 0, 4*time.Second),
			mk("matrixprod", 1, 0, 0, 5*time.Second),
			mk("int64", 2, 0, 8*time.Second, 0),
			mk("rand", 1, 0, 8500*time.Millisecond, 0),
		}},
		// Heavy same-type churn: four staggered fibonacci-1 instances all
		// sharing one baseline.
		{Apps: []AppSpec{
			mk("fibonacci", 1, 0, 0, 0),
			mk("fibonacci", 1, 1, time.Second, 4*time.Second),
			mk("fibonacci", 1, 2, 3*time.Second, 8*time.Second),
			mk("fibonacci", 1, 3, 6*time.Second, 0),
			mk("int64", 1, 0, 0, 0),
		}},
	}
}

func trafficGoldenSetup(t *testing.T) (Context, []Scenario, func(map[string]division.Baseline) []models.Factory) {
	t.Helper()
	spec := cpumodel.SmallIntel()
	ctx := goldenContext(spec, false)
	factories := func(baselines map[string]division.Baseline) []models.Factory {
		return goldenFactories(baselines, spec)
	}
	return ctx, trafficScenarios(t), factories
}

func compareTrafficEvaluations(t *testing.T, model string, want, got TrafficEvaluation) {
	t.Helper()
	label := fmt.Sprintf("%s on %q", model, want.Scenario.Label())
	if math.Float64bits(want.AE) != math.Float64bits(got.AE) {
		t.Errorf("%s: AE %v != %v", label, want.AE, got.AE)
	}
	if math.Float64bits(want.Coverage) != math.Float64bits(got.Coverage) {
		t.Errorf("%s: Coverage %v != %v", label, want.Coverage, got.Coverage)
	}
	if want.BusyTicks != got.BusyTicks {
		t.Errorf("%s: BusyTicks %d != %d", label, want.BusyTicks, got.BusyTicks)
	}
	if want.ScoredTicks != got.ScoredTicks {
		t.Errorf("%s: ScoredTicks %d != %d", label, want.ScoredTicks, got.ScoredTicks)
	}
	if want.Scenario.Label() != got.Scenario.Label() {
		t.Errorf("%s: scenario label mismatch: %q != %q", label, want.Scenario.Label(), got.Scenario.Label())
	}
}

// TestTrafficStreamingMatchesMaterialized is the churn golden test: the
// fused streaming pipeline and the materialized reference score every model
// on every timed scenario bit-identically — AE and Coverage compared via
// Float64bits, tick counts exactly.
func TestTrafficStreamingMatchesMaterialized(t *testing.T) {
	ctx, scenarios, factories := trafficGoldenSetup(t)

	ResetMemoization()
	want, err := EvaluateTraffic(ctx, scenarios, factories, trafficTestWindow)
	if err != nil {
		t.Fatal(err)
	}
	ResetMemoization()
	got, err := EvaluateTrafficStreaming(ctx, scenarios, factories, trafficTestWindow)
	if err != nil {
		t.Fatal(err)
	}

	if len(want) == 0 || len(want) != len(got) {
		t.Fatalf("model sets differ: %d materialized, %d streaming", len(want), len(got))
	}
	for model, wevs := range want {
		gevs, ok := got[model]
		if !ok {
			t.Fatalf("streaming campaign lost model %s", model)
		}
		if len(wevs) != len(gevs) {
			t.Fatalf("%s: %d materialized evaluations, %d streaming", model, len(wevs), len(gevs))
		}
		for i := range wevs {
			compareTrafficEvaluations(t, model, wevs[i], gevs[i])
		}
	}
}

// TestTrafficStreamingDeterministic runs the same campaign twice through
// the streaming pipeline: per-model error tables must be bit-identical —
// the worker pool and factory scheduling must not leak into results.
func TestTrafficStreamingDeterministic(t *testing.T) {
	ctx, scenarios, factories := trafficGoldenSetup(t)

	first, err := EvaluateTrafficStreaming(ctx, scenarios, factories, trafficTestWindow)
	if err != nil {
		t.Fatal(err)
	}
	second, err := EvaluateTrafficStreaming(ctx, scenarios, factories, trafficTestWindow)
	if err != nil {
		t.Fatal(err)
	}
	for model, evs := range first {
		for i := range evs {
			compareTrafficEvaluations(t, model, evs[i], second[model][i])
		}
	}
}

// TestTrafficEvaluationShape pins the churn-scoring semantics: coverage and
// tick counts are consistent, the idle-gap scenario reports fewer busy
// ticks than the window holds, and instance-level truth keys resolve even
// though baselines are shared per type.
func TestTrafficEvaluationShape(t *testing.T) {
	ctx, scenarios, factories := trafficGoldenSetup(t)

	// Shared baselines: far fewer distinct types than instances.
	instances := 0
	for _, s := range scenarios {
		instances += len(s.Apps)
	}
	bases := BaselineAppsOf(scenarios)
	if len(bases) >= instances {
		t.Fatalf("no baseline sharing: %d baseline specs for %d instances", len(bases), instances)
	}
	for _, b := range bases {
		if b.BaseID != "" || b.StartAt != 0 || b.StopAt != 0 {
			t.Fatalf("baseline spec %s kept traffic fields: %+v", b.ID, b)
		}
	}

	results, err := EvaluateTrafficStreaming(ctx, scenarios, factories, trafficTestWindow)
	if err != nil {
		t.Fatal(err)
	}
	totalTicks := int(trafficTestWindow / ctx.Machine.TickInterval())
	for model, evs := range results {
		if len(evs) != len(scenarios) {
			t.Fatalf("%s: %d evaluations for %d scenarios", model, len(evs), len(scenarios))
		}
		for _, ev := range evs {
			if ev.BusyTicks <= 0 || ev.BusyTicks > totalTicks {
				t.Errorf("%s on %q: BusyTicks %d outside (0, %d]", model, ev.Scenario.Label(), ev.BusyTicks, totalTicks)
			}
			if ev.ScoredTicks < 0 || ev.ScoredTicks > ev.BusyTicks {
				t.Errorf("%s on %q: ScoredTicks %d outside [0, %d]", model, ev.Scenario.Label(), ev.ScoredTicks, ev.BusyTicks)
			}
			if ev.Coverage < 0 || ev.Coverage > 1 {
				t.Errorf("%s on %q: Coverage %v outside [0,1]", model, ev.Scenario.Label(), ev.Coverage)
			}
			if ev.ScoredTicks > 0 && (ev.AE < 0 || math.IsNaN(ev.AE)) {
				t.Errorf("%s on %q: AE %v", model, ev.Scenario.Label(), ev.AE)
			}
			// The idle-gap scenario leaves the machine empty from 5 s to
			// 8 s: its busy count must fall short of the full window.
			if strings.HasPrefix(ev.Scenario.Label(), "fibonacci-2.00") && ev.BusyTicks >= totalTicks {
				t.Errorf("%s on %q: idle gap not reflected: BusyTicks %d of %d", model, ev.Scenario.Label(), ev.BusyTicks, totalTicks)
			}
		}
		sum := SummarizeTraffic(model, evs)
		if sum.MeanCoverage < 0 || sum.MeanCoverage > 1 {
			t.Errorf("%s: summary MeanCoverage %v", model, sum.MeanCoverage)
		}
		if sum.MaxAE > 0 && sum.WorstScenario == "" {
			t.Errorf("%s: MaxAE %v without a worst scenario", model, sum.MaxAE)
		}
	}

	// The oracle sees true active powers: it must dominate the naive
	// flat-share models on churn campaigns, not just tie them.
	oracle, ok := results["oracle"]
	if !ok {
		t.Fatal("campaign has no oracle model")
	}
	if s := SummarizeTraffic("oracle", oracle); s.MeanAE > 0.15 {
		t.Errorf("oracle MeanAE %v on churn campaign (want small)", s.MeanAE)
	}
}

// TestTrafficRejectsBadInput pins the error paths: non-positive windows and
// rosters without baselines must fail loudly, not score garbage.
func TestTrafficRejectsBadInput(t *testing.T) {
	ctx, scenarios, factories := trafficGoldenSetup(t)
	if _, err := EvaluateTrafficStreaming(ctx, scenarios, factories, 0); err == nil {
		t.Error("EvaluateTrafficStreaming accepted a zero window")
	}
	if _, err := EvaluateTraffic(ctx, scenarios, factories, -time.Second); err == nil {
		t.Error("EvaluateTraffic accepted a negative window")
	}
}

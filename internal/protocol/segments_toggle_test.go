package protocol

import (
	"context"
	"testing"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/division"
	"powerdiv/internal/machine"
	"powerdiv/internal/models"
)

// TestSegmentToggleInvariance pins the whole-protocol acceptance bar for
// the segment engine: the lab error table, the batched-repetition rows and
// the traffic error table are Float64bits-identical with the engine on and
// off. Memoization is disabled so both runs actually simulate; the
// comparison therefore spans the simulator, the model observers and the
// scoring tail.
func TestSegmentToggleInvariance(t *testing.T) {
	defer machine.SetSegmented(machine.SetSegmented(true))
	EnableMemoization(false)
	defer func() {
		EnableMemoization(true)
		ResetMemoization()
	}()

	spec := cpumodel.SmallIntel()
	ctx := goldenContext(spec, false)
	a0, err := StressApp("fibonacci", 1)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := StressApp("matrixprod", 2)
	if err != nil {
		t.Fatal(err)
	}
	scenarios := []Scenario{
		{Apps: []AppSpec{a0, a1}},
	}
	factories := func(baselines map[string]division.Baseline) []models.Factory {
		return goldenFactories(baselines, spec)
	}

	t.Run("lab", func(t *testing.T) {
		run := func() map[string][]Evaluation {
			ResetMemoization()
			out, err := EvaluateModelsStreaming(ctx, scenarios, factories, ObjectiveActive, 0)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		machine.SetSegmented(false)
		want := run()
		machine.SetSegmented(true)
		got := run()
		if len(got) != len(want) {
			t.Fatalf("%d models with segments, %d without", len(got), len(want))
		}
		for name, wantEvs := range want {
			gotEvs, ok := got[name]
			if !ok || len(gotEvs) != len(wantEvs) {
				t.Fatalf("model %s missing or wrong length", name)
			}
			for i := range wantEvs {
				compareStreamingEvaluations(t, name, wantEvs[i], gotEvs[i])
			}
		}
	})

	t.Run("reps", func(t *testing.T) {
		s := scenarios[0]
		seeds := []int64{11, 42}
		truths := make([][]division.Shares, len(seeds))
		var fs []models.Factory
		for r, seed := range seeds {
			repCtx := ctx
			repCtx.Seed = seed
			baselines := map[string]division.Baseline{}
			for _, app := range s.Apps {
				b, err := MeasureBaselineSummary(repCtx, app)
				if err != nil {
					t.Fatal(err)
				}
				baselines[app.ID] = b
			}
			truths[r], err = scenarioTruths(s, baselines, []Objective{ObjectiveActive, ObjectiveResidualAware}, 0)
			if err != nil {
				t.Fatal(err)
			}
			if fs == nil {
				fs = goldenFactories(baselines, spec)
			}
		}
		run := func() [][][]Evaluation {
			out, err := EvaluateScenarioRepsStreaming(context.Background(), ctx, s, fs, truths, seeds)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		machine.SetSegmented(false)
		want := run()
		machine.SetSegmented(true)
		got := run()
		for r := range want {
			for f := range want[r] {
				for o := range want[r][f] {
					compareStreamingEvaluations(t, fs[f].Name, want[r][f][o], got[r][f][o])
				}
			}
		}
	})

	t.Run("traffic", func(t *testing.T) {
		tctx, tscenarios, tfactories := trafficGoldenSetup(t)
		run := func() map[string][]TrafficEvaluation {
			out, err := EvaluateTrafficStreaming(tctx, tscenarios, tfactories, trafficTestWindow)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		machine.SetSegmented(false)
		want := run()
		machine.SetSegmented(true)
		got := run()
		if len(got) != len(want) {
			t.Fatalf("%d models with segments, %d without", len(got), len(want))
		}
		for name, wantEvs := range want {
			gotEvs, ok := got[name]
			if !ok || len(gotEvs) != len(wantEvs) {
				t.Fatalf("model %s missing or wrong length", name)
			}
			for i := range wantEvs {
				compareTrafficEvaluations(t, name, wantEvs[i], gotEvs[i])
			}
		}
	})
}

package protocol

import (
	"math"
	"strings"
	"testing"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/division"
	"powerdiv/internal/machine"
	"powerdiv/internal/models"
	"powerdiv/internal/units"
	"powerdiv/internal/workload"
)

func labSmall() Context {
	return DefaultContext(machine.Config{Spec: cpumodel.SmallIntel(), NoiseStddev: 0.25, Seed: 1})
}

func prodSmall() Context {
	return DefaultContext(machine.Config{
		Spec:           cpumodel.SmallIntel(),
		Hyperthreading: true,
		Turbo:          true,
		NoiseStddev:    0.25,
		Seed:           1,
	})
}

func mustStressApp(t *testing.T, fn string, threads int) AppSpec {
	t.Helper()
	a, err := StressApp(fn, threads)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestMeasureIdle(t *testing.T) {
	got, err := MeasureIdle(labSmall())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(got)-8) > 0.01 {
		t.Errorf("idle = %v, want 8", got)
	}
}

func TestMeasureBaselineDecomposition(t *testing.T) {
	ctx := labSmall()
	app := mustStressApp(t, "matrixprod", 3)
	b, run, err := MeasureBaseline(ctx, app)
	if err != nil {
		t.Fatal(err)
	}
	if run == nil {
		t.Fatal("nil run")
	}
	// Total = idle 8 + residual 28 + 3×7.1 = 57.3; paper-R = 36.
	if math.Abs(float64(b.Total)-57.3) > 0.01 {
		t.Errorf("Total = %v, want 57.3", b.Total)
	}
	if math.Abs(float64(b.Residual)-36) > 0.01 {
		t.Errorf("Residual = %v, want 36 (idle included)", b.Residual)
	}
	if math.Abs(float64(b.Active())-21.3) > 0.01 {
		t.Errorf("Active = %v, want 21.3", b.Active())
	}
	if math.Abs(b.Cores-3) > 0.01 {
		t.Errorf("Cores = %v, want 3", b.Cores)
	}
}

func TestMeasureBaselineCapped(t *testing.T) {
	// §IV-B: a 50 %-capped pinned stress shows roughly half the load
	// residual of an uncapped one.
	ctx := labSmall()
	app := mustStressApp(t, "int64", 2)
	app.CPUQuota = 0.5
	app.Pinned = []int{0, 1}
	app.ID = "int64-2-capped"
	b, _, err := MeasureBaseline(ctx, app)
	if err != nil {
		t.Fatal(err)
	}
	// Residual (paper def) = idle 8 + 0.5×28 = 22 vs uncapped 36.
	if math.Abs(float64(b.Residual)-22) > 0.01 {
		t.Errorf("capped Residual = %v, want 22", b.Residual)
	}
	if math.Abs(b.Cores-1) > 0.01 {
		t.Errorf("capped Cores = %v, want 1", b.Cores)
	}
}

func TestEstimateResidualMatchesGroundTruth(t *testing.T) {
	// The paper's indirect construction (linear fit of the load curve)
	// must agree with the simulator's ground truth: idle 8 + R(3.6) 28.
	ctx := labSmall()
	probe, _ := workload.StressByName("int64")
	got, err := EstimateResidual(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(got)-36) > 1.0 {
		t.Errorf("estimated R = %v, want ≈36", got)
	}
}

func TestEvaluatePairOracleIsNearPerfect(t *testing.T) {
	ctx := labSmall()
	s := Scenario{Apps: []AppSpec{
		mustStressApp(t, "fibonacci", 3),
		mustStressApp(t, "matrixprod", 3),
	}}
	baselines, err := MeasureBaselines(ctx, s.Apps)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := EvaluatePair(ctx, s, models.NewOracle(), baselines, ObjectiveActive, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ev.AE > 0.005 {
		t.Errorf("oracle AE = %.4f, want ≈0", ev.AE)
	}
	// Ratio point sits on y = x.
	if math.Abs(ev.Point.X-ev.Point.Y) > 1.5 {
		t.Errorf("oracle ratio point (%.1f, %.1f) off the diagonal", ev.Point.X, ev.Point.Y)
	}
}

func TestEvaluatePairScaphandreWorstPair(t *testing.T) {
	// §IV-A: the maximum error on SMALL INTEL is ≈11.7 %, for FIBONACCI
	// against a top consumer.
	ctx := labSmall()
	s := Scenario{Apps: []AppSpec{
		mustStressApp(t, "fibonacci", 3),
		mustStressApp(t, "matrixprod", 3),
	}}
	baselines, err := MeasureBaselines(ctx, s.Apps)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := EvaluatePair(ctx, s, models.NewScaphandre(), baselines, ObjectiveActive, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ev.AE < 0.10 || ev.AE > 0.13 {
		t.Errorf("fibonacci/matrixprod AE = %.4f, want ≈0.117", ev.AE)
	}
	// Scaphandre splits equal CPU time 50/50: estimated ratio ≈0.
	if math.Abs(ev.Point.Y) > 3 {
		t.Errorf("estimated ratio %.1f, want ≈0 for same-size pair", ev.Point.Y)
	}
	// Objective ratio is far from 0 (fibonacci ≪ matrixprod).
	if ev.Point.X < 20 {
		t.Errorf("objective ratio %.1f, want ≫ 0", ev.Point.X)
	}
}

func TestEvaluatePairF2IsNearPerfect(t *testing.T) {
	// The F2 reference model preserves baseline ratios by construction, so
	// under Eq 3 scoring on a lab-context machine it should be near 0.
	ctx := labSmall()
	s := Scenario{Apps: []AppSpec{
		mustStressApp(t, "fibonacci", 3),
		mustStressApp(t, "matrixprod", 3),
	}}
	baselines, err := MeasureBaselines(ctx, s.Apps)
	if err != nil {
		t.Fatal(err)
	}
	base := map[string]units.Watts{}
	for id, b := range baselines {
		base[id] = b.ActivePerCore()
	}
	f2 := models.NewF2(base)
	ev, err := EvaluatePair(ctx, s, f2, baselines, ObjectiveActive, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ev.AE > 0.01 {
		t.Errorf("F2 AE = %.4f, want ≈0", ev.AE)
	}
}

func TestEvaluatePairErrors(t *testing.T) {
	ctx := labSmall()
	s := Scenario{Apps: []AppSpec{mustStressApp(t, "fibonacci", 3)}}
	if _, err := EvaluatePair(ctx, s, models.NewScaphandre(), nil, ObjectiveActive, 0); err == nil {
		t.Error("single-app scenario accepted")
	}
	pair := Scenario{Apps: []AppSpec{
		mustStressApp(t, "fibonacci", 3),
		mustStressApp(t, "matrixprod", 3),
	}}
	if _, err := EvaluatePair(ctx, pair, models.NewScaphandre(), map[string]division.Baseline{}, ObjectiveActive, 0); err == nil {
		t.Error("missing baselines accepted")
	}
	if _, err := EvaluatePair(ctx, pair, models.NewScaphandre(), map[string]division.Baseline{
		"fibonacci-3":  {ID: "fibonacci-3", Total: 50, Residual: 36},
		"matrixprod-3": {ID: "matrixprod-3", Total: 57, Residual: 36},
	}, Objective(99), 0); err == nil {
		t.Error("unknown objective accepted")
	}
}

func TestStressPairsGeneration(t *testing.T) {
	fns := []string{"a", "b", "c"}
	// Stress names must exist for StressApp; use real ones.
	fns = []string{"fibonacci", "matrixprod", "queens"}
	scenarios, err := StressPairs(fns, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Same-size: C(3,2)=3 pairs × 2 sizes = 6; diff-size: 3×3 = 9.
	if len(scenarios) != 15 {
		t.Fatalf("generated %d scenarios, want 15", len(scenarios))
	}
	same, diff := 0, 0
	for _, s := range scenarios {
		if len(s.Apps) != 2 {
			t.Fatalf("scenario %q has %d apps", s.Label(), len(s.Apps))
		}
		if s.SameSize() {
			same++
			if s.Apps[0].ID == s.Apps[1].ID {
				t.Errorf("same-size scenario with identical apps: %s", s.Label())
			}
		} else {
			diff++
		}
	}
	if same != 6 || diff != 9 {
		t.Errorf("same/diff = %d/%d, want 6/9", same, diff)
	}
	if _, err := StressPairs([]string{"nosuch"}, []int{1, 1}); err == nil {
		t.Error("unknown stress function accepted")
	}
}

func TestAppsOfDeduplicates(t *testing.T) {
	scenarios, err := StressPairs([]string{"fibonacci", "matrixprod"}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	apps := AppsOf(scenarios)
	// 2 functions × 2 sizes = 4 distinct applications.
	if len(apps) != 4 {
		t.Errorf("AppsOf = %d apps, want 4", len(apps))
	}
	for i := 1; i < len(apps); i++ {
		if apps[i-1].ID >= apps[i].ID {
			t.Error("AppsOf not sorted")
		}
	}
}

func TestSizesAndContention(t *testing.T) {
	lab := machine.Config{Spec: cpumodel.SmallIntel()}
	if got := MaxThreadsWithoutContention(lab); got != 3 {
		t.Errorf("lab max threads = %d, want 3 (paper: largest app 3 threads)", got)
	}
	prod := machine.Config{Spec: cpumodel.SmallIntel(), Hyperthreading: true}
	if got := MaxThreadsWithoutContention(prod); got != 6 {
		t.Errorf("prod max threads = %d, want 6", got)
	}
	dahu := machine.Config{Spec: cpumodel.Dahu()}
	if got := MaxThreadsWithoutContention(dahu); got != 16 {
		t.Errorf("DAHU lab max threads = %d, want 16 (paper: 16-thread apps)", got)
	}
	sizes := SizesFor(dahu)
	if len(sizes) != 3 || sizes[0] != 4 || sizes[1] != 8 || sizes[2] != 16 {
		t.Errorf("DAHU sizes = %v, want [4 8 16]", sizes)
	}
	if got := SizesFor(lab); len(got) != 3 || got[2] != 3 {
		t.Errorf("SMALL INTEL lab sizes = %v, want three sizes up to 3", got)
	}
}

func TestEvaluateCampaignSmallSample(t *testing.T) {
	// A reduced campaign exercising the full pipeline end to end.
	ctx := labSmall()
	scenarios, err := StressPairs([]string{"fibonacci", "float64", "matrixprod"}, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	evs, err := EvaluateCampaign(ctx, scenarios, models.NewScaphandre(), ObjectiveActive, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != len(scenarios) {
		t.Fatalf("evaluated %d of %d scenarios", len(evs), len(scenarios))
	}
	sum := Summarize("scaphandre", evs)
	if sum.MeanAE <= 0 || sum.MeanAE > 0.15 {
		t.Errorf("mean AE = %.4f, want small positive", sum.MeanAE)
	}
	if sum.MaxAE < sum.MeanAE {
		t.Error("max AE below mean AE")
	}
	if !strings.Contains(sum.WorstScenario, "fibonacci") {
		t.Errorf("worst scenario = %q, expected a fibonacci pair", sum.WorstScenario)
	}
}

func TestEvaluatePairPowerAPISkipsLearning(t *testing.T) {
	ctx := labSmall()
	s := Scenario{Apps: []AppSpec{
		mustStressApp(t, "int64", 2),
		mustStressApp(t, "rand", 2),
	}}
	baselines, err := MeasureBaselines(ctx, s.Apps)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := EvaluatePair(ctx, s, models.NewPowerAPI(models.DefaultPowerAPIConfig()), baselines, ObjectiveActive, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 30 s run, 10 s learning → at most 20 s of estimates; 10 s scored.
	maxTicks := int(ctx.StableWindow/machine.DefaultTick) + 2
	if ev.ScoredTicks == 0 || ev.ScoredTicks > maxTicks {
		t.Errorf("scored %d ticks, want ≈%d", ev.ScoredTicks, maxTicks-2)
	}
}

func TestProductionContextEvaluation(t *testing.T) {
	// The protocol also runs in the production context (HT+turbo on); Eq 3
	// remains applicable (§III-C).
	ctx := prodSmall()
	s := Scenario{Apps: []AppSpec{
		mustStressApp(t, "fibonacci", 3),
		mustStressApp(t, "matrixprod", 3),
	}}
	baselines, err := MeasureBaselines(ctx, s.Apps)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := EvaluatePair(ctx, s, models.NewScaphandre(), baselines, ObjectiveActive, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ev.AE < 0.05 || ev.AE > 0.2 {
		t.Errorf("production AE = %.4f, want in (0.05, 0.2)", ev.AE)
	}
}

func TestObjectiveStrings(t *testing.T) {
	if ObjectiveActive.String() == "" || ObjectiveResidualAware.String() == "" ||
		ObjectiveNominalResidual.String() == "" || Objective(42).String() == "" {
		t.Error("objective names empty")
	}
}

func TestScenarioLabel(t *testing.T) {
	s := Scenario{Apps: []AppSpec{{ID: "a"}, {ID: "b"}}}
	if s.Label() != "a || b" {
		t.Errorf("Label = %q", s.Label())
	}
}

func TestDeriveSeedStable(t *testing.T) {
	a := deriveSeed(1, "solo", "x")
	b := deriveSeed(1, "solo", "x")
	c := deriveSeed(1, "solo", "y")
	d := deriveSeed(2, "solo", "x")
	if a != b {
		t.Error("same inputs, different seeds")
	}
	if a == c || a == d {
		t.Error("different inputs, same seed")
	}
}

func TestStressCombos(t *testing.T) {
	fns := []string{"fibonacci", "queens", "int64", "matrixprod"}
	combos, err := StressCombos(fns, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// C(4,3) = 4 scenarios, each with 3 distinct apps.
	if len(combos) != 4 {
		t.Fatalf("%d combos, want 4", len(combos))
	}
	seen := map[string]bool{}
	for _, s := range combos {
		if len(s.Apps) != 3 {
			t.Fatalf("scenario %q has %d apps", s.Label(), len(s.Apps))
		}
		if seen[s.Label()] {
			t.Fatalf("duplicate scenario %q", s.Label())
		}
		seen[s.Label()] = true
		ids := map[string]bool{}
		for _, a := range s.Apps {
			if ids[a.ID] {
				t.Fatalf("scenario %q repeats %s", s.Label(), a.ID)
			}
			ids[a.ID] = true
		}
	}
	if _, err := StressCombos(fns, 1, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := StressCombos(fns, 1, 5); err == nil {
		t.Error("k>len accepted")
	}
	if _, err := StressCombos([]string{"nosuch", "fibonacci"}, 1, 2); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestEvaluateTripleScenario(t *testing.T) {
	// The protocol handles n>2 scenarios end to end; only the ratio point
	// is pair-specific (left zero).
	ctx := labSmall()
	s := Scenario{Apps: []AppSpec{
		mustStressApp(t, "fibonacci", 2),
		mustStressApp(t, "int64", 2),
		mustStressApp(t, "matrixprod", 2),
	}}
	baselines, err := MeasureBaselines(ctx, s.Apps)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := EvaluatePair(ctx, s, models.NewScaphandre(), baselines, ObjectiveActive, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Truth) != 3 || len(ev.EstShare) != 3 {
		t.Fatalf("share maps = %d/%d entries, want 3/3", len(ev.Truth), len(ev.EstShare))
	}
	// Scaphandre splits equal CPU time three ways.
	for id, share := range ev.EstShare {
		if math.Abs(share-1.0/3) > 0.01 {
			t.Errorf("%s estimated share = %.3f, want ≈1/3", id, share)
		}
	}
	if ev.AE <= 0 {
		t.Error("zero error for heterogeneous triple")
	}
}

func TestCampaignBitReproducible(t *testing.T) {
	// The README claims bit-for-bit reproducibility: two runs of the same
	// campaign (same seed) must agree exactly, including the parallel
	// runner.
	ctx := labSmall()
	scenarios, err := StressPairs([]string{"fibonacci", "jmp", "rand"}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	run := func() []Evaluation {
		evs, err := EvaluateCampaignParallel(ctx, scenarios, models.NewPowerAPI(models.DefaultPowerAPIConfig()), ObjectiveActive, 0)
		if err != nil {
			t.Fatal(err)
		}
		return evs
	}
	a, b := run(), run()
	for i := range a {
		if a[i].AE != b[i].AE {
			t.Fatalf("scenario %q: AE %v vs %v across identical runs", a[i].Scenario.Label(), a[i].AE, b[i].AE)
		}
		for id := range a[i].EstShare {
			if a[i].EstShare[id] != b[i].EstShare[id] {
				t.Fatalf("scenario %q: share of %s differs", a[i].Scenario.Label(), id)
			}
		}
	}
}

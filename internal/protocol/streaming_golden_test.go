package protocol

import (
	"math"
	"testing"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/division"
	"powerdiv/internal/models"
)

// TestStreamingMatchesMaterialized pins the tentpole equivalence of the
// fused pipeline: on both machines (SMALL INTEL lab, DAHU production), the
// error tables of EvaluateModelsStreaming — every model, every scenario,
// every scored field — are bit-identical to EvaluateModels', with
// memoization both on and off. Streaming and materialized share the
// scoring tail, so a divergence means the stream fed models or scoring
// differently than the materialized run would.
func TestStreamingMatchesMaterialized(t *testing.T) {
	specs := []struct {
		spec cpumodel.Spec
		ht   bool
	}{
		{cpumodel.SmallIntel(), false},
		{cpumodel.Dahu(), true},
	}
	for _, sp := range specs {
		t.Run(sp.spec.Name, func(t *testing.T) {
			ctx := goldenContext(sp.spec, sp.ht)
			a0, err := StressApp("fibonacci", 1)
			if err != nil {
				t.Fatal(err)
			}
			a1, err := StressApp("matrixprod", 2)
			if err != nil {
				t.Fatal(err)
			}
			a2, err := StressApp("int64", 1)
			if err != nil {
				t.Fatal(err)
			}
			scenarios := []Scenario{
				{Apps: []AppSpec{a0, a1}},
				{Apps: []AppSpec{a1, a2}},
				{Apps: []AppSpec{a0, a1, a2}},
			}
			factories := func(baselines map[string]division.Baseline) []models.Factory {
				return goldenFactories(baselines, sp.spec)
			}
			for _, memo := range []bool{true, false} {
				EnableMemoization(memo)
				ResetMemoization()
				want, err := EvaluateModels(ctx, scenarios, factories, ObjectiveActive, 0)
				if err != nil {
					t.Fatal(err)
				}
				ResetMemoization()
				got, err := EvaluateModelsStreaming(ctx, scenarios, factories, ObjectiveActive, 0)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("memo=%v: %d models streamed, %d materialized", memo, len(got), len(want))
				}
				for name, wantEvs := range want {
					gotEvs, ok := got[name]
					if !ok || len(gotEvs) != len(wantEvs) {
						t.Fatalf("memo=%v: model %s missing or wrong length", memo, name)
					}
					for i := range wantEvs {
						compareStreamingEvaluations(t, name, wantEvs[i], gotEvs[i])
					}
				}
			}
			EnableMemoization(true)
			ResetMemoization()
		})
	}
}

// compareStreamingEvaluations requires full bit-identity — unlike the
// dense-vs-map comparison, both sides come from the dense scorer, so every
// field including EstShare's zero entries must agree exactly.
func compareStreamingEvaluations(t *testing.T, model string, want, got Evaluation) {
	t.Helper()
	compareEvaluations(t, model, want.Scenario, want, got)
	if len(want.EstShare) != len(got.EstShare) {
		t.Errorf("%s on %q: EstShare sizes %d != %d", model, want.Scenario.Label(), len(want.EstShare), len(got.EstShare))
	}
	for id, tw := range want.Truth {
		if math.Float64bits(tw) != math.Float64bits(got.Truth[id]) {
			t.Errorf("%s on %q: Truth[%s] %v != %v", model, want.Scenario.Label(), id, tw, got.Truth[id])
		}
	}
}

// TestEvaluatePairStreamingMatchesEvaluatePair pins the single-pair entry
// point against its materialized twin.
func TestEvaluatePairStreamingMatchesEvaluatePair(t *testing.T) {
	ctx := goldenContext(cpumodel.SmallIntel(), false)
	a0, err := StressApp("fibonacci", 2)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := StressApp("rand", 1)
	if err != nil {
		t.Fatal(err)
	}
	s := Scenario{Apps: []AppSpec{a0, a1}}
	baselines, err := MeasureBaselines(ctx, s.Apps)
	if err != nil {
		t.Fatal(err)
	}
	f := models.NewScaphandre()
	want, err := EvaluatePair(ctx, s, f, baselines, ObjectiveActive, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvaluatePairStreaming(ctx, s, f, baselines, ObjectiveActive, 0)
	if err != nil {
		t.Fatal(err)
	}
	compareStreamingEvaluations(t, f.Name, want, got)
}

// Package protocol implements the paper's evaluation protocol (§III-E):
//
//  1. compute each application's isolated active consumption A_{P_i} by
//     running it alone on the machine and removing the residual
//     consumption R from the acquired power;
//  2. run pairs of applications in parallel without contention, collecting
//     the models' estimated consumptions Ce^{P_i}_{S,t};
//  3. score each model with the absolute error of Equation 5 against the
//     objective shares of Equation 3 (or its §IV-B residual-aware
//     variants), over the stable part of the run.
//
// Phase 1 baselines are taken from the simulator's ground-truth power
// decomposition — the quantity the paper had to construct indirectly from
// load curves; EstimateResidual reproduces that indirect construction and
// is validated against the ground truth in tests. The models under
// evaluation never see ground truth.
package protocol

import (
	"fmt"
	"hash/fnv"
	"time"

	"powerdiv/internal/division"
	"powerdiv/internal/machine"
	"powerdiv/internal/trace"
	"powerdiv/internal/units"
	"powerdiv/internal/workload"
)

// Context carries the fixed experimental conditions of one evaluation
// campaign.
type Context struct {
	// Machine is the simulated machine and its performance settings
	// (hyperthreading / turbo toggles select the paper's laboratory or
	// production context).
	Machine machine.Config
	// RunFor is how long each scenario executes (the paper used 30 s for
	// stress scenarios).
	RunFor time.Duration
	// StableWindow is the length of the least-extreme window scored (the
	// paper's 10 s).
	StableWindow time.Duration
	// Seed seeds scenario-level randomness (sensor noise, model seeds).
	Seed int64
	// Cache optionally scopes this campaign's run memoization to an
	// isolated, byte-budgeted tier (see NewCacheScope). Nil selects the
	// process-wide cache — the behaviour of every pre-service caller. The
	// scope does not enter any fingerprint or seed derivation, so results
	// are bit-identical regardless of which cache serves them.
	Cache *CacheScope
}

// DefaultContext returns the paper's stress-evaluation settings on the
// given machine config: 30 s runs scored on the 10 s stable window.
func DefaultContext(cfg machine.Config) Context {
	return Context{
		Machine:      cfg,
		RunFor:       30 * time.Second,
		StableWindow: 10 * time.Second,
	}
}

// AppSpec identifies one application instance in the protocol: a workload
// with a thread count (the paper's "applications" are stress functions ×
// thread sizes) and optional §IV-B capping/pinning. Traffic scenarios add a
// lifetime (StartAt/StopAt) and a BaseID so that many short-lived instances
// of the same application type share a single phase 1 baseline.
type AppSpec struct {
	ID string
	// BaseID names the application type for phase 1: instances sharing a
	// BaseID share one solo baseline (measured without lifetime offsets).
	// Empty means the instance is its own type (the static-campaign case).
	BaseID   string
	Workload workload.Workload
	Threads  int
	CPUQuota float64
	Pinned   []int
	// StartAt is the instance's arrival into the scenario; StopAt its
	// scripted exit (0 = runs until the scenario or its workload ends).
	StartAt time.Duration
	StopAt  time.Duration
}

// baselineID is the key the instance's phase 1 baseline is stored under.
func (a AppSpec) baselineID() string {
	if a.BaseID != "" {
		return a.BaseID
	}
	return a.ID
}

// baselineSpec strips the instance down to its application type: the spec
// phase 1 actually measures, solo and without lifetime offsets. For specs
// without traffic fields it is the identity, so static campaigns measure —
// and cache — exactly what they always did.
func (a AppSpec) baselineSpec() AppSpec {
	b := a
	b.ID = a.baselineID()
	b.BaseID = ""
	b.StartAt, b.StopAt = 0, 0
	return b
}

// proc converts the spec to a simulator process.
func (a AppSpec) proc() machine.Proc {
	return machine.Proc{
		ID:       a.ID,
		Workload: a.Workload,
		Threads:  a.Threads,
		Start:    a.StartAt,
		Stop:     a.StopAt,
		CPUQuota: a.CPUQuota,
		Pinned:   a.Pinned,
	}
}

// StressApp builds an AppSpec for a named stress function. The ID encodes
// function and size, e.g. "fibonacci-3".
func StressApp(fn string, threads int) (AppSpec, error) {
	w, ok := workload.StressByName(fn)
	if !ok {
		return AppSpec{}, fmt.Errorf("protocol: unknown stress function %q", fn)
	}
	return AppSpec{ID: fmt.Sprintf("%s-%d", fn, threads), Workload: w, Threads: threads}, nil
}

// MeasureIdle returns the machine's idle power (mean over a short empty
// run). It goes through the byte-capped summary tier: an idle run's digest
// is all the mean needs.
func MeasureIdle(ctx Context) (units.Watts, error) {
	sum, err := ctx.memo().summaryCached(ctx.Machine, nil, 5*time.Second)
	if err != nil {
		return 0, err
	}
	return units.Watts(sum.TruePowerSeries().Mean()), nil
}

// MeasureBaseline is protocol phase 1 for one application: run it alone
// and extract its baseline. Residual follows the paper's definition and
// includes idle consumption.
//
// The returned run is shared with the memoization cache (see cache.go) and
// must be treated as read-only.
//
// Traffic instances are measured as their application type: the lifetime
// offsets are stripped and the baseline is keyed by the spec's baselineID,
// so every instance of a type shares one solo run.
func MeasureBaseline(ctx Context, app AppSpec) (division.Baseline, *machine.Run, error) {
	app = app.baselineSpec()
	cfg := ctx.Machine
	cfg.Seed = deriveSeed(ctx.Seed, "solo", app.ID)
	run, err := ctx.memo().simulateCached(cfg, []machine.Proc{app.proc()}, ctx.RunFor)
	if err != nil {
		return division.Baseline{}, nil, fmt.Errorf("protocol: solo run of %s: %w", app.ID, err)
	}
	power := run.TruePowerSeries()
	window, err := power.StableWindow(ctx.StableWindow)
	if err != nil {
		window = power
	}
	from, to := window.Start(), window.End()+1
	var total, residIdle, cores float64
	var n int
	tick := run.Tick()
	slot, hasSlot := run.Roster.Slot(app.ID)
	for _, rec := range run.Ticks {
		if rec.At < from || rec.At >= to {
			continue
		}
		total += float64(rec.TruePower)
		residIdle += float64(rec.Idle + rec.Residual)
		if hasSlot {
			if pt := rec.Procs[slot]; pt.Present() {
				cores += pt.CPUTime.Utilization(tick)
			}
		}
		n++
	}
	if n == 0 {
		return division.Baseline{}, nil, fmt.Errorf("protocol: empty stable window for %s", app.ID)
	}
	b := division.Baseline{
		ID:       app.ID,
		Total:    units.Watts(total / float64(n)),
		Residual: units.Watts(residIdle / float64(n)),
		Cores:    cores / float64(n),
	}
	return b, run, nil
}

// MeasureBaselineSummary is MeasureBaseline through the byte-capped
// summary cache: the same Baseline bit for bit, computed from a compact
// RunSummary instead of a retained *machine.Run. The campaign paths use it
// so phase 1 pins digests, not full solo runs.
func MeasureBaselineSummary(ctx Context, app AppSpec) (division.Baseline, error) {
	app = app.baselineSpec()
	cfg := ctx.Machine
	cfg.Seed = deriveSeed(ctx.Seed, "solo", app.ID)
	sum, err := ctx.memo().summaryCached(cfg, []machine.Proc{app.proc()}, ctx.RunFor)
	if err != nil {
		return division.Baseline{}, fmt.Errorf("protocol: solo run of %s: %w", app.ID, err)
	}
	return sum.baseline(ctx, app.ID)
}

// MeasureBaselines runs phase 1 for a list of applications. Results are
// keyed by baselineID — the same key scenarioTruths resolves instances by.
func MeasureBaselines(ctx Context, apps []AppSpec) (map[string]division.Baseline, error) {
	out := make(map[string]division.Baseline, len(apps))
	for _, app := range apps {
		b, err := MeasureBaselineSummary(ctx, app)
		if err != nil {
			return nil, err
		}
		out[app.baselineID()] = b
	}
	return out, nil
}

// EstimateResidual reproduces the paper's indirect construction of R
// (Fig 1): run a reference stress on 1..N physical cores, fit the linear
// tail of machine power against core count, and report the intercept at
// zero cores — idle plus load residual, the paper's R. On real hardware
// this is the only way to obtain R; on the simulator it should agree with
// the ground-truth decomposition (a test asserts it does).
func EstimateResidual(ctx Context, probe workload.Workload) (units.Watts, error) {
	phys := ctx.Machine.Spec.Topology.PhysicalCores()
	if phys < 2 {
		return 0, fmt.Errorf("protocol: need ≥2 cores to fit residual")
	}
	// Mean power at each core count.
	p := make([]float64, phys+1)
	for n := 1; n <= phys; n++ {
		cfg := ctx.Machine
		cfg.Seed = deriveSeed(ctx.Seed, "residual-probe", fmt.Sprint(n))
		sum, err := ctx.memo().summaryCached(cfg, []machine.Proc{{
			ID: "probe", Workload: probe, Threads: n,
		}}, 5*time.Second)
		if err != nil {
			return 0, err
		}
		p[n] = sum.PowerSeries().Mean()
	}
	// Least-squares line over n = 1..phys; the intercept is R.
	var sx, sy, sxx, sxy float64
	for n := 1; n <= phys; n++ {
		x := float64(n)
		sx += x
		sy += p[n]
		sxx += x * x
		sxy += x * p[n]
	}
	cnt := float64(phys)
	den := cnt*sxx - sx*sx
	if den == 0 {
		return 0, fmt.Errorf("protocol: degenerate residual fit")
	}
	slope := (cnt*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / cnt
	return units.Watts(intercept), nil
}

// deriveSeed produces a deterministic per-run seed from the campaign seed
// and a label.
func deriveSeed(seed int64, parts ...string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", seed)
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return int64(h.Sum64())
}

// stableScoringWindow picks the scoring window: the least-extreme
// StableWindow of the power series restricted to ticks where the model
// produced estimates (ok[i], index-aligned with ts). A non-positive
// StableWindow disables the selection and scores every estimated tick (the
// ablation baseline). It returns the inclusive start and exclusive end.
// scored is caller-owned scratch, reset and refilled on every call.
func stableScoringWindow(ctx Context, ts tickSeries, ok []bool, scored *trace.Series) (time.Duration, time.Duration) {
	scored.Reset()
	for i, at := range ts.at {
		if ok[i] {
			scored.Append(at, float64(ts.power[i]))
		}
	}
	if scored.Len() == 0 {
		return 0, 0
	}
	if ctx.StableWindow <= 0 {
		return scored.Start(), scored.End() + 1
	}
	from, to, err := scored.StableWindowBounds(ctx.StableWindow)
	if err != nil {
		return scored.Start(), scored.End() + 1
	}
	return from, to + 1
}

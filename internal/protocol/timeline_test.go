package protocol

import (
	"testing"
	"time"

	"powerdiv/internal/division"
	"powerdiv/internal/models"
)

func fig11Timeline(t *testing.T) []TimelineApp {
	t.Helper()
	p0 := mustStressApp(t, "int64", 2)
	p0.ID = "P0"
	p1 := mustStressApp(t, "int64", 2)
	p1.ID = "P1"
	p2 := mustStressApp(t, "int64", 2)
	p2.ID = "P2"
	return []TimelineApp{
		{App: p0},
		{App: p1, Start: 20 * time.Second, Stop: 40 * time.Second},
		{App: p2, Start: 40 * time.Second},
	}
}

func timelineBaselines(t *testing.T, ctx Context, apps []TimelineApp) map[string]division.Baseline {
	t.Helper()
	specs := make([]AppSpec, len(apps))
	for i, ta := range apps {
		specs[i] = ta.App
	}
	b, err := MeasureBaselines(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestEvaluateTimelineScaphandreFullCoverage(t *testing.T) {
	ctx := labSmall()
	apps := fig11Timeline(t)
	baselines := timelineBaselines(t, ctx, apps)
	res, err := EvaluateTimeline(ctx, apps, models.NewScaphandre(), baselines, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage < 0.999 {
		t.Errorf("scaphandre coverage = %.3f, want 1", res.Coverage)
	}
	// Identical workloads: equal splits match the objective (low AE).
	if res.AE > 0.02 {
		t.Errorf("identical-workload timeline AE = %.4f, want ≈0", res.AE)
	}
	if res.BusyTicks == 0 || res.ScoredTicks != res.BusyTicks {
		t.Errorf("ticks = %d/%d", res.ScoredTicks, res.BusyTicks)
	}
}

func TestEvaluateTimelinePowerAPICoverageLoss(t *testing.T) {
	// PowerAPI relearns at every arrival/departure: with context changes
	// at t=20s and t=40s of a 60s run and a 10s learning window, roughly
	// half the busy ticks produce no estimate.
	ctx := labSmall()
	apps := fig11Timeline(t)
	baselines := timelineBaselines(t, ctx, apps)
	res, err := EvaluateTimeline(ctx, apps, models.NewPowerAPI(models.DefaultPowerAPIConfig()), baselines, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage > 0.6 || res.Coverage < 0.3 {
		t.Errorf("powerapi coverage = %.3f, want ≈0.5 (3 × 10s learning over 60s)", res.Coverage)
	}
	sc, err := EvaluateTimeline(ctx, apps, models.NewScaphandre(), baselines, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage >= sc.Coverage {
		t.Error("powerapi coverage not below scaphandre's")
	}
}

func TestEvaluateTimelineHeterogeneousError(t *testing.T) {
	// Different workloads arriving and leaving: CPU-time division keeps
	// misattributing, now under churn.
	ctx := labSmall()
	fib := mustStressApp(t, "fibonacci", 2)
	mat := mustStressApp(t, "matrixprod", 2)
	jmp := mustStressApp(t, "jmp", 2)
	apps := []TimelineApp{
		{App: fib},
		{App: mat, Start: 10 * time.Second},
		{App: jmp, Start: 20 * time.Second, Stop: 30 * time.Second},
	}
	baselines := timelineBaselines(t, ctx, apps)
	res, err := EvaluateTimeline(ctx, apps, models.NewScaphandre(), baselines, 40*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.AE < 0.03 {
		t.Errorf("heterogeneous timeline AE = %.4f, want ≳0.05", res.AE)
	}
}

func TestEvaluateTimelineErrors(t *testing.T) {
	ctx := labSmall()
	if _, err := EvaluateTimeline(ctx, nil, models.NewScaphandre(), nil, time.Minute); err == nil {
		t.Error("empty timeline accepted")
	}
	apps := fig11Timeline(t)
	if _, err := EvaluateTimeline(ctx, apps, models.NewScaphandre(), map[string]division.Baseline{}, time.Minute); err == nil {
		t.Error("missing baselines accepted")
	}
}

package protocol

import (
	"time"

	"powerdiv/internal/obs"
)

// Campaign-engine metrics. All writes are no-ops while the obs registry is
// disabled (the default), so the instrumented paths keep their benchmark
// numbers; see internal/obs and DESIGN.md §7.
var (
	obsScenariosStarted = obs.NewCounter("powerdiv_protocol_scenarios_started_total",
		"Scenario evaluations begun (phase 2+3 of the protocol).")
	obsScenariosCompleted = obs.NewCounter("powerdiv_protocol_scenarios_completed_total",
		"Scenario evaluations finished without error.")
	obsCacheHits = obs.NewCounter("powerdiv_protocol_cache_hits_total",
		"Run-memoization cache hits (matches MemoizationStats.Hits).")
	obsCacheMisses = obs.NewCounter("powerdiv_protocol_cache_misses_total",
		"Run-memoization cache misses (matches MemoizationStats.Misses).")
	obsCacheEvictions = obs.NewCounter("powerdiv_protocol_cache_evictions_total",
		"Runs evicted from the memoization cache (FIFO limit).")
	obsDiskHits = obs.NewCounter("powerdiv_protocol_disk_cache_hits_total",
		"Persistent summary cache hits (valid file found for a memory miss).")
	obsDiskMisses = obs.NewCounter("powerdiv_protocol_disk_cache_misses_total",
		"Persistent summary cache misses (absent, corrupt, or stale file).")
	obsDiskWrites = obs.NewCounter("powerdiv_protocol_disk_cache_writes_total",
		"Summary digests written to the persistent cache.")
	obsScenarioSeconds = obs.NewHistogram("powerdiv_protocol_scenario_seconds",
		"Wall-clock latency of one scenario evaluation (simulate + replay + score).",
		0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10)
	obsWorkersBusy = obs.NewGauge("powerdiv_protocol_workers_busy",
		"Worker-pool occupancy: tasks currently executing in forEachIndexed.")
)

// observeScenario marks one scenario evaluation started and returns the
// completion hook: call it on success to count the completion and record
// the latency. When the registry is disabled both halves reduce to an
// atomic load each — no clock reads, no allocation beyond the closure.
var obsNoop = func() {}

func observeScenario() func() {
	obsScenariosStarted.Inc()
	if !obs.Enabled() {
		return obsNoop
	}
	start := time.Now()
	return func() {
		obsScenariosCompleted.Inc()
		obsScenarioSeconds.Observe(time.Since(start).Seconds())
	}
}

package protocol

import (
	"context"
	"testing"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/division"
	"powerdiv/internal/models"
)

// TestRepsStreamingMatchesUnbatched pins the batched-repetition contract:
// EvaluateScenarioRepsStreaming's rows for seed k are bit-identical to the
// unbatched streaming evaluation run at Context.Seed = seeds[k], with each
// repetition scored against its own phase-1 truth. One simulator pass must
// be indistinguishable from len(seeds) passes.
func TestRepsStreamingMatchesUnbatched(t *testing.T) {
	for _, sp := range []struct {
		spec cpumodel.Spec
		ht   bool
	}{
		{cpumodel.SmallIntel(), false},
		{cpumodel.Dahu(), true},
	} {
		t.Run(sp.spec.Name, func(t *testing.T) {
			ctx := goldenContext(sp.spec, sp.ht)
			a0, err := StressApp("fibonacci", 1)
			if err != nil {
				t.Fatal(err)
			}
			a1, err := StressApp("matrixprod", 2)
			if err != nil {
				t.Fatal(err)
			}
			s := Scenario{Apps: []AppSpec{a0, a1}}
			seeds := []int64{11, 42, 1000003}

			// Per-seed truths, as a campaign at that seed would measure them;
			// one shared factory list, as the batch API requires.
			truths := make([][]division.Shares, len(seeds))
			var fs []models.Factory
			for r, seed := range seeds {
				repCtx := ctx
				repCtx.Seed = seed
				baselines := map[string]division.Baseline{}
				for _, app := range s.Apps {
					b, err := MeasureBaselineSummary(repCtx, app)
					if err != nil {
						t.Fatal(err)
					}
					baselines[app.ID] = b
				}
				truths[r], err = scenarioTruths(s, baselines, []Objective{ObjectiveActive, ObjectiveResidualAware}, 0)
				if err != nil {
					t.Fatal(err)
				}
				if fs == nil {
					fs = goldenFactories(baselines, sp.spec)
				}
			}

			got, err := EvaluateScenarioRepsStreaming(context.Background(), ctx, s, fs, truths, seeds)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(seeds) {
				t.Fatalf("%d repetition rows, want %d", len(got), len(seeds))
			}
			for r, seed := range seeds {
				repCtx := ctx
				repCtx.Seed = seed
				want, err := evaluateScenarioStreaming(context.Background(), repCtx, s, fs, truths[r])
				if err != nil {
					t.Fatal(err)
				}
				if len(got[r]) != len(want) {
					t.Fatalf("seed %d: %d factories, want %d", seed, len(got[r]), len(want))
				}
				for m := range want {
					if len(got[r][m]) != len(want[m]) {
						t.Fatalf("seed %d model %s: %d objectives, want %d",
							seed, fs[m].Name, len(got[r][m]), len(want[m]))
					}
					for o := range want[m] {
						compareStreamingEvaluations(t, fs[m].Name, want[m][o], got[r][m][o])
					}
				}
			}
		})
	}
}

// TestRepsStreamingShape pins the input contract: mismatched truth/seed
// lengths error, and an empty seed set evaluates to nothing.
func TestRepsStreamingShape(t *testing.T) {
	ctx := goldenContext(cpumodel.SmallIntel(), false)
	a0, err := StressApp("fibonacci", 1)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := StressApp("int64", 1)
	if err != nil {
		t.Fatal(err)
	}
	s := Scenario{Apps: []AppSpec{a0, a1}}
	if _, err := EvaluateScenarioRepsStreaming(context.Background(), ctx, s, nil,
		make([][]division.Shares, 2), []int64{1}); err == nil {
		t.Fatal("mismatched truths/seeds accepted")
	}
	out, err := EvaluateScenarioRepsStreaming(context.Background(), ctx, s, nil, nil, nil)
	if err != nil || out != nil {
		t.Fatalf("empty seeds: got %v, %v", out, err)
	}
}

package protocol

import (
	"fmt"
	"time"

	"powerdiv/internal/division"
	"powerdiv/internal/machine"
	"powerdiv/internal/models"
	"powerdiv/internal/units"
)

// TimelineApp is an application with a lifetime inside a dynamic scenario —
// the arrivals and departures of the paper's Fig 11 ("production
// environment, contexts often change due to the arrival and departure of
// applications").
type TimelineApp struct {
	App AppSpec
	// Start is the arrival time; Stop (0 = scenario end) the departure.
	Start, Stop time.Duration
}

// TimelineResult scores a model over a dynamic scenario.
type TimelineResult struct {
	// AE is the Eq 5 absolute error over every scored tick, with the
	// objective shares recomputed per tick over the applications present.
	AE float64
	// Coverage is the fraction of busy ticks (some application running)
	// for which the model produced an estimate — context-change
	// recalibration (PowerAPI's learning drops) lowers it.
	Coverage float64
	// BusyTicks counts ticks with at least one application running.
	BusyTicks int
	// ScoredTicks counts ticks that entered the Eq 5 average.
	ScoredTicks int
}

// EvaluateTimeline runs a dynamic scenario and scores the model against a
// per-tick objective: at each tick, Equation 3 shares are computed over
// the applications actually running (from their phase 1 baselines). No
// stable-window selection applies — dynamic contexts are scored whole,
// since transitions are exactly what is under test.
func EvaluateTimeline(ctx Context, apps []TimelineApp, factory models.Factory, baselines map[string]division.Baseline, maxDur time.Duration) (TimelineResult, error) {
	var res TimelineResult
	if len(apps) == 0 {
		return res, fmt.Errorf("protocol: empty timeline")
	}
	label := "timeline:"
	procs := make([]machine.Proc, len(apps))
	for i, ta := range apps {
		if _, ok := baselines[ta.App.ID]; !ok {
			return res, fmt.Errorf("protocol: no baseline for %s", ta.App.ID)
		}
		p := ta.App.proc()
		p.Start, p.Stop = ta.Start, ta.Stop
		procs[i] = p
		label += " " + ta.App.ID
	}
	cfg := ctx.Machine
	cfg.Seed = deriveSeed(ctx.Seed, "timeline", label)
	run, err := ctx.memo().simulateCached(cfg, procs, maxDur)
	if err != nil {
		return res, fmt.Errorf("protocol: timeline: %w", err)
	}
	model := factory.New(deriveSeed(ctx.Seed, "model", factory.Name, label))
	est := models.ReplayDense(model, models.RunTicksDense(run))

	rosterIDs := run.Roster.IDs()
	var scoredEsts [][]units.Watts
	var scoredPower []units.Watts
	var truths [][]float64
	bs := make([]division.Baseline, 0, len(rosterIDs))
	for i := range run.Ticks {
		rec := &run.Ticks[i]
		// The per-tick objective covers exactly the applications present;
		// roster order keeps the baseline list deterministic.
		bs = bs[:0]
		for slot, id := range rosterIDs {
			if rec.Procs[slot].Present() {
				bs = append(bs, baselines[id])
			}
		}
		if len(bs) == 0 {
			continue
		}
		res.BusyTicks++
		if !est.OK[i] {
			continue
		}
		truth := division.TruthShares(bs)
		if truth == nil {
			continue
		}
		scoredEsts = append(scoredEsts, est.Row(i))
		scoredPower = append(scoredPower, rec.Power)
		truths = append(truths, truth.Vector(rosterIDs))
	}
	if res.BusyTicks == 0 {
		return res, fmt.Errorf("protocol: timeline never ran any application")
	}
	res.ScoredTicks = len(scoredEsts)
	res.Coverage = float64(res.ScoredTicks) / float64(res.BusyTicks)
	if res.ScoredTicks > 0 {
		ae, err := division.AbsoluteErrorColumns(scoredEsts, scoredPower, truths)
		if err != nil {
			return res, err
		}
		res.AE = ae
	}
	return res, nil
}

package protocol

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/division"
	"powerdiv/internal/models"
)

// cancelAfterErrs is a context.Context whose Err flips to Canceled after a
// fixed number of polls. The streaming pipeline checks cctx.Err() once per
// simulated tick, so this cancels deterministically "at tick k" without any
// timing dependence — unlike context.WithCancel fired from another
// goroutine, which races the simulator.
type cancelAfterErrs struct {
	context.Context
	remaining atomic.Int64
}

func newCancelAfterErrs(k int) *cancelAfterErrs {
	c := &cancelAfterErrs{Context: context.Background()}
	c.remaining.Store(int64(k))
	return c
}

func (c *cancelAfterErrs) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestStreamingCtxCancelMidRun cancels a pair campaign at the k-th tick
// poll and requires that the campaign aborts mid-simulation (not after the
// scenario), the error unwraps to context.Canceled, and the shared worker
// budget drains back to zero — the contract the service's job cancellation
// and client-disconnect paths rely on.
func TestStreamingCtxCancelMidRun(t *testing.T) {
	ctx := goldenContext(cpumodel.SmallIntel(), false)
	a0 := mustStressApp(t, "fibonacci", 1)
	a1 := mustStressApp(t, "int64", 1)
	scenarios := []Scenario{{Apps: []AppSpec{a0, a1}}}
	factories := func(baselines map[string]division.Baseline) []models.Factory {
		return []models.Factory{models.NewScaphandre()}
	}

	// Cancel generously after the baseline phase has had its polls but well
	// before the pair run's tick count (12 s at the simulator tick rate).
	cctx := newCancelAfterErrs(20)
	_, err := EvaluateModelsStreamingCtx(cctx, ctx, scenarios, factories, ObjectiveActive, 0)
	if err == nil {
		t.Fatal("cancelled campaign returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not unwrap to context.Canceled", err)
	}
	waitWorkerBudgetDrain(t)
}

// TestTrafficCtxCancelMidRun is the traffic-campaign twin of the pair-path
// cancellation test.
func TestTrafficCtxCancelMidRun(t *testing.T) {
	ctx, scenarios, factories := trafficGoldenSetup(t)
	cctx := newCancelAfterErrs(25)
	_, err := EvaluateTrafficStreamingCtx(cctx, ctx, scenarios, factories, trafficTestWindow)
	if err == nil {
		t.Fatal("cancelled traffic campaign returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not unwrap to context.Canceled", err)
	}
	waitWorkerBudgetDrain(t)
}

// TestStreamingCtxUncancelledBitIdentical pins that threading an uncancelled
// context through the campaign changes nothing: both Ctx entry points yield
// tables bit-identical to their context-free twins.
func TestStreamingCtxUncancelledBitIdentical(t *testing.T) {
	ctx := goldenContext(cpumodel.SmallIntel(), false)
	a0 := mustStressApp(t, "fibonacci", 1)
	a1 := mustStressApp(t, "matrixprod", 2)
	scenarios := []Scenario{{Apps: []AppSpec{a0, a1}}}
	factories := func(baselines map[string]division.Baseline) []models.Factory {
		return goldenFactories(baselines, cpumodel.SmallIntel())
	}
	want, err := EvaluateModelsStreaming(ctx, scenarios, factories, ObjectiveActive, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvaluateModelsStreamingCtx(context.Background(), ctx, scenarios, factories, ObjectiveActive, 0)
	if err != nil {
		t.Fatal(err)
	}
	for name, wevs := range want {
		for i := range wevs {
			compareStreamingEvaluations(t, name, wevs[i], got[name][i])
		}
	}

	tctx, tscenarios, tfactories := trafficGoldenSetup(t)
	twant, err := EvaluateTrafficStreaming(tctx, tscenarios, tfactories, trafficTestWindow)
	if err != nil {
		t.Fatal(err)
	}
	tgot, err := EvaluateTrafficStreamingCtx(context.Background(), tctx, tscenarios, tfactories, trafficTestWindow)
	if err != nil {
		t.Fatal(err)
	}
	for name, wevs := range twant {
		for i := range wevs {
			compareTrafficEvaluations(t, name, wevs[i], tgot[name][i])
		}
	}
}

// TestScenarioStreamingMatchesCampaign pins the service's sharding unit:
// evaluating one scenario at a time through EvaluateScenarioStreaming and
// EvaluateTrafficScenarioStreaming reproduces the whole-campaign tables bit
// for bit, in any order. This is what lets a resumed job skip completed
// scenarios without re-running them.
func TestScenarioStreamingMatchesCampaign(t *testing.T) {
	ctx, scenarios, factories := trafficGoldenSetup(t)
	baselines, err := MeasureBaselinesParallel(ctx, AppsOf(scenarios))
	if err != nil {
		t.Fatal(err)
	}
	fs := factories(baselines)
	want, err := EvaluateTrafficStreaming(ctx, scenarios, factories, trafficTestWindow)
	if err != nil {
		t.Fatal(err)
	}
	// Reverse order: per-scenario results must not depend on evaluation
	// order.
	for i := len(scenarios) - 1; i >= 0; i-- {
		rows, err := EvaluateTrafficScenarioStreaming(context.Background(), ctx, scenarios[i], fs, baselines, trafficTestWindow)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(fs) {
			t.Fatalf("scenario %d: %d rows for %d factories", i, len(rows), len(fs))
		}
		for m, f := range fs {
			compareTrafficEvaluations(t, f.Name, want[f.Name][i], rows[m])
		}
	}
}

// waitWorkerBudgetDrain asserts the shared worker budget returns to zero
// shortly after a cancelled campaign's entry point returns. forEachIndexed
// releases its grant before returning, so this should already be zero; the
// brief settle loop only guards against unrelated tests' stragglers.
func waitWorkerBudgetDrain(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if WorkerBudgetInUse() == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker budget still holds %d slots after cancellation", WorkerBudgetInUse())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCacheScopeIsolation pins the service's cache-tenancy contract: a
// campaign run under a CacheScope records all its memoization activity in
// the scope and none in the process-wide cache, and the scope's byte budget
// actually evicts.
func TestCacheScopeIsolation(t *testing.T) {
	EnableMemoization(true)
	ResetMemoization()
	defer func() {
		EnableMemoization(true)
		ResetMemoization()
	}()

	ctx, scenarios, factories := trafficGoldenSetup(t)
	ctx.Cache = NewCacheScope(1 << 20)
	globalBefore := MemoizationStats()

	want, err := EvaluateTrafficStreaming(Context{
		Machine: ctx.Machine, RunFor: ctx.RunFor,
		StableWindow: ctx.StableWindow, Seed: ctx.Seed,
	}, scenarios, factories, trafficTestWindow)
	if err != nil {
		t.Fatal(err)
	}
	globalMid := MemoizationStats()
	if globalMid.Lookups == globalBefore.Lookups {
		t.Fatal("unscoped campaign did not touch the process cache; test is vacuous")
	}

	got, err := EvaluateTrafficStreaming(ctx, scenarios, factories, trafficTestWindow)
	if err != nil {
		t.Fatal(err)
	}
	globalAfter := MemoizationStats()
	if globalAfter.Lookups != globalMid.Lookups {
		t.Errorf("scoped campaign leaked %d lookups into the process cache",
			globalAfter.Lookups-globalMid.Lookups)
	}
	st := ctx.Cache.Stats()
	if st.Lookups == 0 || st.Misses == 0 {
		t.Errorf("scope saw no activity: %+v", st)
	}
	if st.Hits+st.Misses != st.Lookups {
		t.Errorf("scope stats inconsistent: %+v", st)
	}
	if st.SummaryByteLimit != 1<<20 {
		t.Errorf("scope byte limit = %d, want %d", st.SummaryByteLimit, 1<<20)
	}
	if st.SummaryBytes > st.SummaryByteLimit {
		t.Errorf("scope bytes %d exceed limit %d", st.SummaryBytes, st.SummaryByteLimit)
	}

	// Which cache serves a campaign must not leak into results.
	for name, wevs := range want {
		for i := range wevs {
			compareTrafficEvaluations(t, name, wevs[i], got[name][i])
		}
	}

	ctx.Cache.Drop()
	if st := ctx.Cache.Stats(); st.Entries != 0 || st.SummaryEntries != 0 || st.SummaryBytes != 0 {
		t.Errorf("dropped scope still holds data: %+v", st)
	}
}

// TestCacheScopeTinyBudgetEvicts forces eviction with a budget smaller than
// one campaign's digests and checks the ledger stays within it while the
// campaign still completes correctly.
func TestCacheScopeTinyBudgetEvicts(t *testing.T) {
	ctx, scenarios, factories := trafficGoldenSetup(t)
	scope := NewCacheScope(1) // one byte: every summary evicts on insert
	ctx.Cache = scope
	if _, err := EvaluateTrafficStreaming(ctx, scenarios, factories, trafficTestWindow); err != nil {
		t.Fatal(err)
	}
	st := scope.Stats()
	if st.Evictions == 0 {
		t.Errorf("one-byte budget evicted nothing: %+v", st)
	}
	if st.SummaryBytes > st.SummaryByteLimit {
		t.Errorf("scope bytes %d exceed limit %d", st.SummaryBytes, st.SummaryByteLimit)
	}
}

// TestCampaignFingerprint pins the snapshot-binding key: stable across
// calls, insensitive to the cache scope, and sensitive to every input that
// changes what phase 2 simulates — seed, scenario set, order, duration,
// scoring window, and campaign kind.
func TestCampaignFingerprint(t *testing.T) {
	ctx, scenarios, _ := trafficGoldenSetup(t)
	base := CampaignFingerprint(ctx, scenarios, TrafficCampaign, trafficTestWindow)
	if len(base) != 16 {
		t.Fatalf("fingerprint %q is not a 16-hex digest", base)
	}
	if again := CampaignFingerprint(ctx, scenarios, TrafficCampaign, trafficTestWindow); again != base {
		t.Errorf("fingerprint not stable: %s then %s", base, again)
	}
	scoped := ctx
	scoped.Cache = NewCacheScope(0)
	if got := CampaignFingerprint(scoped, scenarios, TrafficCampaign, trafficTestWindow); got != base {
		t.Errorf("cache scope changed the fingerprint: %s != %s", got, base)
	}

	mutants := map[string]string{}
	seeded := ctx
	seeded.Seed++
	mutants["seed"] = CampaignFingerprint(seeded, scenarios, TrafficCampaign, trafficTestWindow)
	windowed := ctx
	windowed.StableWindow += time.Second
	mutants["stable window"] = CampaignFingerprint(windowed, scenarios, TrafficCampaign, trafficTestWindow)
	mutants["kind"] = CampaignFingerprint(ctx, scenarios, PairCampaign, trafficTestWindow)
	mutants["duration"] = CampaignFingerprint(ctx, scenarios, TrafficCampaign, trafficTestWindow+time.Second)
	mutants["subset"] = CampaignFingerprint(ctx, scenarios[:2], TrafficCampaign, trafficTestWindow)
	swapped := []Scenario{scenarios[1], scenarios[0], scenarios[2]}
	mutants["order"] = CampaignFingerprint(ctx, swapped, TrafficCampaign, trafficTestWindow)
	for what, got := range mutants {
		if got == base {
			t.Errorf("changing %s did not change the fingerprint", what)
		}
	}
}

// TestWorkerBudgetInUseBounded samples the exported budget reading while a
// campaign runs: it must never exceed GOMAXPROCS (math.MaxInt guard only;
// the race-mode stress test in internal/serve does the heavy sampling).
func TestWorkerBudgetInUseBounded(t *testing.T) {
	if got := WorkerBudgetInUse(); got < 0 || got > math.MaxInt32 {
		t.Fatalf("implausible worker budget reading %d", got)
	}
}

package protocol

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"powerdiv/internal/division"
	"powerdiv/internal/models"
	"powerdiv/internal/units"
)

// parallelism is the worker count for campaign evaluation: scenarios are
// independent simulations, so they scale with cores.
func parallelism() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		return 1
	}
	return n
}

// activeWorkers is the package-wide count of goroutines forEachIndexed
// has spawned and not yet retired, shared by every concurrent call in the
// process. It is the guard against nested fan-out oversubscription: a
// fleet-level ForEach over nodes whose callback runs a per-node campaign
// (itself built on forEachIndexed) would otherwise spawn
// nodes × GOMAXPROCS goroutines. With the shared budget, inner calls see
// the slots the outer level already holds and fall back to running
// serially on their caller's goroutine — which is an outer worker and so
// already accounted for.
var activeWorkers atomic.Int64

// acquireWorkers claims up to want slots from the shared budget and
// returns how many it got (possibly zero). It never blocks: under
// contention the caller degrades to serial execution instead of waiting,
// so nesting cannot deadlock.
func acquireWorkers(want int) int {
	for {
		cur := activeWorkers.Load()
		free := int64(parallelism()) - cur
		if free <= 0 {
			return 0
		}
		grant := int64(want)
		if grant > free {
			grant = free
		}
		if activeWorkers.CompareAndSwap(cur, cur+grant) {
			return int(grant)
		}
	}
}

// releaseWorkers returns slots to the shared budget.
func releaseWorkers(n int) { activeWorkers.Add(-int64(n)) }

// WorkerBudgetInUse reports how many slots of the shared worker budget are
// currently held. It never exceeds GOMAXPROCS, and returns to zero once
// every fan-out has drained — the invariant the service stress tests assert
// while jobs are admitted, cancelled and killed concurrently.
func WorkerBudgetInUse() int { return int(activeWorkers.Load()) }

// ForEach runs fn(i) for i in [0, n) across the shared worker pool with
// the same determinism and early-stop contract as the internal campaign
// runner. It is the entry point fleet-level drivers use so that their
// node-level parallelism and the per-node campaign parallelism draw from
// one budget and total workers stay within GOMAXPROCS.
func ForEach(n int, fn func(i int) error) error {
	return forEachIndexed(n, fn)
}

// forEachIndexed runs fn(i) for i in [0, n) across the worker pool and
// returns the first error (by index order, so results are deterministic
// regardless of scheduling). fn must only write state owned by its index.
//
// A failure sets a stop flag that drains the remaining indices: workers
// finish the call they are in and exit instead of dispatching more work.
// The first-error-by-index guarantee survives the early stop — indices are
// handed out in increasing order, so when any call fails, every lower
// index has already been dispatched, and its (possibly failing) result is
// recorded before its worker checks the flag.
//
// Worker goroutines are drawn from the process-wide activeWorkers budget;
// when the budget is exhausted (typically because this call is nested
// inside another forEachIndexed callback) the loop runs serially on the
// caller's goroutine, whose slot the outer level already holds.
func forEachIndexed(n int, fn func(i int) error) error {
	workers := parallelism()
	if workers > n {
		workers = n
	}
	if workers > 1 {
		granted := acquireWorkers(workers)
		if granted <= 1 {
			// One extra goroutine buys nothing over the caller's own;
			// return it and run inline.
			releaseWorkers(granted)
			workers = 1
		} else {
			workers = granted
			defer releaseWorkers(granted)
		}
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var stop atomic.Bool
	// Index handout is a single fetch-and-add: a mutex here serializes every
	// worker through one cache line's lock word and convoys under short
	// tasks, which is measurable at GOMAXPROCS > 1 on campaigns of cheap
	// scenarios. The counter keeps the increasing-order handout the
	// first-error guarantee relies on.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				obsWorkersBusy.Add(1)
				err := fn(i)
				errs[i] = err
				obsWorkersBusy.Add(-1)
				if err != nil {
					stop.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// EvaluateCampaignParallel is EvaluateCampaign with scenarios evaluated
// concurrently across CPU cores. Results are identical to the sequential
// version (every simulation and model seed derives from the scenario
// label, not from execution order).
func EvaluateCampaignParallel(ctx Context, scenarios []Scenario, factory models.Factory, obj Objective, r0 units.Watts) ([]Evaluation, error) {
	baselines, err := MeasureBaselinesParallel(ctx, AppsOf(scenarios))
	if err != nil {
		return nil, err
	}
	evs := make([]Evaluation, len(scenarios))
	err = forEachIndexed(len(scenarios), func(i int) error {
		ev, err := EvaluatePair(ctx, scenarios[i], factory, baselines, obj, r0)
		if err != nil {
			return err
		}
		evs[i] = ev
		return nil
	})
	if err != nil {
		return nil, err
	}
	return evs, nil
}

// MeasureBaselinesParallel is MeasureBaselines with solo runs executed
// concurrently. Like the serial form it goes through the byte-capped
// summary tier, so phase 1 keeps compact digests instead of full runs.
func MeasureBaselinesParallel(ctx Context, apps []AppSpec) (map[string]division.Baseline, error) {
	return measureBaselinesParallelCtx(context.Background(), ctx, apps)
}

// MeasureBaselinesParallelCtx is MeasureBaselinesParallel with the
// cancellation seam of the Ctx campaign entry points — the phase 1 the
// campaign service runs before sharding a job into scenarios.
func MeasureBaselinesParallelCtx(cctx context.Context, ctx Context, apps []AppSpec) (map[string]division.Baseline, error) {
	return measureBaselinesParallelCtx(cctx, ctx, apps)
}

// measureBaselinesParallelCtx is MeasureBaselinesParallel with the
// cancellation seam of the Ctx campaign entry points. Cancellation is
// checked before each solo run, not inside it: solo digests are shared
// through the (possibly job-scoped) summary cache, and a compute owned by
// one singleflight caller must not be aborted by another caller's deadline.
// Solo runs are short, so the drain latency is one run, not one campaign.
func measureBaselinesParallelCtx(cctx context.Context, ctx Context, apps []AppSpec) (map[string]division.Baseline, error) {
	results := make([]division.Baseline, len(apps))
	err := forEachIndexed(len(apps), func(i int) error {
		if err := cctx.Err(); err != nil {
			return err
		}
		b, err := MeasureBaselineSummary(ctx, apps[i])
		if err != nil {
			return err
		}
		results[i] = b
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]division.Baseline, len(apps))
	for i, app := range apps {
		out[app.baselineID()] = results[i]
	}
	return out, nil
}

package protocol

import (
	"runtime"
	"sync"
	"sync/atomic"

	"powerdiv/internal/division"
	"powerdiv/internal/models"
	"powerdiv/internal/units"
)

// parallelism is the worker count for campaign evaluation: scenarios are
// independent simulations, so they scale with cores.
func parallelism() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		return 1
	}
	return n
}

// forEachIndexed runs fn(i) for i in [0, n) across the worker pool and
// returns the first error (by index order, so results are deterministic
// regardless of scheduling). fn must only write state owned by its index.
//
// A failure sets a stop flag that drains the remaining indices: workers
// finish the call they are in and exit instead of dispatching more work.
// The first-error-by-index guarantee survives the early stop — indices are
// handed out in increasing order, so when any call fails, every lower
// index has already been dispatched, and its (possibly failing) result is
// recorded before its worker checks the flag.
func forEachIndexed(n int, fn func(i int) error) error {
	workers := parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var stop atomic.Bool
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !stop.Load() {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				obsWorkersBusy.Add(1)
				err := fn(i)
				errs[i] = err
				obsWorkersBusy.Add(-1)
				if err != nil {
					stop.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// EvaluateCampaignParallel is EvaluateCampaign with scenarios evaluated
// concurrently across CPU cores. Results are identical to the sequential
// version (every simulation and model seed derives from the scenario
// label, not from execution order).
func EvaluateCampaignParallel(ctx Context, scenarios []Scenario, factory models.Factory, obj Objective, r0 units.Watts) ([]Evaluation, error) {
	baselines, err := MeasureBaselinesParallel(ctx, AppsOf(scenarios))
	if err != nil {
		return nil, err
	}
	evs := make([]Evaluation, len(scenarios))
	err = forEachIndexed(len(scenarios), func(i int) error {
		ev, err := EvaluatePair(ctx, scenarios[i], factory, baselines, obj, r0)
		if err != nil {
			return err
		}
		evs[i] = ev
		return nil
	})
	if err != nil {
		return nil, err
	}
	return evs, nil
}

// MeasureBaselinesParallel is MeasureBaselines with solo runs executed
// concurrently. Like the serial form it goes through the byte-capped
// summary tier, so phase 1 keeps compact digests instead of full runs.
func MeasureBaselinesParallel(ctx Context, apps []AppSpec) (map[string]division.Baseline, error) {
	results := make([]division.Baseline, len(apps))
	err := forEachIndexed(len(apps), func(i int) error {
		b, err := MeasureBaselineSummary(ctx, apps[i])
		if err != nil {
			return err
		}
		results[i] = b
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]division.Baseline, len(apps))
	for i, app := range apps {
		out[app.baselineID()] = results[i]
	}
	return out, nil
}

package protocol

import (
	"context"
	"fmt"
	"time"

	"powerdiv/internal/division"
	"powerdiv/internal/machine"
	"powerdiv/internal/models"
	"powerdiv/internal/units"
)

// This file is the fused streaming pipeline: simulate → observe → score in
// one pass per scenario, with O(ticks-in-flight) simulator state. The
// materialized path (evaluate.go) simulates a scenario into a full
// machine.Run, converts it to a dense tick slice, and replays every model
// over it; here the models observe each tick as the simulator produces it,
// so per scenario the only O(ticks) state kept is what phase 3 scoring
// needs anyway — the per-model estimate matrices and the power/time
// scoring view. Pair runs are never materialized and never cached, which
// is where the memory goes: the byte-capped summary cache (cache.go) keeps
// only the compact phase 1 solo-run digests.
//
// Results are bit-identical to the materialized path (the streaming golden
// test pins this on both machines): the simulator yields the very records
// Simulate would store, StreamReplay accumulates the very matrix
// ReplayDense would, and scoring is literally the same scoreEstimates call.

// evaluateScenarioStreaming runs phases 2–3 for one scenario in a single
// simulator pass, scoring every factory: the scenario is simulated exactly
// once and all models observe the stream tick by tick. The result is
// indexed [factory][objective], matching truths.
//
// The scenario streams segment by segment (machine.StreamSegments): the
// simulator evaluates each constant segment once, and the models observe
// it through StreamReplay.ObserveSegment — the model-side counterpart of
// the segment engine, bit-identical to per-tick observation.
//
// cctx is the cancellation seam: it is polled once per simulated tick
// inside the stream yield (segments poll once per covered tick, keeping
// the poll count of the per-tick engine), so a cancelled context (client
// disconnect, job deadline) aborts the simulator mid-run instead of after
// the scenario — the error unwraps to cctx's cause via errors.Is.
// Cancellation only ever aborts; it cannot perturb the float accumulation
// order of a run that completes.
func evaluateScenarioStreaming(cctx context.Context, ctx Context, s Scenario, fs []models.Factory, truths []division.Shares) ([][]Evaluation, error) {
	cfg := ctx.Machine
	cfg.Seed = deriveSeed(ctx.Seed, "pair", s.Label())
	procs := make([]machine.Proc, len(s.Apps))
	ids := make([]string, len(s.Apps))
	for i, a := range s.Apps {
		procs[i] = a.proc()
		ids[i] = a.ID
	}
	// The roster is the sorted app-ID order — exactly the slot order the
	// simulator streams its columns in.
	roster := machine.NewRoster(ids)
	ms := make([]models.Model, len(fs))
	for m, f := range fs {
		ms[m] = f.New(deriveSeed(ctx.Seed, "model", f.Name, s.Label()))
	}
	tick := cfg.TickInterval()
	maxTicks := int(ctx.RunFor/tick) + 1
	if maxTicks < 0 {
		maxTicks = 0
	}
	logical := cfg.Spec.Topology.LogicalCPUs()
	replay := models.NewStreamReplay(roster, ms, maxTicks)
	defer replay.Release()
	scr := getScoreScratch()
	defer putScoreScratch(scr)
	ts := tickSeries{at: scr.at[:0], power: scr.power[:0]}
	// One sample column is reused for every segment; models copy what they
	// keep (StreamReplay's contract).
	scratch := make([]models.ProcSample, roster.Len())
	segTicks := models.SegmentTicks{Tick: models.Tick{
		Interval:    tick,
		LogicalCPUs: logical,
		Roster:      roster,
		Samples:     scratch,
	}}
	_, err := machine.StreamSegments(cfg, procs, ctx.RunFor, func(seg *machine.Segment) error {
		rec := seg.Rec
		for slot := range scratch {
			pt := rec.Procs[slot]
			scratch[slot] = models.ProcSample{
				CPUTime:    pt.CPUTime,
				Counters:   pt.Counters,
				Threads:    pt.Threads,
				TrueActive: pt.ActivePower,
			}
		}
		segTicks.Tick.At = rec.At
		segTicks.Tick.MachinePower = seg.Powers[0]
		segTicks.Tick.Freq = rec.Freq
		segTicks.Powers = seg.Powers
		replay.ObserveSegment(&segTicks)
		for i := range seg.Powers {
			if err := cctx.Err(); err != nil {
				return err
			}
			ts.at = append(ts.at, seg.At(i))
			ts.power = append(ts.power, seg.Powers[i])
		}
		return nil
	})
	scr.at, scr.power = ts.at, ts.power
	if err != nil {
		return nil, fmt.Errorf("protocol: scenario %q: %w", s.Label(), err)
	}
	out := make([][]Evaluation, len(fs))
	// The scoring window depends on the model only through its OK vector,
	// and most models estimate every tick — so windows are computed once
	// per distinct OK vector, not once per model.
	var windows []scoringWindow
	for m, f := range fs {
		est := replay.Estimates(m)
		from, to := windowFor(ctx, ts, est.OK, scr, &windows)
		evs, err := scoreEstimatesWindow(ctx, s, ts, f.Name, est, truths, scr, from, to)
		if err != nil {
			return nil, err
		}
		out[m] = evs
	}
	return out, nil
}

// EvaluateScenarioRepsStreaming evaluates one scenario under several
// campaign seeds in a single simulator pass — the batched counterpart of
// calling EvaluateScenarioStreaming once per seed with Context.Seed set to
// each element of seeds. Repetitions of a scenario differ only in their
// noise and model seeds (the machine dynamics are seed-independent), so the
// expensive deterministic simulation runs once via machine.StreamBatch and
// each repetition's models observe the shared stream under that
// repetition's noise overlay.
//
// truths is indexed [rep][objective]: phase 1 baselines may differ across
// campaign seeds, so each repetition scores against its own truth shares.
// The result is indexed [rep][factory][objective] and each repetition's
// rows are bit-identical to the unbatched evaluation at that seed (the
// batch golden test pins this). The digest cache is not consulted: the
// batch is itself the dedup.
func EvaluateScenarioRepsStreaming(cctx context.Context, ctx Context, s Scenario, fs []models.Factory, truths [][]division.Shares, seeds []int64) ([][][]Evaluation, error) {
	if len(truths) != len(seeds) {
		return nil, fmt.Errorf("protocol: %d truth sets for %d seeds", len(truths), len(seeds))
	}
	if len(seeds) == 0 {
		return nil, nil
	}
	cfg := ctx.Machine
	procs := make([]machine.Proc, len(s.Apps))
	ids := make([]string, len(s.Apps))
	for i, a := range s.Apps {
		procs[i] = a.proc()
		ids[i] = a.ID
	}
	roster := machine.NewRoster(ids)
	tick := cfg.TickInterval()
	maxTicks := int(ctx.RunFor/tick) + 1
	if maxTicks < 0 {
		maxTicks = 0
	}
	logical := cfg.Spec.Topology.LogicalCPUs()

	noiseSeeds := make([]int64, len(seeds))
	replays := make([]*models.StreamReplay, len(seeds))
	series := make([]tickSeries, len(seeds))
	for r, seed := range seeds {
		noiseSeeds[r] = deriveSeed(seed, "pair", s.Label())
		ms := make([]models.Model, len(fs))
		for m, f := range fs {
			ms[m] = f.New(deriveSeed(seed, "model", f.Name, s.Label()))
		}
		replays[r] = models.NewStreamReplay(roster, ms, maxTicks)
		series[r] = tickSeries{
			at:    make([]time.Duration, 0, maxTicks),
			power: make([]units.Watts, 0, maxTicks),
		}
	}
	defer func() {
		for _, r := range replays {
			r.Release()
		}
	}()

	// Segments arrive once per repetition (in repetition order) with that
	// repetition's noise overlay; the shared sample column is copied on the
	// first repetition of each segment, before any model observes it.
	scratch := make([]models.ProcSample, roster.Len())
	segTicks := models.SegmentTicks{Tick: models.Tick{
		Interval:    tick,
		LogicalCPUs: logical,
		Roster:      roster,
		Samples:     scratch,
	}}
	_, err := machine.StreamBatchSegments(cfg, procs, ctx.RunFor, noiseSeeds, func(rep int, seg *machine.Segment) error {
		rec := seg.Rec
		if rep == 0 {
			for slot := range scratch {
				pt := rec.Procs[slot]
				scratch[slot] = models.ProcSample{
					CPUTime:    pt.CPUTime,
					Counters:   pt.Counters,
					Threads:    pt.Threads,
					TrueActive: pt.ActivePower,
				}
			}
		}
		segTicks.Tick.At = rec.At
		segTicks.Tick.MachinePower = seg.Powers[0]
		segTicks.Tick.Freq = rec.Freq
		segTicks.Powers = seg.Powers
		replays[rep].ObserveSegment(&segTicks)
		for i := range seg.Powers {
			if rep == 0 {
				if err := cctx.Err(); err != nil {
					return err
				}
			}
			series[rep].at = append(series[rep].at, seg.At(i))
			series[rep].power = append(series[rep].power, seg.Powers[i])
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("protocol: scenario %q: %w", s.Label(), err)
	}

	out := make([][][]Evaluation, len(seeds))
	scr := getScoreScratch()
	defer putScoreScratch(scr)
	for r := range seeds {
		repCtx := ctx
		repCtx.Seed = seeds[r]
		rows := make([][]Evaluation, len(fs))
		var windows []scoringWindow
		for m, f := range fs {
			est := replays[r].Estimates(m)
			from, to := windowFor(repCtx, series[r], est.OK, scr, &windows)
			evs, err := scoreEstimatesWindow(repCtx, s, series[r], f.Name, est, truths[r], scr, from, to)
			if err != nil {
				return nil, err
			}
			rows[m] = evs
		}
		out[r] = rows
	}
	return out, nil
}

// scoringWindow memoizes one distinct OK vector's stable scoring window
// within a scenario. The ok slice is aliased, not copied: estimate matrices
// are immutable once scoring starts.
type scoringWindow struct {
	ok       []bool
	from, to time.Duration
}

// windowFor resolves the scoring window for ok, reusing a previously
// computed window when an identical OK vector was already seen.
func windowFor(ctx Context, ts tickSeries, ok []bool, scr *scoreScratch, windows *[]scoringWindow) (time.Duration, time.Duration) {
	for _, w := range *windows {
		if boolsEqual(w.ok, ok) {
			return w.from, w.to
		}
	}
	from, to := stableScoringWindow(ctx, ts, ok, scr.scored)
	*windows = append(*windows, scoringWindow{ok: ok, from: from, to: to})
	return from, to
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// EvaluatePairStreaming is EvaluatePair on the streaming pipeline: same
// evaluation bit for bit, without materializing or caching the pair run.
func EvaluatePairStreaming(ctx Context, s Scenario, factory models.Factory, baselines map[string]division.Baseline, obj Objective, r0 units.Watts) (Evaluation, error) {
	done := observeScenario()
	truths, err := scenarioTruths(s, baselines, []Objective{obj}, r0)
	if err != nil {
		return Evaluation{Scenario: s, Model: factory.Name}, err
	}
	rows, err := evaluateScenarioCached(context.Background(), ctx, s, []models.Factory{factory}, truths)
	if err != nil {
		return Evaluation{Scenario: s, Model: factory.Name}, err
	}
	done()
	return rows[0][0], nil
}

// EvaluateScenarioStreaming scores every factory over one scenario on the
// fused streaming pipeline — the per-scenario unit the campaign service
// shards jobs into. The returned slice is index-aligned with fs, and each
// row is bit-identical to the corresponding row a whole-campaign
// EvaluateModelsStreaming call would produce: the simulation and model
// seeds derive from the scenario label alone, so per-scenario results do
// not depend on which other scenarios run, in what order, or on which
// process. cctx cancellation aborts the simulator mid-run.
func EvaluateScenarioStreaming(cctx context.Context, ctx Context, s Scenario, fs []models.Factory, baselines map[string]division.Baseline, obj Objective, r0 units.Watts) ([]Evaluation, error) {
	done := observeScenario()
	truths, err := scenarioTruths(s, baselines, []Objective{obj}, r0)
	if err != nil {
		return nil, err
	}
	rows, err := evaluateScenarioCached(cctx, ctx, s, fs, truths)
	if err != nil {
		return nil, err
	}
	out := make([]Evaluation, len(fs))
	for m := range fs {
		out[m] = rows[m][0]
	}
	done()
	return out, nil
}

// EvaluateModelsStreaming is EvaluateModels on the streaming pipeline.
// Phase 1 baselines come from the byte-capped summary cache; each scenario
// is then simulated exactly once per campaign — regardless of cache state
// or model count, because all models ride the same stream — and scored with
// the shared scoring tail. Peak memory per worker is the estimate matrices
// of one scenario instead of a full cached run per scenario, which is what
// lets combinatorial sweeps scale. Scenarios run concurrently across the
// worker pool; results are deterministic regardless of scheduling.
func EvaluateModelsStreaming(ctx Context, scenarios []Scenario, factories func(map[string]division.Baseline) []models.Factory, obj Objective, r0 units.Watts) (map[string][]Evaluation, error) {
	return EvaluateModelsStreamingCtx(context.Background(), ctx, scenarios, factories, obj, r0)
}

// EvaluateModelsStreamingCtx is EvaluateModelsStreaming with a cancellation
// seam: when cctx is cancelled (client disconnect, deadline) the campaign
// stops mid-run — in-flight scenarios abort their simulators at the next
// tick, the worker pool drains, and the shared worker budget returns to
// full. The error then unwraps to cctx's cause. An uncancelled cctx changes
// nothing: results are bit-identical to EvaluateModelsStreaming.
func EvaluateModelsStreamingCtx(cctx context.Context, ctx Context, scenarios []Scenario, factories func(map[string]division.Baseline) []models.Factory, obj Objective, r0 units.Watts) (map[string][]Evaluation, error) {
	baselines, err := measureBaselinesParallelCtx(cctx, ctx, AppsOf(scenarios))
	if err != nil {
		return nil, err
	}
	fs := factories(baselines)
	objectives := []Objective{obj}
	perScenario := make([][]Evaluation, len(scenarios))
	err = forEachIndexed(len(scenarios), func(i int) error {
		s := scenarios[i]
		done := observeScenario()
		truths, err := scenarioTruths(s, baselines, objectives, r0)
		if err != nil {
			return err
		}
		rows, err := evaluateScenarioCached(cctx, ctx, s, fs, truths)
		if err != nil {
			return err
		}
		row := make([]Evaluation, len(fs))
		for m := range fs {
			row[m] = rows[m][0]
		}
		perScenario[i] = row
		done()
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := map[string][]Evaluation{}
	for m, f := range fs {
		evs := make([]Evaluation, len(scenarios))
		for i := range scenarios {
			evs[i] = perScenario[i][m]
		}
		out[f.Name] = evs
	}
	return out, nil
}

package protocol

import (
	"context"
	"fmt"
	"time"

	"powerdiv/internal/division"
	"powerdiv/internal/machine"
	"powerdiv/internal/models"
	"powerdiv/internal/units"
)

// This file is the fused streaming pipeline: simulate → observe → score in
// one pass per scenario, with O(ticks-in-flight) simulator state. The
// materialized path (evaluate.go) simulates a scenario into a full
// machine.Run, converts it to a dense tick slice, and replays every model
// over it; here the models observe each tick as the simulator produces it,
// so per scenario the only O(ticks) state kept is what phase 3 scoring
// needs anyway — the per-model estimate matrices and the power/time
// scoring view. Pair runs are never materialized and never cached, which
// is where the memory goes: the byte-capped summary cache (cache.go) keeps
// only the compact phase 1 solo-run digests.
//
// Results are bit-identical to the materialized path (the streaming golden
// test pins this on both machines): the simulator yields the very records
// Simulate would store, StreamReplay accumulates the very matrix
// ReplayDense would, and scoring is literally the same scoreEstimates call.

// evaluateScenarioStreaming runs phases 2–3 for one scenario in a single
// simulator pass, scoring every factory: the scenario is simulated exactly
// once and all models observe the stream tick by tick. The result is
// indexed [factory][objective], matching truths.
//
// cctx is the cancellation seam: it is polled once per simulated tick
// inside the stream yield, so a cancelled context (client disconnect, job
// deadline) aborts the simulator mid-run instead of after the scenario —
// the error unwraps to cctx's cause via errors.Is. Cancellation only ever
// aborts; it cannot perturb the float accumulation order of a run that
// completes.
func evaluateScenarioStreaming(cctx context.Context, ctx Context, s Scenario, fs []models.Factory, truths []division.Shares) ([][]Evaluation, error) {
	cfg := ctx.Machine
	cfg.Seed = deriveSeed(ctx.Seed, "pair", s.Label())
	procs := make([]machine.Proc, len(s.Apps))
	ids := make([]string, len(s.Apps))
	for i, a := range s.Apps {
		procs[i] = a.proc()
		ids[i] = a.ID
	}
	// The roster is the sorted app-ID order — exactly the slot order the
	// simulator streams its columns in.
	roster := machine.NewRoster(ids)
	ms := make([]models.Model, len(fs))
	for m, f := range fs {
		ms[m] = f.New(deriveSeed(ctx.Seed, "model", f.Name, s.Label()))
	}
	tick := cfg.TickInterval()
	maxTicks := int(ctx.RunFor/tick) + 1
	if maxTicks < 0 {
		maxTicks = 0
	}
	logical := cfg.Spec.Topology.LogicalCPUs()
	replay := models.NewStreamReplay(roster, ms, maxTicks)
	ts := tickSeries{
		at:    make([]time.Duration, 0, maxTicks),
		power: make([]units.Watts, 0, maxTicks),
	}
	// One sample column is reused for every tick; models copy what they
	// keep (StreamReplay's contract).
	scratch := make([]models.ProcSample, roster.Len())
	_, err := machine.Stream(cfg, procs, ctx.RunFor, func(rec *machine.TickRecord) error {
		if err := cctx.Err(); err != nil {
			return err
		}
		for slot := range scratch {
			pt := rec.Procs[slot]
			scratch[slot] = models.ProcSample{
				CPUTime:    pt.CPUTime,
				Counters:   pt.Counters,
				Threads:    pt.Threads,
				TrueActive: pt.ActivePower,
			}
		}
		replay.Observe(models.Tick{
			At:           rec.At,
			Interval:     tick,
			MachinePower: rec.Power,
			LogicalCPUs:  logical,
			Freq:         rec.Freq,
			Roster:       roster,
			Samples:      scratch,
		})
		ts.at = append(ts.at, rec.At)
		ts.power = append(ts.power, rec.Power)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("protocol: scenario %q: %w", s.Label(), err)
	}
	out := make([][]Evaluation, len(fs))
	scr := newScoreScratch()
	for m, f := range fs {
		evs, err := scoreEstimates(ctx, s, ts, f.Name, replay.Estimates(m), truths, scr)
		if err != nil {
			return nil, err
		}
		out[m] = evs
	}
	return out, nil
}

// EvaluatePairStreaming is EvaluatePair on the streaming pipeline: same
// evaluation bit for bit, without materializing or caching the pair run.
func EvaluatePairStreaming(ctx Context, s Scenario, factory models.Factory, baselines map[string]division.Baseline, obj Objective, r0 units.Watts) (Evaluation, error) {
	done := observeScenario()
	truths, err := scenarioTruths(s, baselines, []Objective{obj}, r0)
	if err != nil {
		return Evaluation{Scenario: s, Model: factory.Name}, err
	}
	rows, err := evaluateScenarioStreaming(context.Background(), ctx, s, []models.Factory{factory}, truths)
	if err != nil {
		return Evaluation{Scenario: s, Model: factory.Name}, err
	}
	done()
	return rows[0][0], nil
}

// EvaluateScenarioStreaming scores every factory over one scenario on the
// fused streaming pipeline — the per-scenario unit the campaign service
// shards jobs into. The returned slice is index-aligned with fs, and each
// row is bit-identical to the corresponding row a whole-campaign
// EvaluateModelsStreaming call would produce: the simulation and model
// seeds derive from the scenario label alone, so per-scenario results do
// not depend on which other scenarios run, in what order, or on which
// process. cctx cancellation aborts the simulator mid-run.
func EvaluateScenarioStreaming(cctx context.Context, ctx Context, s Scenario, fs []models.Factory, baselines map[string]division.Baseline, obj Objective, r0 units.Watts) ([]Evaluation, error) {
	done := observeScenario()
	truths, err := scenarioTruths(s, baselines, []Objective{obj}, r0)
	if err != nil {
		return nil, err
	}
	rows, err := evaluateScenarioStreaming(cctx, ctx, s, fs, truths)
	if err != nil {
		return nil, err
	}
	out := make([]Evaluation, len(fs))
	for m := range fs {
		out[m] = rows[m][0]
	}
	done()
	return out, nil
}

// EvaluateModelsStreaming is EvaluateModels on the streaming pipeline.
// Phase 1 baselines come from the byte-capped summary cache; each scenario
// is then simulated exactly once per campaign — regardless of cache state
// or model count, because all models ride the same stream — and scored with
// the shared scoring tail. Peak memory per worker is the estimate matrices
// of one scenario instead of a full cached run per scenario, which is what
// lets combinatorial sweeps scale. Scenarios run concurrently across the
// worker pool; results are deterministic regardless of scheduling.
func EvaluateModelsStreaming(ctx Context, scenarios []Scenario, factories func(map[string]division.Baseline) []models.Factory, obj Objective, r0 units.Watts) (map[string][]Evaluation, error) {
	return EvaluateModelsStreamingCtx(context.Background(), ctx, scenarios, factories, obj, r0)
}

// EvaluateModelsStreamingCtx is EvaluateModelsStreaming with a cancellation
// seam: when cctx is cancelled (client disconnect, deadline) the campaign
// stops mid-run — in-flight scenarios abort their simulators at the next
// tick, the worker pool drains, and the shared worker budget returns to
// full. The error then unwraps to cctx's cause. An uncancelled cctx changes
// nothing: results are bit-identical to EvaluateModelsStreaming.
func EvaluateModelsStreamingCtx(cctx context.Context, ctx Context, scenarios []Scenario, factories func(map[string]division.Baseline) []models.Factory, obj Objective, r0 units.Watts) (map[string][]Evaluation, error) {
	baselines, err := measureBaselinesParallelCtx(cctx, ctx, AppsOf(scenarios))
	if err != nil {
		return nil, err
	}
	fs := factories(baselines)
	objectives := []Objective{obj}
	perScenario := make([][]Evaluation, len(scenarios))
	err = forEachIndexed(len(scenarios), func(i int) error {
		s := scenarios[i]
		done := observeScenario()
		truths, err := scenarioTruths(s, baselines, objectives, r0)
		if err != nil {
			return err
		}
		rows, err := evaluateScenarioStreaming(cctx, ctx, s, fs, truths)
		if err != nil {
			return err
		}
		row := make([]Evaluation, len(fs))
		for m := range fs {
			row[m] = rows[m][0]
		}
		perScenario[i] = row
		done()
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := map[string][]Evaluation{}
	for m, f := range fs {
		evs := make([]Evaluation, len(scenarios))
		for i := range scenarios {
			evs[i] = perScenario[i][m]
		}
		out[f.Name] = evs
	}
	return out, nil
}

package protocol

import (
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"powerdiv/internal/machine"
)

// CampaignKind names the seed-derivation family a campaign's scenarios
// simulate under — the label EvaluateModelsStreaming ("pair") or
// EvaluateTrafficStreaming ("traffic") folds into each scenario's config
// seed. Fingerprints must use the same label as the evaluator that will run
// the scenarios, or they address different simulations.
type CampaignKind string

const (
	// PairCampaign is the static pair/combination campaign family
	// (EvaluatePair*, EvaluateModels*).
	PairCampaign CampaignKind = "pair"
	// TrafficCampaign is the timed-roster campaign family
	// (EvaluateTraffic*).
	TrafficCampaign CampaignKind = "traffic"
)

// CampaignFingerprint content-addresses a campaign's phase 2 simulations:
// an FNV-1a digest over every scenario's run-memoization key — the exact
// fingerprint the cache files the simulated run under (machine calibration,
// performance settings, derived seed, full process list, duration) — plus
// the scoring window. Two campaigns with equal fingerprints simulate
// byte-identical runs and score them over the same stable window, so
// per-scenario results computed under one are valid under the other. The
// campaign service uses this to bind snapshots to submissions: a resumed
// job replays completed rows only when the fingerprints match.
func CampaignFingerprint(ctx Context, scenarios []Scenario, kind CampaignKind, runFor time.Duration) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "kind:%s|stable:%d|n:%d", kind, int64(ctx.StableWindow), len(scenarios))
	for _, s := range scenarios {
		cfg := ctx.Machine
		cfg.Seed = deriveSeed(ctx.Seed, string(kind), s.Label())
		procs := make([]machine.Proc, len(s.Apps))
		for i, a := range s.Apps {
			procs[i] = a.proc()
		}
		h.Write([]byte{0})
		io.WriteString(h, runKey(cfg, procs, runFor))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

package protocol

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"powerdiv/internal/models"
)

func TestForEachIndexed(t *testing.T) {
	const n = 100
	var sum int64
	err := forEachIndexed(n, func(i int) error {
		atomic.AddInt64(&sum, int64(i))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != n*(n-1)/2 {
		t.Errorf("sum = %d, want %d", sum, n*(n-1)/2)
	}
}

func TestForEachIndexedError(t *testing.T) {
	sentinel := errors.New("boom")
	err := forEachIndexed(50, func(i int) error {
		if i == 7 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want sentinel", err)
	}
	if err := forEachIndexed(0, func(int) error { return sentinel }); err != nil {
		t.Errorf("empty iteration err = %v", err)
	}
}

// TestForEachIndexedEarlyDrain pins the stop-flag semantics: once a call
// fails, the pool drains instead of dispatching the full index range, and
// the error returned is still the failing error with the lowest index even
// though higher-indexed failures may be recorded first.
func TestForEachIndexedEarlyDrain(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	const n = 400
	const firstBad = 5
	var calls atomic.Int64
	err := forEachIndexed(n, func(i int) error {
		calls.Add(1)
		time.Sleep(time.Millisecond)
		if i >= firstBad {
			return fmt.Errorf("bad index %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != fmt.Sprintf("bad index %d", firstBad) {
		t.Errorf("err = %v, want bad index %d (lowest failing index)", err, firstBad)
	}
	// Every index at or above firstBad fails, so the stop flag is set
	// almost immediately; a full dispatch of all n indices means the drain
	// never engaged. Allow generous scheduling slack.
	if c := calls.Load(); c >= n/2 {
		t.Errorf("dispatched %d of %d calls after an early failure; early drain not engaged", c, n)
	}
}

// TestForEachNestedBudget pins the shared worker budget: a ForEach whose
// callback itself fans out through forEachIndexed (the fleet-over-campaign
// shape) must keep the total number of concurrently executing callbacks
// within GOMAXPROCS instead of multiplying the two levels.
func TestForEachNestedBudget(t *testing.T) {
	const budget = 4
	prev := runtime.GOMAXPROCS(budget)
	defer runtime.GOMAXPROCS(prev)

	var busy, highWater atomic.Int64
	enter := func() {
		n := busy.Add(1)
		for {
			hw := highWater.Load()
			if n <= hw || highWater.CompareAndSwap(hw, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond) // widen the overlap window
	}
	err := ForEach(8, func(int) error {
		return forEachIndexed(8, func(int) error {
			enter()
			defer busy.Add(-1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if hw := highWater.Load(); hw > budget {
		t.Fatalf("nested fan-out ran %d callbacks concurrently, budget %d", hw, budget)
	}
	if left := activeWorkers.Load(); left != 0 {
		t.Fatalf("worker budget leaked: %d slots still held", left)
	}
}

func TestParallelCampaignMatchesSequential(t *testing.T) {
	ctx := labSmall()
	scenarios, err := StressPairs([]string{"fibonacci", "float64", "matrixprod", "queens"}, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := EvaluateCampaign(ctx, scenarios, models.NewScaphandre(), ObjectiveActive, 0)
	if err != nil {
		t.Fatal(err)
	}
	par, err := EvaluateCampaignParallel(ctx, scenarios, models.NewScaphandre(), ObjectiveActive, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("lengths %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Scenario.Label() != par[i].Scenario.Label() {
			t.Fatalf("scenario %d order differs: %q vs %q", i, seq[i].Scenario.Label(), par[i].Scenario.Label())
		}
		if seq[i].AE != par[i].AE {
			t.Errorf("scenario %q: AE %v vs %v", seq[i].Scenario.Label(), seq[i].AE, par[i].AE)
		}
	}
}

func TestParallelBaselinesMatchSequential(t *testing.T) {
	ctx := labSmall()
	apps := []AppSpec{
		mustStressApp(t, "fibonacci", 1),
		mustStressApp(t, "matrixprod", 2),
		mustStressApp(t, "int64", 3),
	}
	seq, err := MeasureBaselines(ctx, apps)
	if err != nil {
		t.Fatal(err)
	}
	par, err := MeasureBaselinesParallel(ctx, apps)
	if err != nil {
		t.Fatal(err)
	}
	for id, b := range seq {
		p, ok := par[id]
		if !ok {
			t.Fatalf("missing %s in parallel baselines", id)
		}
		if b != p {
			t.Errorf("%s: %+v vs %+v", id, b, p)
		}
	}
}

func TestParallelCampaignPropagatesErrors(t *testing.T) {
	ctx := labSmall()
	// A scenario that oversubscribes the machine fails inside the pool.
	big := Scenario{Apps: []AppSpec{
		mustStressApp(t, "fibonacci", 4),
		mustStressApp(t, "matrixprod", 4),
	}}
	small := Scenario{Apps: []AppSpec{
		mustStressApp(t, "fibonacci", 1),
		mustStressApp(t, "matrixprod", 1),
	}}
	_, err := EvaluateCampaignParallel(ctx, []Scenario{small, big}, models.NewScaphandre(), ObjectiveActive, 0)
	if err == nil {
		t.Error("oversubscribed scenario did not fail")
	}
}

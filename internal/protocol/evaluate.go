package protocol

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"powerdiv/internal/division"
	"powerdiv/internal/machine"
	"powerdiv/internal/models"
	"powerdiv/internal/trace"
	"powerdiv/internal/units"
)

// Objective selects the truth construction a model is scored against.
type Objective int

const (
	// ObjectiveActive is Equation 3: shares of isolated active power. The
	// default, used for the §IV-A laboratory and production evaluations.
	ObjectiveActive Objective = iota
	// ObjectiveResidualAware allocates inter-application residual deltas
	// to the application causing them (§IV-B, Fig 9a).
	ObjectiveResidualAware
	// ObjectiveNominalResidual treats residual above the nominal-frequency
	// residual R0 as application consumption (§IV-B, Fig 9b).
	ObjectiveNominalResidual
)

// String names the objective.
func (o Objective) String() string {
	switch o {
	case ObjectiveActive:
		return "active (Eq 3)"
	case ObjectiveResidualAware:
		return "residual-aware (Fig 9a)"
	case ObjectiveNominalResidual:
		return "nominal-residual (Fig 9b)"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Scenario is a parallel scenario S of applications (usually a pair).
type Scenario struct {
	Apps []AppSpec
}

// Label identifies the scenario, e.g. "fibonacci-3 || matrixprod-3".
func (s Scenario) Label() string {
	out := ""
	for i, a := range s.Apps {
		if i > 0 {
			out += " || "
		}
		out += a.ID
	}
	return out
}

// SameSize reports whether all applications have the same thread count.
func (s Scenario) SameSize() bool {
	for _, a := range s.Apps[1:] {
		if a.Threads != s.Apps[0].Threads {
			return false
		}
	}
	return true
}

// Evaluation is the scored outcome of one model on one scenario.
type Evaluation struct {
	Scenario Scenario
	Model    string
	// AE is the absolute error of Equation 5 over the scored window.
	AE float64
	// Truth is the objective share of each application.
	Truth division.Shares
	// EstShare is the model's mean estimated share of each application
	// over the scored window.
	EstShare division.Shares
	// Point is the scenario's ratio-scatter point (Fig 4–7 axes), defined
	// for two-application scenarios.
	Point division.RatioPoint
	// ScoredTicks is how many ticks entered the Eq 5 average.
	ScoredTicks int
}

// EvaluatePair runs protocol phases 2–3 for one scenario and model: the
// applications execute in parallel, the model observes the run, and Eq 5
// scores it against the selected objective. r0 is only used by
// ObjectiveNominalResidual.
func EvaluatePair(ctx Context, s Scenario, factory models.Factory, baselines map[string]division.Baseline, obj Objective, r0 units.Watts) (Evaluation, error) {
	evs, err := EvaluatePairMulti(ctx, s, factory, baselines, []Objective{obj}, r0)
	if err != nil {
		return Evaluation{Scenario: s, Model: factory.Name}, err
	}
	return evs[0], nil
}

// EvaluatePairMulti is EvaluatePair scoring several objectives from a
// single simulated run (the run and the model replay are identical across
// objectives; only the truth construction differs). The returned slice is
// index-aligned with objectives.
func EvaluatePairMulti(ctx Context, s Scenario, factory models.Factory, baselines map[string]division.Baseline, objectives []Objective, r0 units.Watts) ([]Evaluation, error) {
	done := observeScenario()
	truths, err := scenarioTruths(s, baselines, objectives, r0)
	if err != nil {
		return nil, err
	}
	run, err := scenarioRun(ctx, s)
	if err != nil {
		return nil, err
	}
	evs, err := scoreRun(ctx, s, run, models.RunTicksDense(run), factory, truths)
	if err == nil {
		done()
	}
	return evs, err
}

// scenarioTruths resolves the objective shares a scenario is scored
// against, index-aligned with objectives.
func scenarioTruths(s Scenario, baselines map[string]division.Baseline, objectives []Objective, r0 units.Watts) ([]division.Shares, error) {
	if len(s.Apps) < 2 {
		return nil, fmt.Errorf("protocol: scenario %q needs ≥2 applications", s.Label())
	}
	if len(objectives) == 0 {
		return nil, fmt.Errorf("protocol: no objectives for %q", s.Label())
	}
	bs := make([]division.Baseline, 0, len(s.Apps))
	for _, a := range s.Apps {
		b, ok := baselines[a.baselineID()]
		if !ok {
			return nil, fmt.Errorf("protocol: no baseline for %s (run phase 1 first)", a.ID)
		}
		// The truth shares key by the roster's instance IDs, not by the
		// (possibly shared) application type the baseline was measured as.
		b.ID = a.ID
		bs = append(bs, b)
	}
	truths := make([]division.Shares, len(objectives))
	for i, obj := range objectives {
		var truth division.Shares
		switch obj {
		case ObjectiveActive:
			truth = division.TruthShares(bs)
		case ObjectiveResidualAware:
			truth = division.TruthSharesResidualAware(bs)
		case ObjectiveNominalResidual:
			truth = division.TruthSharesNominalResidual(bs, r0)
		default:
			return nil, fmt.Errorf("protocol: unknown objective %d", int(obj))
		}
		if truth == nil {
			return nil, fmt.Errorf("protocol: degenerate objective %v for %q", obj, s.Label())
		}
		truths[i] = truth
	}
	return truths, nil
}

// scenarioRun simulates the scenario's parallel phase (protocol phase 2)
// through the memoization cache, so that every model evaluating the same
// scenario shares one simulated run. The returned run is read-only.
func scenarioRun(ctx Context, s Scenario) (*machine.Run, error) {
	cfg := ctx.Machine
	cfg.Seed = deriveSeed(ctx.Seed, "pair", s.Label())
	procs := make([]machine.Proc, len(s.Apps))
	for i, a := range s.Apps {
		procs[i] = a.proc()
	}
	run, err := ctx.memo().simulateCached(cfg, procs, ctx.RunFor)
	if err != nil {
		return nil, fmt.Errorf("protocol: scenario %q: %w", s.Label(), err)
	}
	return run, nil
}

// tickSeries is the compact per-tick view phase 3 scoring needs — tick
// times and measured machine power, index-aligned with a model's estimate
// matrix. The materialized path projects it out of a run once per scenario;
// the streaming path accumulates it directly as the ticks arrive.
type tickSeries struct {
	at    []time.Duration
	power []units.Watts
}

// runSeries projects a run down to the scoring view.
func runSeries(run *machine.Run) tickSeries {
	ts := tickSeries{
		at:    make([]time.Duration, len(run.Ticks)),
		power: make([]units.Watts, len(run.Ticks)),
	}
	for i := range run.Ticks {
		ts.at[i] = run.Ticks[i].At
		ts.power[i] = run.Ticks[i].Power
	}
	return ts
}

// scoreScratch holds the scoring tail's reusable buffers, so one worker
// scoring many models (and many scenarios) refills them instead of
// reallocating per call. Reuse changes only where the buffers live, never
// the accumulation order, so results stay bit-identical to fresh buffers.
type scoreScratch struct {
	scored      *trace.Series
	scoredEsts  [][]units.Watts
	scoredPower []units.Watts
	// at/power back the streaming pipeline's per-scenario tickSeries, so
	// the scoring view rides the same recycled scratch as the rest of the
	// tail.
	at    []time.Duration
	power []units.Watts
	// meanEst and truthVec are roster-width accumulators reused across the
	// models/objectives of a scenario.
	meanEst  []float64
	truthVec []float64
}

// rosterVec returns buf resized to n entries, reallocating only on growth;
// the contents are unspecified — callers overwrite every entry.
func rosterVec(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func newScoreScratch() *scoreScratch {
	return &scoreScratch{scored: trace.New()}
}

// scoreScratchPool recycles scoring scratch across scenarios: the scratch
// holds the only scoring-side buffers whose size is O(run ticks), and a
// campaign's workers score hundreds of scenarios back to back. Pooled
// buffers are always resliced to zero length before reuse, so recycling
// cannot change a single accumulation.
var scoreScratchPool = sync.Pool{New: func() any { return newScoreScratch() }}

func getScoreScratch() *scoreScratch  { return scoreScratchPool.Get().(*scoreScratch) }
func putScoreScratch(s *scoreScratch) { scoreScratchPool.Put(s) }

// scoreRun is protocol phase 3 for one model on an already-simulated
// scenario run: the model replays the run's observations (ticks, the run's
// pre-converted dense model inputs — shared across models scoring the same
// run) and Eq 5 scores its estimates against each objective's truth shares
// (index-aligned with the returned evaluations).
func scoreRun(ctx Context, s Scenario, run *machine.Run, ticks []models.Tick, factory models.Factory, truths []division.Shares) ([]Evaluation, error) {
	return scoreRunSeries(ctx, s, runSeries(run), ticks, factory, truths, nil)
}

// scoreRunSeries is scoreRun over a pre-projected scoring view (shared
// across the models scoring one scenario). scr may be nil for one-shot
// callers.
func scoreRunSeries(ctx Context, s Scenario, ts tickSeries, ticks []models.Tick, factory models.Factory, truths []division.Shares, scr *scoreScratch) ([]Evaluation, error) {
	model := factory.New(deriveSeed(ctx.Seed, "model", factory.Name, s.Label()))
	est := models.ReplayDense(model, ticks)
	return scoreEstimates(ctx, s, ts, factory.Name, est, truths, scr)
}

// scoreEstimates is the scoring tail shared by the materialized and the
// streaming pipelines: Eq 5 over an already-accumulated estimate matrix and
// the matching tick series. Because both pipelines call exactly this code
// over identically-accumulated inputs, their error tables are bit-identical
// by construction (the streaming golden test pins it).
//
// The whole phase is columnar: the scored ticks are column views of the
// estimate slab, and the truths are projected onto the roster once per
// objective. Slot order is sorted-ID order, so every floating-point
// accumulation matches the map pipeline bit for bit (the golden
// equivalence test pins this too).
func scoreEstimates(ctx Context, s Scenario, ts tickSeries, modelName string, est *models.DenseEstimates, truths []division.Shares, scr *scoreScratch) ([]Evaluation, error) {
	if scr == nil {
		scr = newScoreScratch()
	}
	from, to := stableScoringWindow(ctx, ts, est.OK, scr.scored)
	return scoreEstimatesWindow(ctx, s, ts, modelName, est, truths, scr, from, to)
}

// scoreEstimatesWindow is scoreEstimates with the scoring window already
// resolved. The window is a pure function of (ctx, ts, est.OK), so callers
// scoring several models over one scenario compute it once per distinct OK
// vector (models with full estimate coverage — most of them — share one)
// instead of once per model; the scored ticks and every accumulation are
// unchanged, so the split cannot move a result bit.
func scoreEstimatesWindow(ctx Context, s Scenario, ts tickSeries, modelName string, est *models.DenseEstimates, truths []division.Shares, scr *scoreScratch, from, to time.Duration) ([]Evaluation, error) {
	if to <= from {
		return nil, fmt.Errorf("protocol: scenario %q: model %s produced no estimates", s.Label(), modelName)
	}
	rosterIDs := est.Roster.IDs()
	scoredEsts := scr.scoredEsts[:0]
	scoredPower := scr.scoredPower[:0]
	scr.meanEst = rosterVec(scr.meanEst, len(rosterIDs))
	meanEst := scr.meanEst
	clear(meanEst)
	for i, at := range ts.at {
		if at < from || at >= to || !est.OK[i] {
			continue
		}
		row := est.Row(i)
		scoredEsts = append(scoredEsts, row)
		scoredPower = append(scoredPower, ts.power[i])
		for slot, w := range row {
			meanEst[slot] += float64(w)
		}
	}
	scr.scoredEsts, scr.scoredPower = scoredEsts, scoredPower
	var meanPower float64
	for _, p := range scoredPower {
		meanPower += float64(p)
	}
	estShare := division.Shares{}
	if meanPower > 0 {
		for slot, sum := range meanEst {
			estShare[rosterIDs[slot]] = sum / meanPower
		}
	}

	out := make([]Evaluation, len(truths))
	for i, truth := range truths {
		ev := Evaluation{Scenario: s, Model: modelName, Truth: truth, EstShare: estShare}
		scr.truthVec = rosterVec(scr.truthVec, len(rosterIDs))
		tv := truth.VectorInto(scr.truthVec, rosterIDs)
		ae, err := division.AbsoluteErrorColumnsConst(scoredEsts, scoredPower, tv)
		if err != nil {
			return nil, fmt.Errorf("protocol: scenario %q: %w", s.Label(), err)
		}
		ev.AE = ae
		ev.ScoredTicks = len(scoredEsts)
		if len(s.Apps) == 2 {
			id0, id1 := s.Apps[0].ID, s.Apps[1].ID
			ev.Point = division.RatioPoint{
				X:     division.RatioPercent(truth[id0], truth[id1]),
				Y:     division.RatioPercent(estShare[id0], estShare[id1]),
				Label: s.Label(),
			}
		}
		out[i] = ev
	}
	return out, nil
}

// Summary aggregates the evaluations of one model over a campaign.
type Summary struct {
	Model string
	// MeanAE and MaxAE are over all scenarios (Eq 5 averaged per scenario
	// first, as the paper reports).
	MeanAE float64
	MaxAE  float64
	// WorstScenario is the scenario achieving MaxAE.
	WorstScenario string
	Evaluations   []Evaluation
}

// Summarize aggregates per-scenario evaluations.
func Summarize(model string, evs []Evaluation) Summary {
	s := Summary{Model: model, Evaluations: evs}
	for _, ev := range evs {
		s.MeanAE += ev.AE
		if ev.AE > s.MaxAE {
			s.MaxAE = ev.AE
			s.WorstScenario = ev.Scenario.Label()
		}
	}
	if len(evs) > 0 {
		s.MeanAE /= float64(len(evs))
	}
	return s
}

// Filter returns the evaluations satisfying keep.
func Filter(evs []Evaluation, keep func(Evaluation) bool) []Evaluation {
	var out []Evaluation
	for _, ev := range evs {
		if keep(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// StressPairs generates the paper's phase 2 scenario list: every unordered
// pair of distinct stress functions at each same-size combination, plus
// every ordered-by-size pair (including same function) across different
// sizes. sizes must be chosen so the largest pair fits the machine without
// contention (3+3 on SMALL INTEL without HT, 16+16 on DAHU).
func StressPairs(fns []string, sizes []int) ([]Scenario, error) {
	sorted := append([]int(nil), sizes...)
	sort.Ints(sorted)
	var out []Scenario
	// Same size, distinct functions.
	for _, n := range sorted {
		for i := 0; i < len(fns); i++ {
			for j := i + 1; j < len(fns); j++ {
				a, err := StressApp(fns[i], n)
				if err != nil {
					return nil, err
				}
				b, err := StressApp(fns[j], n)
				if err != nil {
					return nil, err
				}
				out = append(out, Scenario{Apps: []AppSpec{a, b}})
			}
		}
	}
	// Different sizes, all function combinations (including identical).
	for si := 0; si < len(sorted); si++ {
		for sj := si + 1; sj < len(sorted); sj++ {
			for i := 0; i < len(fns); i++ {
				for j := 0; j < len(fns); j++ {
					a, err := StressApp(fns[i], sorted[si])
					if err != nil {
						return nil, err
					}
					b, err := StressApp(fns[j], sorted[sj])
					if err != nil {
						return nil, err
					}
					out = append(out, Scenario{Apps: []AppSpec{a, b}})
				}
			}
		}
	}
	return out, nil
}

// StressCombos generates all k-way combinations of distinct stress
// functions at a fixed thread count — the n-application generalisation of
// the pair campaign (the paper's formalism defines scenarios of n
// applications; its evaluation stops at pairs). k×threads must fit the
// machine without contention.
func StressCombos(fns []string, threads, k int) ([]Scenario, error) {
	if k < 2 {
		return nil, fmt.Errorf("protocol: combination size %d", k)
	}
	if k > len(fns) {
		return nil, fmt.Errorf("protocol: %d-way combos of %d functions", k, len(fns))
	}
	var out []Scenario
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		apps := make([]AppSpec, k)
		for i, j := range idx {
			a, err := StressApp(fns[j], threads)
			if err != nil {
				return nil, err
			}
			apps[i] = a
		}
		out = append(out, Scenario{Apps: apps})
		// Next combination (lexicographic).
		i := k - 1
		for i >= 0 && idx[i] == len(fns)-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	return out, nil
}

// AppsOf collects the distinct applications appearing in the scenarios,
// keyed by ID — the phase 1 measurement list.
func AppsOf(scenarios []Scenario) []AppSpec {
	seen := map[string]AppSpec{}
	for _, s := range scenarios {
		for _, a := range s.Apps {
			seen[a.ID] = a
		}
	}
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]AppSpec, len(ids))
	for i, id := range ids {
		out[i] = seen[id]
	}
	return out
}

// BaselineAppsOf collects the distinct application *types* appearing in the
// scenarios — the phase 1 measurement list for traffic campaigns, where many
// short-lived instances share one baseline. Each returned spec is the
// stripped baselineSpec (ID = baselineID, no lifetime offsets), sorted by
// ID. For scenarios without traffic fields it coincides with AppsOf.
func BaselineAppsOf(scenarios []Scenario) []AppSpec {
	seen := map[string]AppSpec{}
	for _, s := range scenarios {
		for _, a := range s.Apps {
			b := a.baselineSpec()
			seen[b.ID] = b
		}
	}
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]AppSpec, len(ids))
	for i, id := range ids {
		out[i] = seen[id]
	}
	return out
}

// EvaluateCampaign runs the full protocol for one model over a scenario
// list: phase 1 on every distinct application, then phases 2–3 per
// scenario. It returns the per-scenario evaluations in scenario order.
func EvaluateCampaign(ctx Context, scenarios []Scenario, factory models.Factory, obj Objective, r0 units.Watts) ([]Evaluation, error) {
	baselines, err := MeasureBaselines(ctx, AppsOf(scenarios))
	if err != nil {
		return nil, err
	}
	evs := make([]Evaluation, 0, len(scenarios))
	for _, s := range scenarios {
		ev, err := EvaluatePair(ctx, s, factory, baselines, obj, r0)
		if err != nil {
			return nil, err
		}
		evs = append(evs, ev)
	}
	return evs, nil
}

// EvaluateModels runs the full protocol for several models over one
// scenario list, measuring the phase 1 baselines once. The factories
// function receives the baselines so that models needing them (F2) can be
// constructed; it returns the model factories to evaluate.
//
// With memoization enabled (the default) each scenario is simulated exactly
// once and every model replays that shared cached run — the simulation is
// the expensive part of the hot path and is identical across models (its
// seed derives from the scenario label, never from the model). Scenarios
// are evaluated concurrently across the worker pool; results are
// deterministic regardless of scheduling or cache state.
func EvaluateModels(ctx Context, scenarios []Scenario, factories func(map[string]division.Baseline) []models.Factory, obj Objective, r0 units.Watts) (map[string][]Evaluation, error) {
	baselines, err := MeasureBaselinesParallel(ctx, AppsOf(scenarios))
	if err != nil {
		return nil, err
	}
	fs := factories(baselines)
	objectives := []Objective{obj}
	// perScenario[i][m] is model m's evaluation of scenario i; each worker
	// writes only its own scenario row.
	perScenario := make([][]Evaluation, len(scenarios))
	err = forEachIndexed(len(scenarios), func(i int) error {
		s := scenarios[i]
		done := observeScenario()
		truths, err := scenarioTruths(s, baselines, objectives, r0)
		if err != nil {
			return err
		}
		row := make([]Evaluation, len(fs))
		var ticks []models.Tick
		var ts tickSeries
		scr := getScoreScratch()
		defer putScoreScratch(scr)
		for m, f := range fs {
			// Every model asks for the scenario run through the cache:
			// with memoization on the first model simulates and the rest
			// share that run; with it off each model re-simulates (the
			// results are identical either way — the run's seed derives
			// from the scenario label, never from the model). The model
			// inputs and the scoring view are converted once per scenario
			// regardless.
			run, err := scenarioRun(ctx, s)
			if err != nil {
				return err
			}
			if ticks == nil {
				ticks = models.RunTicksDense(run)
				ts = runSeries(run)
			}
			evs, err := scoreRunSeries(ctx, s, ts, ticks, f, truths, scr)
			if err != nil {
				return err
			}
			row[m] = evs[0]
		}
		perScenario[i] = row
		done()
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := map[string][]Evaluation{}
	for m, f := range fs {
		evs := make([]Evaluation, len(scenarios))
		for i := range scenarios {
			evs[i] = perScenario[i][m]
		}
		out[f.Name] = evs
	}
	return out, nil
}

// MaxThreadsWithoutContention returns the largest per-application thread
// count so that two applications fit the machine's schedulable CPUs — the
// paper's "the two largest applications can run on the machines without
// competing for CPU".
func MaxThreadsWithoutContention(cfg machine.Config) int {
	n := cfg.Spec.Topology.PhysicalCores()
	if cfg.Hyperthreading {
		n = cfg.Spec.Topology.LogicalCPUs()
	}
	return n / 2
}

// SizesFor returns the thread-size ladder {max/4, max/2, max} used by the
// evaluations (1,2,3 → SMALL INTEL lab handled by rounding up to ≥1).
func SizesFor(cfg machine.Config) []int {
	max := MaxThreadsWithoutContention(cfg)
	sizes := []int{
		int(math.Max(1, math.Round(float64(max)/4))),
		int(math.Max(1, math.Round(float64(max)/2))),
		max,
	}
	// Deduplicate in case of tiny machines.
	out := sizes[:0]
	seen := map[int]bool{}
	for _, s := range sizes {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

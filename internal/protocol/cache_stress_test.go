package protocol

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"powerdiv/internal/division"
	"powerdiv/internal/models"
)

// TestMemoizationStressUnderEvictions hammers both cache tiers from
// concurrent campaign workers while the summary tier's byte cap is squeezed
// small enough to evict continuously, with a poller asserting the stats
// invariants on every snapshot:
//
//	Hits + Misses == Lookups
//	SummaryBytes  <= SummaryByteLimit
//
// Run it under -race; it exists to catch ledger updates that escape the
// cache mutex (a torn counter or a byte refund outside the lock shows up
// here as an invariant violation or a race report).
func TestMemoizationStressUnderEvictions(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	EnableMemoization(true)
	ResetMemoization()
	// Roughly two solo-run digests: every phase 1 summary insert evicts an
	// older one, including entries still being computed by another worker.
	SetMemoizationByteLimit(4 << 10)
	defer func() {
		SetMemoizationByteLimit(0)
		ResetMemoization()
	}()

	ctx := labSmall()
	ctx.RunFor = 4 * time.Second
	ctx.StableWindow = 2 * time.Second
	scenarios, err := StressPairs([]string{"fibonacci", "matrixprod", "int64", "float64"}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for {
			st := MemoizationStats()
			if st.Hits+st.Misses != st.Lookups {
				t.Errorf("stats torn: %d hits + %d misses != %d lookups", st.Hits, st.Misses, st.Lookups)
				return
			}
			if st.SummaryBytes > st.SummaryByteLimit {
				t.Errorf("summary tier over cap: %d > %d bytes", st.SummaryBytes, st.SummaryByteLimit)
				return
			}
			select {
			case <-done:
				return
			default:
				runtime.Gosched()
			}
		}
	}()

	// Two campaign flavours race against each other: the materialized one
	// exercises simulateCached for pairs, the streaming one re-reads the
	// summary tier for baselines while evictions churn it.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := EvaluateCampaignParallel(ctx, scenarios, models.NewScaphandre(), ObjectiveActive, 0); err != nil {
				t.Error(err)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			factories := func(map[string]division.Baseline) []models.Factory {
				return []models.Factory{models.NewScaphandre(), models.NewKepler()}
			}
			if _, err := EvaluateModelsStreaming(ctx, scenarios, factories, ObjectiveActive, 0); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	close(done)
	pollWG.Wait()

	st := MemoizationStats()
	if st.Lookups == 0 {
		t.Error("stress run recorded no cache lookups")
	}
	if st.Evictions == 0 {
		t.Errorf("byte cap of %d never evicted: %+v", 4<<10, st)
	}
	if st.SummaryBytes > st.SummaryByteLimit {
		t.Errorf("final summary tier over cap: %d > %d", st.SummaryBytes, st.SummaryByteLimit)
	}
}

package protocol

import (
	"fmt"
	"time"

	"powerdiv/internal/division"
	"powerdiv/internal/machine"
	"powerdiv/internal/trace"
	"powerdiv/internal/units"
)

// RunSummary is the compact digest of a simulated run that the streaming
// protocol keeps instead of a *machine.Run: the per-tick power traces
// phase 1 needs (measured, noise-free, idle+residual), the per-tick
// CPU-time column of each roster process, per-process totals, and the
// run's shape. For the paper's 30 s solo runs that is a few KB against the
// hundreds of KB of a full run with counters — small enough to memoize
// thousands of digests under a byte cap.
//
// The values are stored exactly as the materialized accessors would compute
// them (float64(rec.TruePower), float64(rec.Idle+rec.Residual), ...), so
// every statistic derived from a summary is bit-identical to the same
// statistic derived from the run.
type RunSummary struct {
	Roster *machine.Roster
	// Tick is the sampling period; tick i's time is i·Tick, exactly the
	// simulator's schedule.
	Tick     time.Duration
	Ticks    int
	Duration time.Duration
	ProcEnd  map[string]time.Duration
	// Power / TruePower / ResidIdle are per-tick machine traces (watts):
	// the sensor reading, the noise-free total, and idle+residual.
	Power     []float64
	TruePower []float64
	ResidIdle []float64
	// CPUTime is a Ticks × Roster.Len() slab: tick i, slot s is
	// CPUTime[i*Roster.Len()+s]. Absent processes hold zero.
	CPUTime []units.CPUTime
	// TotalCPU / TotalActive are per-slot run totals (the streaming
	// pipeline's per-proc bookkeeping: CPU time and summed active watts).
	TotalCPU    []units.CPUTime
	TotalActive []float64
}

// newRunSummary streams a simulation directly into its digest; no
// machine.Run is materialized.
func newRunSummary(cfg machine.Config, procs []machine.Proc, maxDur time.Duration) (*RunSummary, error) {
	tick := cfg.TickInterval()
	maxTicks := int(maxDur/tick) + 1
	if maxTicks < 0 {
		maxTicks = 0
	}
	n := len(procs)
	s := &RunSummary{
		Tick:        tick,
		Power:       make([]float64, 0, maxTicks),
		TruePower:   make([]float64, 0, maxTicks),
		ResidIdle:   make([]float64, 0, maxTicks),
		CPUTime:     make([]units.CPUTime, 0, maxTicks*n),
		TotalCPU:    make([]units.CPUTime, n),
		TotalActive: make([]float64, n),
	}
	info, err := machine.Stream(cfg, procs, maxDur, func(rec *machine.TickRecord) error {
		s.Power = append(s.Power, float64(rec.Power))
		s.TruePower = append(s.TruePower, float64(rec.TruePower))
		s.ResidIdle = append(s.ResidIdle, float64(rec.Idle+rec.Residual))
		for slot := range rec.Procs {
			pt := &rec.Procs[slot]
			s.CPUTime = append(s.CPUTime, pt.CPUTime)
			s.TotalCPU[slot] += pt.CPUTime
			s.TotalActive[slot] += float64(pt.ActivePower)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.Roster = info.Roster
	s.Ticks = info.Ticks
	s.Duration = info.Duration
	s.ProcEnd = info.ProcEnd
	return s, nil
}

// PowerSeries returns the measured power trace (times are i·Tick, matching
// the simulator's tick schedule).
func (s *RunSummary) PowerSeries() *trace.Series {
	return trace.FromValues(s.Tick, s.Power...)
}

// TruePowerSeries returns the noise-free power trace.
func (s *RunSummary) TruePowerSeries() *trace.Series {
	return trace.FromValues(s.Tick, s.TruePower...)
}

// EstimatedBytes approximates the summary's memory footprint for the byte
// cap: the slices dominate; fixed overhead and the roster/ProcEnd strings
// are charged with a small constant each.
func (s *RunSummary) EstimatedBytes() int64 {
	if s == nil {
		return 0
	}
	const (
		fixed    = 256
		perProc  = 64
		f64Bytes = 8
	)
	b := int64(fixed)
	b += int64(len(s.Power)+len(s.TruePower)+len(s.ResidIdle)+len(s.TotalActive)) * f64Bytes
	b += int64(len(s.CPUTime)+len(s.TotalCPU)) * f64Bytes
	b += int64(s.Roster.Len()+len(s.ProcEnd)) * perProc
	return b
}

// baseline extracts the phase 1 baseline of app from the digest, exactly
// as MeasureBaseline extracts it from a full run: mean noise-free power,
// mean idle+residual and mean busy cores over the least-extreme stable
// window of the noise-free trace. Bit-identical to the run path — the
// trace has the same samples and the accumulations run in the same order
// (adding an absent slot's zero CPU time is bit-neutral: utilization is
// non-negative).
func (s *RunSummary) baseline(ctx Context, appID string) (division.Baseline, error) {
	power := s.TruePowerSeries()
	window, err := power.StableWindow(ctx.StableWindow)
	if err != nil {
		window = power
	}
	from, to := window.Start(), window.End()+1
	var total, residIdle, cores float64
	var n int
	slot, hasSlot := s.Roster.Slot(appID)
	w := s.Roster.Len()
	for i := 0; i < s.Ticks; i++ {
		if at := time.Duration(i) * s.Tick; at < from || at >= to {
			continue
		}
		total += s.TruePower[i]
		residIdle += s.ResidIdle[i]
		if hasSlot {
			cores += s.CPUTime[i*w+slot].Utilization(s.Tick)
		}
		n++
	}
	if n == 0 {
		return division.Baseline{}, fmt.Errorf("protocol: empty stable window for %s", appID)
	}
	return division.Baseline{
		ID:       appID,
		Total:    units.Watts(total / float64(n)),
		Residual: units.Watts(residIdle / float64(n)),
		Cores:    cores / float64(n),
	}, nil
}

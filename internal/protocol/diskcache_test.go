package protocol

import (
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/division"
	"powerdiv/internal/machine"
	"powerdiv/internal/models"
)

// diskTestRun builds one real solo-run summary plus the runKey the caches
// would file it under — the fixture every disk-cache test round-trips.
func diskTestRun(t *testing.T) (string, *RunSummary) {
	t.Helper()
	ctx := goldenContext(cpumodel.SmallIntel(), false)
	app, err := StressApp("fibonacci", 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ctx.Machine
	cfg.Seed = deriveSeed(ctx.Seed, "solo", app.ID)
	procs := []machine.Proc{app.proc()}
	sum, err := newRunSummary(cfg, procs, ctx.RunFor)
	if err != nil {
		t.Fatal(err)
	}
	return runKey(cfg, procs, ctx.RunFor), sum
}

// TestDiskCacheRoundTrip pins the persistent tier's exactness: a stored
// summary loads back with every float bit-identical and every shape field
// equal, so a warm-from-disk campaign cannot diverge from a cold one.
func TestDiskCacheRoundTrip(t *testing.T) {
	d, err := OpenDiskCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key, sum := diskTestRun(t)
	if _, ok := d.load(key); ok {
		t.Fatal("load before store hit")
	}
	d.store(key, sum)
	got, ok := d.load(key)
	if !ok {
		t.Fatal("load after store missed")
	}
	if got.Ticks != sum.Ticks || got.Tick != sum.Tick || got.Duration != sum.Duration {
		t.Fatalf("shape: got %d/%v/%v want %d/%v/%v",
			got.Ticks, got.Tick, got.Duration, sum.Ticks, sum.Tick, sum.Duration)
	}
	if got.Roster.Len() != sum.Roster.Len() {
		t.Fatalf("roster %d slots, want %d", got.Roster.Len(), sum.Roster.Len())
	}
	for i, id := range sum.Roster.IDs() {
		if got.Roster.IDs()[i] != id {
			t.Fatalf("roster slot %d: %q != %q", i, got.Roster.IDs()[i], id)
		}
	}
	if len(got.ProcEnd) != len(sum.ProcEnd) {
		t.Fatalf("ProcEnd %d entries, want %d", len(got.ProcEnd), len(sum.ProcEnd))
	}
	for id, end := range sum.ProcEnd {
		if got.ProcEnd[id] != end {
			t.Fatalf("ProcEnd[%s] %v != %v", id, got.ProcEnd[id], end)
		}
	}
	for name, pair := range map[string][2][]float64{
		"Power":       {got.Power, sum.Power},
		"TruePower":   {got.TruePower, sum.TruePower},
		"ResidIdle":   {got.ResidIdle, sum.ResidIdle},
		"TotalActive": {got.TotalActive, sum.TotalActive},
	} {
		if len(pair[0]) != len(pair[1]) {
			t.Fatalf("%s length %d != %d", name, len(pair[0]), len(pair[1]))
		}
		for i := range pair[1] {
			if math.Float64bits(pair[0][i]) != math.Float64bits(pair[1][i]) {
				t.Fatalf("%s[%d] bits differ", name, i)
			}
		}
	}
	if len(got.CPUTime) != len(sum.CPUTime) || len(got.TotalCPU) != len(sum.TotalCPU) {
		t.Fatalf("CPU slab lengths differ")
	}
	for i := range sum.CPUTime {
		if got.CPUTime[i] != sum.CPUTime[i] {
			t.Fatalf("CPUTime[%d] %v != %v", i, got.CPUTime[i], sum.CPUTime[i])
		}
	}
	for i := range sum.TotalCPU {
		if got.TotalCPU[i] != sum.TotalCPU[i] {
			t.Fatalf("TotalCPU[%d] %v != %v", i, got.TotalCPU[i], sum.TotalCPU[i])
		}
	}
	if h, m, w := d.Stats(); h != 1 || m != 1 || w != 1 {
		t.Fatalf("stats %d/%d/%d, want 1 hit, 1 miss, 1 write", h, m, w)
	}
}

// TestDiskCacheRejectsDamage pins self-healing over a table of damage
// modes: truncation at every structural boundary, a flipped byte in each
// region (magic, version, key echo, payload, checksum), and an empty file.
// Every one must read as a miss — never as wrong data — and the damaged
// file must be deleted so it is not re-parsed forever.
func TestDiskCacheRejectsDamage(t *testing.T) {
	key, sum := diskTestRun(t)
	raw := encodeSummary(key, sum)
	flip := func(at int) func([]byte) []byte {
		return func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[at] ^= 0x40
			return c
		}
	}
	cases := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"truncated-header", func(b []byte) []byte { return append([]byte(nil), b[:6]...) }},
		{"truncated-mid-payload", func(b []byte) []byte { return append([]byte(nil), b[:len(b)/2]...) }},
		{"truncated-no-checksum", func(b []byte) []byte { return append([]byte(nil), b[:len(b)-8]...) }},
		{"truncated-one-byte", func(b []byte) []byte { return append([]byte(nil), b[:len(b)-1]...) }},
		{"flip-magic", flip(0)},
		{"flip-version", flip(4)},
		{"flip-key-echo", flip(len(diskMagic) + 4 + 4)},
		{"flip-payload", flip(len(raw) / 2)},
		{"flip-checksum", flip(len(raw) - 1)},
		{"extra-trailing-bytes", func(b []byte) []byte { return append(append([]byte(nil), b...), 0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := OpenDiskCache(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			p := d.path(key)
			if err := os.WriteFile(p, tc.mangle(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := d.load(key); ok {
				t.Fatal("damaged entry loaded as a hit")
			}
			if _, err := os.Stat(p); !os.IsNotExist(err) {
				t.Fatalf("damaged entry not deleted: %v", err)
			}
			// A fresh store over the healed slot must work again.
			d.store(key, sum)
			if _, ok := d.load(key); !ok {
				t.Fatal("store after healing missed")
			}
		})
	}
}

// TestDiskCacheVersionMismatch rewrites an entry's version field (with a
// recomputed checksum, so only the version differs) and requires a miss:
// a format bump must invalidate old files rather than misread them.
func TestDiskCacheVersionMismatch(t *testing.T) {
	d, err := OpenDiskCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key, sum := diskTestRun(t)
	raw := encodeSummary(key, sum)
	body := append([]byte(nil), raw[:len(raw)-8]...)
	body[len(diskMagic)]++ // version 1 -> 2, little-endian low byte
	withSum := appendChecksum(body)
	if err := os.WriteFile(d.path(key), withSum, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.load(key); ok {
		t.Fatal("future-version entry loaded as a hit")
	}
	if _, err := os.Stat(d.path(key)); !os.IsNotExist(err) {
		t.Fatal("future-version entry not deleted")
	}
}

// TestDiskCacheKeyMismatch files one key's entry under another key's path
// (what a hash collision or a renamed file would look like) and requires
// the key echo to reject it.
func TestDiskCacheKeyMismatch(t *testing.T) {
	d, err := OpenDiskCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key, sum := diskTestRun(t)
	d.store(key, sum)
	other := key + "|other"
	if err := os.Rename(d.path(key), d.path(other)); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.load(other); ok {
		t.Fatal("entry with mismatched key echo loaded as a hit")
	}
}

// TestDiskCacheEviction stores entries past a tiny byte cap and requires
// the oldest-modified files to be removed first while the newest survives.
func TestDiskCacheEviction(t *testing.T) {
	key, sum := diskTestRun(t)
	one := int64(len(encodeSummary(key, sum)))
	d, err := OpenDiskCache(t.TempDir(), 2*one+one/2) // room for two entries
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{key + "|a", key + "|b", key + "|c"}
	base := time.Now().Add(-time.Hour)
	for i, k := range keys {
		d.store(k, sum)
		// Pin distinct, increasing mtimes so eviction order is deterministic
		// even on coarse filesystem clocks.
		if err := os.Chtimes(d.path(k), base, base.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	d.store(key+"|d", sum) // pushes past the cap; |a and |b are oldest
	if _, err := os.Stat(d.path(keys[0])); !os.IsNotExist(err) {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := d.load(key + "|d"); !ok {
		t.Fatal("newest entry evicted")
	}
	var total int64
	ents, err := os.ReadDir(d.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".pds" {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	if total > 2*one+one/2 {
		t.Fatalf("directory %d bytes past the %d cap", total, 2*one+one/2)
	}
}

// appendChecksum re-signs a hand-mangled body with the trailing FNV-64a the
// decoder verifies first.
func appendChecksum(body []byte) []byte {
	h := fnv.New64a()
	h.Write(body)
	return appendU64(body, h.Sum64())
}

// TestDiskCacheWarmBitIdentical is the end-to-end guarantee: a campaign
// whose phase-1 summaries come from disk (memory tiers dropped, disk tier
// primed by a prior campaign) produces error tables bit-identical to a
// fully cold one, and actually reads the disk while doing so.
func TestDiskCacheWarmBitIdentical(t *testing.T) {
	ctx := goldenContext(cpumodel.SmallIntel(), false)
	a0, err := StressApp("fibonacci", 1)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := StressApp("matrixprod", 2)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := StressApp("int64", 1)
	if err != nil {
		t.Fatal(err)
	}
	scenarios := []Scenario{
		{Apps: []AppSpec{a0, a1}},
		{Apps: []AppSpec{a1, a2}},
	}
	spec := cpumodel.SmallIntel()
	factories := func(baselines map[string]division.Baseline) []models.Factory {
		return goldenFactories(baselines, spec)
	}
	run := func() map[string][]Evaluation {
		t.Helper()
		ResetMemoization()
		got, err := EvaluateModelsStreaming(ctx, scenarios, factories, ObjectiveActive, 0)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}

	want := run() // fully cold: no disk tier attached

	d, err := OpenDiskCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	AttachDiskCache(d)
	defer AttachDiskCache(nil)
	run() // primes the disk tier
	if _, _, w := d.Stats(); w == 0 {
		t.Fatal("priming campaign wrote nothing to disk")
	}
	got := run() // memory tiers dropped again: phase 1 loads from disk
	if h, _, _ := d.Stats(); h == 0 {
		t.Fatal("warm campaign never hit the disk tier")
	}
	if len(got) != len(want) {
		t.Fatalf("%d models warm, %d cold", len(got), len(want))
	}
	for name, wantEvs := range want {
		gotEvs, ok := got[name]
		if !ok || len(gotEvs) != len(wantEvs) {
			t.Fatalf("model %s missing or wrong length warm", name)
		}
		for i := range wantEvs {
			compareStreamingEvaluations(t, name, wantEvs[i], gotEvs[i])
		}
	}
}

package protocol

import (
	"context"
	"sort"

	"powerdiv/internal/division"
	"powerdiv/internal/machine"
	"powerdiv/internal/models"
)

// The evaluation-digest tier memoizes the *scored outcome* of one scenario
// across whole campaign repeats. The two lower tiers (full runs, run
// summaries) only dedupe simulation; a warm repeat of an identical campaign
// still re-streams every pair run through every model and re-scores it.
// Scoring is deterministic — the evaluation rows are a pure function of the
// simulated run (captured exactly by runKey), the campaign seed (model
// seeds derive from it), the stable-window setting, the truth shares, and
// the ordered factory list — so that repeat is pure waste, and it is the
// dominant cost of warm benchmark iterations and of re-submitted service
// jobs.
//
// The tier stores compact digests (a few floats per factory), not
// Evaluation values: digests are materialized into fresh Evaluations per
// caller, so cached results never alias a previous caller's truth maps or
// scenario slices beyond what the caller itself passed in.
//
// Correctness hinges on the key covering every input. Factories are
// functions, so they carry an explicit Fingerprint (models package); any
// factory with an empty fingerprint disables the tier for that scenario
// rather than risking a collision between differently-configured models
// sharing a name.

// DefaultEvalMemoBytes caps the evaluation-digest tier's estimated
// footprint. Digests are ~100 bytes per factory plus the key, so the
// default holds every scenario×factory combination of any campaign in this
// repository many times over.
const DefaultEvalMemoBytes int64 = 32 << 20

// evalEntry is one memoized scenario evaluation with the singleflight shape
// of the other tiers. Unlike them it never stores errors: a failed or
// cancelled compute removes the entry (waiters fall back to computing
// themselves), so one job's cancellation cannot poison the result for the
// next.
type evalEntry struct {
	done    chan struct{}
	d       *evalDigest
	err     error
	size    int64
	sized   bool
	evicted bool
}

// evalDigest is the compact stored form of one scenario's [factory][truth]
// evaluation rows: exactly the bits scoring produced, nothing rebuildable.
type evalDigest struct {
	perFactory []factoryDigest
}

// factoryDigest is one factory's share of a digest. estShare is the mean
// estimated share per roster slot (sorted-ID order); hasShare distinguishes
// "no positive scored power" (an empty share map) from a real all-zero
// vector.
type factoryDigest struct {
	estShare []float64
	hasShare bool
	rows     []evalRow
}

// evalRow is one (factory, truth) cell.
type evalRow struct {
	ae          float64
	scoredTicks int
}

// estimatedBytes is the digest's ledger charge: slice payloads plus a fixed
// per-entry overhead for the table cell and key.
func (d *evalDigest) estimatedBytes(keyLen int) int64 {
	n := int64(keyLen) + 128
	for _, f := range d.perFactory {
		n += int64(len(f.estShare))*8 + int64(len(f.rows))*16 + 64
	}
	return n
}

// digestOf compresses evaluation rows into their stored form.
func digestOf(rows [][]Evaluation, rosterIDs []string) *evalDigest {
	d := &evalDigest{perFactory: make([]factoryDigest, len(rows))}
	for m, evs := range rows {
		fd := factoryDigest{rows: make([]evalRow, len(evs))}
		for i, ev := range evs {
			fd.rows[i] = evalRow{ae: ev.AE, scoredTicks: ev.ScoredTicks}
		}
		if len(evs) > 0 && len(evs[0].EstShare) > 0 {
			fd.hasShare = true
			fd.estShare = make([]float64, len(rosterIDs))
			for slot, id := range rosterIDs {
				fd.estShare[slot] = evs[0].EstShare[id]
			}
		}
		d.perFactory[m] = fd
	}
	return d
}

// materialize rebuilds the evaluation rows for one caller. AE, ScoredTicks
// and the share values are returned exactly as stored; EstShare maps are
// fresh per call, and the ratio point is recomputed from the same pure
// function over the same inputs scoring used, so the result is
// bit-identical to a cold evaluation.
func (d *evalDigest) materialize(s Scenario, fs []models.Factory, truths []division.Shares, rosterIDs []string) [][]Evaluation {
	out := make([][]Evaluation, len(d.perFactory))
	for m, fd := range d.perFactory {
		estShare := division.Shares{}
		if fd.hasShare {
			for slot, id := range rosterIDs {
				estShare[id] = fd.estShare[slot]
			}
		}
		evs := make([]Evaluation, len(fd.rows))
		for i, row := range fd.rows {
			ev := Evaluation{
				Scenario:    s,
				Model:       fs[m].Name,
				AE:          row.ae,
				Truth:       truths[i],
				EstShare:    estShare,
				ScoredTicks: row.scoredTicks,
			}
			if len(s.Apps) == 2 {
				id0, id1 := s.Apps[0].ID, s.Apps[1].ID
				ev.Point = division.RatioPoint{
					X:     division.RatioPercent(truths[i][id0], truths[i][id1]),
					Y:     division.RatioPercent(estShare[id0], estShare[id1]),
					Label: s.Label(),
				}
			}
			evs[i] = ev
		}
		out[m] = evs
	}
	return out
}

// evalKey fingerprints everything a scenario evaluation depends on: the
// exact simulated run (runKey over the derived pair config), the campaign
// seed (model seeds derive from it), the stable-window setting, the ordered
// factory configurations, and the truth shares. ok is false — and the tier
// is bypassed — when any factory lacks a fingerprint.
func evalKey(ctx Context, cfg machine.Config, procs []machine.Proc, fs []models.Factory, truths []division.Shares) (string, bool) {
	for _, f := range fs {
		if f.Fingerprint == "" {
			return "", false
		}
	}
	b := make([]byte, 0, 1024)
	b = append(b, "eval1|"...)
	b = append(b, runKey(cfg, procs, ctx.RunFor)...)
	b = append(b, "|cseed:"...)
	b = keyI(b, ctx.Seed)
	b = append(b, "|sw:"...)
	b = keyI(b, int64(ctx.StableWindow))
	for _, f := range fs {
		b = append(b, "|f:"...)
		b = append(b, f.Name...)
		b = append(b, '=')
		b = append(b, f.Fingerprint...)
	}
	for _, truth := range truths {
		b = append(b, "|truth:"...)
		ids := make([]string, 0, len(truth))
		for id := range truth {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			b = append(b, id...)
			b = append(b, '=')
			b = keyF(b, truth[id])
			b = append(b, ';')
		}
	}
	return string(b), true
}

// evictEvalsLocked enforces the digest tier's byte cap, oldest first, with
// the same still-computing accounting as the summary tier.
func (c *runCache) evictEvalsLocked() {
	for c.evalBytes > c.evalByteLimit && len(c.evalOrder) > 0 {
		key := c.evalOrder[0]
		c.evalOrder = c.evalOrder[1:]
		if e, ok := c.evals[key]; ok {
			delete(c.evals, key)
			e.evicted = true
			if e.sized {
				c.evalBytes -= e.size
			}
			c.evictions++
			obsCacheEvictions.Inc()
		}
	}
}

// removeEvalLocked detaches a failed entry so later lookups recompute.
func (c *runCache) removeEvalLocked(key string, e *evalEntry) {
	if cur, ok := c.evals[key]; ok && cur == e {
		delete(c.evals, key)
		for i, k := range c.evalOrder {
			if k == key {
				c.evalOrder = append(c.evalOrder[:i], c.evalOrder[i+1:]...)
				break
			}
		}
	}
	e.evicted = true
}

// evaluateScenarioCached is evaluateScenarioStreaming behind the
// evaluation-digest tier. Hits skip the simulation entirely and materialize
// the stored digest; misses compute, store, and return the freshly computed
// rows. The tier is bypassed — plain streaming evaluation — when
// memoization is off or a factory has no fingerprint.
func evaluateScenarioCached(cctx context.Context, ctx Context, s Scenario, fs []models.Factory, truths []division.Shares) ([][]Evaluation, error) {
	c := ctx.memo()
	c.mu.Lock()
	enabled := c.enabled
	c.mu.Unlock()
	if !enabled {
		return evaluateScenarioStreaming(cctx, ctx, s, fs, truths)
	}

	cfg := ctx.Machine
	cfg.Seed = deriveSeed(ctx.Seed, "pair", s.Label())
	procs := make([]machine.Proc, len(s.Apps))
	ids := make([]string, len(s.Apps))
	for i, a := range s.Apps {
		procs[i] = a.proc()
		ids[i] = a.ID
	}
	sort.Strings(ids)
	key, ok := evalKey(ctx, cfg, procs, fs, truths)
	if !ok {
		return evaluateScenarioStreaming(cctx, ctx, s, fs, truths)
	}

	c.mu.Lock()
	c.lookups++
	if e, ok := c.evals[key]; ok {
		c.hits++
		obsCacheHits.Inc()
		c.mu.Unlock()
		<-e.done
		if e.err != nil {
			// The compute we waited on failed (possibly another job's
			// cancellation); evaluate independently rather than inheriting
			// its error.
			return evaluateScenarioStreaming(cctx, ctx, s, fs, truths)
		}
		return e.d.materialize(s, fs, truths, ids), nil
	}
	e := &evalEntry{done: make(chan struct{})}
	c.evals[key] = e
	c.evalOrder = append(c.evalOrder, key)
	c.misses++
	obsCacheMisses.Inc()
	c.mu.Unlock()

	rows, err := evaluateScenarioStreaming(cctx, ctx, s, fs, truths)
	c.mu.Lock()
	if err != nil {
		e.err = err
		c.removeEvalLocked(key, e)
	} else {
		e.d = digestOf(rows, ids)
		if !e.evicted {
			e.size = e.d.estimatedBytes(len(key))
			e.sized = true
			c.evalBytes += e.size
			c.evictEvalsLocked()
		}
	}
	c.mu.Unlock()
	close(e.done)
	return rows, err
}

package protocol

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/division"
	"powerdiv/internal/machine"
	"powerdiv/internal/models"
	"powerdiv/internal/units"
)

// smallCampaign builds a short multi-model campaign: every stress pair at
// sizes 1 and 2 on SMALL INTEL, 6 s runs, all paper model families.
func smallCampaign(t *testing.T) (Context, []Scenario, func(map[string]division.Baseline) []models.Factory) {
	t.Helper()
	// 15 s runs: long enough for PowerAPI's 10 s learning window to leave
	// scored ticks, short enough to keep the test fast.
	ctx := labSmall()
	ctx.RunFor = 15 * time.Second
	ctx.StableWindow = 4 * time.Second
	scenarios, err := StressPairs([]string{"fibonacci", "matrixprod", "int64"}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	factories := func(map[string]division.Baseline) []models.Factory {
		return []models.Factory{
			models.NewScaphandre(),
			models.NewPowerAPI(models.DefaultPowerAPIConfig()),
			models.NewKepler(),
		}
	}
	return ctx, scenarios, factories
}

// TestMemoizationIdenticalErrorTable proves the memoization cache is
// invisible to results: the same campaign with the cache on and off yields
// deeply equal evaluations for every model — same AEs, truth and estimated
// shares, scatter points, scored tick counts.
func TestMemoizationIdenticalErrorTable(t *testing.T) {
	ctx, scenarios, factories := smallCampaign(t)

	EnableMemoization(false)
	cold, err := EvaluateModels(ctx, scenarios, factories, ObjectiveActive, 0)
	if err != nil {
		t.Fatal(err)
	}
	EnableMemoization(true)
	defer EnableMemoization(true)
	ResetMemoization()
	warm, err := EvaluateModels(ctx, scenarios, factories, ObjectiveActive, 0)
	if err != nil {
		t.Fatal(err)
	}

	if st := MemoizationStats(); st.Hits == 0 {
		t.Errorf("memoized campaign recorded no cache hits: %+v", st)
	}
	if len(cold) != len(warm) {
		t.Fatalf("model sets differ: %d vs %d", len(cold), len(warm))
	}
	for name, evs := range cold {
		if !reflect.DeepEqual(evs, warm[name]) {
			t.Errorf("model %s: memoized evaluations differ from unmemoized", name)
		}
	}
	// Rendering the table from either result must give identical bytes.
	sumCold := Summarize("kepler", cold["kepler"])
	sumWarm := Summarize("kepler", warm["kepler"])
	if sumCold.MeanAE != sumWarm.MeanAE || sumCold.MaxAE != sumWarm.MaxAE || sumCold.WorstScenario != sumWarm.WorstScenario {
		t.Errorf("summaries differ: %+v vs %+v", sumCold, sumWarm)
	}
}

// TestMemoizationIdenticalTimeline proves EvaluateTimeline is cache-blind
// too: identical TimelineResult with memoization on and off.
func TestMemoizationIdenticalTimeline(t *testing.T) {
	ctx := labSmall()
	ctx.RunFor = 6 * time.Second
	ctx.StableWindow = 3 * time.Second
	a0 := mustStressApp(t, "int64", 1)
	a0.ID = "P0"
	a1 := mustStressApp(t, "int64", 1)
	a1.ID = "P1"
	apps := []TimelineApp{
		{App: a0},
		{App: a1, Start: 3 * time.Second, Stop: 8 * time.Second},
	}
	baselines, err := MeasureBaselines(ctx, []AppSpec{a0, a1})
	if err != nil {
		t.Fatal(err)
	}

	EnableMemoization(false)
	cold, err := EvaluateTimeline(ctx, apps, models.NewScaphandre(), baselines, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	EnableMemoization(true)
	defer EnableMemoization(true)
	ResetMemoization()
	warm1, err := EvaluateTimeline(ctx, apps, models.NewScaphandre(), baselines, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Second memoized evaluation hits the cache and must agree as well.
	warm2, err := EvaluateTimeline(ctx, apps, models.NewScaphandre(), baselines, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if cold != warm1 || warm1 != warm2 {
		t.Errorf("timeline results differ: cold %+v, warm %+v, cached %+v", cold, warm1, warm2)
	}
	if st := MemoizationStats(); st.Hits == 0 {
		t.Errorf("second evaluation did not hit the cache: %+v", st)
	}
}

// TestRunKeyDiscriminates checks the fingerprint separates every input the
// simulation depends on, and normalises process order away.
func TestRunKeyDiscriminates(t *testing.T) {
	base := machine.Config{Spec: cpumodel.SmallIntel(), NoiseStddev: 0.25, Seed: 1}
	app := mustStressApp(t, "fibonacci", 2)
	procs := []machine.Proc{app.proc()}
	key := runKey(base, procs, 10*time.Second)

	mutations := map[string]func() string{
		"seed": func() string {
			c := base
			c.Seed = 2
			return runKey(c, procs, 10*time.Second)
		},
		"turbo": func() string {
			c := base
			c.Turbo = true
			return runKey(c, procs, 10*time.Second)
		},
		"maxfreq": func() string {
			c := base
			c.MaxFreq = 2e9
			return runKey(c, procs, 10*time.Second)
		},
		"duration": func() string {
			return runKey(base, procs, 11*time.Second)
		},
		"threads": func() string {
			a := mustStressApp(t, "fibonacci", 3)
			return runKey(base, []machine.Proc{a.proc()}, 10*time.Second)
		},
		"quota": func() string {
			p := app.proc()
			p.CPUQuota = 0.5
			return runKey(base, []machine.Proc{p}, 10*time.Second)
		},
		// Churn fields: two rosters identical except for one instance's
		// arrival or exit time must never share a memoized run.
		"start-offset": func() string {
			p := app.proc()
			p.Start = 2 * time.Second
			return runKey(base, []machine.Proc{p}, 10*time.Second)
		},
		"stop-offset": func() string {
			p := app.proc()
			p.Stop = 8 * time.Second
			return runKey(base, []machine.Proc{p}, 10*time.Second)
		},
		"workload-cost": func() string {
			a := app
			cost := map[string]units.Watts{}
			for k, v := range a.Workload.Cost {
				cost[k] = v + 1
			}
			a.Workload.Cost = cost
			return runKey(base, []machine.Proc{a.proc()}, 10*time.Second)
		},
	}
	for name, mutate := range mutations {
		if mutate() == key {
			t.Errorf("mutation %q did not change the run key", name)
		}
	}

	// Permuting the process list must NOT change the key: the simulator
	// schedules in ID order.
	a2 := mustStressApp(t, "matrixprod", 1)
	ab := runKey(base, []machine.Proc{app.proc(), a2.proc()}, 10*time.Second)
	ba := runKey(base, []machine.Proc{a2.proc(), app.proc()}, 10*time.Second)
	if ab != ba {
		t.Error("process order changed the run key")
	}
}

// TestMemoizationSingleflight hammers one key from many goroutines: all
// callers must receive the same *machine.Run and the simulation must have
// run exactly once (one miss, the rest hits).
func TestMemoizationSingleflight(t *testing.T) {
	EnableMemoization(true)
	ResetMemoization()
	defer EnableMemoization(true)
	cfg := machine.Config{Spec: cpumodel.SmallIntel(), Seed: 7}
	app := mustStressApp(t, "int64", 1)

	const n = 16
	runs := make([]*machine.Run, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			run, err := memo.simulateCached(cfg, []machine.Proc{app.proc()}, 3*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			runs[i] = run
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if runs[i] != runs[0] {
			t.Fatalf("caller %d received a different run pointer", i)
		}
	}
	st := MemoizationStats()
	if st.Misses != 1 || st.Hits != n-1 {
		t.Errorf("stats = %+v, want 1 miss and %d hits", st, n-1)
	}
}

// TestMemoizationLimit checks FIFO eviction keeps the table bounded and
// evicted keys recompute correctly.
func TestMemoizationLimit(t *testing.T) {
	EnableMemoization(true)
	ResetMemoization()
	SetMemoizationLimit(2)
	defer func() {
		SetMemoizationLimit(0) // restore the default
		ResetMemoization()
	}()
	app := mustStressApp(t, "int64", 1)
	for seed := int64(1); seed <= 4; seed++ {
		cfg := machine.Config{Spec: cpumodel.SmallIntel(), Seed: seed}
		if _, err := memo.simulateCached(cfg, []machine.Proc{app.proc()}, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if st := MemoizationStats(); st.Entries > 2 {
		t.Errorf("cache holds %d entries, limit is 2", st.Entries)
	}
	// Seed 1 was evicted; asking again recomputes and still agrees with a
	// direct simulation.
	cfg := machine.Config{Spec: cpumodel.SmallIntel(), Seed: 1}
	got, err := memo.simulateCached(cfg, []machine.Proc{app.proc()}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want, err := machine.Simulate(cfg, []machine.Proc{app.proc()}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Ticks, want.Ticks) {
		t.Error("recomputed run differs from direct simulation")
	}
}

package protocol

import (
	"testing"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/division"
	"powerdiv/internal/machine"
	"powerdiv/internal/models"
)

// evalTestCampaign runs one small two-scenario streaming campaign and
// returns its error tables.
func evalTestCampaign(t *testing.T, ctx Context, strip bool) map[string][]Evaluation {
	t.Helper()
	a0, err := StressApp("fibonacci", 1)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := StressApp("matrixprod", 2)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := StressApp("int64", 1)
	if err != nil {
		t.Fatal(err)
	}
	scenarios := []Scenario{
		{Apps: []AppSpec{a0, a1}},
		{Apps: []AppSpec{a1, a2}},
	}
	spec := cpumodel.SmallIntel()
	factories := func(baselines map[string]division.Baseline) []models.Factory {
		fs := goldenFactories(baselines, spec)
		if strip {
			for i := range fs {
				fs[i].Fingerprint = ""
			}
		}
		return fs
	}
	got, err := EvaluateModelsStreaming(ctx, scenarios, factories, ObjectiveActive, 0)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestEvalDigestWarmBitIdentical pins the evaluation-digest tier: a second
// identical campaign in the same process serves every scenario from stored
// digests — no pair simulation — and its error tables are bit-identical to
// the cold pass.
func TestEvalDigestWarmBitIdentical(t *testing.T) {
	ctx := goldenContext(cpumodel.SmallIntel(), false)
	ResetMemoization()
	defer ResetMemoization()

	want := evalTestCampaign(t, ctx, false)
	st := MemoizationStats()
	if st.EvalEntries == 0 || st.EvalBytes <= 0 {
		t.Fatalf("cold campaign stored no digests: %+v", st)
	}
	coldHits := st.Hits

	got := evalTestCampaign(t, ctx, false)
	if warm := MemoizationStats(); warm.Hits <= coldHits {
		t.Fatalf("warm campaign hit nothing: cold %d hits, warm %d", coldHits, warm.Hits)
	}
	if len(got) != len(want) {
		t.Fatalf("%d models warm, %d cold", len(got), len(want))
	}
	for name, wantEvs := range want {
		gotEvs, ok := got[name]
		if !ok || len(gotEvs) != len(wantEvs) {
			t.Fatalf("model %s missing or wrong length warm", name)
		}
		for i := range wantEvs {
			compareStreamingEvaluations(t, name, wantEvs[i], gotEvs[i])
		}
	}
}

// TestEvalDigestBypassWithoutFingerprint pins the safety valve: factories
// without a fingerprint cannot be distinguished by configuration, so the
// digest tier must stay empty for them — and the results must still match
// the fingerprinted run bit for bit (the bypass changes caching, not math).
func TestEvalDigestBypassWithoutFingerprint(t *testing.T) {
	ctx := goldenContext(cpumodel.SmallIntel(), false)
	ResetMemoization()
	defer ResetMemoization()
	want := evalTestCampaign(t, ctx, false)

	ResetMemoization()
	got := evalTestCampaign(t, ctx, true)
	if st := MemoizationStats(); st.EvalEntries != 0 {
		t.Fatalf("fingerprint-less campaign stored %d digests", st.EvalEntries)
	}
	for name, wantEvs := range want {
		for i := range wantEvs {
			compareStreamingEvaluations(t, name, wantEvs[i], got[name][i])
		}
	}
}

// TestEvalKeySeparatesConfigurations pins the key itself: equal inputs
// collide, while changing the campaign seed, a factory fingerprint, a
// factory name, or a truth share must separate keys — and any factory
// without a fingerprint disables the tier.
func TestEvalKeySeparatesConfigurations(t *testing.T) {
	ctx := goldenContext(cpumodel.SmallIntel(), false)
	app, err := StressApp("fibonacci", 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ctx.Machine
	procs := []machine.Proc{app.proc()}
	fs := []models.Factory{{Name: "m", Fingerprint: "m/v1"}}
	truths := []division.Shares{{"a": 0.5, "b": 0.5}}

	base, ok := evalKey(ctx, cfg, procs, fs, truths)
	if !ok || base == "" {
		t.Fatal("base key not built")
	}
	if again, _ := evalKey(ctx, cfg, procs, fs, truths); again != base {
		t.Fatal("equal inputs produced different keys")
	}
	variants := map[string]func() (string, bool){
		"seed": func() (string, bool) {
			c2 := ctx
			c2.Seed++
			return evalKey(c2, cfg, procs, fs, truths)
		},
		"stable-window": func() (string, bool) {
			c2 := ctx
			c2.StableWindow *= 2
			return evalKey(c2, cfg, procs, fs, truths)
		},
		"fingerprint": func() (string, bool) {
			return evalKey(ctx, cfg, procs, []models.Factory{{Name: "m", Fingerprint: "m/v2"}}, truths)
		},
		"factory-name": func() (string, bool) {
			return evalKey(ctx, cfg, procs, []models.Factory{{Name: "n", Fingerprint: "m/v1"}}, truths)
		},
		"truth-share": func() (string, bool) {
			return evalKey(ctx, cfg, procs, fs, []division.Shares{{"a": 0.25, "b": 0.75}})
		},
	}
	for name, build := range variants {
		key, ok := build()
		if !ok {
			t.Fatalf("%s variant disabled the tier", name)
		}
		if key == base {
			t.Fatalf("%s variant collided with the base key", name)
		}
	}
	if _, ok := evalKey(ctx, cfg, procs, []models.Factory{{Name: "m"}}, truths); ok {
		t.Fatal("fingerprint-less factory did not disable the tier")
	}
}

package protocol

import (
	"fmt"
	"math"
	"testing"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/division"
	"powerdiv/internal/machine"
	"powerdiv/internal/models"
	"powerdiv/internal/trace"
	"powerdiv/internal/units"
)

// scoreRunMapReference is the pre-columnar phase 3 pipeline, kept verbatim
// as the golden reference: map-view replay, nil-map coverage, map-keyed
// mean estimates and division.AbsoluteError over map shares. The dense
// scoreRun must reproduce it bit for bit.
func scoreRunMapReference(ctx Context, s Scenario, run *machine.Run, factory models.Factory, truths []division.Shares) ([]Evaluation, error) {
	model := factory.New(deriveSeed(ctx.Seed, "model", factory.Name, s.Label()))
	ests := models.ReplayTicks(model, models.RunTicks(run))

	ok := make([]bool, len(ests))
	for i, est := range ests {
		ok[i] = est != nil
	}
	from, to := stableScoringWindow(ctx, runSeries(run), ok, trace.New())
	if to <= from {
		return nil, fmt.Errorf("protocol: scenario %q: model %s produced no estimates", s.Label(), factory.Name)
	}
	scoredEsts := make([]map[string]units.Watts, 0, len(run.Ticks))
	scoredPower := make([]units.Watts, 0, len(run.Ticks))
	meanEst := map[string]float64{}
	for i, rec := range run.Ticks {
		if rec.At < from || rec.At >= to || ests[i] == nil {
			continue
		}
		scoredEsts = append(scoredEsts, ests[i])
		scoredPower = append(scoredPower, rec.Power)
		for id, w := range ests[i] {
			meanEst[id] += float64(w)
		}
	}
	var meanPower float64
	for _, p := range scoredPower {
		meanPower += float64(p)
	}
	estShare := division.Shares{}
	for id, sum := range meanEst {
		if meanPower > 0 {
			estShare[id] = sum / meanPower
		}
	}

	out := make([]Evaluation, len(truths))
	for i, truth := range truths {
		ev := Evaluation{Scenario: s, Model: factory.Name, Truth: truth, EstShare: estShare}
		ae, err := division.AbsoluteError(scoredEsts, scoredPower, division.ConstShares(len(scoredEsts), truth))
		if err != nil {
			return nil, fmt.Errorf("protocol: scenario %q: %w", s.Label(), err)
		}
		ev.AE = ae
		ev.ScoredTicks = len(scoredEsts)
		if len(s.Apps) == 2 {
			id0, id1 := s.Apps[0].ID, s.Apps[1].ID
			ev.Point = division.RatioPoint{
				X:     division.RatioPercent(truth[id0], truth[id1]),
				Y:     division.RatioPercent(estShare[id0], estShare[id1]),
				Label: s.Label(),
			}
		}
		out[i] = ev
	}
	return out, nil
}

func goldenContext(spec cpumodel.Spec, hyperthreading bool) Context {
	cfg := machine.Config{Spec: spec, NoiseStddev: 0.25, Hyperthreading: hyperthreading, Turbo: hyperthreading}
	ctx := DefaultContext(cfg)
	ctx.RunFor = 12 * time.Second
	ctx.StableWindow = 5 * time.Second
	ctx.Seed = 11
	return ctx
}

func goldenFactories(baselines map[string]division.Baseline, spec cpumodel.Spec) []models.Factory {
	perCore := map[string]units.Watts{}
	for id, b := range baselines {
		perCore[id] = b.ActivePerCore()
	}
	return []models.Factory{
		models.NewScaphandre(),
		models.NewKepler(),
		models.NewPowerAPI(models.DefaultPowerAPIConfig()),
		models.NewSmartWatts(models.DefaultSmartWattsConfig()),
		models.NewF2(perCore),
		models.NewResidualAwareFromSpec(spec),
		models.NewOracle(),
	}
}

// TestDenseScoringMatchesMapReference pins the tentpole equivalence: on
// both machines, every model's evaluation from the columnar pipeline is
// bit-identical (not merely close) to the retired map pipeline's.
func TestDenseScoringMatchesMapReference(t *testing.T) {
	specs := []struct {
		spec cpumodel.Spec
		ht   bool
	}{
		{cpumodel.SmallIntel(), false},
		{cpumodel.Dahu(), true},
	}
	for _, sp := range specs {
		t.Run(sp.spec.Name, func(t *testing.T) {
			ctx := goldenContext(sp.spec, sp.ht)
			a0, err := StressApp("fibonacci", 1)
			if err != nil {
				t.Fatal(err)
			}
			a1, err := StressApp("matrixprod", 2)
			if err != nil {
				t.Fatal(err)
			}
			a2, err := StressApp("int64", 1)
			if err != nil {
				t.Fatal(err)
			}
			scenarios := []Scenario{
				{Apps: []AppSpec{a0, a1}},
				{Apps: []AppSpec{a1, a2}},
				{Apps: []AppSpec{a0, a1, a2}},
			}
			baselines, err := MeasureBaselines(ctx, AppsOf(scenarios))
			if err != nil {
				t.Fatal(err)
			}
			objectives := []Objective{ObjectiveActive, ObjectiveResidualAware}
			for _, s := range scenarios {
				truths, err := scenarioTruths(s, baselines, objectives, 0)
				if err != nil {
					t.Fatal(err)
				}
				run, err := scenarioRun(ctx, s)
				if err != nil {
					t.Fatal(err)
				}
				for _, f := range goldenFactories(baselines, sp.spec) {
					want, wantErr := scoreRunMapReference(ctx, s, run, f, truths)
					got, gotErr := scoreRun(ctx, s, run, models.RunTicksDense(run), f, truths)
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("%s on %q: map err %v, dense err %v", f.Name, s.Label(), wantErr, gotErr)
					}
					if wantErr != nil {
						continue
					}
					for i := range want {
						compareEvaluations(t, f.Name, s, want[i], got[i])
					}
				}
			}
		})
	}
}

func compareEvaluations(t *testing.T, model string, s Scenario, want, got Evaluation) {
	t.Helper()
	label := fmt.Sprintf("%s on %q", model, s.Label())
	if math.Float64bits(want.AE) != math.Float64bits(got.AE) {
		t.Errorf("%s: AE %v (map) != %v (dense)", label, want.AE, got.AE)
	}
	if want.ScoredTicks != got.ScoredTicks {
		t.Errorf("%s: ScoredTicks %d != %d", label, want.ScoredTicks, got.ScoredTicks)
	}
	// The dense pipeline reports a (zero) share for every roster process;
	// the map pipeline only for estimated ones. Where both define a share
	// the values must be bit-identical, and dense extras must be zero.
	for id, w := range want.EstShare {
		g, ok := got.EstShare[id]
		if !ok || math.Float64bits(w) != math.Float64bits(g) {
			t.Errorf("%s: EstShare[%s] %v != %v", label, id, w, g)
		}
	}
	for id, g := range got.EstShare {
		if _, ok := want.EstShare[id]; !ok && g != 0 {
			t.Errorf("%s: dense EstShare[%s] = %v for unestimated process", label, id, g)
		}
	}
	if math.Float64bits(want.Point.X) != math.Float64bits(got.Point.X) ||
		math.Float64bits(want.Point.Y) != math.Float64bits(got.Point.Y) {
		t.Errorf("%s: Point (%v,%v) != (%v,%v)", label, want.Point.X, want.Point.Y, got.Point.X, got.Point.Y)
	}
}

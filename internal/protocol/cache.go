package protocol

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"powerdiv/internal/machine"
	"powerdiv/internal/workload"
)

// The campaign hot path re-simulates identical runs constantly: every model
// in a multi-model campaign replays the same pair scenarios, every
// ablation re-measures the same phase-1 solo baselines, and benchmark
// iterations repeat whole campaigns. Simulation is deterministic — a run is
// fully determined by the machine config (calibration included), the
// process list and the duration — so those repeats are pure waste. The run
// cache memoizes Simulate behind a key derived from exactly those inputs
// and is shared safely across the parallel.go worker pool.
//
// Cached *machine.Run values are shared between callers and MUST be treated
// as read-only; every consumer in this repository only reads them.

// runCacheEntry is one memoized simulation. done is closed once run/err are
// populated, giving concurrent requesters of the same key singleflight
// semantics: the first computes, the rest wait.
type runCacheEntry struct {
	done chan struct{}
	run  *machine.Run
	err  error
}

// summaryEntry is one memoized run digest in the byte-capped tier, with
// the same singleflight shape as runCacheEntry. size/sized carry the byte
// accounting: an entry is charged against the cap only once its compute
// finishes (sized), and an entry evicted while still computing (evicted)
// is never charged — the flag keeps the bytes ledger exact under
// concurrent insert/evict interleavings.
type summaryEntry struct {
	done    chan struct{}
	sum     *RunSummary
	err     error
	size    int64
	sized   bool
	evicted bool
}

// runCache is a bounded memoization table for simulator runs, in two
// tiers: full *machine.Run values under an entry-count FIFO (kept for the
// callers that need tick series — timeline, profiling, experiments), and
// compact RunSummary digests under a byte-capped FIFO (the streaming
// pipeline's phase 1 tier).
type runCache struct {
	mu      sync.Mutex
	enabled bool
	limit   int
	entries map[string]*runCacheEntry
	order   []string

	byteLimit int64
	bytes     int64
	summaries map[string]*summaryEntry
	sumOrder  []string

	evalByteLimit int64
	evalBytes     int64
	evals         map[string]*evalEntry
	evalOrder     []string

	hits      uint64
	misses    uint64
	lookups   uint64
	evictions uint64

	disk *DiskCache
}

// DefaultMemoLimit is the default number of memoized runs kept. A 30 s
// stress run holds ~300 ticks (~a few hundred KB with per-tick process
// maps), so the default bounds the cache to roughly a few hundred MB —
// enough for the all-pairs lab campaigns on both machines plus every solo
// baseline, without letting long-lived processes grow without bound.
const DefaultMemoLimit = 2048

// DefaultMemoBytes is the default cap on the summary tier's estimated
// footprint. Solo-run digests are a few KB each, so 64 MB holds every
// baseline of any campaign this repository runs by orders of magnitude;
// the cap exists so unbounded sweeps degrade to recomputation instead of
// memory growth.
const DefaultMemoBytes int64 = 64 << 20

var memo = newRunCache(DefaultMemoLimit, DefaultMemoBytes)

// newRunCache builds an enabled two-tier cache with the given bounds.
func newRunCache(limit int, byteLimit int64) *runCache {
	return &runCache{
		enabled:       true,
		limit:         limit,
		entries:       map[string]*runCacheEntry{},
		byteLimit:     byteLimit,
		summaries:     map[string]*summaryEntry{},
		evalByteLimit: DefaultEvalMemoBytes,
		evals:         map[string]*evalEntry{},
	}
}

// CacheScope is an isolated memoization tier with its own byte budget — the
// unit of cache isolation the campaign service hands each job. A scope has
// the same two-tier structure and singleflight semantics as the process
// cache but shares nothing with it: a job's solo-run digests are charged
// against the job's budget, evicted within the job, and released wholesale
// when the scope is dropped, so one tenant's sweep can never evict another
// tenant's baselines (or grow the process past its admission-time budget).
// Campaigns select a scope through Context.Cache; a nil scope means the
// process-wide cache, which keeps every existing caller's behaviour.
type CacheScope struct {
	c *runCache
}

// NewCacheScope returns an isolated cache tier capped at byteLimit bytes of
// summary digests (non-positive means DefaultMemoBytes). The full-run tier
// keeps the default entry bound; jobs on the streaming pipeline only touch
// the summary tier.
func NewCacheScope(byteLimit int64) *CacheScope {
	if byteLimit <= 0 {
		byteLimit = DefaultMemoBytes
	}
	return &CacheScope{c: newRunCache(DefaultMemoLimit, byteLimit)}
}

// Stats reports the scope's activity since creation, with the same
// invariants as the process-wide MemoizationStats.
func (s *CacheScope) Stats() MemoStats {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	return s.c.statsLocked()
}

// AttachDisk gives the scope a persistent summary tier: memory misses are
// looked up on disk before simulating, and fresh digests are written back.
// Several scopes may share one DiskCache — its writes are atomic and its
// counters are lock-protected. A nil disk detaches.
func (s *CacheScope) AttachDisk(d *DiskCache) {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	s.c.disk = d
}

// Drop releases everything the scope holds. Waiters on in-flight entries
// still receive their results; the tables are emptied so the memory is
// reclaimable as soon as those callers return.
func (s *CacheScope) Drop() {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	s.c.dropLocked()
}

// memo resolves the cache a campaign context uses: its scoped tier when one
// is set, else the process-wide cache.
func (ctx Context) memo() *runCache {
	if ctx.Cache != nil {
		return ctx.Cache.c
	}
	return memo
}

// AttachDiskCache attaches a persistent summary cache to the process-wide
// memoization tier (nil detaches). Campaign contexts using scoped caches
// attach through CacheScope.AttachDisk instead.
func AttachDiskCache(d *DiskCache) {
	memo.mu.Lock()
	defer memo.mu.Unlock()
	memo.disk = d
}

// EnableMemoization turns solo/pair run memoization on or off globally.
// It is on by default; turning it off also drops all cached runs. Tests
// use it to prove memoized and unmemoized campaigns agree byte for byte.
func EnableMemoization(on bool) {
	memo.mu.Lock()
	defer memo.mu.Unlock()
	memo.enabled = on
	if !on {
		memo.dropLocked()
	}
}

// ResetMemoization drops every cached run and summary and zeroes the
// statistics, leaving the enabled state and limits unchanged.
func ResetMemoization() {
	memo.mu.Lock()
	defer memo.mu.Unlock()
	memo.dropLocked()
	memo.hits, memo.misses, memo.lookups, memo.evictions = 0, 0, 0, 0
}

// dropLocked empties every tier. Entries still computing are detached from
// the table (their waiters still get results) and never charge the ledger.
func (c *runCache) dropLocked() {
	c.entries = map[string]*runCacheEntry{}
	c.order = nil
	for _, e := range c.summaries {
		e.evicted = true
	}
	c.summaries = map[string]*summaryEntry{}
	c.sumOrder = nil
	c.bytes = 0
	for _, e := range c.evals {
		e.evicted = true
	}
	c.evals = map[string]*evalEntry{}
	c.evalOrder = nil
	c.evalBytes = 0
}

// SetMemoizationLimit bounds the number of cached runs (FIFO eviction).
// Non-positive limits restore the default.
func SetMemoizationLimit(n int) {
	memo.mu.Lock()
	defer memo.mu.Unlock()
	if n <= 0 {
		n = DefaultMemoLimit
	}
	memo.limit = n
	memo.evictLocked()
}

// SetMemoizationByteLimit caps the summary tier's estimated footprint
// (FIFO eviction). Non-positive limits restore the default.
func SetMemoizationByteLimit(n int64) {
	memo.mu.Lock()
	defer memo.mu.Unlock()
	if n <= 0 {
		n = DefaultMemoBytes
	}
	memo.byteLimit = n
	memo.evictSummariesLocked()
}

// MemoStats reports the cache's activity since the last reset. Both tiers
// share the hit/miss/lookup counters; all counters are maintained under
// one lock, so any snapshot satisfies Hits + Misses == Lookups and
// SummaryBytes <= SummaryByteLimit — invariants the concurrency stress
// test asserts while workers hammer the cache.
type MemoStats struct {
	Hits    uint64
	Misses  uint64
	Lookups uint64
	// Entries counts the full-run tier; SummaryEntries/SummaryBytes the
	// byte-capped summary tier (estimated footprint, completed entries
	// only), under SummaryByteLimit.
	Entries          int
	SummaryEntries   int
	SummaryBytes     int64
	SummaryByteLimit int64
	// EvalEntries/EvalBytes describe the evaluation-digest tier, under
	// EvalByteLimit.
	EvalEntries   int
	EvalBytes     int64
	EvalByteLimit int64
	// Evictions counts entries dropped by any tier's bound since the
	// last reset.
	Evictions uint64
	// DiskHits/DiskMisses/DiskWrites count the persistent summary cache's
	// activity (zero when no disk cache is attached).
	DiskHits   uint64
	DiskMisses uint64
	DiskWrites uint64
}

// MemoizationStats returns the current cache statistics.
func MemoizationStats() MemoStats {
	memo.mu.Lock()
	defer memo.mu.Unlock()
	return memo.statsLocked()
}

// statsLocked snapshots every tier's counters under the cache lock.
func (c *runCache) statsLocked() MemoStats {
	st := MemoStats{
		Hits:             c.hits,
		Misses:           c.misses,
		Lookups:          c.lookups,
		Entries:          len(c.entries),
		SummaryEntries:   len(c.summaries),
		SummaryBytes:     c.bytes,
		SummaryByteLimit: c.byteLimit,
		EvalEntries:      len(c.evals),
		EvalBytes:        c.evalBytes,
		EvalByteLimit:    c.evalByteLimit,
		Evictions:        c.evictions,
	}
	if c.disk != nil {
		st.DiskHits, st.DiskMisses, st.DiskWrites = c.disk.counters()
	}
	return st
}

// evictLocked enforces the entry limit. Oldest entries go first; waiters
// holding an evicted entry pointer still receive its result.
func (c *runCache) evictLocked() {
	for len(c.order) > c.limit {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
		c.evictions++
		obsCacheEvictions.Inc()
	}
}

// evictSummariesLocked enforces the byte cap, oldest first. A still-
// computing entry has no size yet; marking it evicted makes its compute
// skip the charge, so bytes only ever counts completed, table-resident
// entries.
func (c *runCache) evictSummariesLocked() {
	for c.bytes > c.byteLimit && len(c.sumOrder) > 0 {
		key := c.sumOrder[0]
		c.sumOrder = c.sumOrder[1:]
		if e, ok := c.summaries[key]; ok {
			delete(c.summaries, key)
			e.evicted = true
			if e.sized {
				c.bytes -= e.size
			}
			c.evictions++
			obsCacheEvictions.Inc()
		}
	}
}

// simulateCached is machine.Simulate behind the receiver's memoization
// tier. The returned run is shared with other callers and must not be
// mutated.
func (c *runCache) simulateCached(cfg machine.Config, procs []machine.Proc, maxDur time.Duration) (*machine.Run, error) {
	c.mu.Lock()
	enabled := c.enabled
	c.mu.Unlock()
	if !enabled {
		return machine.Simulate(cfg, procs, maxDur)
	}
	key := runKey(cfg, procs, maxDur)
	c.mu.Lock()
	c.lookups++
	if e, ok := c.entries[key]; ok {
		c.hits++
		obsCacheHits.Inc()
		c.mu.Unlock()
		<-e.done
		return e.run, e.err
	}
	e := &runCacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.order = append(c.order, key)
	c.misses++
	obsCacheMisses.Inc()
	c.evictLocked()
	c.mu.Unlock()

	e.run, e.err = machine.Simulate(cfg, procs, maxDur)
	close(e.done)
	return e.run, e.err
}

// summaryCached is newRunSummary behind the receiver's byte-capped summary
// tier, with the same singleflight semantics as simulateCached. The
// returned summary is shared between callers and must be treated as
// read-only.
func (c *runCache) summaryCached(cfg machine.Config, procs []machine.Proc, maxDur time.Duration) (*RunSummary, error) {
	c.mu.Lock()
	enabled := c.enabled
	c.mu.Unlock()
	if !enabled {
		return newRunSummary(cfg, procs, maxDur)
	}
	key := runKey(cfg, procs, maxDur)
	c.mu.Lock()
	c.lookups++
	if e, ok := c.summaries[key]; ok {
		c.hits++
		obsCacheHits.Inc()
		c.mu.Unlock()
		<-e.done
		return e.sum, e.err
	}
	e := &summaryEntry{done: make(chan struct{})}
	c.summaries[key] = e
	c.sumOrder = append(c.sumOrder, key)
	c.misses++
	obsCacheMisses.Inc()
	disk := c.disk
	c.mu.Unlock()

	// A memory miss consults the persistent tier before simulating; a fresh
	// compute is written back so the next process starts warm. Disk entries
	// round-trip the summary exactly (float bits included), so a disk hit is
	// indistinguishable from a memory hit downstream.
	if disk != nil {
		if sum, ok := disk.load(key); ok {
			e.sum = sum
		}
	}
	if e.sum == nil {
		e.sum, e.err = newRunSummary(cfg, procs, maxDur)
		if e.err == nil && disk != nil {
			disk.store(key, e.sum)
		}
	}
	c.mu.Lock()
	if !e.evicted {
		e.size = e.sum.EstimatedBytes()
		e.sized = true
		c.bytes += e.size
		c.evictSummariesLocked()
	}
	c.mu.Unlock()
	close(e.done)
	return e.sum, e.err
}

// Key-building primitives: floats are encoded as their IEEE bit patterns
// (exact, no formatting ambiguity), integers in decimal, strings verbatim
// between delimiters. The encoding only needs to be deterministic and
// injective per field position — it is a cache key, not a display string —
// and the strconv appends run an order of magnitude faster than the
// fmt-based formatting they replaced, which profiles showed dominating the
// warm materialized pipeline.

func keyF(b []byte, f float64) []byte { return strconv.AppendUint(b, math.Float64bits(f), 36) }
func keyI(b []byte, v int64) []byte   { return strconv.AppendInt(b, v, 10) }

// runKey fingerprints everything a simulation's outcome depends on: the
// machine calibration and performance settings (seed included), the full
// process list (workload definition included), and the duration. Process
// order is normalised away — the simulator schedules in ID order, so
// permutations produce identical runs.
func runKey(cfg machine.Config, procs []machine.Proc, maxDur time.Duration) string {
	b := make([]byte, 0, 512)
	spec := cfg.Spec
	b = append(b, "spec:"...)
	b = append(b, spec.Name...)
	b = append(b, "|top:"...)
	b = keyI(b, int64(spec.Topology.Sockets))
	b = append(b, '/')
	b = keyI(b, int64(spec.Topology.CoresPerSocket))
	b = append(b, '/')
	b = keyI(b, int64(spec.Topology.ThreadsPerCore))
	b = append(b, "|freq:"...)
	b = keyF(b, float64(spec.Freq.Min))
	b = append(b, '/')
	b = keyF(b, float64(spec.Freq.Base))
	b = append(b, '/')
	b = keyF(b, float64(spec.Freq.Turbo))
	b = append(b, '/')
	b = keyF(b, float64(spec.Freq.TurboDerate))
	b = append(b, "|pw:"...)
	b = keyF(b, float64(spec.Power.Idle))
	b = append(b, '/')
	b = keyF(b, spec.Power.FreqExponent)
	b = append(b, '/')
	b = keyF(b, spec.Power.SMTEfficiency)
	b = append(b, '/')
	b = keyF(b, float64(spec.Power.BaseFreq))
	b = append(b, "|rc:"...)
	for _, pt := range spec.Power.Residual.Points() {
		b = keyF(b, float64(pt.Freq))
		b = append(b, '=')
		b = keyF(b, float64(pt.R))
		b = append(b, ';')
	}
	b = append(b, "|ht:"...)
	b = strconv.AppendBool(b, cfg.Hyperthreading)
	b = append(b, "|turbo:"...)
	b = strconv.AppendBool(b, cfg.Turbo)
	b = append(b, "|maxf:"...)
	b = keyF(b, float64(cfg.MaxFreq))
	b = append(b, "|tick:"...)
	b = keyI(b, int64(cfg.Tick))
	b = append(b, "|noise:"...)
	b = keyF(b, float64(cfg.NoiseStddev))
	b = append(b, "|seed:"...)
	b = keyI(b, cfg.Seed)
	b = append(b, "|dur:"...)
	b = keyI(b, int64(maxDur))

	ordered := append([]machine.Proc(nil), procs...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
	for _, p := range ordered {
		b = append(b, "|proc:"...)
		b = append(b, p.ID...)
		b = append(b, "|thr:"...)
		b = keyI(b, int64(p.Threads))
		b = append(b, "|quota:"...)
		b = keyF(b, p.CPUQuota)
		b = append(b, "|start:"...)
		b = keyI(b, int64(p.Start))
		b = append(b, "|stop:"...)
		b = keyI(b, int64(p.Stop))
		b = append(b, "|pin:"...)
		if p.Pinned == nil {
			b = append(b, "nil"...)
		} else {
			for _, pin := range p.Pinned {
				b = keyI(b, int64(pin))
				b = append(b, ',')
			}
		}
		b = append(b, '|')
		b = workloadKey(b, p.Workload)
	}
	return string(b)
}

// workloadKey fingerprints a workload definition. Two workloads sharing a
// name but differing in calibration or script must not collide.
func workloadKey(b []byte, w workload.Workload) []byte {
	b = append(b, "w:"...)
	b = append(b, w.Name...)
	b = append(b, '/')
	b = keyI(b, int64(w.Kind))
	b = append(b, "|mix:"...)
	b = keyF(b, w.Mix.IPC)
	b = append(b, '/')
	b = keyF(b, w.Mix.CacheRefsPerKiloInstr)
	b = append(b, '/')
	b = keyF(b, w.Mix.BranchesPerKiloInstr)
	b = append(b, "|cost:"...)
	names := make([]string, 0, len(w.Cost))
	for n := range w.Cost {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		b = append(b, n...)
		b = append(b, '=')
		b = keyF(b, float64(w.Cost[n]))
		b = append(b, ';')
	}
	b = append(b, "|script:"...)
	b = keyI(b, int64(len(w.Script)))
	b = append(b, ':')
	for _, ph := range w.Script {
		b = keyI(b, int64(ph.Duration))
		b = append(b, '/')
		b = keyI(b, int64(ph.Threads))
		b = append(b, '/')
		b = keyF(b, ph.Intensity)
		b = append(b, '/')
		b = keyF(b, ph.Util)
		b = append(b, ';')
	}
	return b
}

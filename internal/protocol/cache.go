package protocol

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"powerdiv/internal/machine"
	"powerdiv/internal/workload"
)

// The campaign hot path re-simulates identical runs constantly: every model
// in a multi-model campaign replays the same pair scenarios, every
// ablation re-measures the same phase-1 solo baselines, and benchmark
// iterations repeat whole campaigns. Simulation is deterministic — a run is
// fully determined by the machine config (calibration included), the
// process list and the duration — so those repeats are pure waste. The run
// cache memoizes Simulate behind a key derived from exactly those inputs
// and is shared safely across the parallel.go worker pool.
//
// Cached *machine.Run values are shared between callers and MUST be treated
// as read-only; every consumer in this repository only reads them.

// runCacheEntry is one memoized simulation. done is closed once run/err are
// populated, giving concurrent requesters of the same key singleflight
// semantics: the first computes, the rest wait.
type runCacheEntry struct {
	done chan struct{}
	run  *machine.Run
	err  error
}

// runCache is a bounded FIFO memoization table for simulator runs.
type runCache struct {
	mu      sync.Mutex
	enabled bool
	limit   int
	entries map[string]*runCacheEntry
	order   []string
	hits    uint64
	misses  uint64
}

// DefaultMemoLimit is the default number of memoized runs kept. A 30 s
// stress run holds ~300 ticks (~a few hundred KB with per-tick process
// maps), so the default bounds the cache to roughly a few hundred MB —
// enough for the all-pairs lab campaigns on both machines plus every solo
// baseline, without letting long-lived processes grow without bound.
const DefaultMemoLimit = 2048

var memo = &runCache{
	enabled: true,
	limit:   DefaultMemoLimit,
	entries: map[string]*runCacheEntry{},
}

// EnableMemoization turns solo/pair run memoization on or off globally.
// It is on by default; turning it off also drops all cached runs. Tests
// use it to prove memoized and unmemoized campaigns agree byte for byte.
func EnableMemoization(on bool) {
	memo.mu.Lock()
	defer memo.mu.Unlock()
	memo.enabled = on
	if !on {
		memo.entries = map[string]*runCacheEntry{}
		memo.order = nil
	}
}

// ResetMemoization drops every cached run and zeroes the statistics,
// leaving the enabled state unchanged.
func ResetMemoization() {
	memo.mu.Lock()
	defer memo.mu.Unlock()
	memo.entries = map[string]*runCacheEntry{}
	memo.order = nil
	memo.hits, memo.misses = 0, 0
}

// SetMemoizationLimit bounds the number of cached runs (FIFO eviction).
// Non-positive limits restore the default.
func SetMemoizationLimit(n int) {
	memo.mu.Lock()
	defer memo.mu.Unlock()
	if n <= 0 {
		n = DefaultMemoLimit
	}
	memo.limit = n
	memo.evictLocked()
}

// MemoStats reports the cache's activity since the last reset.
type MemoStats struct {
	Hits    uint64
	Misses  uint64
	Entries int
}

// MemoizationStats returns the current cache statistics.
func MemoizationStats() MemoStats {
	memo.mu.Lock()
	defer memo.mu.Unlock()
	return MemoStats{Hits: memo.hits, Misses: memo.misses, Entries: len(memo.entries)}
}

// evictLocked enforces the entry limit. Oldest entries go first; waiters
// holding an evicted entry pointer still receive its result.
func (c *runCache) evictLocked() {
	for len(c.order) > c.limit {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
		obsCacheEvictions.Inc()
	}
}

// simulateCached is machine.Simulate behind the memoization cache. The
// returned run is shared with other callers and must not be mutated.
func simulateCached(cfg machine.Config, procs []machine.Proc, maxDur time.Duration) (*machine.Run, error) {
	memo.mu.Lock()
	enabled := memo.enabled
	memo.mu.Unlock()
	if !enabled {
		return machine.Simulate(cfg, procs, maxDur)
	}
	key := runKey(cfg, procs, maxDur)
	memo.mu.Lock()
	if e, ok := memo.entries[key]; ok {
		memo.hits++
		obsCacheHits.Inc()
		memo.mu.Unlock()
		<-e.done
		return e.run, e.err
	}
	e := &runCacheEntry{done: make(chan struct{})}
	memo.entries[key] = e
	memo.order = append(memo.order, key)
	memo.misses++
	obsCacheMisses.Inc()
	memo.evictLocked()
	memo.mu.Unlock()

	e.run, e.err = machine.Simulate(cfg, procs, maxDur)
	close(e.done)
	return e.run, e.err
}

// runKey fingerprints everything a simulation's outcome depends on: the
// machine calibration and performance settings (seed included), the full
// process list (workload definition included), and the duration. Process
// order is normalised away — the simulator schedules in ID order, so
// permutations produce identical runs.
func runKey(cfg machine.Config, procs []machine.Proc, maxDur time.Duration) string {
	var b strings.Builder
	b.Grow(512)
	spec := cfg.Spec
	fmt.Fprintf(&b, "spec:%s|top:%d/%d/%d|freq:%v/%v/%v/%v|pw:%v/%v/%v/%v|rc:",
		spec.Name,
		spec.Topology.Sockets, spec.Topology.CoresPerSocket, spec.Topology.ThreadsPerCore,
		spec.Freq.Min, spec.Freq.Base, spec.Freq.Turbo, spec.Freq.TurboDerate,
		spec.Power.Idle, spec.Power.FreqExponent, spec.Power.SMTEfficiency, spec.Power.BaseFreq)
	for _, pt := range spec.Power.Residual.Points() {
		fmt.Fprintf(&b, "%v=%v;", pt.Freq, pt.R)
	}
	fmt.Fprintf(&b, "|ht:%t|turbo:%t|maxf:%v|tick:%v|noise:%v|seed:%d|dur:%v",
		cfg.Hyperthreading, cfg.Turbo, cfg.MaxFreq, cfg.Tick, cfg.NoiseStddev, cfg.Seed, maxDur)

	ordered := append([]machine.Proc(nil), procs...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
	for _, p := range ordered {
		fmt.Fprintf(&b, "|proc:%s|thr:%d|quota:%v|start:%v|stop:%v|pin:%v|", p.ID, p.Threads, p.CPUQuota, p.Start, p.Stop, p.Pinned)
		workloadKey(&b, p.Workload)
	}
	return b.String()
}

// workloadKey fingerprints a workload definition. Two workloads sharing a
// name but differing in calibration or script must not collide.
func workloadKey(b *strings.Builder, w workload.Workload) {
	fmt.Fprintf(b, "w:%s/%d|mix:%v/%v/%v|cost:", w.Name, int(w.Kind), w.Mix.IPC, w.Mix.CacheRefsPerKiloInstr, w.Mix.BranchesPerKiloInstr)
	names := make([]string, 0, len(w.Cost))
	for n := range w.Cost {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(b, "%s=%v;", n, w.Cost[n])
	}
	fmt.Fprintf(b, "|script:%d:", len(w.Script))
	for _, ph := range w.Script {
		fmt.Fprintf(b, "%v/%d/%v/%v;", ph.Duration, ph.Threads, ph.Intensity, ph.Util)
	}
}

package protocol

import (
	"testing"
	"time"

	"powerdiv/internal/division"
	"powerdiv/internal/models"
	"powerdiv/internal/obs"
)

// TestObsCountersMatchMemoStats runs a memoized multi-model campaign with
// the metrics registry enabled and asserts the exported cache counters agree
// exactly with MemoizationStats — both are incremented at the same sites in
// simulateCached, and this test pins them there. It also checks the scenario
// lifecycle metrics: every started scenario completes, each completion lands
// one latency observation, and the worker-occupancy gauge reads zero once
// the pool drains.
func TestObsCountersMatchMemoStats(t *testing.T) {
	obs.Default().Reset()
	obs.Enable(true)
	t.Cleanup(func() {
		obs.Enable(false)
		obs.Default().Reset()
	})
	EnableMemoization(true)
	t.Cleanup(func() { EnableMemoization(true) })
	ResetMemoization()

	ctx := labSmall()
	ctx.RunFor = 6 * time.Second
	ctx.StableWindow = 2 * time.Second
	scenarios, err := StressPairs([]string{"fibonacci", "matrixprod", "int64"}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	factories := func(map[string]division.Baseline) []models.Factory {
		return []models.Factory{models.NewScaphandre(), models.NewKepler()}
	}
	results, err := EvaluateModels(ctx, scenarios, factories, ObjectiveActive, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d models, want 2", len(results))
	}

	st := MemoizationStats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("campaign exercised no cache traffic: %+v", st)
	}
	if got := obsCacheHits.Value(); got != st.Hits {
		t.Errorf("cache_hits_total = %d, MemoizationStats.Hits = %d", got, st.Hits)
	}
	if got := obsCacheMisses.Value(); got != st.Misses {
		t.Errorf("cache_misses_total = %d, MemoizationStats.Misses = %d", got, st.Misses)
	}
	if got := obsCacheEvictions.Value(); got != 0 {
		t.Errorf("cache_evictions_total = %d, want 0 (campaign fits the default limit)", got)
	}

	started, completed := obsScenariosStarted.Value(), obsScenariosCompleted.Value()
	// EvaluateModels scores all models inside one evaluation per scenario.
	// Baseline solo runs go through the cache but are not scenario
	// evaluations.
	want := uint64(len(scenarios))
	if started != want || completed != want {
		t.Errorf("scenarios started/completed = %d/%d, want %d/%d", started, completed, want, want)
	}
	if got := obsScenarioSeconds.Count(); got != completed {
		t.Errorf("scenario_seconds count = %d, want one observation per completion (%d)", got, completed)
	}
	if obsScenarioSeconds.Sum() <= 0 {
		t.Error("scenario_seconds sum is not positive")
	}
	if got := obsWorkersBusy.Value(); got != 0 {
		t.Errorf("workers_busy = %v after the pool drained, want 0", got)
	}
}

// TestObsDisabledCampaignRecordsNothing proves the default-off registry
// stays silent through a campaign: instrumented code paths must not leak
// metric updates when observability is disabled.
func TestObsDisabledCampaignRecordsNothing(t *testing.T) {
	obs.Enable(false)
	obs.Default().Reset()
	EnableMemoization(true)
	t.Cleanup(func() { EnableMemoization(true) })
	ResetMemoization()

	ctx := labSmall()
	ctx.RunFor = 4 * time.Second
	scenarios, err := StressPairs([]string{"fibonacci", "matrixprod"}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluateCampaignParallel(ctx, scenarios, models.NewScaphandre(), ObjectiveActive, 0); err != nil {
		t.Fatal(err)
	}
	if st := MemoizationStats(); st.Misses == 0 {
		t.Fatalf("campaign did not run: %+v", st)
	}
	for _, s := range obs.Default().Snapshots() {
		if s.Value != 0 || s.Count != 0 {
			t.Errorf("metric %s recorded %v/%d while disabled", s.Name, s.Value, s.Count)
		}
	}
}

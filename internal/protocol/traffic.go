package protocol

import (
	"context"
	"fmt"
	"time"

	"powerdiv/internal/division"
	"powerdiv/internal/machine"
	"powerdiv/internal/models"
	"powerdiv/internal/units"
)

// This file scores models over traffic scenarios: generated timed rosters
// whose instances arrive (AppSpec.StartAt), burst and exit (StopAt) while
// the scenario runs — the paper's "production context" shape that the
// static pair campaigns cannot reach. The objective is per tick, over the
// instances actually present (as in EvaluateTimeline): churn transitions
// are exactly what is under test, so no stable-window selection applies.
//
// Two pipelines produce bit-identical results (the traffic golden test pins
// it): the materialized reference simulates the full run then replays the
// models, and the streaming path fuses simulate → observe into one pass
// with O(ticks-in-flight) simulator state. Both accumulate the same
// scoring view (tick series + per-slot presence columns) and share the
// scoring tail verbatim.

// TrafficEvaluation is the scored outcome of one model on one traffic
// scenario.
type TrafficEvaluation struct {
	Scenario Scenario
	Model    string
	// AE is the Eq 5 absolute error with per-tick objective shares over the
	// instances present at each tick.
	AE float64
	// Coverage is the fraction of busy ticks the model estimated —
	// membership churn forces recalibration (PowerAPI's learning drops),
	// which lowers it.
	Coverage float64
	// BusyTicks counts ticks with at least one instance running;
	// ScoredTicks those that entered the Eq 5 average.
	BusyTicks   int
	ScoredTicks int
}

// TrafficSummary aggregates one model over a traffic campaign.
type TrafficSummary struct {
	Model  string
	MeanAE float64
	MaxAE  float64
	// WorstScenario is the scenario achieving MaxAE.
	WorstScenario string
	// MeanCoverage is the mean per-scenario estimate coverage.
	MeanCoverage float64
	Evaluations  []TrafficEvaluation
}

// SummarizeTraffic aggregates per-scenario traffic evaluations.
func SummarizeTraffic(model string, evs []TrafficEvaluation) TrafficSummary {
	s := TrafficSummary{Model: model, Evaluations: evs}
	for _, ev := range evs {
		s.MeanAE += ev.AE
		s.MeanCoverage += ev.Coverage
		if ev.AE > s.MaxAE {
			s.MaxAE = ev.AE
			s.WorstScenario = ev.Scenario.Label()
		}
	}
	if len(evs) > 0 {
		s.MeanAE /= float64(len(evs))
		s.MeanCoverage /= float64(len(evs))
	}
	return s
}

// trafficView is the scoring view both pipelines accumulate: the tick
// series plus a dense presence slab (ticks × roster slots). It is exactly
// the O(ticks) state phase 3 needs and nothing more — the streaming path's
// only per-scenario growth besides the estimate matrices.
type trafficView struct {
	ts       tickSeries
	presence []bool
	n        int
}

func newTrafficView(n, capTicks int) *trafficView {
	return &trafficView{
		ts: tickSeries{
			at:    make([]time.Duration, 0, capTicks),
			power: make([]units.Watts, 0, capTicks),
		},
		presence: make([]bool, 0, capTicks*n),
		n:        n,
	}
}

// observe appends one tick's scoring state.
func (v *trafficView) observe(rec *machine.TickRecord) {
	v.ts.at = append(v.ts.at, rec.At)
	v.ts.power = append(v.ts.power, rec.Power)
	for slot := 0; slot < v.n; slot++ {
		v.presence = append(v.presence, rec.Procs[slot].Present())
	}
}

// observeSegment appends a constant segment's scoring state: the presence
// column repeats unchanged for every covered tick while time and power
// advance tick by tick — exactly what observe would have appended had the
// segment streamed per tick.
func (v *trafficView) observeSegment(seg *machine.Segment) {
	for i := range seg.Powers {
		v.ts.at = append(v.ts.at, seg.At(i))
		v.ts.power = append(v.ts.power, seg.Powers[i])
		for slot := 0; slot < v.n; slot++ {
			v.presence = append(v.presence, seg.Rec.Procs[slot].Present())
		}
	}
}

// row returns tick i's presence column.
func (v *trafficView) row(i int) []bool { return v.presence[i*v.n : (i+1)*v.n] }

// trafficSlotBaselines resolves each roster slot's baseline, re-keyed to
// the instance ID so per-tick truth shares key by the roster.
func trafficSlotBaselines(s Scenario, rosterIDs []string, baselines map[string]division.Baseline) ([]division.Baseline, error) {
	byID := make(map[string]AppSpec, len(s.Apps))
	for _, a := range s.Apps {
		byID[a.ID] = a
	}
	out := make([]division.Baseline, len(rosterIDs))
	for slot, id := range rosterIDs {
		a, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("protocol: roster instance %s not in scenario %q", id, s.Label())
		}
		b, ok := baselines[a.baselineID()]
		if !ok {
			return nil, fmt.Errorf("protocol: no baseline for %s (run phase 1 first)", a.baselineID())
		}
		b.ID = id
		out[slot] = b
	}
	return out, nil
}

// trafficTruths computes the per-tick objective: Equation 3 shares over the
// instances present at each tick, projected onto the roster (AbsentShare
// marks slots outside a tick's objective). truths[i] is nil for idle or
// degenerate ticks; busy counts ticks with at least one instance present.
// The truth is model-independent, so each scenario computes it once and
// every model scores against the same vectors.
func trafficTruths(view *trafficView, rosterIDs []string, slotBase []division.Baseline) (truths [][]float64, busy int) {
	truths = make([][]float64, len(view.ts.at))
	bs := make([]division.Baseline, 0, len(rosterIDs))
	for i := range view.ts.at {
		row := view.row(i)
		bs = bs[:0]
		for slot := range rosterIDs {
			if row[slot] {
				bs = append(bs, slotBase[slot])
			}
		}
		if len(bs) == 0 {
			continue
		}
		busy++
		truth := division.TruthShares(bs)
		if truth == nil {
			continue
		}
		truths[i] = truth.Vector(rosterIDs)
	}
	return truths, busy
}

// scoreTrafficModel is the scoring tail shared verbatim by the streaming
// and materialized pipelines — which is what makes their error tables
// bit-identical by construction.
func scoreTrafficModel(s Scenario, modelName string, view *trafficView, truths [][]float64, busy int, est *models.DenseEstimates) (TrafficEvaluation, error) {
	ev := TrafficEvaluation{Scenario: s, Model: modelName, BusyTicks: busy}
	if busy == 0 {
		return ev, fmt.Errorf("protocol: traffic scenario %q never ran any instance", s.Label())
	}
	var scoredEsts [][]units.Watts
	var scoredPower []units.Watts
	var scoredTruths [][]float64
	for i := range view.ts.at {
		if truths[i] == nil || !est.OK[i] {
			continue
		}
		scoredEsts = append(scoredEsts, est.Row(i))
		scoredPower = append(scoredPower, view.ts.power[i])
		scoredTruths = append(scoredTruths, truths[i])
	}
	ev.ScoredTicks = len(scoredEsts)
	ev.Coverage = float64(ev.ScoredTicks) / float64(busy)
	if ev.ScoredTicks > 0 {
		ae, err := division.AbsoluteErrorColumns(scoredEsts, scoredPower, scoredTruths)
		if err != nil {
			return ev, fmt.Errorf("protocol: traffic scenario %q: %w", s.Label(), err)
		}
		ev.AE = ae
	}
	return ev, nil
}

// trafficScenarioSetup is the per-scenario state both pipelines derive the
// same way: config seed, sorted procs, roster and model instances.
func trafficScenarioSetup(ctx Context, s Scenario, fs []models.Factory) (machine.Config, []machine.Proc, *machine.Roster, []models.Model) {
	cfg := ctx.Machine
	cfg.Seed = deriveSeed(ctx.Seed, "traffic", s.Label())
	procs := make([]machine.Proc, len(s.Apps))
	ids := make([]string, len(s.Apps))
	for i, a := range s.Apps {
		procs[i] = a.proc()
		ids[i] = a.ID
	}
	roster := machine.NewRoster(ids)
	ms := make([]models.Model, len(fs))
	for m, f := range fs {
		ms[m] = f.New(deriveSeed(ctx.Seed, "model", f.Name, s.Label()))
	}
	return cfg, procs, roster, ms
}

// EvaluateTrafficScenarioStreaming scores every factory over one traffic
// scenario on the fused streaming pipeline — the per-scenario unit the
// campaign service shards traffic jobs into. Rows are index-aligned with fs
// and bit-identical to the corresponding rows of a whole-campaign
// EvaluateTrafficStreaming call: every seed derives from the scenario label
// alone. cctx cancellation aborts the simulator mid-run (polled once per
// tick); the error then unwraps to cctx's cause.
func EvaluateTrafficScenarioStreaming(cctx context.Context, ctx Context, s Scenario, fs []models.Factory, baselines map[string]division.Baseline, window time.Duration) ([]TrafficEvaluation, error) {
	done := observeScenario()
	row, err := evaluateTrafficScenarioStreaming(cctx, ctx, s, fs, baselines, window)
	if err != nil {
		return nil, err
	}
	done()
	return row, nil
}

// evaluateTrafficScenarioStreaming scores every factory over one traffic
// scenario in a single fused simulator pass: the scenario is simulated
// exactly once, all models observe the stream tick by tick, and the run is
// never materialized or cached.
func evaluateTrafficScenarioStreaming(cctx context.Context, ctx Context, s Scenario, fs []models.Factory, baselines map[string]division.Baseline, window time.Duration) ([]TrafficEvaluation, error) {
	cfg, procs, roster, ms := trafficScenarioSetup(ctx, s, fs)
	tick := cfg.TickInterval()
	maxTicks := int(window/tick) + 1
	if maxTicks < 0 {
		maxTicks = 0
	}
	logical := cfg.Spec.Topology.LogicalCPUs()
	replay := models.NewStreamReplay(roster, ms, maxTicks)
	defer replay.Release()
	view := newTrafficView(roster.Len(), maxTicks)
	scratch := make([]models.ProcSample, roster.Len())
	segTicks := models.SegmentTicks{Tick: models.Tick{
		Interval:    tick,
		LogicalCPUs: logical,
		Roster:      roster,
		Samples:     scratch,
	}}
	_, err := machine.StreamSegments(cfg, procs, window, func(seg *machine.Segment) error {
		// One poll per covered tick keeps the cancellation granularity (and
		// the deterministic poll count the ctx tests pin) of the per-tick
		// engine.
		for range seg.Powers {
			if err := cctx.Err(); err != nil {
				return err
			}
		}
		rec := seg.Rec
		for slot := range scratch {
			pt := rec.Procs[slot]
			scratch[slot] = models.ProcSample{
				CPUTime:    pt.CPUTime,
				Counters:   pt.Counters,
				Threads:    pt.Threads,
				TrueActive: pt.ActivePower,
			}
		}
		segTicks.Tick.At = rec.At
		segTicks.Tick.MachinePower = seg.Powers[0]
		segTicks.Tick.Freq = rec.Freq
		segTicks.Powers = seg.Powers
		replay.ObserveSegment(&segTicks)
		view.observeSegment(seg)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("protocol: traffic scenario %q: %w", s.Label(), err)
	}
	return scoreTrafficScenario(s, fs, view, roster.IDs(), baselines, func(m int) *models.DenseEstimates {
		return replay.Estimates(m)
	})
}

// evaluateTrafficScenarioMaterialized is the reference pipeline: simulate
// the scenario into a full run, replay every model over its dense ticks,
// then score through the very same tail as the streaming path. It has no
// mid-run cancellation seam (Simulate owns its loop); cctx is honoured
// between scenarios by the campaign driver.
func evaluateTrafficScenarioMaterialized(_ context.Context, ctx Context, s Scenario, fs []models.Factory, baselines map[string]division.Baseline, window time.Duration) ([]TrafficEvaluation, error) {
	cfg, procs, roster, ms := trafficScenarioSetup(ctx, s, fs)
	run, err := machine.Simulate(cfg, procs, window)
	if err != nil {
		return nil, fmt.Errorf("protocol: traffic scenario %q: %w", s.Label(), err)
	}
	ticks := models.RunTicksDense(run)
	view := newTrafficView(roster.Len(), len(run.Ticks))
	for i := range run.Ticks {
		view.observe(&run.Ticks[i])
	}
	ests := make([]*models.DenseEstimates, len(ms))
	for m, model := range ms {
		ests[m] = models.ReplayDense(model, ticks)
	}
	return scoreTrafficScenario(s, fs, view, roster.IDs(), baselines, func(m int) *models.DenseEstimates {
		return ests[m]
	})
}

// scoreTrafficScenario runs the shared scoring tail for every factory.
func scoreTrafficScenario(s Scenario, fs []models.Factory, view *trafficView, rosterIDs []string, baselines map[string]division.Baseline, est func(int) *models.DenseEstimates) ([]TrafficEvaluation, error) {
	slotBase, err := trafficSlotBaselines(s, rosterIDs, baselines)
	if err != nil {
		return nil, err
	}
	truths, busy := trafficTruths(view, rosterIDs, slotBase)
	out := make([]TrafficEvaluation, len(fs))
	for m, f := range fs {
		ev, err := scoreTrafficModel(s, f.Name, view, truths, busy, est(m))
		if err != nil {
			return nil, err
		}
		out[m] = ev
	}
	return out, nil
}

// evaluateTrafficCampaign factors the campaign shape shared by both
// pipelines: phase 1 over the distinct application types, then the given
// per-scenario evaluator across the worker pool.
func evaluateTrafficCampaign(cctx context.Context, ctx Context, scenarios []Scenario, factories func(map[string]division.Baseline) []models.Factory, window time.Duration,
	eval func(context.Context, Context, Scenario, []models.Factory, map[string]division.Baseline, time.Duration) ([]TrafficEvaluation, error)) (map[string][]TrafficEvaluation, error) {
	if window <= 0 {
		return nil, fmt.Errorf("protocol: non-positive traffic window %v", window)
	}
	baselines, err := measureBaselinesParallelCtx(cctx, ctx, BaselineAppsOf(scenarios))
	if err != nil {
		return nil, err
	}
	fs := factories(baselines)
	perScenario := make([][]TrafficEvaluation, len(scenarios))
	err = forEachIndexed(len(scenarios), func(i int) error {
		if err := cctx.Err(); err != nil {
			return err
		}
		done := observeScenario()
		row, err := eval(cctx, ctx, scenarios[i], fs, baselines, window)
		if err != nil {
			return err
		}
		perScenario[i] = row
		done()
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := map[string][]TrafficEvaluation{}
	for m, f := range fs {
		evs := make([]TrafficEvaluation, len(scenarios))
		for i := range scenarios {
			evs[i] = perScenario[i][m]
		}
		out[f.Name] = evs
	}
	return out, nil
}

// EvaluateTrafficStreaming scores every factory over a traffic campaign on
// the fused streaming pipeline: phase 1 measures one baseline per distinct
// application type through the byte-capped summary cache, then each
// scenario is simulated exactly once — all models ride the same stream —
// and scored against the per-tick objective. Peak memory per worker is one
// scenario's estimate matrices and scoring view; churn runs are never
// materialized or cached. Deterministic per ctx.Seed regardless of
// scheduling: every simulation and model seed derives from the scenario
// label, so two identical campaigns yield bit-identical error tables.
func EvaluateTrafficStreaming(ctx Context, scenarios []Scenario, factories func(map[string]division.Baseline) []models.Factory, window time.Duration) (map[string][]TrafficEvaluation, error) {
	return EvaluateTrafficStreamingCtx(context.Background(), ctx, scenarios, factories, window)
}

// EvaluateTrafficStreamingCtx is EvaluateTrafficStreaming with a
// cancellation seam: a cancelled cctx (client disconnect, job deadline)
// aborts in-flight simulators at the next tick, drains the worker pool and
// returns the shared budget to full; the error unwraps to cctx's cause. An
// uncancelled cctx changes nothing — results stay bit-identical.
func EvaluateTrafficStreamingCtx(cctx context.Context, ctx Context, scenarios []Scenario, factories func(map[string]division.Baseline) []models.Factory, window time.Duration) (map[string][]TrafficEvaluation, error) {
	return evaluateTrafficCampaign(cctx, ctx, scenarios, factories, window, evaluateTrafficScenarioStreaming)
}

// EvaluateTraffic is the materialized reference pipeline for traffic
// campaigns — same results as EvaluateTrafficStreaming bit for bit (the
// golden test pins it), at the cost of materializing each churn run.
func EvaluateTraffic(ctx Context, scenarios []Scenario, factories func(map[string]division.Baseline) []models.Factory, window time.Duration) (map[string][]TrafficEvaluation, error) {
	return evaluateTrafficCampaign(context.Background(), ctx, scenarios, factories, window, evaluateTrafficScenarioMaterialized)
}

package protocol

import (
	"math"
	"testing"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/machine"
)

// TestBaselineSummaryMatchesFull pins the digest path of phase 1: the
// Baseline computed from a RunSummary must be bit-identical to the one
// MeasureBaseline extracts from the full run, on both machines (noise on,
// so the stable-window selection is non-trivial).
func TestBaselineSummaryMatchesFull(t *testing.T) {
	for _, sp := range []struct {
		spec cpumodel.Spec
		ht   bool
	}{
		{cpumodel.SmallIntel(), false},
		{cpumodel.Dahu(), true},
	} {
		ctx := goldenContext(sp.spec, sp.ht)
		for _, fn := range []string{"fibonacci", "matrixprod", "int64"} {
			app, err := StressApp(fn, 2)
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := MeasureBaseline(ctx, app)
			if err != nil {
				t.Fatal(err)
			}
			got, err := MeasureBaselineSummary(ctx, app)
			if err != nil {
				t.Fatal(err)
			}
			if got.ID != want.ID ||
				math.Float64bits(float64(got.Total)) != math.Float64bits(float64(want.Total)) ||
				math.Float64bits(float64(got.Residual)) != math.Float64bits(float64(want.Residual)) ||
				math.Float64bits(got.Cores) != math.Float64bits(want.Cores) {
				t.Errorf("%s/%s: summary baseline %+v != full %+v", sp.spec.Name, app.ID, got, want)
			}
		}
	}
}

// TestRunSummaryShape pins the digest's layout against the run it stands
// in for: matching tick counts, per-tick values stored exactly as the run
// accessors would compute them, and a sane byte estimate.
func TestRunSummaryShape(t *testing.T) {
	ctx := goldenContext(cpumodel.SmallIntel(), false)
	app, err := StressApp("rand", 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ctx.Machine
	cfg.Seed = deriveSeed(ctx.Seed, "solo", app.ID)
	_, run, err := MeasureBaseline(ctx, app)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := newRunSummary(cfg, []machine.Proc{app.proc()}, ctx.RunFor)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ticks != len(run.Ticks) || sum.Duration != run.Duration || sum.Tick != run.Tick() {
		t.Fatalf("shape: %d ticks/%v != %d/%v", sum.Ticks, sum.Duration, len(run.Ticks), run.Duration)
	}
	if len(sum.Power) != sum.Ticks || len(sum.CPUTime) != sum.Ticks*sum.Roster.Len() {
		t.Fatalf("slab lengths %d/%d off for %d ticks", len(sum.Power), len(sum.CPUTime), sum.Ticks)
	}
	slot, _ := sum.Roster.Slot(app.ID)
	var totalCPU float64
	for i, rec := range run.Ticks {
		if math.Float64bits(sum.Power[i]) != math.Float64bits(float64(rec.Power)) ||
			math.Float64bits(sum.TruePower[i]) != math.Float64bits(float64(rec.TruePower)) ||
			math.Float64bits(sum.ResidIdle[i]) != math.Float64bits(float64(rec.Idle+rec.Residual)) {
			t.Fatalf("tick %d traces differ", i)
		}
		if sum.CPUTime[i*sum.Roster.Len()+slot] != rec.Procs[slot].CPUTime {
			t.Fatalf("tick %d CPU time differs", i)
		}
		totalCPU += float64(rec.Procs[slot].CPUTime)
	}
	if math.Abs(float64(sum.TotalCPU[slot])-totalCPU) > 1e-6 {
		t.Errorf("TotalCPU %v != %v", sum.TotalCPU[slot], totalCPU)
	}
	if b := sum.EstimatedBytes(); b <= 0 || b > 1<<20 {
		t.Errorf("EstimatedBytes = %d, want a small positive size", b)
	}
	if (*RunSummary)(nil).EstimatedBytes() != 0 {
		t.Error("nil summary has non-zero size")
	}
}

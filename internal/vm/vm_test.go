package vm

import (
	"testing"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/machine"
	"powerdiv/internal/workload"
)

func prodSmall() machine.Config {
	return machine.Config{
		Spec:           cpumodel.SmallIntel(),
		Hyperthreading: true,
		Turbo:          true,
	}
}

func app(t *testing.T, name string) workload.Workload {
	t.Helper()
	w, ok := workload.PhoronixByName(name)
	if !ok {
		t.Fatalf("unknown app %s", name)
	}
	return w
}

func TestVMValidate(t *testing.T) {
	good := VM{Name: "vm0", VCPUs: 6, App: app(t, "build2")}
	if err := good.Validate(); err != nil {
		t.Errorf("valid VM rejected: %v", err)
	}
	bad := []VM{
		{Name: "", VCPUs: 6, App: app(t, "build2")},
		{Name: "x", VCPUs: 0, App: app(t, "build2")},
		{Name: "x", VCPUs: 6},
	}
	for i, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("bad VM %d accepted", i)
		}
	}
}

func TestHostCapacity(t *testing.T) {
	cfg := prodSmall() // 12 logical CPUs
	two := []VM{
		{Name: "vm0", VCPUs: 6, App: app(t, "build2")},
		{Name: "vm1", VCPUs: 6, App: app(t, "dacapo")},
	}
	if _, err := Host(cfg, two); err != nil {
		t.Errorf("two 6-vCPU VMs rejected on 12-thread host: %v", err)
	}
	three := append(two, VM{Name: "vm2", VCPUs: 6, App: app(t, "cloverleaf")})
	if _, err := Host(cfg, three); err == nil {
		t.Error("18 vCPUs accepted on 12-thread host")
	}
	dup := []VM{
		{Name: "vm0", VCPUs: 2, App: app(t, "build2")},
		{Name: "vm0", VCPUs: 2, App: app(t, "dacapo")},
	}
	if _, err := Host(cfg, dup); err == nil {
		t.Error("duplicate VM names accepted")
	}
	// Without hyperthreading capacity is physical cores only.
	lab := machine.Config{Spec: cpumodel.SmallIntel()}
	if _, err := Host(lab, two); err == nil {
		t.Error("12 vCPUs accepted on 6-core lab host")
	}
}

func TestProcConversion(t *testing.T) {
	v := VM{Name: "vm0", VCPUs: 6, App: app(t, "dacapo"), Start: 10 * time.Second}
	p := v.Proc()
	if p.ID != "vm0" || p.Threads != 6 || p.Start != 10*time.Second {
		t.Errorf("Proc = %+v", p)
	}
}

func TestSimulateColocation(t *testing.T) {
	cfg := prodSmall()
	run, err := SimulateColocation(cfg, []VM{
		{Name: "vm-build2", VCPUs: 6, App: app(t, "build2")},
		{Name: "vm-dacapo", VCPUs: 6, App: app(t, "dacapo")},
	}, 600*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ids := run.ProcIDs()
	if len(ids) != 2 {
		t.Fatalf("ProcIDs = %v", ids)
	}
	// The run ends when the longer app's script completes (build2: 384 s).
	if run.Duration < 380*time.Second || run.Duration > 390*time.Second {
		t.Errorf("colocation duration = %v, want ≈384s", run.Duration)
	}
}

// Package vm models the virtual machine layer of the paper's Section V
// experiments: applications run inside VMs with a fixed number of vCPUs
// (6-vCPU VMs on SMALL INTEL, "at most two VMs active at a time" so the
// host is never overloaded).
//
// For CPU power purposes a VM is a scheduling envelope: the guest's threads
// cannot exceed its vCPU count, and the host sees the VM as one process
// whose CPU time is the sum of its vCPUs' — which is exactly the
// granularity at which power division models attribute consumption to VMs.
package vm

import (
	"fmt"
	"time"

	"powerdiv/internal/machine"
	"powerdiv/internal/workload"
)

// VM is one virtual machine hosting a single application workload.
type VM struct {
	// Name identifies the VM (and is the ID power models attribute to).
	Name string
	// VCPUs is the number of virtual CPUs exposed to the guest.
	VCPUs int
	// App is the application running inside the guest.
	App workload.Workload
	// Start is when the VM's workload begins.
	Start time.Duration
	// Stop optionally ends the VM early.
	Stop time.Duration
}

// Validate checks the VM description.
func (v VM) Validate() error {
	if v.Name == "" {
		return fmt.Errorf("vm: empty name")
	}
	if v.VCPUs <= 0 {
		return fmt.Errorf("vm %s: %d vCPUs", v.Name, v.VCPUs)
	}
	if err := v.App.Validate(); err != nil {
		return fmt.Errorf("vm %s: %w", v.Name, err)
	}
	return nil
}

// Proc converts the VM into a host-level process: the guest's threads are
// capped at the vCPU count.
func (v VM) Proc() machine.Proc {
	return machine.Proc{
		ID:       v.Name,
		Workload: v.App,
		Threads:  v.VCPUs,
		Start:    v.Start,
		Stop:     v.Stop,
	}
}

// Host places VMs on a machine configuration, validating that the combined
// vCPUs fit the host's schedulable CPUs (the paper's no-overload condition).
func Host(cfg machine.Config, vms []VM) ([]machine.Proc, error) {
	capacity := cfg.Spec.Topology.PhysicalCores()
	if cfg.Hyperthreading {
		capacity = cfg.Spec.Topology.LogicalCPUs()
	}
	total := 0
	seen := map[string]bool{}
	procs := make([]machine.Proc, 0, len(vms))
	for _, v := range vms {
		if err := v.Validate(); err != nil {
			return nil, err
		}
		if seen[v.Name] {
			return nil, fmt.Errorf("vm: duplicate name %q", v.Name)
		}
		seen[v.Name] = true
		total += v.VCPUs
		procs = append(procs, v.Proc())
	}
	if total > capacity {
		return nil, fmt.Errorf("vm: %d vCPUs exceed host capacity %d", total, capacity)
	}
	return procs, nil
}

// SimulateColocation runs the VMs together on the host for at most maxDur.
func SimulateColocation(cfg machine.Config, vms []VM, maxDur time.Duration) (*machine.Run, error) {
	procs, err := Host(cfg, vms)
	if err != nil {
		return nil, err
	}
	return machine.Simulate(cfg, procs, maxDur)
}

package vm

import (
	"math"
	"testing"
	"time"

	"powerdiv/internal/machine"
	"powerdiv/internal/models"
	"powerdiv/internal/units"
	"powerdiv/internal/workload"
)

func stressProc(t *testing.T, id, fn string, threads int) machine.Proc {
	t.Helper()
	w, ok := workload.StressByName(fn)
	if !ok {
		t.Fatalf("unknown stress %s", fn)
	}
	return machine.Proc{ID: id, Workload: w, Threads: threads}
}

func twoVMs(t *testing.T) []MultiVM {
	return []MultiVM{
		{Name: "vm0", VCPUs: 6, Guests: []machine.Proc{
			stressProc(t, "fib", "fibonacci", 2),
			stressProc(t, "mat", "matrixprod", 2),
		}},
		{Name: "vm1", VCPUs: 6, Guests: []machine.Proc{
			stressProc(t, "jmp", "jmp", 2),
			stressProc(t, "rand", "rand", 2),
		}},
	}
}

func TestMultiVMValidate(t *testing.T) {
	good := twoVMs(t)[0]
	if err := good.Validate(); err != nil {
		t.Errorf("valid MultiVM rejected: %v", err)
	}
	bad := []MultiVM{
		{Name: "", VCPUs: 4, Guests: good.Guests},
		{Name: "a/b", VCPUs: 4, Guests: good.Guests},
		{Name: "x", VCPUs: 0, Guests: good.Guests},
		{Name: "x", VCPUs: 4},
		{Name: "x", VCPUs: 1, Guests: good.Guests}, // guests exceed vCPUs
		{Name: "x", VCPUs: 6, Guests: []machine.Proc{
			stressProc(t, "a/b", "jmp", 1),
		}},
		{Name: "x", VCPUs: 6, Guests: []machine.Proc{
			stressProc(t, "a", "jmp", 1),
			stressProc(t, "a", "rand", 1),
		}},
	}
	for i, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("bad MultiVM %d accepted", i)
		}
	}
}

func TestGuestIDRoundTrip(t *testing.T) {
	id := GuestID("vm0", "fib")
	if id != "vm0/fib" {
		t.Errorf("GuestID = %q", id)
	}
	vmName, guest, ok := SplitGuestID(id)
	if !ok || vmName != "vm0" || guest != "fib" {
		t.Errorf("SplitGuestID = %q/%q/%v", vmName, guest, ok)
	}
	if _, _, ok := SplitGuestID("plain"); ok {
		t.Error("non-guest ID split")
	}
}

func TestHostMultiCapacity(t *testing.T) {
	cfg := prodSmall() // 12 logical CPUs
	procs, err := HostMulti(cfg, twoVMs(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 4 {
		t.Fatalf("%d host procs, want 4", len(procs))
	}
	for _, p := range procs {
		if _, _, ok := SplitGuestID(p.ID); !ok {
			t.Errorf("host proc ID %q not namespaced", p.ID)
		}
	}
	three := append(twoVMs(t), MultiVM{Name: "vm2", VCPUs: 6, Guests: []machine.Proc{stressProc(t, "x", "int64", 1)}})
	if _, err := HostMulti(cfg, three); err == nil {
		t.Error("18 vCPUs accepted on 12-thread host")
	}
	dup := twoVMs(t)
	dup[1].Name = dup[0].Name
	if _, err := HostMulti(cfg, dup); err == nil {
		t.Error("duplicate VM names accepted")
	}
}

func simulateNested(t *testing.T) *machine.Run {
	t.Helper()
	cfg := prodSmall()
	procs, err := HostMulti(cfg, twoVMs(t))
	if err != nil {
		t.Fatal(err)
	}
	run, err := machine.Simulate(cfg, procs, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestNestedDivisionConservation(t *testing.T) {
	run := simulateNested(t)
	ticks, err := NestedDivision(run, models.NewScaphandre(), models.NewScaphandre(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ticks) != len(run.Ticks) {
		t.Fatalf("%d nested ticks for %d run ticks", len(ticks), len(run.Ticks))
	}
	for i, nt := range ticks {
		if nt.PerVM == nil {
			continue
		}
		// Level 1 conserves machine power.
		var vmSum units.Watts
		for _, w := range nt.PerVM {
			vmSum += w
		}
		if math.Abs(float64(vmSum-run.Ticks[i].Power)) > 1e-6 {
			t.Fatalf("tick %d: VM sum %v != machine %v", i, vmSum, run.Ticks[i].Power)
		}
		// Level 2 conserves each VM's attribution.
		perVMGuestSum := map[string]units.Watts{}
		for id, w := range nt.PerGuest {
			vmName, _, _ := SplitGuestID(id)
			perVMGuestSum[vmName] += w
		}
		for vmName, sum := range perVMGuestSum {
			if math.Abs(float64(sum-nt.PerVM[vmName])) > 1e-6 {
				t.Fatalf("tick %d: %s guests sum %v != VM share %v", i, vmName, sum, nt.PerVM[vmName])
			}
		}
	}
}

func TestNestedDivisionGuestRatios(t *testing.T) {
	// With equal thread counts everywhere, CPU-time division splits each
	// level 50/50 regardless of the actual costs — the same blindness the
	// paper demonstrates, now compounded across levels.
	run := simulateNested(t)
	ticks, err := NestedDivision(run, models.NewScaphandre(), models.NewScaphandre(), 1)
	if err != nil {
		t.Fatal(err)
	}
	last := ticks[len(ticks)-1]
	if last.PerGuest == nil {
		t.Fatal("no guest attribution")
	}
	fib := float64(last.PerGuest["vm0/fib"])
	mat := float64(last.PerGuest["vm0/mat"])
	if math.Abs(fib-mat) > 1e-6 {
		t.Errorf("CPU-time guest division fib %.2f != mat %.2f", fib, mat)
	}
	// Ground truth differs: matrixprod's cores draw more.
	lastIdx := len(run.Ticks) - 1
	fibPT, _ := run.ProcAt(lastIdx, "vm0/fib")
	matPT, _ := run.ProcAt(lastIdx, "vm0/mat")
	truthFib := float64(fibPT.ActivePower)
	truthMat := float64(matPT.ActivePower)
	if truthFib >= truthMat {
		t.Errorf("ground truth fib %.2f not below mat %.2f", truthFib, truthMat)
	}
}

func TestNestedDivisionOracleIsExact(t *testing.T) {
	// Oracle at both levels recovers each guest's true share of machine
	// power (residual+idle spread by active share, composition exact).
	run := simulateNested(t)
	ticks, err := NestedDivision(run, models.NewOracle(), models.NewOracle(), 1)
	if err != nil {
		t.Fatal(err)
	}
	last := ticks[len(ticks)-1]
	lastIdx := len(run.Ticks) - 1
	rec := run.Ticks[lastIdx]
	var totalActive float64
	for _, pt := range rec.Procs {
		if pt.Present() {
			totalActive += float64(pt.ActivePower)
		}
	}
	for id, got := range last.PerGuest {
		pt, _ := run.ProcAt(lastIdx, id)
		want := float64(rec.Power) * float64(pt.ActivePower) / totalActive
		if math.Abs(float64(got)-want) > 1e-6 {
			t.Errorf("%s = %v, want %.3f", id, got, want)
		}
	}
}

func TestNestedDivisionRejectsFlatIDs(t *testing.T) {
	cfg := prodSmall()
	run, err := machine.Simulate(cfg, []machine.Proc{stressProc(t, "flat", "int64", 1)}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NestedDivision(run, models.NewScaphandre(), models.NewScaphandre(), 1); err == nil {
		t.Error("flat process IDs accepted")
	}
}

func TestNestedDivisionLearningDrops(t *testing.T) {
	// A PowerAPI guest model produces no estimates during its learning
	// window: those VMs' guests are simply absent, level 1 still works.
	run := simulateNested(t)
	ticks, err := NestedDivision(run, models.NewScaphandre(), models.NewPowerAPI(models.DefaultPowerAPIConfig()), 1)
	if err != nil {
		t.Fatal(err)
	}
	early := ticks[5]
	if early.PerVM == nil {
		t.Error("host attribution missing during guest learning")
	}
	if early.PerGuest != nil {
		t.Error("guest attribution present during learning window")
	}
}

package vm

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"powerdiv/internal/machine"
	"powerdiv/internal/models"
	"powerdiv/internal/units"
)

// MultiVM hosts several guest processes inside one virtual machine — the
// paper's introduction scenario: the cloud provider divides machine power
// among VMs, and each VM's owner divides their VM's share among the
// applications inside it, without any visibility into the host ("context
// of deployment ... is invisible within the virtual machines").
type MultiVM struct {
	Name   string
	VCPUs  int
	Guests []machine.Proc
}

// Validate checks the VM and its guests, including that the guests fit the
// vCPU budget.
func (m MultiVM) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("vm: empty name")
	}
	if strings.Contains(m.Name, "/") {
		return fmt.Errorf("vm %s: name must not contain '/'", m.Name)
	}
	if m.VCPUs <= 0 {
		return fmt.Errorf("vm %s: %d vCPUs", m.Name, m.VCPUs)
	}
	if len(m.Guests) == 0 {
		return fmt.Errorf("vm %s: no guests", m.Name)
	}
	total := 0
	seen := map[string]bool{}
	for _, g := range m.Guests {
		if g.ID == "" || strings.Contains(g.ID, "/") {
			return fmt.Errorf("vm %s: invalid guest ID %q", m.Name, g.ID)
		}
		if seen[g.ID] {
			return fmt.Errorf("vm %s: duplicate guest %q", m.Name, g.ID)
		}
		seen[g.ID] = true
		total += g.Threads
	}
	if total > m.VCPUs {
		return fmt.Errorf("vm %s: guests need %d threads, VM has %d vCPUs", m.Name, total, m.VCPUs)
	}
	return nil
}

// GuestID returns the host-level process ID of a guest.
func GuestID(vmName, guest string) string { return vmName + "/" + guest }

// SplitGuestID splits a host-level guest ID back into (vm, guest).
func SplitGuestID(id string) (vmName, guest string, ok bool) {
	i := strings.IndexByte(id, '/')
	if i < 0 {
		return "", "", false
	}
	return id[:i], id[i+1:], true
}

// HostMulti validates capacity and flattens the VMs' guests into
// host-level processes with "vm/guest" IDs.
func HostMulti(cfg machine.Config, vms []MultiVM) ([]machine.Proc, error) {
	capacity := cfg.Spec.Topology.PhysicalCores()
	if cfg.Hyperthreading {
		capacity = cfg.Spec.Topology.LogicalCPUs()
	}
	total := 0
	seen := map[string]bool{}
	var procs []machine.Proc
	for _, v := range vms {
		if err := v.Validate(); err != nil {
			return nil, err
		}
		if seen[v.Name] {
			return nil, fmt.Errorf("vm: duplicate name %q", v.Name)
		}
		seen[v.Name] = true
		total += v.VCPUs
		for _, g := range v.Guests {
			hg := g
			hg.ID = GuestID(v.Name, g.ID)
			procs = append(procs, hg)
		}
	}
	if total > capacity {
		return nil, fmt.Errorf("vm: %d vCPUs exceed host capacity %d", total, capacity)
	}
	return procs, nil
}

// NestedTick is the composed attribution for one tick.
type NestedTick struct {
	At time.Duration
	// PerVM is the host-level division among VMs (what the provider
	// bills); nil when the host model produced no estimate.
	PerVM map[string]units.Watts
	// PerGuest is the second-level division, keyed by "vm/guest"; a VM's
	// guests are absent while its guest model produces no estimate.
	PerGuest map[string]units.Watts
}

// NestedDivision composes two levels of power division over a simulated
// run of MultiVM guests:
//
//   - the host model sees one aggregate process per VM (summed CPU time
//     and counters — what a hypervisor exposes) and divides the measured
//     machine power among VMs;
//   - each VM runs its own instance of the guest model, which sees only
//     that VM's guests and treats the VM's attributed power as its
//     "machine" power — exactly the visibility a tenant has.
//
// The returned slice is index-aligned with run.Ticks.
func NestedDivision(run *machine.Run, host, guest models.Factory, seed int64) ([]NestedTick, error) {
	vmNames := map[string]bool{}
	for _, id := range run.ProcIDs() {
		vmName, _, ok := SplitGuestID(id)
		if !ok {
			return nil, fmt.Errorf("vm: process %q is not a vm/guest ID", id)
		}
		vmNames[vmName] = true
	}
	hostModel := host.New(seed)
	guestModels := map[string]models.Model{}
	names := make([]string, 0, len(vmNames))
	for n := range vmNames {
		names = append(names, n)
	}
	sort.Strings(names)
	for i, n := range names {
		guestModels[n] = guest.New(seed + int64(i) + 1)
	}

	logical := run.Config.Spec.Topology.LogicalCPUs()
	out := make([]NestedTick, len(run.Ticks))
	for i, rec := range run.Ticks {
		nt := NestedTick{At: rec.At}
		full := models.TickFromRecord(rec, run.Roster, run.Tick(), logical)

		// Host view: one aggregate sample per VM.
		hostTick := models.Tick{
			At:           full.At,
			Interval:     full.Interval,
			MachinePower: full.MachinePower,
			LogicalCPUs:  full.LogicalCPUs,
			Procs:        map[string]models.ProcSample{},
		}
		perVMGuests := map[string]map[string]models.ProcSample{}
		for _, id := range sortedTickIDs(full.Procs) {
			ps := full.Procs[id]
			vmName, guestName, _ := SplitGuestID(id)
			agg := hostTick.Procs[vmName]
			agg.CPUTime += ps.CPUTime
			agg.Counters = agg.Counters.Add(ps.Counters)
			agg.TrueActive += ps.TrueActive
			hostTick.Procs[vmName] = agg
			if perVMGuests[vmName] == nil {
				perVMGuests[vmName] = map[string]models.ProcSample{}
			}
			perVMGuests[vmName][guestName] = ps
		}
		nt.PerVM = hostModel.Observe(hostTick)

		if nt.PerVM != nil {
			nt.PerGuest = map[string]units.Watts{}
			for _, vmName := range names {
				guests, running := perVMGuests[vmName]
				vmPower, attributed := nt.PerVM[vmName]
				if !running || !attributed {
					continue
				}
				guestTick := models.Tick{
					At:           full.At,
					Interval:     full.Interval,
					MachinePower: vmPower,
					LogicalCPUs:  full.LogicalCPUs,
					Procs:        guests,
				}
				est := guestModels[vmName].Observe(guestTick)
				for g, w := range est {
					nt.PerGuest[GuestID(vmName, g)] = w
				}
			}
			if len(nt.PerGuest) == 0 {
				nt.PerGuest = nil
			}
		}
		out[i] = nt
	}
	return out, nil
}

func sortedTickIDs(procs map[string]models.ProcSample) []string {
	ids := make([]string, 0, len(procs))
	for id := range procs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

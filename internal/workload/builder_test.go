package workload

import (
	"testing"
	"time"
)

func TestBuilderStressWorkload(t *testing.T) {
	w, err := NewBuilder("custom-stress").
		Description("a custom stressor").
		Cost("SMALL INTEL", 5.5).
		Cost("DAHU", 1.4).
		Mix(1.8, 2.0, 150).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != Stress {
		t.Errorf("kind = %v, want Stress", w.Kind)
	}
	if w.CostOn("SMALL INTEL") != 5.5 || w.CostOn("DAHU") != 1.4 {
		t.Errorf("costs = %v", w.Cost)
	}
	if w.Mix.IPC != 1.8 {
		t.Errorf("IPC = %v", w.Mix.IPC)
	}
	if w.Duration() != 0 {
		t.Errorf("stress duration = %v, want 0", w.Duration())
	}
}

func TestBuilderAppWithPhases(t *testing.T) {
	w, err := NewBuilder("etl-job").
		Cost("SMALL INTEL", 5.8).
		Mix(1.4, 3.0, 120).
		Phase(30*time.Second, 4, 1.0, 1.0).
		Phase(10*time.Second, 1, 0.7, 0.6).
		Repeat(6).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != App {
		t.Errorf("kind = %v, want App", w.Kind)
	}
	if got := w.Duration(); got != 4*time.Minute {
		t.Errorf("duration = %v, want 4m", got)
	}
	if len(w.Script) != 12 {
		t.Errorf("%d phases, want 12", len(w.Script))
	}
	p, done := w.PhaseAt(35*time.Second, 9)
	if done || p.Threads != 1 || p.Intensity != 0.7 {
		t.Errorf("phase at 35s = %+v done=%v", p, done)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name string
		b    *Builder
	}{
		{"empty name", NewBuilder("")},
		{"bad cost", NewBuilder("x").Cost("M", -1)},
		{"bad ipc", NewBuilder("x").Mix(0, 0, 0)},
		{"bad phase duration", NewBuilder("x").Phase(0, 1, 1, 1)},
		{"bad util", NewBuilder("x").Phase(time.Second, 1, 1, 2)},
		{"repeat without phases", NewBuilder("x").Repeat(2)},
		{"bad repeat count", NewBuilder("x").Phase(time.Second, 1, 1, 1).Repeat(0)},
	}
	for _, tc := range cases {
		if _, err := tc.b.Build(); err == nil {
			t.Errorf("%s: built successfully", tc.name)
		}
	}
	// The first error wins and later calls do not panic.
	b := NewBuilder("x").Cost("M", -1).Repeat(3).Phase(time.Second, 1, 1, 1)
	if _, err := b.Build(); err == nil {
		t.Error("chained errors lost")
	}
}

func TestBuilderWorkloadRunsInSimulator(t *testing.T) {
	// The built workload must be directly usable as a simulator app; the
	// machine package cannot be imported here (import cycle), so validate
	// the structural contract the simulator relies on.
	w, err := NewBuilder("sim-check").
		Cost("SMALL INTEL", 6).
		Mix(1.2, 1, 100).
		Phase(2*time.Second, 2, 1, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	p, done := w.PhaseAt(time.Second, 4)
	if done || p.Threads != 2 {
		t.Errorf("phase = %+v done=%v", p, done)
	}
	if _, done := w.PhaseAt(3*time.Second, 4); !done {
		t.Error("script should be done at 3s")
	}
}

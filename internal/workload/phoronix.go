package workload

import (
	"time"

	"powerdiv/internal/units"
)

// PhoronixSet returns the four Phoronix applications of Table IV, with
// phase scripts calibrated so that a solo run inside a 6-vCPU VM on
// SMALL INTEL reproduces the Table V reference values:
//
//	CLOVERLEAF    36.46 kJ over 516 s  (≈70.7 W machine average)
//	DACAPO        13.51 kJ over 364 s  (≈37.1 W)
//	BUILD2        26.75 kJ over 384 s  (≈69.7 W)
//	COMPRESS-7ZIP 23.53 kJ over 396 s  (≈59.4 W)
//
// and the Fig 10 temporal signatures: CLOVERLEAF's periodic hydro
// iterations, DACAPO's bursty runs with garbage-collection troughs,
// BUILD2's long parallel compilation with serial configure/link dips, and
// COMPRESS-7ZIP's alternation between parallel compression and
// lighter-threaded decompression.
func PhoronixSet() []Workload {
	return []Workload{cloverleaf(), dacapo(), build2(), compress7zip()}
}

// PhoronixByName returns the Phoronix workload with the given name.
func PhoronixByName(name string) (Workload, bool) {
	for _, w := range PhoronixSet() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// PhoronixNames returns the Table IV application names.
func PhoronixNames() []string {
	set := PhoronixSet()
	out := make([]string, len(set))
	for i, w := range set {
		out[i] = w.Name
	}
	return out
}

func cloverleaf() Workload {
	// Hydrodynamics: periodic iterations — a long fully parallel burst,
	// then a shorter lighter reduction/IO step. 17 iterations of 30 s plus
	// a 6 s ramp-down tail = 516 s.
	script := Repeat(17,
		Phase{Duration: 20 * time.Second, Threads: 6, Intensity: 1.0, Util: 1.0},
		Phase{Duration: 10 * time.Second, Threads: 6, Intensity: 0.82, Util: 1.0},
	)
	script = append(script, Phase{Duration: 6 * time.Second, Threads: 2, Intensity: 0.7, Util: 0.8})
	return Workload{
		Name:        "cloverleaf",
		Description: "Hydrodynamics benchmark (Table IV)",
		Kind:        App,
		Cost: map[string]units.Watts{
			MachineSmallIntel: 5.85,
			MachineDahu:       1.5,
		},
		Mix:    CounterMix{IPC: 2.1, CacheRefsPerKiloInstr: 6.0, BranchesPerKiloInstr: 60},
		Script: script,
	}
}

func dacapo() Workload {
	// Java benchmark suite: bursty medium-parallelism runs separated by
	// garbage-collection / harness troughs. 28 cycles of 13 s = 364 s.
	script := Repeat(28,
		Phase{Duration: 8 * time.Second, Threads: 2, Intensity: 1.0, Util: 0.8},
		Phase{Duration: 3 * time.Second, Threads: 1, Intensity: 0.8, Util: 0.4},
		Phase{Duration: 2 * time.Second, Threads: 3, Intensity: 0.85, Util: 0.8},
	)
	return Workload{
		Name:        "dacapo",
		Description: "Java benchmark (Table IV)",
		Kind:        App,
		Cost: map[string]units.Watts{
			MachineSmallIntel: 5.2,
			MachineDahu:       1.4,
		},
		Mix:    CounterMix{IPC: 1.3, CacheRefsPerKiloInstr: 4.0, BranchesPerKiloInstr: 200},
		Script: script,
	}
}

func build2() Workload {
	// Toolchain compilation: long fully parallel compile phases separated
	// by short serial configure/link steps. 6 cycles of 64 s = 384 s.
	script := Repeat(6,
		Phase{Duration: 54 * time.Second, Threads: 6, Intensity: 1.0, Util: 1.0},
		Phase{Duration: 10 * time.Second, Threads: 1, Intensity: 0.9, Util: 0.9},
	)
	return Workload{
		Name:        "build2",
		Description: "Compilation of the build2 toolchain (Table IV)",
		Kind:        App,
		Cost: map[string]units.Watts{
			MachineSmallIntel: 6.3,
			MachineDahu:       1.55,
		},
		Mix:    CounterMix{IPC: 1.0, CacheRefsPerKiloInstr: 5.0, BranchesPerKiloInstr: 220},
		Script: script,
	}
}

func compress7zip() Workload {
	// 7zip compression/decompression: fully parallel compression passes
	// alternating with lighter decompression. 9 cycles of 44 s = 396 s.
	script := Repeat(9,
		Phase{Duration: 24 * time.Second, Threads: 6, Intensity: 0.95, Util: 1.0},
		Phase{Duration: 20 * time.Second, Threads: 3, Intensity: 0.85, Util: 0.95},
	)
	return Workload{
		Name:        "compress-7zip",
		Description: "7zip compression and decompression (Table IV)",
		Kind:        App,
		Cost: map[string]units.Watts{
			MachineSmallIntel: 5.4,
			MachineDahu:       1.4,
		},
		Mix:    CounterMix{IPC: 1.7, CacheRefsPerKiloInstr: 3.0, BranchesPerKiloInstr: 150},
		Script: script,
	}
}

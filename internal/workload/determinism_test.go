package workload

import (
	"math"
	"testing"
	"time"

	"powerdiv/internal/units"
)

// TestCostOnFallbackDeterministic pins the unknown-machine fallback to a
// sorted-key sum: the mean over a many-entry cost map must be bit-identical
// across repeated calls (map iteration order is randomised per run, and
// float addition is order-sensitive).
func TestCostOnFallbackDeterministic(t *testing.T) {
	// Values chosen so that different addition orders genuinely produce
	// different low bits (verified below), making the test meaningful.
	w := Workload{
		Name: "fallback",
		Cost: map[string]units.Watts{
			"a": 0.1, "b": 0.2, "c": 0.3, "d": 1.7, "e": 7.7, "f": 0.0001,
			"g": 3.14159, "h": 2.5, "i": 42.42, "j": 0.6180339887,
		},
		Mix: CounterMix{IPC: 1},
	}
	want := w.CostOn("UNKNOWN MACHINE")
	for i := 0; i < 200; i++ {
		if got := w.CostOn("UNKNOWN MACHINE"); math.Float64bits(float64(got)) != math.Float64bits(float64(want)) {
			t.Fatalf("call %d: CostOn = %x, want %x", i, math.Float64bits(float64(got)), math.Float64bits(float64(want)))
		}
	}

	// The sum order genuinely matters for these values: the reverse-order
	// sum differs, so a map-order implementation could not pass the loop
	// above except by luck.
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	var fwd, rev float64
	for i := range names {
		fwd += float64(w.Cost[names[i]])
		rev += float64(w.Cost[names[len(names)-1-i]])
	}
	if math.Float64bits(fwd) == math.Float64bits(rev) {
		t.Fatal("test values do not discriminate addition order; pick different costs")
	}

	// Known machine and empty map keep their behaviour.
	w.Cost["KNOWN"] = 9
	if got := w.CostOn("KNOWN"); got != 9 {
		t.Errorf("known machine: CostOn = %v, want 9", got)
	}
	if got := (Workload{Name: "empty"}).CostOn("X"); got != 5 {
		t.Errorf("empty cost map: CostOn = %v, want 5", got)
	}
}

// TestPhaseAtEdges pins PhaseAt's behaviour at exact phase boundaries and
// around zero-duration phases: at t == acc the next non-empty phase is
// active, and empty phases never shadow a boundary.
func TestPhaseAtEdges(t *testing.T) {
	p1 := Phase{Duration: 2 * time.Second, Threads: 1, Intensity: 1, Util: 1}
	p2 := Phase{Duration: 3 * time.Second, Threads: 2, Intensity: 0.5, Util: 0.8}
	empty := Phase{Duration: 0, Threads: 9, Intensity: 9, Util: 1}
	neg := Phase{Duration: -time.Second, Threads: 8, Intensity: 8, Util: 1}

	cases := []struct {
		name   string
		script []Phase
		t      time.Duration
		want   Phase
		done   bool
	}{
		{"start of first", []Phase{p1, p2}, 0, p1, false},
		{"inside first", []Phase{p1, p2}, time.Second, p1, false},
		{"exact edge switches phase", []Phase{p1, p2}, 2 * time.Second, p2, false},
		{"last tick of second", []Phase{p1, p2}, 5*time.Second - time.Nanosecond, p2, false},
		{"exact end is done", []Phase{p1, p2}, 5 * time.Second, Phase{}, true},
		{"zero-duration phase skipped at edge", []Phase{p1, empty, p2}, 2 * time.Second, p2, false},
		{"zero-duration phase skipped at start", []Phase{empty, p1}, 0, p1, false},
		{"negative-duration phase skipped", []Phase{neg, p1}, 0, p1, false},
		{"all-empty script is done immediately", []Phase{empty, empty}, 0, Phase{}, true},
	}
	w := Workload{Name: "scripted"}
	for _, tc := range cases {
		w.Script = tc.script
		got, done := w.PhaseAt(tc.t, 4)
		if got != tc.want || done != tc.done {
			t.Errorf("%s: PhaseAt(%v) = (%+v, %t), want (%+v, %t)", tc.name, tc.t, got, done, tc.want, tc.done)
		}
	}

	// Scriptless workloads report the constant full-load phase.
	w.Script = nil
	got, done := w.PhaseAt(time.Hour, 4)
	if done || got.Threads != 4 || got.Intensity != 1 || got.Util != 1 {
		t.Errorf("scriptless: PhaseAt = (%+v, %t)", got, done)
	}

	// Validate keeps rejecting non-positive durations outright.
	w = Workload{Name: "bad", Mix: CounterMix{IPC: 1}, Script: []Phase{empty}}
	if err := w.Validate(); err == nil {
		t.Error("Validate accepted a zero-duration phase")
	}
	w.Script = []Phase{neg}
	if err := w.Validate(); err == nil {
		t.Error("Validate accepted a negative-duration phase")
	}
}

// TestNormalizeShareDeterminism (division-level) lives in the division
// package; this test pins the workload-level consequence: two identical
// workloads must report identical fallback costs in either construction
// order.
func TestCostOnOrderIndependent(t *testing.T) {
	mk := func(order []string) Workload {
		w := Workload{Name: "w", Cost: map[string]units.Watts{}, Mix: CounterMix{IPC: 1}}
		vals := map[string]units.Watts{"m1": 0.1, "m2": 0.2, "m3": 0.3, "m4": 1.7, "m5": 2.5}
		for _, k := range order {
			w.Cost[k] = vals[k]
		}
		return w
	}
	a := mk([]string{"m1", "m2", "m3", "m4", "m5"})
	b := mk([]string{"m5", "m4", "m3", "m2", "m1"})
	if ga, gb := a.CostOn("X"), b.CostOn("X"); math.Float64bits(float64(ga)) != math.Float64bits(float64(gb)) {
		t.Errorf("insertion order changed CostOn: %x vs %x", math.Float64bits(float64(ga)), math.Float64bits(float64(gb)))
	}
}

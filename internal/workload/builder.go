package workload

import (
	"fmt"
	"time"

	"powerdiv/internal/units"
)

// Builder constructs custom workloads — user-defined applications beyond
// the built-in Table III/IV sets, for protocol runs against in-house
// application profiles. Build validates the result.
//
//	w, err := workload.NewBuilder("etl-job").
//		Cost("SMALL INTEL", 5.8).
//		Mix(1.4, 3.0, 120).
//		Phase(30*time.Second, 4, 1.0, 1.0).
//		Phase(10*time.Second, 1, 0.7, 0.6).
//		Repeat(6).
//		Build()
type Builder struct {
	w       Workload
	pending []Phase
	err     error
}

// NewBuilder starts a workload definition. Without phases the result is a
// constant-load Stress workload; adding phases makes it an App.
func NewBuilder(name string) *Builder {
	return &Builder{w: Workload{
		Name: name,
		Kind: Stress,
		Cost: map[string]units.Watts{},
		Mix:  CounterMix{IPC: 1},
	}}
}

// Description sets the human-readable description.
func (b *Builder) Description(d string) *Builder {
	b.w.Description = d
	return b
}

// Cost sets the per-core base-frequency active power on a machine.
func (b *Builder) Cost(machine string, watts float64) *Builder {
	if watts <= 0 {
		b.fail(fmt.Errorf("cost on %s must be positive, got %g", machine, watts))
		return b
	}
	b.w.Cost[machine] = units.Watts(watts)
	return b
}

// Mix sets the counter profile: instructions per cycle, LLC references and
// branches per kilo-instruction.
func (b *Builder) Mix(ipc, cacheRefsPerKI, branchesPerKI float64) *Builder {
	b.w.Mix = CounterMix{
		IPC:                   ipc,
		CacheRefsPerKiloInstr: cacheRefsPerKI,
		BranchesPerKiloInstr:  branchesPerKI,
	}
	return b
}

// Phase appends one load phase; the workload becomes an App.
func (b *Builder) Phase(d time.Duration, threads int, intensity, util float64) *Builder {
	b.w.Kind = App
	b.pending = append(b.pending, Phase{
		Duration:  d,
		Threads:   threads,
		Intensity: intensity,
		Util:      util,
	})
	return b
}

// Repeat replicates all phases added so far n times (n ≥ 1 total copies;
// Repeat(3) turns [a b] into [a b a b a b]).
func (b *Builder) Repeat(n int) *Builder {
	if n < 1 {
		b.fail(fmt.Errorf("repeat count %d", n))
		return b
	}
	if len(b.pending) == 0 {
		b.fail(fmt.Errorf("repeat before any phase"))
		return b
	}
	b.pending = Repeat(n, b.pending...)
	return b
}

// Build validates and returns the workload.
func (b *Builder) Build() (Workload, error) {
	if b.err != nil {
		return Workload{}, b.err
	}
	w := b.w
	w.Script = b.pending
	if err := w.Validate(); err != nil {
		return Workload{}, err
	}
	return w, nil
}

// fail records the first construction error.
func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = fmt.Errorf("workload %s: %w", b.w.Name, err)
	}
}

package workload

import (
	"math"
	"testing"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/units"
)

func TestMachineNamesMatchSpecs(t *testing.T) {
	if MachineSmallIntel != cpumodel.SmallIntel().Name {
		t.Errorf("MachineSmallIntel = %q, spec name = %q", MachineSmallIntel, cpumodel.SmallIntel().Name)
	}
	if MachineDahu != cpumodel.Dahu().Name {
		t.Errorf("MachineDahu = %q, spec name = %q", MachineDahu, cpumodel.Dahu().Name)
	}
}

func TestStressSetMatchesTable3(t *testing.T) {
	set := StressSet()
	if len(set) != 12 {
		t.Fatalf("stress set has %d entries, want 12 (Table III)", len(set))
	}
	want := map[string]bool{
		"ackermann": true, "queens": true, "fibonacci": true,
		"float64": true, "int64": true, "decimal64": true, "double": true,
		"int64float": true, "int64double": true,
		"matrixprod": true, "rand": true, "jmp": true,
	}
	for _, w := range set {
		if !want[w.Name] {
			t.Errorf("unexpected stress workload %q", w.Name)
		}
		delete(want, w.Name)
		if w.Kind != Stress {
			t.Errorf("%s kind = %v, want Stress", w.Name, w.Kind)
		}
		if err := w.Validate(); err != nil {
			t.Errorf("%s invalid: %v", w.Name, err)
		}
	}
	for name := range want {
		t.Errorf("missing stress workload %q", name)
	}
}

func TestStressCostSpreadSmallIntel(t *testing.T) {
	// §IV-A: FIBONACCI least consuming; MATRIXPROD, INT64FLOAT, JMP at the
	// top; worst same-thread pair error ≈11.7 %.
	fib, _ := StressByName("fibonacci")
	mat, _ := StressByName("matrixprod")
	cf := float64(fib.CostOn(MachineSmallIntel))
	cm := float64(mat.CostOn(MachineSmallIntel))
	for _, w := range StressSet() {
		c := float64(w.CostOn(MachineSmallIntel))
		if c < cf {
			t.Errorf("%s cost %.2f below fibonacci %.2f on SMALL INTEL", w.Name, c, cf)
		}
		if c > cm {
			t.Errorf("%s cost %.2f above matrixprod %.2f on SMALL INTEL", w.Name, c, cm)
		}
	}
	worst := math.Abs(0.5 - cf/(cf+cm))
	if worst < 0.10 || worst > 0.14 {
		t.Errorf("worst pair error = %.3f, want ≈0.117", worst)
	}
}

func TestStressCostSpreadDahu(t *testing.T) {
	// §IV-A: on DAHU the worst pair is QUEENS vs FLOAT64 at ≈17.4 %.
	q, _ := StressByName("queens")
	f, _ := StressByName("float64")
	cq := float64(q.CostOn(MachineDahu))
	cfl := float64(f.CostOn(MachineDahu))
	for _, w := range StressSet() {
		c := float64(w.CostOn(MachineDahu))
		if c < cq || c > cfl {
			t.Errorf("%s cost %.2f outside [queens, float64] band on DAHU", w.Name, c)
		}
	}
	worst := math.Abs(0.5 - cq/(cq+cfl))
	if worst < 0.16 || worst > 0.19 {
		t.Errorf("worst pair error = %.3f, want ≈0.174", worst)
	}
}

func TestMeanPairwiseErrorBallpark(t *testing.T) {
	// The average ratio error of a CPU-time model over all distinct
	// same-thread pairs should land near the paper's ≈3 % on SMALL INTEL.
	set := StressSet()
	var sum float64
	var n int
	for i := range set {
		for j := i + 1; j < len(set); j++ {
			ci := float64(set[i].CostOn(MachineSmallIntel))
			cj := float64(set[j].CostOn(MachineSmallIntel))
			sum += math.Abs(0.5 - ci/(ci+cj))
			n++
		}
	}
	mean := sum / float64(n)
	if mean < 0.02 || mean > 0.05 {
		t.Errorf("mean pairwise error on SMALL INTEL = %.4f, want ≈0.03", mean)
	}
}

func TestCostOnFallback(t *testing.T) {
	w := Workload{Name: "x", Cost: map[string]units.Watts{"A": 4, "B": 6}}
	if got := w.CostOn("UNKNOWN"); got != 5 {
		t.Errorf("fallback cost = %v, want mean 5", got)
	}
	empty := Workload{Name: "y"}
	if got := empty.CostOn("UNKNOWN"); got <= 0 {
		t.Errorf("empty-cost fallback = %v, want positive", got)
	}
}

func TestPhoronixSetMatchesTable4(t *testing.T) {
	set := PhoronixSet()
	if len(set) != 4 {
		t.Fatalf("phoronix set has %d entries, want 4 (Table IV)", len(set))
	}
	wantDur := map[string]time.Duration{
		"cloverleaf":    516 * time.Second,
		"dacapo":        364 * time.Second,
		"build2":        384 * time.Second,
		"compress-7zip": 396 * time.Second,
	}
	for _, w := range set {
		want, ok := wantDur[w.Name]
		if !ok {
			t.Errorf("unexpected app %q", w.Name)
			continue
		}
		if w.Kind != App {
			t.Errorf("%s kind = %v, want App", w.Name, w.Kind)
		}
		if err := w.Validate(); err != nil {
			t.Errorf("%s invalid: %v", w.Name, err)
		}
		if got := w.Duration(); got != want {
			t.Errorf("%s scripted duration = %v, want %v (Table V)", w.Name, got, want)
		}
	}
}

func TestPhaseAtStress(t *testing.T) {
	w, _ := StressByName("fibonacci")
	p, done := w.PhaseAt(5*time.Minute, 3)
	if done {
		t.Error("stress workload reported done")
	}
	if p.Threads != 3 || p.Intensity != 1 || p.Util != 1 {
		t.Errorf("stress phase = %+v, want full load with 3 threads", p)
	}
}

func TestPhaseAtScript(t *testing.T) {
	w := Workload{
		Name: "scripted",
		Mix:  CounterMix{IPC: 1},
		Script: []Phase{
			{Duration: 10 * time.Second, Threads: 2, Intensity: 1, Util: 1},
			{Duration: 5 * time.Second, Threads: 1, Intensity: 0.5, Util: 0.5},
		},
	}
	p, done := w.PhaseAt(0, 9)
	if done || p.Threads != 2 {
		t.Errorf("t=0: phase %+v done=%v, want first phase", p, done)
	}
	p, done = w.PhaseAt(12*time.Second, 9)
	if done || p.Threads != 1 {
		t.Errorf("t=12s: phase %+v done=%v, want second phase", p, done)
	}
	_, done = w.PhaseAt(15*time.Second, 9)
	if !done {
		t.Error("t=15s: want done")
	}
}

func TestRepeat(t *testing.T) {
	p := Phase{Duration: time.Second, Threads: 1, Intensity: 1, Util: 1}
	q := Phase{Duration: 2 * time.Second, Threads: 2, Intensity: 1, Util: 1}
	r := Repeat(3, p, q)
	if len(r) != 6 {
		t.Fatalf("Repeat len = %d, want 6", len(r))
	}
	if ScriptDuration(r) != 9*time.Second {
		t.Errorf("ScriptDuration = %v, want 9s", ScriptDuration(r))
	}
}

func TestValidateCatchesBadWorkloads(t *testing.T) {
	bad := []Workload{
		{Name: "", Mix: CounterMix{IPC: 1}},
		{Name: "x", Mix: CounterMix{IPC: 0}},
		{Name: "x", Mix: CounterMix{IPC: 1}, Cost: map[string]units.Watts{"A": -1}},
		{Name: "x", Mix: CounterMix{IPC: 1}, Script: []Phase{{Duration: 0, Threads: 1, Intensity: 1, Util: 1}}},
		{Name: "x", Mix: CounterMix{IPC: 1}, Script: []Phase{{Duration: time.Second, Threads: 1, Intensity: 1, Util: 2}}},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("bad workload %d validated", i)
		}
	}
}

func TestByNameLookups(t *testing.T) {
	if _, ok := StressByName("matrixprod"); !ok {
		t.Error("matrixprod not found")
	}
	if _, ok := StressByName("nope"); ok {
		t.Error("nope found in stress set")
	}
	if _, ok := PhoronixByName("build2"); !ok {
		t.Error("build2 not found")
	}
	if _, ok := PhoronixByName("nope"); ok {
		t.Error("nope found in phoronix set")
	}
	if got := len(StressNames()); got != 12 {
		t.Errorf("StressNames len = %d, want 12", got)
	}
	if got := len(PhoronixNames()); got != 4 {
		t.Errorf("PhoronixNames len = %d, want 4", got)
	}
}

func TestKindString(t *testing.T) {
	if Stress.String() != "stress" || App.String() != "app" {
		t.Error("Kind.String mismatch")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Errorf("unknown kind string = %q", Kind(9).String())
	}
}

package workload

import "powerdiv/internal/units"

// Machine spec names the built-in calibrations are keyed by. They must
// match cpumodel.SmallIntel().Name and cpumodel.Dahu().Name (a unit test
// enforces this without creating an import cycle).
const (
	MachineSmallIntel = "SMALL INTEL"
	MachineDahu       = "DAHU"
)

// stressDef is the compact calibration record for one stress function.
type stressDef struct {
	name, desc  string
	small, dahu units.Watts // per-core cost at base frequency
	mix         CounterMix
}

// stressDefs lists the 12 stress-ng CPU functions of Table III.
//
// Costs are calibrated so that, as in the paper:
//   - on SMALL INTEL the 12 functions span ≈4.4–7.1 W/core (Fig 1's band:
//     ≈8 W at full six-core load), FIBONACCI is the least consuming and
//     MATRIXPROD / INT64FLOAT / JMP the most, making the worst same-thread
//     pair error |0.5 − 4.4/(4.4+7.1)| ≈ 11.7 % (§IV-A);
//   - on DAHU the band is ≈0.91–1.88 W/core (≈31 W over 32 cores, the
//     paper's "25 watt" band), QUEENS is the least consuming and FLOAT64
//     the most, making the worst pair error ≈17.4 % (§IV-A) — a different
//     worst pair than on SMALL INTEL because instruction costs differ
//     across microarchitectures.
//
// Counter mixes give each function a distinct IPC and branch/cache profile;
// the power costs are deliberately NOT proportional to instruction rates,
// which is precisely why counter-share models misattribute power.
var stressDefs = []stressDef{
	{"ackermann", "Ackermann function evaluation", 5.25, 1.36,
		CounterMix{IPC: 1.1, CacheRefsPerKiloInstr: 2.0, BranchesPerKiloInstr: 280}},
	{"queens", "N-queens chessboard solver", 5.00, 0.91,
		CounterMix{IPC: 1.4, CacheRefsPerKiloInstr: 1.2, BranchesPerKiloInstr: 240}},
	{"fibonacci", "Recursive Fibonacci computation", 4.40, 1.34,
		CounterMix{IPC: 0.9, CacheRefsPerKiloInstr: 0.8, BranchesPerKiloInstr: 300}},
	{"float64", "64-bit floating point operations", 6.50, 1.88,
		CounterMix{IPC: 2.3, CacheRefsPerKiloInstr: 0.5, BranchesPerKiloInstr: 40}},
	{"int64", "64-bit integer operations", 6.15, 1.45,
		CounterMix{IPC: 2.6, CacheRefsPerKiloInstr: 0.5, BranchesPerKiloInstr: 40}},
	{"decimal64", "64-bit decimal operations", 5.75, 1.40,
		CounterMix{IPC: 1.6, CacheRefsPerKiloInstr: 0.7, BranchesPerKiloInstr: 80}},
	{"double", "Double-precision operations", 5.95, 1.42,
		CounterMix{IPC: 2.2, CacheRefsPerKiloInstr: 0.5, BranchesPerKiloInstr: 45}},
	{"int64float", "int64 → float conversions", 6.90, 1.52,
		CounterMix{IPC: 2.0, CacheRefsPerKiloInstr: 0.6, BranchesPerKiloInstr: 50}},
	{"int64double", "int64 → double conversions", 6.70, 1.48,
		CounterMix{IPC: 2.0, CacheRefsPerKiloInstr: 0.6, BranchesPerKiloInstr: 50}},
	{"matrixprod", "Matrix product computation", 7.10, 1.58,
		CounterMix{IPC: 2.8, CacheRefsPerKiloInstr: 8.0, BranchesPerKiloInstr: 30}},
	{"rand", "Pseudo-random number generation", 5.55, 1.38,
		CounterMix{IPC: 1.8, CacheRefsPerKiloInstr: 1.0, BranchesPerKiloInstr: 120}},
	{"jmp", "Conditional jump stressing", 7.00, 1.55,
		CounterMix{IPC: 1.2, CacheRefsPerKiloInstr: 0.4, BranchesPerKiloInstr: 450}},
}

// StressSet returns the 12 stress workloads of Table III.
func StressSet() []Workload {
	out := make([]Workload, len(stressDefs))
	for i, d := range stressDefs {
		out[i] = Workload{
			Name:        d.name,
			Description: d.desc,
			Kind:        Stress,
			Cost: map[string]units.Watts{
				MachineSmallIntel: d.small,
				MachineDahu:       d.dahu,
			},
			Mix: d.mix,
		}
	}
	return out
}

// StressByName returns the stress workload with the given name. Only the
// matched definition is materialised (callers on the campaign hot path look
// workloads up per process per run); the Cost map is still fresh per call,
// so callers may mutate the returned Workload freely.
func StressByName(name string) (Workload, bool) {
	for _, d := range stressDefs {
		if d.name == name {
			return Workload{
				Name:        d.name,
				Description: d.desc,
				Kind:        Stress,
				Cost: map[string]units.Watts{
					MachineSmallIntel: d.small,
					MachineDahu:       d.dahu,
				},
				Mix: d.mix,
			}, true
		}
	}
	return Workload{}, false
}

// StressNames returns the names of the 12 stress functions in table order.
func StressNames() []string {
	out := make([]string, len(stressDefs))
	for i, d := range stressDefs {
		out[i] = d.name
	}
	return out
}

// Package workload defines the workload descriptors consumed by the machine
// simulator: what a process costs per fully busy core, what performance
// counter mix it generates, and — for the phase-structured applications of
// Section V — how its load evolves over time.
//
// Two sets are built in, mirroring the paper's selections:
//
//   - StressSet: the 12 stress-ng CPU functions of Table III, constant
//     full-load workloads with stable, workload-specific power costs spread
//     across each machine's power band (the spread is what produces Fig 1's
//     min/max envelope and the ratio errors of §IV-A);
//   - PhoronixSet: the 4 Phoronix applications of Table IV, with scripted
//     phases reproducing the temporal power signatures of Fig 10 and the
//     reference energies of Table V.
//
// Power costs are calibrated per machine (instruction costs differ across
// microarchitectures, which is why the paper's QUEENS/FLOAT64 worst pair on
// DAHU differs from the FIBONACCI/MATRIXPROD worst pair on SMALL INTEL).
package workload

import (
	"fmt"
	"sort"
	"time"

	"powerdiv/internal/units"
)

// Kind classifies a workload.
type Kind int

const (
	// Stress is a constant-load synthetic stressor (Table III).
	Stress Kind = iota
	// App is a phase-structured application (Table IV).
	App
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Stress:
		return "stress"
	case App:
		return "app"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// CounterMix describes the performance-counter profile of a workload, used
// by the simulated perf subsystem to synthesise per-process counters.
type CounterMix struct {
	// IPC is the workload's instructions retired per cycle.
	IPC float64
	// CacheRefsPerKiloInstr is LLC references per 1000 instructions.
	CacheRefsPerKiloInstr float64
	// BranchesPerKiloInstr is branch instructions per 1000 instructions.
	BranchesPerKiloInstr float64
}

// Phase is one step of an application's load script.
type Phase struct {
	// Duration is how long the phase lasts.
	Duration time.Duration
	// Threads is the number of busy threads during the phase.
	Threads int
	// Intensity scales the workload's per-core cost during the phase,
	// modelling compute-intensity variation (1.0 = nominal).
	Intensity float64
	// Util is the per-thread duty factor during the phase, in (0, 1].
	Util float64
}

// Repeat returns the phase list repeated n times, for periodic applications
// such as CLOVERLEAF's hydro iterations.
func Repeat(n int, phases ...Phase) []Phase {
	out := make([]Phase, 0, n*len(phases))
	for i := 0; i < n; i++ {
		out = append(out, phases...)
	}
	return out
}

// ScriptDuration returns the total duration of a phase script.
func ScriptDuration(phases []Phase) time.Duration {
	var d time.Duration
	for _, p := range phases {
		d += p.Duration
	}
	return d
}

// Workload describes one application that can run on the simulated machine.
type Workload struct {
	Name        string
	Description string
	Kind        Kind
	// Cost maps a machine spec name (cpumodel.Spec.Name) to the active
	// power of one fully busy core at base frequency.
	Cost map[string]units.Watts
	// Mix is the workload's counter profile.
	Mix CounterMix
	// Script is the phase script for App workloads; nil for Stress
	// workloads, which run all threads at full load until stopped.
	Script []Phase
}

// CostOn returns the per-core base-frequency cost on the named machine.
// Unknown machines fall back to the mean of the calibrated costs, so that
// user-defined machine specs still get plausible behaviour.
func (w Workload) CostOn(machine string) units.Watts {
	if c, ok := w.Cost[machine]; ok {
		return c
	}
	if len(w.Cost) == 0 {
		return 5 // arbitrary but harmless default
	}
	// Sum in sorted-key order: float addition is order-sensitive and map
	// iteration order is randomised, so a map-order sum would differ in the
	// low bits across runs — silently breaking per-seed determinism and the
	// memo-cache fingerprints derived from simulated power.
	names := make([]string, 0, len(w.Cost))
	for n := range w.Cost {
		names = append(names, n)
	}
	sort.Strings(names)
	var sum units.Watts
	for _, n := range names {
		sum += w.Cost[n]
	}
	return sum / units.Watts(len(w.Cost))
}

// PhaseAt returns the active phase at time t since the workload started.
// For scriptless workloads or times beyond the script it returns a constant
// full-load phase with the given default thread count, and done reports
// whether a scripted workload has finished.
func (w Workload) PhaseAt(t time.Duration, defaultThreads int) (p Phase, done bool) {
	full := Phase{Threads: defaultThreads, Intensity: 1, Util: 1}
	if len(w.Script) == 0 {
		return full, false
	}
	var acc time.Duration
	for _, ph := range w.Script {
		// Zero-duration phases are rejected by Validate, but unvalidated
		// scripts must not make boundary behaviour depend on them: an empty
		// phase occupies no time and is explicitly skipped, so the phase
		// active at an exact edge t == acc is always the next non-empty one.
		if ph.Duration <= 0 {
			continue
		}
		acc += ph.Duration
		if t < acc {
			return ph, false
		}
	}
	return Phase{Threads: 0, Intensity: 0, Util: 0}, true
}

// PhaseBoundaries appends the workload's phase-change offsets to out and
// returns the extended slice — the change-point enumeration the segment
// compiler in internal/machine builds on. Each offset is a cumulative time
// since workload start at which PhaseAt's result can change: the end of
// every non-empty phase, the final offset being the script's end (past
// which a scripted workload reports done). Between consecutive offsets
// PhaseAt is constant by construction: it scans the same cumulative sums
// and skips the same zero-duration phases, so an exact edge t == offset
// always resolves to the next non-empty phase on both paths. Scriptless
// workloads contribute no boundaries — their load is constant for as long
// as they run.
func (w Workload) PhaseBoundaries(out []time.Duration) []time.Duration {
	var acc time.Duration
	for _, ph := range w.Script {
		if ph.Duration <= 0 {
			continue
		}
		acc += ph.Duration
		out = append(out, acc)
	}
	return out
}

// Duration returns the scripted duration of an App workload, or 0 for
// Stress workloads (they run until stopped).
func (w Workload) Duration() time.Duration { return ScriptDuration(w.Script) }

// Validate checks internal consistency.
func (w Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	for m, c := range w.Cost {
		if c <= 0 {
			return fmt.Errorf("workload %s: non-positive cost %v on %s", w.Name, c, m)
		}
	}
	if w.Mix.IPC <= 0 {
		return fmt.Errorf("workload %s: non-positive IPC", w.Name)
	}
	for i, p := range w.Script {
		if p.Duration <= 0 {
			return fmt.Errorf("workload %s: phase %d has non-positive duration", w.Name, i)
		}
		if p.Threads < 0 || p.Intensity < 0 || p.Util < 0 || p.Util > 1 {
			return fmt.Errorf("workload %s: phase %d out of range: %+v", w.Name, i, p)
		}
	}
	return nil
}

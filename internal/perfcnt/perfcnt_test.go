package perfcnt

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"powerdiv/internal/units"
	"powerdiv/internal/workload"
)

func TestSynthesize(t *testing.T) {
	mix := workload.CounterMix{IPC: 2, CacheRefsPerKiloInstr: 10, BranchesPerKiloInstr: 100}
	// 1 core-second at 3 GHz: 3e9 cycles, 6e9 instructions.
	c := Synthesize(mix, units.CPUTime(time.Second), 3*units.GHz)
	if c.Cycles != 3e9 {
		t.Errorf("Cycles = %v, want 3e9", c.Cycles)
	}
	if c.Instructions != 6e9 {
		t.Errorf("Instructions = %v, want 6e9", c.Instructions)
	}
	if c.CacheRefs != 6e7 {
		t.Errorf("CacheRefs = %v, want 6e7", c.CacheRefs)
	}
	if c.Branches != 6e8 {
		t.Errorf("Branches = %v, want 6e8", c.Branches)
	}
}

func TestSynthesizeZeroCPU(t *testing.T) {
	mix := workload.CounterMix{IPC: 2}
	c := Synthesize(mix, 0, 3*units.GHz)
	if c.Cycles != 0 || c.Instructions != 0 {
		t.Errorf("zero CPU time counters = %+v", c)
	}
}

func TestAddAndScale(t *testing.T) {
	a := Counters{Cycles: 1, Instructions: 2, CacheRefs: 3, Branches: 4}
	b := Counters{Cycles: 10, Instructions: 20, CacheRefs: 30, Branches: 40}
	sum := a.Add(b)
	if sum.Cycles != 11 || sum.Instructions != 22 || sum.CacheRefs != 33 || sum.Branches != 44 {
		t.Errorf("Add = %+v", sum)
	}
	sc := a.Scale(2)
	if sc.Cycles != 2 || sc.Branches != 8 {
		t.Errorf("Scale = %+v", sc)
	}
}

func TestRate(t *testing.T) {
	c := Counters{Cycles: 100, Instructions: 200}
	r := c.Rate(100 * time.Millisecond)
	if r.Cycles != 1000 || r.Instructions != 2000 {
		t.Errorf("Rate = %+v", r)
	}
	if got := c.Rate(0); got != (Counters{}) {
		t.Errorf("zero-interval Rate = %+v", got)
	}
}

func TestVectorLayout(t *testing.T) {
	c := Counters{Cycles: 1, Instructions: 2, CacheRefs: 3, Branches: 4}
	v := c.Vector()
	if v != [4]float64{1, 2, 3, 4} {
		t.Errorf("Vector = %v", v)
	}
}

// Property: counters are linear in CPU time.
func TestSynthesizeLinearInCPUTime(t *testing.T) {
	mix := workload.CounterMix{IPC: 1.5, CacheRefsPerKiloInstr: 2, BranchesPerKiloInstr: 50}
	f := func(ms uint16) bool {
		cpu := units.CPUTime(time.Duration(ms) * time.Millisecond)
		one := Synthesize(mix, cpu, 2*units.GHz)
		two := Synthesize(mix, cpu*2, 2*units.GHz)
		return math.Abs(two.Cycles-2*one.Cycles) < 1e-6*(1+one.Cycles) &&
			math.Abs(two.Instructions-2*one.Instructions) < 1e-6*(1+one.Instructions)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Add is commutative and Scale distributes over Add.
func TestCounterAlgebra(t *testing.T) {
	f := func(a1, a2, b1, b2, k float64) bool {
		if math.IsNaN(k) || math.IsInf(k, 0) {
			return true
		}
		k = math.Mod(k, 1e3)
		clean := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e9)
		}
		a := Counters{Cycles: clean(a1), Instructions: clean(a2)}
		b := Counters{Cycles: clean(b1), Instructions: clean(b2)}
		if a.Add(b) != b.Add(a) {
			return false
		}
		lhs := a.Add(b).Scale(k)
		rhs := a.Scale(k).Add(b.Scale(k))
		return math.Abs(lhs.Cycles-rhs.Cycles) < 1e-6*(1+math.Abs(lhs.Cycles)) &&
			math.Abs(lhs.Instructions-rhs.Instructions) < 1e-6*(1+math.Abs(lhs.Instructions))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package stressng

import (
	"context"
	"testing"
	"time"

	"powerdiv/internal/workload"
)

func TestKernelsMatchTable3Workloads(t *testing.T) {
	names := map[string]bool{}
	for _, k := range Kernels() {
		names[k.Name] = true
	}
	for _, want := range workload.StressNames() {
		if !names[want] {
			t.Errorf("no kernel for workload %q", want)
		}
	}
	if len(Kernels()) != 12 {
		t.Errorf("%d kernels, want 12", len(Kernels()))
	}
}

func TestKernelsDeterministic(t *testing.T) {
	for _, k := range Kernels() {
		a := k.Batch()
		b := k.Batch()
		if a != b {
			t.Errorf("%s: non-deterministic batch (%d vs %d)", k.Name, a, b)
		}
	}
}

func TestKnownResults(t *testing.T) {
	// Kernels whose results are externally known.
	tests := []struct {
		name string
		want uint64
	}{
		{"queens", 92},       // 8-queens has 92 solutions
		{"ackermann", 23},    // A(2, n) = 2n + 3
		{"fibonacci", 46368}, // fib(24)
	}
	for _, tt := range tests {
		k, ok := ByName(tt.name)
		if !ok {
			t.Fatalf("kernel %s missing", tt.name)
		}
		if got := k.Batch(); got != tt.want {
			t.Errorf("%s = %d, want %d", tt.name, got, tt.want)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("matrixprod"); !ok {
		t.Error("matrixprod missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("nonexistent kernel found")
	}
}

func TestBurnRunsForDuration(t *testing.T) {
	k, _ := ByName("rand")
	start := time.Now()
	batches, _ := Burn(context.Background(), k, 50*time.Millisecond)
	elapsed := time.Since(start)
	if batches == 0 {
		t.Error("no batches completed")
	}
	if elapsed < 50*time.Millisecond || elapsed > 2*time.Second {
		t.Errorf("burn took %v for a 50ms budget", elapsed)
	}
}

func TestBurnHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	k, _ := ByName("jmp")
	batches, _ := Burn(ctx, k, time.Minute)
	if batches > 1 {
		t.Errorf("cancelled burn completed %d batches", batches)
	}
}

func TestKernelsProduceWork(t *testing.T) {
	for _, k := range Kernels() {
		if got := k.Batch(); got == 0 {
			t.Errorf("%s: zero checksum (dead code?)", k.Name)
		}
	}
}

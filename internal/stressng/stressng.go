// Package stressng provides real, runnable CPU-stress kernels named after
// the 12 stress-ng functions of the paper's Table III. They are used by the
// live meter (to generate actual load on a real machine, where the
// simulator's workload descriptors cannot) and by the benchmark harness.
//
// Each kernel executes one deterministic batch of work and returns a
// checksum, so the compiler cannot eliminate the computation and tests can
// assert the kernels actually compute what their names claim.
package stressng

import (
	"context"
	"math"
	"time"
)

// Kernel is one stress function.
type Kernel struct {
	// Name matches the workload.StressSet entry.
	Name string
	// Description says what the batch computes.
	Description string
	// Batch runs one unit of work and returns its checksum.
	Batch func() uint64
}

// Kernels returns the 12 kernels in Table III order.
func Kernels() []Kernel {
	return []Kernel{
		{"ackermann", "Ackermann function A(2, 10)", batchAckermann},
		{"queens", "count 8-queens solutions", batchQueens},
		{"fibonacci", "recursive Fibonacci(24)", batchFibonacci},
		{"float64", "float64 multiply-add chain", batchFloat64},
		{"int64", "int64 arithmetic chain", batchInt64},
		{"decimal64", "scaled-integer decimal arithmetic", batchDecimal64},
		{"double", "float64 transcendental chain", batchDouble},
		{"int64float", "int64 → float64 conversion chain", batchInt64Float},
		{"int64double", "int64 → float64 round-trip chain", batchInt64Double},
		{"matrixprod", "32×32 float64 matrix product", batchMatrixProd},
		{"rand", "xorshift64 pseudo-random generation", batchRand},
		{"jmp", "data-dependent conditional jumps", batchJmp},
	}
}

// ByName returns the kernel with the given name.
func ByName(name string) (Kernel, bool) {
	for _, k := range Kernels() {
		if k.Name == name {
			return k, true
		}
	}
	return Kernel{}, false
}

// Burn runs the kernel repeatedly until d elapses or ctx is cancelled,
// returning the number of batches completed and the accumulated checksum.
func Burn(ctx context.Context, k Kernel, d time.Duration) (batches int, sum uint64) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		select {
		case <-ctx.Done():
			return batches, sum
		default:
		}
		sum += k.Batch()
		batches++
	}
	return batches, sum
}

// ackermann computes the Ackermann function recursively.
func ackermann(m, n uint64) uint64 {
	switch {
	case m == 0:
		return n + 1
	case n == 0:
		return ackermann(m-1, 1)
	default:
		return ackermann(m-1, ackermann(m, n-1))
	}
}

func batchAckermann() uint64 { return ackermann(2, 10) }

// batchQueens counts the solutions of the 8-queens problem with bitboards.
func batchQueens() uint64 {
	const n = 8
	var count uint64
	var solve func(row, cols, diag1, diag2 uint32)
	solve = func(row, cols, diag1, diag2 uint32) {
		if row == n {
			count++
			return
		}
		free := ^(cols | diag1 | diag2) & ((1 << n) - 1)
		for free != 0 {
			bit := free & (-free)
			free ^= bit
			solve(row+1, cols|bit, (diag1|bit)<<1, (diag2|bit)>>1)
		}
	}
	solve(0, 0, 0, 0)
	return count
}

// fib is deliberately the naive exponential recursion, like stress-ng's.
func fib(n int) uint64 {
	if n < 2 {
		return uint64(n)
	}
	return fib(n-1) + fib(n-2)
}

func batchFibonacci() uint64 { return fib(24) }

func batchFloat64() uint64 {
	x := 1.000001
	acc := 0.0
	for i := 0; i < 20000; i++ {
		acc += x * 1.5
		x = x*1.0000001 + 0.0000001
		acc -= x / 3.0
	}
	return math.Float64bits(acc)
}

func batchInt64() uint64 {
	var acc int64 = 0x2545F4914F6CDD1D
	for i := int64(1); i <= 20000; i++ {
		acc += i * 3
		acc ^= acc >> 7
		acc -= i / 3
		acc *= 0x9E3779B9
	}
	return uint64(acc)
}

// batchDecimal64 emulates 64-bit decimal arithmetic with scaled integers
// (4 fractional digits), the way software decimal implementations do.
func batchDecimal64() uint64 {
	const scale = 10000
	var a, b int64 = 1_2345, 6_7890 // 1.2345, 6.7890
	var acc int64
	for i := 0; i < 10000; i++ {
		sum := a + b
		prod := (a * b) / scale
		quot := (a * scale) / b
		acc += sum + prod + quot
		a = (a + 7) % (100 * scale)
		b = (b + 13) % (100 * scale)
		if b == 0 {
			b = scale
		}
	}
	return uint64(acc)
}

func batchDouble() uint64 {
	acc := 0.0
	x := 0.5
	for i := 0; i < 4000; i++ {
		acc += math.Sqrt(x) + math.Log(x+1) + math.Sin(x)
		x += 0.001
	}
	return math.Float64bits(acc)
}

func batchInt64Float() uint64 {
	var acc float64
	for i := int64(1); i <= 20000; i++ {
		acc += float64(i*7) / float64(i+3)
	}
	return math.Float64bits(acc)
}

func batchInt64Double() uint64 {
	var acc int64
	for i := int64(1); i <= 20000; i++ {
		d := float64(i) * 1.5
		acc += int64(d) ^ i
	}
	return uint64(acc)
}

func batchMatrixProd() uint64 {
	const n = 32
	var a, b, c [n][n]float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i][j] = float64(i*n+j) * 0.5
			b[i][j] = float64((i+j)%7) * 1.25
		}
	}
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a[i][k]
			for j := 0; j < n; j++ {
				c[i][j] += aik * b[k][j]
			}
		}
	}
	return math.Float64bits(c[n-1][n-1] + c[0][0])
}

func batchRand() uint64 {
	x := uint64(0x9E3779B97F4A7C15)
	var acc uint64
	for i := 0; i < 20000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		acc += x
	}
	return acc
}

// batchJmp stresses the branch units with data-dependent jumps.
func batchJmp() uint64 {
	x := uint64(88172645463325252)
	var taken uint64
	for i := 0; i < 20000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		switch {
		case x%7 == 0:
			taken += 3
		case x%5 == 0:
			taken += 2
		case x%3 == 0:
			taken++
		case x%2 == 0:
			taken += 5
		default:
			taken += 7
		}
	}
	return taken
}

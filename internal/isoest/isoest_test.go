package isoest

import (
	"math"
	"testing"
	"time"

	"powerdiv/internal/models"
	"powerdiv/internal/perfcnt"
	"powerdiv/internal/units"
)

// linearSamples builds training data from an exactly linear power law so
// the round trip is checkable: power = 2e-9·cycles + 1e-9·instructions.
func linearSamples() []Sample {
	mixes := []struct {
		name        string
		cycles, ipc float64
	}{
		{"a", 3.6e9, 1.0},
		{"b", 3.6e9, 2.0},
		{"c", 3.6e9, 2.8},
		{"d", 3.6e9, 0.9},
		{"e", 3.6e9, 1.5},
	}
	var out []Sample
	for _, m := range mixes {
		instr := m.cycles * m.ipc
		out = append(out, Sample{
			Workload:      m.name,
			Rates:         perfcnt.Counters{Cycles: m.cycles, Instructions: instr, CacheRefs: instr / 500, Branches: instr / 10},
			ActivePerCore: units.Watts(2e-9*m.cycles + 1e-9*instr),
		})
	}
	return out
}

func TestTrainAndEstimateLinearLaw(t *testing.T) {
	samples := linearSamples()
	est, err := Train(samples)
	if err != nil {
		t.Fatal(err)
	}
	if got := est.Evaluate(samples); got > 0.01 {
		t.Errorf("in-sample error on a linear law = %.4f, want ≈0", got)
	}
	// An unseen mix obeying the same law predicts accurately.
	unseen := perfcnt.Counters{Cycles: 3.6e9, Instructions: 3.6e9 * 1.75, CacheRefs: 3.6e9 * 1.75 / 500, Branches: 3.6e9 * 1.75 / 10}
	want := 2e-9*3.6e9 + 1e-9*3.6e9*1.75
	if got := float64(est.Estimate(unseen)); math.Abs(got-want) > 0.05*want {
		t.Errorf("unseen prediction = %.3f, want %.3f", got, want)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil); err == nil {
		t.Error("empty training accepted")
	}
	if _, err := Train(linearSamples()[:1]); err == nil {
		t.Error("single sample accepted")
	}
	bad := linearSamples()
	bad[0].ActivePerCore = 0
	if _, err := Train(bad); err == nil {
		t.Error("non-positive power accepted")
	}
}

func TestEstimateFloor(t *testing.T) {
	est, err := Train(linearSamples())
	if err != nil {
		t.Fatal(err)
	}
	// Zero rates predict the floor, never zero or negative.
	if got := est.Estimate(perfcnt.Counters{}); got < 0.1 {
		t.Errorf("floor = %v, want ≥0.1", got)
	}
}

func TestLeaveOneOut(t *testing.T) {
	samples := linearSamples()
	loo, err := LeaveOneOut(samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(loo) != len(samples) {
		t.Fatalf("%d LOO entries, want %d", len(loo), len(samples))
	}
	// An exactly linear law is learnable from any 4 of the 5 samples.
	for name, e := range loo {
		if e > 0.05 {
			t.Errorf("LOO error for %s = %.4f, want ≈0", name, e)
		}
	}
}

func TestProfileF2Division(t *testing.T) {
	est, err := Train(linearSamples())
	if err != nil {
		t.Fatal(err)
	}
	m := NewProfileF2(est).New(0)
	if m.Name() != "profile-f2" {
		t.Errorf("name = %q", m.Name())
	}
	interval := 100 * time.Millisecond
	mk := func(cores float64, ipc float64) models.ProcSample {
		cpu := units.CPUTime(time.Duration(cores * float64(interval)))
		cycles := cpu.Seconds() * 3.6e9
		instr := cycles * ipc
		return models.ProcSample{
			CPUTime:  cpu,
			Counters: perfcnt.Counters{Cycles: cycles, Instructions: instr, CacheRefs: instr / 500, Branches: instr / 10},
		}
	}
	tick := models.Tick{
		At:           time.Second,
		Interval:     interval,
		MachinePower: 100,
		Procs: map[string]models.ProcSample{
			"hot":  mk(2, 2.8), // per-core 2e-9·c+1e-9·i = 7.2+10.08 = 17.28 W... at 3.6GHz
			"cold": mk(2, 0.9),
		},
	}
	est2 := m.Observe(tick)
	if est2 == nil {
		t.Fatal("no estimate")
	}
	// Expected ratio: per-core powers at IPC 2.8 vs 0.9 with equal cores.
	hot := 2e-9*3.6e9 + 1e-9*3.6e9*2.8
	cold := 2e-9*3.6e9 + 1e-9*3.6e9*0.9
	wantHot := 100 * hot / (hot + cold)
	if math.Abs(float64(est2["hot"])-wantHot) > 1 {
		t.Errorf("hot = %v, want ≈%.2f", est2["hot"], wantHot)
	}
	// Estimates sum to machine power (F2 divides everything).
	if math.Abs(float64(est2["hot"]+est2["cold"])-100) > 1e-9 {
		t.Errorf("sum = %v, want 100", est2["hot"]+est2["cold"])
	}
}

func TestProfileF2IdleProcs(t *testing.T) {
	est, err := Train(linearSamples())
	if err != nil {
		t.Fatal(err)
	}
	m := NewProfileF2(est).New(0)
	out := m.Observe(models.Tick{
		At:           time.Second,
		Interval:     100 * time.Millisecond,
		MachinePower: 50,
		Procs:        map[string]models.ProcSample{"idle": {}},
	})
	if out != nil {
		t.Errorf("idle-only tick estimate = %v, want nil", out)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	est, err := Train(linearSamples())
	if err != nil {
		t.Fatal(err)
	}
	if got := est.Evaluate(nil); got != 0 {
		t.Errorf("empty evaluate = %v", got)
	}
}

// Package isoest implements the paper's proposed future work (§VI): an
// estimator of the power an application *would* consume if executed alone
// on a given machine, built from its execution profile (the number and
// type of instructions it retires). The paper proposes exactly this as the
// way to construct a power division model of the second family (F2): use
// per-application isolated estimates to compute the ratio by which the
// actual machine consumption is allocated.
//
// The estimator is a ridge regression from per-core-second counter rates
// (cycles, instructions, cache references, branches) to isolated active
// power per core, trained on instrumented solo runs of a reference
// workload set. Its accuracy is bounded by how much of the power variance
// the instruction mix explains (R² ≈ 0.5 on the built-in calibration —
// see the leave-one-out evaluation in the experiments); even so, the F2
// model it drives beats CPU-time division, which explains none of it.
package isoest

import (
	"fmt"
	"math"

	"powerdiv/internal/models"
	"powerdiv/internal/perfcnt"
	"powerdiv/internal/units"
)

// Sample is one training observation from an instrumented solo run.
type Sample struct {
	// Workload labels the sample (for leave-one-out evaluation).
	Workload string
	// Rates are the counter rates per core-second of CPU time.
	Rates perfcnt.Counters
	// ActivePerCore is the measured isolated active power per fully busy
	// core.
	ActivePerCore units.Watts
}

// Estimator predicts isolated active power per core from counter rates.
type Estimator struct {
	weights [4]float64
	scales  [4]float64
}

// Train fits the estimator. It needs at least two samples with distinct
// rate vectors.
func Train(samples []Sample) (*Estimator, error) {
	if len(samples) < 2 {
		return nil, fmt.Errorf("isoest: need ≥2 training samples, have %d", len(samples))
	}
	rows := make([][4]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		if s.ActivePerCore <= 0 {
			return nil, fmt.Errorf("isoest: sample %q has non-positive power", s.Workload)
		}
		rows[i] = s.Rates.Vector()
		y[i] = float64(s.ActivePerCore)
	}
	w, sc := models.RidgeFit4(rows, y, 1e-6)
	allZero := true
	for _, v := range w {
		if v != 0 {
			allZero = false
		}
	}
	if allZero {
		return nil, fmt.Errorf("isoest: degenerate fit (identical training rates?)")
	}
	return &Estimator{weights: w, scales: sc}, nil
}

// Estimate predicts the isolated active power per core for the given
// counter rates, floored at a small positive value so that division
// weights stay usable.
func (e *Estimator) Estimate(rates perfcnt.Counters) units.Watts {
	v := rates.Vector()
	var p float64
	for d := range v {
		p += e.weights[d] * v[d] / e.scales[d]
	}
	if p < 0.1 {
		p = 0.1
	}
	return units.Watts(p)
}

// Evaluate scores the estimator on labelled samples and returns the mean
// absolute relative error of the per-core power predictions.
func (e *Estimator) Evaluate(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range samples {
		pred := float64(e.Estimate(s.Rates))
		sum += math.Abs(pred-float64(s.ActivePerCore)) / float64(s.ActivePerCore)
	}
	return sum / float64(len(samples))
}

// LeaveOneOut trains on all samples but the held-out workload and returns
// the held-out prediction error per workload — the honest accuracy of the
// profile-based approach on unseen applications.
func LeaveOneOut(samples []Sample) (map[string]float64, error) {
	out := map[string]float64{}
	for _, held := range samples {
		var train []Sample
		for _, s := range samples {
			if s.Workload != held.Workload {
				train = append(train, s)
			}
		}
		e, err := Train(train)
		if err != nil {
			return nil, fmt.Errorf("isoest: leave-out %s: %w", held.Workload, err)
		}
		pred := float64(e.Estimate(held.Rates))
		out[held.Workload] = math.Abs(pred-float64(held.ActivePerCore)) / float64(held.ActivePerCore)
	}
	return out, nil
}

// ProfileF2 is the deployable F2 model the paper sketches: each tick it
// divides the measured machine power among processes in proportion to
//
//	Estimate(process counter rates per core) × cores of CPU used
//
// — the predicted isolated consumption ratio. Unlike models.F2 it needs no
// per-process baselines, only the trained estimator, so it works for
// applications never seen in phase 1.
type ProfileF2 struct {
	est *Estimator
}

// NewProfileF2 returns a profile-driven F2 factory.
func NewProfileF2(est *Estimator) models.Factory {
	return models.Factory{
		Name: "profile-f2",
		New:  func(int64) models.Model { return &ProfileF2{est: est} },
	}
}

// Name returns "profile-f2".
func (m *ProfileF2) Name() string { return "profile-f2" }

// Observe divides the tick's power by predicted-isolated-consumption share.
func (m *ProfileF2) Observe(t models.Tick) map[string]units.Watts {
	weights := make(map[string]float64, len(t.Procs))
	for id, p := range t.Procs {
		cores := p.CPUTime.Seconds() / t.Interval.Seconds()
		if cores <= 0 {
			weights[id] = 0
			continue
		}
		// Per-core rates: counters normalised by CPU time consumed.
		rates := p.Counters.Scale(1 / p.CPUTime.Seconds())
		weights[id] = float64(m.est.Estimate(rates)) * cores
	}
	return models.ShareOut(t.MachinePower, weights)
}

package experiments

import (
	"strings"
	"testing"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/models"
)

func TestBehaviorCorrelationCloverleafMirrored(t *testing.T) {
	// §V-A / Fig 13: CLOVERLEAF's attributed curve against COMPRESS-7ZIP
	// is "entirely contextual": it tracks the co-runner's behaviour (with
	// troughs mistaken for peaks — anti-correlation) far more than its
	// own.
	cfg := ProdConfig(cpumodel.SmallIntel(), 1)
	res, err := BehaviorCorrelation(cfg, models.NewScaphandre(), "compress-7zip", "cloverleaf", 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Index 1 = cloverleaf.
	if !res.Mirrored(1) {
		t.Errorf("cloverleaf not mirrored: own %.3f, other %.3f", res.OwnCorr[1], res.OtherCorr[1])
	}
	if res.OtherCorr[1] > -0.8 {
		t.Errorf("cloverleaf co-runner correlation = %.3f, want strong anti-correlation", res.OtherCorr[1])
	}
	if !strings.Contains(res.Table().String(), "cloverleaf") {
		t.Error("table missing app")
	}
}

func TestBehaviorCorrelationDacapoContextual(t *testing.T) {
	// BUILD2 vs DACAPO: both attributed curves pick up a strong
	// co-runner component (the §V-A context dependence), even where the
	// own-signal still dominates.
	cfg := ProdConfig(cpumodel.SmallIntel(), 1)
	res, err := BehaviorCorrelation(cfg, models.NewScaphandre(), "build2", "dacapo", 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if abs64(res.OtherCorr[i]) < 0.2 {
			t.Errorf("app %d co-runner correlation = %.3f, want a visible contextual component", i, res.OtherCorr[i])
		}
	}
	// An oracle division is still contextual: power division is the
	// problem, not the model (the paper's "we have no reason to believe
	// that this limitation is not inherent to the power division
	// approach").
	orc, err := BehaviorCorrelation(cfg, models.NewOracle(), "build2", "dacapo", 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if abs64(orc.OtherCorr[1]) < 0.1 {
		t.Errorf("oracle dacapo co-runner correlation = %.3f, want non-zero (inherent to division)", orc.OtherCorr[1])
	}
}

func TestBehaviorCorrelationErrors(t *testing.T) {
	cfg := ProdConfig(cpumodel.SmallIntel(), 1)
	if _, err := BehaviorCorrelation(cfg, models.NewScaphandre(), "nosuch", "dacapo", 6, 1); err == nil {
		t.Error("unknown app0 accepted")
	}
	if _, err := BehaviorCorrelation(cfg, models.NewScaphandre(), "build2", "nosuch", 6, 1); err == nil {
		t.Error("unknown app1 accepted")
	}
}

// Package experiments contains one driver per table and figure of the
// paper's evaluation, built on the protocol, machine and models packages.
// Each driver returns a typed result that the report package, the CLI
// tools and the benchmark harness render; DESIGN.md maps every paper
// artefact to its driver.
package experiments

import (
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/machine"
	"powerdiv/internal/models"
	"powerdiv/internal/protocol"
)

// DefaultNoise is the sensor noise used by all experiments; stress-ng
// loads vary by under half a watt, so a quarter watt of Gaussian noise.
const DefaultNoise = 0.25

// LabConfig returns the paper's laboratory context on a machine:
// hyperthreading and turboboost disabled.
func LabConfig(spec cpumodel.Spec, seed int64) machine.Config {
	return machine.Config{Spec: spec, NoiseStddev: DefaultNoise, Seed: seed}
}

// ProdConfig returns the paper's production context: both enabled.
func ProdConfig(spec cpumodel.Spec, seed int64) machine.Config {
	return machine.Config{
		Spec:           spec,
		Hyperthreading: true,
		Turbo:          true,
		NoiseStddev:    DefaultNoise,
		Seed:           seed,
	}
}

// LabContext returns the default protocol context for the laboratory
// evaluation on a machine.
func LabContext(spec cpumodel.Spec, seed int64) protocol.Context {
	ctx := protocol.DefaultContext(LabConfig(spec, seed))
	ctx.Seed = seed
	return ctx
}

// ProdContext returns the default protocol context for the production
// evaluation.
func ProdContext(spec cpumodel.Spec, seed int64) protocol.Context {
	ctx := protocol.DefaultContext(ProdConfig(spec, seed))
	ctx.Seed = seed
	return ctx
}

// PaperModels returns the two models the paper evaluates (§IV-A:
// "PowerAPI and Scaphandre are the models we selected for evaluation").
func PaperModels() []models.Factory {
	return []models.Factory{
		models.NewScaphandre(),
		models.NewPowerAPI(models.DefaultPowerAPIConfig()),
	}
}

// stressRun simulates one stress process configuration for the given
// duration — the building block of the curve and §IV-B experiments.
func stressRun(cfg machine.Config, procs []machine.Proc, d time.Duration) (*machine.Run, error) {
	return machine.Simulate(cfg, procs, d)
}

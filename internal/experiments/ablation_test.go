package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/division"
)

func TestFamilyAblationProperties(t *testing.T) {
	props, err := FamilyAblation(cpumodel.SmallIntel(), "fibonacci", "matrixprod", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 3 {
		t.Fatalf("%d families, want 3", len(props))
	}
	byFam := map[division.Family]FamilyProperties{}
	for _, p := range props {
		byFam[p.Family] = p
	}
	// F1 and F2 divide the whole machine power; F3 leaves R unallocated.
	if math.Abs(byFam[division.F1].Coverage-1) > 0.01 {
		t.Errorf("F1 coverage = %.3f, want 1", byFam[division.F1].Coverage)
	}
	if math.Abs(byFam[division.F2].Coverage-1) > 0.01 {
		t.Errorf("F2 coverage = %.3f, want 1", byFam[division.F2].Coverage)
	}
	if byFam[division.F3].Coverage > 0.8 {
		t.Errorf("F3 coverage = %.3f, want well below 1 (R unallocated)", byFam[division.F3].Coverage)
	}
	// F2 preserves the sequential ratio across contexts better than F1
	// (its weights are the isolated totals, which are context-stable
	// because each context re-measures its own baselines... both should
	// drift little, but F2's drift must not exceed F1's meaningfully).
	if byFam[division.F2].RatioDriftPct > byFam[division.F1].RatioDriftPct+1 {
		t.Errorf("F2 drift %.2f%% above F1 drift %.2f%%", byFam[division.F2].RatioDriftPct, byFam[division.F1].RatioDriftPct)
	}
	if !strings.Contains(AblationTable(props).String(), "F1") {
		t.Error("ablation table missing F1")
	}
}

func TestStableWindowAblation(t *testing.T) {
	with, without, err := StableWindowAblation(cpumodel.SmallIntel(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Both are small; the windowed score must not be worse than the
	// unwindowed one on a noisy machine (it trims the extremes).
	if with > without+0.005 {
		t.Errorf("windowed AE %.4f worse than unwindowed %.4f", with, without)
	}
	if with <= 0 || without <= 0 {
		t.Errorf("degenerate AEs %.4f/%.4f", with, without)
	}
}

func TestLearningWindowAblation(t *testing.T) {
	windows := []time.Duration{2 * time.Second, 10 * time.Second, 20 * time.Second}
	res, err := LearningWindowAblation(cpumodel.SmallIntel(), windows, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d results", len(res))
	}
	// Longer learning windows leave fewer scored ticks.
	if res[2*time.Second][1] <= res[20*time.Second][1] {
		t.Errorf("scored ticks: 2s window %.0f not above 20s window %.0f",
			res[2*time.Second][1], res[20*time.Second][1])
	}
	// Accuracy is unaffected on stationary workloads.
	for w, v := range res {
		if v[0] < 0.005 || v[0] > 0.15 {
			t.Errorf("window %v: AE %.4f out of expected range", w, v[0])
		}
	}
}

func TestSamplePeriodAblation(t *testing.T) {
	periods := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 500 * time.Millisecond}
	res, err := SamplePeriodAblation(cpumodel.SmallIntel(), periods, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The protocol is robust to the sampling period on stationary loads:
	// all periods land in the same band.
	var lo, hi float64 = math.Inf(1), 0
	for _, ae := range res {
		lo = math.Min(lo, ae)
		hi = math.Max(hi, ae)
	}
	if hi-lo > 0.02 {
		t.Errorf("AE spread across periods = %.4f, want <0.02 (res=%v)", hi-lo, res)
	}
}

func TestHTEfficiencyAblation(t *testing.T) {
	factors := []float64{0.2, 0.45, 0.7}
	res, err := HTEfficiencyAblation(cpumodel.SmallIntel(), factors, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The §V energy drop shrinks as SMT siblings approach full cores:
	// sub-additivity is what drives the colocation savings.
	if !(res[0.2] > res[0.45] && res[0.45] > res[0.7]) {
		t.Errorf("drop not monotone in SMT efficiency: %v", res)
	}
}

func TestPowerAPIDeterminismAblation(t *testing.T) {
	ctx := LabContext(cpumodel.Dahu(), 1)
	with, without, err := PowerAPIDeterminismAblation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The pathology accounts for most of PowerAPI's DAHU error: with it
	// disabled, the model lands in the Scaphandre regime.
	if without > 0.08 {
		t.Errorf("deterministic PowerAPI mean = %.4f, want <0.08", without)
	}
	if with < 2*without {
		t.Errorf("pathology contribution too small: %.4f vs %.4f", with, without)
	}
}

package experiments

import (
	"fmt"
	"sort"
	"strings"

	"powerdiv/internal/fleet"
	"powerdiv/internal/report"
)

// FleetCampaign runs the evaluation protocol fleet-wide: cfg.Nodes
// heterogeneous machines, each with its own deterministic traffic shard,
// scored by the six intrusive model families plus the WattScope-style
// non-intrusive model on the fused streaming pipeline, reduced to
// per-model error distributions in sorted-node order. Reruns of the same
// config are bit-identical.
func FleetCampaign(cfg fleet.Config) (fleet.Result, error) {
	return fleet.Campaign(cfg)
}

// FleetTable renders the fleet campaign's aggregate error table: one row
// per model family with the fleet-wide error distribution.
func FleetTable(r fleet.Result) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("fleet campaign — %d nodes (%s), %s arrivals, %d scenarios, %d instances, %v windows",
			r.Nodes, fleetClassMix(r), r.Kind, r.Scenarios, r.Instances, r.Window),
		"model", "mean AE", "p50", "p90", "p99", "max AE", "coverage", "worst node",
	)
	for _, m := range r.Models {
		t.AddRow(m.Model,
			report.Percent(m.MeanAE), report.Percent(m.P50), report.Percent(m.P90),
			report.Percent(m.P99), report.Percent(m.MaxAE),
			report.Percent(m.MeanCoverage), m.WorstNode)
	}
	return t
}

// fleetClassMix summarizes the node-class histogram as "class×count"
// terms in sorted class order.
func fleetClassMix(r fleet.Result) string {
	names := make([]string, 0, len(r.Classes))
	for name := range r.Classes {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = fmt.Sprintf("%s×%d", name, r.Classes[name])
	}
	return strings.Join(parts, " ")
}

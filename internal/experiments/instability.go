package experiments

import (
	"fmt"
	"sort"
	"time"

	"powerdiv/internal/machine"
	"powerdiv/internal/models"
	"powerdiv/internal/report"
	"powerdiv/internal/workload"
)

// InstabilityRun is one repetition of the Fig 8 experiment: the mean share
// of machine power PowerAPI attributed to each application over the
// estimated part of the run.
type InstabilityRun struct {
	Share map[string]float64
}

// InstabilityResult holds the repeated identical runs of Fig 8: the paper
// ran MATRIXPROD against FLOAT64 twice on DAHU and got 90 % attributed to
// opposite applications.
type InstabilityResult struct {
	Machine string
	Fn0     string
	Fn1     string
	Runs    []InstabilityRun
}

// FlipFlopped reports whether any two runs disagree about which
// application consumes the most.
func (r InstabilityResult) FlipFlopped() bool {
	winner := func(run InstabilityRun) string {
		if run.Share[r.Fn0] >= run.Share[r.Fn1] {
			return r.Fn0
		}
		return r.Fn1
	}
	for i := 1; i < len(r.Runs); i++ {
		if winner(r.Runs[i]) != winner(r.Runs[0]) {
			return true
		}
	}
	return false
}

// Table renders the per-run attributions.
func (r InstabilityResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Fig 8 — PowerAPI attribution across identical runs (%s vs %s on %s)", r.Fn0, r.Fn1, r.Machine),
		"run", r.Fn0+" share", r.Fn1+" share",
	)
	for i, run := range r.Runs {
		t.AddRow(fmt.Sprint(i+1), report.Percent(run.Share[r.Fn0]), report.Percent(run.Share[r.Fn1]))
	}
	return t
}

// Instability reproduces Fig 8: `repeats` identical runs of fn0 ∥ fn1 on
// the machine, each observed by a fresh PowerAPI instance with a different
// seed (two launches of the real tool differ in exactly that way: same
// workload, different internal state). On a many-core machine the
// degenerate-calibration pathology makes the winning application flip
// between runs.
//
// The repetitions differ only in the sensor-noise seed, so all of them ride
// one machine.StreamBatch pass: the scheduling/power dynamics simulate
// once, and each repetition's PowerAPI instance observes the shared stream
// under its own noise overlay. Every attribution is bit-identical to the
// one `repeats` independent simulations produce (the batch equivalence test
// pins this); only the wall-clock cost changes.
func Instability(cfg machine.Config, fn0, fn1 string, threads, repeats int, seed int64) (InstabilityResult, error) {
	res := InstabilityResult{Machine: cfg.Spec.Name, Fn0: fn0, Fn1: fn1}
	w0, ok := workload.StressByName(fn0)
	if !ok {
		return res, fmt.Errorf("unknown stress function %q", fn0)
	}
	w1, ok := workload.StressByName(fn1)
	if !ok {
		return res, fmt.Errorf("unknown stress function %q", fn1)
	}
	if repeats <= 0 {
		return res, nil
	}
	const runFor = 30 * time.Second
	procs := []machine.Proc{
		{ID: fn0, Workload: w0, Threads: threads},
		{ID: fn1, Workload: w1, Threads: threads},
	}
	ids := []string{fn0, fn1}
	sort.Strings(ids)
	roster := machine.NewRoster(ids)

	factory := models.NewPowerAPI(models.DefaultPowerAPIConfig())
	tick := cfg.TickInterval()
	maxTicks := int(runFor/tick) + 1
	logical := cfg.Spec.Topology.LogicalCPUs()
	seeds := make([]int64, repeats)
	replays := make([]*models.StreamReplay, repeats)
	for rep := 0; rep < repeats; rep++ {
		seeds[rep] = seed + int64(rep)
		model := factory.New(seed + int64(rep)*7919)
		replays[rep] = models.NewStreamReplay(roster, []models.Model{model}, maxTicks)
	}

	// One sample column per tick, shared by every repetition: the noise
	// overlay never touches the per-process columns.
	scratch := make([]models.ProcSample, roster.Len())
	_, err := machine.StreamBatch(cfg, procs, runFor, seeds, func(rep int, rec *machine.TickRecord) error {
		if rep == 0 {
			for slot := range scratch {
				pt := rec.Procs[slot]
				scratch[slot] = models.ProcSample{
					CPUTime:    pt.CPUTime,
					Counters:   pt.Counters,
					Threads:    pt.Threads,
					TrueActive: pt.ActivePower,
				}
			}
		}
		replays[rep].Observe(models.Tick{
			At:           rec.At,
			Interval:     tick,
			MachinePower: rec.Power,
			LogicalCPUs:  logical,
			Freq:         rec.Freq,
			Roster:       roster,
			Samples:      scratch,
		})
		return nil
	})
	if err != nil {
		return res, err
	}

	rosterIDs := roster.IDs()
	for rep := 0; rep < repeats; rep++ {
		est := replays[rep].Estimates(0)
		sums := make([]float64, len(rosterIDs))
		var total float64
		for i := range est.OK {
			if !est.OK[i] {
				continue
			}
			for slot, w := range est.Row(i) {
				sums[slot] += float64(w)
				total += float64(w)
			}
		}
		ir := InstabilityRun{Share: map[string]float64{}}
		if total > 0 {
			for slot, s := range sums {
				ir.Share[rosterIDs[slot]] = s / total
			}
		}
		res.Runs = append(res.Runs, ir)
	}
	return res, nil
}

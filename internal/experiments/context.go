package experiments

import (
	"fmt"
	"time"

	"powerdiv/internal/machine"
	"powerdiv/internal/models"
	"powerdiv/internal/report"
	"powerdiv/internal/trace"
	"powerdiv/internal/workload"
)

// ContextResult is the Fig 11 illustration: three identical, stable
// applications started and stopped at different times, divided by an
// F1-family model. Although each application's behaviour never changes,
// its attributed power moves every time the context (the set of
// co-runners) changes.
type ContextResult struct {
	Machine string
	Model   string
	// Estimates maps application ID to its attributed power over time.
	Estimates map[string]*trace.Series
	// MachinePower is the machine trace.
	MachinePower *trace.Series
	// Windows lists the context-change instants (arrivals/departures).
	Windows []time.Duration
}

// AttributionDriftPct quantifies the illustration: for the given
// application, the relative change between its maximum and minimum
// attributed power across context windows (its own behaviour being
// constant, a context-independent division would give 0).
func (r ContextResult) AttributionDriftPct(id string) float64 {
	s, ok := r.Estimates[id]
	if !ok || s.Len() == 0 {
		return 0
	}
	min, max := s.Min(), s.Max()
	if max == 0 {
		return 0
	}
	return (max - min) / max * 100
}

// Table summarises per-application attribution drift.
func (r ContextResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Fig 11 — context-dependent attribution (%s on %s)", r.Model, r.Machine),
		"application", "min W", "max W", "drift %",
	)
	for _, id := range sortedSeriesKeys(r.Estimates) {
		s := r.Estimates[id]
		t.AddRowf(id, s.Min(), s.Max(), r.AttributionDriftPct(id))
	}
	return t
}

func sortedSeriesKeys(m map[string]*trace.Series) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// ContextIllustration reproduces Fig 11: three instances of the same
// stable workload with staggered lifetimes
//
//	P0: [0, 3T)   P1: [T, 2T)   P2: [2T, 3T)
//
// divided by the given model. P0's attributed power changes at every
// arrival/departure despite P0's behaviour being constant.
func ContextIllustration(cfg machine.Config, factory models.Factory, fn string, threads int, window time.Duration, seed int64) (ContextResult, error) {
	res := ContextResult{Machine: cfg.Spec.Name, Model: factory.Name, Estimates: map[string]*trace.Series{}}
	w, ok := workload.StressByName(fn)
	if !ok {
		return res, fmt.Errorf("unknown stress function %q", fn)
	}
	cfg.Seed = seed
	procs := []machine.Proc{
		{ID: "P0", Workload: w, Threads: threads},
		{ID: "P1", Workload: w, Threads: threads, Start: window, Stop: 2 * window},
		{ID: "P2", Workload: w, Threads: threads, Start: 2 * window},
	}
	run, err := machine.Simulate(cfg, procs, 3*window)
	if err != nil {
		return res, err
	}
	res.MachinePower = run.PowerSeries()
	res.Windows = []time.Duration{window, 2 * window}
	est := models.ReplayDense(factory.New(seed), models.RunTicksDense(run))
	rosterIDs := run.Roster.IDs()
	for i, rec := range run.Ticks {
		if !est.OK[i] {
			continue
		}
		row := est.Row(i)
		for slot, id := range rosterIDs {
			// Absent processes hold a zero column entry; only processes in
			// the tick's context belong on the attribution trace.
			if !rec.Procs[slot].Present() {
				continue
			}
			s, ok := res.Estimates[id]
			if !ok {
				s = trace.New()
				res.Estimates[id] = s
			}
			s.Append(rec.At, float64(row[slot]))
		}
	}
	return res, nil
}

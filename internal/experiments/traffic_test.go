package experiments

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/protocol"
	"powerdiv/internal/traffic"
)

func smallTrafficConfig(ctx protocol.Context) traffic.Config {
	cfg := TrafficConfig(ctx, traffic.Mixed, 6, 8*time.Second)
	cfg.ArrivalsPerMinute = 90
	cfg.MeanLifetime = 2 * time.Second
	return cfg
}

// TestTrafficCampaignShape runs a small mixed campaign end to end and pins
// the result surface: every model summarized, the trace replayable, the
// capacity cap derived from the context's topology.
func TestTrafficCampaignShape(t *testing.T) {
	ctx := LabContext(cpumodel.SmallIntel(), 17)
	cfg := smallTrafficConfig(ctx)
	if cfg.MaxCPUs != cpumodel.SmallIntel().Topology.PhysicalCores() {
		t.Fatalf("lab MaxCPUs = %d, want physical cores", cfg.MaxCPUs)
	}
	if prod := TrafficConfig(ProdContext(cpumodel.SmallIntel(), 17), traffic.Poisson, 1, time.Second); prod.MaxCPUs != cpumodel.SmallIntel().Topology.LogicalCPUs() {
		t.Fatalf("prod MaxCPUs = %d, want logical CPUs", prod.MaxCPUs)
	}

	res, err := TrafficCampaign(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenarios != cfg.Scenarios || res.Instances <= res.Scenarios {
		t.Fatalf("campaign shape: %d scenarios, %d instances", res.Scenarios, res.Instances)
	}
	if res.Baselines <= 0 || res.Baselines >= res.Instances {
		t.Fatalf("baseline sharing: %d baselines for %d instances", res.Baselines, res.Instances)
	}
	want := []string{"scaphandre", "powerapi", "kepler", "smartwatts", "f2", "oracle"}
	for _, name := range want {
		if _, ok := res.Summaries[name]; !ok {
			t.Errorf("campaign missing model %s (have %v)", name, summaryNames(res))
		}
	}
	for name, s := range res.Summaries {
		if s.MeanCoverage < 0 || s.MeanCoverage > 1 || math.IsNaN(s.MeanAE) {
			t.Errorf("%s: MeanAE %v MeanCoverage %v", name, s.MeanAE, s.MeanCoverage)
		}
		if len(s.Evaluations) != cfg.Scenarios {
			t.Errorf("%s: %d evaluations for %d scenarios", name, len(s.Evaluations), cfg.Scenarios)
		}
	}
	// F2 sees instance-keyed per-core baselines, so churn campaigns must
	// keep it well below the flat-share models' worst case.
	if f2, scaph := res.Summaries["f2"], res.Summaries["scaphandre"]; f2.MeanAE >= scaph.MeanAE+0.25 {
		t.Errorf("F2 MeanAE %v vs scaphandre %v: per-instance baselines not engaged", f2.MeanAE, scaph.MeanAE)
	}

	// The table renders one row per model plus the header.
	tbl := res.Table()
	if tbl == nil || !strings.Contains(tbl.Title, "traffic campaign") {
		t.Fatalf("table: %+v", tbl)
	}

	// The recorded trace replays to an identical error table.
	data, err := res.Trace.Encode()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traffic.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := TrafficReplay(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range res.Summaries {
		r := replayed.Summaries[name]
		if math.Float64bits(s.MeanAE) != math.Float64bits(r.MeanAE) ||
			math.Float64bits(s.MaxAE) != math.Float64bits(r.MaxAE) ||
			math.Float64bits(s.MeanCoverage) != math.Float64bits(r.MeanCoverage) {
			t.Errorf("%s: replay diverged: %+v vs %+v", name, s, r)
		}
	}
	if !reflect.DeepEqual(res.Trace, replayed.Trace) {
		t.Error("replay did not preserve the trace")
	}
}

func summaryNames(res TrafficResult) []string {
	names := make([]string, 0, len(res.Summaries))
	for name := range res.Summaries {
		names = append(names, name)
	}
	return names
}

// TestTrafficCampaignDeterministic reruns the same campaign: results must
// be bit-identical (the acceptance criterion behind the -traffic CLI).
func TestTrafficCampaignDeterministic(t *testing.T) {
	ctx := LabContext(cpumodel.SmallIntel(), 23)
	cfg := smallTrafficConfig(ctx)
	a, err := TrafficCampaign(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrafficCampaign(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical traffic campaigns diverged")
	}
}

package experiments

import (
	"strings"
	"testing"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/models"
)

func TestMultiAppEvaluation(t *testing.T) {
	ctx := LabContext(cpumodel.SmallIntel(), 1)
	fns := []string{"fibonacci", "queens", "int64", "float64", "jmp", "matrixprod"}
	res, err := MultiAppEvaluation(ctx, models.NewScaphandre(), fns, []int{2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// C(6,2)=15 pairs, C(6,3)=20 triples.
	if res.Scenarios[2] != 15 || res.Scenarios[3] != 20 {
		t.Errorf("scenario counts = %v, want 15/20", res.Scenarios)
	}
	// Errors stay in the same regime across scenario sizes (the CPU-time
	// blindness is per-application, not per-pair).
	for _, k := range []int{2, 3} {
		if res.MeanAE[k] < 0.005 || res.MeanAE[k] > 0.10 {
			t.Errorf("mean AE at size %d = %.4f, out of regime", k, res.MeanAE[k])
		}
		if res.MaxAE[k] < res.MeanAE[k] {
			t.Errorf("max below mean at size %d", k)
		}
	}
	if !strings.Contains(res.Table().String(), "n-application") {
		t.Error("table title missing")
	}
}

func TestMultiAppEvaluationErrors(t *testing.T) {
	ctx := LabContext(cpumodel.SmallIntel(), 1)
	if _, err := MultiAppEvaluation(ctx, models.NewScaphandre(), []string{"int64"}, []int{2}, 1); err == nil {
		t.Error("2-way combos of 1 function accepted")
	}
	// Oversubscription: 3 apps × 3 threads on 6 cores.
	if _, err := MultiAppEvaluation(ctx, models.NewScaphandre(), []string{"int64", "rand", "jmp"}, []int{3}, 3); err == nil {
		t.Error("oversubscribed combos accepted")
	}
}

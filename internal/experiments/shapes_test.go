package experiments

import (
	"math"
	"testing"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/division"
	"powerdiv/internal/models"
	"powerdiv/internal/protocol"
)

// Shape tests for the experiment drivers: structural invariants that must
// hold whatever the calibrated wattages are — monotone curve segments,
// well-formed scatter rows, the residual direction under capping, share
// conservation across instability runs, energy bookkeeping. They complement
// the paper-number tests in experiments_test.go, which pin magnitudes.

// shortCtx shrinks the protocol context so shape tests stay fast; the
// invariants under test do not depend on run length.
func shortCtx(spec cpumodel.Spec) protocol.Context {
	ctx := LabContext(spec, 1)
	ctx.RunFor = 6 * time.Second
	ctx.StableWindow = 2 * time.Second
	return ctx
}

// TestCurveShapeMonotone checks the load-curve invariants on both machines
// and both contexts: the x axis strictly increases from idle to 100 %, the
// band is well-ordered (min ≤ max) everywhere, the max curve never goes
// down when load is added, and the idle point is a single value.
func TestCurveShapeMonotone(t *testing.T) {
	for _, spec := range cpumodel.Specs() {
		for _, prod := range []bool{false, true} {
			cfg := LabConfig(spec, 1)
			if prod {
				cfg = ProdConfig(spec, 1)
			}
			res, err := PowerCurve(cfg)
			if err != nil {
				t.Fatal(err)
			}
			pts := res.Points
			if len(pts) < 3 {
				t.Fatalf("%s prod=%v: only %d curve points", spec.Name, prod, len(pts))
			}
			if pts[0].Threads != 0 || pts[0].MinPower != pts[0].MaxPower {
				t.Errorf("%s prod=%v: idle point %+v malformed", spec.Name, prod, pts[0])
			}
			if last := pts[len(pts)-1].LoadPct; math.Abs(last-100) > 1e-9 {
				t.Errorf("%s prod=%v: curve ends at %.1f%% load, want 100%%", spec.Name, prod, last)
			}
			for i, p := range pts {
				if p.MinPower > p.MaxPower {
					t.Errorf("%s prod=%v: point %d has min %v > max %v", spec.Name, prod, i, p.MinPower, p.MaxPower)
				}
				if i == 0 {
					continue
				}
				if p.LoadPct <= pts[i-1].LoadPct || p.Threads != pts[i-1].Threads+1 {
					t.Errorf("%s prod=%v: x axis not strictly increasing at point %d", spec.Name, prod, i)
				}
				if p.MaxPower < pts[i-1].MaxPower {
					t.Errorf("%s prod=%v: max curve decreases at %d threads (%v → %v)",
						spec.Name, prod, p.Threads, pts[i-1].MaxPower, p.MaxPower)
				}
			}
			if res.ResidualGap() <= 0 {
				t.Errorf("%s prod=%v: residual gap %v, want > 0", spec.Name, prod, res.ResidualGap())
			}
		}
	}
}

// TestScatterShapeRows builds a reduced campaign and checks every scatter
// row is well-formed: both panels populated, finite coordinates, labelled
// points, and error statistics that are ordered and attained.
func TestScatterShapeRows(t *testing.T) {
	ctx := shortCtx(cpumodel.SmallIntel())
	scenarios, err := protocol.StressPairs([]string{"fibonacci", "matrixprod", "int64"}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	evs, err := protocol.EvaluateCampaignParallel(ctx, scenarios, models.NewScaphandre(), protocol.ObjectiveActive, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := scatterFromEvaluations("scaphandre", ctx.Machine.Spec.Name, evs)
	if len(res.SameSize) == 0 || len(res.DiffSize) == 0 {
		t.Fatalf("scatter panels %d/%d, want both non-empty", len(res.SameSize), len(res.DiffSize))
	}
	for _, p := range append(append([]division.RatioPoint{}, res.SameSize...), res.DiffSize...) {
		if p.Label == "" {
			t.Error("unlabelled scatter point")
		}
		for _, v := range []float64{p.X, p.Y} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("point %q has non-finite coordinate %v", p.Label, v)
			}
		}
	}
	if res.MeanAE <= 0 || res.MaxAE < res.MeanAE {
		t.Errorf("error stats mean=%v max=%v, want 0 < mean ≤ max", res.MeanAE, res.MaxAE)
	}
	if res.WorstPair == "" {
		t.Error("MaxAE not attributed to a scenario")
	}
}

// TestCappingResidualDirection pins the §IV-B mechanism itself rather than
// its campaign-level error numbers: a 50 %-capped application's isolated
// run shows strictly less residual and less total power than the same
// application uncapped — the invisible difference that breaks the models.
func TestCappingResidualDirection(t *testing.T) {
	ctx := shortCtx(cpumodel.SmallIntel())
	uncapped, err := cappingApp("matrixprod", 2, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := cappingApp("matrixprod", 2, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	bu, _, err := protocol.MeasureBaseline(ctx, uncapped)
	if err != nil {
		t.Fatal(err)
	}
	bc, _, err := protocol.MeasureBaseline(ctx, capped)
	if err != nil {
		t.Fatal(err)
	}
	if bc.Residual >= bu.Residual {
		t.Errorf("capped residual %v not below uncapped %v", bc.Residual, bu.Residual)
	}
	if bc.Total >= bu.Total {
		t.Errorf("capped total %v not below uncapped %v", bc.Total, bu.Total)
	}
	if bc.Cores >= bu.Cores {
		t.Errorf("capped cores %.2f not below uncapped %.2f", bc.Cores, bu.Cores)
	}

	res, err := ResidualCapping(ctx, models.NewScaphandre(), []string{"fibonacci", "matrixprod"}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if res.R0 <= 0 {
		t.Errorf("R0 = %v, want > 0", res.R0)
	}
	for name, st := range map[string]CappingStats{"9a": res.ResidualAware, "9b": res.NominalR0} {
		if len(st.Points) == 0 {
			t.Errorf("objective %s: no scatter points", name)
		}
		if st.MeanAE < 0 || st.MaxAE < st.MeanAE {
			t.Errorf("objective %s: mean=%v max=%v out of order", name, st.MeanAE, st.MaxAE)
		}
	}
}

// TestInstabilityShareConservation: whatever PowerAPI's calibration does,
// every instability run must be a probability split — two shares in [0,1]
// summing to 1 — and the result must hold exactly `repeats` runs.
func TestInstabilityShareConservation(t *testing.T) {
	const repeats = 3
	res, err := Instability(LabConfig(cpumodel.SmallIntel(), 1), "matrixprod", "float64", 2, repeats, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != repeats {
		t.Fatalf("%d runs, want %d", len(res.Runs), repeats)
	}
	for i, run := range res.Runs {
		s0, s1 := run.Share[res.Fn0], run.Share[res.Fn1]
		if s0 < 0 || s0 > 1 || s1 < 0 || s1 > 1 {
			t.Errorf("run %d: shares %v/%v outside [0,1]", i, s0, s1)
		}
		if math.Abs(s0+s1-1) > 1e-6 {
			t.Errorf("run %d: shares sum to %v, want 1", i, s0+s1)
		}
	}
}

// TestEnergyDivisionBookkeeping: the attributed energies must account for
// (nearly all of) the colocated machine energy — the division can lose a
// little to model warm-up but can never create energy — and the attribution
// traces must span the run.
func TestEnergyDivisionBookkeeping(t *testing.T) {
	res, err := EnergyDivision(ProdConfig(cpumodel.SmallIntel(), 1), models.NewScaphandre(), "build2", "dacapo", 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.SoloEnergy0 <= 0 || res.SoloEnergy1 <= 0 || res.PairTotal <= 0 {
		t.Fatalf("non-positive energies: %+v", res)
	}
	attributed := res.PairEnergy0 + res.PairEnergy1
	if attributed > res.PairTotal*1.000001 {
		t.Errorf("attributed %v J exceeds machine total %v J", attributed, res.PairTotal)
	}
	if float64(attributed) < 0.9*float64(res.PairTotal) {
		t.Errorf("attributed %v J accounts for <90%% of machine total %v J", attributed, res.PairTotal)
	}
	if res.Est0.Len() == 0 || res.Est1.Len() == 0 || res.PairMachine.Len() == 0 {
		t.Fatal("missing attribution or machine traces")
	}
	if res.Est0.End() <= res.Est0.Start() {
		t.Errorf("attribution trace spans nothing: %v..%v", res.Est0.Start(), res.Est0.End())
	}
}

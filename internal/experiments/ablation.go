package experiments

import (
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/division"
	"powerdiv/internal/machine"
	"powerdiv/internal/models"
	"powerdiv/internal/protocol"
	"powerdiv/internal/report"
	"powerdiv/internal/units"
)

// FamilyProperties characterises one residual allocation family on one
// pair scenario — the properties §III-B argues distinguish the families.
type FamilyProperties struct {
	Family division.Family
	// Coverage is Σ estimates / C_S: 1 for F1 and F2 (they divide the
	// whole machine power), below 1 for F3 (it leaves R unallocated —
	// the Fig 2 under-coverage).
	Coverage float64
	// RatioDriftPct is how much the estimated consumption ratio of the
	// two applications moves between the laboratory and production
	// contexts, in percent of the lab ratio. F2 keeps the sequential
	// ratio by construction, so its drift is ≈0; F1's drifts because the
	// active shares change when frequency and SMT effects kick in.
	RatioDriftPct float64
}

// FamilyAblation evaluates the three families of §III-B on one stress pair
// run in both contexts — the ablation behind the paper's argument that the
// choice of family is a policy decision with observable consequences.
func FamilyAblation(spec cpumodel.Spec, fn0, fn1 string, threads int, seed int64) ([]FamilyProperties, error) {
	ratioIn := func(ctx protocol.Context) (map[division.Family]float64, map[division.Family]float64, error) {
		a0, err := protocol.StressApp(fn0, threads)
		if err != nil {
			return nil, nil, err
		}
		a1, err := protocol.StressApp(fn1, threads)
		if err != nil {
			return nil, nil, err
		}
		baselines, err := protocol.MeasureBaselines(ctx, []protocol.AppSpec{a0, a1})
		if err != nil {
			return nil, nil, err
		}
		bs := []division.Baseline{baselines[a0.ID], baselines[a1.ID]}

		cfg := ctx.Machine
		run, err := machine.Simulate(cfg, []machine.Proc{
			{ID: a0.ID, Workload: a0.Workload, Threads: threads},
			{ID: a1.ID, Workload: a1.Workload, Threads: threads},
		}, 10*time.Second)
		if err != nil {
			return nil, nil, err
		}
		c := units.Watts(run.TruePowerSeries().Mean())
		r := units.Watts(run.ResidualSeries().Mean()) + run.Ticks[0].Idle
		a := c - r

		ratios := map[division.Family]float64{}
		coverage := map[division.Family]float64{}
		for _, fam := range []division.Family{division.F1, division.F2, division.F3} {
			shares, err := division.FamilyShares(fam, bs)
			if err != nil {
				return nil, nil, err
			}
			var est0, est1 units.Watts
			if fam == division.F3 {
				// F3 divides only the active power; R stays unallocated.
				est0 = units.Watts(float64(a) * shares[a0.ID])
				est1 = units.Watts(float64(a) * shares[a1.ID])
			} else {
				est0 = units.Watts(float64(c) * shares[a0.ID])
				est1 = units.Watts(float64(c) * shares[a1.ID])
			}
			coverage[fam] = float64(est0+est1) / float64(c)
			if est1 > 0 {
				ratios[fam] = float64(est0) / float64(est1)
			}
		}
		return ratios, coverage, nil
	}

	labRatios, labCov, err := ratioIn(LabContext(spec, seed))
	if err != nil {
		return nil, err
	}
	prodRatios, _, err := ratioIn(ProdContext(spec, seed))
	if err != nil {
		return nil, err
	}
	var out []FamilyProperties
	for _, fam := range []division.Family{division.F1, division.F2, division.F3} {
		drift := 0.0
		if labRatios[fam] != 0 {
			drift = (prodRatios[fam] - labRatios[fam]) / labRatios[fam] * 100
			if drift < 0 {
				drift = -drift
			}
		}
		out = append(out, FamilyProperties{
			Family:        fam,
			Coverage:      labCov[fam],
			RatioDriftPct: drift,
		})
	}
	return out, nil
}

// AblationTable renders the family ablation.
func AblationTable(props []FamilyProperties) *report.Table {
	t := report.NewTable(
		"Residual allocation families (§III-B)",
		"family", "coverage of C_S", "lab→prod ratio drift %",
	)
	for _, p := range props {
		t.AddRowf(p.Family.String(), p.Coverage, p.RatioDriftPct)
	}
	return t
}

// StableWindowAblation compares Eq 5 scores with and without the paper's
// stable-window selection, on a noisy machine. Returns (withWindow,
// without).
func StableWindowAblation(spec cpumodel.Spec, seed int64) (float64, float64, error) {
	scenarios, err := protocol.StressPairs([]string{"fibonacci", "int64", "matrixprod"}, []int{2})
	if err != nil {
		return 0, 0, err
	}
	run := func(window time.Duration) (float64, error) {
		ctx := LabContext(spec, seed)
		ctx.Machine.NoiseStddev = 2 // exaggerate sensor noise
		ctx.StableWindow = window
		evs, err := protocol.EvaluateCampaign(ctx, scenarios, models.NewScaphandre(), protocol.ObjectiveActive, 0)
		if err != nil {
			return 0, err
		}
		return protocol.Summarize("scaphandre", evs).MeanAE, nil
	}
	with, err := run(10 * time.Second)
	if err != nil {
		return 0, 0, err
	}
	without, err := run(0)
	if err != nil {
		return 0, 0, err
	}
	return with, without, nil
}

// LearningWindowAblation sweeps PowerAPI's learning window and reports
// (meanAE, meanScoredTicks) per window length.
func LearningWindowAblation(spec cpumodel.Spec, windows []time.Duration, seed int64) (map[time.Duration][2]float64, error) {
	scenarios, err := protocol.StressPairs([]string{"fibonacci", "int64", "matrixprod"}, []int{2})
	if err != nil {
		return nil, err
	}
	out := map[time.Duration][2]float64{}
	for _, w := range windows {
		cfg := models.DefaultPowerAPIConfig()
		cfg.LearnWindow = w
		ctx := LabContext(spec, seed)
		evs, err := protocol.EvaluateCampaign(ctx, scenarios, models.NewPowerAPI(cfg), protocol.ObjectiveActive, 0)
		if err != nil {
			return nil, err
		}
		var ticks float64
		for _, ev := range evs {
			ticks += float64(ev.ScoredTicks)
		}
		out[w] = [2]float64{protocol.Summarize("powerapi", evs).MeanAE, ticks / float64(len(evs))}
	}
	return out, nil
}

// SamplePeriodAblation sweeps the sensor sampling period and reports the
// Scaphandre mean AE per period — the protocol is robust to the sampling
// rate because the workloads are stationary.
func SamplePeriodAblation(spec cpumodel.Spec, periods []time.Duration, seed int64) (map[time.Duration]float64, error) {
	scenarios, err := protocol.StressPairs([]string{"fibonacci", "int64", "matrixprod"}, []int{2})
	if err != nil {
		return nil, err
	}
	out := map[time.Duration]float64{}
	for _, p := range periods {
		ctx := LabContext(spec, seed)
		ctx.Machine.Tick = p
		evs, err := protocol.EvaluateCampaign(ctx, scenarios, models.NewScaphandre(), protocol.ObjectiveActive, 0)
		if err != nil {
			return nil, err
		}
		out[p] = protocol.Summarize("scaphandre", evs).MeanAE
	}
	return out, nil
}

// HTEfficiencyAblation sweeps the SMT efficiency factor and reports the
// Section V total energy drop (colocated vs solo sum) for BUILD2+DACAPO —
// showing how hyperthreading sub-additivity drives the §V context effects.
func HTEfficiencyAblation(spec cpumodel.Spec, factors []float64, seed int64) (map[float64]float64, error) {
	out := map[float64]float64{}
	for _, f := range factors {
		s := spec
		s.Power.SMTEfficiency = f
		cfg := ProdConfig(s, seed)
		res, err := EnergyDivision(cfg, models.NewScaphandre(), "build2", "dacapo", 6, seed)
		if err != nil {
			return nil, err
		}
		out[f] = res.TotalDropPct()
	}
	return out, nil
}

// PowerAPIDeterminismAblation runs the DAHU campaign with PowerAPI's
// calibration instability disabled, isolating how much of its §IV-A error
// the pathology accounts for (with it off, PowerAPI collapses onto the
// CPU-time behaviour of Scaphandre).
func PowerAPIDeterminismAblation(ctx protocol.Context) (withPathology, without float64, err error) {
	scenarios, err := protocol.StressPairs([]string{"fibonacci", "queens", "float64", "matrixprod"}, protocol.SizesFor(ctx.Machine))
	if err != nil {
		return 0, 0, err
	}
	run := func(deterministic bool) (float64, error) {
		cfg := models.DefaultPowerAPIConfig()
		cfg.Deterministic = deterministic
		evs, err := protocol.EvaluateCampaignParallel(ctx, scenarios, models.NewPowerAPI(cfg), protocol.ObjectiveActive, 0)
		if err != nil {
			return 0, err
		}
		return protocol.Summarize("powerapi", evs).MeanAE, nil
	}
	if withPathology, err = run(false); err != nil {
		return 0, 0, err
	}
	if without, err = run(true); err != nil {
		return 0, 0, err
	}
	return withPathology, without, nil
}

package experiments

import (
	"fmt"
	"time"

	"powerdiv/internal/machine"
	"powerdiv/internal/models"
	"powerdiv/internal/report"
	"powerdiv/internal/trace"
	"powerdiv/internal/vm"
	"powerdiv/internal/workload"
)

// BehaviorResult quantifies the §V-A observation that an application's
// attributed power curve does not reflect its own behaviour: "the behavior
// of BUILD2 is entirely contextual, mirroring the behavior of DACAPO and
// mistaking its consumption troughs for peaks".
//
// For each application it holds the Pearson correlation of its *attributed*
// power curve (colocated) with its own solo machine power curve and with
// the co-runner's — phase-aligned, since the scripted workloads repeat
// deterministically.
type BehaviorResult struct {
	Machine string
	Model   string
	App0    string
	App1    string
	// OwnCorr[i]: corr(attributed_i, solo_i); OtherCorr[i]:
	// corr(attributed_i, solo_other).
	OwnCorr   [2]float64
	OtherCorr [2]float64
}

// Mirrored reports whether app i's attributed curve tracks the co-runner's
// behaviour more strongly (in magnitude) than its own — the paper's
// "entirely contextual" failure.
func (r BehaviorResult) Mirrored(i int) bool {
	return abs64(r.OtherCorr[i]) > abs64(r.OwnCorr[i])
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Table renders the correlation matrix.
func (r BehaviorResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("§V-A behaviour correlation — %s ∥ %s (%s on %s)", r.App0, r.App1, r.Model, r.Machine),
		"attributed curve", "corr with own solo", "corr with co-runner solo", "mirrored?",
	)
	apps := [2]string{r.App0, r.App1}
	for i := 0; i < 2; i++ {
		t.AddRowf(apps[i], r.OwnCorr[i], r.OtherCorr[i], r.Mirrored(i))
	}
	return t
}

// BehaviorCorrelation runs both applications solo and colocated and
// correlates each one's attributed power curve against the two solo
// signatures. The solo signature is the machine power trace of the
// isolated run (what Fig 10 plots).
func BehaviorCorrelation(cfg machine.Config, factory models.Factory, app0, app1 string, vcpus int, seed int64) (BehaviorResult, error) {
	res := BehaviorResult{Machine: cfg.Spec.Name, Model: factory.Name, App0: app0, App1: app1}
	w0, ok := workload.PhoronixByName(app0)
	if !ok {
		return res, fmt.Errorf("unknown application %q", app0)
	}
	w1, ok := workload.PhoronixByName(app1)
	if !ok {
		return res, fmt.Errorf("unknown application %q", app1)
	}
	maxDur := w0.Duration()
	if d := w1.Duration(); d > maxDur {
		maxDur = d
	}
	maxDur += time.Minute

	solo := func(name string, w workload.Workload, s int64) (*trace.Series, error) {
		runCfg := cfg
		runCfg.Seed = s
		run, err := vm.SimulateColocation(runCfg, []vm.VM{{Name: name, VCPUs: vcpus, App: w}}, maxDur)
		if err != nil {
			return nil, err
		}
		return run.PowerSeries(), nil
	}
	solo0, err := solo(app0, w0, seed+1)
	if err != nil {
		return res, err
	}
	solo1, err := solo(app1, w1, seed+2)
	if err != nil {
		return res, err
	}

	div, err := EnergyDivision(cfg, factory, app0, app1, vcpus, seed)
	if err != nil {
		return res, err
	}
	period := cfg.Tick
	if period <= 0 {
		period = machine.DefaultTick
	}
	res.OwnCorr[0] = trace.Correlation(div.Est0, solo0, period)
	res.OtherCorr[0] = trace.Correlation(div.Est0, solo1, period)
	res.OwnCorr[1] = trace.Correlation(div.Est1, solo1, period)
	res.OtherCorr[1] = trace.Correlation(div.Est1, solo0, period)
	return res, nil
}

package experiments

import (
	"fmt"

	"powerdiv/internal/models"
	"powerdiv/internal/protocol"
	"powerdiv/internal/report"
)

// MultiAppResult compares a model's division accuracy as scenarios grow
// beyond the paper's pairs — the formalism (scenarios S of n applications)
// supports it directly; the evaluation section stops at two.
type MultiAppResult struct {
	Machine string
	Model   string
	// MeanAE maps scenario size (2, 3, …) to the Eq 5 mean over all
	// combinations of distinct stress functions at that size.
	MeanAE map[int]float64
	MaxAE  map[int]float64
	// Scenarios counts the combinations per size.
	Scenarios map[int]int
}

// Table renders the per-size errors.
func (r MultiAppResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("n-application scenarios — %s on %s", r.Model, r.Machine),
		"apps per scenario", "scenarios", "mean AE", "max AE",
	)
	sizes := make([]int, 0, len(r.MeanAE))
	for k := range r.MeanAE {
		sizes = append(sizes, k)
	}
	for i := 1; i < len(sizes); i++ {
		for j := i; j > 0 && sizes[j] < sizes[j-1]; j-- {
			sizes[j], sizes[j-1] = sizes[j-1], sizes[j]
		}
	}
	for _, k := range sizes {
		t.AddRow(fmt.Sprint(k), fmt.Sprint(r.Scenarios[k]), report.Percent(r.MeanAE[k]), report.Percent(r.MaxAE[k]))
	}
	return t
}

// MultiAppEvaluation runs the protocol over k-way scenarios for each k in
// sizes, at a fixed per-application thread count (choose threads so the
// largest scenario fits: k_max × threads ≤ schedulable CPUs).
func MultiAppEvaluation(ctx protocol.Context, factory models.Factory, fns []string, sizes []int, threads int) (MultiAppResult, error) {
	res := MultiAppResult{
		Machine:   ctx.Machine.Spec.Name,
		Model:     factory.Name,
		MeanAE:    map[int]float64{},
		MaxAE:     map[int]float64{},
		Scenarios: map[int]int{},
	}
	for _, k := range sizes {
		scenarios, err := protocol.StressCombos(fns, threads, k)
		if err != nil {
			return res, err
		}
		evs, err := protocol.EvaluateCampaignParallel(ctx, scenarios, factory, protocol.ObjectiveActive, 0)
		if err != nil {
			return res, err
		}
		sum := protocol.Summarize(factory.Name, evs)
		res.MeanAE[k] = sum.MeanAE
		res.MaxAE[k] = sum.MaxAE
		res.Scenarios[k] = len(scenarios)
	}
	return res, nil
}

package experiments

import (
	"fmt"
	"sort"
	"time"

	"powerdiv/internal/division"
	"powerdiv/internal/models"
	"powerdiv/internal/protocol"
	"powerdiv/internal/report"
	"powerdiv/internal/traffic"
	"powerdiv/internal/units"
)

// TrafficResult is one production-shaped traffic campaign: generated (or
// replayed) timed rosters scored per tick by every model on the fused
// streaming pipeline.
type TrafficResult struct {
	Machine   string
	Kind      string
	Scenarios int
	// Instances counts timed application instances across all scenarios;
	// Baselines the distinct application types they resolve to in phase 1.
	Instances int
	Baselines int
	Window    time.Duration
	// Summaries holds one per-model aggregate, keyed by model name.
	Summaries map[string]protocol.TrafficSummary
	// Trace records the exact schedule for replay (commit it next to the
	// results; Decode + TrafficReplay reproduces the campaign bit for bit).
	Trace traffic.Trace
}

// TrafficConfig derives a generator config from an evaluation context: the
// capacity cap follows the context's schedulable CPUs (physical cores in
// the laboratory context, logical CPUs with hyperthreading), so generated
// schedules stay contention-free on that machine.
func TrafficConfig(ctx protocol.Context, kind traffic.Kind, scenarios int, window time.Duration) traffic.Config {
	top := ctx.Machine.Spec.Topology
	maxCPUs := top.PhysicalCores()
	if ctx.Machine.Hyperthreading {
		maxCPUs = top.LogicalCPUs()
	}
	cfg := traffic.Config{
		Kind:      kind,
		Seed:      ctx.Seed,
		Scenarios: scenarios,
		Window:    window,
		MaxCPUs:   maxCPUs,
	}
	return cfg.WithDefaults()
}

// TrafficFactories builds the traffic model roster: the paper's two models,
// the two extra open-source families, the F2 reference (its per-core table
// keyed by instance ID through the shared baseline types) and the oracle
// floor. Exported so the campaign service scores the same roster per
// scenario that the batch traffic experiments score per campaign.
func TrafficFactories(scenarios []protocol.Scenario) func(map[string]division.Baseline) []models.Factory {
	return func(baselines map[string]division.Baseline) []models.Factory {
		perCore := map[string]units.Watts{}
		for _, s := range scenarios {
			for _, a := range s.Apps {
				base := a.BaseID
				if base == "" {
					base = a.ID
				}
				if b, ok := baselines[base]; ok {
					perCore[a.ID] = b.ActivePerCore()
				}
			}
		}
		fs := append(PaperModels(),
			models.NewKepler(),
			models.NewSmartWatts(models.DefaultSmartWattsConfig()),
			models.NewF2(perCore),
			models.NewOracle(),
		)
		return fs
	}
}

// TrafficCampaign generates a traffic campaign from cfg and scores it. The
// result carries the recorded trace; rerunning with the same context and
// config yields a bit-identical error table.
func TrafficCampaign(ctx protocol.Context, cfg traffic.Config) (TrafficResult, error) {
	cfg = cfg.WithDefaults()
	scenarios, err := traffic.Generate(cfg)
	if err != nil {
		return TrafficResult{}, err
	}
	res, err := trafficEvaluate(ctx, cfg.Kind.String(), cfg.Window, scenarios)
	if err != nil {
		return TrafficResult{}, err
	}
	res.Trace = traffic.Record(cfg, scenarios)
	return res, nil
}

// TrafficReplay scores a previously recorded trace: same scenarios, same
// per-scenario seeds (they derive from instance IDs), so a replay on the
// same context reproduces the original campaign exactly.
func TrafficReplay(ctx protocol.Context, tr traffic.Trace) (TrafficResult, error) {
	scenarios, err := tr.ProtocolScenarios()
	if err != nil {
		return TrafficResult{}, err
	}
	res, err := trafficEvaluate(ctx, tr.Kind, tr.Window(), scenarios)
	if err != nil {
		return TrafficResult{}, err
	}
	res.Trace = tr
	return res, nil
}

func trafficEvaluate(ctx protocol.Context, kind string, window time.Duration, scenarios []protocol.Scenario) (TrafficResult, error) {
	byModel, err := protocol.EvaluateTrafficStreaming(ctx, scenarios, TrafficFactories(scenarios), window)
	if err != nil {
		return TrafficResult{}, err
	}
	res := TrafficResult{
		Machine:   ctx.Machine.Spec.Name,
		Kind:      kind,
		Scenarios: len(scenarios),
		Baselines: len(protocol.BaselineAppsOf(scenarios)),
		Window:    window,
		Summaries: map[string]protocol.TrafficSummary{},
	}
	for _, s := range scenarios {
		res.Instances += len(s.Apps)
	}
	for name, evs := range byModel {
		res.Summaries[name] = protocol.SummarizeTraffic(name, evs)
	}
	return res, nil
}

// Table renders the per-model traffic error summary.
func (r TrafficResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("traffic campaign — %s arrivals, %d scenarios × %v, %d instances over %d baselines — %s",
			r.Kind, r.Scenarios, r.Window, r.Instances, r.Baselines, r.Machine),
		"model", "mean AE", "max AE", "coverage", "worst scenario",
	)
	names := make([]string, 0, len(r.Summaries))
	for name := range r.Summaries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := r.Summaries[name]
		t.AddRow(name, report.Percent(s.MeanAE), report.Percent(s.MaxAE),
			report.Percent(s.MeanCoverage), truncateLabel(s.WorstScenario, 48))
	}
	return t
}

// truncateLabel shortens long roster labels for table cells.
func truncateLabel(s string, max int) string {
	if len(s) <= max {
		return s
	}
	return s[:max-1] + "…"
}

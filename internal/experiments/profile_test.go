package experiments

import (
	"strings"
	"testing"

	"powerdiv/internal/cpumodel"
)

func TestCollectProfileTraining(t *testing.T) {
	ctx := LabContext(cpumodel.SmallIntel(), 1)
	samples, err := CollectProfileTraining(ctx, []string{"fibonacci", "matrixprod", "jmp"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("%d samples, want 3", len(samples))
	}
	byName := map[string]float64{}
	for _, s := range samples {
		byName[s.Workload] = float64(s.ActivePerCore)
		// Rates must reflect per-core-second normalisation: cycles at the
		// base frequency (3.6 GHz in the lab context).
		if s.Rates.Cycles < 3.5e9 || s.Rates.Cycles > 3.7e9 {
			t.Errorf("%s cycle rate = %.3g, want ≈3.6e9", s.Workload, s.Rates.Cycles)
		}
	}
	// Isolated per-core power matches the calibration.
	if got := byName["fibonacci"]; got < 4.2 || got > 4.6 {
		t.Errorf("fibonacci per-core = %.2f, want ≈4.4", got)
	}
	if got := byName["matrixprod"]; got < 6.9 || got > 7.3 {
		t.Errorf("matrixprod per-core = %.2f, want ≈7.1", got)
	}
	if _, err := CollectProfileTraining(ctx, []string{"nosuch"}, 2); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestProfileF2EvaluationBeatsScaphandre(t *testing.T) {
	// The §VI result: the profile-driven F2 model outperforms CPU-time
	// division on the full campaign (measured: ≈2.5 % vs ≈3.7 % mean,
	// ≈7.5 % vs ≈11.8 % max on SMALL INTEL).
	ctx := LabContext(cpumodel.SmallIntel(), 1)
	res, err := ProfileF2Evaluation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProfileF2.MeanAE >= res.Scaphandre.MeanAE {
		t.Errorf("profile-F2 mean %.4f not below scaphandre %.4f", res.ProfileF2.MeanAE, res.Scaphandre.MeanAE)
	}
	if res.ProfileF2.MaxAE >= res.Scaphandre.MaxAE {
		t.Errorf("profile-F2 max %.4f not below scaphandre %.4f", res.ProfileF2.MaxAE, res.Scaphandre.MaxAE)
	}
	// The estimator is imperfect (instruction mix explains only part of
	// the power variance), so the improvement is real but bounded.
	if res.TrainError < 0.01 || res.TrainError > 0.25 {
		t.Errorf("train error = %.4f, want 0.01–0.25", res.TrainError)
	}
	if res.MeanLOO() < res.TrainError {
		t.Errorf("LOO %.4f below train error %.4f", res.MeanLOO(), res.TrainError)
	}
	if len(res.LeaveOneOut) != 12 {
		t.Errorf("%d LOO entries, want 12", len(res.LeaveOneOut))
	}
	if !strings.Contains(res.Table().String(), "profile-F2") {
		t.Error("table missing profile-F2 rows")
	}
	if !strings.Contains(res.LOOTable().String(), "fibonacci") {
		t.Error("LOO table missing workloads")
	}
}

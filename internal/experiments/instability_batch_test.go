package experiments

import (
	"math"
	"sort"
	"testing"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/machine"
	"powerdiv/internal/models"
	"powerdiv/internal/workload"
)

// unbatchedInstability is the pre-batch reference: `repeats` fully
// independent simulations, one machine.Stream pass each, with the same
// seed derivations Instability uses. It exists only to pin the batch
// equivalence.
func unbatchedInstability(t *testing.T, cfg machine.Config, fn0, fn1 string, threads, repeats int, seed int64) InstabilityResult {
	t.Helper()
	res := InstabilityResult{Machine: cfg.Spec.Name, Fn0: fn0, Fn1: fn1}
	w0, _ := workload.StressByName(fn0)
	w1, _ := workload.StressByName(fn1)
	const runFor = 30 * time.Second
	ids := []string{fn0, fn1}
	sort.Strings(ids)
	roster := machine.NewRoster(ids)
	factory := models.NewPowerAPI(models.DefaultPowerAPIConfig())
	tick := cfg.TickInterval()
	maxTicks := int(runFor/tick) + 1
	logical := cfg.Spec.Topology.LogicalCPUs()
	for rep := 0; rep < repeats; rep++ {
		run := cfg
		run.Seed = seed + int64(rep)
		procs := []machine.Proc{
			{ID: fn0, Workload: w0, Threads: threads},
			{ID: fn1, Workload: w1, Threads: threads},
		}
		model := factory.New(seed + int64(rep)*7919)
		replay := models.NewStreamReplay(roster, []models.Model{model}, maxTicks)
		scratch := make([]models.ProcSample, roster.Len())
		_, err := machine.Stream(run, procs, runFor, func(rec *machine.TickRecord) error {
			for slot := range scratch {
				pt := rec.Procs[slot]
				scratch[slot] = models.ProcSample{
					CPUTime:    pt.CPUTime,
					Counters:   pt.Counters,
					Threads:    pt.Threads,
					TrueActive: pt.ActivePower,
				}
			}
			replay.Observe(models.Tick{
				At:           rec.At,
				Interval:     tick,
				MachinePower: rec.Power,
				LogicalCPUs:  logical,
				Freq:         rec.Freq,
				Roster:       roster,
				Samples:      scratch,
			})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		rosterIDs := roster.IDs()
		est := replay.Estimates(0)
		sums := make([]float64, len(rosterIDs))
		var total float64
		for i := range est.OK {
			if !est.OK[i] {
				continue
			}
			for slot, w := range est.Row(i) {
				sums[slot] += float64(w)
				total += float64(w)
			}
		}
		ir := InstabilityRun{Share: map[string]float64{}}
		if total > 0 {
			for slot, s := range sums {
				ir.Share[rosterIDs[slot]] = s / total
			}
		}
		res.Runs = append(res.Runs, ir)
	}
	return res
}

// TestInstabilityBatchedMatchesUnbatched pins the Fig 8 batching: riding
// every repetition on one StreamBatch pass must leave each repetition's
// attribution bit-identical to a fully independent simulation with the
// same seeds, on both machines.
func TestInstabilityBatchedMatchesUnbatched(t *testing.T) {
	for _, sp := range []cpumodel.Spec{cpumodel.Dahu(), cpumodel.SmallIntel()} {
		cfg := machine.Config{Spec: sp, NoiseStddev: 0.25, Hyperthreading: true, Turbo: true}
		const repeats = 3
		got, err := Instability(cfg, "matrixprod", "double", 4, repeats, 17)
		if err != nil {
			t.Fatal(err)
		}
		want := unbatchedInstability(t, cfg, "matrixprod", "double", 4, repeats, 17)
		if len(got.Runs) != repeats || len(want.Runs) != repeats {
			t.Fatalf("%s: %d/%d runs, want %d", sp.Name, len(got.Runs), len(want.Runs), repeats)
		}
		for rep := range want.Runs {
			for id, ws := range want.Runs[rep].Share {
				gs, ok := got.Runs[rep].Share[id]
				if !ok || math.Float64bits(gs) != math.Float64bits(ws) {
					t.Errorf("%s rep %d %s: batched share %v != unbatched %v", sp.Name, rep, id, gs, ws)
				}
			}
			if len(got.Runs[rep].Share) != len(want.Runs[rep].Share) {
				t.Errorf("%s rep %d: share map sizes differ", sp.Name, rep)
			}
		}
	}
}

package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/division"
	"powerdiv/internal/models"
	"powerdiv/internal/workload"
)

func TestPowerCurveFig1SmallIntel(t *testing.T) {
	res, err := PowerCurve(LabConfig(cpumodel.SmallIntel(), 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 7 { // idle + 6 cores
		t.Fatalf("lab curve has %d points, want 7", len(res.Points))
	}
	// Fig 1 signature: idle→1-core gap dominates the per-core slope.
	gap := float64(res.ResidualGap())
	slope := float64(res.Points[2].MaxPower - res.Points[1].MaxPower)
	if gap < 3*slope {
		t.Errorf("gap %.1f not ≫ slope %.1f", gap, slope)
	}
	// The band widens with load: stress functions spread in cost.
	if res.BandWidthAtFull() < 10 {
		t.Errorf("band at full load = %v, want >10 W", res.BandWidthAtFull())
	}
	// Linearity beyond the first core (max curve).
	for i := 3; i < len(res.Points); i++ {
		inc := float64(res.Points[i].MaxPower - res.Points[i-1].MaxPower)
		if math.Abs(inc-slope) > 0.5 {
			t.Errorf("increment at %d cores = %.2f, want ≈%.2f (linear)", i, inc, slope)
		}
	}
}

func TestPowerCurveFig1Dahu(t *testing.T) {
	res, err := PowerCurve(LabConfig(cpumodel.Dahu(), 1))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "On DAHU, the gap is considerably larger at 81 watts".
	if gap := float64(res.ResidualGap()); gap < 75 || gap > 90 {
		t.Errorf("DAHU gap = %.1f W, want ≈81", gap)
	}
	// Paper: ≈25 W of variation, more than 10 % of the maximum.
	band := float64(res.BandWidthAtFull())
	max := float64(res.Points[len(res.Points)-1].MaxPower)
	if band < 20 || band > 40 {
		t.Errorf("DAHU band = %.1f W, want ≈25-31", band)
	}
	if band/max < 0.10 {
		t.Errorf("band %.1f is %.1f%% of max %.1f, want >10%%", band, band/max*100, max)
	}
}

func TestPowerCurveFig3Concave(t *testing.T) {
	// Fig 3: with HT/turbo the curve is concave ("logarithmic").
	for _, spec := range cpumodel.Specs() {
		res, err := PowerCurve(ProdConfig(spec, 1))
		if err != nil {
			t.Fatal(err)
		}
		pts := res.Points
		if len(pts) != spec.Topology.LogicalCPUs()+1 {
			t.Fatalf("%s prod curve has %d points", spec.Name, len(pts))
		}
		early := float64(pts[2].MaxPower - pts[1].MaxPower)
		late := float64(pts[len(pts)-1].MaxPower - pts[len(pts)-2].MaxPower)
		if late >= early {
			t.Errorf("%s: late increment %.2f not below early %.2f (not concave)", spec.Name, late, early)
		}
		// Production peak exceeds the lab peak (turbo + SMT).
		lab, err := PowerCurve(LabConfig(spec, 1))
		if err != nil {
			t.Fatal(err)
		}
		if pts[len(pts)-1].MaxPower <= lab.Points[len(lab.Points)-1].MaxPower {
			t.Errorf("%s: production peak not above lab peak", spec.Name)
		}
	}
}

func TestCurveTableRendering(t *testing.T) {
	res, err := PowerCurve(LabConfig(cpumodel.SmallIntel(), 1))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Table().String()
	if !strings.Contains(s, "SMALL INTEL") || !strings.Contains(s, "Fig 1") {
		t.Errorf("table missing header: %q", s)
	}
}

func TestEq1UndershootFig2(t *testing.T) {
	res, err := Eq1Undershoot(LabConfig(cpumodel.SmallIntel(), 1), "fibonacci", "matrixprod", 3)
	if err != nil {
		t.Fatal(err)
	}
	// The naive estimates recover exactly the active powers...
	if math.Abs(float64(res.Naive0)-3*4.4) > 0.01 {
		t.Errorf("naive P0 = %v, want 13.2", res.Naive0)
	}
	// ...so their sum under-covers the machine power by R (idle included).
	if math.Abs(float64(res.Uncovered-res.Residual)) > 0.01 {
		t.Errorf("uncovered %v != residual %v", res.Uncovered, res.Residual)
	}
	if res.Residual < 30 {
		t.Errorf("residual = %v, want ≈36", res.Residual)
	}
}

func TestRatioScatterHeadlineSmallIntel(t *testing.T) {
	// §IV-A on SMALL INTEL: Scaphandre ≈3.15 % mean, ≈11.7 % max, worst
	// pairs involving FIBONACCI.
	ctx := LabContext(cpumodel.SmallIntel(), 1)
	res, err := RatioScatter(ctx, models.NewScaphandre())
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanAE < 0.02 || res.MeanAE > 0.055 {
		t.Errorf("mean AE = %.4f, want ≈0.031", res.MeanAE)
	}
	if res.MaxAE < 0.10 || res.MaxAE > 0.14 {
		t.Errorf("max AE = %.4f, want ≈0.117", res.MaxAE)
	}
	if !strings.Contains(res.WorstPair, "fibonacci") {
		t.Errorf("worst pair = %q, want a fibonacci pair", res.WorstPair)
	}
	if len(res.SameSize) != 198 || len(res.DiffSize) != 432 {
		t.Errorf("scenario split = %d/%d, want 198/432", len(res.SameSize), len(res.DiffSize))
	}
}

func TestRatioScatterHeadlineDahu(t *testing.T) {
	// §IV-A on DAHU: Scaphandre ≈2.7 % mean, 17.4 % max between QUEENS
	// and FLOAT64.
	ctx := LabContext(cpumodel.Dahu(), 1)
	res, err := RatioScatter(ctx, models.NewScaphandre())
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanAE < 0.02 || res.MaxAE < 0.15 || res.MaxAE > 0.20 {
		t.Errorf("DAHU scaphandre = %.4f/%.4f, want ≈0.027/0.174", res.MeanAE, res.MaxAE)
	}
	if !strings.Contains(res.WorstPair, "queens") || !strings.Contains(res.WorstPair, "float64") {
		t.Errorf("worst pair = %q, want queens vs float64", res.WorstPair)
	}
}

func TestLabEvaluationModelsOrdering(t *testing.T) {
	// On SMALL INTEL (no pathology), PowerAPI ≈ Scaphandre (paper: 3.12 %
	// vs 3.15 %); the F2 reference and the oracle are far better.
	ctx := LabContext(cpumodel.SmallIntel(), 1)
	results, err := LabEvaluation(ctx, models.NewOracle())
	if err != nil {
		t.Fatal(err)
	}
	sc, ok1 := results["scaphandre"]
	pa, ok2 := results["powerapi"]
	f2, ok3 := results["f2"]
	or, ok4 := results["oracle"]
	if !ok1 || !ok2 || !ok3 || !ok4 {
		t.Fatalf("missing models in %v", sortedKeys(results))
	}
	if math.Abs(sc.MeanAE-pa.MeanAE) > 0.01 {
		t.Errorf("scaphandre %.4f vs powerapi %.4f, want near-identical", sc.MeanAE, pa.MeanAE)
	}
	if f2.MeanAE > sc.MeanAE/3 {
		t.Errorf("F2 mean %.4f not ≪ scaphandre %.4f", f2.MeanAE, sc.MeanAE)
	}
	if or.MeanAE > 0.01 {
		t.Errorf("oracle mean = %.4f, want ≈0", or.MeanAE)
	}
}

func TestPowerAPIDahuPathologyNumbers(t *testing.T) {
	// §IV-A: PowerAPI on DAHU averages 16.23 % with a 49.1 % max.
	ctx := LabContext(cpumodel.Dahu(), 1)
	res, err := RatioScatter(ctx, models.NewPowerAPI(models.DefaultPowerAPIConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanAE < 0.10 || res.MeanAE > 0.25 {
		t.Errorf("DAHU powerapi mean = %.4f, want ≈0.16", res.MeanAE)
	}
	if res.MaxAE < 0.40 || res.MaxAE > 0.70 {
		t.Errorf("DAHU powerapi max = %.4f, want ≈0.49", res.MaxAE)
	}
}

func TestInstabilityFig8(t *testing.T) {
	res, err := Instability(LabConfig(cpumodel.Dahu(), 1), "matrixprod", "float64", 8, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 6 {
		t.Fatalf("%d runs, want 6", len(res.Runs))
	}
	if !res.FlipFlopped() {
		t.Error("identical runs never flip-flopped (Fig 8)")
	}
	// Degenerate runs attribute ≈90/10.
	lopsided := 0
	for _, r := range res.Runs {
		m := math.Max(r.Share["matrixprod"], r.Share["float64"])
		if m > 0.85 {
			lopsided++
		}
	}
	if lopsided == 0 {
		t.Error("no ≈90/10 attribution observed")
	}
	if !strings.Contains(res.Table().String(), "Fig 8") {
		t.Error("table title missing")
	}
}

func TestInstabilityStableOnSmallIntel(t *testing.T) {
	// Below the many-core threshold the attribution never flips.
	res, err := Instability(LabConfig(cpumodel.SmallIntel(), 1), "matrixprod", "float64", 3, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.FlipFlopped() {
		t.Error("SMALL INTEL runs flip-flopped")
	}
}

func TestResidualCappingSection4B(t *testing.T) {
	// Reduced function set for test speed; the full set runs in the bench.
	ctx := LabContext(cpumodel.SmallIntel(), 1)
	fns := []string{"fibonacci", "int64", "matrixprod"}
	res, err := ResidualCapping(ctx, models.NewScaphandre(), fns, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// The models cannot see residual dynamics: errors well above the
	// uniform-residual campaign's ≈3 %.
	if res.ResidualAware.MeanAE < 0.05 {
		t.Errorf("9a mean = %.4f, want ≫ 0.03", res.ResidualAware.MeanAE)
	}
	if res.NominalR0.MeanAE < 0.05 {
		t.Errorf("9b mean = %.4f, want ≫ 0.03", res.NominalR0.MeanAE)
	}
	// Same-size pairs dilute the error (§IV-B). On this reduced function
	// set the effect is small, so allow a hair of slack; the full-set
	// bench checks the real magnitudes.
	if res.NominalR0.MeanAEDiffSizeOnly < res.NominalR0.MeanAE-0.01 {
		t.Errorf("diff-size-only mean %.4f well below overall %.4f", res.NominalR0.MeanAEDiffSizeOnly, res.NominalR0.MeanAE)
	}
	// R0 = idle + nominal-frequency residual = 8 + 15.
	if math.Abs(float64(res.R0)-23) > 0.01 {
		t.Errorf("R0 = %v, want 23", res.R0)
	}
	if !strings.Contains(res.Table().String(), "Fig 9a") {
		t.Error("table missing Fig 9a row")
	}
}

func TestCappingScenariosComposition(t *testing.T) {
	scenarios, err := CappingScenarios([]string{"int64", "rand"}, []int{1, 2}, 6)
	if err != nil {
		t.Fatal(err)
	}
	// 2 fns × 2 sizes × {capped, uncapped} = 8 apps → C(8,2) = 28 pairs,
	// all within the 6-core budget.
	if len(scenarios) != 28 {
		t.Fatalf("%d scenarios, want 28", len(scenarios))
	}
	mixed, cappedOnly, uncappedOnly := 0, 0, 0
	for _, s := range scenarios {
		c0 := strings.HasSuffix(s.Apps[0].ID, "-capped")
		c1 := strings.HasSuffix(s.Apps[1].ID, "-capped")
		switch {
		case c0 && c1:
			cappedOnly++
		case !c0 && !c1:
			uncappedOnly++
		default:
			mixed++
		}
		// Pins must not overlap.
		used := map[int]bool{}
		for _, a := range s.Apps {
			for _, p := range a.Pinned {
				if used[p] {
					t.Fatalf("scenario %q: overlapping pin %d", s.Label(), p)
				}
				used[p] = true
			}
		}
	}
	if cappedOnly == 0 || uncappedOnly == 0 || mixed == 0 {
		t.Errorf("composition %d/%d/%d, want all three pair kinds", cappedOnly, uncappedOnly, mixed)
	}
}

func TestPhoronixReferenceTableV(t *testing.T) {
	cfg := ProdConfig(cpumodel.SmallIntel(), 1)
	refs, err := PhoronixReference(cfg, 6, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]struct {
		kJ  float64
		sec float64
	}{
		"cloverleaf":    {36.46, 516},
		"dacapo":        {13.51, 364},
		"build2":        {26.75, 384},
		"compress-7zip": {23.53, 396},
	}
	if len(refs) != len(want) {
		t.Fatalf("%d references, want %d", len(refs), len(want))
	}
	for _, r := range refs {
		w, ok := want[r.Name]
		if !ok {
			t.Errorf("unexpected app %s", r.Name)
			continue
		}
		// Energies within 5 % of Table V, durations within 2 s.
		if math.Abs(r.Energy.Kilojoules()-w.kJ)/w.kJ > 0.05 {
			t.Errorf("%s energy = %.2f kJ, want ≈%.2f", r.Name, r.Energy.Kilojoules(), w.kJ)
		}
		if math.Abs(r.Duration.Seconds()-w.sec) > 2 {
			t.Errorf("%s duration = %.0f s, want %.0f", r.Name, r.Duration.Seconds(), w.sec)
		}
		// Table V variability is sub-percent.
		if r.EnergyVarPct > 0.01 || r.DurationVarPct > 0.01 {
			t.Errorf("%s variability %.3f/%.3f, want <1%%", r.Name, r.EnergyVarPct, r.DurationVarPct)
		}
		if r.Trace == nil || r.Trace.Len() == 0 {
			t.Errorf("%s has no Fig 10 trace", r.Name)
		}
	}
	if !strings.Contains(TableV(refs).String(), "Table V") {
		t.Error("TableV title missing")
	}
}

func TestPhoronixReferenceErrors(t *testing.T) {
	cfg := ProdConfig(cpumodel.SmallIntel(), 1)
	if _, err := PhoronixReference(cfg, 6, 0, 1); err == nil {
		t.Error("zero repeats accepted")
	}
}

func TestContextIllustrationFig11(t *testing.T) {
	res, err := ContextIllustration(LabConfig(cpumodel.SmallIntel(), 1), models.NewScaphandre(), "int64", 2, 20*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	// P0 runs through all three context windows; despite constant
	// behaviour its attribution drifts heavily.
	if drift := res.AttributionDriftPct("P0"); drift < 20 {
		t.Errorf("P0 drift = %.1f%%, want >20%%", drift)
	}
	// P1 and P2 each live in a single context window: little drift.
	for _, id := range []string{"P1", "P2"} {
		if drift := res.AttributionDriftPct(id); drift > 10 {
			t.Errorf("%s drift = %.1f%%, want <10%%", id, drift)
		}
	}
	if len(res.Windows) != 2 {
		t.Errorf("windows = %v", res.Windows)
	}
	if !strings.Contains(res.Table().String(), "Fig 11") {
		t.Error("table title missing")
	}
}

func TestEnergyDivisionSectionV(t *testing.T) {
	cfg := ProdConfig(cpumodel.SmallIntel(), 1)
	res, err := EnergyDivision(cfg, models.NewScaphandre(), "build2", "dacapo", 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	// §V-A shape: the colocated total is below the solo sum, and the
	// bursty DACAPO loses proportionally much more than BUILD2.
	if res.TotalDropPct() <= 5 {
		t.Errorf("total drop = %.1f%%, want >5%%", res.TotalDropPct())
	}
	if res.Drop1Pct() <= res.Drop0Pct() {
		t.Errorf("dacapo drop %.1f%% not above build2 drop %.1f%%", res.Drop1Pct(), res.Drop0Pct())
	}
	if res.Drop0Pct() <= 0 || res.Drop1Pct() <= 0 {
		t.Errorf("drops %.1f%%/%.1f%%, want both positive", res.Drop0Pct(), res.Drop1Pct())
	}
	// Attribution curves exist for the figures.
	if res.Est0.Len() == 0 || res.Est1.Len() == 0 {
		t.Error("missing attribution traces")
	}
	if !strings.Contains(res.Table().String(), "build2") {
		t.Error("table missing app name")
	}
}

func TestColocationSweepSectionV(t *testing.T) {
	// CLOVERLEAF on DAHU with neighbours: attributed energy collapses.
	sweep, err := ColocationSweep(ProdConfig(cpumodel.Dahu(), 1), models.NewScaphandre(), "cloverleaf", 6, []int{0, 9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	solo, crowded := sweep[0], sweep[9]
	if crowded >= solo/2 {
		t.Errorf("9-neighbour energy %.1f kJ not ≪ solo %.1f kJ (paper: −56%%)", crowded.Kilojoules(), solo.Kilojoules())
	}
}

func TestEnergyDivisionErrors(t *testing.T) {
	cfg := ProdConfig(cpumodel.SmallIntel(), 1)
	if _, err := EnergyDivision(cfg, models.NewScaphandre(), "nosuch", "dacapo", 6, 1); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := ColocationSweep(cfg, models.NewScaphandre(), "nosuch", 6, []int{0}, 1); err == nil {
		t.Error("unknown app accepted in sweep")
	}
}

func TestErrorTableRendering(t *testing.T) {
	results := map[string]ScatterResult{
		"scaphandre": {Model: "scaphandre", Machine: "SMALL INTEL", MeanAE: 0.0315, MaxAE: 0.117, WorstPair: "fibonacci-3 || matrixprod-3"},
	}
	s := ErrorTable("SMALL INTEL", results).String()
	if !strings.Contains(s, "3.15 %") || !strings.Contains(s, "11.70 %") {
		t.Errorf("error table rendering: %q", s)
	}
}

func TestScatterDiagonality(t *testing.T) {
	pt := func(x, y float64) division.RatioPoint { return division.RatioPoint{X: x, Y: y} }
	res := ScatterResult{}
	res.SameSize = append(res.SameSize, pt(10, 10), pt(-20, -20))
	if d := res.Diagonality(); d != 0 {
		t.Errorf("diagonality of perfect points = %v", d)
	}
	res.DiffSize = append(res.DiffSize, pt(10, 0))
	if d := res.Diagonality(); math.Abs(d-10.0/3) > 1e-9 {
		t.Errorf("diagonality = %v, want 10/3", d)
	}
}

func TestPaperModelsList(t *testing.T) {
	fs := PaperModels()
	if len(fs) != 2 || fs[0].Name != "scaphandre" || fs[1].Name != "powerapi" {
		t.Errorf("PaperModels = %v", fs)
	}
}

func TestStressNamesComplete(t *testing.T) {
	if len(stressNames()) != len(workload.StressNames()) {
		t.Error("stressNames out of sync")
	}
}

func TestResidualAwareModelFixesC3(t *testing.T) {
	// The residual-aware model (calibrated R(f) + duty-based causation)
	// must beat CPU-time division on the §IV-B campaign while matching it
	// on the uniform-duty campaign.
	ctx := LabContext(cpumodel.SmallIntel(), 1)
	fns := []string{"fibonacci", "int64", "matrixprod"}
	ra := models.NewResidualAwareFromSpec(cpumodel.SmallIntel())

	raRes, err := ResidualCapping(ctx, ra, fns, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	scRes, err := ResidualCapping(ctx, models.NewScaphandre(), fns, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if raRes.ResidualAware.MeanAE >= scRes.ResidualAware.MeanAE/2 {
		t.Errorf("residual-aware 9a mean %.4f not well below scaphandre %.4f",
			raRes.ResidualAware.MeanAE, scRes.ResidualAware.MeanAE)
	}
	if raRes.NominalR0.MeanAE >= scRes.NominalR0.MeanAE {
		t.Errorf("residual-aware 9b mean %.4f not below scaphandre %.4f",
			raRes.NominalR0.MeanAE, scRes.NominalR0.MeanAE)
	}

	// Uniform duty: identical to Scaphandre.
	raC, err := RatioScatter(ctx, ra)
	if err != nil {
		t.Fatal(err)
	}
	scC, err := RatioScatter(ctx, models.NewScaphandre())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(raC.MeanAE-scC.MeanAE) > 1e-9 {
		t.Errorf("uncapped campaign differs: %.6f vs %.6f", raC.MeanAE, scC.MeanAE)
	}
}

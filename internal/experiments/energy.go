package experiments

import (
	"fmt"
	"time"

	"powerdiv/internal/machine"
	"powerdiv/internal/models"
	"powerdiv/internal/report"
	"powerdiv/internal/trace"
	"powerdiv/internal/units"
	"powerdiv/internal/vm"
	"powerdiv/internal/workload"
)

// EnergyDivisionResult is the Section V experiment for one application pair
// and one model: the solo (Table V) energies against the energies the model
// attributes when the applications run colocated in VMs — Fig 12
// (BUILD2 vs DACAPO) and Fig 13 (COMPRESS-7ZIP vs CLOVERLEAF), plus the
// §V-A numbers (BUILD2 −6 %, DACAPO −35 %, pair total −13 %).
type EnergyDivisionResult struct {
	Machine string
	Model   string
	App0    string
	App1    string
	// SoloEnergy are the isolated reference energies.
	SoloEnergy0, SoloEnergy1 units.Joules
	// PairTotal is the machine energy of the colocated run;
	// PairEnergy are the model-attributed energies within it.
	PairTotal                units.Joules
	PairEnergy0, PairEnergy1 units.Joules
	// Est are the attributed power traces (the figures' curves).
	Est0, Est1 *trace.Series
	// PairMachine is the machine power trace of the colocated run.
	PairMachine *trace.Series
}

// Drop0Pct returns app0's attributed-energy reduction relative to solo.
func (r EnergyDivisionResult) Drop0Pct() float64 { return dropPct(r.SoloEnergy0, r.PairEnergy0) }

// Drop1Pct returns app1's attributed-energy reduction relative to solo.
func (r EnergyDivisionResult) Drop1Pct() float64 { return dropPct(r.SoloEnergy1, r.PairEnergy1) }

// TotalDropPct returns the machine-level reduction: colocated total vs the
// sum of solo energies (the paper's "39 kJ … 33 kJ, or a reduction of 13%").
func (r EnergyDivisionResult) TotalDropPct() float64 {
	return dropPct(r.SoloEnergy0+r.SoloEnergy1, r.PairTotal)
}

func dropPct(solo, pair units.Joules) float64 {
	if solo == 0 {
		return 0
	}
	return float64(solo-pair) / float64(solo) * 100
}

// Table renders the Section V energy comparison.
func (r EnergyDivisionResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("§V energy division — %s vs %s (%s on %s)", r.App0, r.App1, r.Model, r.Machine),
		"quantity", "solo (kJ)", "colocated (kJ)", "drop %",
	)
	t.AddRow(r.App0,
		fmt.Sprintf("%.2f", r.SoloEnergy0.Kilojoules()),
		fmt.Sprintf("%.2f", r.PairEnergy0.Kilojoules()),
		fmt.Sprintf("%.1f", r.Drop0Pct()))
	t.AddRow(r.App1,
		fmt.Sprintf("%.2f", r.SoloEnergy1.Kilojoules()),
		fmt.Sprintf("%.2f", r.PairEnergy1.Kilojoules()),
		fmt.Sprintf("%.1f", r.Drop1Pct()))
	t.AddRow("total",
		fmt.Sprintf("%.2f", (r.SoloEnergy0+r.SoloEnergy1).Kilojoules()),
		fmt.Sprintf("%.2f", r.PairTotal.Kilojoules()),
		fmt.Sprintf("%.1f", r.TotalDropPct()))
	return t
}

// EnergyDivision runs the Section V experiment: both applications solo
// (reference), then colocated in vcpus-sized VMs, with the model's per-tick
// power estimates integrated into attributed energies.
func EnergyDivision(cfg machine.Config, factory models.Factory, app0, app1 string, vcpus int, seed int64) (EnergyDivisionResult, error) {
	res := EnergyDivisionResult{Machine: cfg.Spec.Name, Model: factory.Name, App0: app0, App1: app1}
	w0, ok := workload.PhoronixByName(app0)
	if !ok {
		return res, fmt.Errorf("unknown application %q", app0)
	}
	w1, ok := workload.PhoronixByName(app1)
	if !ok {
		return res, fmt.Errorf("unknown application %q", app1)
	}
	maxDur := w0.Duration()
	if d := w1.Duration(); d > maxDur {
		maxDur = d
	}
	maxDur += time.Minute

	solo := func(name string, w workload.Workload, s int64) (units.Joules, error) {
		runCfg := cfg
		runCfg.Seed = s
		run, err := vm.SimulateColocation(runCfg, []vm.VM{{Name: name, VCPUs: vcpus, App: w}}, maxDur)
		if err != nil {
			return 0, err
		}
		return run.Energy(), nil
	}
	var err error
	if res.SoloEnergy0, err = solo(app0, w0, seed+1); err != nil {
		return res, err
	}
	if res.SoloEnergy1, err = solo(app1, w1, seed+2); err != nil {
		return res, err
	}

	pairCfg := cfg
	pairCfg.Seed = seed + 3
	run, err := vm.SimulateColocation(pairCfg, []vm.VM{
		{Name: app0, VCPUs: vcpus, App: w0},
		{Name: app1, VCPUs: vcpus, App: w1},
	}, maxDur)
	if err != nil {
		return res, err
	}
	res.PairTotal = run.Energy()
	res.PairMachine = run.PowerSeries()
	est := models.ReplayDense(factory.New(seed), models.RunTicksDense(run))
	res.Est0, res.Est1 = trace.New(), trace.New()
	tick := run.Tick()
	slot0, ok0 := run.Roster.Slot(app0)
	slot1, ok1 := run.Roster.Slot(app1)
	for i, rec := range run.Ticks {
		if !est.OK[i] {
			continue
		}
		row := est.Row(i)
		if ok0 && rec.Procs[slot0].Present() {
			p := row[slot0]
			res.Est0.Append(rec.At, float64(p))
			res.PairEnergy0 += p.Energy(tick)
		}
		if ok1 && rec.Procs[slot1].Present() {
			p := row[slot1]
			res.Est1.Append(rec.At, float64(p))
			res.PairEnergy1 += p.Energy(tick)
		}
	}
	return res, nil
}

// ColocationSweep reproduces the §V CLOVERLEAF-on-DAHU observation: the
// same application colocated with a growing number of identical neighbour
// VMs sees its attributed energy shrink dramatically (the paper reports
// 60 kJ alone down to 26 kJ with 9 neighbours, −56 %). It returns the
// attributed energy of the observed application for each neighbour count.
func ColocationSweep(cfg machine.Config, factory models.Factory, app string, vcpus int, neighbours []int, seed int64) (map[int]units.Joules, error) {
	w, ok := workload.PhoronixByName(app)
	if !ok {
		return nil, fmt.Errorf("unknown application %q", app)
	}
	out := map[int]units.Joules{}
	for _, n := range neighbours {
		vms := []vm.VM{{Name: app, VCPUs: vcpus, App: w}}
		for i := 0; i < n; i++ {
			vms = append(vms, vm.VM{Name: fmt.Sprintf("neighbour-%d", i), VCPUs: vcpus, App: w})
		}
		runCfg := cfg
		runCfg.Seed = seed + int64(n)
		run, err := vm.SimulateColocation(runCfg, vms, w.Duration()+time.Minute)
		if err != nil {
			return nil, fmt.Errorf("colocation with %d neighbours: %w", n, err)
		}
		est := models.ReplayDense(factory.New(seed+int64(n)), models.RunTicksDense(run))
		var e units.Joules
		tick := run.Tick()
		if slot, ok := run.Roster.Slot(app); ok {
			for i := range run.Ticks {
				if est.OK[i] {
					// Absent slots hold zero, so no presence check is needed.
					e += est.Row(i)[slot].Energy(tick)
				}
			}
		}
		out[n] = e
	}
	return out, nil
}

package experiments

import (
	"fmt"
	"sort"

	"powerdiv/internal/isoest"
	"powerdiv/internal/models"
	"powerdiv/internal/perfcnt"
	"powerdiv/internal/protocol"
	"powerdiv/internal/report"
)

// ProfileResult is the evaluation of the paper's §VI proposal: a
// profile-driven isolated-consumption estimator and the F2 division model
// built on it.
type ProfileResult struct {
	Machine string
	// TrainError is the in-sample mean relative error of the per-core
	// power predictions.
	TrainError float64
	// LeaveOneOut maps workload → held-out prediction error.
	LeaveOneOut map[string]float64
	// ProfileF2 and Scaphandre are the campaign results of the
	// profile-driven F2 model and the CPU-time baseline on the same
	// scenarios.
	ProfileF2  ScatterResult
	Scaphandre ScatterResult
}

// MeanLOO returns the mean leave-one-out prediction error.
func (r ProfileResult) MeanLOO() float64 {
	if len(r.LeaveOneOut) == 0 {
		return 0
	}
	var sum float64
	for _, e := range r.LeaveOneOut {
		sum += e
	}
	return sum / float64(len(r.LeaveOneOut))
}

// Table renders the evaluation summary.
func (r ProfileResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("§VI profile-based F2 — %s", r.Machine),
		"metric", "value",
	)
	t.AddRow("train error (per-core power)", report.Percent(r.TrainError))
	t.AddRow("leave-one-out error", report.Percent(r.MeanLOO()))
	t.AddRow("profile-F2 campaign mean AE", report.Percent(r.ProfileF2.MeanAE))
	t.AddRow("profile-F2 campaign max AE", report.Percent(r.ProfileF2.MaxAE))
	t.AddRow("scaphandre campaign mean AE", report.Percent(r.Scaphandre.MeanAE))
	t.AddRow("scaphandre campaign max AE", report.Percent(r.Scaphandre.MaxAE))
	return t
}

// LOOTable renders the per-workload leave-one-out errors.
func (r ProfileResult) LOOTable() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("§VI leave-one-out prediction error — %s", r.Machine),
		"workload", "relative error",
	)
	names := make([]string, 0, len(r.LeaveOneOut))
	for n := range r.LeaveOneOut {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t.AddRow(n, report.Percent(r.LeaveOneOut[n]))
	}
	return t
}

// CollectProfileTraining runs each stress function alone (protocol
// phase 1, instrumented) and extracts its training sample: counter rates
// per core-second and isolated active power per core, both over the
// stable window.
func CollectProfileTraining(ctx protocol.Context, fns []string, threads int) ([]isoest.Sample, error) {
	var out []isoest.Sample
	for _, fn := range fns {
		app, err := protocol.StressApp(fn, threads)
		if err != nil {
			return nil, err
		}
		baseline, run, err := protocol.MeasureBaseline(ctx, app)
		if err != nil {
			return nil, err
		}
		// Aggregate counters and CPU time over the whole run; the loads
		// are stationary, so rates equal the stable-window rates.
		var counters perfcnt.Counters
		var cpuSeconds float64
		slot, hasSlot := run.Roster.Slot(app.ID)
		if hasSlot {
			for _, rec := range run.Ticks {
				if pt := rec.Procs[slot]; pt.Present() {
					counters = counters.Add(pt.Counters)
					cpuSeconds += pt.CPUTime.Seconds()
				}
			}
		}
		if cpuSeconds <= 0 {
			return nil, fmt.Errorf("experiments: %s consumed no CPU", fn)
		}
		out = append(out, isoest.Sample{
			Workload:      fn,
			Rates:         counters.Scale(1 / cpuSeconds),
			ActivePerCore: baseline.ActivePerCore(),
		})
	}
	return out, nil
}

// ProfileF2Evaluation implements the §VI evaluation: train the estimator
// on solo profiles of all stress functions, then run the full §IV-A
// campaign with the profile-driven F2 model, against the Scaphandre
// baseline on the identical scenarios.
func ProfileF2Evaluation(ctx protocol.Context) (ProfileResult, error) {
	res := ProfileResult{Machine: ctx.Machine.Spec.Name}
	samples, err := CollectProfileTraining(ctx, stressNames(), 2)
	if err != nil {
		return res, err
	}
	est, err := isoest.Train(samples)
	if err != nil {
		return res, err
	}
	res.TrainError = est.Evaluate(samples)
	if res.LeaveOneOut, err = isoest.LeaveOneOut(samples); err != nil {
		return res, err
	}

	scenarios, err := protocol.StressPairs(stressNames(), protocol.SizesFor(ctx.Machine))
	if err != nil {
		return res, err
	}
	profEvs, err := protocol.EvaluateCampaignParallel(ctx, scenarios, isoest.NewProfileF2(est), protocol.ObjectiveActive, 0)
	if err != nil {
		return res, err
	}
	res.ProfileF2 = scatterFromEvaluations("profile-f2", res.Machine, profEvs)
	scEvs, err := protocol.EvaluateCampaignParallel(ctx, scenarios, models.NewScaphandre(), protocol.ObjectiveActive, 0)
	if err != nil {
		return res, err
	}
	res.Scaphandre = scatterFromEvaluations("scaphandre", res.Machine, scEvs)
	return res, nil
}

package experiments

import (
	"fmt"
	"time"

	"powerdiv/internal/machine"
	"powerdiv/internal/report"
	"powerdiv/internal/units"
	"powerdiv/internal/workload"
)

// CurvePoint is one point of the Fig 1 / Fig 3 machine power curves: the
// minimum and maximum mean power observed across the stress functions at a
// given CPU load.
type CurvePoint struct {
	// Threads is the number of busy threads (0 = idle machine).
	Threads int
	// LoadPct is the load relative to the schedulable CPUs (the figures'
	// x axis).
	LoadPct float64
	// MinPower and MaxPower bound the band across stress functions.
	MinPower, MaxPower units.Watts
}

// CurveResult is a full load sweep on one machine configuration.
type CurveResult struct {
	Machine        string
	Hyperthreading bool
	Turbo          bool
	Points         []CurvePoint
}

// PowerCurve reproduces the Fig 1 (lab) / Fig 3 (production) measurement:
// every stress function of Table III is run with 0..N threads and the
// min/max mean power per load level is recorded. N is the number of
// schedulable CPUs (physical cores in the lab context, logical CPUs with
// hyperthreading).
func PowerCurve(cfg machine.Config) (CurveResult, error) {
	res := CurveResult{
		Machine:        cfg.Spec.Name,
		Hyperthreading: cfg.Hyperthreading,
		Turbo:          cfg.Turbo,
	}
	n := cfg.Spec.Topology.PhysicalCores()
	if cfg.Hyperthreading {
		n = cfg.Spec.Topology.LogicalCPUs()
	}
	const runFor = 3 * time.Second
	idle, err := stressRun(cfg, nil, runFor)
	if err != nil {
		return res, err
	}
	idleP := units.Watts(idle.TruePowerSeries().Mean())
	res.Points = append(res.Points, CurvePoint{Threads: 0, LoadPct: 0, MinPower: idleP, MaxPower: idleP})

	for threads := 1; threads <= n; threads++ {
		var minP, maxP units.Watts
		first := true
		for _, w := range workload.StressSet() {
			run, err := stressRun(cfg, []machine.Proc{{
				ID: w.Name, Workload: w, Threads: threads,
			}}, runFor)
			if err != nil {
				return res, fmt.Errorf("curve %s ×%d: %w", w.Name, threads, err)
			}
			p := units.Watts(run.TruePowerSeries().Mean())
			if first || p < minP {
				minP = p
			}
			if first || p > maxP {
				maxP = p
			}
			first = false
		}
		res.Points = append(res.Points, CurvePoint{
			Threads:  threads,
			LoadPct:  float64(threads) / float64(n) * 100,
			MinPower: minP,
			MaxPower: maxP,
		})
	}
	return res, nil
}

// BandWidthAtFull returns the max−min spread at 100 % load — the paper
// reports ≈25 W on DAHU ("more than 10% of its maximum power consumption").
func (r CurveResult) BandWidthAtFull() units.Watts {
	if len(r.Points) == 0 {
		return 0
	}
	last := r.Points[len(r.Points)-1]
	return last.MaxPower - last.MinPower
}

// ResidualGap returns the idle→one-thread jump of the max curve — the
// paper's headline observation (≈81 W on DAHU, ≈22–28 W on SMALL INTEL).
func (r CurveResult) ResidualGap() units.Watts {
	if len(r.Points) < 2 {
		return 0
	}
	return r.Points[1].MaxPower - r.Points[0].MaxPower
}

// Table renders the curve as a report table.
func (r CurveResult) Table() *report.Table {
	mode := "HT/TB off (Fig 1)"
	if r.Hyperthreading || r.Turbo {
		mode = "HT/TB on (Fig 3)"
	}
	t := report.NewTable(
		fmt.Sprintf("Power curve — %s, %s", r.Machine, mode),
		"threads", "load %", "min W", "max W",
	)
	for _, p := range r.Points {
		t.AddRowf(p.Threads, p.LoadPct, float64(p.MinPower), float64(p.MaxPower))
	}
	return t
}

// Eq1Result quantifies Fig 2: applying the naive Equation 1 definition to
// a parallel pair under-covers the machine power by exactly the residual.
type Eq1Result struct {
	// CPair is the machine power of P0 ∥ P1.
	CPair units.Watts
	// CSolo0 and CSolo1 are the solo machine powers.
	CSolo0, CSolo1 units.Watts
	// Naive0 and Naive1 are the Eq 1 estimates Ce = C_S − C_{S/P_i}.
	Naive0, Naive1 units.Watts
	// Residual is the ground-truth residual (idle included) of the pair
	// run; Uncovered = CPair − Naive0 − Naive1 should equal it.
	Residual  units.Watts
	Uncovered units.Watts
}

// Eq1Undershoot runs two stress applications solo and in parallel on the
// lab-context machine and evaluates the naive Equation 1 attribution.
func Eq1Undershoot(cfg machine.Config, fn0, fn1 string, threads int) (Eq1Result, error) {
	var res Eq1Result
	w0, ok := workload.StressByName(fn0)
	if !ok {
		return res, fmt.Errorf("unknown stress function %q", fn0)
	}
	w1, ok := workload.StressByName(fn1)
	if !ok {
		return res, fmt.Errorf("unknown stress function %q", fn1)
	}
	const runFor = 5 * time.Second
	solo0, err := stressRun(cfg, []machine.Proc{{ID: "p0", Workload: w0, Threads: threads}}, runFor)
	if err != nil {
		return res, err
	}
	solo1, err := stressRun(cfg, []machine.Proc{{ID: "p1", Workload: w1, Threads: threads}}, runFor)
	if err != nil {
		return res, err
	}
	pair, err := stressRun(cfg, []machine.Proc{
		{ID: "p0", Workload: w0, Threads: threads},
		{ID: "p1", Workload: w1, Threads: threads},
	}, runFor)
	if err != nil {
		return res, err
	}
	res.CPair = units.Watts(pair.TruePowerSeries().Mean())
	res.CSolo0 = units.Watts(solo0.TruePowerSeries().Mean())
	res.CSolo1 = units.Watts(solo1.TruePowerSeries().Mean())
	// C_{S/P0} is the scenario without P0, i.e. P1 alone.
	res.Naive0 = res.CPair - res.CSolo1
	res.Naive1 = res.CPair - res.CSolo0
	res.Residual = units.Watts(pair.ResidualSeries().Mean()) + units.Watts(pair.Ticks[0].Idle)
	res.Uncovered = res.CPair - res.Naive0 - res.Naive1
	return res, nil
}

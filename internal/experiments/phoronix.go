package experiments

import (
	"fmt"
	"math"
	"time"

	"powerdiv/internal/machine"
	"powerdiv/internal/report"
	"powerdiv/internal/trace"
	"powerdiv/internal/units"
	"powerdiv/internal/vm"
	"powerdiv/internal/workload"
)

// AppReference is one Phoronix application's Table V reference row: energy
// and runtime of solo execution in a 6-vCPU VM, with run-to-run
// variability over the repetitions, plus the Fig 10 power trace of one run.
type AppReference struct {
	Name string
	// Energy and Duration are the means over the repetitions.
	Energy   units.Joules
	Duration time.Duration
	// EnergyVarPct / DurationVarPct are the relative spreads
	// (max−min)/mean, the paper's parenthesised variability.
	EnergyVarPct   float64
	DurationVarPct float64
	// Trace is the machine power trace of the first run (Fig 10).
	Trace *trace.Series
}

// PhoronixReference reproduces Table V and Fig 10: each Table IV
// application runs `repeats` times alone in a 6-vCPU VM on the machine
// (the paper ran three repetitions on SMALL INTEL with HT/turbo enabled).
func PhoronixReference(cfg machine.Config, vcpus, repeats int, seed int64) ([]AppReference, error) {
	if repeats < 1 {
		return nil, fmt.Errorf("experiments: repeats must be ≥1")
	}
	var out []AppReference
	for _, app := range workload.PhoronixSet() {
		ref := AppReference{Name: app.Name}
		var energies []float64
		var durations []float64
		for rep := 0; rep < repeats; rep++ {
			runCfg := cfg
			runCfg.Seed = seed + int64(rep)*101
			run, err := vm.SimulateColocation(runCfg, []vm.VM{
				{Name: app.Name, VCPUs: vcpus, App: app},
			}, app.Duration()+time.Minute)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s run %d: %w", app.Name, rep, err)
			}
			energies = append(energies, float64(run.Energy()))
			durations = append(durations, run.Duration.Seconds())
			if rep == 0 {
				ref.Trace = run.PowerSeries()
			}
		}
		ref.Energy = units.Joules(mean(energies))
		ref.Duration = time.Duration(mean(durations) * float64(time.Second))
		ref.EnergyVarPct = relSpread(energies)
		ref.DurationVarPct = relSpread(durations)
		out = append(out, ref)
	}
	return out, nil
}

// TableV renders the references as the paper's Table V.
func TableV(refs []AppReference) *report.Table {
	t := report.NewTable(
		"Table V — Phoronix reference values (solo, 6-vCPU VM)",
		"application", "C_S (kJ)", "var %", "execution time (s)", "var %",
	)
	for _, r := range refs {
		t.AddRow(
			r.Name,
			fmt.Sprintf("%.2f", r.Energy.Kilojoules()),
			fmt.Sprintf("%.1f", r.EnergyVarPct*100),
			fmt.Sprintf("%.0f", r.Duration.Seconds()),
			fmt.Sprintf("%.1f", r.DurationVarPct*100),
		)
	}
	return t
}

func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

func relSpread(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	m := mean(vals)
	if m == 0 {
		return 0
	}
	return (hi - lo) / m
}

package experiments

import (
	"fmt"

	"powerdiv/internal/division"
	"powerdiv/internal/models"
	"powerdiv/internal/protocol"
	"powerdiv/internal/report"
	"powerdiv/internal/units"
)

// CappingStats aggregates one objective's scores over the capped-vs-uncapped
// campaign.
type CappingStats struct {
	MeanAE float64
	MaxAE  float64
	// MeanAEDiffSizeOnly excludes same-thread-count pairs, which §IV-B
	// notes hide most of the error ("by removing them from the evaluation
	// set, the average error rate increases to 11.3%").
	MeanAEDiffSizeOnly float64
	Points             []division.RatioPoint
}

// CappingResult is the §IV-B experiment for one model: stress functions
// capped to 50 % CPU time (cgroup-style, pinned one process per core) run
// against uncapped ones. The capped processes keep their cores at a lower
// effective duty, producing less residual when isolated — residual the
// models cannot see.
type CappingResult struct {
	Machine string
	Model   string
	// R0 is the machine's nominal-frequency residual (idle included), the
	// Fig 9b reference.
	R0 units.Watts
	// ResidualAware scores against the Fig 9a objective (residual deltas
	// allocated to the application causing them).
	ResidualAware CappingStats
	// NominalR0 scores against the Fig 9b objective (C_{P_i} − R0 ratios).
	NominalR0 CappingStats
}

// Table renders the §IV-B summary for the model.
func (r CappingResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("§IV-B residual experiment — %s on %s (R0 = %s)", r.Model, r.Machine, r.R0),
		"objective", "mean AE", "max AE", "mean AE (diff sizes only)",
	)
	t.AddRow("residual-aware (Fig 9a)",
		report.Percent(r.ResidualAware.MeanAE),
		report.Percent(r.ResidualAware.MaxAE),
		report.Percent(r.ResidualAware.MeanAEDiffSizeOnly))
	t.AddRow("nominal-residual (Fig 9b)",
		report.Percent(r.NominalR0.MeanAE),
		report.Percent(r.NominalR0.MaxAE),
		report.Percent(r.NominalR0.MeanAEDiffSizeOnly))
	return t
}

// cappingApp builds one §IV-B application: a stress function at a size,
// optionally capped to 50 % CPU time, pinned one thread per core starting
// at the given core (the paper pins "one process per core" to prevent
// context switching).
func cappingApp(fn string, threads int, capped bool, firstCore int) (protocol.AppSpec, error) {
	app, err := protocol.StressApp(fn, threads)
	if err != nil {
		return app, err
	}
	if capped {
		app.ID = fmt.Sprintf("%s-%d-capped", fn, threads)
		app.CPUQuota = 0.5
	}
	app.Pinned = pinRange(firstCore, threads)
	return app, nil
}

// CappingScenarios builds the §IV-B scenario list: every unordered pair
// drawn from the union of capped and uncapped stress applications across
// the given sizes — capped-vs-uncapped pairs (where the isolated residuals
// differ), plus capped-vs-capped and uncapped-vs-uncapped pairs, as in the
// paper's evaluation set ("these rates are primarily due to applications
// of the same size"). Pairs whose pinned cores would overflow the machine
// are skipped.
func CappingScenarios(fns []string, sizes []int, maxCores int) ([]protocol.Scenario, error) {
	type appKey struct {
		fn     string
		size   int
		capped bool
	}
	var keys []appKey
	for _, fn := range fns {
		for _, n := range sizes {
			keys = append(keys, appKey{fn, n, false}, appKey{fn, n, true})
		}
	}
	var out []protocol.Scenario
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			a, b := keys[i], keys[j]
			if a.size+b.size > maxCores {
				continue
			}
			// Skip the degenerate pairing of an application with itself.
			if a.fn == b.fn && a.size == b.size && a.capped == b.capped {
				continue
			}
			app0, err := cappingApp(a.fn, a.size, a.capped, 0)
			if err != nil {
				return nil, err
			}
			app1, err := cappingApp(b.fn, b.size, b.capped, a.size)
			if err != nil {
				return nil, err
			}
			if app0.ID == app1.ID {
				continue
			}
			out = append(out, protocol.Scenario{Apps: []protocol.AppSpec{app0, app1}})
		}
	}
	return out, nil
}

func pinRange(from, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = from + i
	}
	return out
}

// ResidualCapping runs the §IV-B experiment for one model. The scenario
// list pairs each capped function/size with each uncapped function/size
// subject to the machine's core budget.
func ResidualCapping(ctx protocol.Context, factory models.Factory, fns []string, sizes []int) (CappingResult, error) {
	res := CappingResult{Machine: ctx.Machine.Spec.Name, Model: factory.Name}

	// R0: residual at the machine's minimum frequency, plus idle — the
	// paper's "residual consumption of the machine at nominal frequency".
	res.R0 = ctx.Machine.Spec.Power.Idle + ctx.Machine.Spec.Power.Residual.At(ctx.Machine.Spec.Freq.Min)

	maxCores := ctx.Machine.Spec.Topology.PhysicalCores()
	if ctx.Machine.Hyperthreading {
		maxCores = ctx.Machine.Spec.Topology.LogicalCPUs()
	}
	scenarios, err := CappingScenarios(fns, sizes, maxCores)
	if err != nil {
		return res, err
	}
	baselines, err := protocol.MeasureBaselines(ctx, protocol.AppsOf(scenarios))
	if err != nil {
		return res, err
	}
	objectives := []protocol.Objective{protocol.ObjectiveResidualAware, protocol.ObjectiveNominalResidual}
	stats := make([]CappingStats, len(objectives))
	diffSum := make([]float64, len(objectives))
	var diffN int
	for _, s := range scenarios {
		evs, err := protocol.EvaluatePairMulti(ctx, s, factory, baselines, objectives, res.R0)
		if err != nil {
			return res, err
		}
		for i, ev := range evs {
			stats[i].MeanAE += ev.AE
			if ev.AE > stats[i].MaxAE {
				stats[i].MaxAE = ev.AE
			}
			stats[i].Points = append(stats[i].Points, ev.Point)
			if !s.SameSize() {
				diffSum[i] += ev.AE
			}
		}
		if !s.SameSize() {
			diffN++
		}
	}
	for i := range stats {
		if len(scenarios) > 0 {
			stats[i].MeanAE /= float64(len(scenarios))
		}
		if diffN > 0 {
			stats[i].MeanAEDiffSizeOnly = diffSum[i] / float64(diffN)
		}
	}
	res.ResidualAware, res.NominalR0 = stats[0], stats[1]
	return res, nil
}

package experiments

import (
	"fmt"

	"powerdiv/internal/division"
	"powerdiv/internal/models"
	"powerdiv/internal/protocol"
	"powerdiv/internal/report"
	"powerdiv/internal/units"
	"powerdiv/internal/workload"
)

// ScatterResult is one model's full stress campaign on one machine: the
// ratio scatter points of Fig 4–7 plus the §IV-A error statistics.
type ScatterResult struct {
	Model   string
	Machine string
	// SameSize and DiffSize split the points as the figures' (a)/(b)
	// panels do.
	SameSize []division.RatioPoint
	DiffSize []division.RatioPoint
	// MeanAE / MaxAE are the Eq 5 statistics over all scenarios.
	MeanAE float64
	MaxAE  float64
	// WorstPair is the scenario reaching MaxAE.
	WorstPair string
}

// Diagonality returns the mean absolute deviation |y − x| of all points
// from the ideal y = x line, in ratio-percent units.
func (r ScatterResult) Diagonality() float64 {
	var sum float64
	var n int
	for _, p := range append(append([]division.RatioPoint{}, r.SameSize...), r.DiffSize...) {
		d := p.Y - p.X
		if d < 0 {
			d = -d
		}
		sum += d
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Table renders the campaign summary.
func (r ScatterResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Ratio campaign — %s on %s", r.Model, r.Machine),
		"metric", "value",
	)
	t.AddRow("scenarios (same size)", fmt.Sprint(len(r.SameSize)))
	t.AddRow("scenarios (diff size)", fmt.Sprint(len(r.DiffSize)))
	t.AddRow("mean AE (Eq 5)", report.Percent(r.MeanAE))
	t.AddRow("max AE", report.Percent(r.MaxAE))
	t.AddRow("worst pair", r.WorstPair)
	t.AddRow("mean |y−x| (ratio pts)", fmt.Sprintf("%.1f", r.Diagonality()))
	return t
}

// PointsTable renders the scatter points (the figures' data series).
func (r ScatterResult) PointsTable() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Ratio points — %s on %s", r.Model, r.Machine),
		"pair", "panel", "x (sequential %)", "y (parallel %)",
	)
	for _, p := range r.SameSize {
		t.AddRowf(p.Label, "same-size", p.X, p.Y)
	}
	for _, p := range r.DiffSize {
		t.AddRowf(p.Label, "diff-size", p.X, p.Y)
	}
	return t
}

// scatterFromEvaluations folds per-scenario evaluations into a ScatterResult.
func scatterFromEvaluations(model, machineName string, evs []protocol.Evaluation) ScatterResult {
	res := ScatterResult{Model: model, Machine: machineName}
	sum := protocol.Summarize(model, evs)
	res.MeanAE, res.MaxAE, res.WorstPair = sum.MeanAE, sum.MaxAE, sum.WorstScenario
	for _, ev := range evs {
		if ev.Scenario.SameSize() {
			res.SameSize = append(res.SameSize, ev.Point)
		} else {
			res.DiffSize = append(res.DiffSize, ev.Point)
		}
	}
	return res
}

// RatioScatter runs the Fig 4–7 campaign: every stress pair at the
// machine's size ladder, one model, Eq 3 objective.
func RatioScatter(ctx protocol.Context, factory models.Factory) (ScatterResult, error) {
	scenarios, err := protocol.StressPairs(stressNames(), protocol.SizesFor(ctx.Machine))
	if err != nil {
		return ScatterResult{}, err
	}
	evs, err := protocol.EvaluateCampaign(ctx, scenarios, factory, protocol.ObjectiveActive, 0)
	if err != nil {
		return ScatterResult{}, err
	}
	return scatterFromEvaluations(factory.Name, ctx.Machine.Spec.Name, evs), nil
}

// LabEvaluation reproduces the §IV-A error table: all paper models (plus
// any extras passed in) on one machine's stress campaign, sharing the
// phase 1 baselines. It returns one ScatterResult per model, keyed by
// model name.
func LabEvaluation(ctx protocol.Context, extra ...models.Factory) (map[string]ScatterResult, error) {
	return labEvaluation(ctx, false, extra...)
}

// LabEvaluationStreaming is LabEvaluation on the fused streaming pipeline
// (protocol.EvaluateModelsStreaming): bit-identical error tables with
// bounded memory — each scenario is simulated once and never materialized.
// The CLIs default to it; the materialized form remains for callers that
// also want the cached runs (timelines, profiles).
func LabEvaluationStreaming(ctx protocol.Context, extra ...models.Factory) (map[string]ScatterResult, error) {
	return labEvaluation(ctx, true, extra...)
}

func labEvaluation(ctx protocol.Context, streaming bool, extra ...models.Factory) (map[string]ScatterResult, error) {
	scenarios, err := protocol.StressPairs(stressNames(), protocol.SizesFor(ctx.Machine))
	if err != nil {
		return nil, err
	}
	factories := func(baselines map[string]division.Baseline) []models.Factory {
		fs := append(PaperModels(), extra...)
		// The F2 reference model needs the baselines.
		perCore := map[string]units.Watts{}
		for id, b := range baselines {
			perCore[id] = b.ActivePerCore()
		}
		fs = append(fs, models.NewF2(perCore))
		return fs
	}
	evaluate := protocol.EvaluateModels
	if streaming {
		evaluate = protocol.EvaluateModelsStreaming
	}
	byModel, err := evaluate(ctx, scenarios, factories, protocol.ObjectiveActive, 0)
	if err != nil {
		return nil, err
	}
	out := map[string]ScatterResult{}
	for name, evs := range byModel {
		out[name] = scatterFromEvaluations(name, ctx.Machine.Spec.Name, evs)
	}
	return out, nil
}

// ErrorTable renders the §IV-A summary across models.
func ErrorTable(machineName string, results map[string]ScatterResult) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("§IV-A model error summary — %s", machineName),
		"model", "mean AE", "max AE", "worst pair",
	)
	for _, name := range sortedKeys(results) {
		r := results[name]
		t.AddRow(name, report.Percent(r.MeanAE), report.Percent(r.MaxAE), r.WorstPair)
	}
	return t
}

func sortedKeys(m map[string]ScatterResult) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func stressNames() []string {
	return workload.StressNames()
}

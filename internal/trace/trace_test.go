package trace

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestNewSortsSamples(t *testing.T) {
	s := New(
		Sample{At: 2 * time.Second, Value: 2},
		Sample{At: 0, Value: 0},
		Sample{At: time.Second, Value: 1},
	)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate after New: %v", err)
	}
	for i := 0; i < 3; i++ {
		if s.At(i).Value != float64(i) {
			t.Errorf("sample %d value = %v, want %d", i, s.At(i).Value, i)
		}
	}
}

func TestFromValues(t *testing.T) {
	s := FromValues(100*time.Millisecond, 1, 2, 3)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.At(2).At != 200*time.Millisecond {
		t.Errorf("At(2).At = %v, want 200ms", s.At(2).At)
	}
	if s.Duration() != 200*time.Millisecond {
		t.Errorf("Duration = %v, want 200ms", s.Duration())
	}
}

func TestAppendPanicsOnRegression(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Append out of order did not panic")
		}
	}()
	s := New()
	s.Append(time.Second, 1)
	s.Append(0, 2)
}

func TestValidateDetectsDisorder(t *testing.T) {
	s := &Series{samples: []Sample{{At: time.Second}, {At: 0}}}
	if err := s.Validate(); !errors.Is(err, ErrUnordered) {
		t.Errorf("Validate = %v, want ErrUnordered", err)
	}
}

func TestStats(t *testing.T) {
	s := FromValues(time.Second, 10, 20, 30, 40)
	if got := s.Mean(); got != 25 {
		t.Errorf("Mean = %v, want 25", got)
	}
	if got := s.Min(); got != 10 {
		t.Errorf("Min = %v, want 10", got)
	}
	if got := s.Max(); got != 40 {
		t.Errorf("Max = %v, want 40", got)
	}
	if got := s.Spread(); got != 30 {
		t.Errorf("Spread = %v, want 30", got)
	}
	wantSD := math.Sqrt((225 + 25 + 25 + 225) / 4)
	if got := s.Stddev(); math.Abs(got-wantSD) > 1e-12 {
		t.Errorf("Stddev = %v, want %v", got, wantSD)
	}
}

func TestEmptyStats(t *testing.T) {
	s := New()
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Stddev() != 0 {
		t.Error("stats of empty series should be 0")
	}
	if s.Duration() != 0 {
		t.Error("Duration of empty series should be 0")
	}
}

func TestValueAt(t *testing.T) {
	s := FromValues(time.Second, 1, 2, 3)
	tests := []struct {
		at   time.Duration
		want float64
		ok   bool
	}{
		{-time.Second, 0, false},
		{0, 1, true},
		{500 * time.Millisecond, 1, true},
		{time.Second, 2, true},
		{5 * time.Second, 3, true},
	}
	for _, tt := range tests {
		got, ok := s.ValueAt(tt.at)
		if got != tt.want || ok != tt.ok {
			t.Errorf("ValueAt(%v) = (%v, %v), want (%v, %v)", tt.at, got, ok, tt.want, tt.ok)
		}
	}
}

func TestEnergyConstantPower(t *testing.T) {
	// 100 W sampled every 100 ms for 10 s => 1000 J.
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = 100
	}
	s := FromValues(100*time.Millisecond, vals...)
	got := s.Energy(100 * time.Millisecond)
	if math.Abs(float64(got)-1000) > 1e-9 {
		t.Errorf("Energy = %v, want 1000 J", got)
	}
	// Dropping the hold loses one interval: 990 J.
	got = s.Energy(0)
	if math.Abs(float64(got)-990) > 1e-9 {
		t.Errorf("Energy without hold = %v, want 990 J", got)
	}
}

func TestEnergyStepPower(t *testing.T) {
	// 10 W for 1 s then 20 W for 1 s => 30 J.
	s := New(Sample{0, 10}, Sample{time.Second, 20})
	got := s.Energy(time.Second)
	if math.Abs(float64(got)-30) > 1e-9 {
		t.Errorf("Energy = %v, want 30 J", got)
	}
}

func TestSliceAndShiftAndScale(t *testing.T) {
	s := FromValues(time.Second, 0, 1, 2, 3, 4)
	sl := s.Slice(time.Second, 3*time.Second)
	if sl.Len() != 2 || sl.At(0).Value != 1 || sl.At(1).Value != 2 {
		t.Errorf("Slice = %+v", sl.Samples())
	}
	sh := s.Shift(10 * time.Second)
	if sh.Start() != 10*time.Second || sh.At(0).Value != 0 {
		t.Errorf("Shift start = %v", sh.Start())
	}
	sc := s.Scale(2)
	if sc.At(3).Value != 6 {
		t.Errorf("Scale value = %v, want 6", sc.At(3).Value)
	}
	ac := s.AddConst(100)
	if ac.At(0).Value != 100 {
		t.Errorf("AddConst value = %v, want 100", ac.At(0).Value)
	}
}

func TestResample(t *testing.T) {
	s := New(Sample{0, 1}, Sample{time.Second, 2}, Sample{3 * time.Second, 3})
	r := s.Resample(time.Second)
	want := []float64{1, 2, 2, 3}
	if r.Len() != len(want) {
		t.Fatalf("Resample Len = %d, want %d", r.Len(), len(want))
	}
	for i, w := range want {
		if r.At(i).Value != w {
			t.Errorf("resampled[%d] = %v, want %v", i, r.At(i).Value, w)
		}
	}
	if s.Resample(0).Len() != 0 {
		t.Error("Resample with period 0 should be empty")
	}
}

func TestBinOpAlignment(t *testing.T) {
	a := FromValues(time.Second, 1, 1, 1, 1)                 // t=0..3
	b := FromValues(time.Second, 2, 2, 2).Shift(time.Second) // t=1..3
	sum := Add(a, b, time.Second)
	if sum.Len() != 3 {
		t.Fatalf("overlap Len = %d, want 3", sum.Len())
	}
	for i := 0; i < sum.Len(); i++ {
		if sum.At(i).Value != 3 {
			t.Errorf("sum[%d] = %v, want 3", i, sum.At(i).Value)
		}
	}
	diff := Sub(b, a, time.Second)
	for i := 0; i < diff.Len(); i++ {
		if diff.At(i).Value != 1 {
			t.Errorf("diff[%d] = %v, want 1", i, diff.At(i).Value)
		}
	}
}

func TestBinOpNoOverlap(t *testing.T) {
	a := FromValues(time.Second, 1, 1)
	b := FromValues(time.Second, 2, 2).Shift(10 * time.Second)
	if got := Add(a, b, time.Second); got.Len() != 0 {
		t.Errorf("no-overlap Add Len = %d, want 0", got.Len())
	}
}

func TestSumMultiple(t *testing.T) {
	a := FromValues(time.Second, 1, 1, 1)
	b := FromValues(time.Second, 2, 2, 2)
	c := FromValues(time.Second, 3, 3, 3)
	s := Sum(time.Second, a, b, c)
	if s.Len() != 3 {
		t.Fatalf("Sum Len = %d, want 3", s.Len())
	}
	for i := 0; i < 3; i++ {
		if s.At(i).Value != 6 {
			t.Errorf("Sum[%d] = %v, want 6", i, s.At(i).Value)
		}
	}
	if Sum(time.Second).Len() != 0 {
		t.Error("Sum of nothing should be empty")
	}
}

func TestStableWindowFindsQuietMiddle(t *testing.T) {
	// 30 s at 10 Hz: noisy first 10 s, flat middle, noisy last 10 s.
	rng := rand.New(rand.NewSource(1))
	var samples []Sample
	for i := 0; i < 300; i++ {
		at := time.Duration(i) * 100 * time.Millisecond
		v := 50.0
		sec := at.Seconds()
		if sec < 10 || sec >= 20 {
			v += rng.Float64()*20 - 10
		}
		samples = append(samples, Sample{At: at, Value: v})
	}
	s := New(samples...)
	w, err := s.StableWindow(10 * time.Second)
	if err != nil {
		t.Fatalf("StableWindow: %v", err)
	}
	if w.Start() < 9*time.Second || w.Start() > 11*time.Second {
		t.Errorf("stable window starts at %v, want ~10s", w.Start())
	}
	// The window is inclusive of its end sample, so at most one noisy
	// boundary sample can leak in; the bulk must be the flat region.
	if w.Stddev() > 1.0 {
		t.Errorf("stable window stddev = %v, want < 1", w.Stddev())
	}
}

func TestStableWindowErrors(t *testing.T) {
	if _, err := New().StableWindow(time.Second); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty series error = %v, want ErrEmpty", err)
	}
	s := FromValues(time.Second, 1, 2)
	if _, err := s.StableWindow(10 * time.Second); err == nil {
		t.Error("short series should error")
	}
}

func TestTrimEnds(t *testing.T) {
	s := FromValues(time.Second, 0, 1, 2, 3, 4, 5)
	tr := s.TrimEnds(time.Second)
	if tr.Start() != time.Second || tr.End() != 4*time.Second {
		t.Errorf("TrimEnds spans [%v,%v], want [1s,4s]", tr.Start(), tr.End())
	}
	if New().TrimEnds(time.Second).Len() != 0 {
		t.Error("TrimEnds of empty should be empty")
	}
}

// Property: energy of a scaled series is the scaled energy.
func TestEnergyScaleProperty(t *testing.T) {
	f := func(raw []float64, k float64) bool {
		if math.IsNaN(k) || math.IsInf(k, 0) || math.Abs(k) > 1e6 {
			return true
		}
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				continue
			}
			vals = append(vals, v)
		}
		s := FromValues(100*time.Millisecond, vals...)
		e1 := float64(s.Scale(k).Energy(100 * time.Millisecond))
		e2 := k * float64(s.Energy(100*time.Millisecond))
		return math.Abs(e1-e2) <= 1e-6*(1+math.Abs(e2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Sub(Add(a,b), b) == a on the overlap grid.
func TestAddSubRoundTrip(t *testing.T) {
	f := func(rawA, rawB []float64) bool {
		clean := func(raw []float64) []float64 {
			vals := make([]float64, 0, len(raw))
			for _, v := range raw {
				if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
					continue
				}
				vals = append(vals, v)
			}
			return vals
		}
		a := FromValues(time.Second, clean(rawA)...)
		b := FromValues(time.Second, clean(rawB)...)
		sum := Add(a, b, time.Second)
		back := Sub(sum, b, time.Second)
		for i := 0; i < back.Len(); i++ {
			av, ok := a.ValueAt(back.At(i).At)
			if !ok {
				return false
			}
			if math.Abs(back.At(i).Value-av) > 1e-9*(1+math.Abs(av)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: resampling preserves the left-Riemann energy for regularly
// sampled series when resampled at the same period.
func TestResampleEnergyInvariant(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				continue
			}
			vals = append(vals, v)
		}
		s := FromValues(time.Second, vals...)
		r := s.Resample(time.Second)
		e1 := float64(s.Energy(time.Second))
		e2 := float64(r.Energy(time.Second))
		return math.Abs(e1-e2) <= 1e-6*(1+math.Abs(e1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCorrelation(t *testing.T) {
	a := FromValues(time.Second, 1, 2, 3, 4, 5)
	if got := Correlation(a, a, time.Second); math.Abs(got-1) > 1e-12 {
		t.Errorf("self correlation = %v, want 1", got)
	}
	b := FromValues(time.Second, 5, 4, 3, 2, 1)
	if got := Correlation(a, b, time.Second); math.Abs(got+1) > 1e-12 {
		t.Errorf("anti correlation = %v, want -1", got)
	}
	// Scaled and shifted copies stay perfectly correlated.
	if got := Correlation(a, a.Scale(3).AddConst(10), time.Second); math.Abs(got-1) > 1e-12 {
		t.Errorf("affine correlation = %v, want 1", got)
	}
	// Constant series: undefined → 0.
	c := FromValues(time.Second, 7, 7, 7, 7, 7)
	if got := Correlation(a, c, time.Second); got != 0 {
		t.Errorf("constant correlation = %v, want 0", got)
	}
	// No overlap → 0.
	d := FromValues(time.Second, 1, 2).Shift(100 * time.Second)
	if got := Correlation(a, d, time.Second); got != 0 {
		t.Errorf("no-overlap correlation = %v, want 0", got)
	}
}

// Property: correlation is symmetric and bounded in [-1, 1].
func TestCorrelationProperties(t *testing.T) {
	f := func(rawA, rawB []float64) bool {
		clean := func(raw []float64) []float64 {
			vals := make([]float64, 0, len(raw))
			for _, v := range raw {
				if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
					continue
				}
				vals = append(vals, v)
			}
			return vals
		}
		a := FromValues(time.Second, clean(rawA)...)
		b := FromValues(time.Second, clean(rawB)...)
		r1 := Correlation(a, b, time.Second)
		r2 := Correlation(b, a, time.Second)
		return math.Abs(r1-r2) < 1e-9 && r1 >= -1-1e-9 && r1 <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// quadraticStableWindow is the pre-prefix-sum reference implementation of
// StableWindow's search: per-sample variance recomputed from scratch for
// every candidate window. It returns the chosen [best, bestEnd) extent and
// the winning score, or best = -1 when no window fits.
func quadraticStableWindow(s *Series, window time.Duration) (best, bestEnd int, bestScore float64) {
	best, bestEnd = -1, -1
	bestScore = math.Inf(1)
	for i := range s.samples {
		j := i
		for j < len(s.samples) && s.samples[j].At-s.samples[i].At <= window {
			j++
		}
		if s.samples[j-1].At-s.samples[i].At < window {
			continue
		}
		score := quadraticScore(s.samples[i:j])
		if score < bestScore {
			bestScore = score
			best, bestEnd = i, j
		}
	}
	return best, bestEnd, bestScore
}

func quadraticScore(w []Sample) float64 {
	mean := 0.0
	for _, sm := range w {
		mean += sm.Value
	}
	mean /= float64(len(w))
	ss := 0.0
	for _, sm := range w {
		d := sm.Value - mean
		ss += d * d
	}
	return ss / float64(len(w))
}

// Property: the O(n) prefix-sum StableWindow picks the same window as the
// quadratic reference whenever the winner is unique, and never a window
// more than a rounding tolerance worse than the optimum when windows tie.
func TestStableWindowMatchesQuadraticReference(t *testing.T) {
	const window = time.Second
	f := func(raw []uint16, gaps []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 300 {
			raw = raw[:300]
		}
		s := &Series{}
		at := time.Duration(0)
		for i, u := range raw {
			if len(gaps) > 0 {
				// Occasional multi-period gaps exercise the "tail too
				// short" skips inside the search.
				at += time.Duration(gaps[i%len(gaps)]%4) * 100 * time.Millisecond
			}
			s.Append(at, float64(u)/65535*500) // realistic watt range
			at += 100 * time.Millisecond
		}
		best, bestEnd, bestScore := quadraticStableWindow(s, window)
		got, err := s.StableWindow(window)
		if best < 0 {
			return err != nil
		}
		if err != nil {
			return false
		}
		want := New(s.samples[best:bestEnd]...)
		if got.Len() == want.Len() && got.Start() == want.Start() {
			return true
		}
		// The implementations disagreed: acceptable only if the quadratic
		// scores tie within prefix-sum rounding tolerance.
		const tol = 1e-3
		for i := 0; i < s.Len(); i++ {
			if s.At(i).At == got.Start() {
				return quadraticScore(s.samples[i:i+got.Len()]) <= bestScore+tol
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Regression: Sum with a single series used to return the aliased input,
// skipping the resample onto the requested grid that every other arity
// performs.
func TestSumSingleSeriesResampledCopy(t *testing.T) {
	s := New(
		Sample{At: 0, Value: 1},
		Sample{At: 250 * time.Millisecond, Value: 2},
		Sample{At: 600 * time.Millisecond, Value: 3},
	)
	got := Sum(100*time.Millisecond, s)
	if got == s {
		t.Fatal("Sum(period, s) returned the aliased input series")
	}
	if got.Len() != 7 {
		t.Fatalf("Sum single series Len = %d, want 7 (100ms grid over 600ms)", got.Len())
	}
	wantVals := []float64{1, 1, 1, 2, 2, 2, 3}
	for i, want := range wantVals {
		if sm := got.At(i); sm.Value != want || sm.At != time.Duration(i)*100*time.Millisecond {
			t.Errorf("sample %d = %+v, want value %v at %v", i, sm, want, time.Duration(i)*100*time.Millisecond)
		}
	}
	// The copy is independent: growing it must not disturb the input.
	got.Append(time.Hour, 99)
	if s.Len() != 3 {
		t.Errorf("input series grew to %d samples after mutating the sum", s.Len())
	}
}

// Regression: TrimEnds with 2·trim >= Duration used to invert the Slice
// bounds; it must return an empty series.
func TestTrimEndsDegenerate(t *testing.T) {
	s := FromValues(time.Second, 1, 2, 3) // spans 2s
	for _, trim := range []time.Duration{time.Second, 2 * time.Second, time.Hour} {
		if got := s.TrimEnds(trim); got.Len() != 0 {
			t.Errorf("TrimEnds(%v) of a 2s series has %d samples, want 0", trim, got.Len())
		}
	}
	// Zero trim returns the whole series as an independent copy.
	full := s.TrimEnds(0)
	if full.Len() != 3 {
		t.Errorf("TrimEnds(0) Len = %d, want 3", full.Len())
	}
	full.Append(time.Hour, 9)
	if s.Len() != 3 {
		t.Error("TrimEnds(0) aliases the input series")
	}
	// Inclusive ends: samples exactly trim from either end survive.
	in := s.TrimEnds(500 * time.Millisecond)
	if in.Len() != 1 || in.At(0).At != time.Second {
		t.Errorf("TrimEnds(500ms) = %d samples starting %v, want the middle sample", in.Len(), in.Start())
	}
}

// StableWindow reports typed errors so callers can distinguish an empty
// series from one that is merely too short.
func TestStableWindowTypedErrors(t *testing.T) {
	if _, err := New().StableWindow(time.Second); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty series error = %v, want ErrEmpty", err)
	}
	short := FromValues(time.Second, 1, 2)
	if _, err := short.StableWindow(10 * time.Second); !errors.Is(err, ErrTooShort) {
		t.Errorf("short series error = %v, want ErrTooShort", err)
	}
	// Long enough span, but a sample gap leaves no contiguous window.
	gappy := New(Sample{At: 0, Value: 1}, Sample{At: 3 * time.Second, Value: 2})
	if _, err := gappy.StableWindow(time.Second); !errors.Is(err, ErrTooShort) {
		t.Errorf("gappy series error = %v, want ErrTooShort", err)
	}
}

// Package trace provides the time-series machinery used by the evaluation
// protocol: power traces, resampling and alignment, integration to energy,
// and the "stable window" selection the paper applies before scoring a model
// (keeping the 10 seconds with the least extreme values of a 30-second run).
//
// A Series is a sequence of (time offset, value) samples. Values are plain
// float64 so the same machinery serves power (watts), CPU utilization,
// frequency and counter rates; functions that are specifically about power
// carry it in their names (Energy, for instance, integrates watts into
// joules).
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"powerdiv/internal/units"
)

// Sample is a single observation at a time offset from the start of the
// observation window.
type Sample struct {
	At    time.Duration
	Value float64
}

// Series is an ordered sequence of samples. Samples must be in
// non-decreasing time order; the constructors and appenders maintain this
// and Validate checks it.
type Series struct {
	samples []Sample
	// sum/sum2 are stableWindowSearch's prefix-sum scratch, kept on the
	// series so a reused scratch series (Reset + Append per scoring call)
	// amortises them too.
	sum, sum2 []float64
}

// ErrUnordered is returned by Validate when samples are out of time order.
var ErrUnordered = errors.New("trace: samples out of time order")

// ErrEmpty is returned by operations that need at least one sample.
var ErrEmpty = errors.New("trace: empty series")

// ErrTooShort is returned by StableWindow when the series does not contain
// a window of the requested length: either its total span is shorter than
// the window, or sample gaps leave no contiguous run that covers it.
// Callers can distinguish it from ErrEmpty with errors.Is.
var ErrTooShort = errors.New("trace: series shorter than window")

// New returns a Series built from the given samples, sorted by time.
func New(samples ...Sample) *Series {
	s := &Series{samples: append([]Sample(nil), samples...)}
	sort.SliceStable(s.samples, func(i, j int) bool { return s.samples[i].At < s.samples[j].At })
	return s
}

// NewWithCap returns an empty series whose backing store can hold n samples
// before reallocating — for callers that know the sample count up front and
// append tick by tick.
func NewWithCap(n int) *Series {
	if n < 0 {
		n = 0
	}
	return &Series{samples: make([]Sample, 0, n)}
}

// FromValues builds a regularly sampled series: values[i] is the sample at
// i*period.
func FromValues(period time.Duration, values ...float64) *Series {
	s := &Series{samples: make([]Sample, len(values))}
	for i, v := range values {
		s.samples[i] = Sample{At: time.Duration(i) * period, Value: v}
	}
	return s
}

// Append adds a sample at the end of the series. It panics if at is earlier
// than the last sample, since that indicates a sequencing bug in the caller.
func (s *Series) Append(at time.Duration, value float64) {
	if n := len(s.samples); n > 0 && at < s.samples[n-1].At {
		panic(fmt.Sprintf("trace: appending sample at %v before last sample at %v", at, s.samples[n-1].At))
	}
	s.samples = append(s.samples, Sample{At: at, Value: value})
}

// Reset empties the series in place, keeping its backing store — for
// scratch series that are refilled tick by tick on every scoring call.
func (s *Series) Reset() { s.samples = s.samples[:0] }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.samples) }

// At returns the i-th sample.
func (s *Series) At(i int) Sample { return s.samples[i] }

// Samples returns a copy of the underlying samples.
func (s *Series) Samples() []Sample {
	return append([]Sample(nil), s.samples...)
}

// Values returns a copy of the sample values, discarding timestamps.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.samples))
	for i, sm := range s.samples {
		out[i] = sm.Value
	}
	return out
}

// Validate checks time ordering.
func (s *Series) Validate() error {
	for i := 1; i < len(s.samples); i++ {
		if s.samples[i].At < s.samples[i-1].At {
			return fmt.Errorf("%w: sample %d at %v before sample %d at %v",
				ErrUnordered, i, s.samples[i].At, i-1, s.samples[i-1].At)
		}
	}
	return nil
}

// Duration returns the time spanned by the series (last minus first sample
// time), or 0 for series with fewer than two samples.
func (s *Series) Duration() time.Duration {
	if len(s.samples) < 2 {
		return 0
	}
	return s.samples[len(s.samples)-1].At - s.samples[0].At
}

// Start returns the time of the first sample (0 for an empty series).
func (s *Series) Start() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	return s.samples[0].At
}

// End returns the time of the last sample (0 for an empty series).
func (s *Series) End() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	return s.samples[len(s.samples)-1].At
}

// Slice returns the sub-series with from <= At < to. The returned series
// shares no storage with s.
func (s *Series) Slice(from, to time.Duration) *Series {
	out := &Series{}
	for _, sm := range s.samples {
		if sm.At >= from && sm.At < to {
			out.samples = append(out.samples, sm)
		}
	}
	return out
}

// Shift returns a copy of the series with all timestamps offset by d.
func (s *Series) Shift(d time.Duration) *Series {
	out := &Series{samples: make([]Sample, len(s.samples))}
	for i, sm := range s.samples {
		out.samples[i] = Sample{At: sm.At + d, Value: sm.Value}
	}
	return out
}

// Scale returns a copy of the series with all values multiplied by k.
func (s *Series) Scale(k float64) *Series {
	out := &Series{samples: make([]Sample, len(s.samples))}
	for i, sm := range s.samples {
		out.samples[i] = Sample{At: sm.At, Value: sm.Value * k}
	}
	return out
}

// AddConst returns a copy of the series with c added to all values.
func (s *Series) AddConst(c float64) *Series {
	out := &Series{samples: make([]Sample, len(s.samples))}
	for i, sm := range s.samples {
		out.samples[i] = Sample{At: sm.At, Value: sm.Value + c}
	}
	return out
}

// ValueAt returns the value of the series at time t using zero-order hold
// (the value of the most recent sample at or before t). ok is false if t is
// before the first sample or the series is empty.
func (s *Series) ValueAt(t time.Duration) (v float64, ok bool) {
	i := sort.Search(len(s.samples), func(i int) bool { return s.samples[i].At > t })
	if i == 0 {
		return 0, false
	}
	return s.samples[i-1].Value, true
}

// Mean returns the arithmetic mean of the sample values.
// It returns 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, sm := range s.samples {
		sum += sm.Value
	}
	return sum / float64(len(s.samples))
}

// Min returns the minimum sample value (0 for an empty series).
func (s *Series) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	m := s.samples[0].Value
	for _, sm := range s.samples[1:] {
		if sm.Value < m {
			m = sm.Value
		}
	}
	return m
}

// Max returns the maximum sample value (0 for an empty series).
func (s *Series) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	m := s.samples[0].Value
	for _, sm := range s.samples[1:] {
		if sm.Value > m {
			m = sm.Value
		}
	}
	return m
}

// Stddev returns the population standard deviation of the sample values.
func (s *Series) Stddev() float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	ss := 0.0
	for _, sm := range s.samples {
		d := sm.Value - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Spread returns Max − Min, the width of the value band — the quantity the
// paper reports as the "variation in power consumption under the same load"
// (25 W on DAHU in Fig 1).
func (s *Series) Spread() float64 { return s.Max() - s.Min() }

// Energy integrates the series, interpreted as power in watts, into joules
// using the left Riemann sum (zero-order hold between samples), which
// matches how RAPL-based meters accumulate energy. The last sample is held
// for `hold`; pass the sampling period, or 0 to drop the final interval.
func (s *Series) Energy(hold time.Duration) units.Joules {
	var e units.Joules
	for i, sm := range s.samples {
		var dt time.Duration
		if i+1 < len(s.samples) {
			dt = s.samples[i+1].At - sm.At
		} else {
			dt = hold
		}
		e += units.Watts(sm.Value).Energy(dt)
	}
	return e
}

// Resample returns the series resampled onto a regular grid of the given
// period covering [Start, End], using zero-order hold. It returns an empty
// series when s is empty or period is not positive.
func (s *Series) Resample(period time.Duration) *Series {
	out := &Series{}
	if len(s.samples) == 0 || period <= 0 {
		return out
	}
	out.samples = make([]Sample, 0, int(s.Duration()/period)+1)
	i := 0
	for t := s.Start(); t <= s.End(); t += period {
		// The grid advances monotonically, so the hold cursor never moves
		// backwards — one pass instead of a binary search per grid point.
		for i+1 < len(s.samples) && s.samples[i+1].At <= t {
			i++
		}
		out.samples = append(out.samples, Sample{At: t, Value: s.samples[i].Value})
	}
	return out
}

// eachAligned walks the regular grid of the given period across the overlap
// of a and b and calls fn with both series' zero-order-hold values at every
// grid point — the single-pass core shared by BinOp and Correlation. It does
// nothing when either series is empty or period is not positive.
func eachAligned(a, b *Series, period time.Duration, fn func(t time.Duration, x, y float64)) {
	if a.Len() == 0 || b.Len() == 0 || period <= 0 {
		return
	}
	from := a.Start()
	if b.Start() > from {
		from = b.Start()
	}
	to := a.End()
	if b.End() < to {
		to = b.End()
	}
	ia, ib := 0, 0
	for t := from; t <= to; t += period {
		for ia+1 < len(a.samples) && a.samples[ia+1].At <= t {
			ia++
		}
		for ib+1 < len(b.samples) && b.samples[ib+1].At <= t {
			ib++
		}
		// from is at or after both starts, so the hold value exists for
		// every grid point of a non-empty overlap.
		if a.samples[ia].At > t || b.samples[ib].At > t {
			continue
		}
		fn(t, a.samples[ia].Value, b.samples[ib].Value)
	}
}

// overlapGridLen returns the number of grid points eachAligned will visit,
// for preallocation. It returns 0 when the series do not overlap.
func overlapGridLen(a, b *Series, period time.Duration) int {
	if a.Len() == 0 || b.Len() == 0 || period <= 0 {
		return 0
	}
	from := a.Start()
	if b.Start() > from {
		from = b.Start()
	}
	to := a.End()
	if b.End() < to {
		to = b.End()
	}
	if to < from {
		return 0
	}
	return int((to-from)/period) + 1
}

// BinOp applies op pointwise to a and b after aligning them onto a regular
// grid of the given period spanning the overlap of the two series. The
// result is empty if the series do not overlap.
func BinOp(a, b *Series, period time.Duration, op func(x, y float64) float64) *Series {
	out := &Series{}
	if n := overlapGridLen(a, b, period); n > 0 {
		out.samples = make([]Sample, 0, n)
	}
	eachAligned(a, b, period, func(t time.Duration, x, y float64) {
		out.samples = append(out.samples, Sample{At: t, Value: op(x, y)})
	})
	return out
}

// Add returns the pointwise sum of the two series on a regular grid.
func Add(a, b *Series, period time.Duration) *Series {
	return BinOp(a, b, period, func(x, y float64) float64 { return x + y })
}

// Sub returns the pointwise difference a−b on a regular grid.
func Sub(a, b *Series, period time.Duration) *Series {
	return BinOp(a, b, period, func(x, y float64) float64 { return x - y })
}

// Sum returns the pointwise sum of all series on a regular grid spanning
// their common overlap. It returns an empty series if the list is empty.
// A single series is returned as an independent copy resampled onto the
// requested period grid, like every other arity.
func Sum(period time.Duration, series ...*Series) *Series {
	if len(series) == 0 {
		return &Series{}
	}
	if len(series) == 1 {
		return series[0].Resample(period)
	}
	acc := series[0]
	for _, s := range series[1:] {
		acc = Add(acc, s, period)
	}
	return acc
}

// Correlation returns the Pearson correlation coefficient of the two
// series over their overlap, resampled onto a regular grid of the given
// period. It returns 0 when the overlap is empty or either series is
// constant (correlation undefined).
func Correlation(a, b *Series, period time.Duration) float64 {
	grid := overlapGridLen(a, b, period)
	xs := make([]float64, 0, grid)
	ys := make([]float64, 0, grid)
	eachAligned(a, b, period, func(_ time.Duration, x, y float64) {
		xs = append(xs, x)
		ys = append(ys, y)
	})
	n := len(xs)
	if n == 0 {
		return 0
	}
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// StableWindow returns the contiguous window of the given length whose
// values deviate least from their own mean (minimum sum of squared
// deviations). This implements the paper's selection of "the 10 seconds with
// the least extreme values" from each 30-second run, which removes start-up
// and tear-down transients. It returns an error if the series is shorter
// than the window.
func (s *Series) StableWindow(window time.Duration) (*Series, error) {
	best, bestEnd, err := s.stableWindowSearch(window)
	if err != nil {
		return nil, err
	}
	return New(s.samples[best:bestEnd]...), nil
}

// StableWindowBounds is StableWindow without materialising the window: it
// returns the times of the first and last sample of the selected window.
// Scoring loops that only need the [from, to] bounds use it to avoid
// copying the window's samples on every call.
func (s *Series) StableWindowBounds(window time.Duration) (from, to time.Duration, err error) {
	best, bestEnd, err := s.stableWindowSearch(window)
	if err != nil {
		return 0, 0, err
	}
	return s.samples[best].At, s.samples[bestEnd-1].At, nil
}

// stableWindowSearch locates the least-extreme window [best, bestEnd) —
// the shared core of StableWindow and StableWindowBounds.
func (s *Series) stableWindowSearch(window time.Duration) (best, bestEnd int, err error) {
	n := len(s.samples)
	if n == 0 {
		return 0, 0, ErrEmpty
	}
	if s.Duration() < window {
		return 0, 0, fmt.Errorf("%w: series spans %v, window is %v", ErrTooShort, s.Duration(), window)
	}
	// Prefix sums of value and value² make every window's score O(1):
	// for [i, j) with m samples, ss = Σv² − (Σv)²/m and score = ss/m.
	// The end cursor j only moves forward as i advances, so the whole
	// search is O(n) instead of O(n·w).
	if cap(s.sum) < n+1 {
		s.sum = make([]float64, n+1)
		s.sum2 = make([]float64, n+1)
	}
	sum, sum2 := s.sum[:n+1], s.sum2[:n+1]
	sum[0], sum2[0] = 0, 0
	for i, sm := range s.samples {
		sum[i+1] = sum[i] + sm.Value
		sum2[i+1] = sum2[i] + sm.Value*sm.Value
	}
	best, bestEnd = -1, -1
	bestScore := math.Inf(1)
	j := 0
	for i := 0; i < n; i++ {
		if j < i {
			j = i
		}
		for j < n && s.samples[j].At-s.samples[i].At <= window {
			j++
		}
		// Window [i, j) spans at least `window` only if the last included
		// sample reaches it; otherwise the tail is too short.
		if s.samples[j-1].At-s.samples[i].At < window {
			continue
		}
		m := float64(j - i)
		sv := sum[j] - sum[i]
		score := ((sum2[j] - sum2[i]) - sv*sv/m) / m
		if score < bestScore {
			bestScore = score
			best, bestEnd = i, j
		}
	}
	if best < 0 {
		return 0, 0, fmt.Errorf("%w: no contiguous window of %v (sample gaps too large)", ErrTooShort, window)
	}
	return best, bestEnd, nil
}

// TrimEnds returns the series with the first and last trim durations of
// samples removed; the bounds are inclusive, so samples exactly trim from
// either end survive. It protects scoring code from start/stop transients
// when the full stable-window machinery is not wanted. When 2·trim covers
// the whole span there is nothing left between the transients and the
// result is empty.
func (s *Series) TrimEnds(trim time.Duration) *Series {
	out := &Series{}
	if len(s.samples) == 0 {
		return out
	}
	if trim <= 0 {
		out.samples = append([]Sample(nil), s.samples...)
		return out
	}
	if 2*trim >= s.Duration() {
		return out
	}
	from, to := s.Start()+trim, s.End()-trim
	for _, sm := range s.samples {
		if sm.At >= from && sm.At <= to {
			out.samples = append(out.samples, sm)
		}
	}
	return out
}

// Package livemeter composes the RAPL powercap reader, the procfs CPU
// tracker and a power division model into a Scaphandre-style live power
// meter for a real Linux machine — the deployment path the paper's models
// target. It degrades gracefully: on machines without RAPL (or without the
// requested processes) Open reports a typed error the caller can surface.
//
// The meter is fully testable offline: both the powercap tree and the proc
// tree are injectable roots, and tests drive it with synthetic counters.
package livemeter

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"powerdiv/internal/models"
	"powerdiv/internal/procfs"
	"powerdiv/internal/rapl"
	"powerdiv/internal/units"
)

// Config locates the data sources.
type Config struct {
	// PowercapRoot is the powercap sysfs root ("" = /sys/class/powercap).
	PowercapRoot string
	// ProcRoot is the procfs root ("" = /proc).
	ProcRoot string
	// CPUFreqRoot is the cpufreq sysfs root ("" = /sys/devices/system/cpu;
	// frequency reads are best-effort — a missing tree just leaves
	// Tick.Freq zero, which frequency-aware models treat as "unknown").
	CPUFreqRoot string
	// UserHz is the kernel USER_HZ (0 = 100).
	UserHz int
	// Model divides the measured power; nil = Scaphandre.
	Model models.Model
}

// Meter is a live process-level power meter.
type Meter struct {
	zones    []*rapl.PowercapZone
	counters []*rapl.Counter
	fs       *procfs.FS
	tracker  *procfs.Tracker
	model    models.Model
	freqRoot string
	start    time.Time
	lastAt   time.Duration
	primed   bool
}

// Attribution is one sampling interval's output.
type Attribution struct {
	// At is the sample time relative to the meter's first sample.
	At time.Duration
	// MachinePower is the summed package power.
	MachinePower units.Watts
	// PerPID maps process ID to its estimated power; nil while the model
	// warms up or when nothing ran.
	PerPID map[int]units.Watts
}

// Open discovers the RAPL zones and prepares the meter.
// It returns rapl.ErrNoRAPL (wrapped) when the machine has no RAPL.
func Open(cfg Config) (*Meter, error) {
	root := cfg.PowercapRoot
	if root == "" {
		root = rapl.DefaultPowercapRoot
	}
	zones, err := rapl.Discover(root)
	if err != nil {
		return nil, fmt.Errorf("livemeter: %w", err)
	}
	m := &Meter{zones: zones, model: cfg.Model}
	for _, z := range zones {
		m.counters = append(m.counters, rapl.NewCounter(z.MaxEnergyRange()))
	}
	if m.model == nil {
		m.model = models.NewScaphandre().New(0)
	}
	m.fs = procfs.New(cfg.ProcRoot, cfg.UserHz)
	m.tracker = procfs.NewTracker(m.fs)
	m.freqRoot = cfg.CPUFreqRoot
	if m.freqRoot == "" {
		m.freqRoot = procfs.DefaultCPUFreqRoot
	}
	return m, nil
}

// ErrNotPrimed is returned by Sample before two readings exist.
var ErrNotPrimed = errors.New("livemeter: first sample primes the counters")

// Sample reads all sources once and attributes the interval's power to the
// given PIDs. The first call primes the counters and returns ErrNotPrimed.
// now is injectable for tests; pass time.Now() in production.
func (m *Meter) Sample(now time.Time, pids []int) (Attribution, error) {
	if !m.primed {
		m.start = now
	}
	at := now.Sub(m.start)
	var total units.Watts
	haveAll := true
	for i, z := range m.zones {
		uj, err := z.ReadEnergy()
		if err != nil {
			return Attribution{}, fmt.Errorf("livemeter: zone %s: %w", z.Name(), err)
		}
		p, ok := m.counters[i].Power(rapl.Reading{At: at, EnergyUJ: uj})
		if !ok {
			haveAll = false
			continue
		}
		total += p
	}
	deltas := m.tracker.SampleDetailed(pids)
	interval := at - m.lastAt
	m.lastAt = at
	if !m.primed {
		m.primed = true
		return Attribution{At: at}, ErrNotPrimed
	}
	if !haveAll || interval <= 0 {
		return Attribution{At: at}, ErrNotPrimed
	}
	attr := Attribution{At: at, MachinePower: total}
	procs := make(map[string]models.ProcSample, len(deltas))
	for pid, d := range deltas {
		procs[fmt.Sprint(pid)] = models.ProcSample{CPUTime: d.CPUTime, Threads: d.NumThreads}
	}
	// Best-effort frequency: cpu0's current frequency, 0 when unreadable.
	var freq units.Hertz
	if khz, err := procfs.ReadCurFreqKHz(m.freqRoot, 0); err == nil {
		freq = units.Hertz(khz) * units.KHz
	}
	est := m.model.Observe(models.Tick{
		At:           at,
		Interval:     interval,
		MachinePower: total,
		Freq:         freq,
		Procs:        procs,
	})
	if est != nil {
		attr.PerPID = make(map[int]units.Watts, len(est))
		for id, w := range est {
			var pid int
			fmt.Sscanf(id, "%d", &pid)
			attr.PerPID[pid] = w
		}
	}
	return attr, nil
}

// Zones returns the discovered zone names, sorted.
func (m *Meter) Zones() []string {
	out := make([]string, len(m.zones))
	for i, z := range m.zones {
		out[i] = z.Name()
	}
	sort.Strings(out)
	return out
}

// Package livemeter composes the RAPL powercap reader, the procfs CPU
// tracker and a power division model into a Scaphandre-style live power
// meter for a real Linux machine — the deployment path the paper's models
// target. It degrades gracefully: on machines without RAPL (or without the
// requested processes) Open reports a typed error the caller can surface.
//
// The meter is built to survive degraded ticks without losing attribution.
// A long-running deployment sees transient sysfs/procfs read errors, RAPL
// counter wraps, vanishing zones (package hotplug, permission loss), PID
// churn and stalled clocks; the meter's contract under all of them is:
//
//   - transient zone read errors are retried with backoff; if a tick still
//     cannot be measured it is *dropped, not lost*: process CPU-time deltas
//     and zone energy keep accumulating, and the next successful sample
//     attributes the whole coalesced interval (Attribution.CoalescedTicks);
//   - a primed meter never reverts to ErrNotPrimed — degraded ticks return
//     ErrDroppedTick, and only the disappearance of every zone returns
//     ErrZoneVanished;
//   - a zone that vanishes is dropped from the live set and the meter
//     continues on the survivors, flagging Attribution.Degraded and
//     reporting detail through Health;
//   - counter wraparound is folded in by rapl.Counter, and a reading so
//     implausible it must be a counter re-registration (not a wrap) is
//     discarded and the zone re-based instead of booking a huge spike.
//
// The meter is fully testable offline: both the powercap tree and the proc
// tree are injectable roots, every file read can be routed through
// Config.ReadFile, and the internal/faultfs harness drives all of the
// degraded paths deterministically.
package livemeter

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"sort"
	"strconv"
	"time"

	"powerdiv/internal/models"
	"powerdiv/internal/obs"
	"powerdiv/internal/procfs"
	"powerdiv/internal/rapl"
	"powerdiv/internal/retry"
	"powerdiv/internal/units"
)

// Config locates the data sources.
type Config struct {
	// PowercapRoot is the powercap sysfs root ("" = /sys/class/powercap).
	PowercapRoot string
	// ProcRoot is the procfs root ("" = /proc).
	ProcRoot string
	// CPUFreqRoot is the cpufreq sysfs root ("" = /sys/devices/system/cpu;
	// frequency reads are best-effort — a missing tree just leaves
	// Tick.Freq zero, which frequency-aware models treat as "unknown").
	CPUFreqRoot string
	// UserHz is the kernel USER_HZ (0 = 100).
	UserHz int
	// Model divides the measured power; nil = Scaphandre.
	Model models.Model
	// ReadFile routes every sysfs/procfs file read (nil = os.ReadFile).
	// The fault-injection harness (internal/faultfs) plugs in here.
	ReadFile func(string) ([]byte, error)
	// Retry is the policy for transient zone read errors; the zero value
	// means retry.Default (3 attempts, 1 ms doubling backoff).
	Retry retry.Policy
	// MaxPlausiblePower is the per-zone sanity ceiling: a zone interval
	// implying more average power than this is treated as a counter
	// anomaly (re-registration), discarded and re-based rather than
	// reported. 0 = 10 kW, far above any package zone.
	MaxPlausiblePower units.Watts
	// VanishAfter is how many consecutive not-exist read failures mark a
	// zone as vanished (0 = 2).
	VanishAfter int
}

// Meter is a live process-level power meter.
type Meter struct {
	zones     []*rapl.PowercapZone
	counters  []*rapl.Counter
	zoneState []zoneState
	fs        *procfs.FS
	tracker   *procfs.Tracker
	model     models.Model
	freqRoot  string
	readFile  func(string) ([]byte, error)
	retry     retry.Policy
	maxPower  units.Watts
	vanishAt  int

	start      time.Time
	lastAt     time.Duration // last accepted sample timestamp (stall detection)
	lastEmitAt time.Duration // last successful attribution timestamp
	primed     bool
	pending    map[int]pendingProc // proc activity carried across dropped ticks
	dropped    int                 // ticks dropped since the last emit
}

// zoneState tracks one zone's availability.
type zoneState struct {
	misses   int // consecutive not-exist read failures
	vanished bool
	lastErr  error
}

// pendingProc accumulates one process's activity until the next emit.
type pendingProc struct {
	cpu     units.CPUTime
	threads int
}

// Attribution is one sampling interval's output.
type Attribution struct {
	// At is the sample time relative to the meter's first sample.
	At time.Duration
	// Interval is the span this attribution covers: the time since the
	// previous successful attribution (longer than the sampling period
	// when dropped ticks were coalesced; 0 on dropped ticks).
	Interval time.Duration
	// MachinePower is the summed package power over Interval.
	MachinePower units.Watts
	// PerPID maps process ID to its estimated power; nil while the model
	// warms up or when nothing ran.
	PerPID map[int]units.Watts
	// Degraded reports reduced fidelity: vanished zones, zones that failed
	// this tick, a discarded anomalous reading, or dropped ticks folded
	// into this interval.
	Degraded bool
	// CoalescedTicks is how many dropped sampling attempts since the
	// previous successful attribution were folded into this interval
	// (0 in steady state).
	CoalescedTicks int
	// ZonesLive and ZonesVanished count the meter's zone population.
	ZonesLive     int
	ZonesVanished int
}

// ZoneHealth is one zone's availability status, reported by Health.
type ZoneHealth struct {
	Name string
	// Vanished means the zone's files disappeared and the meter has
	// dropped it from the live set.
	Vanished bool
	// ConsecutiveMisses counts not-exist failures on a zone not yet
	// declared vanished.
	ConsecutiveMisses int
	// LastErr is the most recent read error (nil after a clean read).
	LastErr error
}

// Open discovers the RAPL zones and prepares the meter.
// It returns rapl.ErrNoRAPL (wrapped) when the machine has no RAPL.
func Open(cfg Config) (*Meter, error) {
	root := cfg.PowercapRoot
	if root == "" {
		root = rapl.DefaultPowercapRoot
	}
	var readFile rapl.ReadFileFunc
	if cfg.ReadFile != nil {
		readFile = cfg.ReadFile
	}
	zones, err := rapl.DiscoverReader(root, readFile)
	if err != nil {
		return nil, fmt.Errorf("livemeter: %w", err)
	}
	m := &Meter{
		zones:    zones,
		model:    cfg.Model,
		readFile: cfg.ReadFile,
		retry:    cfg.Retry,
		maxPower: cfg.MaxPlausiblePower,
		vanishAt: cfg.VanishAfter,
		pending:  map[int]pendingProc{},
	}
	if m.maxPower <= 0 {
		m.maxPower = 10_000 // 10 kW: no package zone gets anywhere near this
	}
	if m.vanishAt <= 0 {
		m.vanishAt = 2
	}
	m.zoneState = make([]zoneState, len(zones))
	for _, z := range zones {
		m.counters = append(m.counters, rapl.NewCounter(z.MaxEnergyRange()))
	}
	if m.model == nil {
		m.model = models.NewScaphandre().New(0)
	}
	var procRead procfs.ReadFileFunc
	if cfg.ReadFile != nil {
		procRead = cfg.ReadFile
	}
	m.fs = procfs.NewReader(cfg.ProcRoot, cfg.UserHz, procRead)
	m.tracker = procfs.NewTracker(m.fs)
	m.freqRoot = cfg.CPUFreqRoot
	if m.freqRoot == "" {
		m.freqRoot = procfs.DefaultCPUFreqRoot
	}
	return m, nil
}

// ErrNotPrimed is returned by the first Sample only: it primes the
// counters. A meter never reverts to it — later degradation is reported as
// ErrDroppedTick or ErrZoneVanished so callers can tell warm-up from fault.
var ErrNotPrimed = errors.New("livemeter: first sample primes the counters")

// ErrDroppedTick is returned by Sample on a primed meter when the tick
// could not be attributed (stalled clock, or no zone could be read). The
// interval is not lost: process activity and zone energy carry over and the
// next successful sample covers the whole gap.
var ErrDroppedTick = errors.New("livemeter: tick dropped, interval folded into next sample")

// ErrZoneVanished is returned by Sample when every RAPL zone has vanished
// (package hotplug, permission loss): the meter has nothing left to read.
// The disappearance of only some zones degrades the attribution instead
// (Attribution.Degraded, Health).
var ErrZoneVanished = errors.New("livemeter: all RAPL zones vanished")

// Sample reads all sources once and attributes the interval's power to the
// given PIDs. The first call primes the counters and returns ErrNotPrimed.
// now is injectable for tests; pass time.Now() in production.
func (m *Meter) Sample(now time.Time, pids []int) (Attribution, error) {
	obsTicksSampled.Inc()
	if !m.primed {
		m.start = now
	}
	at := now.Sub(m.start)

	// Phase 1: read every live zone, with retry for transient errors. No
	// counter state is touched yet, so a failure cannot leave some zones
	// advanced and others not (which would skew the next interval).
	readings := make([]uint64, len(m.zones))
	readOK := make([]bool, len(m.zones))
	live, okReads := 0, 0
	for i, z := range m.zones {
		st := &m.zoneState[i]
		if st.vanished {
			continue
		}
		uj, err := m.readZone(z)
		if err != nil {
			st.lastErr = err
			if errors.Is(err, iofs.ErrNotExist) {
				st.misses++
				if st.misses >= m.vanishAt {
					st.vanished = true
					m.counters[i].Reset()
					obsZonesVanished.Inc()
					continue
				}
			}
			live++
			continue
		}
		st.misses = 0
		st.lastErr = nil
		readings[i], readOK[i] = uj, true
		live++
		okReads++
	}
	if live == 0 {
		return Attribution{At: at, ZonesVanished: len(m.zones)},
			fmt.Errorf("livemeter: %d zones gone: %w", len(m.zones), ErrZoneVanished)
	}

	// Phase 2: always consume the CPU tracker, so activity during degraded
	// ticks accumulates toward the next successful attribution instead of
	// being thrown away with the tick.
	for pid, d := range m.tracker.SampleDetailed(pids) {
		p := m.pending[pid]
		p.cpu += d.CPUTime
		if d.NumThreads > 0 {
			p.threads = d.NumThreads
		}
		m.pending[pid] = p
	}

	if !m.primed {
		for i := range m.zones {
			if readOK[i] {
				m.counters[i].Rebase(rapl.Reading{At: at, EnergyUJ: readings[i]})
			}
		}
		m.primed = true
		m.lastAt = at
		m.lastEmitAt = at
		return Attribution{At: at, ZonesLive: live, ZonesVanished: m.vanishedCount()}, ErrNotPrimed
	}

	degraded := okReads < live || m.vanishedCount() > 0
	if at <= m.lastAt {
		m.dropped++
		obsTicksDropped.Inc()
		return m.droppedAttribution(at, live), fmt.Errorf("livemeter: clock did not advance: %w", ErrDroppedTick)
	}
	m.lastAt = at
	if okReads == 0 {
		m.dropped++
		obsTicksDropped.Inc()
		return m.droppedAttribution(at, live), fmt.Errorf("livemeter: no zone readable: %w", ErrDroppedTick)
	}

	// Phase 3: fold each readable zone's energy since its own last accepted
	// reading — a zone that missed ticks contributes its whole backlog here,
	// so energy is conserved across the gap.
	interval := at - m.lastEmitAt
	var energy units.Joules
	measured := 0
	for i := range m.zones {
		if !readOK[i] {
			continue
		}
		e, dt, ok := m.counters[i].EnergyDelta(rapl.Reading{At: at, EnergyUJ: readings[i]})
		if !ok {
			// First accepted reading for this zone (it failed during the
			// priming tick): baseline set, energy flows from the next one.
			degraded = true
			continue
		}
		if e.Power(dt) > m.maxPower {
			// Counter anomaly: a re-registered counter restarting from an
			// arbitrary value is indistinguishable from a wrap and would
			// book an absurd delta. EnergyDelta already re-based the zone
			// on this reading; discard the interval's energy.
			degraded = true
			obsZonesRebased.Inc()
			continue
		}
		energy += e
		measured++
	}
	if measured == 0 {
		m.dropped++
		obsTicksDropped.Inc()
		return m.droppedAttribution(at, live), fmt.Errorf("livemeter: no zone measurable yet: %w", ErrDroppedTick)
	}
	total := energy.Power(interval)

	attr := Attribution{
		At:             at,
		Interval:       interval,
		MachinePower:   total,
		Degraded:       degraded || m.dropped > 0,
		CoalescedTicks: m.dropped,
		ZonesLive:      live,
		ZonesVanished:  m.vanishedCount(),
	}
	procs := make(map[string]models.ProcSample, len(m.pending))
	for pid, p := range m.pending {
		procs[strconv.Itoa(pid)] = models.ProcSample{CPUTime: p.cpu, Threads: p.threads}
	}
	// Best-effort frequency: cpu0's current frequency, 0 when unreadable.
	var freq units.Hertz
	if khz, err := procfs.ReadCurFreqKHzReader(m.freqRoot, 0, m.readFile); err == nil {
		freq = units.Hertz(khz) * units.KHz
	}
	est := m.model.Observe(models.Tick{
		At:           at,
		Interval:     interval,
		MachinePower: total,
		Freq:         freq,
		Degraded:     attr.Degraded,
		Procs:        procs,
	})
	if est != nil {
		attr.PerPID = make(map[int]units.Watts, len(est))
		for id, w := range est {
			pid, err := strconv.Atoi(id)
			if err != nil {
				// A model returning IDs the meter never issued is a bug in
				// the model; don't fabricate PID 0.
				continue
			}
			attr.PerPID[pid] = w
		}
	}
	m.lastEmitAt = at
	m.dropped = 0
	m.pending = make(map[int]pendingProc, len(m.pending))
	obsTicksAttributed.Inc()
	if attr.Degraded {
		obsTicksDegraded.Inc()
	}
	if obs.Enabled() && total > 0 {
		var assigned units.Watts
		for _, w := range attr.PerPID {
			assigned += w
		}
		obsCoverage.Set(float64(assigned / total))
	}
	return attr, nil
}

// droppedAttribution is the (non-nil-error) payload for a dropped tick.
func (m *Meter) droppedAttribution(at time.Duration, live int) Attribution {
	return Attribution{
		At:             at,
		Degraded:       true,
		CoalescedTicks: m.dropped,
		ZonesLive:      live,
		ZonesVanished:  m.vanishedCount(),
	}
}

// readZone reads one zone's energy counter under the retry policy.
// Not-exist errors are permanent (the file is gone, not busy).
func (m *Meter) readZone(z *rapl.PowercapZone) (uint64, error) {
	var uj uint64
	attempts := 0
	err := m.retry.Do(func() error {
		attempts++
		var err error
		uj, err = z.ReadEnergy()
		return err
	}, func(err error) bool { return errors.Is(err, iofs.ErrNotExist) })
	if attempts > 1 {
		obsRetryAttempts.Add(uint64(attempts - 1))
	}
	return uj, err
}

func (m *Meter) vanishedCount() int {
	n := 0
	for i := range m.zoneState {
		if m.zoneState[i].vanished {
			n++
		}
	}
	return n
}

// Health reports each zone's availability, in discovery order.
func (m *Meter) Health() []ZoneHealth {
	out := make([]ZoneHealth, len(m.zones))
	for i, z := range m.zones {
		st := m.zoneState[i]
		out[i] = ZoneHealth{
			Name:              z.Name(),
			Vanished:          st.vanished,
			ConsecutiveMisses: st.misses,
			LastErr:           st.lastErr,
		}
	}
	return out
}

// Zones returns the discovered zone names, sorted.
func (m *Meter) Zones() []string {
	out := make([]string, len(m.zones))
	for i, z := range m.zones {
		out[i] = z.Name()
	}
	sort.Strings(out)
	return out
}

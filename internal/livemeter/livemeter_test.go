package livemeter

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"powerdiv/internal/faultfs"
	"powerdiv/internal/models"
	"powerdiv/internal/rapl"
	"powerdiv/internal/retry"
	"powerdiv/internal/units"
)

const bigRange = 262143328850 // a real package zone's µJ range

// newHost builds a synthetic host with the given zones.
func newHost(t *testing.T, zones ...faultfs.HostZoneSpec) *faultfs.Host {
	t.Helper()
	if len(zones) == 0 {
		zones = []faultfs.HostZoneSpec{{MaxRangeUJ: bigRange}}
	}
	h, err := faultfs.NewHost(t.TempDir(), t.TempDir(), zones)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// noSleep is a retry policy that does not wait between attempts.
func noSleep(attempts int) retry.Policy {
	return retry.Policy{Attempts: attempts, Sleep: func(time.Duration) {}}
}

func openMeter(t *testing.T, h *faultfs.Host, inj *faultfs.Injector) *Meter {
	t.Helper()
	cfg := Config{PowercapRoot: h.CapRoot, ProcRoot: h.ProcRoot, Retry: noSleep(3)}
	if inj != nil {
		cfg.ReadFile = inj.ReadFile
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestOpenNoRAPL(t *testing.T) {
	_, err := Open(Config{PowercapRoot: t.TempDir(), ProcRoot: t.TempDir()})
	if !errors.Is(err, rapl.ErrNoRAPL) {
		t.Errorf("err = %v, want ErrNoRAPL", err)
	}
}

func TestMeterAttribution(t *testing.T) {
	h := newHost(t)
	h.SetProcJiffies(10, 0)
	h.SetProcJiffies(11, 0)
	m := openMeter(t, h, nil)

	base := time.Unix(1000, 0)
	if _, err := m.Sample(base, []int{10, 11}); !errors.Is(err, ErrNotPrimed) {
		t.Fatalf("first sample err = %v, want ErrNotPrimed", err)
	}

	// Over 1 s: 40 J consumed; pid 10 used 2× the CPU of pid 11.
	h.AddEnergy(0, 40)
	h.SetProcJiffies(10, 100) // 1 s
	h.SetProcJiffies(11, 50)  // 0.5 s
	attr, err := m.Sample(base.Add(time.Second), []int{10, 11})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(attr.MachinePower)-40) > 1e-9 {
		t.Errorf("machine power = %v, want 40", attr.MachinePower)
	}
	if attr.Degraded {
		t.Error("clean interval flagged degraded")
	}
	if attr.PerPID == nil {
		t.Fatal("no attribution")
	}
	if math.Abs(float64(attr.PerPID[10])-40*2.0/3) > 1e-9 {
		t.Errorf("pid 10 = %v, want 26.67", attr.PerPID[10])
	}
	if math.Abs(float64(attr.PerPID[11])-40/3.0) > 1e-9 {
		t.Errorf("pid 11 = %v, want 13.33", attr.PerPID[11])
	}
}

func TestMeterIdleInterval(t *testing.T) {
	h := newHost(t)
	h.SetProcJiffies(10, 0)
	m := openMeter(t, h, nil)
	base := time.Unix(1000, 0)
	m.Sample(base, []int{10})
	// Energy flows but the process used no CPU: machine power is known,
	// attribution is nil.
	h.AddEnergy(0, 10)
	attr, err := m.Sample(base.Add(time.Second), []int{10})
	if err != nil {
		t.Fatal(err)
	}
	if attr.PerPID != nil {
		t.Errorf("attribution for idle interval = %v, want nil", attr.PerPID)
	}
	if math.Abs(float64(attr.MachinePower)-10) > 1e-9 {
		t.Errorf("machine power = %v, want 10", attr.MachinePower)
	}
}

func TestMeterCounterWrap(t *testing.T) {
	// Start the counter 5 J before its wrap point and deliver 10 J.
	h := newHost(t, faultfs.HostZoneSpec{MaxRangeUJ: bigRange, StartUJ: bigRange - 5_000_000})
	h.SetProcJiffies(10, 0)
	m := openMeter(t, h, nil)
	base := time.Unix(1000, 0)
	m.Sample(base, []int{10})
	h.AddEnergy(0, 10)
	h.SetProcJiffies(10, 100)
	if h.Wraps(0) != 1 {
		t.Fatalf("wraps = %d, want 1", h.Wraps(0))
	}
	attr, err := m.Sample(base.Add(time.Second), []int{10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(attr.MachinePower)-10) > 1e-9 {
		t.Errorf("wrapped machine power = %v, want 10", attr.MachinePower)
	}
}

// A stalled clock drops the tick with ErrDroppedTick — not ErrNotPrimed —
// and the interval's energy and CPU time are attributed once time advances.
func TestMeterStalledClock(t *testing.T) {
	h := newHost(t)
	h.SetProcJiffies(10, 0)
	m := openMeter(t, h, nil)
	base := time.Unix(1000, 0)
	m.Sample(base, []int{10})

	h.AddEnergy(0, 20)
	h.SetProcJiffies(10, 100)
	_, err := m.Sample(base, []int{10})
	if !errors.Is(err, ErrDroppedTick) {
		t.Fatalf("same-instant sample err = %v, want ErrDroppedTick", err)
	}
	if errors.Is(err, ErrNotPrimed) {
		t.Fatal("stalled clock reported as ErrNotPrimed: callers cannot tell warm-up from degradation")
	}

	// Clock recovers after 2 s total; another 20 J and 100 jiffies flow.
	h.AddEnergy(0, 20)
	h.SetProcJiffies(10, 200)
	attr, err := m.Sample(base.Add(2*time.Second), []int{10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(attr.MachinePower)-20) > 1e-9 {
		t.Errorf("machine power = %v, want 20 (40 J over 2 s)", attr.MachinePower)
	}
	if attr.CoalescedTicks != 1 || !attr.Degraded {
		t.Errorf("CoalescedTicks = %d, Degraded = %v; want 1, true", attr.CoalescedTicks, attr.Degraded)
	}
	if math.Abs(float64(attr.PerPID[10])-20) > 1e-9 {
		t.Errorf("pid 10 = %v, want all 20 W", attr.PerPID[10])
	}
}

// A whole-tick read failure must not lose the interval: process CPU-time
// deltas and zone energy carry over to the next successful sample.
func TestDroppedTickCarriesActivity(t *testing.T) {
	h := newHost(t)
	h.SetProcJiffies(10, 0)
	h.SetProcJiffies(11, 0)
	inj := faultfs.NewInjector(1, 0)
	m := openMeter(t, h, inj)
	base := time.Unix(1000, 0)
	m.Sample(base, []int{10, 11})

	// Tick 2: 30 J, pid 10 busy; every energy read fails (burst outlasts
	// the 3-attempt retry budget).
	h.AddEnergy(0, 30)
	h.AddProcJiffies(10, 100)
	inj.FailNext("energy_uj", 3)
	_, err := m.Sample(base.Add(time.Second), []int{10, 11})
	if !errors.Is(err, ErrDroppedTick) {
		t.Fatalf("err = %v, want ErrDroppedTick", err)
	}

	// Tick 3: another 30 J, pid 11 busy. The attribution must cover both
	// intervals: 60 J over 2 s, split evenly between the pids.
	h.AddEnergy(0, 30)
	h.AddProcJiffies(11, 100)
	attr, err := m.Sample(base.Add(2*time.Second), []int{10, 11})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(attr.MachinePower)-30) > 1e-9 {
		t.Errorf("machine power = %v, want 30 (60 J over 2 s)", attr.MachinePower)
	}
	if attr.CoalescedTicks != 1 {
		t.Errorf("CoalescedTicks = %d, want 1", attr.CoalescedTicks)
	}
	for _, pid := range []int{10, 11} {
		if math.Abs(float64(attr.PerPID[pid])-15) > 1e-9 {
			t.Errorf("pid %d = %v, want 15 W (dropped tick's activity must not be lost)", pid, attr.PerPID[pid])
		}
	}
}

// One zone failing must not advance the sibling zones' counters into an
// inconsistent state: the survivors are attributed now, the failed zone's
// backlog arrives with its next successful read, and total energy balances.
func TestZoneErrorKeepsSiblingsConsistent(t *testing.T) {
	h := newHost(t,
		faultfs.HostZoneSpec{MaxRangeUJ: bigRange},
		faultfs.HostZoneSpec{MaxRangeUJ: bigRange},
	)
	h.SetProcJiffies(10, 0)
	inj := faultfs.NewInjector(1, 0)
	m := openMeter(t, h, inj)
	base := time.Unix(1000, 0)
	m.Sample(base, []int{10})

	// Tick 2: both zones deliver 10 J; zone 1's reads all fail.
	h.AddEnergy(0, 10)
	h.AddEnergy(1, 10)
	h.AddProcJiffies(10, 100)
	inj.FailNext(h.ZoneDir(1), 3)
	attr, err := m.Sample(base.Add(time.Second), []int{10})
	if err != nil {
		t.Fatal(err)
	}
	if !attr.Degraded {
		t.Error("zone-failure tick not flagged degraded")
	}
	if math.Abs(float64(attr.MachinePower)-10) > 1e-9 {
		t.Errorf("degraded machine power = %v, want 10 (zone 0 only)", attr.MachinePower)
	}

	// Tick 3: both zones deliver another 10 J and zone 1 recovers: its
	// 20 J backlog spans both intervals.
	h.AddEnergy(0, 10)
	h.AddEnergy(1, 10)
	h.AddProcJiffies(10, 100)
	attr2, err := m.Sample(base.Add(2*time.Second), []int{10})
	if err != nil {
		t.Fatal(err)
	}
	// Energy balance: attributed power × interval over both ticks equals
	// the 40 J delivered in total.
	got := float64(attr.MachinePower)*1 + float64(attr2.MachinePower)*1
	if math.Abs(got-40) > 1e-9 {
		t.Errorf("total attributed energy = %v J, want 40 (none lost, none double-counted)", got)
	}
}

// A vanished zone degrades the meter to the survivors; when every zone is
// gone the meter reports ErrZoneVanished.
func TestZoneVanishMidRun(t *testing.T) {
	h := newHost(t,
		faultfs.HostZoneSpec{MaxRangeUJ: bigRange},
		faultfs.HostZoneSpec{MaxRangeUJ: bigRange},
	)
	h.SetProcJiffies(10, 0)
	m := openMeter(t, h, nil)
	base := time.Unix(1000, 0)
	m.Sample(base, []int{10})

	if err := h.RemoveZone(1); err != nil {
		t.Fatal(err)
	}
	// Two consecutive not-exist failures mark the zone vanished; both
	// ticks keep attributing from the survivor.
	for i := 1; i <= 3; i++ {
		h.AddEnergy(0, 10)
		h.AddProcJiffies(10, 100)
		attr, err := m.Sample(base.Add(time.Duration(i)*time.Second), []int{10})
		if err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
		if !attr.Degraded {
			t.Errorf("tick %d not degraded after zone removal", i)
		}
		if math.Abs(float64(attr.MachinePower)-10) > 1e-9 {
			t.Errorf("tick %d machine power = %v, want 10", i, attr.MachinePower)
		}
	}
	var vanished int
	for _, zh := range m.Health() {
		if zh.Vanished {
			vanished++
		}
	}
	if vanished != 1 {
		t.Errorf("Health reports %d vanished zones, want 1", vanished)
	}

	// The last zone goes too: the meter has nothing left to read.
	if err := h.RemoveZone(0); err != nil {
		t.Fatal(err)
	}
	var err error
	for i := 4; i <= 5; i++ {
		_, err = m.Sample(base.Add(time.Duration(i)*time.Second), []int{10})
	}
	if !errors.Is(err, ErrZoneVanished) {
		t.Errorf("err = %v, want ErrZoneVanished", err)
	}
	if errors.Is(err, ErrNotPrimed) {
		t.Error("all-zones-gone reported as ErrNotPrimed")
	}
}

// A counter that restarts from an arbitrary value (re-registration) must be
// re-based, not booked as a near-full-range wrap delta.
func TestCounterAnomalyGuard(t *testing.T) {
	h := newHost(t)
	h.SetProcJiffies(10, 0)
	m := openMeter(t, h, nil)
	base := time.Unix(1000, 0)
	m.Sample(base, []int{10})
	h.AddEnergy(0, 10)
	m.Sample(base.Add(time.Second), []int{10})

	// The counter jumps backwards by 100 J — as a wrap this would read as
	// ≈262 kJ in one second.
	if err := h.CorruptEnergy(0, 1_000_000); err != nil {
		t.Fatal(err)
	}
	h.AddProcJiffies(10, 100)
	_, err := m.Sample(base.Add(2*time.Second), []int{10})
	if !errors.Is(err, ErrDroppedTick) {
		t.Fatalf("anomalous tick err = %v, want ErrDroppedTick", err)
	}

	// Metering resumes correctly from the new baseline.
	h.AddEnergy(0, 10)
	h.AddProcJiffies(10, 100)
	attr, err := m.Sample(base.Add(3*time.Second), []int{10})
	if err != nil {
		t.Fatal(err)
	}
	// 10 J measurable over the 2 s since the last emit (the anomalous
	// interval's energy is unknowable and discarded).
	if math.Abs(float64(attr.MachinePower)-5) > 1e-9 {
		t.Errorf("post-anomaly machine power = %v, want 5", attr.MachinePower)
	}
}

// Transient read errors within the retry budget are absorbed entirely: the
// sample is clean, not degraded.
func TestRetryAbsorbsTransientErrors(t *testing.T) {
	h := newHost(t)
	h.SetProcJiffies(10, 0)
	inj := faultfs.NewInjector(1, 0)
	m := openMeter(t, h, inj)
	base := time.Unix(1000, 0)
	m.Sample(base, []int{10})

	h.AddEnergy(0, 10)
	h.AddProcJiffies(10, 100)
	inj.FailNext("energy_uj", 2) // 2 failures < 3 attempts
	attr, err := m.Sample(base.Add(time.Second), []int{10})
	if err != nil {
		t.Fatal(err)
	}
	if attr.Degraded {
		t.Error("retried-and-recovered tick flagged degraded")
	}
	if math.Abs(float64(attr.MachinePower)-10) > 1e-9 {
		t.Errorf("machine power = %v, want 10", attr.MachinePower)
	}
	if inj.Stats().InjectedErrors != 2 {
		t.Errorf("injected errors = %d, want 2", inj.Stats().InjectedErrors)
	}
}

// PID churn: a process that exits during a dropped tick still gets its
// accumulated activity attributed, and a reused PID does not inherit the
// old process's counters.
func TestPIDChurn(t *testing.T) {
	h := newHost(t)
	h.SetProcJiffies(10, 0)
	h.SetProcJiffies(11, 0)
	inj := faultfs.NewInjector(1, 0)
	m := openMeter(t, h, inj)
	base := time.Unix(1000, 0)
	m.Sample(base, []int{10, 11})

	// Tick 2 drops; pid 10 burns 1 s of CPU and then exits.
	h.AddEnergy(0, 20)
	h.AddProcJiffies(10, 100)
	inj.FailNext("energy_uj", 3)
	if _, err := m.Sample(base.Add(time.Second), []int{10, 11}); !errors.Is(err, ErrDroppedTick) {
		t.Fatalf("err = %v, want ErrDroppedTick", err)
	}
	if err := h.RemoveProc(10); err != nil {
		t.Fatal(err)
	}

	// Tick 3: pid 11 burns 1 s. Pid 10's pending second must still be
	// attributed: the pids split evenly.
	h.AddEnergy(0, 20)
	h.AddProcJiffies(11, 100)
	attr, err := m.Sample(base.Add(2*time.Second), []int{10, 11})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(attr.PerPID[10])-10) > 1e-9 || math.Abs(float64(attr.PerPID[11])-10) > 1e-9 {
		t.Errorf("PerPID = %v, want 10 W each", attr.PerPID)
	}

	// PID 10 is reused by a fresh process with a lower jiffy count: the
	// tracker must start it from scratch, not book a negative delta.
	h.SetProcJiffies(10, 5)
	h.AddEnergy(0, 20)
	attr, err = m.Sample(base.Add(3*time.Second), []int{10, 11})
	if err != nil {
		t.Fatal(err)
	}
	if w := attr.PerPID[10]; w != 0 {
		if math.IsNaN(float64(w)) || w < 0 {
			t.Errorf("reused pid 10 power = %v", w)
		}
	}
}

func TestMeterZones(t *testing.T) {
	h := newHost(t)
	m := openMeter(t, h, nil)
	zones := m.Zones()
	if len(zones) != 1 || zones[0] != "package-0" {
		t.Errorf("zones = %v", zones)
	}
}

func TestMeterWithFrequencyAndModel(t *testing.T) {
	// A residual-aware model receives the frequency read from a fake
	// cpufreq tree and the per-process thread counts.
	h := newHost(t)
	h.SetProcJiffies(10, 0)
	freqRoot := t.TempDir()
	cpuDir := filepath.Join(freqRoot, "cpu0", "cpufreq")
	if err := os.MkdirAll(cpuDir, 0o755); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(cpuDir, "scaling_cur_freq"), []byte("3600000\n"), 0o644)

	probe := &tickProbe{}
	m, err := Open(Config{
		PowercapRoot: h.CapRoot,
		ProcRoot:     h.ProcRoot,
		CPUFreqRoot:  freqRoot,
		Model:        probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1000, 0)
	m.Sample(base, []int{10})
	h.AddEnergy(0, 40)
	h.SetProcJiffies(10, 100)
	if _, err := m.Sample(base.Add(time.Second), []int{10}); err != nil {
		t.Fatal(err)
	}
	if probe.last.Freq != 3.6*units.GHz {
		t.Errorf("model saw freq %v, want 3.6 GHz", probe.last.Freq)
	}
	if probe.last.Degraded {
		t.Error("model saw a clean tick flagged degraded")
	}
	ps := probe.last.Procs["10"]
	if ps.Threads != 1 {
		t.Errorf("model saw %d threads, want 1", ps.Threads)
	}
	if ps.CPUTime != units.CPUTime(time.Second) {
		t.Errorf("model saw cpu %v, want 1s", ps.CPUTime)
	}
}

// tickProbe records the last tick it observed.
type tickProbe struct{ last models.Tick }

func (p *tickProbe) Name() string { return "probe" }
func (p *tickProbe) Observe(t models.Tick) map[string]units.Watts {
	p.last = t
	return nil
}

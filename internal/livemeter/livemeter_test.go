package livemeter

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"powerdiv/internal/models"
	"powerdiv/internal/rapl"
	"powerdiv/internal/units"
)

// fakeHost builds synthetic powercap and proc trees and lets tests advance
// the machine: energy counters and per-process jiffies.
type fakeHost struct {
	t        *testing.T
	capRoot  string
	procRoot string
	energyUJ uint64
	jiffies  map[int]uint64
}

func newFakeHost(t *testing.T) *fakeHost {
	t.Helper()
	h := &fakeHost{
		t:        t,
		capRoot:  t.TempDir(),
		procRoot: t.TempDir(),
		jiffies:  map[int]uint64{},
	}
	dir := filepath.Join(h.capRoot, "intel-rapl:0")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("name", "package-0\n")
	write("max_energy_range_uj", "262143328850\n")
	h.setEnergy(0)
	return h
}

func (h *fakeHost) setEnergy(uj uint64) {
	h.t.Helper()
	h.energyUJ = uj
	path := filepath.Join(h.capRoot, "intel-rapl:0", "energy_uj")
	if err := os.WriteFile(path, []byte(strconv.FormatUint(uj, 10)+"\n"), 0o644); err != nil {
		h.t.Fatal(err)
	}
}

func (h *fakeHost) addEnergy(joules float64) {
	h.setEnergy(h.energyUJ + uint64(joules*1e6))
}

func (h *fakeHost) setProc(pid int, jiffies uint64) {
	h.t.Helper()
	h.jiffies[pid] = jiffies
	dir := filepath.Join(h.procRoot, strconv.Itoa(pid))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		h.t.Fatal(err)
	}
	line := strconv.Itoa(pid) + " (worker) R 1 1 1 0 -1 0 0 0 0 0 " +
		strconv.FormatUint(jiffies, 10) + " 0 0 0 20 0 1 0 0 0 0\n"
	if err := os.WriteFile(filepath.Join(dir, "stat"), []byte(line), 0o644); err != nil {
		h.t.Fatal(err)
	}
}

func openMeter(t *testing.T, h *fakeHost) *Meter {
	t.Helper()
	m, err := Open(Config{PowercapRoot: h.capRoot, ProcRoot: h.procRoot})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestOpenNoRAPL(t *testing.T) {
	_, err := Open(Config{PowercapRoot: t.TempDir(), ProcRoot: t.TempDir()})
	if !errors.Is(err, rapl.ErrNoRAPL) {
		t.Errorf("err = %v, want ErrNoRAPL", err)
	}
}

func TestMeterAttribution(t *testing.T) {
	h := newFakeHost(t)
	h.setProc(10, 0)
	h.setProc(11, 0)
	m := openMeter(t, h)

	base := time.Unix(1000, 0)
	if _, err := m.Sample(base, []int{10, 11}); !errors.Is(err, ErrNotPrimed) {
		t.Fatalf("first sample err = %v, want ErrNotPrimed", err)
	}

	// Over 1 s: 40 J consumed; pid 10 used 2× the CPU of pid 11.
	h.addEnergy(40)
	h.setProc(10, 100) // 1 s
	h.setProc(11, 50)  // 0.5 s
	attr, err := m.Sample(base.Add(time.Second), []int{10, 11})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(attr.MachinePower)-40) > 1e-9 {
		t.Errorf("machine power = %v, want 40", attr.MachinePower)
	}
	if attr.PerPID == nil {
		t.Fatal("no attribution")
	}
	if math.Abs(float64(attr.PerPID[10])-40*2.0/3) > 1e-9 {
		t.Errorf("pid 10 = %v, want 26.67", attr.PerPID[10])
	}
	if math.Abs(float64(attr.PerPID[11])-40/3.0) > 1e-9 {
		t.Errorf("pid 11 = %v, want 13.33", attr.PerPID[11])
	}
}

func TestMeterIdleInterval(t *testing.T) {
	h := newFakeHost(t)
	h.setProc(10, 0)
	m := openMeter(t, h)
	base := time.Unix(1000, 0)
	m.Sample(base, []int{10})
	// Energy flows but the process used no CPU: machine power is known,
	// attribution is nil.
	h.addEnergy(10)
	attr, err := m.Sample(base.Add(time.Second), []int{10})
	if err != nil {
		t.Fatal(err)
	}
	if attr.PerPID != nil {
		t.Errorf("attribution for idle interval = %v, want nil", attr.PerPID)
	}
	if math.Abs(float64(attr.MachinePower)-10) > 1e-9 {
		t.Errorf("machine power = %v, want 10", attr.MachinePower)
	}
}

func TestMeterCounterWrap(t *testing.T) {
	h := newFakeHost(t)
	h.setEnergy(262143328850 - 5_000_000) // 5 J before wrap
	h.setProc(10, 0)
	m := openMeter(t, h)
	base := time.Unix(1000, 0)
	m.Sample(base, []int{10})
	h.setEnergy(5_000_000) // wrapped: 10 J consumed
	h.setProc(10, 100)
	attr, err := m.Sample(base.Add(time.Second), []int{10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(attr.MachinePower)-10) > 1e-9 {
		t.Errorf("wrapped machine power = %v, want 10", attr.MachinePower)
	}
}

func TestMeterNonAdvancingClock(t *testing.T) {
	h := newFakeHost(t)
	h.setProc(10, 0)
	m := openMeter(t, h)
	base := time.Unix(1000, 0)
	m.Sample(base, []int{10})
	if _, err := m.Sample(base, []int{10}); !errors.Is(err, ErrNotPrimed) {
		t.Errorf("same-instant sample err = %v, want ErrNotPrimed", err)
	}
}

func TestMeterZones(t *testing.T) {
	h := newFakeHost(t)
	m := openMeter(t, h)
	zones := m.Zones()
	if len(zones) != 1 || zones[0] != "package-0" {
		t.Errorf("zones = %v", zones)
	}
}

func TestMeterWithFrequencyAndModel(t *testing.T) {
	// A residual-aware model receives the frequency read from a fake
	// cpufreq tree and the per-process thread counts.
	h := newFakeHost(t)
	h.setProc(10, 0)
	freqRoot := t.TempDir()
	cpuDir := filepath.Join(freqRoot, "cpu0", "cpufreq")
	if err := os.MkdirAll(cpuDir, 0o755); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(cpuDir, "scaling_cur_freq"), []byte("3600000\n"), 0o644)

	probe := &tickProbe{}
	m, err := Open(Config{
		PowercapRoot: h.capRoot,
		ProcRoot:     h.procRoot,
		CPUFreqRoot:  freqRoot,
		Model:        probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1000, 0)
	m.Sample(base, []int{10})
	h.addEnergy(40)
	h.setProc(10, 100)
	if _, err := m.Sample(base.Add(time.Second), []int{10}); err != nil {
		t.Fatal(err)
	}
	if probe.last.Freq != 3.6*units.GHz {
		t.Errorf("model saw freq %v, want 3.6 GHz", probe.last.Freq)
	}
	ps := probe.last.Procs["10"]
	if ps.Threads != 1 {
		t.Errorf("model saw %d threads, want 1", ps.Threads)
	}
	if ps.CPUTime != units.CPUTime(time.Second) {
		t.Errorf("model saw cpu %v, want 1s", ps.CPUTime)
	}
}

// tickProbe records the last tick it observed.
type tickProbe struct{ last models.Tick }

func (p *tickProbe) Name() string { return "probe" }
func (p *tickProbe) Observe(t models.Tick) map[string]units.Watts {
	p.last = t
	return nil
}

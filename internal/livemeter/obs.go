package livemeter

import "powerdiv/internal/obs"

// Live-meter metrics. Writes are no-ops while the obs registry is disabled
// (the default). Counters are process-global: a process running several
// meters sums their activity, which matches how a scrape of the process is
// read. The storm test in metrics_storm_test.go pins these to the meter's
// own Health/error accounting.
var (
	obsTicksSampled = obs.NewCounter("powerdiv_livemeter_ticks_sampled_total",
		"Sample calls made against the meter (priming tick included).")
	obsTicksAttributed = obs.NewCounter("powerdiv_livemeter_ticks_attributed_total",
		"Samples that produced an attribution.")
	obsTicksDropped = obs.NewCounter("powerdiv_livemeter_ticks_dropped_total",
		"Samples dropped (ErrDroppedTick); their interval folds into the next emit.")
	obsTicksDegraded = obs.NewCounter("powerdiv_livemeter_ticks_degraded_total",
		"Attributions emitted with reduced fidelity (Attribution.Degraded).")
	obsZonesVanished = obs.NewCounter("powerdiv_livemeter_zones_vanished_total",
		"RAPL zones declared vanished and dropped from the live set.")
	obsZonesRebased = obs.NewCounter("powerdiv_livemeter_zones_rebased_total",
		"Zone readings discarded as counter anomalies (zone re-based instead).")
	obsRetryAttempts = obs.NewCounter("powerdiv_livemeter_retry_attempts_total",
		"Zone read retries beyond each first attempt.")
	obsCoverage = obs.NewGauge("powerdiv_livemeter_attribution_coverage",
		"Fraction of the last attribution's machine power assigned to processes.")
)

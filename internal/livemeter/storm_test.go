package livemeter

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"powerdiv/internal/faultfs"
	"powerdiv/internal/retry"
)

// TestMeterFaultStorm is the harness's headline proof: under a seeded storm
// of transient read errors (in bursts that outlast the retry budget),
// naturally wrapping counters, stalled clocks, PID churn and a zone that
// vanishes mid-run, the meter
//
//   - keeps running (only ErrDroppedTick is ever returned after priming,
//     never ErrNotPrimed, never a fatal error),
//   - attributes ≥99 % of the ground-truth energy the host delivered,
//   - keeps every per-PID split summing to the machine power.
//
// The storm is deterministic: one seed drives the injector and the script.
func TestMeterFaultStorm(t *testing.T) {
	const (
		seed       = 42
		ticks      = 400
		vanishTick = 250
		period     = 100 * time.Millisecond
		// Small counter ranges: at ~60 W a 2 kJ range wraps every ~33 s of
		// simulated time, so the storm crosses several wraps.
		zoneRange = 2_000_000_000
	)
	h, err := faultfs.NewHost(t.TempDir(), t.TempDir(), []faultfs.HostZoneSpec{
		{MaxRangeUJ: zoneRange, StartUJ: zoneRange - 50_000_000}, // wraps almost immediately
		{MaxRangeUJ: zoneRange},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The injector is armed only after Open and priming succeed: the storm
	// tests the long-running meter, not discovery.
	inj := faultfs.NewInjector(seed, 0)
	inj.SetBurstLen(4) // bursts outlast the 3-attempt retry budget
	inj.Only("energy_uj", "stat")

	m, err := Open(Config{
		PowercapRoot: h.CapRoot,
		ProcRoot:     h.ProcRoot,
		ReadFile:     inj.ReadFile,
		Retry:        retry.Policy{Attempts: 3, Sleep: func(time.Duration) {}},
	})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(seed))
	base := time.Unix(1000, 0)
	now := base
	pids := []int{10, 11, 12}
	for _, pid := range pids {
		h.SetProcJiffies(pid, 0)
	}
	if _, err := m.Sample(now, pids); !errors.Is(err, ErrNotPrimed) {
		t.Fatalf("prime err = %v", err)
	}
	inj.SetErrorRate(0.20)

	var (
		attributedJ   float64 // Σ machine power × interval over successful samples
		perPIDJ       = map[int]float64{}
		emits, drops  int
		coalescedMax  int
		degradedSeen  bool
		churnedPID    = 12
		churnAlive    = true
		clockStallRun = 0
	)
	for i := 1; i <= ticks; i++ {
		// The host always advances: energy flows and processes burn CPU
		// whether or not the meter manages to observe this tick.
		h.AddEnergy(0, 6.0) // 60 W × 100 ms
		if i < vanishTick {
			h.AddEnergy(1, 3.0) // 30 W × 100 ms
		}
		h.AddProcJiffies(10, 8) // 80 ms/tick
		h.AddProcJiffies(11, 4) // 40 ms/tick
		if churnAlive {
			h.AddProcJiffies(churnedPID, 2)
		}
		// PID churn: pid 12 dies and is reborn (reused) twice during the run.
		if i == 120 || i == 320 {
			h.RemoveProc(churnedPID)
			churnAlive = false
		}
		if i == 160 || i == 360 {
			h.SetProcJiffies(churnedPID, 1) // reused PID, fresh counters
			churnAlive = true
		}
		if i == vanishTick {
			if err := h.RemoveZone(1); err != nil {
				t.Fatal(err)
			}
		}
		// Stalled clock: ~5 % of ticks the timestamp source freezes (the
		// energy above still flowed — a broken clock doesn't stop physics).
		if clockStallRun == 0 && rng.Float64() < 0.05 {
			clockStallRun = 1 + rng.Intn(2)
		}
		if clockStallRun > 0 {
			clockStallRun--
		} else {
			now = now.Add(period)
		}
		// Drain phase: the last ticks are fault-free so the meter flushes
		// every carried-over interval before the final accounting.
		if i == ticks-5 {
			inj.SetErrorRate(0)
			clockStallRun = 0
			now = now.Add(period) // make sure the clock is advancing again
		}

		attr, err := m.Sample(now, pids)
		switch {
		case err == nil:
			emits++
			dt := attr.Interval.Seconds()
			attributedJ += float64(attr.MachinePower) * dt
			if attr.Degraded {
				degradedSeen = true
			}
			if attr.CoalescedTicks > coalescedMax {
				coalescedMax = attr.CoalescedTicks
			}
			if attr.PerPID != nil {
				var sum float64
				for pid, w := range attr.PerPID {
					if w < 0 || math.IsNaN(float64(w)) {
						t.Fatalf("tick %d: pid %d power %v", i, pid, w)
					}
					sum += float64(w)
					perPIDJ[pid] += float64(w) * dt
				}
				if math.Abs(sum-float64(attr.MachinePower)) > 1e-6*math.Max(1, float64(attr.MachinePower)) {
					t.Fatalf("tick %d: per-PID sum %v != machine %v", i, sum, attr.MachinePower)
				}
			}
		case errors.Is(err, ErrNotPrimed):
			t.Fatalf("tick %d: primed meter returned ErrNotPrimed: %v", i, err)
		case errors.Is(err, ErrDroppedTick):
			drops++
		default:
			t.Fatalf("tick %d: fatal meter error: %v", i, err)
		}
	}

	truth := h.DeliveredJoules(0) + h.DeliveredJoules(1)
	ratio := attributedJ / truth
	t.Logf("storm: %d emits, %d drops, max coalesced %d, wraps zone0=%d zone1=%d, injected=%d",
		emits, drops, coalescedMax, h.Wraps(0), h.Wraps(1), inj.Stats().InjectedErrors)
	t.Logf("storm: attributed %.1f J of %.1f J ground truth (%.2f%%)", attributedJ, truth, 100*ratio)

	if ratio < 0.99 {
		t.Errorf("attributed %.2f%% of ground-truth energy, want ≥99%%", 100*ratio)
	}
	if ratio > 1.01 {
		t.Errorf("attributed %.2f%% of ground-truth energy: double counting", 100*ratio)
	}
	// The storm must actually have exercised the degraded paths, or the
	// ≥99 % claim is vacuous.
	if drops == 0 {
		t.Error("storm produced no dropped ticks")
	}
	if !degradedSeen || coalescedMax == 0 {
		t.Errorf("storm exercised no degraded attribution (degraded=%v, coalescedMax=%d)", degradedSeen, coalescedMax)
	}
	if h.Wraps(0) == 0 {
		t.Error("zone 0 never wrapped")
	}
	if inj.Stats().InjectedErrors == 0 {
		t.Error("injector never fired")
	}
	// Per-PID attribution reached every process, including the churned one.
	for _, pid := range pids {
		if perPIDJ[pid] <= 0 {
			t.Errorf("pid %d attributed %.2f J, want > 0", pid, perPIDJ[pid])
		}
	}
	var vanished int
	for _, zh := range m.Health() {
		if zh.Vanished {
			vanished++
		}
	}
	if vanished != 1 {
		t.Errorf("Health reports %d vanished zones, want 1", vanished)
	}
}

package livemeter

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"powerdiv/internal/faultfs"
	"powerdiv/internal/obs"
	"powerdiv/internal/retry"
)

// scrapeSnapshots hits the given path on the obs HTTP handler and returns
// the metrics by name, exactly as an external scraper would see them.
func scrapeSnapshots(t *testing.T, path string) map[string]obs.Snapshot {
	t.Helper()
	rec := httptest.NewRecorder()
	obs.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if rec.Code != 200 {
		t.Fatalf("GET %s: status %d: %s", path, rec.Code, rec.Body.String())
	}
	var snaps []obs.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snaps); err != nil {
		t.Fatalf("GET %s did not parse: %v", path, err)
	}
	out := make(map[string]obs.Snapshot, len(snaps))
	for _, s := range snaps {
		out[s.Name] = s
	}
	return out
}

// TestMeterMetricsMatchStorm drives a seeded fault storm (transient error
// bursts, a vanishing zone, stalled clocks) through an obs-enabled meter and
// asserts that what an external scrape of /metrics reports agrees exactly
// with the meter's own accounting: the test-side tallies of drops, emits and
// degraded emits, and the Health() vanished count. This pins the metric hook
// points to the real control flow — an instrumentation site that drifts from
// its branch breaks the equality.
func TestMeterMetricsMatchStorm(t *testing.T) {
	obs.Default().Reset()
	obs.Enable(true)
	t.Cleanup(func() {
		obs.Enable(false)
		obs.Default().Reset()
	})

	const (
		seed       = 7
		ticks      = 240
		vanishTick = 150
		period     = 100 * time.Millisecond
		zoneRange  = 2_000_000_000
	)
	h, err := faultfs.NewHost(t.TempDir(), t.TempDir(), []faultfs.HostZoneSpec{
		{MaxRangeUJ: zoneRange},
		{MaxRangeUJ: zoneRange},
	})
	if err != nil {
		t.Fatal(err)
	}
	inj := faultfs.NewInjector(seed, 0)
	inj.SetBurstLen(4)
	inj.Only("energy_uj", "stat")

	m, err := Open(Config{
		PowercapRoot: h.CapRoot,
		ProcRoot:     h.ProcRoot,
		ReadFile:     inj.ReadFile,
		Retry:        retry.Policy{Attempts: 3, Sleep: func(time.Duration) {}},
	})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(seed))
	now := time.Unix(1000, 0)
	pids := []int{10, 11}
	for _, pid := range pids {
		h.SetProcJiffies(pid, 0)
	}
	if _, err := m.Sample(now, pids); !errors.Is(err, ErrNotPrimed) {
		t.Fatalf("prime err = %v", err)
	}
	inj.SetErrorRate(0.20)

	var emits, drops, degradedEmits int
	clockStallRun := 0
	for i := 1; i <= ticks; i++ {
		h.AddEnergy(0, 6.0)
		if i < vanishTick {
			h.AddEnergy(1, 3.0)
		}
		h.AddProcJiffies(10, 8)
		h.AddProcJiffies(11, 4)
		if i == vanishTick {
			if err := h.RemoveZone(1); err != nil {
				t.Fatal(err)
			}
		}
		if clockStallRun == 0 && rng.Float64() < 0.05 {
			clockStallRun = 1 + rng.Intn(2)
		}
		if clockStallRun > 0 {
			clockStallRun--
		} else {
			now = now.Add(period)
		}
		if i == ticks-5 {
			inj.SetErrorRate(0)
			clockStallRun = 0
			now = now.Add(period)
		}

		attr, err := m.Sample(now, pids)
		switch {
		case err == nil:
			emits++
			if attr.Degraded {
				degradedEmits++
			}
		case errors.Is(err, ErrDroppedTick):
			drops++
		default:
			t.Fatalf("tick %d: unexpected meter error: %v", i, err)
		}
	}
	if drops == 0 || degradedEmits == 0 {
		t.Fatalf("storm too tame to prove anything: %d drops, %d degraded emits", drops, degradedEmits)
	}

	vanished := 0
	for _, zh := range m.Health() {
		if zh.Vanished {
			vanished++
		}
	}
	if vanished != 1 {
		t.Fatalf("Health reports %d vanished zones, want 1", vanished)
	}

	snaps := scrapeSnapshots(t, "/metrics.json")
	wantCounts := map[string]float64{
		"powerdiv_livemeter_ticks_sampled_total":    float64(ticks + 1), // priming tick included
		"powerdiv_livemeter_ticks_attributed_total": float64(emits),
		"powerdiv_livemeter_ticks_dropped_total":    float64(drops),
		"powerdiv_livemeter_ticks_degraded_total":   float64(degradedEmits),
		"powerdiv_livemeter_zones_vanished_total":   float64(vanished),
	}
	for name, want := range wantCounts {
		s, ok := snaps[name]
		if !ok {
			t.Errorf("metric %s missing from /metrics.json", name)
			continue
		}
		if s.Value != want {
			t.Errorf("%s = %v, want %v (meter-side accounting)", name, s.Value, want)
		}
	}
	if s := snaps["powerdiv_livemeter_retry_attempts_total"]; s.Value == 0 {
		t.Error("retry_attempts_total = 0: the storm's bursts never triggered a retry")
	}
	// The last emit happens after the fault-free drain, where per-PID power
	// sums to machine power: the coverage gauge must read (about) 1.
	if s := snaps["powerdiv_livemeter_attribution_coverage"]; math.Abs(s.Value-1) > 1e-6 {
		t.Errorf("attribution_coverage = %v, want ~1 after a clean drain", s.Value)
	}

	// The Prometheus text endpoint must agree with the JSON one.
	rec := httptest.NewRecorder()
	obs.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	prom := rec.Body.String()
	for name, want := range wantCounts {
		line := fmt.Sprintf("%s %d", name, int(want))
		if !strings.Contains(prom, line) {
			t.Errorf("/metrics missing line %q", line)
		}
	}
}

package serve

import (
	"encoding/json"
	"regexp"
	"testing"
)

// fuzzOpts keeps compile cheap under the fuzzer: tiny roster caps so a
// pathological-but-admissible spec still compiles in microseconds.
func fuzzOpts() Options {
	return Options{MaxScenarios: 8, MaxNodes: 4, MaxInstances: 64, Runners: -1}.withDefaults()
}

var fingerprintRE = regexp.MustCompile(`^[0-9a-f]{16}$`)

// FuzzSubmitJSON pins the submission decoder's safety contract, mirroring
// FuzzTraceJSON's model: arbitrary bytes never panic decode or compile, and
// any spec compile accepts is replayable — it recompiles to the identical
// fingerprint, unit count and labels, and an empty snapshot carrying it
// passes LoadSnapshot, so a daemon restart can always resume it.
func FuzzSubmitJSON(f *testing.F) {
	for _, spec := range []SubmitRequest{
		{Kind: KindTraffic, Seed: 42, Scenarios: 3, WindowMS: 4000, RunForMS: 5000, StableWindowMS: 2000},
		{Kind: KindPairs, Seed: 7, Functions: []string{"fibonacci", "int64"}, Sizes: []int{1, 2}},
		{Kind: KindFleet, Seed: 9, Nodes: 3, ScenariosPerNode: 2, WindowMS: 3000},
		{Kind: KindTraffic, Arrivals: "bursty", Kernels: []string{"matrixprod", "rand"}, Baseload: 1},
	} {
		data, err := json.Marshal(spec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"kind":"trace","trace":{"version":1,"kind":"poisson","seed":1,"window_ns":1000000000,` +
		`"scenarios":[{"apps":[{"id":"a","kernel":"fibonacci","threads":1,"start_ns":0,"stop_ns":0}]}]}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"kind":"traffic","window_ms":-1}`))
	f.Add([]byte(`{"kind":"pairs","functions":["nope"]}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`not json at all`))
	opts := fuzzOpts()
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec SubmitRequest
		if err := json.Unmarshal(data, &spec); err != nil {
			return
		}
		rn, aerr := compile(spec, opts)
		if aerr != nil {
			switch aerr.Code {
			case ErrBadRequest, ErrUnknownKernel, ErrRosterTooLarge:
			default:
				t.Fatalf("compile rejected with non-admission code %q: %v", aerr.Code, aerr)
			}
			return
		}
		if rn.units <= 0 {
			t.Fatalf("accepted spec compiled to %d units", rn.units)
		}
		if len(rn.labels) != rn.units {
			t.Fatalf("accepted spec has %d labels for %d units", len(rn.labels), rn.units)
		}
		if !fingerprintRE.MatchString(rn.fingerprint) {
			t.Fatalf("accepted spec has malformed fingerprint %q", rn.fingerprint)
		}
		again, aerr := compile(spec, opts)
		if aerr != nil {
			t.Fatalf("accepted spec failed to recompile: %v", aerr)
		}
		if again.fingerprint != rn.fingerprint || again.units != rn.units {
			t.Fatalf("recompile drifted: fingerprint %s/%s, units %d/%d",
				rn.fingerprint, again.fingerprint, rn.units, again.units)
		}
		snap := Snapshot{
			Version:     SnapshotVersion,
			JobID:       "job-000001",
			Kind:        rn.kind,
			Fingerprint: rn.fingerprint,
			State:       StateQueued,
			Spec:        spec,
		}
		encoded, err := json.Marshal(snap)
		if err != nil {
			t.Fatalf("accepted spec's snapshot failed to marshal: %v", err)
		}
		if _, _, err := LoadSnapshot(encoded, opts); err != nil {
			t.Fatalf("accepted spec's snapshot failed to load: %v", err)
		}
	})
}

// FuzzSnapshotJSON pins the durable-state loader: arbitrary bytes never
// panic LoadSnapshot, and any snapshot it accepts is resumable — the job
// rebuilds with its completed rows in range, and the rebuilt job's own
// snapshot round-trips through LoadSnapshot again.
func FuzzSnapshotJSON(f *testing.F) {
	opts := fuzzOpts()
	spec := SubmitRequest{Kind: KindTraffic, Seed: 42, Scenarios: 3, WindowMS: 4000, RunForMS: 5000, StableWindowMS: 2000}
	if rn, aerr := compile(spec, opts); aerr == nil {
		partial := Snapshot{
			Version: SnapshotVersion, JobID: "job-000007", Kind: rn.kind,
			Fingerprint: rn.fingerprint, State: StateRunning, Spec: spec,
			Rows: []*ResultRow{{
				Index: 1, Label: rn.labels[1],
				Models: []ModelScore{{Model: "oracle", AE: 0.25, ScoredTicks: 3}},
			}},
		}
		if data, err := json.Marshal(partial); err == nil {
			f.Add(data)
		}
		empty := partial
		empty.Rows = nil
		empty.State = StateQueued
		if data, err := json.Marshal(empty); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"job_id":"../../etc/passwd"}`))
	f.Add([]byte(`{"version":99,"job_id":"job-000001"}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, rn, err := LoadSnapshot(data, opts)
		if err != nil {
			return
		}
		job := jobFromSnapshot(snap, rn)
		if job.completed < 0 || job.completed > job.Units {
			t.Fatalf("accepted snapshot rebuilt %d completed rows of %d units", job.completed, job.Units)
		}
		if len(job.rows) != job.Units {
			t.Fatalf("accepted snapshot rebuilt %d row slots for %d units", len(job.rows), job.Units)
		}
		again, err := json.Marshal(snapshotOf(job))
		if err != nil {
			t.Fatalf("accepted snapshot failed to re-marshal: %v", err)
		}
		if _, _, err := LoadSnapshot(again, opts); err != nil {
			t.Fatalf("re-marshalled snapshot failed to load: %v", err)
		}
	})
}

package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// SnapshotVersion is the on-disk format version. Loaders reject other
// versions outright — a snapshot that decodes is always fully understood.
const SnapshotVersion = 1

// Snapshot is a job's durable state: the submission spec (enough to
// recompile the runnable), the fingerprint binding the rows to that spec,
// and every completed row verbatim. Partial snapshots re-enter the queue on
// daemon start and skip their completed rows; terminal ones are served from
// disk. Row float64s survive the JSON round trip bit for bit, so a resumed
// job's final table is indistinguishable from an uninterrupted run's.
type Snapshot struct {
	Version     int           `json:"version"`
	JobID       string        `json:"job_id"`
	Kind        string        `json:"kind"`
	Fingerprint string        `json:"fingerprint"`
	State       State         `json:"state"`
	Spec        SubmitRequest `json:"spec"`
	Rows        []*ResultRow  `json:"rows,omitempty"`
	Summary     *Summary      `json:"summary,omitempty"`
	Err         string        `json:"error,omitempty"`
}

// snapshotOf captures the job's current state under its lock.
func snapshotOf(j *Job) Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	snap := Snapshot{
		Version:     SnapshotVersion,
		JobID:       j.ID,
		Kind:        j.Kind,
		Fingerprint: j.Fingerprint,
		State:       j.state,
		Spec:        j.Spec,
		Summary:     j.summary,
		Err:         j.errMsg,
	}
	for _, r := range j.rows {
		if r != nil {
			snap.Rows = append(snap.Rows, r)
		}
	}
	return snap
}

// writeSnapshot persists atomically: temp file in the same directory, fsync
// semantics via rename. A crash mid-write leaves the previous snapshot
// intact; a crash between snapshots loses at most SnapshotEvery rows of
// work, never correctness.
func writeSnapshot(dir string, snap Snapshot) error {
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("serve: marshal snapshot %s: %w", snap.JobID, err)
	}
	final := filepath.Join(dir, snap.JobID+".json")
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("serve: write snapshot %s: %w", snap.JobID, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("serve: commit snapshot %s: %w", snap.JobID, err)
	}
	return nil
}

// LoadSnapshot decodes and fully validates one snapshot file against the
// server's admission options: version, spec recompilation, fingerprint
// match, and row shape. Accepting implies the job is resumable — the fuzz
// contract — so every check a resume would need happens here, not later.
func LoadSnapshot(data []byte, opts Options) (Snapshot, *runnable, error) {
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return Snapshot{}, nil, fmt.Errorf("serve: snapshot: %w", err)
	}
	if snap.Version != SnapshotVersion {
		return Snapshot{}, nil, fmt.Errorf("serve: snapshot version %d, want %d", snap.Version, SnapshotVersion)
	}
	if snap.JobID == "" || strings.ContainsAny(snap.JobID, "/\\") || strings.Contains(snap.JobID, "..") {
		return Snapshot{}, nil, fmt.Errorf("serve: snapshot job ID %q invalid", snap.JobID)
	}
	switch snap.State {
	case StateQueued, StateRunning, StateDone, StateFailed, StateCancelled:
	default:
		return Snapshot{}, nil, fmt.Errorf("serve: snapshot state %q invalid", snap.State)
	}
	rn, aerr := compile(snap.Spec, opts)
	if aerr != nil {
		return Snapshot{}, nil, fmt.Errorf("serve: snapshot spec no longer compiles: %v", aerr)
	}
	if rn.fingerprint != snap.Fingerprint {
		return Snapshot{}, nil, fmt.Errorf("serve: snapshot fingerprint %s does not match spec fingerprint %s",
			snap.Fingerprint, rn.fingerprint)
	}
	if rn.kind != snap.Kind {
		return Snapshot{}, nil, fmt.Errorf("serve: snapshot kind %q does not match spec kind %q", snap.Kind, rn.kind)
	}
	seen := make(map[int]bool, len(snap.Rows))
	for _, r := range snap.Rows {
		if r == nil {
			return Snapshot{}, nil, fmt.Errorf("serve: snapshot holds a null row")
		}
		if r.Index < 0 || r.Index >= rn.units {
			return Snapshot{}, nil, fmt.Errorf("serve: snapshot row index %d out of range [0,%d)", r.Index, rn.units)
		}
		if seen[r.Index] {
			return Snapshot{}, nil, fmt.Errorf("serve: snapshot row index %d duplicated", r.Index)
		}
		seen[r.Index] = true
		if r.Label != rn.labels[r.Index] {
			return Snapshot{}, nil, fmt.Errorf("serve: snapshot row %d label %q, spec says %q", r.Index, r.Label, rn.labels[r.Index])
		}
		if rn.kind == KindFleet && r.Node == nil {
			return Snapshot{}, nil, fmt.Errorf("serve: fleet snapshot row %d without a node digest", r.Index)
		}
		if rn.kind != KindFleet && len(r.Models) == 0 {
			return Snapshot{}, nil, fmt.Errorf("serve: snapshot row %d without model scores", r.Index)
		}
	}
	if snap.State == StateDone && len(seen) != rn.units {
		return Snapshot{}, nil, fmt.Errorf("serve: done snapshot holds %d of %d rows", len(seen), rn.units)
	}
	return snap, rn, nil
}

// jobFromSnapshot rebuilds a job from a validated snapshot. Non-terminal
// snapshots come back as queued with their completed rows prefilled; the
// runner then evaluates only the remainder.
func jobFromSnapshot(snap Snapshot, rn *runnable) *Job {
	j := newJob(snap.JobID, snap.Spec, rn)
	for _, r := range snap.Rows {
		j.rows[r.Index] = r
		j.completed++
	}
	if snap.State.Terminal() {
		j.state = snap.State
		j.errMsg = snap.Err
		j.summary = snap.Summary
		if snap.State == StateDone && j.summary == nil {
			j.summary = summarize(rn, j.rows)
		}
	}
	return j
}

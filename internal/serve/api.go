package serve

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/division"
	"powerdiv/internal/experiments"
	"powerdiv/internal/fleet"
	"powerdiv/internal/models"
	"powerdiv/internal/protocol"
	"powerdiv/internal/traffic"
)

// Job kinds a submission selects. Every kind shards into independent units
// (scenarios, or fleet nodes) whose results are pure functions of the spec,
// which is what makes snapshots resumable bit for bit.
const (
	// KindTraffic generates timed churn rosters and scores the traffic
	// model roster per scenario.
	KindTraffic = "traffic"
	// KindTrace replays a recorded traffic.Trace (version 1 JSON).
	KindTrace = "trace"
	// KindPairs runs the paper's static stress-pair campaign.
	KindPairs = "pairs"
	// KindFleet runs a heterogeneous fleet campaign, sharded per node.
	KindFleet = "fleet"
)

// SubmitRequest is the POST /v1/jobs body. Durations are integral
// milliseconds so the JSON stays language-neutral. Unset fields take the
// documented defaults; which fields apply depends on Kind.
type SubmitRequest struct {
	// Kind is "traffic", "trace", "pairs" or "fleet".
	Kind string `json:"kind"`
	// Context selects the paper's machine context: "lab" (default;
	// hyperthreading and turbo off) or "prod".
	Context string `json:"context,omitempty"`
	// Machine names the calibrated spec ("SMALL INTEL", default, or
	// "DAHU"). Fleet jobs derive per-node specs instead.
	Machine string `json:"machine,omitempty"`
	// Seed drives every derived seed of the job.
	Seed int64 `json:"seed,omitempty"`
	// RunForMS / StableWindowMS override the protocol context's run
	// duration and scored-window length.
	RunForMS       int64 `json:"run_for_ms,omitempty"`
	StableWindowMS int64 `json:"stable_window_ms,omitempty"`

	// Traffic fields.
	Arrivals  string   `json:"arrivals,omitempty"` // poisson|bursty|diurnal|mixed
	Scenarios int      `json:"scenarios,omitempty"`
	WindowMS  int64    `json:"window_ms,omitempty"`
	Kernels   []string `json:"kernels,omitempty"`
	Baseload  int      `json:"baseload,omitempty"`

	// Trace replay.
	Trace *traffic.Trace `json:"trace,omitempty"`

	// Pairs fields: stress function names × thread sizes.
	Functions []string `json:"functions,omitempty"`
	Sizes     []int    `json:"sizes,omitempty"`

	// Fleet fields.
	Nodes            int `json:"nodes,omitempty"`
	ScenariosPerNode int `json:"scenarios_per_node,omitempty"`

	// Job control.
	//
	// DeadlineMS bounds the job's wall-clock run; past it the in-flight
	// simulators abort at the next tick and the job fails with the
	// deadline error. CacheBytes budgets the job's private memoization
	// tier (0 = server default); Stream asks the submission response to
	// stream NDJSON rows instead of returning 202 immediately.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	CacheBytes int64 `json:"cache_bytes,omitempty"`
	Stream     bool  `json:"stream,omitempty"`
}

// Admission bounds beyond Options' roster caps: durations and list lengths
// a submission may request. They keep compile itself cheap (compile runs
// before admission control can reject) and job cost proportional to the
// roster caps.
const (
	maxDurationMS = 10 * 60 * 1000 // 10 simulated minutes per run/window
	maxFunctions  = 16
	maxSizes      = 8
	maxThreadSize = 64
	maxKernelList = 64
)

// checkDurations bounds every duration field of a submission.
func checkDurations(spec SubmitRequest) *APIError {
	for _, d := range []struct {
		name string
		ms   int64
	}{
		{"run_for_ms", spec.RunForMS},
		{"stable_window_ms", spec.StableWindowMS},
		{"window_ms", spec.WindowMS},
		{"deadline_ms", spec.DeadlineMS},
	} {
		if d.ms < 0 {
			e := apiErrorf(ErrBadRequest, "%s must be non-negative", d.name)
			return &e
		}
		if d.ms > maxDurationMS {
			e := apiErrorf(ErrBadRequest, "%s %d exceeds the %d ms cap", d.name, d.ms, int64(maxDurationMS))
			return &e
		}
	}
	if len(spec.Kernels) > maxKernelList {
		e := apiErrorf(ErrBadRequest, "%d kernels exceed the %d cap", len(spec.Kernels), maxKernelList)
		return &e
	}
	return nil
}

// runnable is a compiled submission: everything a runner needs to evaluate
// shards, plus the fingerprint binding snapshots to the spec. It is rebuilt
// from the spec on resume — never serialized — so a snapshot is valid
// exactly when its spec still compiles to the same fingerprint.
type runnable struct {
	kind        string
	units       int
	labels      []string
	fingerprint string

	// Scenario kinds.
	pctx      protocol.Context
	scenarios []protocol.Scenario
	window    time.Duration
	factories func(map[string]division.Baseline) []models.Factory

	// Fleet kind.
	fleetCfg fleet.Config
	nodes    []fleet.Node
}

// compile validates a submission against the server's admission caps and
// builds its runnable. The returned *APIError carries the typed code the
// HTTP layer writes; compile succeeding is the "accepted" in the fuzz
// contract accepted ⇒ resumable.
func compile(spec SubmitRequest, opts Options) (*runnable, *APIError) {
	if aerr := checkDurations(spec); aerr != nil {
		return nil, aerr
	}
	switch spec.Kind {
	case KindTraffic, KindTrace, KindPairs:
		return compileScenarioJob(spec, opts)
	case KindFleet:
		return compileFleetJob(spec, opts)
	default:
		e := apiErrorf(ErrBadRequest, "unknown kind %q (want traffic, trace, pairs or fleet)", spec.Kind)
		return nil, &e
	}
}

// protocolContext builds the job's protocol context from the shared
// machine/context/seed fields.
func protocolContext(spec SubmitRequest) (protocol.Context, *APIError) {
	name := spec.Machine
	if name == "" {
		name = cpumodel.SmallIntel().Name
	}
	mspec, ok := cpumodel.SpecByName(name)
	if !ok {
		e := apiErrorf(ErrBadRequest, "unknown machine %q", spec.Machine)
		return protocol.Context{}, &e
	}
	var pctx protocol.Context
	switch spec.Context {
	case "", "lab":
		pctx = experiments.LabContext(mspec, spec.Seed)
	case "prod":
		pctx = experiments.ProdContext(mspec, spec.Seed)
	default:
		e := apiErrorf(ErrBadRequest, "unknown context %q (want lab or prod)", spec.Context)
		return protocol.Context{}, &e
	}
	if spec.RunForMS < 0 || spec.StableWindowMS < 0 || spec.WindowMS < 0 || spec.DeadlineMS < 0 {
		e := apiErrorf(ErrBadRequest, "durations must be non-negative")
		return protocol.Context{}, &e
	}
	if spec.RunForMS > 0 {
		pctx.RunFor = time.Duration(spec.RunForMS) * time.Millisecond
	}
	if spec.StableWindowMS > 0 {
		pctx.StableWindow = time.Duration(spec.StableWindowMS) * time.Millisecond
	}
	return pctx, nil
}

// compileScenarioJob builds the runnable of the three scenario-sharded
// kinds. Scenario order — and so unit indexes — is deterministic for a
// spec, which the snapshot format relies on.
func compileScenarioJob(spec SubmitRequest, opts Options) (*runnable, *APIError) {
	pctx, aerr := protocolContext(spec)
	if aerr != nil {
		return nil, aerr
	}
	rn := &runnable{kind: spec.Kind, pctx: pctx}
	switch spec.Kind {
	case KindTraffic:
		for _, k := range spec.Kernels {
			if _, ok := traffic.KernelByName(k); !ok {
				e := apiErrorf(ErrUnknownKernel, "unknown kernel %q", k)
				return nil, &e
			}
		}
		kind := traffic.Poisson
		if spec.Arrivals != "" {
			var err error
			if kind, err = traffic.KindByName(spec.Arrivals); err != nil {
				e := apiErrorf(ErrBadRequest, "%v", err)
				return nil, &e
			}
		}
		n := spec.Scenarios
		if n <= 0 {
			n = 3
		}
		if n > opts.MaxScenarios {
			e := apiErrorf(ErrRosterTooLarge, "%d scenarios exceed the cap of %d", n, opts.MaxScenarios)
			return nil, &e
		}
		window := 10 * time.Second
		if spec.WindowMS > 0 {
			window = time.Duration(spec.WindowMS) * time.Millisecond
		}
		tcfg := experiments.TrafficConfig(pctx, kind, n, window)
		tcfg.Kernels = spec.Kernels
		tcfg.Baseload = spec.Baseload
		tcfg = tcfg.WithDefaults()
		if err := tcfg.Validate(); err != nil {
			e := apiErrorf(ErrBadRequest, "%v", err)
			return nil, &e
		}
		scenarios, err := traffic.Generate(tcfg)
		if err != nil {
			e := apiErrorf(ErrBadRequest, "%v", err)
			return nil, &e
		}
		rn.scenarios, rn.window = scenarios, window
	case KindTrace:
		if spec.Trace == nil {
			e := apiErrorf(ErrBadRequest, "trace job without a trace")
			return nil, &e
		}
		// Round-trip through Decode so a submitted trace passes exactly
		// the validation a trace file would (version, schedule sanity).
		raw, err := spec.Trace.Encode()
		if err != nil {
			e := apiErrorf(ErrBadRequest, "%v", err)
			return nil, &e
		}
		tr, err := traffic.Decode(raw)
		if err != nil {
			e := apiErrorf(ErrBadRequest, "%v", err)
			return nil, &e
		}
		if len(tr.Scenarios) > opts.MaxScenarios {
			e := apiErrorf(ErrRosterTooLarge, "%d trace scenarios exceed the cap of %d", len(tr.Scenarios), opts.MaxScenarios)
			return nil, &e
		}
		instances := 0
		for _, s := range tr.Scenarios {
			instances += len(s.Apps)
		}
		if instances > opts.MaxInstances {
			e := apiErrorf(ErrRosterTooLarge, "%d trace instances exceed the cap of %d", instances, opts.MaxInstances)
			return nil, &e
		}
		if tr.Window() > maxDurationMS*time.Millisecond {
			e := apiErrorf(ErrBadRequest, "trace window %v exceeds the %v cap", tr.Window(), maxDurationMS*time.Millisecond)
			return nil, &e
		}
		scenarios, err := tr.ProtocolScenarios()
		if err != nil {
			e := apiErrorf(ErrUnknownKernel, "%v", err)
			return nil, &e
		}
		rn.scenarios, rn.window = scenarios, tr.Window()
	case KindPairs:
		fns := spec.Functions
		if len(fns) == 0 {
			fns = []string{"fibonacci", "int64"}
		}
		if len(fns) > maxFunctions {
			e := apiErrorf(ErrRosterTooLarge, "%d functions exceed the %d cap", len(fns), maxFunctions)
			return nil, &e
		}
		sizes := spec.Sizes
		if len(sizes) == 0 {
			sizes = []int{1, 2}
		}
		if len(sizes) > maxSizes {
			e := apiErrorf(ErrRosterTooLarge, "%d sizes exceed the %d cap", len(sizes), maxSizes)
			return nil, &e
		}
		for _, sz := range sizes {
			if sz <= 0 || sz > maxThreadSize {
				e := apiErrorf(ErrBadRequest, "thread size %d out of range [1,%d]", sz, maxThreadSize)
				return nil, &e
			}
		}
		for _, fn := range fns {
			if _, ok := traffic.KernelByName(fn); !ok {
				e := apiErrorf(ErrUnknownKernel, "unknown stress function %q", fn)
				return nil, &e
			}
		}
		scenarios, err := protocol.StressPairs(fns, sizes)
		if err != nil {
			e := apiErrorf(ErrUnknownKernel, "%v", err)
			return nil, &e
		}
		if len(scenarios) > opts.MaxScenarios {
			e := apiErrorf(ErrRosterTooLarge, "%d pair scenarios exceed the cap of %d", len(scenarios), opts.MaxScenarios)
			return nil, &e
		}
		rn.scenarios, rn.window = scenarios, pctx.RunFor
	}
	if len(rn.scenarios) == 0 {
		e := apiErrorf(ErrBadRequest, "job compiles to zero scenarios")
		return nil, &e
	}
	rn.units = len(rn.scenarios)
	rn.labels = make([]string, rn.units)
	for i, s := range rn.scenarios {
		rn.labels[i] = s.Label()
	}
	rn.factories = experiments.TrafficFactories(rn.scenarios)
	fpKind := protocol.TrafficCampaign
	if spec.Kind == KindPairs {
		fpKind = protocol.PairCampaign
	}
	rn.fingerprint = protocol.CampaignFingerprint(rn.pctx, rn.scenarios, fpKind, rn.runDuration())
	return rn, nil
}

// runDuration is how long each of the job's simulations runs: the traffic
// window for timed rosters, the protocol RunFor for static pairs.
func (rn *runnable) runDuration() time.Duration {
	if rn.kind == KindPairs {
		return rn.pctx.RunFor
	}
	return rn.window
}

// compileFleetJob builds a fleet runnable: one unit per node.
func compileFleetJob(spec SubmitRequest, opts Options) (*runnable, *APIError) {
	for _, k := range spec.Kernels {
		if _, ok := traffic.KernelByName(k); !ok {
			e := apiErrorf(ErrUnknownKernel, "unknown kernel %q", k)
			return nil, &e
		}
	}
	kind := traffic.Poisson
	if spec.Arrivals != "" {
		var err error
		if kind, err = traffic.KindByName(spec.Arrivals); err != nil {
			e := apiErrorf(ErrBadRequest, "%v", err)
			return nil, &e
		}
	}
	n := spec.Nodes
	if n <= 0 {
		n = 8
	}
	if n > opts.MaxNodes {
		e := apiErrorf(ErrRosterTooLarge, "%d fleet nodes exceed the cap of %d", n, opts.MaxNodes)
		return nil, &e
	}
	if spec.ScenariosPerNode > opts.MaxScenarios {
		e := apiErrorf(ErrRosterTooLarge, "%d scenarios per node exceed the cap of %d", spec.ScenariosPerNode, opts.MaxScenarios)
		return nil, &e
	}
	cfg := fleet.Config{
		Nodes:            n,
		Seed:             spec.Seed,
		Kind:             kind,
		ScenariosPerNode: spec.ScenariosPerNode,
		Kernels:          spec.Kernels,
		Baseload:         spec.Baseload,
		Production:       spec.Context == "prod",
	}
	if spec.WindowMS > 0 {
		cfg.Window = time.Duration(spec.WindowMS) * time.Millisecond
	}
	if spec.RunForMS > 0 {
		cfg.RunFor = time.Duration(spec.RunForMS) * time.Millisecond
	}
	if spec.StableWindowMS > 0 {
		cfg.StableWindow = time.Duration(spec.StableWindowMS) * time.Millisecond
	}
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		e := apiErrorf(ErrBadRequest, "%v", err)
		return nil, &e
	}
	nodes := fleet.Nodes(cfg)
	// Validate one node's traffic shard at admission: shard configs differ
	// only in seed and capacity, so node 0 passing means they all do.
	if err := fleet.NodeTrafficConfig(cfg, nodes[0]).Validate(); err != nil {
		e := apiErrorf(ErrBadRequest, "%v", err)
		return nil, &e
	}
	rn := &runnable{
		kind:        KindFleet,
		units:       len(nodes),
		labels:      make([]string, len(nodes)),
		fleetCfg:    cfg,
		nodes:       nodes,
		fingerprint: fleetFingerprint(cfg),
	}
	for i, nd := range nodes {
		rn.labels[i] = nd.ID
	}
	return rn, nil
}

// fleetFingerprint content-addresses a fleet job. The fleet's node specs
// and shards are pure functions of the defaulted config, so hashing the
// config's canonical rendering addresses the same simulations
// CampaignFingerprint addresses for scenario jobs.
func fleetFingerprint(cfg fleet.Config) string {
	h := fnv.New64a()
	kernels := append([]string(nil), cfg.Kernels...)
	sort.Strings(kernels)
	fmt.Fprintf(h, "fleet|n:%d|seed:%d|kind:%s|spn:%d|win:%d|run:%d|stable:%d|skew:%g|jitter:%g|noise:%g|prod:%t|base:%d",
		cfg.Nodes, cfg.Seed, cfg.Kind, cfg.ScenariosPerNode, int64(cfg.Window), int64(cfg.RunFor),
		int64(cfg.StableWindow), cfg.FreqSkewFrac, cfg.NoiseJitterFrac, float64(cfg.BaseNoise),
		cfg.Production, cfg.Baseload)
	for _, k := range kernels {
		h.Write([]byte{0})
		h.Write([]byte(k))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// shard evaluates unit i and reduces it to its result row. Each unit's row
// is a pure function of (spec, i): simulation and model seeds derive from
// scenario labels or node IDs, never from evaluation order — the property
// the kill-and-resume test pins end to end.
func (rn *runnable) shard(cctx context.Context, i int, baselines map[string]division.Baseline, fs []models.Factory) (*ResultRow, error) {
	row := &ResultRow{Index: i, Label: rn.labels[i]}
	switch rn.kind {
	case KindFleet:
		digest, err := fleet.EvaluateNode(cctx, rn.fleetCfg, rn.nodes[i])
		if err != nil {
			return nil, err
		}
		row.Node = &digest
	case KindPairs:
		evs, err := protocol.EvaluateScenarioStreaming(cctx, rn.pctx, rn.scenarios[i], fs, baselines, protocol.ObjectiveActive, 0)
		if err != nil {
			return nil, err
		}
		row.Models = make([]ModelScore, len(evs))
		for m, ev := range evs {
			row.Models[m] = ModelScore{
				Model:       ev.Model,
				AE:          ev.AE,
				ScoredTicks: ev.ScoredTicks,
			}
		}
	default: // KindTraffic, KindTrace
		evs, err := protocol.EvaluateTrafficScenarioStreaming(cctx, rn.pctx, rn.scenarios[i], fs, baselines, rn.window)
		if err != nil {
			return nil, err
		}
		row.Models = make([]ModelScore, len(evs))
		for m, ev := range evs {
			row.Models[m] = ModelScore{
				Model:       ev.Model,
				AE:          ev.AE,
				Coverage:    ev.Coverage,
				ScoredTicks: ev.ScoredTicks,
				BusyTicks:   ev.BusyTicks,
			}
		}
	}
	return row, nil
}

// measureBaselines runs the job's phase 1 (a no-op for fleet jobs, whose
// nodes measure their own) and builds the factory roster.
func (rn *runnable) measureBaselines(cctx context.Context, pctx protocol.Context) (map[string]division.Baseline, []models.Factory, error) {
	if rn.kind == KindFleet {
		return nil, nil, nil
	}
	baselines, err := protocol.MeasureBaselinesParallelCtx(cctx, pctx, protocol.AppsOf(rn.scenarios))
	if err != nil {
		return nil, nil, err
	}
	return baselines, rn.factories(baselines), nil
}

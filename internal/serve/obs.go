package serve

import "powerdiv/internal/obs"

// Service metrics, exposed through the shared obs registry at /metrics
// (Prometheus text) and /metrics.json. All writes are no-ops while the
// registry is disabled; the daemon enables it at startup.
var (
	obsSubmitted = obs.NewCounter("powerdiv_serve_jobs_submitted_total",
		"Jobs accepted into the queue (including resumed partial snapshots).")
	obsRejected = obs.NewCounter("powerdiv_serve_jobs_rejected_total",
		"Submissions rejected by admission control (4xx/429/503).")
	obsCompleted = obs.NewCounter("powerdiv_serve_jobs_completed_total",
		"Jobs finished in state done.")
	obsFailed = obs.NewCounter("powerdiv_serve_jobs_failed_total",
		"Jobs finished in state failed (including deadline overruns).")
	obsCancelled = obs.NewCounter("powerdiv_serve_jobs_cancelled_total",
		"Jobs finished in state cancelled (client request or disconnect).")
	obsResumedJobs = obs.NewCounter("powerdiv_serve_jobs_resumed_total",
		"Partial snapshots re-queued at daemon start.")
	obsResumedRows = obs.NewCounter("powerdiv_serve_rows_resumed_total",
		"Completed rows restored from snapshots instead of re-simulated.")
	obsRowsStreamed = obs.NewCounter("powerdiv_serve_rows_streamed_total",
		"NDJSON result rows written to clients.")
	obsSnapshots = obs.NewCounter("powerdiv_serve_snapshots_written_total",
		"Snapshot files committed (periodic and terminal).")
	obsQueueDepth = obs.NewGauge("powerdiv_serve_queue_depth",
		"Jobs waiting in the admission queue.")
	obsRunning = obs.NewGauge("powerdiv_serve_jobs_running",
		"Jobs currently executing on the runner pool.")
	obsJobSeconds = obs.NewHistogram("powerdiv_serve_job_seconds",
		"Wall-clock latency from dequeue to terminal state.",
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 300)
)

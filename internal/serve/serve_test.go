package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// contextWithTimeout is a test-scoped context for Wait calls.
func contextWithTimeout(t *testing.T, d time.Duration) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// testSpec is the canonical small traffic job the lifecycle tests submit:
// deterministic, a few hundred milliseconds of wall clock, enough scenarios
// to interrupt meaningfully.
func testSpec(scenarios int) SubmitRequest {
	return SubmitRequest{
		Kind:           KindTraffic,
		Seed:           42,
		Scenarios:      scenarios,
		WindowMS:       4000,
		RunForMS:       5000,
		StableWindowMS: 2000,
	}
}

// newTestServer builds a server + httptest frontend.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

// submitJob POSTs a spec and decodes the 202 response.
func submitJob(t *testing.T, base string, spec SubmitRequest) submitResponse {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, raw)
	}
	var sr submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// readStream consumes an NDJSON result stream into rows + terminal line.
func readStream(t *testing.T, r io.Reader) ([]ResultRow, resultTerminal) {
	t.Helper()
	var rows []ResultRow
	var term resultTerminal
	sawTerm := false
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var probe struct {
			Done *bool `json:"done"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("stream line is not JSON: %q: %v", line, err)
		}
		if probe.Done != nil {
			if sawTerm {
				t.Fatal("stream emitted two terminal lines")
			}
			sawTerm = true
			if err := json.Unmarshal(line, &term); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if sawTerm {
			t.Fatal("row after the terminal line")
		}
		var row ResultRow
		if err := json.Unmarshal(line, &row); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawTerm {
		t.Fatal("stream ended without a terminal line")
	}
	return rows, term
}

// fetchResults GETs the full result stream of a job.
func fetchResults(t *testing.T, base, id string) ([]ResultRow, resultTerminal) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results content type %q", ct)
	}
	return readStream(t, resp.Body)
}

// requireRowsIdentical compares two row sets Float64bits-for-Float64bits.
func requireRowsIdentical(t *testing.T, want, got []ResultRow) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%d rows vs %d rows", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Index != g.Index || w.Label != g.Label {
			t.Fatalf("row %d: (%d,%q) vs (%d,%q)", i, w.Index, w.Label, g.Index, g.Label)
		}
		if len(w.Models) != len(g.Models) {
			t.Fatalf("row %d: %d models vs %d", i, len(w.Models), len(g.Models))
		}
		for m := range w.Models {
			wm, gm := w.Models[m], g.Models[m]
			if wm.Model != gm.Model {
				t.Fatalf("row %d model %d: %q vs %q", i, m, wm.Model, gm.Model)
			}
			if math.Float64bits(wm.AE) != math.Float64bits(gm.AE) {
				t.Errorf("row %d %s: AE %v != %v", i, wm.Model, wm.AE, gm.AE)
			}
			if math.Float64bits(wm.Coverage) != math.Float64bits(gm.Coverage) {
				t.Errorf("row %d %s: Coverage %v != %v", i, wm.Model, wm.Coverage, gm.Coverage)
			}
			if wm.ScoredTicks != gm.ScoredTicks || wm.BusyTicks != gm.BusyTicks {
				t.Errorf("row %d %s: ticks (%d,%d) != (%d,%d)", i, wm.Model,
					wm.ScoredTicks, wm.BusyTicks, gm.ScoredTicks, gm.BusyTicks)
			}
		}
	}
}

// requireSummariesIdentical compares job summaries bit for bit.
func requireSummariesIdentical(t *testing.T, want, got *Summary) {
	t.Helper()
	if want == nil || got == nil {
		t.Fatalf("summary missing: want=%v got=%v", want != nil, got != nil)
	}
	if len(want.Models) != len(got.Models) {
		t.Fatalf("%d summary models vs %d", len(want.Models), len(got.Models))
	}
	for i := range want.Models {
		w, g := want.Models[i], got.Models[i]
		if w.Model != g.Model || w.Scenarios != g.Scenarios {
			t.Fatalf("summary %d: (%q,%d) vs (%q,%d)", i, w.Model, w.Scenarios, g.Model, g.Scenarios)
		}
		for _, f := range []struct {
			name string
			a, b float64
		}{
			{"MeanAE", w.MeanAE, g.MeanAE},
			{"MaxAE", w.MaxAE, g.MaxAE},
			{"MeanCoverage", w.MeanCoverage, g.MeanCoverage},
		} {
			if math.Float64bits(f.a) != math.Float64bits(f.b) {
				t.Errorf("summary %s %s: %v != %v", w.Model, f.name, f.a, f.b)
			}
		}
	}
}

// TestServeLifecycle is the uninterrupted end-to-end pass: submit over
// HTTP, stream NDJSON rows in index order, check status transitions and
// the terminal summary line.
func TestServeLifecycle(t *testing.T) {
	_, hs := newTestServer(t, Options{SnapshotDir: t.TempDir()})
	spec := testSpec(5)
	sr := submitJob(t, hs.URL, spec)
	if sr.Units != 5 || sr.Kind != KindTraffic || len(sr.Fingerprint) != 16 {
		t.Fatalf("submit response %+v", sr)
	}
	rows, term := fetchResults(t, hs.URL, sr.ID)
	if len(rows) != 5 {
		t.Fatalf("%d rows streamed, want 5", len(rows))
	}
	for i, row := range rows {
		if row.Index != i {
			t.Fatalf("row %d has index %d — stream must be index-ordered", i, row.Index)
		}
		if len(row.Models) == 0 {
			t.Fatalf("row %d has no model scores", i)
		}
	}
	if !term.Done || term.State != StateDone || term.Error != "" {
		t.Fatalf("terminal line %+v", term)
	}
	if term.Summary == nil || len(term.Summary.Models) == 0 {
		t.Fatal("terminal line has no summary")
	}
	if term.Fingerprint != sr.Fingerprint {
		t.Fatalf("terminal fingerprint %s != submit fingerprint %s", term.Fingerprint, sr.Fingerprint)
	}

	// Status endpoint agrees.
	resp, err := http.Get(hs.URL + "/v1/jobs/" + sr.ID)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.State != StateDone || st.Completed != 5 {
		t.Fatalf("status %+v", st)
	}

	// Re-reading results replays the identical rows.
	again, term2 := fetchResults(t, hs.URL, sr.ID)
	requireRowsIdentical(t, rows, again)
	requireSummariesIdentical(t, term.Summary, term2.Summary)
}

// TestServeKillResume is the tentpole e2e: run a job uninterrupted for the
// reference table; run the same spec on a snapshot-every-row server and
// kill the daemon mid-job; restart over the same snapshot directory and
// let it resume. The resumed job's rows and summary must be
// Float64bits-identical to the uninterrupted run's.
func TestServeKillResume(t *testing.T) {
	spec := testSpec(8)

	// Reference: uninterrupted run.
	_, hs := newTestServer(t, Options{SnapshotDir: t.TempDir()})
	ref := submitJob(t, hs.URL, spec)
	wantRows, wantTerm := fetchResults(t, hs.URL, ref.ID)
	if wantTerm.State != StateDone {
		t.Fatalf("reference run ended %s", wantTerm.State)
	}

	// Interrupted: snapshot after every row, kill once progress exists.
	dir := t.TempDir()
	s2, hs2 := newTestServer(t, Options{SnapshotDir: dir, SnapshotEvery: 1})
	victim := submitJob(t, hs2.URL, spec)
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := s2.Job(victim.ID).Status()
		if st.Completed >= 2 || st.State.Terminal() {
			if st.State.Terminal() {
				t.Logf("job finished before the kill (completed=%d); resume will be a no-op replay", st.Completed)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job made no progress before the kill deadline")
		}
		time.Sleep(200 * time.Microsecond)
	}
	s2.Kill()
	hs2.Close()

	// Restart over the same snapshot dir: the partial job re-enters the
	// queue and completes; the killed daemon's rows are reused bit for bit.
	s3, hs3 := newTestServer(t, Options{SnapshotDir: dir, SnapshotEvery: 1})
	job := s3.Job(victim.ID)
	if job == nil {
		t.Fatal("restarted server did not restore the job")
	}
	gotRows, gotTerm := fetchResults(t, hs3.URL, victim.ID)
	if gotTerm.State != StateDone {
		t.Fatalf("resumed job ended %s (%s)", gotTerm.State, gotTerm.Error)
	}
	if gotTerm.Fingerprint != wantTerm.Fingerprint {
		t.Fatalf("fingerprint drifted across restart: %s != %s", gotTerm.Fingerprint, wantTerm.Fingerprint)
	}
	requireRowsIdentical(t, wantRows, gotRows)
	requireSummariesIdentical(t, wantTerm.Summary, gotTerm.Summary)
	if s3.Drain(10*time.Second) != true {
		t.Fatal("drain timed out")
	}
}

// TestServeResumeFromPartialSnapshot pins the resume path deterministically:
// a hand-planted partial snapshot (state running, first rows present) must
// be requeued, completed by evaluating only the missing units, and end with
// the uninterrupted run's exact table. This covers the mid-job window the
// kill test can only hit probabilistically.
func TestServeResumeFromPartialSnapshot(t *testing.T) {
	spec := testSpec(6)

	_, hs := newTestServer(t, Options{SnapshotDir: t.TempDir()})
	ref := submitJob(t, hs.URL, spec)
	wantRows, wantTerm := fetchResults(t, hs.URL, ref.ID)

	rn, aerr := compile(spec, Options{}.withDefaults())
	if aerr != nil {
		t.Fatal(aerr)
	}
	partial := Snapshot{
		Version:     SnapshotVersion,
		JobID:       "job-000123",
		Kind:        rn.kind,
		Fingerprint: rn.fingerprint,
		State:       StateRunning,
		Spec:        spec,
	}
	for i := 0; i < 2; i++ {
		row := wantRows[i]
		partial.Rows = append(partial.Rows, &row)
	}
	dir := t.TempDir()
	if err := writeSnapshot(dir, partial); err != nil {
		t.Fatal(err)
	}
	s2, hs2 := newTestServer(t, Options{SnapshotDir: dir})
	job := s2.Job("job-000123")
	if job == nil {
		t.Fatal("partial snapshot was not restored")
	}
	gotRows, gotTerm := fetchResults(t, hs2.URL, "job-000123")
	if gotTerm.State != StateDone {
		t.Fatalf("resumed job ended %s (%s)", gotTerm.State, gotTerm.Error)
	}
	requireRowsIdentical(t, wantRows, gotRows)
	requireSummariesIdentical(t, wantTerm.Summary, gotTerm.Summary)

	// The next submission's ID continues past the restored counter.
	next := submitJob(t, hs2.URL, testSpec(2))
	if next.ID <= "job-000123" {
		t.Fatalf("new job ID %s does not continue past the restored job-000123", next.ID)
	}
}

// TestServeStreamSubmit exercises "stream":true: the submission response
// itself is the NDJSON row stream.
func TestServeStreamSubmit(t *testing.T) {
	_, hs := newTestServer(t, Options{SnapshotDir: t.TempDir()})
	spec := testSpec(3)
	spec.Stream = true
	body, _ := json.Marshal(spec)
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream submit: status %d", resp.StatusCode)
	}
	rows, term := readStream(t, resp.Body)
	if len(rows) != 3 || term.State != StateDone {
		t.Fatalf("%d rows, state %s", len(rows), term.State)
	}
}

// TestServeStreamDisconnectCancels pins the disconnect seam: a streaming
// submitter that goes away cancels the job, which aborts its in-flight
// simulators and ends cancelled — not done.
func TestServeStreamDisconnectCancels(t *testing.T) {
	s, hs := newTestServer(t, Options{SnapshotDir: t.TempDir()})
	spec := testSpec(16)
	spec.Seed = 7
	spec.Stream = true
	body, _ := json.Marshal(spec)
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	// Read one row so the job is definitely admitted and running, then
	// drop the connection.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadBytes('\n'); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(30 * time.Second)
	for {
		jobs := s.Jobs()
		if len(jobs) == 1 && jobs[0].State().Terminal() {
			if st := jobs[0].State(); st != StateCancelled && st != StateDone {
				t.Fatalf("disconnected job ended %s", st)
			}
			if jobs[0].State() == StateDone {
				t.Log("job outran the disconnect; cancellation had nothing to stop")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached a terminal state after disconnect")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeCancelEndpoint cancels a running job via DELETE and checks it
// lands in cancelled with a terminal snapshot.
func TestServeCancelEndpoint(t *testing.T) {
	s, hs := newTestServer(t, Options{SnapshotDir: t.TempDir()})
	sr := submitJob(t, hs.URL, testSpec(16))
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+sr.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st := s.Job(sr.ID).Wait(contextWithTimeout(t, 30*time.Second))
	if st != StateCancelled && st != StateDone {
		t.Fatalf("cancelled job ended %s", st)
	}
}

// TestServeDeadline submits a job with a deadline it cannot meet and
// expects a failed state mentioning the deadline.
func TestServeDeadline(t *testing.T) {
	s, hs := newTestServer(t, Options{SnapshotDir: t.TempDir()})
	spec := testSpec(32)
	spec.Seed = 99
	// Ten simulated minutes per run: even one solo baseline outlasts the
	// 1 ms deadline, so the deadline always fires mid-campaign.
	spec.WindowMS = maxDurationMS
	spec.RunForMS = maxDurationMS
	spec.StableWindowMS = 10000
	spec.DeadlineMS = 1
	sr := submitJob(t, hs.URL, spec)
	st := s.Job(sr.ID).Wait(contextWithTimeout(t, 30*time.Second))
	if st != StateFailed {
		t.Fatalf("deadline job ended %s", st)
	}
	if status := s.Job(sr.ID).Status(); !strings.Contains(status.Error, "deadline") {
		t.Fatalf("deadline job error %q", status.Error)
	}
}

// TestServeErrorPaths table-tests the typed 4xx bodies.
func TestServeErrorPaths(t *testing.T) {
	_, hs := newTestServer(t, Options{SnapshotDir: t.TempDir(), MaxScenarios: 4})
	cases := []struct {
		name     string
		body     string
		status   int
		code     string
		endpoint string
		method   string
	}{
		{"bad json", `{"kind":`, http.StatusBadRequest, ErrBadJSON, "/v1/jobs", "POST"},
		{"unknown kind", `{"kind":"quantum"}`, http.StatusBadRequest, ErrBadRequest, "/v1/jobs", "POST"},
		{"unknown kernel", `{"kind":"traffic","kernels":["fission"]}`, http.StatusBadRequest, ErrUnknownKernel, "/v1/jobs", "POST"},
		{"unknown function", `{"kind":"pairs","functions":["fission"]}`, http.StatusBadRequest, ErrUnknownKernel, "/v1/jobs", "POST"},
		{"oversized roster", `{"kind":"traffic","scenarios":400}`, http.StatusRequestEntityTooLarge, ErrRosterTooLarge, "/v1/jobs", "POST"},
		{"oversized window", `{"kind":"traffic","window_ms":99999999}`, http.StatusBadRequest, ErrBadRequest, "/v1/jobs", "POST"},
		{"unknown machine", `{"kind":"traffic","machine":"CRAY-1"}`, http.StatusBadRequest, ErrBadRequest, "/v1/jobs", "POST"},
		{"trace without trace", `{"kind":"trace"}`, http.StatusBadRequest, ErrBadRequest, "/v1/jobs", "POST"},
		{"unknown job", "", http.StatusNotFound, ErrNotFound, "/v1/jobs/job-999999", "GET"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var err error
			if tc.method == "POST" {
				resp, err = http.Post(hs.URL+tc.endpoint, "application/json", strings.NewReader(tc.body))
			} else {
				resp, err = http.Get(hs.URL + tc.endpoint)
			}
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.status)
			}
			var eb errorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
				t.Fatalf("error body not JSON: %v", err)
			}
			if eb.Error.Code != tc.code {
				t.Fatalf("code %q, want %q", eb.Error.Code, tc.code)
			}
			if eb.Error.Message == "" {
				t.Fatal("empty error message")
			}
		})
	}
}

// TestServeQueueFull fills the queue and expects 429 + Retry-After.
// Runners are disabled so the queue state is deterministic — the bound
// under live runners is covered by the race stress test.
func TestServeQueueFull(t *testing.T) {
	_, hs := newTestServer(t, Options{QueueCap: 2, Runners: -1})
	submitJob(t, hs.URL, testSpec(2))
	submitJob(t, hs.URL, testSpec(2))
	body, _ := json.Marshal(testSpec(2))
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var eb errorBody
	json.NewDecoder(resp.Body).Decode(&eb)
	if eb.Error.Code != ErrQueueFull {
		t.Fatalf("code %q", eb.Error.Code)
	}
}

// TestServeDrainRejects checks that a draining server refuses new jobs
// with the typed 503 and finishes the ones it holds.
func TestServeDrainRejects(t *testing.T) {
	s, hs := newTestServer(t, Options{SnapshotDir: t.TempDir()})
	sr := submitJob(t, hs.URL, testSpec(2))
	done := make(chan bool, 1)
	go func() { done <- s.Drain(30 * time.Second) }()
	// Draining must reject new submissions while the in-flight job runs.
	deadline := time.Now().Add(10 * time.Second)
	for {
		body, _ := json.Marshal(testSpec(2))
		resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			if eb.Error.Code != ErrDraining {
				t.Fatalf("code %q", eb.Error.Code)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drain never started rejecting")
		}
		time.Sleep(time.Millisecond)
	}
	if !<-done {
		t.Fatal("drain timed out")
	}
	if st := s.Job(sr.ID).State(); st != StateDone {
		t.Fatalf("drained job ended %s, want done", st)
	}
}

// TestServeFleetJob runs a small fleet submission end to end: per-node
// digest rows and a fleet.Reduce summary.
func TestServeFleetJob(t *testing.T) {
	_, hs := newTestServer(t, Options{SnapshotDir: t.TempDir()})
	spec := SubmitRequest{Kind: KindFleet, Seed: 5, Nodes: 3, WindowMS: 3000, RunForMS: 3000, StableWindowMS: 1500}
	sr := submitJob(t, hs.URL, spec)
	if sr.Units != 3 {
		t.Fatalf("fleet job has %d units, want 3", sr.Units)
	}
	rows, term := fetchResults(t, hs.URL, sr.ID)
	if term.State != StateDone {
		t.Fatalf("fleet job ended %s (%s)", term.State, term.Error)
	}
	for i, row := range rows {
		if row.Node == nil {
			t.Fatalf("fleet row %d without node digest", i)
		}
		if want := fmt.Sprintf("node-%05d", i); row.Node.Node.ID != want {
			t.Fatalf("fleet row %d is node %s, want %s", i, row.Node.Node.ID, want)
		}
	}
	if term.Summary == nil || term.Summary.Fleet == nil || term.Summary.Fleet.Nodes != 3 {
		t.Fatalf("fleet summary %+v", term.Summary)
	}
}

// TestServeHealthAndMetrics smoke-checks the operational endpoints.
func TestServeHealthAndMetrics(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	for _, path := range []string{"/healthz", "/metrics", "/metrics.json"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Fatalf("%s: empty body", path)
		}
	}
}

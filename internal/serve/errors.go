package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Error codes of the JSON API. Every non-2xx response carries a typed body
// {"error":{"code":...,"message":...}} so clients dispatch on a stable code
// instead of parsing prose.
const (
	// ErrBadJSON: the request body is not valid JSON for the endpoint.
	ErrBadJSON = "bad_json"
	// ErrBadRequest: well-formed JSON with invalid field values.
	ErrBadRequest = "bad_request"
	// ErrUnknownKernel: a kernel / stress-function name the simulator has
	// no workload for.
	ErrUnknownKernel = "unknown_kernel"
	// ErrRosterTooLarge: the submission exceeds the server's admission
	// caps (scenarios, fleet nodes, or trace instances).
	ErrRosterTooLarge = "roster_too_large"
	// ErrQueueFull: the bounded job queue is at capacity; retry after the
	// Retry-After header's seconds.
	ErrQueueFull = "queue_full"
	// ErrDraining: the daemon is shutting down and admits no new jobs.
	ErrDraining = "draining"
	// ErrNotFound: no job with that ID.
	ErrNotFound = "not_found"
)

// APIError is the typed error payload of every non-2xx response.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e APIError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// errorBody is the wire envelope: {"error":{...}}.
type errorBody struct {
	Error APIError `json:"error"`
}

// apiErrorf builds an APIError with a formatted message.
func apiErrorf(code, format string, args ...any) APIError {
	return APIError{Code: code, Message: fmt.Sprintf(format, args...)}
}

// statusFor maps an error code to its HTTP status.
func statusFor(code string) int {
	switch code {
	case ErrBadJSON, ErrBadRequest, ErrUnknownKernel:
		return http.StatusBadRequest
	case ErrRosterTooLarge:
		return http.StatusRequestEntityTooLarge
	case ErrQueueFull:
		return http.StatusTooManyRequests
	case ErrDraining:
		return http.StatusServiceUnavailable
	case ErrNotFound:
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

// writeError emits the typed error body. Queue-full responses carry a
// Retry-After so well-behaved clients back off instead of hammering.
func writeError(w http.ResponseWriter, err APIError) {
	w.Header().Set("Content-Type", "application/json")
	if err.Code == ErrQueueFull {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(statusFor(err.Code))
	json.NewEncoder(w).Encode(errorBody{Error: err})
}

package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"powerdiv/internal/protocol"
)

// TestServeConcurrencyStress hammers a 2-slot queue with parallel
// submissions, concurrent cancellations and result streams while sampling
// the shared worker budget. Invariants (all checked under -race via the
// Makefile's race target):
//
//   - live simulation workers never exceed GOMAXPROCS (the shared
//     protocol budget is the only source of simulation goroutines);
//   - admission queue depth never exceeds QueueCap;
//   - every submission is either rejected at admission or ends in exactly
//     one terminal state;
//   - the server's goroutines drain after Drain (no leaks).
func TestServeConcurrencyStress(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()

	s, hs := newTestServer(t, Options{QueueCap: 2, Runners: 2, SnapshotDir: t.TempDir(), SnapshotEvery: 1})

	// Budget sampler: runs for the whole stress window.
	maxWorkers := runtime.GOMAXPROCS(0)
	stopSampling := make(chan struct{})
	var samplerDone sync.WaitGroup
	var budgetViolations atomic.Int64
	var depthViolations atomic.Int64
	samplerDone.Add(1)
	go func() {
		defer samplerDone.Done()
		for {
			select {
			case <-stopSampling:
				return
			default:
			}
			if got := protocol.WorkerBudgetInUse(); got > maxWorkers {
				budgetViolations.Add(1)
			}
			if d := s.depth.Load(); d > int64(s.opts.QueueCap) {
				depthViolations.Add(1)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()

	const n = 12
	var accepted, rejected atomic.Int64
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := testSpec(3)
			spec.Seed = int64(100 + i)
			body, _ := json.Marshal(spec)
			resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
				var sr submitResponse
				if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
					t.Error(err)
					return
				}
				ids[i] = sr.ID
				accepted.Add(1)
			case http.StatusTooManyRequests:
				rejected.Add(1)
			default:
				t.Errorf("submission %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	if got := accepted.Load() + rejected.Load(); got != n {
		t.Fatalf("accepted %d + rejected %d != %d submissions", accepted.Load(), rejected.Load(), n)
	}
	if accepted.Load() == 0 {
		t.Fatal("every submission was rejected; stress is vacuous")
	}

	// Concurrently cancel every third accepted job and stream another
	// third while they run.
	var chaos sync.WaitGroup
	for i, id := range ids {
		if id == "" {
			continue
		}
		switch i % 3 {
		case 0:
			chaos.Add(1)
			go func(id string) {
				defer chaos.Done()
				req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+id, nil)
				resp, err := http.DefaultClient.Do(req)
				if err == nil {
					resp.Body.Close()
				}
			}(id)
		case 1:
			chaos.Add(1)
			go func(id string) {
				defer chaos.Done()
				resp, err := http.Get(hs.URL + "/v1/jobs/" + id + "/results")
				if err != nil {
					return
				}
				defer resp.Body.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := resp.Body.Read(buf); err != nil {
						return
					}
				}
			}(id)
		}
	}
	chaos.Wait()

	// Every accepted job must reach exactly one terminal state.
	waitCtx := contextWithTimeout(t, 60*time.Second)
	states := map[State]int{}
	for _, id := range ids {
		if id == "" {
			continue
		}
		st := s.Job(id).Wait(waitCtx)
		if !st.Terminal() {
			t.Fatalf("job %s stuck in state %s", id, st)
		}
		states[st]++
	}
	if got := states[StateDone] + states[StateFailed] + states[StateCancelled]; int64(got) != accepted.Load() {
		t.Fatalf("terminal states %v do not account for %d accepted jobs", states, accepted.Load())
	}

	if !s.Drain(60 * time.Second) {
		t.Fatal("drain timed out")
	}
	close(stopSampling)
	samplerDone.Wait()
	if v := budgetViolations.Load(); v > 0 {
		t.Errorf("worker budget exceeded GOMAXPROCS %d times", v)
	}
	if v := depthViolations.Load(); v > 0 {
		t.Errorf("queue depth exceeded QueueCap %d times", v)
	}
	if got := protocol.WorkerBudgetInUse(); got != 0 {
		t.Errorf("worker budget still holds %d slots after drain", got)
	}

	// Goroutine leak check: close the HTTP server, then wait for the
	// count to settle back to the pre-test level (plus slack for the
	// runtime's own background goroutines).
	hs.Close()
	deadline := time.Now().Add(30 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= goroutinesBefore+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				goroutinesBefore, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Package serve is the campaign-as-a-service daemon core: a long-running
// HTTP JSON API accepting campaign, trace-replay, pair and fleet
// submissions, sharding each job's scenarios across the shared
// protocol.ForEach worker budget, streaming per-scenario rows back as
// NDJSON, and snapshotting progress so a killed daemon resumes
// bit-identically.
//
// Determinism contract: a job's rows are pure functions of its submission
// spec — simulation and model seeds derive from scenario labels and node
// IDs, never from time, order, or process identity. The snapshot binds rows
// to the spec by the campaign fingerprint (protocol.CampaignFingerprint);
// a resumed job recomputes only missing rows and its final table is
// Float64bits-identical to an uninterrupted run's.
//
// Admission control: a bounded queue (429 + Retry-After when full), roster
// size caps (413), a byte-budgeted per-job memoization tier so one
// tenant's sweep cannot evict another's baselines, per-job deadlines and
// cancellation, and graceful drain on shutdown.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"powerdiv/internal/obs"
	"powerdiv/internal/protocol"
)

// Options configures a Server.
type Options struct {
	// SnapshotDir is where job snapshots persist; empty disables
	// durability (jobs live only in memory).
	SnapshotDir string
	// QueueCap bounds jobs waiting for a runner; submissions beyond it
	// get 429 + Retry-After. Default 8.
	QueueCap int
	// Runners is the job-execution pool size. Runners only orchestrate —
	// simulation work draws from the shared GOMAXPROCS worker budget — so
	// this bounds concurrent jobs, not concurrent CPU work. Default 2.
	// Negative disables execution entirely: submissions queue but never
	// run (admission-control tests and drain rehearsals).
	Runners int
	// SnapshotEvery snapshots a running job after every n completed rows
	// (and always at terminal states). Default 4; negative disables
	// periodic snapshots.
	SnapshotEvery int
	// MaxScenarios / MaxNodes / MaxInstances are the admission caps
	// behind roster_too_large. Defaults 64 / 256 / 4096.
	MaxScenarios int
	MaxNodes     int
	MaxInstances int
	// MaxCacheBytes caps each job's private memoization budget. Default
	// protocol.DefaultMemoBytes.
	MaxCacheBytes int64
	// CacheDir, when set, backs every job's summary cache with one shared
	// persistent tier: solo-run digests survive restarts, so resumed and
	// repeated jobs skip their phase 1 simulations. Jobs stay isolated in
	// memory (each keeps its own CacheScope); the disk tier is shared,
	// content-addressed and safe across jobs because entries are keyed by
	// the full run fingerprint.
	CacheDir string
	// CacheDiskBytes caps the persistent tier's on-disk footprint
	// (oldest entries evicted first). Default
	// protocol.DefaultDiskCacheBytes; ignored without CacheDir.
	CacheDiskBytes int64
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.QueueCap <= 0 {
		o.QueueCap = 8
	}
	switch {
	case o.Runners < 0:
		o.Runners = 0
	case o.Runners == 0:
		o.Runners = 2
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 4
	}
	if o.MaxScenarios <= 0 {
		o.MaxScenarios = 64
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 256
	}
	if o.MaxInstances <= 0 {
		o.MaxInstances = 4096
	}
	if o.MaxCacheBytes <= 0 {
		o.MaxCacheBytes = protocol.DefaultMemoBytes
	}
	return o
}

// Server is the daemon: job registry, bounded queue, runner pool, snapshot
// store, and the HTTP handler over them.
type Server struct {
	opts Options

	root     context.Context
	rootStop context.CancelFunc
	killed   atomic.Bool

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // registration order, for stable listings
	nextID   int
	draining bool

	queue chan *Job
	depth atomic.Int64 // queued jobs, admission-checked against QueueCap
	wg    sync.WaitGroup

	// disk is the shared persistent summary cache (nil without CacheDir).
	disk *protocol.DiskCache

	mux *http.ServeMux
}

// New builds a server, resumes any snapshots found in SnapshotDir, and
// starts the runner pool. Partial snapshots re-enter the queue ahead of new
// work; terminal ones are served from memory.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	s := &Server{
		opts: opts,
		jobs: map[string]*Job{},
	}
	s.root, s.rootStop = context.WithCancel(context.Background())

	if opts.CacheDir != "" {
		disk, err := protocol.OpenDiskCache(opts.CacheDir, opts.CacheDiskBytes)
		if err != nil {
			return nil, fmt.Errorf("serve: cache dir: %w", err)
		}
		s.disk = disk
	}

	var resumed []*Job
	if opts.SnapshotDir != "" {
		if err := os.MkdirAll(opts.SnapshotDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: snapshot dir: %w", err)
		}
		var err error
		if resumed, err = s.loadSnapshots(); err != nil {
			return nil, err
		}
	}
	// The channel outsizes the admission cap by the resumed backlog so
	// restarts never deadlock on their own snapshots; new submissions are
	// still admission-checked against QueueCap via the depth counter.
	s.queue = make(chan *Job, opts.QueueCap+len(resumed))
	for _, job := range resumed {
		if !job.State().Terminal() {
			s.depth.Add(1)
			s.queue <- job
		}
	}
	obsQueueDepth.Set(float64(s.depth.Load()))
	s.wg.Add(opts.Runners)
	for i := 0; i < opts.Runners; i++ {
		go s.runner()
	}
	s.routes()
	return s, nil
}

// loadSnapshots scans the snapshot directory and rebuilds jobs. Unreadable
// or invalid snapshots are skipped (renamed aside would risk data loss;
// they simply stay on disk, ignored) rather than failing startup.
func (s *Server) loadSnapshots() ([]*Job, error) {
	entries, err := os.ReadDir(s.opts.SnapshotDir)
	if err != nil {
		return nil, fmt.Errorf("serve: scan snapshots: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // job-NNNNNN sorts by submission order
	var out []*Job
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(s.opts.SnapshotDir, name))
		if err != nil {
			continue
		}
		snap, rn, err := LoadSnapshot(data, s.opts)
		if err != nil {
			continue
		}
		job := jobFromSnapshot(snap, rn)
		s.jobs[job.ID] = job
		s.order = append(s.order, job.ID)
		if id, ok := numericSuffix(job.ID); ok && id >= s.nextID {
			s.nextID = id + 1
		}
		if !job.State().Terminal() {
			obsResumedJobs.Inc()
			obsResumedRows.Add(uint64(job.Status().Completed))
		}
		out = append(out, job)
	}
	return out, nil
}

// numericSuffix parses the counter out of a "job-%06d" ID.
func numericSuffix(id string) (int, bool) {
	const prefix = "job-"
	if !strings.HasPrefix(id, prefix) {
		return 0, false
	}
	var n int
	if _, err := fmt.Sscanf(id[len(prefix):], "%d", &n); err != nil {
		return 0, false
	}
	return n, true
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// routes wires the JSON API.
func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleResults)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	})
	mux.Handle("GET /metrics", obs.Handler())
	mux.Handle("GET /metrics.json", obs.Handler())
	s.mux = mux
}

// submitResponse is the 202 body of an async submission.
type submitResponse struct {
	ID          string `json:"id"`
	State       State  `json:"state"`
	Kind        string `json:"kind"`
	Units       int    `json:"units"`
	Fingerprint string `json:"fingerprint"`
}

// handleSubmit admits one job: decode, compile (typed 4xx on failure),
// queue (429 when full, 503 when draining). With "stream":true the
// response is the job's NDJSON row stream instead of a 202, and the
// client's disconnect cancels the job mid-simulation.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(&spec); err != nil {
		obsRejected.Inc()
		writeError(w, apiErrorf(ErrBadJSON, "%v", err))
		return
	}
	rn, aerr := compile(spec, s.opts)
	if aerr != nil {
		obsRejected.Inc()
		writeError(w, *aerr)
		return
	}
	job, aerr := s.admit(spec, rn)
	if aerr != nil {
		obsRejected.Inc()
		writeError(w, *aerr)
		return
	}
	obsSubmitted.Inc()
	s.persist(job)
	if spec.Stream {
		// The submitter's disconnect aborts the job: its in-flight
		// simulators stop at the next tick and the partial snapshot
		// remains resumable.
		stop := context.AfterFunc(r.Context(), func() {
			job.Cancel("client disconnected")
		})
		defer stop()
		s.streamJob(w, r, job)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(submitResponse{
		ID: job.ID, State: job.State(), Kind: job.Kind,
		Units: job.Units, Fingerprint: job.Fingerprint,
	})
}

// admit registers and enqueues a compiled job under the admission limits.
func (s *Server) admit(spec SubmitRequest, rn *runnable) (*Job, *APIError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		e := apiErrorf(ErrDraining, "server is draining")
		return nil, &e
	}
	if s.depth.Load() >= int64(s.opts.QueueCap) {
		e := apiErrorf(ErrQueueFull, "queue holds %d jobs", s.opts.QueueCap)
		return nil, &e
	}
	id := fmt.Sprintf("job-%06d", s.nextID)
	s.nextID++
	job := newJob(id, spec, rn)
	s.jobs[id] = job
	s.order = append(s.order, id)
	s.depth.Add(1)
	obsQueueDepth.Set(float64(s.depth.Load()))
	select {
	case s.queue <- job:
	default:
		// The channel never fills before the depth check does; guard
		// against it anyway rather than blocking a handler.
		s.depth.Add(-1)
		delete(s.jobs, id)
		s.order = s.order[:len(s.order)-1]
		e := apiErrorf(ErrQueueFull, "queue holds %d jobs", s.opts.QueueCap)
		return nil, &e
	}
	return job, nil
}

// handleList lists jobs in submission order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	statuses := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		statuses = append(statuses, s.jobs[id].Status())
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"jobs": statuses})
}

// lookup resolves the path's job ID.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *Job {
	id := r.PathValue("id")
	s.mu.Lock()
	job := s.jobs[id]
	s.mu.Unlock()
	if job == nil {
		writeError(w, apiErrorf(ErrNotFound, "no job %q", id))
		return nil
	}
	return job
}

// handleStatus reports one job.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(w, r)
	if job == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(job.Status())
}

// handleCancel requests cancellation. Idempotent: cancelling a terminal
// job reports its (unchanged) state.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(w, r)
	if job == nil {
		return
	}
	job.Cancel("cancelled by client")
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(job.Status())
}

// handleResults streams the job's rows as NDJSON. Works during the run
// (rows flush as units complete) and after it (rows replay from memory or
// snapshot); the stream always ends with one terminal summary line.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(w, r)
	if job == nil {
		return
	}
	s.streamJob(w, r, job)
}

// resultTerminal is the NDJSON stream's final line.
type resultTerminal struct {
	Done        bool     `json:"done"`
	State       State    `json:"state"`
	Rows        int      `json:"rows"`
	Fingerprint string   `json:"fingerprint"`
	Error       string   `json:"error,omitempty"`
	Summary     *Summary `json:"summary,omitempty"`
}

// streamJob writes rows in index order, flushing per line, then the
// terminal line. Blocking on not-yet-computed rows is the backpressure:
// the client reads results exactly as fast as the simulators produce them.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, job *Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	streamed := 0
	for i := 0; i < job.Units; i++ {
		row, ok := job.waitRow(r.Context(), i)
		if !ok {
			break
		}
		if enc.Encode(row) != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		streamed++
		obsRowsStreamed.Inc()
	}
	if streamed == job.Units {
		// All rows are out but the job may still be folding its summary;
		// wait for the terminal state so the final line carries it.
		job.wait(r.Context())
	}
	st := job.Status()
	enc.Encode(resultTerminal{
		Done:        true,
		State:       st.State,
		Rows:        streamed,
		Fingerprint: st.Fingerprint,
		Error:       st.Error,
		Summary:     job.Summary(),
	})
	if flusher != nil {
		flusher.Flush()
	}
}

// Jobs returns the registered jobs in submission order (test and tooling
// accessor).
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Job returns one job by ID.
func (s *Server) Job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Drain gracefully shuts down: stop admitting, let queued and running jobs
// finish, then stop the runners. If the timeout expires first, remaining
// jobs are cancelled (their partial snapshots stay resumable). Returns true
// if everything finished in time.
func (s *Server) Drain(timeout time.Duration) bool {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		close(s.queue)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.rootStop()
		return true
	case <-time.After(timeout):
		s.rootStop() // cancel stragglers; their runners exit via the queue close
		<-done
		return false
	}
}

// Kill simulates a crash for the resume tests: cancel everything
// immediately and write nothing more to the snapshot directory, leaving
// the last periodic snapshots as the durable state a restarted daemon
// resumes from.
func (s *Server) Kill() {
	s.killed.Store(true)
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	s.rootStop()
	if !already {
		close(s.queue)
	}
	s.wg.Wait()
}

// wait blocks until the job reaches a terminal state or cctx is done
// (used by in-process smoke/tests through the exported API below).
func (j *Job) wait(cctx context.Context) State {
	stop := context.AfterFunc(cctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()
	j.mu.Lock()
	defer j.mu.Unlock()
	for !j.state.Terminal() && cctx.Err() == nil {
		j.cond.Wait()
	}
	return j.state
}

// Wait blocks until the job is terminal (or ctx expires) and returns the
// final state.
func (j *Job) Wait(ctx context.Context) State { return j.wait(ctx) }

package serve

import (
	"context"
	"sync"
	"time"

	"powerdiv/internal/fleet"
)

// State is a job's lifecycle stage. Every job ends in exactly one of the
// three terminal states — the invariant the concurrency stress test counts.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// ModelScore is one model's score on one scenario — the per-shard slice of
// the campaign error table. Float64 fields round-trip JSON exactly (Go
// encodes the shortest representation that parses back to the same bits),
// which is what makes snapshot resume bit-identical.
type ModelScore struct {
	Model string  `json:"model"`
	AE    float64 `json:"ae"`
	// Coverage and BusyTicks apply to traffic kinds only.
	Coverage    float64 `json:"coverage,omitempty"`
	ScoredTicks int     `json:"scored_ticks"`
	BusyTicks   int     `json:"busy_ticks,omitempty"`
}

// ResultRow is one completed unit: scenario kinds fill Models (factory
// order), fleet kinds fill Node. Rows stream to clients in Index order as
// NDJSON and persist verbatim in snapshots.
type ResultRow struct {
	Index  int               `json:"index"`
	Label  string            `json:"label"`
	Models []ModelScore      `json:"models,omitempty"`
	Node   *fleet.NodeDigest `json:"node,omitempty"`
}

// ModelSummary aggregates one model over a finished scenario job, rows
// folded in index order.
type ModelSummary struct {
	Model        string  `json:"model"`
	MeanAE       float64 `json:"mean_ae"`
	MaxAE        float64 `json:"max_ae"`
	MeanCoverage float64 `json:"mean_coverage,omitempty"`
	Scenarios    int     `json:"scenarios"`
}

// Summary is a finished job's aggregate: Models for scenario kinds, Fleet
// for fleet kinds.
type Summary struct {
	Models []ModelSummary `json:"models,omitempty"`
	Fleet  *fleet.Result  `json:"fleet,omitempty"`
}

// Job is one submission's full lifecycle. All mutable fields are guarded by
// mu; cond broadcasts on every row append and state change, which is what
// the NDJSON streamers block on.
type Job struct {
	ID          string
	Spec        SubmitRequest
	Fingerprint string
	Units       int
	Kind        string

	mu        sync.Mutex
	cond      *sync.Cond
	state     State
	rows      []*ResultRow // indexed by unit; nil until the unit completes
	completed int
	errMsg    string
	summary   *Summary
	cancel    context.CancelFunc
	cancelMsg string
	started   time.Time
}

// newJob builds a queued job over a compiled runnable.
func newJob(id string, spec SubmitRequest, rn *runnable) *Job {
	j := &Job{
		ID:          id,
		Spec:        spec,
		Fingerprint: rn.fingerprint,
		Units:       rn.units,
		Kind:        rn.kind,
		state:       StateQueued,
		rows:        make([]*ResultRow, rn.units),
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// JobStatus is the GET /v1/jobs/{id} body.
type JobStatus struct {
	ID          string `json:"id"`
	Kind        string `json:"kind"`
	State       State  `json:"state"`
	Fingerprint string `json:"fingerprint"`
	Units       int    `json:"units"`
	Completed   int    `json:"completed"`
	Error       string `json:"error,omitempty"`
}

// Status snapshots the job for the API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:          j.ID,
		Kind:        j.Kind,
		State:       j.state,
		Fingerprint: j.Fingerprint,
		Units:       j.Units,
		Completed:   j.completed,
		Error:       j.errMsg,
	}
}

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// setState transitions the job and wakes every waiter. Terminal states are
// sticky: once reached, later transitions are ignored, so a user cancel
// racing a natural completion settles on whichever landed first.
func (j *Job) setState(s State, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = s
	if errMsg != "" {
		j.errMsg = errMsg
	}
	j.cond.Broadcast()
}

// appendRow records unit i's result and returns the completed count.
func (j *Job) appendRow(row *ResultRow) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.rows[row.Index] == nil {
		j.completed++
	}
	j.rows[row.Index] = row
	j.cond.Broadcast()
	return j.completed
}

// row returns unit i's result, or nil if not yet complete.
func (j *Job) row(i int) *ResultRow {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rows[i]
}

// waitRow blocks until unit i completes (row, true), the job reaches a
// terminal state without it (nil, false), or cctx is cancelled (nil,
// false). The caller streams rows strictly in index order, so this is the
// only ordering primitive the NDJSON writer needs.
func (j *Job) waitRow(cctx context.Context, i int) (*ResultRow, bool) {
	// A context watcher converts cancellation into a broadcast so the cond
	// wait below wakes up; AfterFunc is cheap when never fired.
	stop := context.AfterFunc(cctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if j.rows[i] != nil {
			return j.rows[i], true
		}
		if j.state.Terminal() || cctx.Err() != nil {
			return nil, false
		}
		j.cond.Wait()
	}
}

// setCancel installs the running job's cancel hook.
func (j *Job) setCancel(cancel context.CancelFunc) {
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
}

// Cancel requests cancellation with a reason. Safe in any state: a queued
// job is cancelled by the runner when it dequeues it, a running one by its
// context, a terminal one not at all.
func (j *Job) Cancel(reason string) {
	j.mu.Lock()
	cancel := j.cancel
	if !j.state.Terminal() && j.cancelMsg == "" {
		j.cancelMsg = reason
	}
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// cancelReason returns the pending cancel reason, if any.
func (j *Job) cancelReason() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelMsg
}

// finish computes the summary (rows folded in index order) and transitions
// to done.
func (j *Job) finish(rn *runnable) {
	j.mu.Lock()
	rows := make([]*ResultRow, len(j.rows))
	copy(rows, j.rows)
	j.mu.Unlock()
	sum := summarize(rn, rows)
	j.mu.Lock()
	if !j.state.Terminal() {
		j.summary = sum
		j.state = StateDone
		j.cond.Broadcast()
	}
	j.mu.Unlock()
}

// Summary returns the finished job's aggregate (nil before completion).
func (j *Job) Summary() *Summary {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.summary
}

// summarize folds completed rows into the job aggregate: models in factory
// order, rows in index order — the same accumulation order however many
// times the job was interrupted and resumed.
func summarize(rn *runnable, rows []*ResultRow) *Summary {
	if rn.kind == KindFleet {
		digests := make([]fleet.NodeDigest, 0, len(rows))
		for _, r := range rows {
			if r != nil && r.Node != nil {
				digests = append(digests, *r.Node)
			}
		}
		res := fleet.Reduce(rn.fleetCfg, digests)
		return &Summary{Fleet: &res}
	}
	var order []string
	for _, r := range rows {
		if r != nil {
			for _, ms := range r.Models {
				order = append(order, ms.Model)
			}
			break
		}
	}
	byModel := make(map[string]*ModelSummary, len(order))
	for _, name := range order {
		byModel[name] = &ModelSummary{Model: name}
	}
	for _, r := range rows {
		if r == nil {
			continue
		}
		for _, ms := range r.Models {
			agg, ok := byModel[ms.Model]
			if !ok {
				continue
			}
			agg.MeanAE += ms.AE
			if ms.AE > agg.MaxAE {
				agg.MaxAE = ms.AE
			}
			agg.MeanCoverage += ms.Coverage
			agg.Scenarios++
		}
	}
	out := &Summary{Models: make([]ModelSummary, 0, len(order))}
	for _, name := range order {
		agg := byModel[name]
		if agg.Scenarios > 0 {
			agg.MeanAE /= float64(agg.Scenarios)
			agg.MeanCoverage /= float64(agg.Scenarios)
		}
		out.Models = append(out.Models, *agg)
	}
	return out
}

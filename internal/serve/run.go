package serve

import (
	"context"
	"errors"
	"time"

	"powerdiv/internal/protocol"
)

// runner is one worker of the job-execution pool. Runners only orchestrate:
// the simulation work itself runs on protocol.ForEach's shared worker
// budget, so however many runners execute concurrently, total simulation
// workers stay within GOMAXPROCS.
func (s *Server) runner() {
	defer s.wg.Done()
	for job := range s.queue {
		s.depth.Add(-1)
		obsQueueDepth.Set(float64(s.depth.Load()))
		s.runJob(job)
	}
}

// runJob executes one job to a terminal state. The job context layers, from
// the outside in: the server root (Kill cancels it), the job's own cancel
// hook (DELETE and stream-disconnect call it), and the optional deadline.
func (s *Server) runJob(job *Job) {
	if reason := job.cancelReason(); reason != "" {
		// Cancelled while queued: never ran, still snapshots its terminal
		// state so a restart doesn't resurrect it.
		job.setState(StateCancelled, reason)
		obsCancelled.Inc()
		s.persist(job)
		return
	}
	var cctx context.Context
	var cancel context.CancelFunc
	if ms := job.Spec.DeadlineMS; ms > 0 {
		cctx, cancel = context.WithTimeout(s.root, time.Duration(ms)*time.Millisecond)
	} else {
		cctx, cancel = context.WithCancel(s.root)
	}
	defer cancel()
	job.setCancel(cancel)
	job.setState(StateRunning, "")
	obsRunning.Add(1)
	start := time.Now()
	defer func() {
		obsRunning.Add(-1)
		obsJobSeconds.Observe(time.Since(start).Seconds())
	}()

	rn, aerr := compile(job.Spec, s.opts)
	if aerr != nil {
		// Admission validated the spec, so this is unreachable unless the
		// binary changed under a resumed snapshot; fail it cleanly.
		job.setState(StateFailed, aerr.Error())
		obsFailed.Inc()
		s.persist(job)
		return
	}
	err := s.evaluate(cctx, job, rn)
	switch {
	case err == nil:
		job.finish(rn)
		obsCompleted.Inc()
	case s.killed.Load():
		// Crash-style shutdown: leave the last periodic snapshot as the
		// job's durable state — exactly what a kill -9 would have — so the
		// next daemon resumes from it. No terminal write.
		job.setState(StateCancelled, "server killed")
		obsCancelled.Inc()
		return
	case errors.Is(err, context.DeadlineExceeded):
		job.setState(StateFailed, "deadline exceeded")
		obsFailed.Inc()
	case errors.Is(err, context.Canceled):
		reason := job.cancelReason()
		if reason == "" {
			reason = "cancelled"
		}
		job.setState(StateCancelled, reason)
		obsCancelled.Inc()
	default:
		job.setState(StateFailed, err.Error())
		obsFailed.Inc()
	}
	s.persist(job)
}

// evaluate runs the job's remaining units over the shared worker budget,
// appending rows and snapshotting every SnapshotEvery completions. Units
// already restored from a snapshot are skipped — their rows are already in
// place, and re-running them would only reproduce the same bits.
func (s *Server) evaluate(cctx context.Context, job *Job, rn *runnable) error {
	pctx := rn.pctx
	pctx.Cache = protocol.NewCacheScope(s.cacheBudget(job.Spec.CacheBytes))
	pctx.Cache.AttachDisk(s.disk)
	defer pctx.Cache.Drop()
	rn.pctx = pctx

	baselines, fs, err := rn.measureBaselines(cctx, pctx)
	if err != nil {
		return err
	}
	var todo []int
	for i := 0; i < rn.units; i++ {
		if job.row(i) == nil {
			todo = append(todo, i)
		}
	}
	err = protocol.ForEach(len(todo), func(k int) error {
		if err := cctx.Err(); err != nil {
			return err
		}
		row, err := rn.shard(cctx, todo[k], baselines, fs)
		if err != nil {
			return err
		}
		n := job.appendRow(row)
		if s.opts.SnapshotEvery > 0 && n%s.opts.SnapshotEvery == 0 {
			s.persist(job)
		}
		return nil
	})
	return err
}

// cacheBudget clamps a requested per-job cache budget to the server cap.
func (s *Server) cacheBudget(requested int64) int64 {
	budget := requested
	if budget <= 0 || budget > s.opts.MaxCacheBytes {
		budget = s.opts.MaxCacheBytes
	}
	return budget
}

// persist writes the job's current snapshot, if snapshots are enabled.
// Snapshot failures are recorded in metrics but do not fail the job: the
// service degrades to non-durable rather than refusing work.
func (s *Server) persist(job *Job) {
	if s.opts.SnapshotDir == "" {
		return
	}
	if err := writeSnapshot(s.opts.SnapshotDir, snapshotOf(job)); err == nil {
		obsSnapshots.Inc()
	}
}

package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"powerdiv/internal/traffic"
)

// TestServeListEndpoint pins GET /v1/jobs: submission order, one status
// entry per job.
func TestServeListEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Options{Runners: -1})
	first := submitJob(t, hs.URL, testSpec(2))
	second := submitJob(t, hs.URL, testSpec(3))

	resp, err := http.Get(hs.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: status %d", resp.StatusCode)
	}
	var body struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	list := body.Jobs
	if len(list) != 2 {
		t.Fatalf("list holds %d jobs, want 2", len(list))
	}
	if list[0].ID != first.ID || list[1].ID != second.ID {
		t.Fatalf("list order %s,%s; want %s,%s", list[0].ID, list[1].ID, first.ID, second.ID)
	}
	if list[1].Units != 3 {
		t.Fatalf("second job lists %d units, want 3", list[1].Units)
	}
}

// TestServePairsJob runs the static stress-pair kind end to end with its
// default roster (fibonacci/int64 × 1,2 threads).
func TestServePairsJob(t *testing.T) {
	s, hs := newTestServer(t, Options{})
	// No duration overrides: the lab context's defaults give the sampled
	// models (powerapi) enough stable window to produce estimates.
	sr := submitJob(t, hs.URL, SubmitRequest{Kind: KindPairs, Seed: 7})
	if sr.Kind != KindPairs || sr.Units <= 0 {
		t.Fatalf("submit response %+v", sr)
	}
	if st := s.Job(sr.ID).Wait(contextWithTimeout(t, time.Minute)); st != StateDone {
		t.Fatalf("pairs job ended %s", st)
	}
	rows, term := fetchResults(t, hs.URL, sr.ID)
	if len(rows) != sr.Units {
		t.Fatalf("streamed %d rows for %d units", len(rows), sr.Units)
	}
	for _, r := range rows {
		if len(r.Models) == 0 {
			t.Fatalf("pairs row %d (%s) has no model scores", r.Index, r.Label)
		}
	}
	if term.Summary == nil || len(term.Summary.Models) == 0 {
		t.Fatal("pairs job finished without a model summary")
	}
}

// TestServeTraceJob replays a recorded trace through the service and pins
// that the job's roster equals the trace's.
func TestServeTraceJob(t *testing.T) {
	tcfg := traffic.Config{
		Kind: traffic.Mixed, Seed: 11, Scenarios: 3, Window: 4 * time.Second,
		ArrivalsPerMinute: 120, MaxThreads: 2, MaxCPUs: 6, Baseload: 2,
	}
	scenarios, err := traffic.Generate(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := traffic.Record(tcfg, scenarios)

	s, hs := newTestServer(t, Options{})
	sr := submitJob(t, hs.URL, SubmitRequest{
		Kind: KindTrace, Seed: 11, RunForMS: 5000, StableWindowMS: 2000, Trace: &tr,
	})
	if sr.Units != len(tr.Scenarios) {
		t.Fatalf("trace job compiled to %d units for %d trace scenarios", sr.Units, len(tr.Scenarios))
	}
	if st := s.Job(sr.ID).Wait(contextWithTimeout(t, time.Minute)); st != StateDone {
		t.Fatalf("trace job ended %s", st)
	}
	rows, _ := fetchResults(t, hs.URL, sr.ID)
	if len(rows) != sr.Units {
		t.Fatalf("streamed %d rows for %d units", len(rows), sr.Units)
	}
}

// TestLoadSnapshotRejections pins the loader's validation surface: every
// malformed durable state is refused with a diagnostic, never resumed.
func TestLoadSnapshotRejections(t *testing.T) {
	opts := Options{}.withDefaults()
	spec := testSpec(3)
	rn, aerr := compile(spec, opts)
	if aerr != nil {
		t.Fatal(aerr)
	}
	valid := Snapshot{
		Version: SnapshotVersion, JobID: "job-000001", Kind: rn.kind,
		Fingerprint: rn.fingerprint, State: StateRunning, Spec: spec,
		Rows: []*ResultRow{{
			Index: 0, Label: rn.labels[0],
			Models: []ModelScore{{Model: "oracle", AE: 0.5, ScoredTicks: 2}},
		}},
	}
	// Deep-copy rows so cases that edit Rows[0] don't corrupt `valid` for
	// later cases through the shared pointer.
	mutate := func(fn func(*Snapshot)) []byte {
		snap := valid
		snap.Rows = make([]*ResultRow, len(valid.Rows))
		for i, r := range valid.Rows {
			cp := *r
			cp.Models = append([]ModelScore(nil), r.Models...)
			snap.Rows[i] = &cp
		}
		fn(&snap)
		data, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"not json", []byte("nope"), "snapshot"},
		{"bad version", mutate(func(s *Snapshot) { s.Version = 99 }), "version"},
		{"path traversal id", mutate(func(s *Snapshot) { s.JobID = "../job" }), "invalid"},
		{"bad state", mutate(func(s *Snapshot) { s.State = "paused" }), "state"},
		{"uncompilable spec", mutate(func(s *Snapshot) { s.Spec.Kind = "warp" }), "compile"},
		{"fingerprint mismatch", mutate(func(s *Snapshot) { s.Fingerprint = strings.Repeat("0", 16) }), "fingerprint"},
		{"kind mismatch", mutate(func(s *Snapshot) { s.Kind = KindFleet }), "kind"},
		{"null row", mutate(func(s *Snapshot) { s.Rows = append(s.Rows, nil) }), "null row"},
		{"row out of range", mutate(func(s *Snapshot) { s.Rows[0].Index = 9 }), "out of range"},
		{"duplicate row", mutate(func(s *Snapshot) { s.Rows = append(s.Rows, s.Rows[0]) }), "duplicated"},
		{"label drift", mutate(func(s *Snapshot) { s.Rows[0].Label = "elsewhere" }), "label"},
		{"row without scores", mutate(func(s *Snapshot) { s.Rows[0].Models = nil }), "model scores"},
		{"done but partial", mutate(func(s *Snapshot) { s.State = StateDone }), "1 of 3 rows"},
	}
	for _, c := range cases {
		if _, _, err := LoadSnapshot(c.data, opts); err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	// The unmutated snapshot still loads.
	data, err := json.Marshal(valid)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadSnapshot(data, opts); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
}

// TestAPIErrorString pins the Error interface rendering used in logs and
// failed-job messages.
func TestAPIErrorString(t *testing.T) {
	err := apiErrorf(ErrQueueFull, "queue at %d", 8)
	if got, want := err.Error(), "queue_full: queue at 8"; got != want {
		t.Fatalf("Error() = %q, want %q", got, want)
	}
	var asErr error = err
	if got := fmt.Sprintf("%v", asErr); !strings.Contains(got, ErrQueueFull) {
		t.Fatalf("formatted error %q lacks the code", got)
	}
}

// TestCompileFleetRejections pins the fleet kind's admission branches
// directly (the error-path HTTP table covers scenario kinds).
func TestCompileFleetRejections(t *testing.T) {
	opts := Options{MaxNodes: 4, MaxScenarios: 8}.withDefaults()
	cases := []struct {
		name string
		spec SubmitRequest
		code string
	}{
		{"unknown kernel", SubmitRequest{Kind: KindFleet, Kernels: []string{"warp"}}, ErrUnknownKernel},
		{"bad arrivals", SubmitRequest{Kind: KindFleet, Arrivals: "sideways"}, ErrBadRequest},
		{"too many nodes", SubmitRequest{Kind: KindFleet, Nodes: 5}, ErrRosterTooLarge},
		{"too many scenarios per node", SubmitRequest{Kind: KindFleet, ScenariosPerNode: 9}, ErrRosterTooLarge},
	}
	for _, c := range cases {
		rn, aerr := compile(c.spec, opts)
		if aerr == nil {
			t.Errorf("%s: accepted as %d units", c.name, rn.units)
			continue
		}
		if aerr.Code != c.code {
			t.Errorf("%s: code %q, want %q", c.name, aerr.Code, c.code)
		}
	}

	// Defaults compile: 8 nodes is over this test's cap, so name a size.
	rn, aerr := compile(SubmitRequest{Kind: KindFleet, Nodes: 3, ScenariosPerNode: 2, WindowMS: 3000}, opts)
	if aerr != nil {
		t.Fatal(aerr)
	}
	if rn.units != 3 || rn.fingerprint == "" {
		t.Fatalf("fleet compile: %d units, fingerprint %q", rn.units, rn.fingerprint)
	}
}

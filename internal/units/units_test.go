package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestWattsEnergy(t *testing.T) {
	tests := []struct {
		name string
		p    Watts
		d    time.Duration
		want Joules
	}{
		{"one watt one second", 1, time.Second, 1},
		{"ten watts half second", 10, 500 * time.Millisecond, 5},
		{"zero power", 0, time.Hour, 0},
		{"zero duration", 100, 0, 0},
		{"machine scale", 230, 516 * time.Second, 118680},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.p.Energy(tt.d)
			if math.Abs(float64(got-tt.want)) > 1e-9 {
				t.Errorf("Energy(%v, %v) = %v, want %v", tt.p, tt.d, got, tt.want)
			}
		})
	}
}

func TestJoulesPower(t *testing.T) {
	if got := Joules(10).Power(2 * time.Second); got != 5 {
		t.Errorf("Power = %v, want 5", got)
	}
	if got := Joules(10).Power(0); got != 0 {
		t.Errorf("Power with zero duration = %v, want 0", got)
	}
	if got := Joules(10).Power(-time.Second); got != 0 {
		t.Errorf("Power with negative duration = %v, want 0", got)
	}
}

func TestEnergyPowerRoundTrip(t *testing.T) {
	f := func(p float64, ms uint16) bool {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			return true
		}
		p = math.Mod(p, 1e6)
		d := time.Duration(int(ms)+1) * time.Millisecond
		back := Watts(p).Energy(d).Power(d)
		return math.Abs(float64(back)-p) <= 1e-6*math.Max(1, math.Abs(p))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWattsIsValid(t *testing.T) {
	valid := []Watts{0, 1, 28, 230.5}
	for _, p := range valid {
		if !p.IsValid() {
			t.Errorf("IsValid(%v) = false, want true", p)
		}
	}
	invalid := []Watts{-1, Watts(math.NaN()), Watts(math.Inf(1)), Watts(math.Inf(-1))}
	for _, p := range invalid {
		if p.IsValid() {
			t.Errorf("IsValid(%v) = true, want false", p)
		}
	}
}

func TestWattsClamp(t *testing.T) {
	if got := Watts(5).Clamp(0, 3); got != 3 {
		t.Errorf("Clamp above = %v, want 3", got)
	}
	if got := Watts(-5).Clamp(0, 3); got != 0 {
		t.Errorf("Clamp below = %v, want 0", got)
	}
	if got := Watts(2).Clamp(0, 3); got != 2 {
		t.Errorf("Clamp inside = %v, want 2", got)
	}
}

func TestJoulesString(t *testing.T) {
	tests := []struct {
		e    Joules
		want string
	}{
		{36460, "36.46 kJ"},
		{153, "153.0 J"},
		{0.5, "500.00 mJ"},
		{0, "0 J"},
		{2 * Microjoule, "2.0 µJ"},
	}
	for _, tt := range tests {
		if got := tt.e.String(); got != tt.want {
			t.Errorf("Joules(%g).String() = %q, want %q", float64(tt.e), got, tt.want)
		}
	}
}

func TestHertzString(t *testing.T) {
	tests := []struct {
		f    Hertz
		want string
	}{
		{3.6 * GHz, "3.60 GHz"},
		{1200 * MHz, "1.20 GHz"},
		{800 * MHz, "800 MHz"},
		{20 * KHz, "20 kHz"},
		{50, "50 Hz"},
	}
	for _, tt := range tests {
		if got := tt.f.String(); got != tt.want {
			t.Errorf("Hertz(%g).String() = %q, want %q", float64(tt.f), got, tt.want)
		}
	}
}

func TestHertzConversions(t *testing.T) {
	f := 2.4 * GHz
	if got := f.GHz(); got != 2.4 {
		t.Errorf("GHz() = %v, want 2.4", got)
	}
	if got := f.MHz(); got != 2400 {
		t.Errorf("MHz() = %v, want 2400", got)
	}
}

func TestCPUTimeUtilization(t *testing.T) {
	tests := []struct {
		name string
		c    CPUTime
		wall time.Duration
		want float64
	}{
		{"fully busy one core", CPUTime(time.Second), time.Second, 1},
		{"two cores busy", CPUTime(2 * time.Second), time.Second, 2},
		{"half busy", CPUTime(500 * time.Millisecond), time.Second, 0.5},
		{"zero wall", CPUTime(time.Second), 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.c.Utilization(tt.wall); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Utilization = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCPUTimeAdd(t *testing.T) {
	a := CPUTime(time.Second)
	b := CPUTime(500 * time.Millisecond)
	if got := a.Add(b); got != CPUTime(1500*time.Millisecond) {
		t.Errorf("Add = %v", got)
	}
}

func TestEnergyUnits(t *testing.T) {
	if got := Joules(36460).Kilojoules(); got != 36.46 {
		t.Errorf("Kilojoules = %v, want 36.46", got)
	}
	if got := Joules(1).Microjoules(); got != 1e6 {
		t.Errorf("Microjoules = %v, want 1e6", got)
	}
}

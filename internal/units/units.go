// Package units provides the physical value types used throughout powerdiv:
// power in watts, energy in joules, frequency in hertz and CPU time.
//
// The types are thin float64/int64 wrappers. They exist to make signatures
// self-describing (a function returning units.Watts cannot be confused with
// one returning joules) and to centralise formatting and conversions, not to
// enforce dimensional analysis at compile time.
package units

import (
	"fmt"
	"math"
	"time"
)

// Watts is instantaneous power in watts.
type Watts float64

// Joules is an amount of energy in joules.
type Joules float64

// Hertz is a frequency in hertz. CPU core frequencies are typically
// expressed in GHz; use the GHz helper and the GHz method for conversions.
type Hertz float64

// Common frequency scales.
const (
	KHz Hertz = 1e3
	MHz Hertz = 1e6
	GHz Hertz = 1e9
)

// Common energy scales.
const (
	Microjoule Joules = 1e-6
	Millijoule Joules = 1e-3
	Kilojoule  Joules = 1e3
)

// Energy returns the energy dissipated by a constant power draw p over d.
func (p Watts) Energy(d time.Duration) Joules {
	return Joules(float64(p) * d.Seconds())
}

// String formats the power with an adaptive precision, e.g. "28.0 W".
func (p Watts) String() string {
	return fmt.Sprintf("%.1f W", float64(p))
}

// IsValid reports whether the power is a finite, non-negative quantity.
// Power models can momentarily produce NaN (0/0 shares on an idle machine);
// IsValid is the canonical guard.
func (p Watts) IsValid() bool {
	return !math.IsNaN(float64(p)) && !math.IsInf(float64(p), 0) && p >= 0
}

// Clamp limits p to [lo, hi].
func (p Watts) Clamp(lo, hi Watts) Watts {
	if p < lo {
		return lo
	}
	if p > hi {
		return hi
	}
	return p
}

// Power returns the constant power that dissipates e over d.
// It returns 0 if d is not positive.
func (e Joules) Power(d time.Duration) Watts {
	if d <= 0 {
		return 0
	}
	return Watts(float64(e) / d.Seconds())
}

// Kilojoules returns the energy expressed in kJ.
func (e Joules) Kilojoules() float64 { return float64(e) / 1e3 }

// Microjoules returns the energy expressed in µJ, the native unit of RAPL
// energy counters.
func (e Joules) Microjoules() float64 { return float64(e) * 1e6 }

// String formats the energy adaptively: "153 J", "36.46 kJ", "12.3 µJ".
func (e Joules) String() string {
	abs := math.Abs(float64(e))
	switch {
	case abs >= 1e3:
		return fmt.Sprintf("%.2f kJ", float64(e)/1e3)
	case abs >= 1:
		return fmt.Sprintf("%.1f J", float64(e))
	case abs >= 1e-3:
		return fmt.Sprintf("%.2f mJ", float64(e)*1e3)
	case abs == 0:
		return "0 J"
	default:
		return fmt.Sprintf("%.1f µJ", float64(e)*1e6)
	}
}

// GHz returns the frequency expressed in gigahertz.
func (f Hertz) GHz() float64 { return float64(f) / 1e9 }

// MHz returns the frequency expressed in megahertz.
func (f Hertz) MHz() float64 { return float64(f) / 1e6 }

// String formats the frequency adaptively, e.g. "3.60 GHz".
func (f Hertz) String() string {
	abs := math.Abs(float64(f))
	switch {
	case abs >= 1e9:
		return fmt.Sprintf("%.2f GHz", f.GHz())
	case abs >= 1e6:
		return fmt.Sprintf("%.0f MHz", f.MHz())
	case abs >= 1e3:
		return fmt.Sprintf("%.0f kHz", float64(f)/1e3)
	default:
		return fmt.Sprintf("%.0f Hz", float64(f))
	}
}

// CPUTime is an amount of CPU time consumed by a process, equivalent to
// time.Duration but kept distinct so that wall-clock durations and CPU-time
// accounting cannot be mixed up in scheduler code.
type CPUTime time.Duration

// Duration converts the CPU time to a time.Duration.
func (c CPUTime) Duration() time.Duration { return time.Duration(c) }

// Seconds returns the CPU time in seconds.
func (c CPUTime) Seconds() float64 { return time.Duration(c).Seconds() }

// Add returns c + d.
func (c CPUTime) Add(d CPUTime) CPUTime { return c + d }

// String formats the CPU time like a duration, e.g. "1.5s".
func (c CPUTime) String() string { return time.Duration(c).String() }

// Utilization returns the CPU utilization c/wall expressed as a fraction.
// A process that kept two cores fully busy for the whole window returns 2.0.
// It returns 0 if wall is not positive.
func (c CPUTime) Utilization(wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return c.Seconds() / wall.Seconds()
}

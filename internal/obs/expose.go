package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE comment lines followed by samples,
// histograms expanded into cumulative _bucket{le=...}, _sum and _count
// series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, s := range r.Snapshots() {
		if s.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, s.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
			return err
		}
		switch s.Kind {
		case "histogram":
			for _, b := range s.Buckets {
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", s.Name, promFloat(b.UpperBound), b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", s.Name, promFloat(s.Sum), s.Name, s.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %s\n", s.Name, promFloat(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// promFloat renders a float the way Prometheus text format expects:
// integers without an exponent, +Inf spelled out.
func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON writes every metric as a JSON array of snapshots.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshots())
}

// Summary renders a compact human-readable block (the end-of-campaign
// report behind powerdiv-eval/powerdiv-report's -metrics flag). Zero-valued
// metrics are skipped: a campaign that never touched the live meter should
// not print its counters.
func (r *Registry) Summary() string {
	var b strings.Builder
	b.WriteString("== internal metrics ==\n")
	for _, s := range r.Snapshots() {
		switch s.Kind {
		case "histogram":
			if s.Count == 0 {
				continue
			}
			fmt.Fprintf(&b, "%-52s count=%d sum=%.4g mean=%.4g\n",
				s.Name, s.Count, s.Sum, s.Sum/float64(s.Count))
		default:
			if s.Value == 0 {
				continue
			}
			fmt.Fprintf(&b, "%-52s %s\n", s.Name, promFloat(s.Value))
		}
	}
	return b.String()
}

// Handler serves the Default registry: /metrics in Prometheus text format
// and /metrics.json as JSON.
func Handler() http.Handler { return defaultRegistry.Handler() }

// Handler returns an http.Handler exposing the registry's two formats.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

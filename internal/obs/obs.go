// Package obs is the repository's stdlib-only metrics subsystem: atomic
// counters, gauges and fixed-bucket histograms behind a process-global
// registry, exposed in Prometheus text format and JSON (expose.go).
//
// The package exists for the two production-shaped paths of this codebase —
// the parallel campaign engine and the live meter — whose health (cache hit
// rates, dropped/degraded ticks, attribution coverage) was previously only
// visible in test logs. Production divisioners (Scaphandre's Prometheus
// exporter, Kepler's metrics pipeline) treat exposition as a first-class
// subsystem; this package gives the reproduction the same property without
// importing one.
//
// Design constraints, in order:
//
//   - Disabled is free. The registry starts disabled and every write op
//     (Inc/Add/Set/Observe) is a single atomic load followed by a return in
//     that state — no allocation, no branch misprediction-prone work — so
//     instrumented hot loops (the simulator tick path) keep their benchmark
//     numbers. Reads (Value, snapshots) work regardless of the enabled
//     state.
//   - Zero-allocation writes. Enabled-path writes are atomic adds / CAS
//     loops on preallocated state; nothing escapes to the heap.
//   - Safe under the worker pool. All state is atomics; snapshots take the
//     registry mutex only to walk the metric list, then read each value
//     atomically. A snapshot taken while writers are active is a consistent
//     "point in time per metric", not a global cut — fine for monitoring,
//     and exact once the writers quiesce (which is when tests read it).
//
// Metrics are registered once at package init via NewCounter / NewGauge /
// NewHistogram and live for the process lifetime; duplicate names panic.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// enabled gates every write operation; see the package comment.
var enabled atomic.Bool

// Enable turns instrumentation writes on or off process-wide. The registry
// starts disabled; CLIs enable it behind -metrics / -metrics-addr and tests
// enable it around assertions.
func Enable(on bool) { enabled.Store(on) }

// Enabled reports whether instrumentation writes are active. Call sites
// with non-trivial setup cost (timing a region) should gate on it.
func Enabled() bool { return enabled.Load() }

// Metric is the read side shared by all metric kinds.
type Metric interface {
	// Name returns the metric's registered (Prometheus-style) name.
	Name() string
	// Help returns the one-line description.
	Help() string
	// Snapshot returns the metric's current value(s), read atomically.
	Snapshot() Snapshot
	// reset zeroes the metric (test hook, via Registry.Reset).
	reset()
}

// Snapshot is one metric's point-in-time value, shared by the exposition
// formats.
type Snapshot struct {
	Name string `json:"name"`
	Help string `json:"help,omitempty"`
	// Kind is "counter", "gauge" or "histogram".
	Kind string `json:"kind"`
	// Value is the counter or gauge value (counters as exact integers).
	Value float64 `json:"value"`
	// Count and Sum are histogram aggregates.
	Count uint64  `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	// Buckets are the histogram's cumulative bucket counts; the final
	// bucket's UpperBound is +Inf and its Count equals Count.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one cumulative histogram bucket (Prometheus "le" semantics).
// Its JSON form renders the bound as a string so the +Inf bucket survives
// encoding (JSON has no infinity literal).
type Bucket struct {
	UpperBound float64
	Count      uint64
}

// MarshalJSON implements json.Marshaler; see the Bucket comment.
func (b Bucket) MarshalJSON() ([]byte, error) {
	return json.Marshal(bucketJSON{LE: formatBound(b.UpperBound), Count: b.Count})
}

// UnmarshalJSON implements json.Unmarshaler.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw bucketJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	bound, err := parseBound(raw.LE)
	if err != nil {
		return err
	}
	b.UpperBound, b.Count = bound, raw.Count
	return nil
}

type bucketJSON struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

func formatBound(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func parseBound(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// Registry holds a set of named metrics. Most code uses the process-global
// Default registry through the package-level constructors.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]Metric
	// names keeps registration-independent (sorted) exposition order.
	names []string
}

// NewRegistry returns an empty registry. Only tests need private ones; the
// instrumented packages all register into Default.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]Metric{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-global registry.
func Default() *Registry { return defaultRegistry }

// register adds m, panicking on duplicates: metric registration happens at
// package init, where a clash is a programming error.
func (r *Registry) register(m Metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := m.Name()
	if name == "" {
		panic("obs: metric with empty name")
	}
	if _, dup := r.metrics[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.metrics[name] = m
	i := sort.SearchStrings(r.names, name)
	r.names = append(r.names, "")
	copy(r.names[i+1:], r.names[i:])
	r.names[i] = name
}

// Snapshots returns every metric's snapshot in name order.
func (r *Registry) Snapshots() []Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Snapshot, 0, len(r.names))
	for _, name := range r.names {
		out = append(out, r.metrics[name].Snapshot())
	}
	return out
}

// Get returns the metric registered under name, or nil.
func (r *Registry) Get(name string) Metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.metrics[name]
}

// Reset zeroes every registered metric. It is a test hook: assertions that
// compare counters against an independent source (MemoizationStats, a
// meter's Health) reset first so earlier tests in the same binary don't
// leak into the comparison.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.metrics {
		m.reset()
	}
}

// Counter is a monotonically increasing uint64.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// NewCounter registers a counter in the Default registry.
func NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	defaultRegistry.register(c)
	return c
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. It is a no-op while the registry is disabled.
func (c *Counter) Add(n uint64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Name implements Metric.
func (c *Counter) Name() string { return c.name }

// Help implements Metric.
func (c *Counter) Help() string { return c.help }

// Snapshot implements Metric.
func (c *Counter) Snapshot() Snapshot {
	return Snapshot{Name: c.name, Help: c.help, Kind: "counter", Value: float64(c.v.Load())}
}

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is a float64 that can go up and down, stored as atomic bits.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// NewGauge registers a gauge in the Default registry.
func NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	defaultRegistry.register(g)
	return g
}

// Set stores v. It is a no-op while the registry is disabled.
func (g *Gauge) Set(v float64) {
	if !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (which may be negative) with a CAS loop, so concurrent
// workers can track occupancy without a lock. No-op while disabled.
func (g *Gauge) Add(delta float64) {
	if !enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Name implements Metric.
func (g *Gauge) Name() string { return g.name }

// Help implements Metric.
func (g *Gauge) Help() string { return g.help }

// Snapshot implements Metric.
func (g *Gauge) Snapshot() Snapshot {
	return Snapshot{Name: g.name, Help: g.help, Kind: "gauge", Value: g.Value()}
}

func (g *Gauge) reset() { g.bits.Store(0) }

// Histogram counts observations into fixed buckets (Prometheus cumulative
// "le" semantics at exposition; storage is per-bucket so Observe touches
// one slot).
type Histogram struct {
	name, help string
	// bounds are the ascending finite upper bounds; counts has one extra
	// trailing slot for the implicit +Inf bucket.
	bounds  []float64
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// NewHistogram registers a histogram with the given ascending upper bounds
// in the Default registry. A +Inf bucket is implicit.
func NewHistogram(name, help string, bounds ...float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q bounds not ascending: %v", name, bounds))
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	defaultRegistry.register(h)
	return h
}

// Observe records v. It is a no-op while the registry is disabled.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	// First bucket whose bound is >= v; falls through to +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Name implements Metric.
func (h *Histogram) Name() string { return h.name }

// Help implements Metric.
func (h *Histogram) Help() string { return h.help }

// Snapshot implements Metric.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Name:    h.name,
		Help:    h.help,
		Kind:    "histogram",
		Count:   h.count.Load(),
		Sum:     h.Sum(),
		Buckets: make([]Bucket, len(h.counts)),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		bound := math.Inf(1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		s.Buckets[i] = Bucket{UpperBound: bound, Count: cum}
	}
	return s
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
}

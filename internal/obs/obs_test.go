package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// withEnabled runs fn with instrumentation on, restoring the disabled
// default afterwards so tests don't leak global state.
func withEnabled(t *testing.T, fn func()) {
	t.Helper()
	Enable(true)
	defer Enable(false)
	fn()
}

func TestCounterDisabledIsNoOp(t *testing.T) {
	c := NewCounter("test_disabled_total", "disabled counter")
	Enable(false)
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 0 {
		t.Fatalf("disabled counter moved: %d", got)
	}
	withEnabled(t, func() {
		c.Inc()
		c.Add(41)
	})
	if got := c.Value(); got != 42 {
		t.Fatalf("enabled counter = %d, want 42", got)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	g := NewGauge("test_gauge", "gauge")
	withEnabled(t, func() {
		g.Set(2.5)
		g.Add(1.5)
		g.Add(-3)
	})
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %v, want 1", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("test_hist_seconds", "latencies", 0.1, 1, 10)
	withEnabled(t, func() {
		for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
			h.Observe(v)
		}
	})
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if want := 0.05 + 0.1 + 0.5 + 2 + 100; math.Abs(s.Sum-want) > 1e-12 {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
	// le=0.1 holds 0.05 and the boundary value 0.1; le=1 adds 0.5; le=10
	// adds 2; +Inf adds 100.
	wantCum := []uint64{2, 3, 4, 5}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d (le=%v) = %d, want %d", i, b.UpperBound, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(s.Buckets[len(s.Buckets)-1].UpperBound, 1) {
		t.Fatalf("last bucket bound = %v, want +Inf", s.Buckets[len(s.Buckets)-1].UpperBound)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	NewCounter("test_dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	NewCounter("test_dup_total", "second")
}

func TestResetZeroesEverything(t *testing.T) {
	c := NewCounter("test_reset_total", "c")
	g := NewGauge("test_reset_gauge", "g")
	h := NewHistogram("test_reset_seconds", "h", 1)
	withEnabled(t, func() {
		c.Inc()
		g.Set(7)
		h.Observe(0.5)
	})
	Default().Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("reset left state: c=%d g=%v h=%d/%v", c.Value(), g.Value(), h.Count(), h.Sum())
	}
	if s := h.Snapshot(); s.Buckets[0].Count != 0 {
		t.Fatalf("reset left bucket counts: %+v", s.Buckets)
	}
}

// TestConcurrentWritersAndSnapshots is the -race workhorse: hammer every
// metric kind from many goroutines while snapshotting, then check the
// totals once the writers quiesce.
func TestConcurrentWritersAndSnapshots(t *testing.T) {
	c := NewCounter("test_conc_total", "c")
	g := NewGauge("test_conc_gauge", "g")
	h := NewHistogram("test_conc_seconds", "h", 0.5, 1)
	const workers = 8
	const perWorker = 2000
	withEnabled(t, func() {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					c.Inc()
					g.Add(1)
					g.Add(-1)
					h.Observe(0.75)
				}
			}()
		}
		// Concurrent readers of all exposition paths.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				Default().Snapshots()
				var sb strings.Builder
				_ = Default().WritePrometheus(&sb)
			}
		}()
		wg.Wait()
	})
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %v, want 0 after balanced adds", got)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if want := 0.75 * workers * perWorker; math.Abs(h.Sum()-want) > 1e-6*want {
		t.Fatalf("histogram sum = %v, want %v", h.Sum(), want)
	}
}

func TestPrometheusExposition(t *testing.T) {
	c := NewCounter("test_expo_total", "an exposed counter")
	h := NewHistogram("test_expo_seconds", "an exposed histogram", 1)
	withEnabled(t, func() {
		c.Add(3)
		h.Observe(0.5)
		h.Observe(2)
	})
	var sb strings.Builder
	if err := Default().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP test_expo_total an exposed counter",
		"# TYPE test_expo_total counter",
		"test_expo_total 3",
		"# TYPE test_expo_seconds histogram",
		`test_expo_seconds_bucket{le="1"} 1`,
		`test_expo_seconds_bucket{le="+Inf"} 2`,
		"test_expo_seconds_sum 2.5",
		"test_expo_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestJSONAndHandler(t *testing.T) {
	c := NewCounter("test_http_total", "served counter")
	withEnabled(t, func() { c.Add(9) })

	srv := httptest.NewServer(Handler())
	defer srv.Close()

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	Handler().ServeHTTP(rec, req)
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "test_http_total 9") {
		t.Fatalf("/metrics: code %d body %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	req = httptest.NewRequest("GET", "/metrics.json", nil)
	Handler().ServeHTTP(rec, req)
	var snaps []Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snaps); err != nil {
		t.Fatalf("/metrics.json did not parse: %v", err)
	}
	found := false
	for _, s := range snaps {
		if s.Name == "test_http_total" {
			found = true
			if s.Value != 9 || s.Kind != "counter" {
				t.Fatalf("bad JSON snapshot: %+v", s)
			}
		}
	}
	if !found {
		t.Fatalf("test_http_total missing from JSON: %v", snaps)
	}
}

func TestSummarySkipsZeroMetrics(t *testing.T) {
	NewCounter("test_summary_zero_total", "never incremented")
	c := NewCounter("test_summary_live_total", "incremented")
	withEnabled(t, func() { c.Inc() })
	sum := Default().Summary()
	if strings.Contains(sum, "test_summary_zero_total") {
		t.Errorf("summary includes zero metric:\n%s", sum)
	}
	if !strings.Contains(sum, "test_summary_live_total") {
		t.Errorf("summary missing live metric:\n%s", sum)
	}
}

// BenchmarkDisabledOps documents the disabled-registry guarantee: writes in
// the disabled state are branch-and-return with zero allocations.
func BenchmarkDisabledOps(b *testing.B) {
	c := NewCounter("bench_disabled_total", "")
	g := NewGauge("bench_disabled_gauge", "")
	h := NewHistogram("bench_disabled_seconds", "", 1, 10)
	Enable(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(1)
		h.Observe(0.5)
	}
}

// BenchmarkEnabledCounter documents the enabled fast path: one atomic add,
// zero allocations.
func BenchmarkEnabledCounter(b *testing.B) {
	c := NewCounter("bench_enabled_total", "")
	Enable(true)
	defer Enable(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

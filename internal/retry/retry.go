// Package retry implements a small deterministic retry-with-backoff policy
// for transient sysfs/procfs read errors. The live meter samples on a tight
// period, so the defaults are deliberately short: a read that keeps failing
// is better reported as a dropped tick (and folded into the next interval)
// than waited out past the sampling deadline.
//
// Backoff is exponential and jitter-free: the whole metering pipeline is
// reproducible under the fault-injection harness, and adding randomness here
// would break bit-identical storm tests for no operational gain at these
// timescales.
package retry

import "time"

// Policy describes how to retry a fallible operation.
type Policy struct {
	// Attempts is the total number of tries (minimum 1). 0 means the
	// default of 3.
	Attempts int
	// BaseDelay is the sleep after the first failure; it doubles after
	// each subsequent failure. 0 means the default of 1 ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. 0 means the default of 10 ms.
	MaxDelay time.Duration
	// Sleep is injectable for tests; nil means time.Sleep.
	Sleep func(time.Duration)
}

// Default mirrors the zero-value policy with its defaults filled in.
func Default() Policy {
	return Policy{}.normalized()
}

func (p Policy) normalized() Policy {
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 10 * time.Millisecond
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Do runs op until it succeeds, the attempts are exhausted, or permanent
// reports that the error is not worth retrying (permanent may be nil).
// It returns the last error observed.
func (p Policy) Do(op func() error, permanent func(error) bool) error {
	p = p.normalized()
	delay := p.BaseDelay
	var err error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		if permanent != nil && permanent(err) {
			return err
		}
		if attempt == p.Attempts-1 {
			break
		}
		p.Sleep(delay)
		delay *= 2
		if delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
	return err
}

package retry

import (
	"errors"
	"testing"
	"time"
)

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	var slept []time.Duration
	p := Policy{Attempts: 4, BaseDelay: time.Millisecond, MaxDelay: 3 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) }}
	calls := 0
	err := p.Do(func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	}, nil)
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	// Backoff doubles from BaseDelay and is capped at MaxDelay.
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept = %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("slept[%d] = %v, want %v", i, slept[i], want[i])
		}
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	p := Policy{Attempts: 3, Sleep: func(time.Duration) {}}
	err := p.Do(func() error { calls++; return boom }, nil)
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
}

func TestDoStopsOnPermanentError(t *testing.T) {
	gone := errors.New("gone")
	calls := 0
	p := Policy{Attempts: 5, Sleep: func(time.Duration) {}}
	err := p.Do(func() error { calls++; return gone },
		func(err error) bool { return errors.Is(err, gone) })
	if !errors.Is(err, gone) {
		t.Errorf("err = %v, want gone", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (permanent errors must not be retried)", calls)
	}
}

func TestDoCapsBackoff(t *testing.T) {
	var slept []time.Duration
	p := Policy{Attempts: 5, BaseDelay: 4 * time.Millisecond, MaxDelay: 6 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) }}
	p.Do(func() error { return errors.New("always") }, nil)
	for _, d := range slept {
		if d > 6*time.Millisecond {
			t.Errorf("backoff %v exceeds cap", d)
		}
	}
	if len(slept) != 4 {
		t.Errorf("slept %d times, want 4", len(slept))
	}
}

func TestZeroValueDefaults(t *testing.T) {
	d := Default()
	if d.Attempts != 3 || d.BaseDelay != time.Millisecond || d.MaxDelay != 10*time.Millisecond {
		t.Errorf("defaults = %+v", d)
	}
}

package traffic

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"powerdiv/internal/cpumodel"
	"powerdiv/internal/machine"
	"powerdiv/internal/protocol"
)

// testConfig is a small, fast campaign exercising all three arrival shapes.
func testConfig(seed int64) Config {
	return Config{
		Kind:              Mixed,
		Seed:              seed,
		Scenarios:         9,
		Window:            10 * time.Second,
		ArrivalsPerMinute: 60, // dense enough that every shape produces churn
		MeanLifetime:      3 * time.Second,
		MaxThreads:        2,
		MaxCPUs:           6,
		Baseload:          2,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two Generate calls with the same config differ")
	}
	c, err := Generate(testConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical campaigns")
	}
}

func TestGenerateShapes(t *testing.T) {
	cfg := testConfig(3)
	scenarios, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != cfg.Scenarios {
		t.Fatalf("got %d scenarios, want %d", len(scenarios), cfg.Scenarios)
	}
	defaulted := cfg.WithDefaults()
	sawArrival, sawExit := false, false
	for i, s := range scenarios {
		if len(s.Apps) < defaulted.Baseload {
			t.Fatalf("scenario %d has %d instances, want ≥%d", i, len(s.Apps), defaulted.Baseload)
		}
		seen := map[string]bool{}
		for j, a := range s.Apps {
			if seen[a.ID] {
				t.Fatalf("scenario %d duplicates ID %s", i, a.ID)
			}
			seen[a.ID] = true
			if a.BaseID == "" {
				t.Fatalf("scenario %d instance %s has no BaseID", i, a.ID)
			}
			if j < defaulted.Baseload {
				if a.StartAt != 0 || a.StopAt != 0 || a.Threads != 1 {
					t.Fatalf("scenario %d baseload instance %s has lifetime %v..%v threads %d", i, a.ID, a.StartAt, a.StopAt, a.Threads)
				}
			}
			if a.StartAt < 0 || a.StartAt >= cfg.Window {
				t.Fatalf("scenario %d instance %s starts at %v outside the window", i, a.ID, a.StartAt)
			}
			if a.StopAt != 0 && a.StopAt <= a.StartAt {
				t.Fatalf("scenario %d instance %s stops at %v before start %v", i, a.ID, a.StopAt, a.StartAt)
			}
			if a.StartAt > 0 {
				sawArrival = true
			}
			if a.StopAt != 0 {
				sawExit = true
			}
		}
	}
	if !sawArrival || !sawExit {
		t.Fatalf("campaign exercised no churn: arrivals=%t exits=%t", sawArrival, sawExit)
	}
}

// TestGenerateCapacity asserts the contention-free invariant: at every
// instant the threads of alive instances fit MaxCPUs. Concurrency only
// increases at arrival instants, so checking at every StartAt covers all
// times; the test checks every start and stop boundary anyway.
func TestGenerateCapacity(t *testing.T) {
	cfg := testConfig(11)
	cfg.ArrivalsPerMinute = 600 // saturate so rejection actually engages
	scenarios, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range scenarios {
		var events []time.Duration
		for _, a := range s.Apps {
			events = append(events, a.StartAt)
			if a.StopAt != 0 {
				events = append(events, a.StopAt-1)
			}
		}
		for _, at := range events {
			alive := 0
			for _, a := range s.Apps {
				if a.StartAt <= at && (a.StopAt == 0 || a.StopAt > at) {
					alive += a.Threads
				}
			}
			if alive > cfg.MaxCPUs {
				t.Fatalf("scenario %d oversubscribed at %v: %d threads on %d CPUs", i, at, alive, cfg.MaxCPUs)
			}
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Baseload: 1, MaxCPUs: 4, MaxThreads: 2, Kernels: []string{"fibonacci"}},
		{Baseload: 8, MaxCPUs: 4, MaxThreads: 2, Kernels: []string{"fibonacci"}},
		{Baseload: 2, MaxCPUs: 4, MaxThreads: 8, Kernels: []string{"fibonacci"}},
		{Baseload: 2, MaxCPUs: 4, MaxThreads: 2, Kernels: []string{"no-such-kernel"}},
	}
	for i, cfg := range bad {
		cfg.Scenarios, cfg.Window = 1, time.Second
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: Generate accepted invalid config %+v", i, cfg)
		}
	}
	if _, err := KindByName("square-wave"); err == nil {
		t.Error("KindByName accepted an unknown kind")
	}
	for _, k := range []Kind{Poisson, Bursty, Diurnal, Mixed} {
		got, err := KindByName(k.String())
		if err != nil || got != k {
			t.Errorf("KindByName(%q) = %v, %v", k.String(), got, err)
		}
	}
}

// TestEnergyConservation is the testing/quick property: for arbitrary
// generated schedules, the simulator's per-tick power decomposition is
// conserved — TruePower equals idle + residual + the per-instance active
// powers — so churn never creates or destroys energy.
func TestEnergyConservation(t *testing.T) {
	spec := cpumodel.SmallIntel()
	check := func(seed int64, kindSel uint8) bool {
		cfg := testConfig(seed)
		cfg.Kind = [...]Kind{Poisson, Bursty, Diurnal}[int(kindSel)%3]
		cfg.Scenarios = 1
		cfg.Window = 5 * time.Second
		scenarios, err := Generate(cfg)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		s := scenarios[0]
		procs := make([]machine.Proc, len(s.Apps))
		for i, a := range s.Apps {
			procs[i] = machine.Proc{
				ID: a.ID, Workload: a.Workload, Threads: a.Threads,
				Start: a.StartAt, Stop: a.StopAt,
			}
		}
		run, err := machine.Simulate(machine.Config{Spec: spec, Seed: seed}, procs, cfg.Window)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for i := range run.Ticks {
			rec := &run.Ticks[i]
			sum := float64(rec.Idle + rec.Residual)
			for _, pt := range rec.Procs {
				sum += float64(pt.ActivePower)
			}
			if diff := math.Abs(sum - float64(rec.TruePower)); diff > 1e-6*(1+math.Abs(float64(rec.TruePower))) {
				t.Logf("seed %d tick %d: decomposition sums to %v, TruePower %v", seed, i, sum, rec.TruePower)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceRoundtrip(t *testing.T) {
	cfg := testConfig(5)
	scenarios, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := Record(cfg, scenarios)
	data, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatalf("decoding our own encoding: %v", err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatal("trace did not survive an encode/decode roundtrip")
	}
	if back.Window() != cfg.Window {
		t.Fatalf("trace window %v, want %v", back.Window(), cfg.Window)
	}
	replayed, err := back.ProtocolScenarios()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, scenarios) {
		t.Fatal("replayed scenarios differ from the generated originals")
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	valid := func() Trace {
		cfg := testConfig(5)
		cfg.Scenarios = 1
		scenarios, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return Record(cfg, scenarios)
	}
	cases := []struct {
		name   string
		mutate func(*Trace)
	}{
		{"wrong version", func(tr *Trace) { tr.Version = 2 }},
		{"no window", func(tr *Trace) { tr.WindowNS = 0 }},
		{"no scenarios", func(tr *Trace) { tr.Scenarios = nil }},
		{"empty roster", func(tr *Trace) { tr.Scenarios[0].Apps = nil }},
		{"empty ID", func(tr *Trace) { tr.Scenarios[0].Apps[0].ID = "" }},
		{"duplicate ID", func(tr *Trace) { tr.Scenarios[0].Apps[1].ID = tr.Scenarios[0].Apps[0].ID }},
		{"unknown kernel", func(tr *Trace) { tr.Scenarios[0].Apps[0].Kernel = "minesweeper" }},
		{"zero threads", func(tr *Trace) { tr.Scenarios[0].Apps[0].Threads = 0 }},
		{"start outside window", func(tr *Trace) { tr.Scenarios[0].Apps[0].StartNS = tr.WindowNS }},
		{"negative start", func(tr *Trace) { tr.Scenarios[0].Apps[0].StartNS = -1 }},
		{"stop before start", func(tr *Trace) {
			tr.Scenarios[0].Apps[0].StartNS = 5
			tr.Scenarios[0].Apps[0].StopNS = 4
		}},
	}
	for _, tc := range cases {
		tr := valid()
		tc.mutate(&tr)
		data, err := tr.Encode()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: Decode accepted the mutated trace", tc.name)
		}
	}
	if _, err := Decode([]byte("{")); err == nil {
		t.Error("Decode accepted truncated JSON")
	}
}

// TestZeroBaseload is the regression test for the Baseload sentinel: the
// zero value of Config still defaults to 2 always-on anchors, while
// NoBaseload yields schedules driven by arrivals alone that both generate
// and replay through a trace roundtrip.
func TestZeroBaseload(t *testing.T) {
	base := testConfig(31)
	base.Scenarios = 3
	base.ArrivalsPerMinute = 240 // dense enough that every scenario has arrivals

	defaulted := Config{}.WithDefaults()
	if defaulted.Baseload != defaultBaseload {
		t.Fatalf("zero-value Baseload defaulted to %d, want %d", defaulted.Baseload, defaultBaseload)
	}

	cfg := base
	cfg.Baseload = NoBaseload
	if got := cfg.WithDefaults().Baseload; got != 0 {
		t.Fatalf("NoBaseload defaulted to %d, want 0", got)
	}
	scenarios, err := Generate(cfg)
	if err != nil {
		t.Fatalf("zero-baseload Generate: %v", err)
	}
	for i, s := range scenarios {
		if len(s.Apps) == 0 {
			t.Fatalf("scenario %d generated no arrivals at %v arrivals/min", i, cfg.ArrivalsPerMinute)
		}
		// Every instance must be an arrival: before the fix, WithDefaults
		// silently re-inserted two always-on anchors at t=0.
		for _, a := range s.Apps {
			if a.StartAt == 0 {
				t.Fatalf("scenario %d instance %s starts at 0: baseload sneaked back in", i, a.ID)
			}
		}
	}

	tr := Record(cfg, scenarios)
	data, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatalf("zero-baseload trace rejected on decode: %v", err)
	}
	replayed, err := back.ProtocolScenarios()
	if err != nil {
		t.Fatalf("zero-baseload trace failed to replay: %v", err)
	}
	if !reflect.DeepEqual(replayed, scenarios) {
		t.Fatal("zero-baseload replay differs from the generated schedule")
	}
}

// TestBaselineSharing pins the instance/type split: every generated
// instance's BaseID resolves through protocol.BaselineAppsOf to a stripped
// spec, and the number of distinct baselines is bounded by kernels ×
// thread sizes, not by instance count.
func TestBaselineSharing(t *testing.T) {
	cfg := testConfig(21)
	cfg.Scenarios = 6
	scenarios, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	instances := 0
	for _, s := range scenarios {
		instances += len(s.Apps)
	}
	bases := protocol.BaselineAppsOf(scenarios)
	maxTypes := len(cfg.WithDefaults().Kernels) * cfg.MaxThreads
	if len(bases) > maxTypes {
		t.Fatalf("%d baseline specs for %d possible types", len(bases), maxTypes)
	}
	if len(bases) >= instances {
		t.Fatalf("no baseline sharing: %d baselines for %d instances", len(bases), instances)
	}
	for _, b := range bases {
		if b.BaseID != "" || b.StartAt != 0 || b.StopAt != 0 {
			t.Fatalf("baseline spec %s kept traffic fields: %+v", b.ID, b)
		}
	}
}

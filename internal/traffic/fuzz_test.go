package traffic

import (
	"testing"
	"time"
)

// FuzzTraceJSON pins the replay parser's safety contract: arbitrary bytes
// never panic Decode, and any trace it accepts is fully replayable —
// ProtocolScenarios succeeds and the trace re-encodes to a decodable form.
func FuzzTraceJSON(f *testing.F) {
	cfg := Config{
		Kind: Mixed, Seed: 42, Scenarios: 3, Window: 5 * time.Second,
		ArrivalsPerMinute: 120, MaxThreads: 2, MaxCPUs: 6, Baseload: 2,
	}
	if scenarios, err := Generate(cfg); err == nil {
		if data, err := Record(cfg, scenarios).Encode(); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte(`{"version":1,"kind":"poisson","seed":1,"window_ns":1000000000,` +
		`"scenarios":[{"apps":[` +
		`{"id":"a","kernel":"fibonacci","threads":1,"start_ns":0,"stop_ns":0},` +
		`{"id":"b","kernel":"matrixprod","threads":2,"start_ns":5,"stop_ns":10}]}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"window_ns":-3}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(data)
		if err != nil {
			return
		}
		scenarios, err := tr.ProtocolScenarios()
		if err != nil {
			t.Fatalf("accepted trace failed to replay: %v", err)
		}
		for i, s := range scenarios {
			if len(s.Apps) < 1 {
				t.Fatalf("accepted trace scenario %d has no instances", i)
			}
		}
		out, err := tr.Encode()
		if err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		if _, err := Decode(out); err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
	})
}

package traffic

import (
	"encoding/json"
	"fmt"
	"time"

	"powerdiv/internal/protocol"
)

// TraceVersion is the trace format version this package reads and writes.
const TraceVersion = 1

// Trace is the compact JSON record of a generated schedule: enough to
// replay the exact timed scenarios on another run or machine without the
// generator, and small enough to commit next to campaign results.
// Durations are int64 nanoseconds (Go's native resolution) so replays are
// exact; workloads are stored by kernel name and re-resolved on decode, so
// traces stay calibration-independent.
type Trace struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`
	Seed    int64  `json:"seed"`
	// WindowNS is the scenario duration in nanoseconds.
	WindowNS  int64           `json:"window_ns"`
	Scenarios []TraceScenario `json:"scenarios"`
}

// TraceScenario is one scenario's roster.
type TraceScenario struct {
	Apps []TraceApp `json:"apps"`
}

// TraceApp is one instance: its identity, application type and lifetime.
type TraceApp struct {
	ID      string `json:"id"`
	Kernel  string `json:"kernel"`
	Threads int    `json:"threads"`
	StartNS int64  `json:"start_ns"`
	// StopNS is 0 when the instance runs until the scenario ends.
	StopNS int64 `json:"stop_ns"`
}

// Record captures a generated schedule as a trace. cfg supplies the
// provenance header (kind, seed, window); scenarios the timed rosters.
func Record(cfg Config, scenarios []protocol.Scenario) Trace {
	cfg = cfg.WithDefaults()
	t := Trace{
		Version:   TraceVersion,
		Kind:      cfg.Kind.String(),
		Seed:      cfg.Seed,
		WindowNS:  int64(cfg.Window),
		Scenarios: make([]TraceScenario, len(scenarios)),
	}
	for i, s := range scenarios {
		apps := make([]TraceApp, len(s.Apps))
		for j, a := range s.Apps {
			apps[j] = TraceApp{
				ID:      a.ID,
				Kernel:  a.Workload.Name,
				Threads: a.Threads,
				StartNS: int64(a.StartAt),
				StopNS:  int64(a.StopAt),
			}
		}
		t.Scenarios[i] = TraceScenario{Apps: apps}
	}
	return t
}

// Encode renders the trace as indented JSON.
func (t Trace) Encode() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// Decode parses and validates a trace. Malformed input yields an error,
// never a panic (the fuzz test pins this), and every accepted trace
// round-trips through Scenarios without further errors.
func Decode(data []byte) (Trace, error) {
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return Trace{}, fmt.Errorf("traffic: decoding trace: %w", err)
	}
	if err := t.validate(); err != nil {
		return Trace{}, err
	}
	return t, nil
}

// validate checks the structural invariants replay depends on.
func (t Trace) validate() error {
	if t.Version != TraceVersion {
		return fmt.Errorf("traffic: trace version %d (want %d)", t.Version, TraceVersion)
	}
	if t.WindowNS <= 0 {
		return fmt.Errorf("traffic: non-positive trace window %d", t.WindowNS)
	}
	if len(t.Scenarios) == 0 {
		return fmt.Errorf("traffic: trace holds no scenarios")
	}
	for i, s := range t.Scenarios {
		if len(s.Apps) < 1 {
			return fmt.Errorf("traffic: scenario %d has no instances", i)
		}
		seen := make(map[string]bool, len(s.Apps))
		for j, a := range s.Apps {
			if a.ID == "" {
				return fmt.Errorf("traffic: scenario %d instance %d has an empty ID", i, j)
			}
			if seen[a.ID] {
				return fmt.Errorf("traffic: scenario %d duplicates instance ID %q", i, a.ID)
			}
			seen[a.ID] = true
			if _, ok := KernelByName(a.Kernel); !ok {
				return fmt.Errorf("traffic: scenario %d instance %q: unknown kernel %q", i, a.ID, a.Kernel)
			}
			if a.Threads <= 0 {
				return fmt.Errorf("traffic: scenario %d instance %q: thread count %d", i, a.ID, a.Threads)
			}
			if a.StartNS < 0 || a.StartNS >= t.WindowNS {
				return fmt.Errorf("traffic: scenario %d instance %q: start %d outside window %d", i, a.ID, a.StartNS, t.WindowNS)
			}
			if a.StopNS != 0 && a.StopNS <= a.StartNS {
				return fmt.Errorf("traffic: scenario %d instance %q: stop %d not after start %d", i, a.ID, a.StopNS, a.StartNS)
			}
		}
	}
	return nil
}

// Window returns the trace's scenario duration.
func (t Trace) Window() time.Duration { return time.Duration(t.WindowNS) }

// Scenarios rebuilds the protocol scenarios a validated trace records.
// Instance BaseIDs are reconstructed as "<kernel>-<threads>", matching
// Generate, so replayed campaigns share baselines the same way.
func (t Trace) ProtocolScenarios() ([]protocol.Scenario, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	out := make([]protocol.Scenario, len(t.Scenarios))
	for i, s := range t.Scenarios {
		apps := make([]protocol.AppSpec, len(s.Apps))
		for j, a := range s.Apps {
			w, _ := KernelByName(a.Kernel) // validated above
			apps[j] = protocol.AppSpec{
				ID:       a.ID,
				BaseID:   fmt.Sprintf("%s-%d", a.Kernel, a.Threads),
				Workload: w,
				Threads:  a.Threads,
				StartAt:  time.Duration(a.StartNS),
				StopAt:   time.Duration(a.StopNS),
			}
		}
		out[i] = protocol.Scenario{Apps: apps}
	}
	return out, nil
}

// Package traffic generates production-shaped scenario schedules for the
// evaluation protocol: instead of the paper's static solo/pair rosters,
// instances of the stress/phoronix application types arrive by a stochastic
// arrival process, run for exponentially distributed lifetimes and exit
// mid-run — the "production context" of continuously churning processes
// that the paper's framing targets but its evaluation never reaches.
//
// Three arrival shapes are built in:
//
//   - Poisson: memoryless arrivals at a constant mean rate — the classic
//     open-system baseline;
//   - Bursty: a two-state Markov-modulated Poisson process alternating
//     calm and burst periods (exponential sojourns), holding the configured
//     mean rate overall;
//   - Diurnal: a Poisson process thinned against a sinusoidal multi-period
//     rate curve, the day/night load swing of a production fleet.
//
// Determinism contract: Generate is a pure function of its Config. Every
// random draw comes from a per-scenario source seeded by FNV-1a over
// (Seed, scenario index), draws happen in a fixed order (baseload, then
// arrival candidates in time order), and rejected arrivals still consume
// their draws — so schedules are bit-identical across runs, platforms and
// worker scheduling, and any schedule can be regenerated from (Seed, index)
// alone. Capacity is enforced at generation time: alive threads never
// exceed MaxCPUs (concurrency only increases at arrival instants, so the
// per-arrival check yields an all-times invariant), keeping every generated
// scenario contention-free as the protocol requires.
package traffic

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"time"

	"powerdiv/internal/protocol"
	"powerdiv/internal/workload"
)

// Kind selects the arrival process shape.
type Kind int

const (
	// Poisson is a constant-rate memoryless arrival process.
	Poisson Kind = iota
	// Bursty is a two-state Markov-modulated Poisson process.
	Bursty
	// Diurnal modulates a Poisson process by a sinusoidal rate curve.
	Diurnal
	// Mixed cycles Poisson, Bursty and Diurnal across scenarios.
	Mixed
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	case Diurnal:
		return "diurnal"
	case Mixed:
		return "mixed"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// KindByName parses a kind name.
func KindByName(name string) (Kind, error) {
	switch name {
	case "poisson":
		return Poisson, nil
	case "bursty":
		return Bursty, nil
	case "diurnal":
		return Diurnal, nil
	case "mixed":
		return Mixed, nil
	default:
		return 0, fmt.Errorf("traffic: unknown arrival kind %q (want poisson, bursty, diurnal or mixed)", name)
	}
}

// Config parameterizes a generated traffic campaign.
type Config struct {
	// Kind is the arrival shape (Mixed cycles all three per scenario).
	Kind Kind
	// Seed makes the whole campaign deterministic.
	Seed int64
	// Scenarios is how many scenarios to generate.
	Scenarios int
	// Window is each scenario's duration.
	Window time.Duration
	// ArrivalsPerMinute is the mean arrival rate over the window.
	ArrivalsPerMinute float64
	// MeanLifetime is the mean of the exponential instance lifetime.
	MeanLifetime time.Duration
	// BurstFactor multiplies the calm arrival rate during bursts (Bursty).
	BurstFactor float64
	// BurstFraction is the long-run fraction of time spent bursting, in
	// (0, 1) (Bursty).
	BurstFraction float64
	// DiurnalPeriods is how many rate peaks the window spans (Diurnal).
	DiurnalPeriods int
	// DiurnalDepth is the sinusoidal modulation depth in [0, 1) (Diurnal).
	DiurnalDepth float64
	// Kernels is the cohort mix instances draw from — stress function or
	// phoronix application names. Defaults to the 12 stress functions.
	Kernels []string
	// MaxThreads caps each arriving instance's thread count (uniform in
	// 1..MaxThreads).
	MaxThreads int
	// MaxCPUs is the machine capacity generation respects: alive threads
	// never exceed it, so scenarios stay contention-free.
	MaxCPUs int
	// Baseload is how many always-on single-thread instances anchor each
	// scenario (they guarantee busy ticks throughout). Zero means "unset"
	// and defaults to 2; set NoBaseload for an explicitly empty baseload —
	// a scenario driven by arrivals alone, as on a fleet node that only
	// sees churn.
	Baseload int
}

// NoBaseload is the explicit Baseload sentinel for "no always-on
// instances". The zero value of Config keeps its historical meaning
// (defaulted baseload of 2), so zero-baseload schedules need this marker
// to be distinguishable from an unset field.
const NoBaseload = -1

// Defaults chosen so a 30 s window sees a steady trickle of arrivals with
// visible churn on a small machine.
const (
	defaultWindow            = 30 * time.Second
	defaultArrivalsPerMinute = 12.0
	defaultBurstFactor       = 4.0
	defaultBurstFraction     = 0.2
	defaultDiurnalPeriods    = 2
	defaultDiurnalDepth      = 0.8
	defaultMaxThreads        = 2
	defaultMaxCPUs           = 4
	defaultBaseload          = 2
	// minLifetime keeps instances alive for at least a few simulator ticks
	// so that every arrival is observable.
	minLifetime = 500 * time.Millisecond
)

// WithDefaults fills unset fields with the package defaults.
func (c Config) WithDefaults() Config {
	if c.Scenarios <= 0 {
		c.Scenarios = 1
	}
	if c.Window <= 0 {
		c.Window = defaultWindow
	}
	if c.ArrivalsPerMinute <= 0 {
		c.ArrivalsPerMinute = defaultArrivalsPerMinute
	}
	if c.MeanLifetime <= 0 {
		c.MeanLifetime = c.Window / 3
	}
	if c.BurstFactor <= 1 {
		c.BurstFactor = defaultBurstFactor
	}
	if c.BurstFraction <= 0 || c.BurstFraction >= 1 {
		c.BurstFraction = defaultBurstFraction
	}
	if c.DiurnalPeriods <= 0 {
		c.DiurnalPeriods = defaultDiurnalPeriods
	}
	if c.DiurnalDepth <= 0 || c.DiurnalDepth >= 1 {
		c.DiurnalDepth = defaultDiurnalDepth
	}
	if len(c.Kernels) == 0 {
		c.Kernels = workload.StressNames()
	}
	if c.MaxThreads <= 0 {
		c.MaxThreads = defaultMaxThreads
	}
	if c.MaxCPUs <= 0 {
		c.MaxCPUs = defaultMaxCPUs
	}
	switch {
	case c.Baseload == 0:
		// Zero is "unset", not "no baseload": the historical default.
		c.Baseload = defaultBaseload
	case c.Baseload < 0:
		// NoBaseload (or any negative sentinel): explicitly empty.
		c.Baseload = 0
	}
	return c
}

// Validate checks a defaulted config for internal consistency.
func (c Config) Validate() error {
	if c.Baseload != 0 && c.Baseload < 2 {
		return fmt.Errorf("traffic: baseload %d below the protocol's 2-instance floor (use NoBaseload for none)", c.Baseload)
	}
	if c.Baseload > c.MaxCPUs {
		return fmt.Errorf("traffic: baseload %d exceeds capacity %d", c.Baseload, c.MaxCPUs)
	}
	if c.MaxThreads > c.MaxCPUs {
		return fmt.Errorf("traffic: max threads %d exceeds capacity %d", c.MaxThreads, c.MaxCPUs)
	}
	for _, k := range c.Kernels {
		if _, ok := KernelByName(k); !ok {
			return fmt.Errorf("traffic: unknown kernel %q", k)
		}
	}
	return nil
}

// KernelByName resolves a cohort kernel name: the 12 stress functions
// first, then the phoronix applications.
func KernelByName(name string) (workload.Workload, bool) {
	if w, ok := workload.StressByName(name); ok {
		return w, true
	}
	return workload.PhoronixByName(name)
}

// seedFor derives a deterministic sub-seed by FNV-1a over the seed and
// labels (the same construction the protocol package uses).
func seedFor(seed int64, parts ...string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", seed)
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return int64(h.Sum64())
}

// Generate produces the campaign's timed scenarios, deterministically per
// config. Instance IDs are "<kernel>-<threads>.<seq>" with the shared
// BaseID "<kernel>-<threads>", so phase 1 measures one baseline per
// distinct application type regardless of how many instances churn
// through the campaign.
func Generate(cfg Config) ([]protocol.Scenario, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	out := make([]protocol.Scenario, cfg.Scenarios)
	for i := range out {
		out[i] = generateScenario(cfg, i)
	}
	return out, nil
}

// ScenarioKind reports which arrival shape scenario idx uses under the
// config (Mixed cycles the three concrete shapes).
func (c Config) ScenarioKind(idx int) Kind {
	if c.Kind != Mixed {
		return c.Kind
	}
	return [...]Kind{Poisson, Bursty, Diurnal}[idx%3]
}

// generateScenario builds one scenario. Draw order is fixed — baseload
// instances first, then arrival candidates in time order, each consuming
// its kernel/threads/lifetime draws even when rejected for capacity — so
// the schedule is a pure function of (cfg, idx).
func generateScenario(cfg Config, idx int) protocol.Scenario {
	rng := rand.New(rand.NewSource(seedFor(cfg.Seed, "scenario", fmt.Sprint(idx))))
	kind := cfg.ScenarioKind(idx)
	apps := make([]protocol.AppSpec, 0, cfg.Baseload+8)

	// Baseload: always-on single-thread anchors. Generated first so every
	// arrival's capacity check already accounts for them.
	for b := 0; b < cfg.Baseload; b++ {
		apps = append(apps, newInstance(cfg.Kernels[rng.Intn(len(cfg.Kernels))], 1, len(apps), 0, 0))
	}

	aliveThreads := func(t time.Duration) int {
		n := 0
		for _, a := range apps {
			if a.StartAt <= t && (a.StopAt == 0 || a.StopAt > t) {
				n += a.Threads
			}
		}
		return n
	}

	for _, at := range arrivalTimes(cfg, kind, rng) {
		kernel := cfg.Kernels[rng.Intn(len(cfg.Kernels))]
		threads := 1 + rng.Intn(cfg.MaxThreads)
		life := time.Duration(rng.ExpFloat64() * float64(cfg.MeanLifetime))
		if life < minLifetime {
			life = minLifetime
		}
		stop := at + life
		if stop >= cfg.Window {
			stop = 0 // runs until the scenario ends
		}
		if aliveThreads(at)+threads > cfg.MaxCPUs {
			continue // no capacity at this instant: the arrival is dropped
		}
		apps = append(apps, newInstance(kernel, threads, len(apps), at, stop))
	}
	return protocol.Scenario{Apps: apps}
}

// newInstance builds instance seq of an application type. The type's
// lookup cannot fail: Validate checked every kernel name.
func newInstance(kernel string, threads, seq int, start, stop time.Duration) protocol.AppSpec {
	w, _ := KernelByName(kernel)
	base := fmt.Sprintf("%s-%d", kernel, threads)
	return protocol.AppSpec{
		ID:       fmt.Sprintf("%s.%03d", base, seq),
		BaseID:   base,
		Workload: w,
		Threads:  threads,
		StartAt:  start,
		StopAt:   stop,
	}
}

// arrivalTimes draws the scenario's candidate arrival instants in [0,
// Window), in increasing order.
func arrivalTimes(cfg Config, kind Kind, rng *rand.Rand) []time.Duration {
	base := cfg.ArrivalsPerMinute / 60 // per second
	window := cfg.Window.Seconds()
	var out []time.Duration
	appendAt := func(t float64) {
		out = append(out, time.Duration(t*float64(time.Second)))
	}
	switch kind {
	case Poisson:
		for t := expStep(rng, base); t < window; t += expStep(rng, base) {
			appendAt(t)
		}
	case Diurnal:
		// Thinning: candidates at the peak rate, each kept with probability
		// rate(t)/peak. rate(t) sweeps DiurnalPeriods full sine periods
		// across the window around the base rate.
		peak := base * (1 + cfg.DiurnalDepth)
		for t := expStep(rng, peak); t < window; t += expStep(rng, peak) {
			rate := base * (1 + cfg.DiurnalDepth*math.Sin(2*math.Pi*float64(cfg.DiurnalPeriods)*t/window))
			if rng.Float64()*peak <= rate {
				appendAt(t)
			}
		}
	case Bursty:
		// Two-state MMPP: exponential sojourns in calm/burst states, the
		// burst rate BurstFactor times the calm rate, rates chosen so the
		// long-run mean matches the configured base rate. Crossing a state
		// boundary redraws the inter-arrival gap — valid because the
		// exponential is memoryless.
		calmRate := base / (1 - cfg.BurstFraction + cfg.BurstFraction*cfg.BurstFactor)
		burstRate := calmRate * cfg.BurstFactor
		cycle := window / 4 // mean calm+burst cycle length
		meanBurst := cfg.BurstFraction * cycle
		meanCalm := (1 - cfg.BurstFraction) * cycle
		burst := false
		t := 0.0
		stateEnd := expStep(rng, 1/meanCalm)
		for t < window {
			rate := calmRate
			if burst {
				rate = burstRate
			}
			next := t + expStep(rng, rate)
			if next >= stateEnd {
				t = stateEnd
				burst = !burst
				mean := meanCalm
				if burst {
					mean = meanBurst
				}
				stateEnd = t + expStep(rng, 1/mean)
				continue
			}
			t = next
			if t < window {
				appendAt(t)
			}
		}
	}
	return out
}

// expStep draws an exponential inter-arrival gap at the given rate.
func expStep(rng *rand.Rand, rate float64) float64 {
	return rng.ExpFloat64() / rate
}

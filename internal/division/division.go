// Package division implements the paper's formal definition of power
// division (Section III): the notations of Table I, the naive definition of
// Equation 1, the residual-aware definition of Equation 2, the consistent
// ratio allocation of Equation 3, the active-share extraction of Equation 4
// and the absolute error metric of Equation 5 — plus the residual
// allocation families (F1), (F2), (F3) the paper identifies.
//
// Terminology note: throughout this package R denotes the paper's residual
// consumption, which *includes* the idle consumption ("in our case the
// residual consumption includes the idle consumption"): R is everything the
// machine draws under load that per-core activity does not explain, and
// A_{S,t} = C_{S,t} − R is the active consumption.
package division

import (
	"errors"
	"fmt"
	"sort"

	"powerdiv/internal/units"
)

// Family identifies a residual allocation policy family (§III-B):
//
//	F1 splits R in proportion to each application's active consumption —
//	   what Scaphandre, PowerAPI and Kepler implicitly do by dividing the
//	   machine total without modelling R at all;
//	F2 keeps the estimated consumptions of two applications in the same
//	   ratio in parallel as in sequential execution, so R is treated as
//	   part of the application consumption (the family the paper argues
//	   for, since R is caused by applications raising core frequencies);
//	F3 disregards R entirely, so an application's estimate does not
//	   depend on what else runs.
type Family int

// The three families of §III-B; see the Family documentation.
const (
	F1 Family = iota + 1
	F2
	F3
)

// String returns the family's paper name.
func (f Family) String() string {
	switch f {
	case F1:
		return "F1"
	case F2:
		return "F2"
	case F3:
		return "F3"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Baseline is what protocol phase 1 measures about one application running
// alone on the machine (the sequential scenario P_i).
type Baseline struct {
	// ID names the application.
	ID string
	// Total is the machine power while the application ran alone: C_{P_i}.
	Total units.Watts
	// Residual is the residual consumption (idle included) observed during
	// the isolated run: R for uncapped applications, lower for capped ones
	// whose cores duty-cycle (§IV-B).
	Residual units.Watts
	// Cores is the mean number of CPU cores' worth of CPU time consumed.
	Cores float64
}

// Active returns the application's isolated active consumption
// A_{P_i} = C_{P_i} − R.
func (b Baseline) Active() units.Watts { return b.Total - b.Residual }

// ActivePerCore returns the isolated active consumption per core of CPU
// usage, or 0 if the application used no CPU.
func (b Baseline) ActivePerCore() units.Watts {
	if b.Cores <= 0 {
		return 0
	}
	return units.Watts(float64(b.Active()) / b.Cores)
}

// NaiveEstimate is Equation 1: the estimated consumption of P_i is the
// extra consumption that would not be observed without it,
// Ce^{P_i}_{S,t} = C_{S,t} − C_{S/P_i,t}. The paper shows this definition
// is incomplete: summed over applications it under-covers C_{S,t} by R
// (Fig 2), which motivates Equation 2.
func NaiveEstimate(cS, cWithoutPi units.Watts) units.Watts {
	return cS - cWithoutPi
}

// EstimateWithPolicy is Equation 2: Ce^{P_i}_{S,t} = A_{S,t} − A_{S/P_i,t}
// + x·R, where x is the application's residual share under the chosen
// family policy.
func EstimateWithPolicy(aS, aWithoutPi, r units.Watts, x float64) units.Watts {
	return aS - aWithoutPi + units.Watts(x*float64(r))
}

// Shares maps application IDs to fractional shares (summing to 1 whenever
// non-empty).
type Shares map[string]float64

// normalize scales weights into shares. It returns nil if no weight is
// positive. The total accumulates in sorted-key order: with three or more
// applications a map-order float sum differs in the low bits across runs,
// which would make the objective shares — and every error table derived
// from them — nondeterministic per seed. (Pairs masked this: adding two
// floats is commutative.)
func normalize(weights map[string]float64) Shares {
	ids := make([]string, 0, len(weights))
	for id := range weights {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var total float64
	for _, id := range ids {
		if w := weights[id]; w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return nil
	}
	s := make(Shares, len(weights))
	for _, id := range ids {
		w := weights[id]
		if w < 0 {
			w = 0
		}
		s[id] = w / total
	}
	return s
}

// TruthShares is Equation 3: the consistent allocation of active power,
// Ae^{P_i}_{S,t} = A_{S,t} × A_{P_i,t} / Σ_j A_{P_j,t}. It returns each
// application's share of the scenario's active power, computed from the
// isolated baselines. This is the protocol's objective value in the
// uniform-residual case.
func TruthShares(baselines []Baseline) Shares {
	weights := make(map[string]float64, len(baselines))
	for _, b := range baselines {
		weights[b.ID] = float64(b.Active())
	}
	return normalize(weights)
}

// TruthSharesResidualAware extends the objective value to workloads whose
// isolated residuals differ (§IV-B): because residual consumption is
// generated by the applications themselves, the application that drives a
// core to a higher frequency is responsible for the extra residual. Each
// application weighs in with its active power plus the amount by which its
// isolated residual exceeds the smallest isolated residual in the scenario
// ("the difference between the two residual consumption is allocated to
// P_1 in the objective value").
func TruthSharesResidualAware(baselines []Baseline) Shares {
	if len(baselines) == 0 {
		return nil
	}
	minR := baselines[0].Residual
	for _, b := range baselines[1:] {
		if b.Residual < minR {
			minR = b.Residual
		}
	}
	weights := make(map[string]float64, len(baselines))
	for _, b := range baselines {
		weights[b.ID] = float64(b.Active() + (b.Residual - minR))
	}
	return normalize(weights)
}

// TruthSharesNominalResidual is the Fig 9b objective: residual consumption
// is considered application consumption down to the machine's nominal-
// frequency residual R_0, so each application weighs in with C_{P_i} − R_0.
func TruthSharesNominalResidual(baselines []Baseline, r0 units.Watts) Shares {
	weights := make(map[string]float64, len(baselines))
	for _, b := range baselines {
		weights[b.ID] = float64(b.Total - r0)
	}
	return normalize(weights)
}

// FamilyShares returns the share of the machine total C_{S,t} that each
// application receives under the given family policy, from the isolated
// baselines:
//
//	F1: share of active power, applied to active and residual alike
//	    (equivalently: Ce_i = C_S × A_i/ΣA_j);
//	F2: share of isolated total power, Ce_i = C_S × C_{P_i}/ΣC_{P_j},
//	    preserving the sequential consumption ratio in parallel;
//	F3: share of active power applied to active power only — the
//	    returned shares apply to A_S, not C_S, and deliberately do not
//	    account for R (callers multiplying by A_S under-cover C_S by R,
//	    which is the point of the family).
func FamilyShares(f Family, baselines []Baseline) (Shares, error) {
	switch f {
	case F1, F3:
		return TruthShares(baselines), nil
	case F2:
		weights := make(map[string]float64, len(baselines))
		for _, b := range baselines {
			weights[b.ID] = float64(b.Total)
		}
		return normalize(weights), nil
	default:
		return nil, fmt.Errorf("division: unknown family %d", int(f))
	}
}

// ActiveFromEstimate is Equation 4: extracting the estimated active
// consumption from an F1-family model's estimate,
// Ae^{P_i}_{S,t} = Ce^{P_i}_{S,t} − R × Ce^{P_i}_{S,t} / C_{S,t}.
// It returns 0 if the machine power is not positive.
func ActiveFromEstimate(ce, c, r units.Watts) units.Watts {
	if c <= 0 {
		return 0
	}
	return ce - units.Watts(float64(r)*float64(ce)/float64(c))
}

// RatioPercent is the figure axis transform used by Fig 4–7 and Fig 9:
// 100 − (a/b × 100), centred on 0 so that equal consumptions map to 0,
// negative values mean b consumes more than a, positive the opposite.
func RatioPercent(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 100 - a/b*100
}

// RatioPoint is one scenario's point on a ratio scatter figure: X the
// sequential (objective) ratio, Y the parallel (estimated) ratio; on a
// perfect model all points lie on y = x.
type RatioPoint struct {
	X, Y float64
	// Label identifies the pair, e.g. "fibonacci-3 vs matrixprod-3".
	Label string
}

// ErrEmptyScoring is returned when no tick could be scored.
var ErrEmptyScoring = errors.New("division: no scorable ticks")

// AbsoluteError is Equation 5: the mean over applications and ticks of
// |Ce^{P_i}_{S,t}/C_{S,t} − A_{P_i,t}/Σ_j A_{P_j,t}|.
//
// ests[i] is the model's estimate at tick i (nil = no estimate, skipped, as
// the paper skips PowerAPI's learning-phase drops); power[i] the measured
// machine power C_{S,t}; truth[i] the objective shares (use ConstShares for
// stationary workloads). Ticks whose truth map is nil are skipped too.
func AbsoluteError(ests []map[string]units.Watts, power []units.Watts, truth []Shares) (float64, error) {
	if len(ests) != len(power) || len(ests) != len(truth) {
		return 0, fmt.Errorf("division: mismatched lengths %d/%d/%d", len(ests), len(power), len(truth))
	}
	var sum float64
	var n int
	for i, est := range ests {
		if est == nil || truth[i] == nil || power[i] <= 0 {
			continue
		}
		// Sorted iteration keeps the floating-point sum bit-reproducible
		// across runs (map order is randomised).
		for _, id := range truth[i].IDs() {
			ce := est[id] // missing estimate counts as 0, an attribution error
			sum += absf(float64(ce)/float64(power[i]) - truth[i][id])
			n++
		}
	}
	if n == 0 {
		return 0, ErrEmptyScoring
	}
	return sum / float64(n), nil
}

// ConstShares replicates one share map across n ticks, for stationary
// workloads whose objective value does not change over the scenario.
func ConstShares(n int, s Shares) []Shares {
	out := make([]Shares, n)
	for i := range out {
		out[i] = s
	}
	return out
}

// IDs returns the share map's application IDs, sorted.
func (s Shares) IDs() []string {
	out := make([]string, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

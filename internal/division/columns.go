package division

import (
	"fmt"

	"powerdiv/internal/units"
)

// AbsentShare is the sentinel marking a roster slot outside a tick's
// objective in a dense truth vector (Shares.Vector). It must be negative:
// zero is a legitimate share that Equation 5 scores, absent is not scored
// at all.
const AbsentShare = -1.0

// Vector projects the shares onto a roster ID order: out[i] is the share
// of ids[i], or AbsentShare when the ID has no entry in the map. ids must
// be sorted (roster order) and cover every key of s, so that scoring the
// vector visits exactly the map's keys in exactly IDs() order — the
// property that keeps AbsoluteErrorColumns bit-identical to AbsoluteError.
func (s Shares) Vector(ids []string) []float64 {
	return s.VectorInto(make([]float64, len(ids)), ids)
}

// VectorInto is Vector writing into a caller-owned buffer (which must have
// len(ids) entries), so scoring loops can reuse one vector per scenario.
func (s Shares) VectorInto(out []float64, ids []string) []float64 {
	for i, id := range ids {
		v, ok := s[id]
		if !ok {
			v = AbsentShare
		}
		out[i] = v
	}
	return out
}

// AbsoluteErrorColumns is Equation 5 over roster-indexed columns: ests[i]
// is the model's estimate column at scored tick i (nil = no estimate,
// skipped), power[i] the measured machine power, truths[i] the objective
// share vector (nil = skipped; entries equal to AbsentShare mark slots
// outside the tick's objective). It produces bit-identical results to
// AbsoluteError on the equivalent map inputs: slots are visited in roster
// order, which is the sorted-ID order the map form sums in.
func AbsoluteErrorColumns(ests [][]units.Watts, power []units.Watts, truths [][]float64) (float64, error) {
	if len(ests) != len(power) || len(ests) != len(truths) {
		return 0, fmt.Errorf("division: mismatched lengths %d/%d/%d", len(ests), len(power), len(truths))
	}
	var sum float64
	var n int
	for i, est := range ests {
		if est == nil || truths[i] == nil || power[i] <= 0 {
			continue
		}
		for slot, share := range truths[i] {
			if share < 0 {
				continue
			}
			ce := est[slot] // a zero column entry counts as 0, an attribution error
			sum += absf(float64(ce)/float64(power[i]) - share)
			n++
		}
	}
	if n == 0 {
		return 0, ErrEmptyScoring
	}
	return sum / float64(n), nil
}

// AbsoluteErrorColumnsConst is AbsoluteErrorColumns with the same truth
// vector at every tick — the common campaign case, where the objective is
// fixed per scenario. It is exactly AbsoluteErrorColumns over
// ConstVectors(len(ests), truth) without materialising the replicated
// pointer slice: same slot visit order, same accumulation order, same
// result bit for bit.
func AbsoluteErrorColumnsConst(ests [][]units.Watts, power []units.Watts, truth []float64) (float64, error) {
	if len(ests) != len(power) {
		return 0, fmt.Errorf("division: mismatched lengths %d/%d/%d", len(ests), len(power), len(ests))
	}
	var sum float64
	var n int
	for i, est := range ests {
		if est == nil || truth == nil || power[i] <= 0 {
			continue
		}
		for slot, share := range truth {
			if share < 0 {
				continue
			}
			ce := est[slot] // a zero column entry counts as 0, an attribution error
			sum += absf(float64(ce)/float64(power[i]) - share)
			n++
		}
	}
	if n == 0 {
		return 0, ErrEmptyScoring
	}
	return sum / float64(n), nil
}

// ConstVectors replicates one truth vector across n ticks — the dense
// counterpart of ConstShares.
func ConstVectors(n int, v []float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

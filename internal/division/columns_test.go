package division

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"powerdiv/internal/units"
)

func TestSharesVector(t *testing.T) {
	s := Shares{"a": 0.25, "c": 0, "d": 0.75}
	v := s.Vector([]string{"a", "b", "c", "d"})
	want := []float64{0.25, AbsentShare, 0, 0.75}
	for i := range want {
		if v[i] != want[i] {
			t.Errorf("v[%d] = %v, want %v", i, v[i], want[i])
		}
	}
}

func TestConstVectors(t *testing.T) {
	v := []float64{0.5, 0.5}
	vs := ConstVectors(3, v)
	if len(vs) != 3 {
		t.Fatalf("len = %d", len(vs))
	}
	for i := range vs {
		if &vs[i][0] != &v[0] {
			t.Errorf("tick %d: vector copied instead of shared", i)
		}
	}
}

func TestAbsoluteErrorColumnsMismatch(t *testing.T) {
	_, err := AbsoluteErrorColumns(make([][]units.Watts, 2), make([]units.Watts, 1), make([][]float64, 2))
	if err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestAbsoluteErrorColumnsEmpty(t *testing.T) {
	// All ticks skipped: nil estimate, nil truth, non-positive power, or a
	// truth vector of only absent slots.
	ests := [][]units.Watts{nil, {10, 10}, {10, 10}, {10, 10}}
	power := []units.Watts{20, 20, 0, 20}
	truths := [][]float64{{0.5, 0.5}, nil, {0.5, 0.5}, {AbsentShare, AbsentShare}}
	if _, err := AbsoluteErrorColumns(ests, power, truths); !errors.Is(err, ErrEmptyScoring) {
		t.Errorf("err = %v, want ErrEmptyScoring", err)
	}
}

// TestAbsoluteErrorColumnsMatchesMapForm fuzzes random scored campaigns
// through both Equation 5 implementations: the columnar form must be
// bit-identical to the map form, with AbsentShare slots standing in for
// IDs outside the truth map.
func TestAbsoluteErrorColumnsMatchesMapForm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ids := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(20)
		mapEsts := make([]map[string]units.Watts, n)
		colEsts := make([][]units.Watts, n)
		power := make([]units.Watts, n)
		mapTruths := make([]Shares, n)
		colTruths := make([][]float64, n)
		for i := 0; i < n; i++ {
			power[i] = units.Watts(rng.Float64() * 50)
			if rng.Float64() < 0.2 {
				continue // nil estimate and truth on both sides
			}
			truth := Shares{}
			est := map[string]units.Watts{}
			col := make([]units.Watts, len(ids))
			for slot, id := range ids {
				if rng.Float64() < 0.3 {
					continue // id outside this tick's objective
				}
				truth[id] = rng.Float64()
				w := units.Watts(rng.Float64() * 20)
				est[id] = w
				col[slot] = w
			}
			if len(truth) == 0 {
				continue
			}
			mapEsts[i], colEsts[i] = est, col
			mapTruths[i], colTruths[i] = truth, truth.Vector(ids)
		}
		want, wantErr := AbsoluteError(mapEsts, power, mapTruths)
		got, gotErr := AbsoluteErrorColumns(colEsts, power, colTruths)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: map err %v, columns err %v", trial, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("trial %d: map AE %v != columnar AE %v", trial, want, got)
		}
	}
}

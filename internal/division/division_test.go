package division

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"powerdiv/internal/units"
)

func TestBaselineActive(t *testing.T) {
	b := Baseline{ID: "p", Total: 74, Residual: 36, Cores: 6}
	if got := b.Active(); got != 38 {
		t.Errorf("Active = %v, want 38", got)
	}
	if got := b.ActivePerCore(); math.Abs(float64(got)-38.0/6) > 1e-9 {
		t.Errorf("ActivePerCore = %v", got)
	}
	if got := (Baseline{Total: 10}).ActivePerCore(); got != 0 {
		t.Errorf("zero-core ActivePerCore = %v, want 0", got)
	}
}

func TestNaiveEstimateUnderCoversByResidual(t *testing.T) {
	// Fig 2 / Eq 1: with two identical apps, C_S = R + 2a but each naive
	// estimate is only a, so the sum misses R.
	var r, a units.Watts = 36, 20
	cPair := r + 2*a
	cSolo := r + a
	est := NaiveEstimate(cPair, cSolo)
	if est != a {
		t.Errorf("naive estimate = %v, want %v", est, a)
	}
	if got := cPair - 2*est; got != r {
		t.Errorf("under-coverage = %v, want R = %v", got, r)
	}
}

func TestEstimateWithPolicy(t *testing.T) {
	// Eq 2 with x = 0.5: active difference plus half the residual.
	got := EstimateWithPolicy(40, 20, 36, 0.5)
	if got != 38 {
		t.Errorf("estimate = %v, want 38", got)
	}
	// x = 0 reduces to the pure active difference (family F3).
	if got := EstimateWithPolicy(40, 20, 36, 0); got != 20 {
		t.Errorf("x=0 estimate = %v, want 20", got)
	}
}

func TestTruthSharesEq3(t *testing.T) {
	bs := []Baseline{
		{ID: "a", Total: 57, Residual: 36}, // active 21
		{ID: "b", Total: 43, Residual: 36}, // active 7
	}
	s := TruthShares(bs)
	if math.Abs(s["a"]-0.75) > 1e-9 || math.Abs(s["b"]-0.25) > 1e-9 {
		t.Errorf("shares = %v, want a=0.75 b=0.25", s)
	}
}

func TestTruthSharesResidualAware(t *testing.T) {
	// §IV-B: capped P0 (residual 15+idle) vs uncapped P1 (residual 28+idle)
	// — the residual delta goes to P1.
	bs := []Baseline{
		{ID: "p0", Total: 31, Residual: 22}, // active 9
		{ID: "p1", Total: 72, Residual: 36}, // active 36, ΔR = 14
	}
	s := TruthSharesResidualAware(bs)
	wantP1 := (36.0 + 14.0) / (9 + 36 + 14)
	if math.Abs(s["p1"]-wantP1) > 1e-9 {
		t.Errorf("p1 share = %v, want %v", s["p1"], wantP1)
	}
	// With equal residuals it reduces to Eq 3.
	eq := []Baseline{
		{ID: "a", Total: 57, Residual: 36},
		{ID: "b", Total: 43, Residual: 36},
	}
	s1, s2 := TruthShares(eq), TruthSharesResidualAware(eq)
	for id := range s1 {
		if math.Abs(s1[id]-s2[id]) > 1e-12 {
			t.Errorf("equal-residual mismatch for %s: %v vs %v", id, s1[id], s2[id])
		}
	}
}

func TestTruthSharesNominalResidual(t *testing.T) {
	// Fig 9b objective: weights are C_{P_i} − R_0.
	bs := []Baseline{
		{ID: "p0", Total: 20},
		{ID: "p1", Total: 74},
	}
	s := TruthSharesNominalResidual(bs, 15)
	wantP0 := 5.0 / (5 + 59)
	if math.Abs(s["p0"]-wantP0) > 1e-9 {
		t.Errorf("p0 share = %v, want %v", s["p0"], wantP0)
	}
}

func TestFamilyShares(t *testing.T) {
	bs := []Baseline{
		{ID: "a", Total: 60, Residual: 36}, // active 24
		{ID: "b", Total: 44, Residual: 36}, // active 8
	}
	f1, err := FamilyShares(F1, bs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f1["a"]-0.75) > 1e-9 {
		t.Errorf("F1 a = %v, want 0.75", f1["a"])
	}
	f2, err := FamilyShares(F2, bs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f2["a"]-60.0/104) > 1e-9 {
		t.Errorf("F2 a = %v, want %v", f2["a"], 60.0/104)
	}
	f3, err := FamilyShares(F3, bs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f3["a"]-f1["a"]) > 1e-12 {
		t.Error("F3 active shares should equal F1's")
	}
	if _, err := FamilyShares(Family(99), bs); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestFamilyStrings(t *testing.T) {
	if F1.String() != "F1" || F2.String() != "F2" || F3.String() != "F3" {
		t.Error("family names wrong")
	}
	if Family(9).String() != "Family(9)" {
		t.Error("unknown family name wrong")
	}
}

func TestActiveFromEstimateEq4(t *testing.T) {
	// Ce = 40 of C = 80 with R = 36: Ae = 40 − 36×0.5 = 22.
	if got := ActiveFromEstimate(40, 80, 36); got != 22 {
		t.Errorf("Ae = %v, want 22", got)
	}
	if got := ActiveFromEstimate(40, 0, 36); got != 0 {
		t.Errorf("zero machine power Ae = %v, want 0", got)
	}
}

// Eq 4 round-trip: distributing R by estimate share and extracting it back
// recovers the original active estimate.
func TestEq4RoundTrip(t *testing.T) {
	f := func(ae0, ae1, r float64) bool {
		ae0 = 1 + math.Abs(math.Mod(ae0, 100))
		ae1 = 1 + math.Abs(math.Mod(ae1, 100))
		r = math.Abs(math.Mod(r, 100))
		// An F1 model computes Ce_i = (A + R) × ae_i/(ae0+ae1).
		a := ae0 + ae1
		c := a + r
		ce0 := units.Watts(c * ae0 / a)
		back := ActiveFromEstimate(ce0, units.Watts(c), units.Watts(r))
		return math.Abs(float64(back)-ae0) < 1e-9*(1+ae0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatioPercent(t *testing.T) {
	if got := RatioPercent(10, 10); got != 0 {
		t.Errorf("equal ratio = %v, want 0", got)
	}
	if got := RatioPercent(5, 10); got != 50 {
		t.Errorf("half ratio = %v, want 50", got)
	}
	if got := RatioPercent(20, 10); got != -100 {
		t.Errorf("double ratio = %v, want -100", got)
	}
	if got := RatioPercent(1, 0); got != 0 {
		t.Errorf("zero denominator = %v, want 0", got)
	}
}

func TestAbsoluteErrorEq5(t *testing.T) {
	truth := Shares{"a": 0.6, "b": 0.4}
	ests := []map[string]units.Watts{
		{"a": 60, "b": 40}, // perfect
		{"a": 50, "b": 50}, // off by 0.1 each
		nil,                // learning drop: skipped
		{"a": 100, "b": 0}, // off by 0.4 each
	}
	power := []units.Watts{100, 100, 100, 100}
	got, err := AbsoluteError(ests, power, ConstShares(4, truth))
	if err != nil {
		t.Fatal(err)
	}
	want := (0 + 0 + 0.1 + 0.1 + 0.4 + 0.4) / 6
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("AE = %v, want %v", got, want)
	}
}

func TestAbsoluteErrorEdgeCases(t *testing.T) {
	if _, err := AbsoluteError(nil, nil, nil); !errors.Is(err, ErrEmptyScoring) {
		t.Errorf("empty error = %v, want ErrEmptyScoring", err)
	}
	if _, err := AbsoluteError(make([]map[string]units.Watts, 2), make([]units.Watts, 1), make([]Shares, 2)); err == nil {
		t.Error("mismatched lengths accepted")
	}
	// All-nil estimates → no scorable ticks.
	ests := make([]map[string]units.Watts, 3)
	power := []units.Watts{100, 100, 100}
	if _, err := AbsoluteError(ests, power, ConstShares(3, Shares{"a": 1})); !errors.Is(err, ErrEmptyScoring) {
		t.Errorf("all-nil error = %v, want ErrEmptyScoring", err)
	}
	// Missing process in the estimate counts as a zero attribution.
	got, err := AbsoluteError(
		[]map[string]units.Watts{{"a": 100}},
		[]units.Watts{100},
		ConstShares(1, Shares{"a": 0.5, "b": 0.5}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("missing-proc AE = %v, want 0.5", got)
	}
}

// Property: AE is 0 exactly when the model reproduces the truth shares, and
// never exceeds the worst-case bound 2(1−1/n) for shares.
func TestAbsoluteErrorBounds(t *testing.T) {
	f := func(sa, ea float64) bool {
		sa = math.Abs(math.Mod(sa, 1))
		ea = math.Abs(math.Mod(ea, 1))
		truth := Shares{"a": sa, "b": 1 - sa}
		est := map[string]units.Watts{
			"a": units.Watts(100 * ea),
			"b": units.Watts(100 * (1 - ea)),
		}
		got, err := AbsoluteError([]map[string]units.Watts{est}, []units.Watts{100}, ConstShares(1, truth))
		if err != nil {
			return false
		}
		want := math.Abs(ea - sa) // symmetric for 2 procs
		return math.Abs(got-want) < 1e-9 && got <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeProperties(t *testing.T) {
	f := func(w0, w1, w2 float64) bool {
		// Bound to a physical range; power weights are watts-scale.
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		w0, w1, w2 = clamp(w0), clamp(w1), clamp(w2)
		weights := map[string]float64{"a": w0, "b": w1, "c": w2}
		s := normalize(weights)
		if s == nil {
			// Valid only when nothing is positive.
			return w0 <= 0 && w1 <= 0 && w2 <= 0
		}
		var sum float64
		for _, v := range s {
			if v < 0 || v > 1+1e-12 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSharesIDs(t *testing.T) {
	s := Shares{"b": 0.5, "a": 0.5}
	ids := s.IDs()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Errorf("IDs = %v, want [a b]", ids)
	}
}

package division

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"powerdiv/internal/units"
)

// baselineSet generates a random scenario of 2–5 isolated baselines, each
// with positive active power (the regime where Equation 3's shares are
// defined) and a residual in a realistic band. The derived scenario values
// used by the properties — C_S, A_S, R — follow from the set itself, so the
// invariants are checked across the whole input space rather than at
// hand-picked points.
type baselineSet []Baseline

func (baselineSet) Generate(r *rand.Rand, _ int) reflect.Value {
	set := make(baselineSet, 2+r.Intn(4))
	for i := range set {
		residual := 5 + 40*r.Float64()
		active := 0.5 + 120*r.Float64()
		set[i] = Baseline{
			ID:       fmt.Sprintf("app%d", i),
			Total:    units.Watts(residual + active),
			Residual: units.Watts(residual),
			Cores:    0.1 + 7.9*r.Float64(),
		}
	}
	return reflect.ValueOf(set)
}

// scenario derives the parallel-scenario quantities the family policies
// divide: machine power C_S, residual R (smallest isolated residual, the
// paper's uniform-residual assumption), and active power A_S = C_S − R.
func (set baselineSet) scenario() (cS, aS, r units.Watts) {
	r = set[0].Residual
	for _, b := range set[1:] {
		if b.Residual < r {
			r = b.Residual
		}
	}
	for _, b := range set {
		cS += b.Active()
	}
	cS += r
	return cS, cS - r, r
}

func relClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}
}

// TestQuickF1CoversMachinePower: under F1 the estimates Ce_i = C_S × s_i
// partition the whole machine power — they are non-negative and sum to
// C_{S,t} exactly, for every baseline set.
func TestQuickF1CoversMachinePower(t *testing.T) {
	prop := func(set baselineSet) bool {
		shares, err := FamilyShares(F1, []Baseline(set))
		if err != nil || shares == nil {
			return false
		}
		cS, _, _ := set.scenario()
		var sum float64
		for _, b := range set {
			ce := float64(cS) * shares[b.ID]
			if ce < 0 {
				return false
			}
			sum += ce
		}
		return relClose(sum, float64(cS))
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestQuickF2PreservesSequentialRatio: under F2 the estimated consumptions
// of any two applications stay in the same ratio in parallel as their
// isolated totals — Ce_i/Ce_j = C_{P_i}/C_{P_j}, checked multiplicatively
// to avoid dividing by small shares.
func TestQuickF2PreservesSequentialRatio(t *testing.T) {
	prop := func(set baselineSet) bool {
		shares, err := FamilyShares(F2, []Baseline(set))
		if err != nil || shares == nil {
			return false
		}
		for i := range set {
			for j := range set {
				lhs := shares[set[i].ID] * float64(set[j].Total)
				rhs := shares[set[j].ID] * float64(set[i].Total)
				if !relClose(lhs, rhs) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestQuickF3CoversActiveUndercoversTotal: F3 shares apply to the active
// power only — Σ A_S × s_i = A_{S,t}, so the family under-covers the
// machine power by exactly the residual R (the Fig 2 gap).
func TestQuickF3CoversActiveUndercoversTotal(t *testing.T) {
	prop := func(set baselineSet) bool {
		shares, err := FamilyShares(F3, []Baseline(set))
		if err != nil || shares == nil {
			return false
		}
		cS, aS, r := set.scenario()
		var sum float64
		for _, b := range set {
			sum += float64(aS) * shares[b.ID]
		}
		return relClose(sum, float64(aS)) && relClose(float64(cS)-sum, float64(r))
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestQuickEq4ExtractsActiveFromF1: Equation 4 applied to an F1 estimate
// recovers the consistent active allocation of Equation 3:
// ActiveFromEstimate(C_S×s_i, C_S, R) = A_S × s_i for every application.
func TestQuickEq4ExtractsActiveFromF1(t *testing.T) {
	prop := func(set baselineSet) bool {
		shares := TruthShares([]Baseline(set))
		if shares == nil {
			return false
		}
		cS, aS, r := set.scenario()
		for _, b := range set {
			ce := units.Watts(float64(cS) * shares[b.ID])
			got := ActiveFromEstimate(ce, cS, r)
			if !relClose(float64(got), float64(aS)*shares[b.ID]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}
